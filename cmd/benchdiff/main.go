// Command benchdiff is the bench regression gate: it compares the
// BENCH_*.json files written by scripts/bench.sh against committed
// baselines and exits non-zero when any metric regresses past the
// threshold. It understands metric direction by name — "speedup"
// metrics are higher-is-better, everything else (ns_per_op, overhead
// ratios) is lower-is-better — and skips host-descriptor keys like
// cpu_cores that are facts, not performance.
//
// Example (what `make bench-check` runs):
//
//	scripts/bench.sh
//	benchdiff -baseline bench/baseline -current .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
)

func main() {
	var (
		baseline  = flag.String("baseline", "bench/baseline", "directory holding committed BENCH_*.json baselines")
		current   = flag.String("current", ".", "directory holding freshly measured BENCH_*.json files")
		threshold = flag.Float64("threshold", 0.10, "relative regression tolerance (0.10 = 10%)")
	)
	flag.Parse()
	regressions, err := diff(os.Stdout, *baseline, *current, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if regressions > 0 {
		fmt.Printf("\nbenchdiff: %d metric(s) regressed past %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: all metrics within %.0f%% of baseline\n", *threshold*100)
}

// skipKeys are host and workload descriptors recorded alongside the
// measurements; they describe the machine or the load shape, not the
// code, and never gate.
var skipKeys = map[string]bool{
	"cpu_cores":   true,
	"requests":    true,
	"concurrency": true,
	"batch":       true,
	"errors":      true, // any nonzero count fails the load run itself
	"sheds":       true, // overload runs shed by design; bench.sh asserts the invariants
	"retries":     true,
	"timeouts":    true,
	// Deep-tree pass descriptors: the tree shape and the stage-count
	// split are exact properties of the workload (bench.sh asserts the
	// dedup and memory invariants); the resumed numbers depend on where
	// the SIGKILL happened to land, so only the derived dedup speedup
	// and the cold wall time gate.
	"levels":               true,
	"leaves":               true,
	"stages_simulated":     true,
	"stages_deduped":       true,
	"resume_resimulated":   true,
	"resumed_wall_seconds": true,
	"peak_rss_bytes":       true,
}

// higherIsBetter reports whether a larger value of the named metric is
// an improvement.
func higherIsBetter(key string) bool {
	return strings.Contains(key, "speedup") || strings.Contains(key, "throughput")
}

// diff compares every BENCH_*.json present in baselineDir against its
// counterpart in currentDir, writing a per-metric table to w. It
// returns the number of regressed metrics. A baseline file or metric
// with no current counterpart counts as a regression — a silently
// vanished benchmark must not pass the gate.
func diff(w io.Writer, baselineDir, currentDir string, threshold float64) (int, error) {
	baseFiles, err := filepath.Glob(filepath.Join(baselineDir, "BENCH_*.json"))
	if err != nil {
		return 0, err
	}
	if len(baseFiles) == 0 {
		return 0, fmt.Errorf("no BENCH_*.json baselines in %s", baselineDir)
	}
	sort.Strings(baseFiles)

	regressions := 0
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "file\tmetric\tbaseline\tcurrent\tchange\tstatus\n")
	for _, bf := range baseFiles {
		name := filepath.Base(bf)
		base, err := loadMetrics(bf)
		if err != nil {
			return 0, fmt.Errorf("baseline %s: %w", name, err)
		}
		cur, err := loadMetrics(filepath.Join(currentDir, name))
		if err != nil {
			if os.IsNotExist(err) {
				regressions++
				fmt.Fprintf(tw, "%s\t(all)\t\t\t\tMISSING — run scripts/bench.sh\n", name)
				continue
			}
			return 0, fmt.Errorf("current %s: %w", name, err)
		}
		keys := make([]string, 0, len(base))
		for k := range base {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if skipKeys[k] {
				continue
			}
			bv := base[k]
			cv, ok := cur[k]
			if !ok {
				regressions++
				fmt.Fprintf(tw, "%s\t%s\t%g\t\t\tMISSING\n", name, k, bv)
				continue
			}
			if bv == 0 {
				fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t\tskipped (zero baseline)\n", name, k, bv, cv)
				continue
			}
			change := cv/bv - 1
			bad := change > threshold
			if higherIsBetter(k) {
				bad = change < -threshold
			}
			status := "ok"
			if bad {
				status = "REGRESSED"
				regressions++
			}
			fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t%+.1f%%\t%s\n", name, k, bv, cv, change*100, status)
		}
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	return regressions, nil
}

// loadMetrics reads one BENCH json object and keeps the numeric
// leaves. Non-numeric values (e.g. the errors_by_status map the
// overload run records) are descriptors, not gated metrics.
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	raw := map[string]any{}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	m := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			m[k] = f
		}
	}
	return m, nil
}
