package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffDirectionRules(t *testing.T) {
	base := t.TempDir()
	cur := t.TempDir()
	writeJSON(t, base, "BENCH_x.json",
		`{"lookup_ns_per_op": 1000, "build_speedup": 2.0, "cpu_cores": 1}`)

	// Within threshold both directions: ns/op +5%, speedup -5%.
	writeJSON(t, cur, "BENCH_x.json",
		`{"lookup_ns_per_op": 1050, "build_speedup": 1.9, "cpu_cores": 64}`)
	var buf bytes.Buffer
	n, err := diff(&buf, base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("within-threshold diff reported %d regressions:\n%s", n, buf.String())
	}
	if strings.Contains(buf.String(), "cpu_cores") {
		t.Error("cpu_cores was compared; host descriptors must be skipped")
	}

	// ns/op up 20% regresses; speedup up 20% does not.
	writeJSON(t, cur, "BENCH_x.json",
		`{"lookup_ns_per_op": 1200, "build_speedup": 2.4, "cpu_cores": 1}`)
	buf.Reset()
	n, err = diff(&buf, base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ns/op +20%% reported %d regressions, want 1:\n%s", n, buf.String())
	}

	// Speedup down 20% regresses; ns/op down 20% does not.
	writeJSON(t, cur, "BENCH_x.json",
		`{"lookup_ns_per_op": 800, "build_speedup": 1.6, "cpu_cores": 1}`)
	buf.Reset()
	n, err = diff(&buf, base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("speedup -20%% reported %d regressions, want 1:\n%s", n, buf.String())
	}
}

func TestDiffMissingIsRegression(t *testing.T) {
	base := t.TempDir()
	cur := t.TempDir()
	writeJSON(t, base, "BENCH_a.json", `{"m": 1}`)
	writeJSON(t, base, "BENCH_b.json", `{"kept": 1, "dropped": 2}`)
	writeJSON(t, cur, "BENCH_b.json", `{"kept": 1}`)

	var buf bytes.Buffer
	n, err := diff(&buf, base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// BENCH_a.json absent entirely + metric "dropped" absent: 2.
	if n != 2 {
		t.Fatalf("got %d regressions, want 2 (missing file + missing metric):\n%s", n, buf.String())
	}
	// Extra current-only metrics are fine (new benches land before
	// their baselines).
	writeJSON(t, cur, "BENCH_a.json", `{"m": 1, "brand_new": 9}`)
	writeJSON(t, cur, "BENCH_b.json", `{"kept": 1, "dropped": 2}`)
	buf.Reset()
	if n, err = diff(&buf, base, cur, 0.10); err != nil || n != 0 {
		t.Fatalf("clean diff: n=%d err=%v\n%s", n, err, buf.String())
	}
}

func TestDiffNoBaselines(t *testing.T) {
	var buf bytes.Buffer
	if _, err := diff(&buf, t.TempDir(), t.TempDir(), 0.10); err == nil {
		t.Fatal("empty baseline dir did not error")
	}
}

func TestDiffRepoBaselinesParse(t *testing.T) {
	// The committed baselines themselves must stay loadable.
	files, err := filepath.Glob(filepath.Join("..", "..", "bench", "baseline", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed baselines under bench/baseline")
	}
	for _, f := range files {
		if _, err := loadMetrics(f); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}
