package main

import (
	"context"
	"testing"
)

func TestRunSmallTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds tables and simulates a tree")
	}
	if err := run(context.Background(), 1, 2000, 10, 5, 1, "coplanar", 50, 40, 50, 2, "", "extrapolate"); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadShield(t *testing.T) {
	if err := run(context.Background(), 1, 2000, 10, 5, 1, "bogus", 50, 40, 50, 1, "", "extrapolate"); err == nil {
		t.Error("accepted unknown shielding")
	}
}
