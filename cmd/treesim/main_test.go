package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func baseConfig() config {
	return config{
		levels: 1, span: 2000, wsig: 10, wgnd: 5, space: 1,
		shield: "coplanar", tr: 50, rdrv: 40, cin: 50,
		imbalance: 2, mode: "both", lookupPol: "extrapolate",
		ckptStages: 16, ckptInterval: 30 * time.Second,
	}
}

func TestRunSmallTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds tables and simulates a tree")
	}
	if err := run(context.Background(), baseConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadShield(t *testing.T) {
	cfg := baseConfig()
	cfg.shield = "bogus"
	if err := run(context.Background(), cfg); err == nil {
		t.Error("accepted unknown shielding")
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	cfg := baseConfig()
	cfg.mode = "rlcc"
	if err := run(context.Background(), cfg); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestRunResumeNeedsCheckpointDir(t *testing.T) {
	cfg := baseConfig()
	cfg.resume = true
	if err := run(context.Background(), cfg); err == nil {
		t.Error("accepted -resume without -checkpoint")
	}
}

func TestPeakRSSReported(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/proc/self/status is linux-only")
	}
	if peakRSSBytes() <= 0 {
		t.Error("peakRSSBytes returned nothing on linux")
	}
}

var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
)

// binary builds treesim once per test run.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "treesim-test-*")
		if err != nil {
			buildErr = err
			return
		}
		buildPath = filepath.Join(dir, "treesim")
		out, err := exec.Command("go", "build", "-o", buildPath, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildPath
}

// statsLine parses the machine-readable "stats mode=... k=v ..." line
// for the given mode out of a treesim stdout dump.
func statsLine(t *testing.T, out, mode string) map[string]string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "stats mode="+mode+" ") && line != "stats mode="+mode {
			continue
		}
		kv := map[string]string{}
		for _, f := range strings.Fields(line)[1:] {
			if k, v, ok := strings.Cut(f, "="); ok {
				kv[k] = v
			}
		}
		return kv
	}
	t.Fatalf("no stats line for mode %s in output:\n%s", mode, out)
	return nil
}

func intField(t *testing.T, kv map[string]string, key string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(kv[key], 10, 64)
	if err != nil {
		t.Fatalf("stats field %s = %q: %v", key, kv[key], err)
	}
	return v
}

// ckptFiles lists the checkpoint records under a -checkpoint dir
// (they live one job-key subdirectory down).
func ckptFiles(dir string) []string {
	matches, _ := filepath.Glob(filepath.Join(dir, "*", "ckpt-*.ck"))
	return matches
}

// TestKillAndResumeBitIdenticalSkew is the end-to-end crash drill the
// tentpole exists for: a run is SIGKILLed mid-analysis, its newest
// checkpoint is additionally bit-rotted, and the resumed run must
// still finish with bit-identical skew while re-simulating strictly
// fewer stages than a cold run.
func TestKillAndResumeBitIdenticalSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("builds tables, simulates trees in subprocesses")
	}
	bin := binary(t)
	work := t.TempDir()
	cache := filepath.Join(work, "cache")
	args := func(ckDir string, extra ...string) []string {
		return append([]string{
			"-levels", "3", "-mode", "rlc", "-imbalance-spread", "40",
			"-cache", cache, "-checkpoint", ckDir, "-checkpoint-stages", "1",
		}, extra...)
	}

	// Cold reference run (also warms the table cache).
	coldDir := filepath.Join(work, "ck-cold")
	out, err := exec.Command(bin, args(coldDir)...).CombinedOutput()
	if err != nil {
		t.Fatalf("cold run: %v\n%s", err, out)
	}
	cold := statsLine(t, string(out), "rlc")
	coldSims := intField(t, cold, "sims_this_run")
	if coldSims < 5 {
		t.Fatalf("cold run simulated only %d stages; the kill window is too small", coldSims)
	}
	if dedup := intField(t, cold, "deduped"); dedup == 0 {
		t.Error("cold run deduped nothing; memoization is off?")
	}

	// Victim run: SIGKILL once at least two checkpoint generations
	// exist (so corrupting the newest still leaves a fallback).
	killDir := filepath.Join(work, "ck-kill")
	victim := exec.Command(bin, args(killDir)...)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- victim.Wait() }()
	deadline := time.Now().Add(3 * time.Minute)
	for len(ckptFiles(killDir)) < 2 {
		select {
		case werr := <-done:
			t.Fatalf("victim finished before the kill (%v); raise the workload", werr)
		case <-time.After(5 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			victim.Process.Kill()
			<-done
			t.Fatal("no two checkpoint generations appeared before the deadline")
		}
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	werr := <-done
	ee, ok := werr.(*exec.ExitError)
	if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("victim did not die by SIGKILL: %v (it may have finished before the kill; raise the workload)", werr)
	}
	files := ckptFiles(killDir)
	if len(files) < 2 {
		t.Fatalf("only %d checkpoint generations survived the kill", len(files))
	}

	// Bit-rot the newest surviving generation: resume must detect it,
	// count it, and fall back to the older one.
	newestPath := files[0]
	for _, f := range files[1:] {
		if filepath.Base(f) > filepath.Base(newestPath) {
			newestPath = f
		}
	}
	data, err := os.ReadFile(newestPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(newestPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out, err = exec.Command(bin, args(killDir, "-resume")...).CombinedOutput()
	if err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out)
	}
	res := statsLine(t, string(out), "rlc")
	if res["skew_s"] != cold["skew_s"] {
		t.Errorf("resumed skew %s != cold skew %s (must be bit-identical)", res["skew_s"], cold["skew_s"])
	}
	for _, key := range []string{"min_s", "max_s", "mean_s", "min_leaf", "max_leaf", "leaves", "simulated", "deduped"} {
		if res[key] != cold[key] {
			t.Errorf("resumed %s = %s, cold = %s", key, res[key], cold[key])
		}
	}
	if got := intField(t, res, "sims_this_run"); got >= coldSims {
		t.Errorf("resumed run re-simulated %d stages, cold run needed %d — nothing was saved", got, coldSims)
	}
	if intField(t, res, "resumed_seq") == 0 {
		t.Error("resumed run reports no checkpoint sequence")
	}
	if intField(t, res, "ckpt_resumes") == 0 {
		t.Error("ckpt.resumes counter did not advance")
	}
	if intField(t, res, "ckpt_corrupt") == 0 {
		t.Error("bit-rotted newest checkpoint was not counted as corrupt")
	}
}
