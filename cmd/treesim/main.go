// Command treesim builds a buffered H-tree clock network (the paper's
// Fig. 7 application), extracts every segment with the table-based
// flow, analyses the tree with the streaming memoized walk, and
// reports arrival statistics and skew — with and without inductance.
//
// Deep trees are first-class: the walk keeps O(levels) state (no
// 4^levels arrivals slice), dedups identical stage transients, and —
// with -checkpoint — durably saves its position so a crash or SIGKILL
// resumes (-resume) instead of restarting.
//
// Examples:
//
//	treesim -levels 2 -span 4000 -shield coplanar -imbalance 4
//	treesim -levels 10 -mode rlc -checkpoint /var/tmp/ck -resume
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"clockrlc/internal/ckpt"
	"clockrlc/internal/cliobs"
	"clockrlc/internal/clocktree"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

// config carries every knob of a treesim run; the flag set fills one
// in main and tests construct them directly.
type config struct {
	levels          int
	span            float64 // µm
	wsig, wgnd      float64 // µm
	space           float64 // µm
	shield          string
	tr              float64 // ps
	rdrv            float64 // Ω
	cin             float64 // fF
	imbalance       float64
	imbalanceSpread int
	mode            string // rc, rlc or both
	samples         int
	cacheDir        string
	lookupPol       string
	ckptDir         string
	resume          bool
	ckptStages      int
	ckptInterval    time.Duration
}

func main() {
	obsFlags := cliobs.AddFlags(flag.CommandLine)
	var cfg config
	flag.IntVar(&cfg.levels, "levels", 2, "buffer levels (leaves = 4^levels)")
	flag.Float64Var(&cfg.span, "span", 4000, "top-level half span (µm)")
	flag.Float64Var(&cfg.wsig, "wsig", 10, "signal width (µm)")
	flag.Float64Var(&cfg.wgnd, "wgnd", 5, "shield width (µm)")
	flag.Float64Var(&cfg.space, "space", 1, "spacing (µm)")
	flag.StringVar(&cfg.shield, "shield", "coplanar", "coplanar or microstrip")
	flag.Float64Var(&cfg.tr, "tr", 50, "buffer output rise time (ps)")
	flag.Float64Var(&cfg.rdrv, "rdrv", 40, "buffer drive resistance (Ω)")
	flag.Float64Var(&cfg.cin, "cin", 50, "buffer input capacitance (fF)")
	flag.Float64Var(&cfg.imbalance, "imbalance", 1, "load multiplier on leaf 0")
	flag.IntVar(&cfg.imbalanceSpread, "imbalance-spread", 0,
		"give the first `n` leaves distinct loads (defeats stage dedup for stress runs)")
	flag.StringVar(&cfg.mode, "mode", "both", "extraction `mode`: rc, rlc or both")
	flag.IntVar(&cfg.samples, "samples", 0, "keep a deterministic reservoir of `n` raw arrivals")
	flag.StringVar(&cfg.cacheDir, "cache", "", "content-addressed table cache directory (reused across runs)")
	flag.StringVar(&cfg.lookupPol, "lookup-policy", "extrapolate",
		"out-of-range table lookup `policy`: extrapolate, clamp or error")
	flag.StringVar(&cfg.ckptDir, "checkpoint", "", "checkpoint `dir`: durably save walk progress for crash recovery")
	flag.BoolVar(&cfg.resume, "resume", false, "resume from the newest valid checkpoint in -checkpoint")
	flag.IntVar(&cfg.ckptStages, "checkpoint-stages", 16, "checkpoint after this many newly simulated stages")
	flag.DurationVar(&cfg.ckptInterval, "checkpoint-interval", 30*time.Second, "checkpoint at least this often")
	flag.Parse()
	sd := cliobs.NotifyShutdown()
	sess, err := obsFlags.Start("treesim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "treesim:", err)
		os.Exit(cliobs.ExitFailure)
	}
	err = run(sess.Context(sd.Context()), cfg)
	sess.Close()
	sd.Stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "treesim:", err)
		os.Exit(sd.ExitCode(err))
	}
}

func run(ctx context.Context, cfg config) error {
	var sh geom.Shielding
	switch cfg.shield {
	case "coplanar":
		sh = geom.ShieldNone
	case "microstrip":
		sh = geom.ShieldMicrostrip
	default:
		return fmt.Errorf("bad -shield %q", cfg.shield)
	}
	var modes []bool
	switch cfg.mode {
	case "rc":
		modes = []bool{false}
	case "rlc":
		modes = []bool{true}
	case "both":
		modes = []bool{false, true}
	default:
		return fmt.Errorf("bad -mode %q (want rc, rlc or both)", cfg.mode)
	}
	lp, err := table.ParseLookupPolicy(cfg.lookupPol)
	if err != nil {
		return fmt.Errorf("-lookup-policy: %w", err)
	}
	if cfg.resume && cfg.ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	tech := core.Technology{
		Thickness:      units.Um(2),
		Rho:            units.RhoCopper,
		EpsRel:         units.EpsSiO2,
		CapHeight:      units.Um(2),
		PlaneGap:       units.Um(2),
		PlaneThickness: units.Um(1),
	}
	freq := units.SignificantFrequency(cfg.tr * units.PicoSecond)
	opts := []core.Option{core.WithLookupPolicy(lp)}
	if cfg.cacheDir != "" {
		cache, cerr := table.NewCache(cfg.cacheDir)
		if cerr != nil {
			return cerr
		}
		opts = append(opts, core.WithTableCache(cache))
	} else {
		fmt.Fprintf(os.Stderr, "building %s tables at %.2f GHz...\n", cfg.shield, freq/1e9)
	}
	ext, err := core.NewExtractorCtx(ctx, tech, freq, table.DefaultAxes(), []geom.Shielding{sh}, opts...)
	if err != nil {
		return err
	}
	seg := core.Segment{
		SignalWidth: units.Um(cfg.wsig),
		GroundWidth: units.Um(cfg.wgnd),
		Spacing:     units.Um(cfg.space),
		Shielding:   sh,
	}
	buf := clocktree.Buffer{
		DriveRes:       cfg.rdrv,
		InputCap:       cfg.cin * units.FemtoFarad,
		IntrinsicDelay: 30 * units.PicoSecond,
		OutSlew:        cfg.tr * units.PicoSecond,
	}
	tree, err := clocktree.NewTree(clocktree.HTreeLevels(units.Um(cfg.span), cfg.levels, seg), buf, ext)
	if err != nil {
		return err
	}
	loads := map[int]float64{}
	if cfg.imbalance != 1 {
		loads[0] = cfg.imbalance
	}
	// Distinct loads defeat stage dedup on purpose: crash/kill drills
	// need a run with many real transients to interrupt.
	for i := 0; i < cfg.imbalanceSpread; i++ {
		loads[i] = 1 + 0.05*float64(i+1)
	}
	sims := obs.GetCounter("clocktree.stages")
	for _, withL := range modes {
		if err := ctx.Err(); err != nil {
			return err
		}
		simOpts := clocktree.SimOptions{WithL: withL, LeafLoadScale: loads, SampleCap: cfg.samples}
		var ck *clocktree.Checkpoint
		if cfg.ckptDir != "" {
			store, serr := tree.OpenCheckpoint(cfg.ckptDir, simOpts)
			if serr != nil {
				return serr
			}
			ck = &clocktree.Checkpoint{
				Store:       store,
				EveryStages: cfg.ckptStages,
				Every:       cfg.ckptInterval,
				Resume:      cfg.resume,
			}
		}
		simsBefore := sims.Value()
		start := time.Now()
		stats, err := tree.AnalyzeCtx(ctx, simOpts, ck)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		rep := stats.SkewReport()
		label, mode := "RC only", "rc"
		if withL {
			label, mode = "RLC    ", "rlc"
		}
		fmt.Printf("%s: %d leaves, arrival %.2f–%.2f ps, skew %.3f ps (early leaf %d, late leaf %d)\n",
			label, rep.Leaves, units.ToPS(rep.MinArrival), units.ToPS(rep.MaxArrival),
			units.ToPS(rep.Skew), rep.MinLeaf, rep.MaxLeaf)
		saves, corrupt, _ := ckpt.Stats()
		fmt.Printf("stats mode=%s leaves=%d skew_s=%.17g min_s=%.17g max_s=%.17g min_leaf=%d max_leaf=%d mean_s=%.17g"+
			" simulated=%d deduped=%d sims_this_run=%d resumed_seq=%d"+
			" ckpt_saves=%d ckpt_resumes=%d ckpt_corrupt=%d wall_s=%.3f peak_rss_bytes=%d\n",
			mode, rep.Leaves, rep.Skew, rep.MinArrival, rep.MaxArrival, rep.MinLeaf, rep.MaxLeaf, stats.Mean(),
			stats.StagesSimulated, stats.StagesDeduped, sims.Value()-simsBefore, stats.ResumedSeq,
			saves, obs.GetCounter("ckpt.resumes").Value(), corrupt, wall.Seconds(), peakRSSBytes())
	}
	return nil
}

// peakRSSBytes reads the process peak resident set (VmHWM) from
// /proc/self/status; 0 where the file or field is unavailable.
func peakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
