// Command treesim builds a buffered H-tree clock network (the paper's
// Fig. 7 application), extracts every segment with the table-based
// flow, simulates the tree stage by stage, and reports per-leaf
// arrival times and skew — with and without inductance.
//
// Example:
//
//	treesim -levels 2 -span 4000 -shield coplanar -imbalance 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"clockrlc/internal/cliobs"
	"clockrlc/internal/clocktree"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/sim"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func main() {
	obsFlags := cliobs.AddFlags(flag.CommandLine)
	var (
		levels    = flag.Int("levels", 2, "buffer levels (leaves = 4^levels)")
		span      = flag.Float64("span", 4000, "top-level half span (µm)")
		wsig      = flag.Float64("wsig", 10, "signal width (µm)")
		wgnd      = flag.Float64("wgnd", 5, "shield width (µm)")
		space     = flag.Float64("space", 1, "spacing (µm)")
		shield    = flag.String("shield", "coplanar", "coplanar or microstrip")
		tr        = flag.Float64("tr", 50, "buffer output rise time (ps)")
		rdrv      = flag.Float64("rdrv", 40, "buffer drive resistance (Ω)")
		cin       = flag.Float64("cin", 50, "buffer input capacitance (fF)")
		imbalance = flag.Float64("imbalance", 1, "load multiplier on leaf 0")
		cacheDir  = flag.String("cache", "", "content-addressed table cache directory (reused across runs)")
		lookupPol = flag.String("lookup-policy", "extrapolate",
			"out-of-range table lookup `policy`: extrapolate, clamp or error")
	)
	flag.Parse()
	sd := cliobs.NotifyShutdown()
	sess, err := obsFlags.Start("treesim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "treesim:", err)
		os.Exit(cliobs.ExitFailure)
	}
	err = run(sess.Context(sd.Context()), *levels, *span, *wsig, *wgnd, *space, *shield, *tr, *rdrv, *cin, *imbalance, *cacheDir, *lookupPol)
	sess.Close()
	sd.Stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "treesim:", err)
		os.Exit(sd.ExitCode(err))
	}
}

func run(ctx context.Context, levels int, span, wsig, wgnd, space float64, shield string,
	tr, rdrv, cin, imbalance float64, cacheDir, lookupPol string) error {
	var sh geom.Shielding
	switch shield {
	case "coplanar":
		sh = geom.ShieldNone
	case "microstrip":
		sh = geom.ShieldMicrostrip
	default:
		return fmt.Errorf("bad -shield %q", shield)
	}
	lp, err := table.ParseLookupPolicy(lookupPol)
	if err != nil {
		return fmt.Errorf("-lookup-policy: %w", err)
	}
	tech := core.Technology{
		Thickness:      units.Um(2),
		Rho:            units.RhoCopper,
		EpsRel:         units.EpsSiO2,
		CapHeight:      units.Um(2),
		PlaneGap:       units.Um(2),
		PlaneThickness: units.Um(1),
	}
	freq := units.SignificantFrequency(tr * units.PicoSecond)
	opts := []core.Option{core.WithLookupPolicy(lp)}
	if cacheDir != "" {
		cache, cerr := table.NewCache(cacheDir)
		if cerr != nil {
			return cerr
		}
		opts = append(opts, core.WithTableCache(cache))
	} else {
		fmt.Fprintf(os.Stderr, "building %s tables at %.2f GHz...\n", shield, freq/1e9)
	}
	ext, err := core.NewExtractorCtx(ctx, tech, freq, table.DefaultAxes(), []geom.Shielding{sh}, opts...)
	if err != nil {
		return err
	}
	seg := core.Segment{
		SignalWidth: units.Um(wsig),
		GroundWidth: units.Um(wgnd),
		Spacing:     units.Um(space),
		Shielding:   sh,
	}
	buf := clocktree.Buffer{
		DriveRes:       rdrv,
		InputCap:       cin * units.FemtoFarad,
		IntrinsicDelay: 30 * units.PicoSecond,
		OutSlew:        tr * units.PicoSecond,
	}
	tree, err := clocktree.NewTree(clocktree.HTreeLevels(units.Um(span), levels, seg), buf, ext)
	if err != nil {
		return err
	}
	loads := map[int]float64{}
	if imbalance != 1 {
		loads[0] = imbalance
	}
	for _, withL := range []bool{false, true} {
		if err := ctx.Err(); err != nil {
			return err
		}
		arr, err := tree.ArrivalsCtx(ctx, clocktree.SimOptions{WithL: withL, LeafLoadScale: loads})
		if err != nil {
			return err
		}
		skew, early, late := sim.Skew(arr)
		label := "RC only"
		if withL {
			label = "RLC    "
		}
		fmt.Printf("%s: %d leaves, arrival %.2f–%.2f ps, skew %.3f ps (early leaf %d, late leaf %d)\n",
			label, len(arr), units.ToPS(arr[early]), units.ToPS(arr[late]),
			units.ToPS(skew), early, late)
	}
	return nil
}
