package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
)

// binary builds rlcxd once per test run.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rlcxd-test-*")
		if err != nil {
			buildErr = err
			return
		}
		buildPath = filepath.Join(dir, "rlcxd")
		out, err := exec.Command("go", "build", "-o", buildPath, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildPath
}

type daemon struct {
	cmd  *exec.Cmd
	addr string
	errB *bytes.Buffer
}

// startDaemon launches rlcxd on a free port and waits for the listen
// line.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(binary(t), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	errB := &bytes.Buffer{}
	cmd.Stderr = errB
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	lines := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if _, a, ok := strings.Cut(lines.Text(), "listening on "); ok {
				addrCh <- a
				break
			}
		}
		close(addrCh)
	}()
	select {
	case a, ok := <-addrCh:
		if !ok {
			cmd.Wait()
			t.Fatalf("rlcxd exited before listening; stderr: %s", errB)
		}
		return &daemon{cmd: cmd, addr: a, errB: errB}
	case <-time.After(30 * time.Second):
		t.Fatal("rlcxd never printed its listen address")
	}
	return nil
}

// wait returns the daemon's exit code, failing the test if it does
// not exit within the deadline.
func (d *daemon) wait(t *testing.T, deadline time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
		return d.cmd.ProcessState.ExitCode()
	case <-time.After(deadline):
		d.cmd.Process.Kill()
		t.Fatalf("rlcxd did not exit; stderr: %s", d.errB)
		return -1
	}
}

func (d *daemon) post(t *testing.T, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+d.addr+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// inflightNonzero reports whether the daemon's /metrics shows at
// least one request in the handlers.
func inflightNonzero(addr string) bool {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return false
	}
	for _, line := range strings.Split(string(body), "\n") {
		if f, ok := strings.CutPrefix(line, "clockrlc_serve_inflight "); ok {
			return strings.TrimSpace(f) != "0"
		}
	}
	return false
}

func smallBatch(segments int) string {
	seg := `{"length_um": 2000, "signal_width_um": 4, "ground_width_um": 4, "spacing_um": 2}`
	return fmt.Sprintf(`{"rise_time_ps": 50, "segments": [%s]}`,
		strings.Repeat(seg+",", segments-1)+seg)
}

// The shell convention: SIGTERM after a drain exits 143, SIGINT 130.
func TestSignalExitCodes(t *testing.T) {
	for sig, want := range map[syscall.Signal]int{
		syscall.SIGTERM: 143,
		syscall.SIGINT:  130,
	} {
		d := startDaemon(t)
		if status, body := d.post(t, smallBatch(2)); status != http.StatusOK {
			t.Fatalf("batch before %v: status %d: %s", sig, status, body)
		}
		if err := d.cmd.Process.Signal(sig); err != nil {
			t.Fatal(err)
		}
		if code := d.wait(t, 30*time.Second); code != want {
			t.Errorf("%v: exit code %d, want %d; stderr: %s", sig, code, want, d.errB)
		}
	}
}

// SIGTERM under load drains: the in-flight batch completes with 200
// and the process still exits 143.
func TestSIGTERMDrainsInFlightRequests(t *testing.T) {
	d := startDaemon(t)
	// Warm the tables so the big batch is pure lookup work.
	if status, body := d.post(t, smallBatch(1)); status != http.StatusOK {
		t.Fatalf("warmup: status %d: %s", status, body)
	}

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post("http://"+d.addr+"/v1/batch", "application/json",
				strings.NewReader(smallBatch(20000)))
			if err != nil {
				results <- result{status: -1, body: []byte(err.Error())}
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			results <- result{status: resp.StatusCode, body: body}
		}()
	}
	// Stop the daemon only once the requests are demonstrably in the
	// handlers (the inflight gauge on /metrics), so the drain is
	// genuinely exercised.
	deadline := time.Now().Add(10 * time.Second)
	for !inflightNonzero(d.addr) {
		if time.Now().After(deadline) {
			t.Fatal("requests never went in flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.status != http.StatusOK {
			t.Errorf("in-flight request: status %d: %.200s", r.status, r.body)
			continue
		}
		var resp struct {
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(r.body, &resp); err != nil || len(resp.Results) != 20000 {
			t.Errorf("truncated drain response: %d results, err %v", len(resp.Results), err)
		}
	}
	if code := d.wait(t, 60*time.Second); code != 143 {
		t.Errorf("exit code %d, want 143; stderr: %s", code, d.errB)
	}
}

// getHealthz returns /healthz's status code, or 0 if the daemon is
// unreachable.
func getHealthz(addr string) (int, string) {
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// With a drain grace window, SIGTERM flips /healthz to 503 while the
// listener still answers — the window load balancers need to route
// around the drain — and the process still exits 143.
func TestHealthzDuringDrain(t *testing.T) {
	d := startDaemon(t, "-drain-grace", "3s")
	if status, body := getHealthz(d.addr); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz before drain: %d %q", status, body)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Inside the grace window the probe must observe the 503 flip.
	deadline := time.Now().Add(2 * time.Second)
	saw503 := false
	for time.Now().Before(deadline) {
		status, body := getHealthz(d.addr)
		if status == http.StatusServiceUnavailable && strings.Contains(body, "draining") {
			saw503 = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !saw503 {
		t.Error("healthz never answered 503 draining during the grace window")
	}
	// New extraction requests inside the window are refused, not hung.
	if status, body := d.post(t, smallBatch(1)); status != http.StatusServiceUnavailable {
		t.Errorf("batch during drain: status %d, want 503: %s", status, body)
	}
	if code := d.wait(t, 30*time.Second); code != 143 {
		t.Errorf("exit code %d, want 143; stderr: %s", code, d.errB)
	}
}
