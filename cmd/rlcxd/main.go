// Command rlcxd serves clocktree RLC extraction over HTTP/JSON: a
// resident daemon holding mmapped table sets in a refcounted registry
// over the content-addressed cache, so a CTS flow extracts thousands
// of nets against tables that are built (or mapped) once.
//
// Endpoints: POST /v1/extract (one segment), POST /v1/batch (a batch
// at one rise time), GET /healthz, GET /metrics (Prometheus text),
// /debug/vars and /debug/pprof/*.
//
// Example:
//
//	rlcxd -addr :8650 -cache /var/cache/rlcx
//
// Overload behavior: -max-inflight/-queue/-queue-wait bound admitted
// concurrency (excess requests are shed with 429 + Retry-After),
// -request-timeout caps every request's extraction budget (clients
// may lower it via timeout_ms; exceeding it is 503 + Retry-After),
// and -breaker-failures/-breaker-cooldown arm the per-table-key
// cold-build circuit breaker so a failing solver answers with a fast
// 503 instead of a stampede of sweeps.
//
// SIGINT/SIGTERM drain gracefully: readiness flips first (/healthz
// answers 503 for -drain-grace so load balancers stop routing), the
// listener closes, in-flight requests finish (bounded by -drain),
// table mappings are released, and the process exits 130/143 so
// supervisors can tell a stop from a crash. A second signal exits
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/cliobs"
	"clockrlc/internal/core"
	"clockrlc/internal/obs"
	"clockrlc/internal/serve"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

// options collects the daemon's flag values.
type options struct {
	addr, cacheDir       string
	maxSets, workers     int
	thickness, capHeight float64
	checkPol, lookupPol  string
	drain, drainGrace    time.Duration
	requestTimeout       time.Duration
	maxInflight, queue   int
	queueWait            time.Duration
	breakerFailures      int
	breakerCooldown      time.Duration
}

func main() {
	obsFlags := cliobs.AddFlags(flag.CommandLine)
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8650", "listen `address` (host:port; :0 picks a free port)")
	flag.StringVar(&o.cacheDir, "cache", "", "content-addressed table cache `directory` (empty: build in memory only)")
	flag.IntVar(&o.maxSets, "max-sets", 64, "resident table sets before LRU eviction (0 = unbounded)")
	flag.IntVar(&o.workers, "workers", 0, "table-build worker pool size (0 = GOMAXPROCS)")
	flag.Float64Var(&o.thickness, "thickness", 2, "metal thickness (µm)")
	flag.Float64Var(&o.capHeight, "caph", 2, "height over the capacitive reference (µm)")
	flag.StringVar(&o.lookupPol, "lookup-policy", "extrapolate",
		"default out-of-range table lookup `policy`: extrapolate, clamp or error (requests may override)")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "graceful-shutdown `timeout` for in-flight requests")
	flag.DurationVar(&o.drainGrace, "drain-grace", 0,
		"`window` between flipping /healthz to 503 and closing the listener, so load balancers observe the drain")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 30*time.Second,
		"per-request extraction `budget`; requests may lower it via timeout_ms but never raise it (0 = none)")
	flag.IntVar(&o.maxInflight, "max-inflight", 64,
		"concurrently admitted extract/batch requests before queueing (0 = unbounded)")
	flag.IntVar(&o.queue, "queue", 64, "requests allowed to wait for an admission slot before shedding (429)")
	flag.DurationVar(&o.queueWait, "queue-wait", time.Second, "max `time` a queued request waits before shedding")
	flag.IntVar(&o.breakerFailures, "breaker-failures", 5,
		"consecutive cold-build failures that open a table key's circuit breaker (0 = off)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 5*time.Second,
		"`time` an open circuit breaker sheds cold builds before probing again")
	flag.Parse()
	sd := cliobs.NotifyShutdown()
	sess, err := obsFlags.Start("rlcxd")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcxd:", err)
		os.Exit(cliobs.ExitFailure)
	}
	o.checkPol = obsFlags.Check
	err = run(sess.Context(sd.Context()), o)
	sess.Close()
	sd.Stop()
	if err != nil {
		if code := sd.ExitCode(err); code >= 128 {
			// Signal-initiated stop after a clean drain: not a failure,
			// but the exit code tells the supervisor which signal.
			fmt.Fprintln(os.Stderr, "rlcxd: drained and stopped on signal")
			os.Exit(code)
		}
		fmt.Fprintln(os.Stderr, "rlcxd:", err)
		os.Exit(sd.ExitCode(err))
	}
}

func run(ctx context.Context, o options) error {
	checkPolicy, err := check.ParsePolicy(o.checkPol)
	if err != nil {
		return fmt.Errorf("-check: %w", err)
	}
	lp, err := table.ParseLookupPolicy(o.lookupPol)
	if err != nil {
		return fmt.Errorf("-lookup-policy: %w", err)
	}
	var cache *table.Cache
	if o.cacheDir != "" {
		cache, err = table.NewCache(o.cacheDir)
		if err != nil {
			return fmt.Errorf("-cache: %w", err)
		}
	}
	s, err := serve.New(serve.Config{
		Tech: core.Technology{
			Thickness:      units.Um(o.thickness),
			Rho:            units.RhoCopper,
			EpsRel:         units.EpsSiO2,
			CapHeight:      units.Um(o.capHeight),
			PlaneGap:       units.Um(2),
			PlaneThickness: units.Um(1),
		},
		Cache:           cache,
		MaxSets:         o.maxSets,
		Workers:         o.workers,
		DefaultCheck:    checkPolicy,
		DefaultLookup:   lp,
		Observer:        obs.Default(),
		MaxInFlight:     o.maxInflight,
		QueueDepth:      o.queue,
		QueueWait:       o.queueWait,
		RequestTimeout:  o.requestTimeout,
		BreakerFailures: o.breakerFailures,
		BreakerCooldown: o.breakerCooldown,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	// The line scripts parse for the bound port — keep the format.
	fmt.Printf("rlcxd: listening on %s\n", ln.Addr())

	// Requests deliberately do NOT inherit the shutdown context: the
	// first signal stops accepting but lets in-flight extractions
	// finish inside the drain budget. The second-signal hard exit in
	// cliobs remains the escape hatch. The read/write/idle timeouts
	// bound what a slow or stalled client can hold open (slowloris);
	// the write timeout is generous because it covers the handler —
	// a cold build plus a 20k-segment response must fit inside it.
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return fmt.Errorf("rlcxd: serve: %w", err)
	case <-ctx.Done():
	}
	// Readiness flips before the listener closes: /healthz answers 503
	// for the grace window so load balancers route around the drain,
	// then Shutdown refuses new connections and waits for in-flight
	// requests.
	s.StartDrain()
	if o.drainGrace > 0 {
		select {
		case <-time.After(o.drainGrace):
		case err := <-errCh:
			return fmt.Errorf("rlcxd: serve: %w", err)
		}
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
		return fmt.Errorf("rlcxd: drain: %w", err)
	}
	if err := s.Drain(drainCtx); err != nil {
		return fmt.Errorf("rlcxd: drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// A signal-initiated stop exits 130/143 via the cancellation
	// surfacing through ExitCode.
	return ctx.Err()
}
