// Command rlcxd serves clocktree RLC extraction over HTTP/JSON: a
// resident daemon holding mmapped table sets in a refcounted registry
// over the content-addressed cache, so a CTS flow extracts thousands
// of nets against tables that are built (or mapped) once.
//
// Endpoints: POST /v1/extract (one segment), POST /v1/batch (a batch
// at one rise time), GET /healthz, GET /metrics (Prometheus text),
// /debug/vars and /debug/pprof/*.
//
// Example:
//
//	rlcxd -addr :8650 -cache /var/cache/rlcx
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests finish (bounded by -drain), table mappings are released,
// and the process exits 130/143 so supervisors can tell a stop from a
// crash. A second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/cliobs"
	"clockrlc/internal/core"
	"clockrlc/internal/obs"
	"clockrlc/internal/serve"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func main() {
	obsFlags := cliobs.AddFlags(flag.CommandLine)
	var (
		addr      = flag.String("addr", "127.0.0.1:8650", "listen `address` (host:port; :0 picks a free port)")
		cacheDir  = flag.String("cache", "", "content-addressed table cache `directory` (empty: build in memory only)")
		maxSets   = flag.Int("max-sets", 64, "resident table sets before LRU eviction (0 = unbounded)")
		workers   = flag.Int("workers", 0, "table-build worker pool size (0 = GOMAXPROCS)")
		thickness = flag.Float64("thickness", 2, "metal thickness (µm)")
		capHeight = flag.Float64("caph", 2, "height over the capacitive reference (µm)")
		lookupPol = flag.String("lookup-policy", "extrapolate",
			"default out-of-range table lookup `policy`: extrapolate, clamp or error (requests may override)")
		drain = flag.Duration("drain", 30*time.Second, "graceful-shutdown `timeout` for in-flight requests")
	)
	flag.Parse()
	sd := cliobs.NotifyShutdown()
	sess, err := obsFlags.Start("rlcxd")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcxd:", err)
		os.Exit(cliobs.ExitFailure)
	}
	err = run(sess.Context(sd.Context()), *addr, *cacheDir, *maxSets, *workers,
		*thickness, *capHeight, obsFlags.Check, *lookupPol, *drain)
	sess.Close()
	sd.Stop()
	if err != nil {
		if code := sd.ExitCode(err); code >= 128 {
			// Signal-initiated stop after a clean drain: not a failure,
			// but the exit code tells the supervisor which signal.
			fmt.Fprintln(os.Stderr, "rlcxd: drained and stopped on signal")
			os.Exit(code)
		}
		fmt.Fprintln(os.Stderr, "rlcxd:", err)
		os.Exit(sd.ExitCode(err))
	}
}

func run(ctx context.Context, addr, cacheDir string, maxSets, workers int,
	thickness, capHeight float64, checkPol, lookupPol string, drain time.Duration) error {
	checkPolicy, err := check.ParsePolicy(checkPol)
	if err != nil {
		return fmt.Errorf("-check: %w", err)
	}
	lp, err := table.ParseLookupPolicy(lookupPol)
	if err != nil {
		return fmt.Errorf("-lookup-policy: %w", err)
	}
	var cache *table.Cache
	if cacheDir != "" {
		cache, err = table.NewCache(cacheDir)
		if err != nil {
			return fmt.Errorf("-cache: %w", err)
		}
	}
	s, err := serve.New(serve.Config{
		Tech: core.Technology{
			Thickness:      units.Um(thickness),
			Rho:            units.RhoCopper,
			EpsRel:         units.EpsSiO2,
			CapHeight:      units.Um(capHeight),
			PlaneGap:       units.Um(2),
			PlaneThickness: units.Um(1),
		},
		Cache:         cache,
		MaxSets:       maxSets,
		Workers:       workers,
		DefaultCheck:  checkPolicy,
		DefaultLookup: lp,
		Observer:      obs.Default(),
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	// The line scripts parse for the bound port — keep the format.
	fmt.Printf("rlcxd: listening on %s\n", ln.Addr())

	// Requests deliberately do NOT inherit the shutdown context: the
	// first signal stops accepting but lets in-flight extractions
	// finish inside the drain budget. The second-signal hard exit in
	// cliobs remains the escape hatch.
	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return fmt.Errorf("rlcxd: serve: %w", err)
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		srv.Close()
		return fmt.Errorf("rlcxd: drain: %w", err)
	}
	if err := s.Drain(drainCtx); err != nil {
		return fmt.Errorf("rlcxd: drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// A signal-initiated stop exits 130/143 via the cancellation
	// surfacing through ExitCode.
	return ctx.Err()
}
