// Command rlcxload drives an rlcxd daemon with concurrent batch
// extraction requests and reports throughput and latency percentiles
// as JSON — the serve-mode benchmark harness, and a cold-cache
// coalescing probe (every worker's first request misses the same
// table keys; the daemon must run one solver sweep per unique key).
//
// Example:
//
//	rlcxd -addr 127.0.0.1:8650 -cache /tmp/c &
//	rlcxload -addr 127.0.0.1:8650 -n 2000 -c 32 -batch 8
//
// With -inprocess the same workload also runs directly against the
// core batch API in this process (same technology, same axes), and
// the report adds the served-over-in-process p50 ratio — the HTTP,
// JSON and registry overhead per request.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clockrlc/internal/cliobs"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

// segmentJSON mirrors the serve wire schema (the cmd speaks the wire
// format rather than importing the serve types: a load generator
// should exercise the contract, not share the implementation).
type segmentJSON struct {
	LengthUm      float64 `json:"length_um"`
	SignalWidthUm float64 `json:"signal_width_um"`
	GroundWidthUm float64 `json:"ground_width_um"`
	SpacingUm     float64 `json:"spacing_um"`
	Shielding     string  `json:"shielding,omitempty"`
}

type batchJSON struct {
	RiseTimePs float64       `json:"rise_time_ps"`
	Segments   []segmentJSON `json:"segments"`
}

// report is the emitted measurement; the serve bench pass commits
// these fields to BENCH_serve.json.
type report struct {
	Requests       int     `json:"requests"`
	Concurrency    int     `json:"concurrency"`
	Batch          int     `json:"batch"`
	Errors         int64   `json:"errors"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50Ns          int64   `json:"p50_ns"`
	P90Ns          int64   `json:"p90_ns"`
	P99Ns          int64   `json:"p99_ns"`
	InProcessP50Ns int64   `json:"inprocess_p50_ns,omitempty"`
	VsInProcessP50 float64 `json:"serve_vs_inprocess_p50,omitempty"`
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8650", "rlcxd `address` (host:port)")
		n         = flag.Int("n", 2000, "total requests")
		c         = flag.Int("c", 32, "concurrent workers")
		batch     = flag.Int("batch", 8, "segments per request")
		tr        = flag.Float64("tr", 50, "rise time (ps)")
		warm      = flag.Int("warm", 64, "warmup requests excluded from the measurement")
		inprocess = flag.Bool("inprocess", false, "also run the workload against the in-process batch API and report the p50 ratio")
		out       = flag.String("o", "", "write the JSON report to `file` (default stdout)")
	)
	flag.Parse()
	sd := cliobs.NotifyShutdown()
	defer sd.Stop()
	rep, err := run(sd.Context(), *addr, *n, *c, *batch, *tr, *warm, *inprocess)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcxload:", err)
		os.Exit(sd.ExitCode(err))
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcxload:", err)
		os.Exit(cliobs.ExitFailure)
	}
	b = append(b, '\n')
	if *out != "" {
		err = os.WriteFile(*out, b, 0o644)
	} else {
		_, err = os.Stdout.Write(b)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcxload:", err)
		os.Exit(cliobs.ExitFailure)
	}
}

// segments cycles a small pool of realistic geometries (all inside
// the default axes) with mixed shielding so the daemon exercises more
// than one table set.
func segments(batch, seed int) []segmentJSON {
	pool := []segmentJSON{
		{LengthUm: 6000, SignalWidthUm: 10, GroundWidthUm: 5, SpacingUm: 1},
		{LengthUm: 2000, SignalWidthUm: 4, GroundWidthUm: 4, SpacingUm: 2},
		{LengthUm: 800, SignalWidthUm: 2, GroundWidthUm: 2, SpacingUm: 1.5},
		{LengthUm: 4000, SignalWidthUm: 6, GroundWidthUm: 3, SpacingUm: 1.2, Shielding: "microstrip"},
		{LengthUm: 1500, SignalWidthUm: 3, GroundWidthUm: 3, SpacingUm: 2.5, Shielding: "microstrip"},
	}
	segs := make([]segmentJSON, batch)
	for i := range segs {
		segs[i] = pool[(seed+i)%len(pool)]
	}
	return segs
}

func run(ctx context.Context, addr string, n, c, batch int, tr float64, warm int, inprocess bool) (*report, error) {
	if n <= 0 || c <= 0 || batch <= 0 {
		return nil, fmt.Errorf("-n, -c and -batch must be positive")
	}
	url := "http://" + addr + "/v1/batch"
	client := &http.Client{Timeout: 5 * time.Minute}

	post := func(seed int) error {
		body, err := json.Marshal(batchJSON{RiseTimePs: tr, Segments: segments(batch, seed)})
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d: %s", resp.StatusCode, out)
		}
		return nil
	}

	// Warmup builds (or maps) the daemon's table sets and fills
	// connection pools; run it at full concurrency so a cold daemon
	// also demonstrates miss coalescing.
	if err := fanout(ctx, warm, c, func(i int) (time.Duration, error) {
		t0 := time.Now()
		err := post(i)
		return time.Since(t0), err
	}, nil); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}

	lat := make([]time.Duration, n)
	var errs atomic.Int64
	t0 := time.Now()
	err := fanout(ctx, n, c, func(i int) (time.Duration, error) {
		s0 := time.Now()
		err := post(i)
		return time.Since(s0), err
	}, func(i int, d time.Duration, err error) {
		lat[i] = d
		if err != nil {
			errs.Add(1)
		}
	})
	wall := time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("%d of %d requests failed; first: %w", errs.Load(), n, err)
	}

	rep := &report{
		Requests:      n,
		Concurrency:   c,
		Batch:         batch,
		Errors:        errs.Load(),
		ThroughputRPS: float64(n) / wall.Seconds(),
		P50Ns:         percentile(lat, 50),
		P90Ns:         percentile(lat, 90),
		P99Ns:         percentile(lat, 99),
	}
	if inprocess {
		p50, err := inProcessP50(ctx, n, c, batch, tr)
		if err != nil {
			return nil, fmt.Errorf("in-process pass: %w", err)
		}
		rep.InProcessP50Ns = p50
		if p50 > 0 {
			rep.VsInProcessP50 = float64(rep.P50Ns) / float64(p50)
		}
	}
	return rep, nil
}

// fanout runs n calls across c workers, recording each result through
// done (when non-nil), and returns the first error (workers keep
// draining their claims; a load run wants the full error count, not a
// stop at the first failure).
func fanout(ctx context.Context, n, c int, call func(i int) (time.Duration, error),
	done func(i int, d time.Duration, err error)) error {
	if n == 0 {
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errMu   sync.Mutex
		wgFirst error
	)
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				d, err := call(i)
				if done != nil {
					done(i, d, err)
				}
				if err != nil {
					errMu.Lock()
					if wgFirst == nil {
						wgFirst = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return wgFirst
}

func percentile(lat []time.Duration, p int) int64 {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s) - 1) * p / 100
	return s[idx].Nanoseconds()
}

// inProcessP50 runs the same batches straight through the vectorized
// core batch API — same technology, axes and table physics as the
// daemon's defaults — and reports the p50 per-batch latency. The
// daemon's warm p50 over this number is the service overhead.
func inProcessP50(ctx context.Context, n, c, batch int, tr float64) (int64, error) {
	tech := core.Technology{
		Thickness:      units.Um(2),
		Rho:            units.RhoCopper,
		EpsRel:         units.EpsSiO2,
		CapHeight:      units.Um(2),
		PlaneGap:       units.Um(2),
		PlaneThickness: units.Um(1),
	}
	freq := units.SignificantFrequency(tr * units.PicoSecond)
	axes := table.DefaultAxes()
	var sets []*table.Set
	for _, sh := range []geom.Shielding{geom.ShieldNone, geom.ShieldMicrostrip} {
		cfg := table.Config{
			Name:           "rlcxload/" + sh.String(),
			Thickness:      tech.Thickness,
			Rho:            tech.Rho,
			Shielding:      sh,
			PlaneGap:       tech.PlaneGap,
			PlaneThickness: tech.PlaneThickness,
			Frequency:      freq,
		}
		set, err := table.BuildCtx(ctx, cfg, axes, nil)
		if err != nil {
			return 0, err
		}
		sets = append(sets, set)
	}
	ext, err := core.NewExtractorFromTables(tech, freq, sets...)
	if err != nil {
		return 0, err
	}

	toCore := func(segs []segmentJSON) ([]core.Segment, error) {
		out := make([]core.Segment, len(segs))
		for i, s := range segs {
			sh := geom.ShieldNone
			if s.Shielding == "microstrip" {
				sh = geom.ShieldMicrostrip
			}
			out[i] = core.Segment{
				Length:      units.Um(s.LengthUm),
				SignalWidth: units.Um(s.SignalWidthUm),
				GroundWidth: units.Um(s.GroundWidthUm),
				Spacing:     units.Um(s.SpacingUm),
				Shielding:   sh,
			}
		}
		return out, nil
	}

	lat := make([]time.Duration, n)
	err = fanout(ctx, n, c, func(i int) (time.Duration, error) {
		segs, err := toCore(segments(batch, i))
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		if _, err := ext.SegmentsRLCCtx(ctx, segs); err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	}, func(i int, d time.Duration, err error) { lat[i] = d })
	if err != nil {
		return 0, err
	}
	return percentile(lat, 50), nil
}
