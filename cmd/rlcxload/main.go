// Command rlcxload drives an rlcxd daemon with concurrent batch
// extraction requests and reports throughput and latency percentiles
// as JSON — the serve-mode benchmark harness, a cold-cache coalescing
// probe (every worker's first request misses the same table keys; the
// daemon must run one solver sweep per unique key), and the overload
// probe (drive it past -max-inflight and the daemon must shed with
// 429 instead of collapsing).
//
// Shed (429) and unavailable (503) responses are retried with
// capped-exponential backoff and deterministic jitter, honoring the
// daemon's Retry-After header. Percentiles cover admitted (2xx)
// requests only; failures are counted separately per status in
// errors_by_status, alongside shed/retry/timeout totals.
//
// Example:
//
//	rlcxd -addr 127.0.0.1:8650 -cache /tmp/c &
//	rlcxload -addr 127.0.0.1:8650 -n 2000 -c 32 -batch 8
//
// With -inprocess the same workload also runs directly against the
// core batch API in this process (same technology, same axes), and
// the report adds the served-over-in-process p50 ratio — the HTTP,
// JSON and registry overhead per request.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"clockrlc/internal/cliobs"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

// segmentJSON mirrors the serve wire schema (the cmd speaks the wire
// format rather than importing the serve types: a load generator
// should exercise the contract, not share the implementation).
type segmentJSON struct {
	LengthUm      float64 `json:"length_um"`
	SignalWidthUm float64 `json:"signal_width_um"`
	GroundWidthUm float64 `json:"ground_width_um"`
	SpacingUm     float64 `json:"spacing_um"`
	Shielding     string  `json:"shielding,omitempty"`
}

type batchJSON struct {
	RiseTimePs float64       `json:"rise_time_ps"`
	Segments   []segmentJSON `json:"segments"`
}

// report is the emitted measurement; the serve and overload bench
// passes commit these fields to BENCH_serve.json/BENCH_overload.json.
// Percentiles and throughput cover admitted (2xx) requests only:
// folding shed or failed requests into latency numbers would reward a
// daemon for failing fast. Sheds/retries/timeouts describe the load
// shape, not the code, and are skipped by benchdiff.
type report struct {
	Requests       int              `json:"requests"`
	Concurrency    int              `json:"concurrency"`
	Batch          int              `json:"batch"`
	Errors         int64            `json:"errors"`
	Sheds          int64            `json:"sheds"`
	Retries        int64            `json:"retries"`
	Timeouts       int64            `json:"timeouts"`
	ErrorsByStatus map[string]int64 `json:"errors_by_status,omitempty"`
	ThroughputRPS  float64          `json:"throughput_rps"`
	P50Ns          int64            `json:"p50_ns"`
	P90Ns          int64            `json:"p90_ns"`
	P99Ns          int64            `json:"p99_ns"`
	InProcessP50Ns int64            `json:"inprocess_p50_ns,omitempty"`
	VsInProcessP50 float64          `json:"serve_vs_inprocess_p50,omitempty"`
}

// retryOpts is the client-side backoff schedule for 429/503
// responses.
type retryOpts struct {
	retries int           // re-attempts after the first try
	base    time.Duration // first backoff
	cap     time.Duration // backoff and Retry-After ceiling
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8650", "rlcxd `address` (host:port)")
		n         = flag.Int("n", 2000, "total requests")
		c         = flag.Int("c", 32, "concurrent workers")
		batch     = flag.Int("batch", 8, "segments per request")
		tr        = flag.Float64("tr", 50, "rise time (ps)")
		warm      = flag.Int("warm", 64, "warmup requests excluded from the measurement")
		inprocess = flag.Bool("inprocess", false, "also run the workload against the in-process batch API and report the p50 ratio")
		out       = flag.String("o", "", "write the JSON report to `file` (default stdout)")
		retries   = flag.Int("retries", 3, "retry budget per request for 429/503 responses")
		retryBase = flag.Duration("retry-base", 25*time.Millisecond, "first retry backoff (doubles per attempt)")
		retryCap  = flag.Duration("retry-cap", 2*time.Second, "retry backoff and honored Retry-After ceiling")
		timeout   = flag.Duration("timeout", 5*time.Minute, "client-side per-attempt `timeout`")
		tolerate  = flag.Bool("tolerate-errors", false, "exit 0 even when requests failed terminally (overload runs)")
	)
	flag.Parse()
	sd := cliobs.NotifyShutdown()
	defer sd.Stop()
	ro := retryOpts{retries: *retries, base: *retryBase, cap: *retryCap}
	rep, err := run(sd.Context(), *addr, *n, *c, *batch, *tr, *warm, *inprocess, ro, *timeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcxload:", err)
		os.Exit(sd.ExitCode(err))
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcxload:", err)
		os.Exit(cliobs.ExitFailure)
	}
	b = append(b, '\n')
	if *out != "" {
		err = os.WriteFile(*out, b, 0o644)
	} else {
		_, err = os.Stdout.Write(b)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcxload:", err)
		os.Exit(cliobs.ExitFailure)
	}
	if rep.Errors > 0 && !*tolerate {
		fmt.Fprintf(os.Stderr, "rlcxload: %d of %d requests failed terminally\n", rep.Errors, rep.Requests)
		os.Exit(cliobs.ExitFailure)
	}
}

// segments cycles a small pool of realistic geometries (all inside
// the default axes) with mixed shielding so the daemon exercises more
// than one table set.
func segments(batch, seed int) []segmentJSON {
	pool := []segmentJSON{
		{LengthUm: 6000, SignalWidthUm: 10, GroundWidthUm: 5, SpacingUm: 1},
		{LengthUm: 2000, SignalWidthUm: 4, GroundWidthUm: 4, SpacingUm: 2},
		{LengthUm: 800, SignalWidthUm: 2, GroundWidthUm: 2, SpacingUm: 1.5},
		{LengthUm: 4000, SignalWidthUm: 6, GroundWidthUm: 3, SpacingUm: 1.2, Shielding: "microstrip"},
		{LengthUm: 1500, SignalWidthUm: 3, GroundWidthUm: 3, SpacingUm: 2.5, Shielding: "microstrip"},
	}
	segs := make([]segmentJSON, batch)
	for i := range segs {
		segs[i] = pool[(seed+i)%len(pool)]
	}
	return segs
}

// attemptResult is one request's terminal outcome after retries.
type attemptResult struct {
	ok      bool
	status  int // last HTTP status; 0 = transport failure
	latency time.Duration
	sheds   int64 // 429s observed (including retried-then-succeeded)
	retries int64
	timeout bool // last failure was a client-side timeout
}

// tally accumulates attemptResults across workers.
type tally struct {
	mu       sync.Mutex
	lat      []time.Duration // admitted (2xx) latencies only
	byStatus map[string]int64
	errs     int64
	sheds    int64
	retries  int64
	timeouts int64
	okCount  int64
}

func (t *tally) add(r attemptResult) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sheds += r.sheds
	t.retries += r.retries
	if r.timeout {
		t.timeouts++
	}
	if r.ok {
		t.okCount++
		t.lat = append(t.lat, r.latency)
		return
	}
	t.errs++
	if t.byStatus == nil {
		t.byStatus = map[string]int64{}
	}
	t.byStatus[strconv.Itoa(r.status)]++
}

// isTimeout reports a client-side deadline on a transport error.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout())
}

// backoffJitter maps (seed, attempt) to [0.5, 1.5) deterministically
// (splitmix64 finalizer) so overload runs replay comparably.
func backoffJitter(seed, attempt int) float64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(attempt)*0xff51afd7ed558ccd
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return 0.5 + float64(h>>11)/float64(1<<53)
}

// doRequest posts one batch, retrying 429/503 with capped-exponential
// backoff and deterministic jitter, honoring Retry-After. Transport
// errors are terminal (a daemon that dropped the connection is not
// shedding politely).
func doRequest(ctx context.Context, client *http.Client, url string, body []byte,
	seed int, ro retryOpts) attemptResult {
	var res attemptResult
	backoff := ro.base
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		status, retryAfter, err := postOnce(ctx, client, url, body)
		d := time.Since(t0)
		if err != nil {
			res.status = 0
			res.timeout = isTimeout(err)
			return res
		}
		res.status = status
		if status/100 == 2 {
			res.ok = true
			res.latency = d
			return res
		}
		if status == http.StatusTooManyRequests {
			res.sheds++
		}
		retryable := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
		if !retryable || attempt >= ro.retries {
			return res
		}
		res.retries++
		sleep := time.Duration(float64(backoff) * backoffJitter(seed, attempt))
		if retryAfter > sleep {
			sleep = retryAfter
		}
		if ro.cap > 0 && sleep > ro.cap {
			sleep = ro.cap
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			res.timeout = true
			return res
		case <-timer.C:
		}
		backoff *= 2
		if ro.cap > 0 && backoff > ro.cap {
			backoff = ro.cap
		}
	}
}

// postOnce issues one POST and returns the status and any Retry-After
// hint.
func postOnce(ctx context.Context, client *http.Client, url string, body []byte) (status int, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, 0, err
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, nil
}

func run(ctx context.Context, addr string, n, c, batch int, tr float64, warm int,
	inprocess bool, ro retryOpts, timeout time.Duration) (*report, error) {
	if n <= 0 || c <= 0 || batch <= 0 {
		return nil, fmt.Errorf("-n, -c and -batch must be positive")
	}
	url := "http://" + addr + "/v1/batch"
	client := &http.Client{Timeout: timeout}

	// The geometry pool cycles with period 5, so there are only 5
	// distinct request bodies. Marshal them once: a load generator
	// that spends its measurement window JSON-encoding megabytes of
	// segments measures itself, not the daemon — and on small hosts
	// the wasted client CPU starves the very server under test.
	const bodyVariants = 5
	bodies := make([][]byte, bodyVariants)
	for s := range bodies {
		b, err := json.Marshal(batchJSON{RiseTimePs: tr, Segments: segments(batch, s)})
		if err != nil {
			return nil, err
		}
		bodies[s] = b
	}
	bodyFor := func(seed int) []byte { return bodies[seed%bodyVariants] }

	// Warmup builds (or maps) the daemon's table sets and fills
	// connection pools; run it at full concurrency so a cold daemon
	// also demonstrates miss coalescing. Warmup outcomes are not
	// recorded — except a fully unreachable daemon, which fails fast.
	var warmFails atomic.Int64
	if err := fanout(ctx, warm, c, func(i int) error {
		res := doRequest(ctx, client, url, bodyFor(i), i, ro)
		if !res.ok {
			warmFails.Add(1)
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	if warm > 0 && warmFails.Load() == int64(warm) {
		return nil, fmt.Errorf("warmup: all %d requests failed; daemon unreachable at %s?", warm, addr)
	}

	var t tally
	t0 := time.Now()
	err := fanout(ctx, n, c, func(i int) error {
		t.add(doRequest(ctx, client, url, bodyFor(i), i, ro))
		return nil
	})
	wall := time.Since(t0)
	if err != nil {
		return nil, err
	}

	rep := &report{
		Requests:       n,
		Concurrency:    c,
		Batch:          batch,
		Errors:         t.errs,
		Sheds:          t.sheds,
		Retries:        t.retries,
		Timeouts:       t.timeouts,
		ErrorsByStatus: t.byStatus,
		ThroughputRPS:  float64(t.okCount) / wall.Seconds(),
		P50Ns:          percentile(t.lat, 50),
		P90Ns:          percentile(t.lat, 90),
		P99Ns:          percentile(t.lat, 99),
	}
	if inprocess {
		p50, err := inProcessP50(ctx, n, c, batch, tr)
		if err != nil {
			return nil, fmt.Errorf("in-process pass: %w", err)
		}
		rep.InProcessP50Ns = p50
		if p50 > 0 {
			rep.VsInProcessP50 = float64(rep.P50Ns) / float64(p50)
		}
	}
	return rep, nil
}

// fanout runs n calls across c workers and returns the first
// non-HTTP error (body marshalling, cancellation); HTTP-level
// failures are the caller's business via its own accounting.
func fanout(ctx context.Context, n, c int, call func(i int) error) error {
	if n == 0 {
		return nil
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := call(i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return first
}

func percentile(lat []time.Duration, p int) int64 {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s) - 1) * p / 100
	return s[idx].Nanoseconds()
}

// inProcessP50 runs the same batches straight through the vectorized
// core batch API — same technology, axes and table physics as the
// daemon's defaults — and reports the p50 per-batch latency. The
// daemon's warm p50 over this number is the service overhead.
func inProcessP50(ctx context.Context, n, c, batch int, tr float64) (int64, error) {
	tech := core.Technology{
		Thickness:      units.Um(2),
		Rho:            units.RhoCopper,
		EpsRel:         units.EpsSiO2,
		CapHeight:      units.Um(2),
		PlaneGap:       units.Um(2),
		PlaneThickness: units.Um(1),
	}
	freq := units.SignificantFrequency(tr * units.PicoSecond)
	axes := table.DefaultAxes()
	var sets []*table.Set
	for _, sh := range []geom.Shielding{geom.ShieldNone, geom.ShieldMicrostrip} {
		cfg := table.Config{
			Name:           "rlcxload/" + sh.String(),
			Thickness:      tech.Thickness,
			Rho:            tech.Rho,
			Shielding:      sh,
			PlaneGap:       tech.PlaneGap,
			PlaneThickness: tech.PlaneThickness,
			Frequency:      freq,
		}
		set, err := table.BuildCtx(ctx, cfg, axes, nil)
		if err != nil {
			return 0, err
		}
		sets = append(sets, set)
	}
	ext, err := core.NewExtractorFromTables(tech, freq, sets...)
	if err != nil {
		return 0, err
	}

	toCore := func(segs []segmentJSON) []core.Segment {
		out := make([]core.Segment, len(segs))
		for i, s := range segs {
			sh := geom.ShieldNone
			if s.Shielding == "microstrip" {
				sh = geom.ShieldMicrostrip
			}
			out[i] = core.Segment{
				Length:      units.Um(s.LengthUm),
				SignalWidth: units.Um(s.SignalWidthUm),
				GroundWidth: units.Um(s.GroundWidthUm),
				Spacing:     units.Um(s.SpacingUm),
				Shielding:   sh,
			}
		}
		return out
	}

	var (
		mu  sync.Mutex
		lat []time.Duration
	)
	err = fanout(ctx, n, c, func(i int) error {
		segs := toCore(segments(batch, i))
		t0 := time.Now()
		if _, err := ext.SegmentsRLCCtx(ctx, segs); err != nil {
			return err
		}
		d := time.Since(t0)
		mu.Lock()
		lat = append(lat, d)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return percentile(lat, 50), nil
}
