package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps backoff sleeps microscopic so tests don't wait out
// real Retry-After hints.
var fastRetry = retryOpts{retries: 3, base: time.Millisecond, cap: 5 * time.Millisecond}

func TestDoRequestRetriesShedThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	client := &http.Client{Timeout: time.Second}
	res := doRequest(context.Background(), client, srv.URL, []byte(`{}`), 0, fastRetry)
	if !res.ok {
		t.Fatalf("request failed after retry: status %d", res.status)
	}
	if res.sheds != 1 || res.retries != 1 {
		t.Fatalf("sheds=%d retries=%d, want 1 and 1", res.sheds, res.retries)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

func TestDoRequestHonorsRetryAfterCap(t *testing.T) {
	// Retry-After of 60s must be capped at ro.cap, not slept.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "60")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	client := &http.Client{Timeout: time.Second}
	t0 := time.Now()
	res := doRequest(context.Background(), client, srv.URL, []byte(`{}`), 1, fastRetry)
	if !res.ok {
		t.Fatalf("request failed: status %d", res.status)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("retry slept %s despite %s cap", d, fastRetry.cap)
	}
	if res.sheds != 0 {
		t.Fatalf("503 counted as shed: sheds=%d", res.sheds)
	}
}

func TestDoRequestTerminalStatusNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad geometry", http.StatusBadRequest)
	}))
	defer srv.Close()

	client := &http.Client{Timeout: time.Second}
	res := doRequest(context.Background(), client, srv.URL, []byte(`{}`), 2, fastRetry)
	if res.ok || res.status != http.StatusBadRequest {
		t.Fatalf("ok=%v status=%d, want terminal 400", res.ok, res.status)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 retried: server saw %d calls", got)
	}
	if res.retries != 0 {
		t.Fatalf("retries=%d for a terminal status", res.retries)
	}
}

func TestDoRequestExhaustsRetryBudget(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	}))
	defer srv.Close()

	client := &http.Client{Timeout: time.Second}
	res := doRequest(context.Background(), client, srv.URL, []byte(`{}`), 3, fastRetry)
	if res.ok {
		t.Fatal("request succeeded against an always-429 server")
	}
	if res.status != http.StatusTooManyRequests {
		t.Fatalf("terminal status %d, want 429", res.status)
	}
	if want := int64(1 + fastRetry.retries); calls.Load() != want {
		t.Fatalf("server saw %d calls, want %d", calls.Load(), want)
	}
	if res.retries != int64(fastRetry.retries) {
		t.Fatalf("retries=%d, want %d", res.retries, fastRetry.retries)
	}
	if res.sheds != int64(1+fastRetry.retries) {
		t.Fatalf("sheds=%d, want every 429 counted", res.sheds)
	}
}

func TestRunSeparatesErrorsFromPercentiles(t *testing.T) {
	// Requests alternate: even seeds succeed fast, odd seeds fail 422
	// terminally after a deliberate delay. Percentiles must cover the
	// fast successes only, and the failures must land in
	// errors_by_status — not in the latency distribution.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n%2 == 0 {
			time.Sleep(50 * time.Millisecond)
			http.Error(w, "out of range", http.StatusUnprocessableEntity)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	const n = 20
	rep, err := run(context.Background(), srv.Listener.Addr().String(),
		n, 2, 1, 50, 0 /* no warmup */, false, fastRetry, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != n/2 {
		t.Fatalf("errors=%d, want %d", rep.Errors, n/2)
	}
	if got := rep.ErrorsByStatus["422"]; got != n/2 {
		t.Fatalf("errors_by_status[422]=%d, want %d", got, n/2)
	}
	if rep.Sheds != 0 || rep.Retries != 0 {
		t.Fatalf("sheds=%d retries=%d on a shed-free run", rep.Sheds, rep.Retries)
	}
	// Successful responses return immediately; if the 50ms failures
	// leaked into the distribution p99 would sit at ~50ms.
	if rep.P99Ns > (20 * time.Millisecond).Nanoseconds() {
		t.Fatalf("p99=%s: failed-request latency leaked into percentiles",
			time.Duration(rep.P99Ns))
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	for seed := 0; seed < 8; seed++ {
		for attempt := 0; attempt < 8; attempt++ {
			j := backoffJitter(seed, attempt)
			if j < 0.5 || j >= 1.5 {
				t.Fatalf("jitter(%d,%d)=%v outside [0.5,1.5)", seed, attempt, j)
			}
			if j != backoffJitter(seed, attempt) {
				t.Fatalf("jitter(%d,%d) not deterministic", seed, attempt)
			}
		}
	}
}
