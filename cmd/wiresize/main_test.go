package main

import (
	"context"
	"testing"
)

func TestRunSweepsWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds tables and simulates candidates")
	}
	if err := run(context.Background(), 2000, 4, 2, 30, 40, 50, 0.8, 2.4, 3, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsFewCandidates(t *testing.T) {
	if err := run(context.Background(), 2000, 4, 2, 30, 40, 50, 0.8, 2.4, 1, true); err == nil {
		t.Error("accepted a single candidate")
	}
}
