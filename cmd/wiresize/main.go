// Command wiresize optimizes a clock segment's signal width at fixed
// routing pitch — the optimization application of the paper's title.
// Every candidate is re-extracted through the inductance tables (the
// speed that makes the sweep practical) and simulated.
//
// Example:
//
//	wiresize -len 4000 -pitch 4 -wgnd 2 -rdrv 30 -wmin 0.7 -wmax 2.6 -n 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"clockrlc/internal/cliobs"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/sizing"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func main() {
	obsFlags := cliobs.AddFlags(flag.CommandLine)
	var (
		length = flag.Float64("len", 4000, "segment length (µm)")
		pitch  = flag.Float64("pitch", 4, "signal-to-shield centre pitch (µm)")
		wgnd   = flag.Float64("wgnd", 2, "shield width (µm)")
		rdrv   = flag.Float64("rdrv", 30, "driver resistance (Ω)")
		cload  = flag.Float64("cload", 40, "load capacitance (fF)")
		tr     = flag.Float64("tr", 50, "edge rise time (ps)")
		wmin   = flag.Float64("wmin", 0.7, "minimum candidate width (µm)")
		wmax   = flag.Float64("wmax", 2.6, "maximum candidate width (µm)")
		nCand  = flag.Int("n", 7, "number of candidates")
		noL    = flag.Bool("rconly", false, "size with the RC-only netlist")
	)
	flag.Parse()
	sd := cliobs.NotifyShutdown()
	sess, err := obsFlags.Start("wiresize")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wiresize:", err)
		os.Exit(cliobs.ExitFailure)
	}
	err = run(sess.Context(sd.Context()), *length, *pitch, *wgnd, *rdrv, *cload, *tr, *wmin, *wmax, *nCand, !*noL)
	sess.Close()
	sd.Stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wiresize:", err)
		os.Exit(sd.ExitCode(err))
	}
}

func run(ctx context.Context, length, pitch, wgnd, rdrv, cload, tr, wmin, wmax float64, nCand int, withL bool) error {
	tech := core.Technology{
		Thickness:      units.Um(2),
		Rho:            units.RhoCopper,
		EpsRel:         units.EpsSiO2,
		CapHeight:      units.Um(2),
		PlaneGap:       units.Um(2),
		PlaneThickness: units.Um(1),
	}
	freq := units.SignificantFrequency(tr * units.PicoSecond)
	fmt.Fprintf(os.Stderr, "building tables at %.2f GHz...\n", freq/1e9)
	axes := table.Axes{
		Widths:   table.LogAxis(units.Um(wmin/1.5), units.Um(wmax*1.5), 6),
		Spacings: table.LogAxis(units.Um(0.2), units.Um(pitch*2), 6),
		Lengths:  table.LogAxis(units.Um(length/8), units.Um(length*1.5), 6),
	}
	ext, err := core.NewExtractorCtx(ctx, tech, freq, axes, []geom.Shielding{geom.ShieldNone})
	if err != nil {
		return err
	}
	spec := sizing.Spec{
		Length:      units.Um(length),
		Pitch:       units.Um(pitch),
		GroundWidth: units.Um(wgnd),
		Shielding:   geom.ShieldNone,
		DriveRes:    rdrv,
		LoadCap:     cload * units.FemtoFarad,
		RiseTime:    tr * units.PicoSecond,
		WithL:       withL,
	}
	if nCand < 2 {
		return fmt.Errorf("need at least 2 candidates")
	}
	widths := table.LogAxis(units.Um(wmin), units.Um(wmax), nCand)
	best, pts, err := sizing.OptimizeCtx(ctx, ext, spec, widths)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s %8s %10s %10s %10s\n", "w (µm)", "gap (µm)", "R (Ω)", "L (nH)", "C (fF)", "delay (ps)")
	for _, p := range pts {
		mark := " "
		if p.Width == best.Width {
			mark = "*"
		}
		fmt.Printf("%9.2f%s %10.2f %8.2f %10.3f %10.1f %10.2f\n",
			units.ToUm(p.Width), mark, units.ToUm(p.Spacing), p.RLC.R,
			units.ToNH(p.RLC.L), units.ToFF(p.RLC.C), units.ToPS(p.Delay))
	}
	fmt.Printf("optimum: w = %.2f µm, delay = %.2f ps\n", units.ToUm(best.Width), units.ToPS(best.Delay))
	return nil
}
