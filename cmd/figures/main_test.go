package main

import (
	"context"
	"testing"
)

// The extractor-free experiments run end to end through the CLI glue.
func TestRunLengthExperiment(t *testing.T) {
	if err := run(context.Background(), "length", "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1Experiment(t *testing.T) {
	if err := run(context.Background(), "table1", "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "nosuch", "", 0); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}
