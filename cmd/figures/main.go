// Command figures regenerates every table and figure of the paper's
// evaluation. Each experiment prints the rows/series the paper
// reports, side by side with the paper's numbers where it states them.
//
// Usage:
//
//	figures -exp all
//	figures -exp fig23 [-csv waveforms.csv]
//	figures -exp fig5|table1|skew|length|tables|freq|shields|stat
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"clockrlc/internal/cliobs"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/paper"
	"clockrlc/internal/units"
)

func main() {
	obsFlags := cliobs.AddFlags(flag.CommandLine)
	exp := flag.String("exp", "all", "experiment: all, fig23, fig5, table1, skew, length, tables, freq, shields, stat, shieldrule, repeater, busnoise, skewvar")
	csv := flag.String("csv", "", "write the Fig. 2/3 waveforms to this CSV file")
	samples := flag.Int("samples", 60, "Monte-Carlo samples for -exp stat")
	flag.Parse()

	sd := cliobs.NotifyShutdown()
	sess, err := obsFlags.Start("figures")
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(cliobs.ExitFailure)
	}
	err = run(sess.Context(sd.Context()), *exp, *csv, *samples)
	sess.Close()
	sd.Stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(sd.ExitCode(err))
	}
}

func run(ctx context.Context, exp, csv string, samples int) error {
	needExt := map[string]bool{
		"all": true, "fig23": true, "skew": true, "tables": true,
		"shields": true, "stat": true, "shieldrule": true,
		"repeater": true, "busnoise": true, "skewvar": true,
	}
	var ext *core.Extractor
	if needExt[exp] {
		fmt.Printf("building inductance tables (f_sig = %.2g GHz)...\n\n", paper.Fsig/1e9)
		var err error
		ext, err = paper.NewExtractor()
		if err != nil {
			return err
		}
	}
	all := exp == "all"
	ran := false
	try := func(name string, f func() error) error {
		if !all && exp != name {
			return nil
		}
		// A SIGINT between experiments stops the remaining ones cleanly.
		if err := ctx.Err(); err != nil {
			return err
		}
		ran = true
		fmt.Printf("==== %s ====\n", strings.ToUpper(name))
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
		return nil
	}
	steps := []struct {
		name string
		f    func() error
	}{
		{"fig23", func() error { return fig23(ext, csv) }},
		{"fig5", fig5},
		{"table1", table1},
		{"skew", func() error { return skew(ext) }},
		{"length", length},
		{"tables", func() error { return tables(ext) }},
		{"freq", freq},
		{"shields", func() error { return shields(ext) }},
		{"stat", func() error { return stat(ext, samples) }},
		{"shieldrule", func() error { return shieldRule(ext) }},
		{"repeater", func() error { return repeaterExp(ext) }},
		{"busnoise", func() error { return busNoise(ext) }},
		{"skewvar", func() error { return skewVar(ext) }},
	}
	for _, s := range steps {
		if err := try(s.name, s.f); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func fig23(ext *core.Extractor, csv string) error {
	res, err := paper.Fig23(ext)
	if err != nil {
		return err
	}
	fmt.Println("E1 — Fig. 1 configuration (6000 µm CPW, 10/5 µm wires, 1 µm gaps, 40 Ω driver)")
	fmt.Printf("extracted totals: R = %.2f Ω, L = %.2f nH, C = %.2f pF\n",
		res.RLC.R, units.ToNH(res.RLC.L), res.RLC.C/1e-12)
	fmt.Printf("%-34s %12s %12s %8s %10s %10s\n", "variant", "RC delay", "RLC delay", "ratio", "overshoot", "undershoot")
	row := func(name string, v paper.Fig23Variant) {
		fmt.Printf("%-34s %9.1f ps %9.1f ps %8.2f %9.1f%% %9.1f%%\n",
			name, units.ToPS(v.DelayRC), units.ToPS(v.DelayRLC),
			v.DelayRLC/v.DelayRC, v.OvershootRLC*100, v.UndershootRLC*100)
	}
	row("full extraction (loop ladder)", res.Extracted)
	row("calibrated C (loop ladder)", res.Calibrated)
	row("calibrated C (PEEC, end bonds)", res.CalibratedPartial)
	fmt.Printf("%-34s %9.2f ps %9.1f ps %8.2f   (overshoot visible in Fig. 3)\n",
		"paper (Figs. 2/3)", 28.01, 47.6, 47.6/28.01)
	if csv != "" {
		if err := writeWaveCSV(csv, res); err != nil {
			return err
		}
		fmt.Printf("waveforms written to %s\n", csv)
	}
	return nil
}

func writeWaveCSV(path string, res *paper.Fig23Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	v := res.CalibratedPartial
	fmt.Fprintln(f, "t_ps,in_rc,out_rc,in_rlc,out_rlc")
	for i, t := range v.Time {
		fmt.Fprintf(f, "%.3f,%.5f,%.5f,%.5f,%.5f\n",
			units.ToPS(t), v.InRC[i], v.OutRC[i], v.InRLC[i], v.OutRLC[i])
	}
	return f.Close()
}

func fig5() error {
	res, err := paper.Fig5()
	if err != nil {
		return err
	}
	fmt.Println("E2 — Fig. 5: loop inductance (nH) of a 5-trace array over a ground plane")
	fmt.Println("(a) full-array loop matrix:")
	m := res.Full
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Printf(" %7.3f", units.ToNH(m.At(i, j)))
		}
		fmt.Println()
	}
	fmt.Printf("(b) T1 alone:        self = %.3f nH (Foundation 1 deviation %.2g)\n",
		units.ToNH(res.SelfSolo), res.Foundation1Err)
	fmt.Printf("(c) T1+T5 only:      mutual = %.3f nH (Foundation 2 deviation %.2g)\n",
		units.ToNH(res.MutualPair), res.Foundation2Err)
	fmt.Println("paper: both foundations hold (its example shows matching 4.8/2.x entries)")
	return nil
}

func table1() error {
	rows, err := paper.Table1()
	if err != nil {
		return err
	}
	fmt.Println("E3 — Table I: linear cascading comparisons")
	fmt.Printf("%-10s %14s %16s %10s %12s\n", "tree", "full-tree L", "cascaded S/P L", "error", "paper error")
	for _, r := range rows {
		fmt.Printf("%-10s %11.4f nH %13.4f nH %9.2f%% %11.2f%%\n",
			r.Name, units.ToNH(r.FullL), units.ToNH(r.CascadedL), r.ErrPercent, r.PaperErrPct)
	}
	return nil
}

func skew(ext *core.Extractor) error {
	fmt.Println("E4 — Section V: H-tree skew with vs without inductance (4× load on one leaf)")
	res, err := paper.HTreeSkew(ext, geom.ShieldNone)
	if err != nil {
		return err
	}
	fmt.Printf("nominal leaf arrival: RC %.1f ps, RLC %.1f ps (ratio %.2f)\n",
		units.ToPS(res.ArrivalRC), units.ToPS(res.ArrivalRLC), res.ArrivalRLC/res.ArrivalRC)
	fmt.Printf("skew under imbalance: RC %.2f ps, RLC %.2f ps → RC-only misestimates skew by %.1f%%\n",
		units.ToPS(res.SkewRC), units.ToPS(res.SkewRLC), res.SkewErrPercent)
	fmt.Println("paper: \"without consideration of inductance ... the difference can be more than 10%\"")
	return nil
}

func length() error {
	fmt.Println("E5 — Section V: super-linear inductance growth with length (w = 1.2 µm)")
	fmt.Printf("%10s %12s %12s %14s %14s\n", "len (µm)", "self L (nH)", "mutual (nH)", "self ×2 ratio", "mutual ×2 ratio")
	for _, r := range paper.LengthSweep() {
		fmt.Printf("%10.0f %12.4f %12.4f %14.3f %14.3f\n",
			units.ToUm(r.Length), units.ToNH(r.SelfL), units.ToNH(r.MutualL), r.SelfRatio, r.MutRatio)
	}
	fmt.Println("paper: 1000 µm → 2000 µm increases self and mutual L by ≈2.1–2.4×")
	return nil
}

func tables(ext *core.Extractor) error {
	fmt.Println("E6 — Section III: table lookup accuracy vs direct extraction")
	acc, err := paper.CheckTables(ext)
	if err != nil {
		return err
	}
	fmt.Printf("probes: %d\n", acc.Probes)
	fmt.Printf("max self-entry error:   %.2f%%\n", acc.MaxSelfErr*100)
	fmt.Printf("max mutual-entry error: %.2f%%\n", acc.MaxMutualErr*100)
	fmt.Printf("max composed-loop error vs proximity-resolved solve: %.1f%%\n", acc.MaxLoopErr*100)
	fmt.Println("paper: \"no loss of accuracy during the reduction\" (relative to its uniform-current PEEC model)")
	return nil
}

func freq() error {
	fmt.Println("E7 — skin effect: R(f), L(f) of the Fig. 1 signal trace")
	rows, err := paper.FreqSweep()
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s %12s\n", "f (GHz)", "R (Ω)", "L (nH)")
	for _, r := range rows {
		fmt.Printf("%10.2f %10.3f %12.4f\n", r.Freq/1e9, r.R, units.ToNH(r.L))
	}
	fmt.Printf("extraction frequency (0.32/tr): %.2f GHz\n", paper.Fsig/1e9)
	return nil
}

func shields(ext *core.Extractor) error {
	fmt.Println("E8 — Fig. 8 vs Fig. 9: coplanar waveguide vs microstrip building blocks")
	res, err := paper.CompareShields(ext)
	if err != nil {
		return err
	}
	fmt.Printf("loop L:  CPW %.3f nH, microstrip %.3f nH (plane cuts L by %.0f%%)\n",
		units.ToNH(res.LoopCPW), units.ToNH(res.LoopMS),
		(1-res.LoopMS/res.LoopCPW)*100)
	fmt.Printf("delay:   CPW %.1f ps, microstrip %.1f ps\n",
		units.ToPS(res.DelayCPW), units.ToPS(res.DelayMS))
	return nil
}

func stat(ext *core.Extractor, samples int) error {
	fmt.Printf("E9 — Section V: process variation, %d Monte-Carlo samples\n", samples)
	res, err := paper.ProcessVariation(ext, samples)
	if err != nil {
		return err
	}
	fmt.Printf("σR/µR = %.2f%%   σC/µC = %.2f%%   σL/µL = %.2f%%\n",
		res.RSpread.Rel()*100, res.CSpread.Rel()*100, res.LSpread.Rel()*100)
	fmt.Println("paper: \"inductance is not sensitive to process variation\" — combine nominal L with statistical RC")
	return nil
}

func shieldRule(ext *core.Extractor) error {
	fmt.Println("E11 — Section IV: the \"at least equal width\" shielding rule")
	res, err := paper.ShieldRule(ext, []float64{0.25, 0.5, 1, 2})
	if err != nil {
		return err
	}
	fmt.Printf("%16s %18s %18s\n", "shield/signal", "victim noise (mV)", "cascading error")
	for _, r := range res.Rows {
		fmt.Printf("%16.2f %18.2f %17.2f%%\n", r.WidthRatio, r.PeakNoise*1e3, r.CascadeErrPct)
	}
	fmt.Printf("%16s %18.2f   (ground wires removed)\n", "unshielded", res.UnshieldedNoise*1e3)
	fmt.Println("paper: two ground wires of at least equal width \"completely shield the inductive coupling\"")
	return nil
}

func repeaterExp(ext *core.Extractor) error {
	fmt.Println("E12 — repeater insertion on a 16 mm shielded route, RC vs RLC analysis")
	res, err := paper.RepeaterInsertion(ext)
	if err != nil {
		return err
	}
	fmt.Printf("%4s %16s %16s\n", "n", "RC total (ps)", "RLC total (ps)")
	for i := range res.CurveRC {
		markRC, markRLC := " ", " "
		if res.CurveRC[i].N == res.RC.N {
			markRC = "*"
		}
		if res.CurveRLC[i].N == res.RLC.N {
			markRLC = "*"
		}
		fmt.Printf("%4d %15.1f%s %15.1f%s\n", res.CurveRC[i].N,
			units.ToPS(res.CurveRC[i].Total), markRC,
			units.ToPS(res.CurveRLC[i].Total), markRLC)
	}
	fmt.Printf("optima: RC-only analysis n=%d, RLC-aware n=%d; running the RC choice on the real line costs +%.1f%%\n",
		res.RC.N, res.RLC.N, res.RCPenaltyPct)
	return nil
}

func busNoise(ext *core.Extractor) error {
	fmt.Println("E13 — Fig. 4 bus structure: switching noise into a quiet middle bit (5-bit bus, outer shields)")
	res, err := paper.BusNoise(ext)
	if err != nil {
		return err
	}
	fmt.Printf("one adjacent aggressor:   %.1f mV\n", res.PeakAdjacent*1e3)
	fmt.Printf("all four bits switching:  %.1f mV\n", res.PeakStorm*1e3)
	return nil
}

func skewVar(ext *core.Extractor) error {
	fmt.Println("E14 — Section V proposal: nominal L + statistical RC for skew under process variation")
	res, err := paper.SkewVariation(ext, 12, 424242)
	if err != nil {
		return err
	}
	fmt.Printf("%d Monte-Carlo samples, per-stage variation on a 2-level H-tree\n", res.Samples)
	fmt.Printf("full R/C/L variation:   skew %.3f ± %.3f ps\n",
		units.ToPS(res.FullMean), units.ToPS(res.FullSigma))
	fmt.Printf("nominal L + varied RC:  skew %.3f ± %.3f ps\n",
		units.ToPS(res.NomLMean), units.ToPS(res.NomLSigma))
	fmt.Printf("largest per-sample deviation: %.2f%%\n", res.MaxPairErrPct)
	fmt.Println("paper: \"we can combine the nominal inductance with the statistically generated RC\"")
	return nil
}
