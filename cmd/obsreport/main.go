// Command obsreport analyses a JSONL span trace (the -trace output of
// any clockrlc cmd): it reconstructs the span tree, reports orphaned
// and unended spans (a concurrency-correct trace has none), ranks
// stages by self time with p50/p90/p99 latency estimates, and walks
// the critical path — the chain of spans that actually bounded the
// wall time, which for a parallel table build is the straggler cell.
//
// Example:
//
//	tablegen -workers 8 -trace build.jsonl -o tables.bin
//	obsreport build.jsonl
//	obsreport -top 5 -no-tree build.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"clockrlc/internal/obs"
)

func main() {
	var (
		topN   = flag.Int("top", 10, "rows in the self-time ranking")
		noTree = flag.Bool("no-tree", false, "skip the span tree (rankings and critical path only)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: obsreport [flags] trace.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
	if err := report(os.Stdout, events, *topN, !*noTree); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// collapseAt is the sibling count past which same-name children print
// as one aggregated line — a 1000-cell parallel build is a histogram,
// not a thousand rows.
const collapseAt = 6

// report writes the full analysis of the recorded events to w.
func report(w io.Writer, events []obs.Event, topN int, showTree bool) error {
	t := obs.BuildTrace(events)
	if len(t.Spans) == 0 {
		return fmt.Errorf("trace contains no spans")
	}
	fmt.Fprintf(w, "trace: %d events, %d spans, %d roots, %d orphaned, %d unended\n",
		len(events), len(t.Spans), len(t.Roots), len(t.Orphans), len(t.Unended))
	for _, sp := range t.Orphans {
		fmt.Fprintf(w, "  orphaned: %s (span %d, parent %d never appeared)\n", sp.Name, sp.ID, sp.Parent)
	}
	for _, sp := range t.Unended {
		fmt.Fprintf(w, "  unended: %s (span %d)\n", sp.Name, sp.ID)
	}

	if showTree {
		fmt.Fprintf(w, "\nspan tree:\n")
		for _, root := range t.Roots {
			printTree(w, root, 1)
		}
	}

	agg := t.Aggregate()
	if topN > len(agg) {
		topN = len(agg)
	}
	fmt.Fprintf(w, "\ntop %d stages by self time:\n", topN)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "  stage\tcount\ttotal\tself\tp50\tp90\tp99\n")
	for _, s := range agg[:topN] {
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			s.Name, s.Count, fmtDur(s.Total), fmtDur(s.Self), fmtDur(s.P50), fmtDur(s.P90), fmtDur(s.P99))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	path := t.CriticalPath()
	if len(path) > 0 {
		fmt.Fprintf(w, "\ncritical path (%s over %d spans):\n", fmtDur(path[0].Dur), len(path))
		for i, sp := range path {
			fmt.Fprintf(w, "  %s%s %s (self %s)\n",
				indent(i), sp.Name, fmtDur(sp.Dur), fmtDur(sp.SelfTime()))
		}
	}

	if t.Metrics != nil {
		fmt.Fprintf(w, "\nmetrics snapshot: %d counters, %d gauges, %d histograms\n",
			len(t.Metrics.Counters), len(t.Metrics.Gauges), len(t.Metrics.Histograms))
	}
	return nil
}

// printTree renders a span and its children, collapsing same-name
// sibling groups larger than collapseAt into one aggregate line.
func printTree(w io.Writer, sp *obs.TraceSpan, depth int) {
	fmt.Fprintf(w, "%s%s %s\n", indent(depth), name(sp), fmtDur(sp.Dur))
	groups := map[string]int{}
	for _, c := range sp.Children {
		groups[name(c)]++
	}
	printed := map[string]bool{}
	for _, c := range sp.Children {
		n := name(c)
		if groups[n] > collapseAt {
			if printed[n] {
				continue
			}
			printed[n] = true
			var total, max time.Duration
			for _, s := range sp.Children {
				if name(s) == n {
					total += s.Dur
					if s.Dur > max {
						max = s.Dur
					}
				}
			}
			cnt := groups[n]
			fmt.Fprintf(w, "%s%s ×%d (total %s, mean %s, max %s)\n",
				indent(depth+1), n, cnt, fmtDur(total), fmtDur(total/time.Duration(cnt)), fmtDur(max))
			continue
		}
		printTree(w, c, depth+1)
	}
}

func name(sp *obs.TraceSpan) string {
	if sp.Name == "" {
		return "(unnamed)"
	}
	return sp.Name
}

func indent(depth int) string {
	const pad = "                                                                "
	n := 2 * depth
	if n > len(pad) {
		n = len(pad)
	}
	return pad[:n]
}

// fmtDur rounds a duration to a readable precision (full nanosecond
// durations make reports unreadable and goldens brittle).
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
