package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clockrlc/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestReportGolden runs the full report over a committed fixture trace
// — a parallel table build with a straggler cell — and compares the
// output byte-for-byte against the committed golden.
func TestReportGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "parallel_build.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report(&buf, events, 10, true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "parallel_build.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report output differs from golden (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestReportFixtureInvariants pins the load-bearing facts the golden
// encodes, so a -update run can't silently bless a broken analysis.
func TestReportFixtureInvariants(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "parallel_build.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.BuildTrace(events)
	if len(tr.Orphans) != 0 || len(tr.Unended) != 0 {
		t.Fatalf("fixture has %d orphans, %d unended; want 0, 0", len(tr.Orphans), len(tr.Unended))
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Name != "tablegen" {
		t.Fatalf("fixture roots = %v", tr.Roots)
	}
	// The critical path must follow the straggler cell, not the
	// earlier-finishing extract branch.
	path := tr.CriticalPath()
	var names []string
	for _, sp := range path {
		names = append(names, sp.Name)
	}
	want := "tablegen > table.build > table.self_cell"
	if got := strings.Join(names, " > "); got != want {
		t.Errorf("critical path = %s, want %s", got, want)
	}
	// Wall time is the root span's duration; the path head must match
	// it exactly (it IS the root).
	if path[0].Dur != tr.Roots[0].Dur {
		t.Errorf("critical path head dur %v != root dur %v", path[0].Dur, tr.Roots[0].Dur)
	}
	// Self-time ranking: the 8 parallel self cells dominate.
	agg := tr.Aggregate()
	if agg[0].Name != "table.self_cell" || agg[0].Count != 8 {
		t.Errorf("top stage = %s ×%d, want table.self_cell ×8", agg[0].Name, agg[0].Count)
	}
}

func TestReportEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := report(&buf, nil, 10, true); err == nil {
		t.Fatal("report on empty trace did not error")
	}
}
