// Command rlcx extracts the R, L and C of one shielded clocktree
// segment — the paper's Section V flow for a single segment — and
// optionally emits the distributed RLC ladder as a SPICE-style
// listing.
//
// Example:
//
//	rlcx -len 6000 -wsig 10 -wgnd 5 -space 1 -shield coplanar -tr 50
//	rlcx -len 6000 -wsig 10 -wgnd 5 -space 1 -netlist -sections 8
//
// Tables are built on the fly unless -tables points at a tablegen
// output whose configuration matches.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"clockrlc/internal/cliobs"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func main() {
	obsFlags := cliobs.AddFlags(flag.CommandLine)
	var (
		length    = flag.Float64("len", 6000, "segment length (µm)")
		wsig      = flag.Float64("wsig", 10, "signal width (µm)")
		wgnd      = flag.Float64("wgnd", 5, "ground/shield width (µm)")
		space     = flag.Float64("space", 1, "signal-to-shield spacing (µm)")
		shield    = flag.String("shield", "coplanar", "shielding: coplanar or microstrip")
		thickness = flag.Float64("thickness", 2, "metal thickness (µm)")
		capHeight = flag.Float64("caph", 2, "height over the capacitive reference (µm)")
		tr        = flag.Float64("tr", 50, "minimum rise time (ps)")
		tablePath = flag.String("tables", "", "pre-built table file (tablegen output)")
		cacheDir  = flag.String("cache", "", "content-addressed table cache directory (reused across runs)")
		doNetlist = flag.Bool("netlist", false, "print the RLC ladder netlist")
		sections  = flag.Int("sections", 8, "ladder sections for -netlist")
		lookupPol = flag.String("lookup-policy", "extrapolate",
			"out-of-range table lookup `policy`: extrapolate, clamp or error")
	)
	flag.Parse()
	sd := cliobs.NotifyShutdown()
	sess, err := obsFlags.Start("rlcx")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcx:", err)
		os.Exit(cliobs.ExitFailure)
	}
	err = run(sess.Context(sd.Context()), *length, *wsig, *wgnd, *space, *shield, *thickness, *capHeight,
		*tr, *tablePath, *cacheDir, *doNetlist, *sections, *lookupPol)
	sess.Close()
	sd.Stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcx:", err)
		os.Exit(sd.ExitCode(err))
	}
}

func run(ctx context.Context, length, wsig, wgnd, space float64, shield string, thickness, capHeight,
	tr float64, tablePath, cacheDir string, doNetlist bool, sections int, lookupPol string) error {
	var sh geom.Shielding
	switch shield {
	case "coplanar":
		sh = geom.ShieldNone
	case "microstrip":
		sh = geom.ShieldMicrostrip
	default:
		return fmt.Errorf("bad -shield %q", shield)
	}
	lp, err := table.ParseLookupPolicy(lookupPol)
	if err != nil {
		return fmt.Errorf("-lookup-policy: %w", err)
	}
	tech := core.Technology{
		Thickness:      units.Um(thickness),
		Rho:            units.RhoCopper,
		EpsRel:         units.EpsSiO2,
		CapHeight:      units.Um(capHeight),
		PlaneGap:       units.Um(2),
		PlaneThickness: units.Um(1),
	}
	freq := units.SignificantFrequency(tr * units.PicoSecond)

	var ext *core.Extractor
	if tablePath != "" {
		set, err2 := table.LoadFile(tablePath)
		if err2 != nil {
			return err2
		}
		set.Lookup = lp
		ext, err = core.NewExtractorFromTables(tech, freq, set)
	} else {
		opts := []core.Option{core.WithLookupPolicy(lp)}
		if cacheDir != "" {
			cache, cerr := table.NewCache(cacheDir)
			if cerr != nil {
				return cerr
			}
			opts = append(opts, core.WithTableCache(cache))
		} else {
			fmt.Fprintf(os.Stderr, "building %s tables at %.2f GHz...\n", shield, freq/1e9)
		}
		ext, err = core.NewExtractorCtx(ctx, tech, freq, table.DefaultAxes(), []geom.Shielding{sh}, opts...)
	}
	if err != nil {
		return err
	}
	seg := core.Segment{
		Length:      units.Um(length),
		SignalWidth: units.Um(wsig),
		GroundWidth: units.Um(wgnd),
		Spacing:     units.Um(space),
		Shielding:   sh,
	}
	rlc, err := ext.SegmentRLCCtx(ctx, seg)
	if err != nil {
		return err
	}
	fmt.Printf("segment: %g µm %s, signal %g µm / shields %g µm / spacing %g µm\n",
		length, shield, wsig, wgnd, space)
	fmt.Printf("  R = %8.3f Ω   (analytic, skin-corrected at %.2f GHz)\n", rlc.R, freq/1e9)
	fmt.Printf("  L = %8.4f nH  (table-composed loop inductance)\n", units.ToNH(rlc.L))
	fmt.Printf("  C = %8.2f fF  (area+fringe+grounded lateral coupling)\n", units.ToFF(rlc.C))
	direct, err := ext.DirectLoopLCtx(ctx, seg)
	if err != nil {
		return err
	}
	fmt.Printf("  (direct proximity-resolved loop L = %.4f nH)\n", units.ToNH(direct))

	// Formulate the distributed ladder under its own span (printed only
	// with -netlist, but always built so a trace shows the full
	// extract → lookup → cascade pipeline).
	_, sp := obs.StartCtx(ctx, "cascade")
	nl := netlist.New()
	_, err = nl.AddLadder("seg", "in", "out", rlc, sections)
	sp.SetAttr("sections", sections)
	sp.End()
	if err != nil {
		return err
	}
	if doNetlist {
		fmt.Println()
		title := fmt.Sprintf("%d-section RLC ladder for %g um %s segment, nodes in -> out",
			sections, length, shield)
		if err := nl.WriteSPICE(os.Stdout, title); err != nil {
			return err
		}
	}
	if n := table.ClampedLookups(); n > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d table lookup(s) fell outside the built axes (handled per -lookup-policy %s; see the table.lookup_oob_* counters); widen the table axes to cover this geometry\n", n, lp)
	}
	return nil
}
