package main

import (
	"context"
	"path/filepath"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func TestRunWithPrebuiltTables(t *testing.T) {
	cfg := table.Config{
		Name:      "t/coplanar",
		Thickness: units.Um(2),
		Rho:       units.RhoCopper,
		Shielding: geom.ShieldNone,
		Frequency: units.SignificantFrequency(50e-12),
	}
	axes := table.Axes{
		Widths:   table.LogAxis(units.Um(1), units.Um(12), 3),
		Spacings: table.LogAxis(units.Um(0.5), units.Um(4), 3),
		Lengths:  table.LogAxis(units.Um(500), units.Um(4000), 3),
	}
	set, err := table.Build(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "set.json")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 2000, 8, 4, 1, "coplanar", 2, 2, 50, path, "", true, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadShield(t *testing.T) {
	if err := run(context.Background(), 2000, 8, 4, 1, "bogus", 2, 2, 50, "", "", false, 4); err == nil {
		t.Error("accepted unknown shielding")
	}
}
