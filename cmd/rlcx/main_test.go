package main

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"clockrlc/internal/check"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func TestRunWithPrebuiltTables(t *testing.T) {
	cfg := table.Config{
		Name:      "t/coplanar",
		Thickness: units.Um(2),
		Rho:       units.RhoCopper,
		Shielding: geom.ShieldNone,
		Frequency: units.SignificantFrequency(50e-12),
	}
	axes := table.Axes{
		Widths:   table.LogAxis(units.Um(1), units.Um(12), 3),
		Spacings: table.LogAxis(units.Um(0.5), units.Um(4), 3),
		Lengths:  table.LogAxis(units.Um(500), units.Um(4000), 3),
	}
	set, err := table.Build(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "set.json")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 2000, 8, 4, 1, "coplanar", 2, 2, 50, path, "", true, 4, "extrapolate"); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadShield(t *testing.T) {
	if err := run(context.Background(), 2000, 8, 4, 1, "bogus", 2, 2, 50, "", "", false, 4, "extrapolate"); err == nil {
		t.Error("accepted unknown shielding")
	}
}

// Acceptance: a pre-built table with one k >= 1 mutual entry is
// rejected under -check=strict with an error naming the table, cell
// and invariant, before any extraction runs; under -check=warn the
// same run completes and the violation counter advances.
func TestRunCorruptTableStrictVsWarn(t *testing.T) {
	defer check.SetPolicy(check.Off)
	check.SetPolicy(check.Off)
	cfg := table.Config{
		Name:      "t/coplanar",
		Thickness: units.Um(2),
		Rho:       units.RhoCopper,
		Shielding: geom.ShieldNone,
		Frequency: units.SignificantFrequency(50e-12),
	}
	axes := table.Axes{
		Widths:   table.LogAxis(units.Um(1), units.Um(12), 3),
		Spacings: table.LogAxis(units.Um(0.5), units.Um(4), 3),
		Lengths:  table.LogAxis(units.Um(500), units.Um(4000), 3),
	}
	set, err := table.Build(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one diagonal mutual entry far above the coupling bound; the
	// re-save computes a fresh (valid) checksum, so only the physical
	// audit can catch it.
	nw, ns, nl := len(axes.Widths), len(axes.Spacings), len(axes.Lengths)
	set.Mutual.Vals[((1*nw+1)*ns+0)*nl+1] = 100 * set.Self.Vals[1*nl+1]
	path := filepath.Join(t.TempDir(), "set.json")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	check.SetPolicy(check.Strict)
	err = run(context.Background(), 2000, 8, 4, 1, "coplanar", 2, 2, 50, path, "", false, 4, "extrapolate")
	if err == nil {
		t.Fatal("strict run accepted a table with k >= 1")
	}
	if !errors.Is(err, check.ErrViolation) {
		t.Errorf("%v does not unwrap to check.ErrViolation", err)
	}
	for _, frag := range []string{path, "mutual coupling k < 1", "mutual[1,1,0,1]"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("strict error %q missing %q", err.Error(), frag)
		}
	}

	check.SetPolicy(check.Warn)
	before := check.Violations()
	if err := run(context.Background(), 2000, 8, 4, 1, "coplanar", 2, 2, 50, path, "", false, 4, "extrapolate"); err != nil {
		t.Fatalf("warn run failed: %v", err)
	}
	if check.Violations() <= before {
		t.Error("warn run did not advance check.violations")
	}
}
