package main

import (
	"context"
	"path/filepath"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func TestRunBuildsLoadableTables(t *testing.T) {
	out := filepath.Join(t.TempDir(), "set.json")
	err := run(context.Background(), out, "v3", "m6", 2, "cu", "coplanar", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	set, err := table.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if set.Config.Name != "m6/coplanar" {
		t.Errorf("set name %q", set.Config.Name)
	}
	if _, err := set.SelfL(2e-6, 500e-6); err != nil {
		t.Errorf("lookup failed: %v", err)
	}
}

// The tier-1 round-trip gate: tablegen → save → load → compare
// against an in-memory build of the same sweep, bit for bit. Any
// lossy codec change (float formatting, reordered values, dropped
// config) fails here before it can poison a production library.
func TestRoundTripBitForBit(t *testing.T) {
	out := filepath.Join(t.TempDir(), "set.json")
	if err := run(context.Background(), out, "v2", "m6", 2, "cu", "coplanar", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 2, ""); err != nil {
		t.Fatal(err)
	}
	loaded, err := table.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the identical sweep in memory (builds are deterministic
	// at any worker count).
	cfg := table.Config{
		Name:      "m6/coplanar",
		Thickness: units.Um(2),
		Rho:       units.RhoCopper,
		Shielding: geom.ShieldNone,
		Frequency: units.SignificantFrequency(50 * units.PicoSecond),
	}
	axes := table.Axes{
		Widths:   table.LogAxis(units.Um(1), units.Um(4), 2),
		Spacings: table.LogAxis(units.Um(1), units.Um(2), 2),
		Lengths:  table.LogAxis(units.Um(100), units.Um(1000), 3),
	}
	built, err := table.Build(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Self.Vals) != len(built.Self.Vals) || len(loaded.Mutual.Vals) != len(built.Mutual.Vals) {
		t.Fatalf("value counts drifted: self %d/%d, mutual %d/%d",
			len(loaded.Self.Vals), len(built.Self.Vals), len(loaded.Mutual.Vals), len(built.Mutual.Vals))
	}
	for k, v := range built.Self.Vals {
		if loaded.Self.Vals[k] != v {
			t.Fatalf("self[%d]: loaded %g != built %g", k, loaded.Self.Vals[k], v)
		}
	}
	for k, v := range built.Mutual.Vals {
		if loaded.Mutual.Vals[k] != v {
			t.Fatalf("mutual[%d]: loaded %g != built %g", k, loaded.Mutual.Vals[k], v)
		}
	}
	// Off-grid lookups interpolate through the same coefficients.
	a, err1 := built.SelfL(units.Um(1.7), units.Um(430))
	b, err2 := loaded.SelfL(units.Um(1.7), units.Um(430))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a != b {
		t.Errorf("off-grid lookup drifted through the round trip: %g vs %g", a, b)
	}
	m1, _ := built.MutualL(units.Um(1.3), units.Um(1.6), units.Um(1.4), units.Um(700))
	m2, _ := loaded.MutualL(units.Um(1.3), units.Um(1.6), units.Um(1.4), units.Um(700))
	if m1 != m2 {
		t.Errorf("off-grid mutual drifted through the round trip: %g vs %g", m1, m2)
	}
}

// Re-running tablegen against a warm cache must sweep nothing: the
// whole point of the artifact is that the solver runs once, ever.
func TestRunCacheHitSkipsSolves(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	args := func(out string) error {
		return run(context.Background(), out, "v3", "m6", 2, "cu", "coplanar", 2, 1,
			50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 1, cacheDir)
	}
	if err := args(filepath.Join(dir, "a.json")); err != nil {
		t.Fatal(err)
	}
	solves := obs.GetCounter("table.solver_calls")
	solves0 := solves.Value()
	if err := args(filepath.Join(dir, "b.json")); err != nil {
		t.Fatal(err)
	}
	if got := solves.Value() - solves0; got != 0 {
		t.Errorf("cached rerun performed %d solver calls, want 0", got)
	}
	a, err := table.LoadFile(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := table.LoadFile(filepath.Join(dir, "b.json"))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Self.Vals {
		if b.Self.Vals[k] != v {
			t.Fatalf("self[%d]: cold %g != cached %g", k, v, b.Self.Vals[k])
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	out := filepath.Join(t.TempDir(), "set.json")
	if err := run(context.Background(), out, "v3", "m6", 2, "unobtainium", "coplanar", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 1, ""); err == nil {
		t.Error("accepted unknown metal")
	}
	if err := run(context.Background(), out, "v3", "m6", 2, "cu", "waveguide", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 1, ""); err == nil {
		t.Error("accepted unknown shielding")
	}
	if err := run(context.Background(), out, "v7", "m6", 2, "cu", "coplanar", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 1, ""); err == nil {
		t.Error("accepted unknown format")
	}
}

// TestMigrateFileBitIdentical: `tablegen migrate` converts a v2 JSON
// artifact to the v3 binary codec (and back) without perturbing a
// single value bit.
func TestMigrateFileBitIdentical(t *testing.T) {
	dir := t.TempDir()
	v2 := filepath.Join(dir, "set.json")
	if err := run(context.Background(), v2, "v2", "m6", 2, "cu", "coplanar", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 2, ""); err != nil {
		t.Fatal(err)
	}
	v3 := filepath.Join(dir, "set.rlct")
	if err := migrate(v2, v3, "v3"); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.json")
	if err := migrate(v3, back, "v2"); err != nil {
		t.Fatal(err)
	}
	orig, err := table.LoadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{v3, back} {
		got, err := table.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range orig.Self.Vals {
			if got.Self.Vals[k] != v {
				t.Fatalf("%s: self[%d] drifted: %g != %g", path, k, got.Self.Vals[k], v)
			}
		}
		for k, v := range orig.Mutual.Vals {
			if got.Mutual.Vals[k] != v {
				t.Fatalf("%s: mutual[%d] drifted: %g != %g", path, k, got.Mutual.Vals[k], v)
			}
		}
		a, err1 := orig.SelfL(units.Um(1.7), units.Um(430))
		b, err2 := got.SelfL(units.Um(1.7), units.Um(430))
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("%s: off-grid lookup drifted: %g vs %g (%v, %v)", path, a, b, err1, err2)
		}
		got.Close()
	}
	if err := migrate(v2, v3, "v9"); err == nil {
		t.Error("accepted unknown target format")
	}
}

// TestMigrateDir: directory mode converts a whole library in one call.
func TestMigrateDir(t *testing.T) {
	dir := t.TempDir()
	v2 := filepath.Join(dir, "set.json")
	if err := run(context.Background(), v2, "v2", "m6", 2, "cu", "coplanar", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 2, ""); err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join(dir, "lib")
	set, err := table.LoadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	lib := table.NewLibrary()
	if err := lib.Add(set); err != nil {
		t.Fatal(err)
	}
	if err := lib.SaveDir(srcDir); err != nil {
		t.Fatal(err)
	}
	dstDir := filepath.Join(dir, "lib3")
	if err := migrate(srcDir, dstDir, "v3"); err != nil {
		t.Fatal(err)
	}
	migrated, err := table.LoadDir(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := migrated.Get("m6/coplanar")
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range set.Self.Vals {
		if got.Self.Vals[k] != v {
			t.Fatalf("self[%d] drifted through dir migration: %g != %g", k, got.Self.Vals[k], v)
		}
	}
}
