package main

import (
	"path/filepath"
	"testing"

	"clockrlc/internal/table"
)

func TestRunBuildsLoadableTables(t *testing.T) {
	out := filepath.Join(t.TempDir(), "set.json")
	err := run(out, "m6", 2, "cu", "coplanar", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	set, err := table.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if set.Config.Name != "m6/coplanar" {
		t.Errorf("set name %q", set.Config.Name)
	}
	if _, err := set.SelfL(2e-6, 500e-6); err != nil {
		t.Errorf("lookup failed: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	out := filepath.Join(t.TempDir(), "set.json")
	if err := run(out, "m6", 2, "unobtainium", "coplanar", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 1); err == nil {
		t.Error("accepted unknown metal")
	}
	if err := run(out, "m6", 2, "cu", "waveguide", 2, 1,
		50, 1, 4, 2, 1, 2, 2, 100, 1000, 3, 1); err == nil {
		t.Error("accepted unknown shielding")
	}
}
