// Command tablegen precomputes an inductance table set (Section III of
// the paper) for a layer and shielding configuration and writes it for
// later use by rlcx/treesim or the library — by default in the v3
// binary codec, which LoadFile mmaps instead of parsing; -format v2
// selects the JSON codec instead.
//
// Example:
//
//	tablegen -out m6_cpw.rlct -thickness 2 -rho cu -shield coplanar \
//	    -tr 50 -wmin 1 -wmax 14 -nw 5 -smin 0.5 -smax 22 -ns 6 \
//	    -lmin 50 -lmax 8000 -nl 8
//
// All geometric flags are in microns; -tr is the minimum signal rise
// time in picoseconds (the extraction runs at 0.32/tr).
//
// The migrate subcommand converts existing artifacts between codecs
// without re-solving anything — values migrate bit-identically:
//
//	tablegen migrate m6_cpw.json m6_cpw.rlct     # one file
//	tablegen migrate -format v3 libdir newlibdir # a whole library
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"clockrlc/internal/cliobs"
	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "migrate" {
		mainMigrate(os.Args[2:])
		return
	}
	obsFlags := cliobs.AddFlags(flag.CommandLine)
	var (
		out       = flag.String("out", "tables.rlct", "output file")
		format    = flag.String("format", "v3", "output codec: v3 (mmap-able binary) or v2 (JSON)")
		name      = flag.String("name", "layer", "table set name")
		thickness = flag.Float64("thickness", 2, "layer metal thickness (µm)")
		rhoName   = flag.String("rho", "cu", "metal: cu or al, or a resistivity in Ω·m")
		shield    = flag.String("shield", "coplanar", "shielding: coplanar, microstrip, stripline")
		planeGap  = flag.Float64("planegap", 2, "dielectric gap to the ground plane (µm)")
		planeT    = flag.Float64("planethickness", 1, "ground plane thickness (µm)")
		tr        = flag.Float64("tr", 50, "minimum rise time (ps); extraction at 0.32/tr")
		wmin      = flag.Float64("wmin", 1, "minimum width (µm)")
		wmax      = flag.Float64("wmax", 14, "maximum width (µm)")
		nw        = flag.Int("nw", 5, "width points")
		smin      = flag.Float64("smin", 0.5, "minimum spacing (µm)")
		smax      = flag.Float64("smax", 22, "maximum spacing (µm)")
		ns        = flag.Int("ns", 6, "spacing points")
		lmin      = flag.Float64("lmin", 50, "minimum length (µm)")
		lmax      = flag.Float64("lmax", 8000, "maximum length (µm)")
		nl        = flag.Int("nl", 8, "length points")
		workers   = flag.Int("workers", 0, "build worker pool size (0 = all cores)")
		cacheDir  = flag.String("cache", "", "content-addressed table cache directory (reused across runs)")
	)
	flag.Parse()

	sd := cliobs.NotifyShutdown()
	sess, err := obsFlags.Start("tablegen")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablegen:", err)
		os.Exit(cliobs.ExitFailure)
	}
	err = run(sess.Context(sd.Context()), *out, *format, *name, *thickness, *rhoName, *shield, *planeGap, *planeT,
		*tr, *wmin, *wmax, *nw, *smin, *smax, *ns, *lmin, *lmax, *nl, *workers, *cacheDir)
	sess.Close()
	sd.Stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablegen:", err)
		os.Exit(sd.ExitCode(err))
	}
}

// mainMigrate implements `tablegen migrate [-format v2|v3] src dst`:
// codec conversion of an existing artifact (file mode) or a whole
// library directory (dir mode), bit-identical and without a single
// field-solver call.
func mainMigrate(argv []string) {
	fs := flag.NewFlagSet("tablegen migrate", flag.ExitOnError)
	format := fs.String("format", "v3", "target codec: v3 (mmap-able binary) or v2 (JSON)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tablegen migrate [-format v2|v3] src dst")
		fmt.Fprintln(os.Stderr, "  src: a table file (any codec) or a library directory")
		fs.PrintDefaults()
	}
	_ = fs.Parse(argv)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(cliobs.ExitFailure)
	}
	if err := migrate(fs.Arg(0), fs.Arg(1), *format); err != nil {
		fmt.Fprintln(os.Stderr, "tablegen:", err)
		os.Exit(cliobs.ExitFailure)
	}
}

// migrate loads src (sniffing the codec per file) and rewrites it at
// dst in the requested format. Directory sources migrate every table
// file into the dst directory under the library's file-name scheme.
func migrate(src, dst, format string) error {
	if format != "v2" && format != "v3" {
		return fmt.Errorf("bad -format %q (want v2 or v3)", format)
	}
	fi, err := os.Stat(src)
	if err != nil {
		return err
	}
	if fi.IsDir() {
		lib, err := table.LoadDir(src)
		if err != nil {
			return err
		}
		if format == "v3" {
			err = lib.SaveDirV3(dst)
		} else {
			err = lib.SaveDir(dst)
		}
		if err != nil {
			return err
		}
		fmt.Printf("migrated %d table set(s) from %s to %s (%s)\n", lib.Len(), src, dst, format)
		return nil
	}
	s, err := table.LoadFile(src)
	if err != nil {
		return err
	}
	defer s.Close()
	if format == "v3" {
		err = s.SaveFileV3(dst)
	} else {
		err = s.SaveFile(dst)
	}
	if err != nil {
		return err
	}
	fmt.Printf("migrated %s to %s (%s)\n", src, dst, format)
	return nil
}

func run(ctx context.Context, out, format, name string, thickness float64, rhoName, shield string,
	planeGap, planeT, tr, wmin, wmax float64, nw int, smin, smax float64,
	ns int, lmin, lmax float64, nl, workers int, cacheDir string) error {
	if format != "v2" && format != "v3" {
		return fmt.Errorf("bad -format %q (want v2 or v3)", format)
	}
	var rho float64
	switch rhoName {
	case "cu":
		rho = units.RhoCopper
	case "al":
		rho = units.RhoAluminum
	default:
		if _, err := fmt.Sscanf(rhoName, "%g", &rho); err != nil {
			return fmt.Errorf("bad -rho %q", rhoName)
		}
	}
	var sh geom.Shielding
	switch shield {
	case "coplanar":
		sh = geom.ShieldNone
	case "microstrip":
		sh = geom.ShieldMicrostrip
	case "stripline":
		sh = geom.ShieldStripline
	default:
		return fmt.Errorf("bad -shield %q", shield)
	}
	cfg := table.Config{
		Name:           name + "/" + shield,
		Thickness:      units.Um(thickness),
		Rho:            rho,
		Shielding:      sh,
		PlaneGap:       units.Um(planeGap),
		PlaneThickness: units.Um(planeT),
		Frequency:      units.SignificantFrequency(tr * units.PicoSecond),
		Workers:        workers,
	}
	axes := table.Axes{
		Widths:   table.LogAxis(units.Um(wmin), units.Um(wmax), nw),
		Spacings: table.LogAxis(units.Um(smin), units.Um(smax), ns),
		Lengths:  table.LogAxis(units.Um(lmin), units.Um(lmax), nl),
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Only the upper (w1 <= w2) triangle of the mutual sweep is
	// solved; the symmetric half is mirrored.
	totalSolves := int64(nw*nl + nw*(nw+1)/2*ns*nl)
	fmt.Printf("building %s tables at %.2f GHz: %d self entries, %d mutual entries (%d solves, %d workers)\n",
		cfg.Name, cfg.Frequency/1e9,
		nw*nl, nw*nw*ns*nl, totalSolves, workers)
	start := time.Now()

	// Progress: the sweep reports through the process-wide solver-call
	// counter, polled off the build goroutines.
	solves := obs.GetCounter("table.solver_calls")
	solves0 := solves.Value()
	done := make(chan struct{})
	var progressWG sync.WaitGroup
	progressWG.Add(1)
	go func() {
		defer progressWG.Done()
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				did := solves.Value() - solves0
				fmt.Fprintf(os.Stderr, "  %d/%d solves (%.0f%%), %v elapsed\n",
					did, totalSolves, 100*float64(did)/float64(totalSolves),
					time.Since(start).Round(time.Second))
			}
		}
	}()
	var set *table.Set
	var err error
	if cacheDir != "" {
		// Consult the content-addressed cache before sweeping; a hit
		// costs zero solver calls and is bit-identical to a cold build.
		cache, cerr := table.NewCache(cacheDir)
		if cerr != nil {
			close(done)
			progressWG.Wait()
			return cerr
		}
		hits0, _, _, _ := table.CacheStats()
		set, err = cache.GetOrBuildCtx(ctx, cfg, axes, nil)
		if hits, _, _, _ := table.CacheStats(); err == nil && hits > hits0 {
			key, _ := table.CacheKey(cfg, axes)
			fmt.Printf("cache hit in %s (key %.12s…): reused the stored sweep, zero solver calls\n",
				cacheDir, key)
		}
	} else {
		set, err = table.BuildCtx(ctx, cfg, axes, nil)
	}
	close(done)
	progressWG.Wait()
	if err != nil {
		return err
	}
	if format == "v3" {
		err = set.SaveFileV3(out)
	} else {
		err = set.SaveFile(out)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s in %v\n", out, time.Since(start).Round(time.Millisecond))

	// Summarise the build's work from the instrumentation counters.
	builds := obs.GetCounter("table.builds").Value()
	solveCalls := solves.Value()
	buildNs := obs.GetCounter("table.build_ns").Value()
	perTable := time.Duration(0)
	if builds > 0 {
		perTable = time.Duration(buildNs / builds).Round(time.Millisecond)
	}
	fmt.Printf("metrics: %d table set(s) built, %d field-solver calls, %v per table set\n",
		builds, solveCalls, perTable)
	return nil
}
