GO ?= go

.PHONY: all tier1 vet build test race roundtrip chaos fuzz bench bench-obs bench-check serve clean

all: tier1

# tier1 is the repository's gating check: vet, build, full test suite
# under the race detector, the persistence round-trip gate, the
# fault-injection chaos matrix, and a short randomised fuzz pass over
# the input gates. Performance is gated separately: `make bench-obs
# bench-check` re-measures the BENCH_*.json hot-path numbers and fails
# if any metric regresses >10% against the committed bench/baseline.
tier1: vet build race roundtrip chaos fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# roundtrip gates the table codec: tablegen → save → load → compare
# bit for bit against an in-memory build, plus the cache/codec
# persistence suites.
roundtrip:
	$(GO) test -run 'RoundTrip|Cache|Load|SaveFile' ./cmd/tablegen ./internal/table

# chaos runs the fault-injection matrix under the race detector:
# injected errors/latency/panics at every instrumented point, retry
# exhaustion, cancellation promptness and leak-freedom, cache
# corruption/degradation, divergence guards, exit-code mapping, the
# daemon's overload paths (shed, deadline, breaker, drain, evict race),
# and the checkpoint/resume drills (torn writes and bitrot at every
# byte, kill-during-rename, SIGKILL-and-resume with bit-identity,
# cancellation inside a checkpoint write).
chaos:
	$(GO) test -race -timeout 10m \
		-run 'Fault|Chaos|Cancel|Panic|Diverge|Retry|Injected|Transient|Degrad|Sign|Exit|NonFinite|Singular|IllCondition|Validation|Breaker|Shed|Admit|Deadline|Drain|Gone|Healthz|EvictWhileFilling|Torn|Bitrot|KillDuringRename|JobKeyMismatch|KillAndResume|Resume|CheckpointAudit|CheckpointSaveFailure' \
		./internal/fault ./internal/table ./internal/core ./internal/sim ./internal/linalg ./internal/cliobs ./internal/serve ./internal/ckpt ./internal/clocktree ./cmd/treesim

# fuzz gives every native fuzz target a short randomised budget on top
# of the committed seed corpora (which already run as plain test cases
# in `make test`/`make race`). go only accepts one -fuzz pattern per
# invocation, so each target gets its own run.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^FuzzLoadFile$$' -fuzz '^FuzzLoadFile$$' -fuzztime $(FUZZTIME) ./internal/table
	$(GO) test -run '^FuzzLibraryFileName$$' -fuzz '^FuzzLibraryFileName$$' -fuzztime $(FUZZTIME) ./internal/table
	$(GO) test -run '^FuzzConfigValidate$$' -fuzz '^FuzzConfigValidate$$' -fuzztime $(FUZZTIME) ./internal/table
	$(GO) test -run '^FuzzCodecV3LoadFile$$' -fuzz '^FuzzCodecV3LoadFile$$' -fuzztime $(FUZZTIME) ./internal/table
	$(GO) test -run '^FuzzGridEvalReference$$' -fuzz '^FuzzGridEvalReference$$' -fuzztime $(FUZZTIME) ./internal/spline
	$(GO) test -run '^FuzzGeometryValidate$$' -fuzz '^FuzzGeometryValidate$$' -fuzztime $(FUZZTIME) ./internal/core

# bench runs the full experiment benchmark suite (slow).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$'

# bench-obs runs the short hot-path pass guarding the instrumentation
# layer's no-overhead requirement and writes BENCH_obs.json plus the
# spline-lookup/parallel-build numbers in BENCH_spline.json, the
# cold-vs-cache-hit extractor construction numbers in BENCH_cache.json,
# the fault/check-layer ratios, the ctx-span trace-overhead numbers in
# BENCH_trace.json, the end-to-end daemon throughput/latency numbers in
# BENCH_serve.json, the overload-resilience numbers (shed instead
# of collapse at 4x admission capacity) in BENCH_overload.json, and
# the crash-safe million-sink tree numbers (dedup ratio, peak RSS,
# SIGKILL+resume drill) in BENCH_tree.json.
bench-obs:
	./scripts/bench.sh

# serve runs the extraction daemon on ADDR (override: make serve
# ADDR=:8650 CACHE=/var/cache/rlcx) with the content-addressed table
# cache, ready for rlcxload or a CTS flow's HTTP client.
ADDR ?= 127.0.0.1:8650
CACHE ?= .rlcx-cache
serve:
	$(GO) run ./cmd/rlcxd -addr $(ADDR) -cache $(CACHE)

# bench-check is the regression gate: compares the freshly measured
# BENCH_*.json files (run `make bench-obs` first) against the committed
# baselines and fails when any metric drifts >10% the wrong way. After
# an intentional perf change, refresh the baselines with:
#   make bench-obs && cp BENCH_*.json bench/baseline/
bench-check:
	$(GO) run ./cmd/benchdiff -baseline bench/baseline -current .

clean:
	rm -f BENCH_obs.json BENCH_spline.json BENCH_cache.json BENCH_fault.json BENCH_check.json BENCH_trace.json BENCH_mmap.json BENCH_serve.json BENCH_overload.json BENCH_tree.json
