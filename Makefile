GO ?= go

.PHONY: all tier1 vet build test race roundtrip chaos bench bench-obs clean

all: tier1

# tier1 is the repository's gating check: vet, build, full test suite
# under the race detector, the persistence round-trip gate, and the
# fault-injection chaos matrix.
tier1: vet build race roundtrip chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# roundtrip gates the table codec: tablegen → save → load → compare
# bit for bit against an in-memory build, plus the cache/codec
# persistence suites.
roundtrip:
	$(GO) test -run 'RoundTrip|Cache|Load|SaveFile' ./cmd/tablegen ./internal/table

# chaos runs the fault-injection matrix under the race detector:
# injected errors/latency/panics at every instrumented point, retry
# exhaustion, cancellation promptness and leak-freedom, cache
# corruption/degradation, divergence guards, and exit-code mapping.
chaos:
	$(GO) test -race -timeout 5m \
		-run 'Fault|Chaos|Cancel|Panic|Diverge|Retry|Injected|Transient|Degrad|Sign|Exit|NonFinite|Singular|IllCondition|Validation' \
		./internal/fault ./internal/table ./internal/core ./internal/sim ./internal/linalg ./internal/cliobs

# bench runs the full experiment benchmark suite (slow).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$'

# bench-obs runs the short hot-path pass guarding the instrumentation
# layer's no-overhead requirement and writes BENCH_obs.json plus the
# spline-lookup/parallel-build numbers in BENCH_spline.json and the
# cold-vs-cache-hit extractor construction numbers in BENCH_cache.json.
bench-obs:
	./scripts/bench.sh

clean:
	rm -f BENCH_obs.json BENCH_spline.json BENCH_cache.json BENCH_fault.json
