GO ?= go

.PHONY: all tier1 vet build test race bench bench-obs clean

all: tier1

# tier1 is the repository's gating check: vet, build, full test suite
# under the race detector.
tier1: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the full experiment benchmark suite (slow).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$'

# bench-obs runs the short hot-path pass guarding the instrumentation
# layer's no-overhead requirement and writes BENCH_obs.json plus the
# spline-lookup/parallel-build numbers in BENCH_spline.json.
bench-obs:
	./scripts/bench.sh

clean:
	rm -f BENCH_obs.json BENCH_spline.json
