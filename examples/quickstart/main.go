// Quickstart: build inductance tables for one layer, extract a
// shielded clock segment, and simulate its step response with and
// without inductance.
package main

import (
	"fmt"
	"log"

	"clockrlc"
)

func main() {
	// 1. Describe the technology: 2 µm thick copper clock routing in
	// oxide, capacitive reference 2 µm below, inductive ground plane
	// (for microstrip blocks) 2 µm below the layer.
	tech := clockrlc.Technology{
		Thickness:      clockrlc.Um(2),
		Rho:            clockrlc.RhoCopper,
		EpsRel:         clockrlc.EpsSiO2,
		CapHeight:      clockrlc.Um(2),
		PlaneGap:       clockrlc.Um(2),
		PlaneThickness: clockrlc.Um(1),
	}

	// 2. Pick the extraction frequency from the fastest edge in the
	// design (the paper's 0.32/tr rule) and precompute the tables.
	freq := clockrlc.SignificantFrequency(50 * clockrlc.PicoSecond)
	axes := clockrlc.TableAxes{
		Widths:   clockrlc.LogAxis(clockrlc.Um(1), clockrlc.Um(14), 4),
		Spacings: clockrlc.LogAxis(clockrlc.Um(0.5), clockrlc.Um(10), 4),
		Lengths:  clockrlc.LogAxis(clockrlc.Um(100), clockrlc.Um(6000), 6),
	}
	ext, err := clockrlc.NewExtractor(tech, freq, axes,
		[]clockrlc.Shielding{clockrlc.ShieldNone})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Extract one coplanar-waveguide clock segment: 3 mm long,
	// 8 µm signal guarded by 4 µm grounds at 1 µm.
	seg := clockrlc.Segment{
		Length:      clockrlc.Um(3000),
		SignalWidth: clockrlc.Um(8),
		GroundWidth: clockrlc.Um(4),
		Spacing:     clockrlc.Um(1),
		Shielding:   clockrlc.ShieldNone,
	}
	rlc, err := ext.SegmentRLC(seg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted: R = %.2f Ω, L = %.3f nH, C = %.1f fF\n",
		rlc.R, clockrlc.ToNH(rlc.L), clockrlc.ToFF(rlc.C))

	// 4. Simulate a 40 Ω buffer driving the segment, with and without
	// the inductance.
	for _, withL := range []bool{false, true} {
		s := rlc
		if !withL {
			s.L = 0
		}
		nl := clockrlc.NewNetlist()
		nl.AddV("vsrc", "drv", "0", clockrlc.Ramp{V0: 0, V1: 1, Start: 5e-12, Rise: 50e-12})
		nl.AddR("rdrv", "drv", "in", 40)
		if _, err := nl.AddLadder("seg", "in", "out", s, 8); err != nil {
			log.Fatal(err)
		}
		nl.AddC("cload", "out", "0", 50*clockrlc.FemtoFarad)

		res, err := clockrlc.Transient(nl, 0.25e-12, 600e-12, []string{"out"})
		if err != nil {
			log.Fatal(err)
		}
		vout, err := res.Waveform("out")
		if err != nil {
			log.Fatal(err)
		}
		d, err := clockrlc.DelayFromT0(res.Time, vout, 0, 1)
		if err != nil {
			log.Fatal(err)
		}
		over, under := clockrlc.Overshoot(vout, 0, 1)
		fmt.Printf("withL=%-5v sink 50%% arrival %.1f ps, overshoot %.1f%%, undershoot %.1f%%\n",
			withL, clockrlc.ToPS(d), over*100, under*100)
	}
}
