// cpwdelay reproduces the paper's motivating example (Figs. 1–3): a
// 6000 µm co-planar waveguide clock net driven by a 40 Ω buffer,
// simulated as an RC netlist and as an RLC netlist. It prints the
// extracted parasitics, both delays, the ringing metrics, and
// optionally a CSV with all four waveforms for plotting.
//
// Usage: cpwdelay [waveforms.csv]
package main

import (
	"fmt"
	"log"
	"os"

	"clockrlc"
)

func main() {
	tech := clockrlc.Technology{
		Thickness:      clockrlc.Um(2),
		Rho:            clockrlc.RhoCopper,
		EpsRel:         clockrlc.EpsSiO2,
		CapHeight:      clockrlc.Um(2),
		PlaneGap:       clockrlc.Um(2),
		PlaneThickness: clockrlc.Um(1),
	}
	const riseTime = 50e-12
	freq := clockrlc.SignificantFrequency(riseTime)
	fmt.Fprintf(os.Stderr, "building tables at %.2f GHz...\n", freq/1e9)
	ext, err := clockrlc.NewExtractor(tech, freq, clockrlc.DefaultAxes(),
		[]clockrlc.Shielding{clockrlc.ShieldNone})
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 1: 6000 µm long, 10 µm signal, 5 µm grounds, 1 µm gaps.
	seg := clockrlc.Segment{
		Length:      clockrlc.Um(6000),
		SignalWidth: clockrlc.Um(10),
		GroundWidth: clockrlc.Um(5),
		Spacing:     clockrlc.Um(1),
		Shielding:   clockrlc.ShieldNone,
	}
	rlc, err := ext.SegmentRLC(seg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 1 net: R = %.2f Ω, loop L = %.2f nH, C = %.2f pF\n",
		rlc.R, clockrlc.ToNH(rlc.L), rlc.C/1e-12)

	type runOut struct {
		time      []float64
		vin, vout []float64
		delay     float64
	}
	run := func(withL bool) runOut {
		s := rlc
		if !withL {
			s.L = 0
		}
		nl := clockrlc.NewNetlist()
		nl.AddV("vsrc", "drv", "0", clockrlc.Ramp{V0: 0, V1: 1, Start: 10e-12, Rise: riseTime})
		nl.AddR("rdrv", "drv", "in", 40)
		if _, err := nl.AddLadder("net", "in", "out", s, 10); err != nil {
			log.Fatal(err)
		}
		nl.AddC("cl", "out", "0", 50*clockrlc.FemtoFarad)
		res, err := clockrlc.Transient(nl, 0.25e-12, 800e-12, []string{"in", "out"})
		if err != nil {
			log.Fatal(err)
		}
		vin, _ := res.Waveform("in")
		vout, _ := res.Waveform("out")
		d, err := clockrlc.DelayFromT0(res.Time, vout, 0, 1)
		if err != nil {
			log.Fatal(err)
		}
		return runOut{res.Time, vin, vout, d - (10e-12 + riseTime/2)}
	}

	rc := run(false)
	rlcRun := run(true)
	fmt.Printf("full extraction, delay (buffer switch → sink): RC-only %.1f ps, RLC %.1f ps (ratio %.2f)\n",
		clockrlc.ToPS(rc.delay), clockrlc.ToPS(rlcRun.delay), rlcRun.delay/rc.delay)
	over, under := clockrlc.Overshoot(rlcRun.vout, 0, 1)
	fmt.Printf("RLC sink ringing: overshoot %.1f%%, undershoot %.1f%%\n", over*100, under*100)

	// The paper's own 28.01 ps RC delay implies a line capacitance of
	// ≈1.0 pF (its stack differs from ours in unstated ways); with C
	// calibrated to that value the inductive delay inflation and the
	// Fig. 3 ringing emerge clearly.
	calC := 28.01e-12 / (0.6931 * 40)
	rlc.C = calC
	rcCal := run(false)
	rlcCal := run(true)
	overC, underC := clockrlc.Overshoot(rlcCal.vout, 0, 1)
	fmt.Printf("paper-calibrated C = %.2f pF: RC-only %.1f ps, RLC %.1f ps (ratio %.2f), overshoot %.1f%%, undershoot %.1f%%\n",
		calC/1e-12, clockrlc.ToPS(rcCal.delay), clockrlc.ToPS(rlcCal.delay),
		rlcCal.delay/rcCal.delay, overC*100, underC*100)
	fmt.Println("paper: 28.01 ps → 47.6 ps with visible ringing")

	if len(os.Args) > 1 {
		f, err := os.Create(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "t_ps,in_rc,out_rc,in_rlc,out_rlc")
		for i, t := range rc.time {
			fmt.Fprintf(f, "%.3f,%.5f,%.5f,%.5f,%.5f\n",
				clockrlc.ToPS(t), rc.vin[i], rc.vout[i], rlcRun.vin[i], rlcRun.vout[i])
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("waveforms written to", os.Args[1])
	}
}
