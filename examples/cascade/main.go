// cascade demonstrates Section IV of the paper: the loop inductance of
// a routed tree of shielded segments equals the series/parallel
// combination of per-segment loop inductances. It rebuilds the two
// Fig. 6 trees, runs the whole-tree extraction and the cascaded
// combination, and then does the same for a custom tree to show the
// API.
package main

import (
	"fmt"
	"log"
	"math"

	"clockrlc"
)

func main() {
	const fsig = 6.4e9

	fmt.Println("Table I reproduction — linear cascading comparisons")
	for _, b := range []struct {
		name  string
		build func(rho float64) (*clockrlc.CascadeTree, error)
		paper float64
	}{
		{"Fig. 6(a)", clockrlc.Fig6a, 3.57},
		{"Fig. 6(b)", clockrlc.Fig6b, 1.55},
	} {
		tree, err := b.build(clockrlc.RhoCopper)
		if err != nil {
			log.Fatal(err)
		}
		report(b.name, tree, fsig, b.paper)
	}

	// A custom tree: 3-way branch with unequal arms, 2 µm wires.
	specs := []clockrlc.CascadeSegment{
		{Name: "trunk", From: "src", To: "hub", Dir: clockrlc.YPlus, Length: clockrlc.Um(400)},
		{Name: "a1", From: "hub", To: "s1", Dir: clockrlc.XMinus, Length: clockrlc.Um(300)},
		{Name: "a2", From: "hub", To: "s2", Dir: clockrlc.YPlus, Length: clockrlc.Um(500)},
		{Name: "a3", From: "hub", To: "s3", Dir: clockrlc.XPlus, Length: clockrlc.Um(200)},
	}
	cross := clockrlc.CascadeCross{
		SignalWidth: clockrlc.Um(2),
		GroundWidth: clockrlc.Um(2),
		Spacing:     clockrlc.Um(1),
		Thickness:   clockrlc.Um(1),
	}
	tree, err := clockrlc.NewCascadeTree("src", specs, cross, clockrlc.RhoCopper)
	if err != nil {
		log.Fatal(err)
	}
	report("custom 3-way", tree, fsig, math.NaN())

	// Show per-segment contributions of the custom tree.
	fmt.Println("\nper-segment loop inductances of the custom tree:")
	for i, s := range tree.Specs {
		l, err := tree.SegmentLoopL(i, fsig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %4.0f µm  %.4f nH\n", s.Name, s.Length/1e-6, clockrlc.ToNH(l))
	}
}

func report(name string, tree *clockrlc.CascadeTree, fsig, paperErr float64) {
	full, err := tree.FullLoopL(fsig)
	if err != nil {
		log.Fatal(err)
	}
	casc, err := tree.CascadedLoopL(fsig)
	if err != nil {
		log.Fatal(err)
	}
	errPct := math.Abs(casc-full) / full * 100
	line := fmt.Sprintf("%-12s full %.4f nH, cascaded %.4f nH, error %.2f%%",
		name, clockrlc.ToNH(full), clockrlc.ToNH(casc), errPct)
	if !math.IsNaN(paperErr) {
		line += fmt.Sprintf(" (paper %.2f%%)", paperErr)
	}
	fmt.Println(line)
}
