// htreeskew runs the paper's Section V application end to end: a
// buffered H-tree clock network with shielded segments, extracted
// through the inductance tables, simulated stage by stage. It
// compares clock skew with and without inductance under a sink load
// imbalance, contrasts the coplanar-waveguide and microstrip building
// blocks, and closes with the process-variation study (nominal L +
// statistical RC).
package main

import (
	"fmt"
	"log"
	"os"

	"clockrlc"
)

func main() {
	tech := clockrlc.Technology{
		Thickness:      clockrlc.Um(2),
		Rho:            clockrlc.RhoCopper,
		EpsRel:         clockrlc.EpsSiO2,
		CapHeight:      clockrlc.Um(2),
		PlaneGap:       clockrlc.Um(2),
		PlaneThickness: clockrlc.Um(1),
	}
	const riseTime = 50e-12
	freq := clockrlc.SignificantFrequency(riseTime)
	fmt.Fprintf(os.Stderr, "building CPW and microstrip tables at %.2f GHz...\n", freq/1e9)
	ext, err := clockrlc.NewExtractor(tech, freq, clockrlc.DefaultAxes(), nil)
	if err != nil {
		log.Fatal(err)
	}

	buf := clockrlc.ClockBuffer{
		DriveRes:       40,
		InputCap:       50 * clockrlc.FemtoFarad,
		IntrinsicDelay: 30 * clockrlc.PicoSecond,
		OutSlew:        riseTime,
	}

	for _, sh := range []clockrlc.Shielding{clockrlc.ShieldNone, clockrlc.ShieldMicrostrip} {
		seg := clockrlc.Segment{
			SignalWidth: clockrlc.Um(10),
			GroundWidth: clockrlc.Um(5),
			Spacing:     clockrlc.Um(1),
			Shielding:   sh,
		}
		tree, err := clockrlc.NewClockTree(
			clockrlc.HTreeLevels(clockrlc.Um(4000), 2, seg), buf, ext)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %v H-tree, 2 buffer levels, 16 leaves, 4× load on leaf 0 ===\n", sh)
		imbalance := map[int]float64{0: 4}
		var skews [2]float64
		for i, withL := range []bool{false, true} {
			arr, err := tree.Arrivals(clockrlc.ClockSimOptions{
				WithL:         withL,
				LeafLoadScale: imbalance,
			})
			if err != nil {
				log.Fatal(err)
			}
			mn, mx := arr[0], arr[0]
			for _, a := range arr {
				if a < mn {
					mn = a
				}
				if a > mx {
					mx = a
				}
			}
			skews[i] = mx - mn
			label := "RC only"
			if withL {
				label = "RLC    "
			}
			fmt.Printf("%s: arrivals %.1f–%.1f ps, skew %.3f ps\n",
				label, clockrlc.ToPS(mn), clockrlc.ToPS(mx), clockrlc.ToPS(mx-mn))
		}
		fmt.Printf("ignoring inductance misestimates skew by %.1f%% (paper: can exceed 10%%)\n",
			100*abs(skews[1]-skews[0])/skews[1])
	}

	// Process variation: R and C spread, L stays put — so the paper
	// combines nominal L with statistically generated RC.
	fmt.Println("\n=== process variation on one 6 mm CPW segment (60 samples) ===")
	seg := clockrlc.Segment{
		Length:      clockrlc.Um(6000),
		SignalWidth: clockrlc.Um(10),
		GroundWidth: clockrlc.Um(5),
		Spacing:     clockrlc.Um(1),
		Shielding:   clockrlc.ShieldNone,
	}
	v := clockrlc.ProcessVariation{
		EdgeBiasSigma:  0.03e-6,
		ThicknessSigma: 0.06,
		HeightSigma:    0.05,
	}
	r, c, l, err := clockrlc.MonteCarlo(ext, seg, v, 60, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("σR/µR = %.2f%%, σC/µC = %.2f%%, σL/µL = %.2f%%\n",
		r.Rel()*100, c.Rel()*100, l.Rel()*100)
	fmt.Println("→ inductance is process-insensitive; use nominal L with statistical RC")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
