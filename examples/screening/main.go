// screening shows the decision workflow around the paper's extractor:
//
//  1. screen each net cheaply — does inductance matter at all for this
//     driver/geometry/edge combination?
//  2. for nets that pass, extract RLC through the tables and compare
//     the closed-form delay estimates (Elmore RC vs two-pole RLC)
//     against full transient simulation;
//  3. check the shielding: sweep the shield width and measure the
//     crosstalk an adjacent aggressor injects (Section IV's "at least
//     equal width" rule).
package main

import (
	"fmt"
	"log"
	"os"

	"clockrlc"
)

func main() {
	tech := clockrlc.Technology{
		Thickness:      clockrlc.Um(2),
		Rho:            clockrlc.RhoCopper,
		EpsRel:         clockrlc.EpsSiO2,
		CapHeight:      clockrlc.Um(2),
		PlaneGap:       clockrlc.Um(2),
		PlaneThickness: clockrlc.Um(1),
	}
	const riseTime = 50e-12
	freq := clockrlc.SignificantFrequency(riseTime)
	fmt.Fprintf(os.Stderr, "building tables at %.2f GHz...\n", freq/1e9)
	ext, err := clockrlc.NewExtractor(tech, freq, clockrlc.DefaultAxes(),
		[]clockrlc.Shielding{clockrlc.ShieldNone})
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. screen a mix of nets ---------------------------------
	nets := []struct {
		name string
		seg  clockrlc.Segment
		rd   float64
	}{
		{"clock spine (wide, strong driver)", clockrlc.Segment{
			Length: clockrlc.Um(6000), SignalWidth: clockrlc.Um(10),
			GroundWidth: clockrlc.Um(5), Spacing: clockrlc.Um(1),
			Shielding: clockrlc.ShieldNone}, 15},
		{"branch (medium)", clockrlc.Segment{
			Length: clockrlc.Um(2000), SignalWidth: clockrlc.Um(4),
			GroundWidth: clockrlc.Um(4), Spacing: clockrlc.Um(1),
			Shielding: clockrlc.ShieldNone}, 60},
		{"local route (narrow, weak driver)", clockrlc.Segment{
			Length: clockrlc.Um(1500), SignalWidth: clockrlc.Um(1),
			GroundWidth: clockrlc.Um(1), Spacing: clockrlc.Um(1),
			Shielding: clockrlc.ShieldNone}, 500},
	}
	fmt.Println("--- inductance screen ---")
	for _, n := range nets {
		rlc, err := ext.SegmentRLC(n.seg)
		if err != nil {
			log.Fatal(err)
		}
		line := clockrlc.DelayLine{Rd: n.rd, R: rlc.R, L: rlc.L, C: rlc.C, Cl: 50e-15}
		v, err := clockrlc.ScreenInductance(line, riseTime)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %v\n", n.name, v)
	}

	// --- 2. delay estimates vs simulation ------------------------
	fmt.Println("\n--- closed-form delay vs transient simulation (clock spine) ---")
	seg := nets[0].seg
	rlc, err := ext.SegmentRLC(seg)
	if err != nil {
		log.Fatal(err)
	}
	line := clockrlc.DelayLine{Rd: nets[0].rd, R: rlc.R, L: rlc.L, C: rlc.C, Cl: 50e-15}
	elm, err := clockrlc.ElmoreDelay(clockrlc.DelayLine{
		Rd: line.Rd, R: line.R, C: line.C, Cl: line.Cl})
	if err != nil {
		log.Fatal(err)
	}
	two, err := clockrlc.TwoPoleDelay(line)
	if err != nil {
		log.Fatal(err)
	}
	nl := clockrlc.NewNetlist()
	nl.AddV("v", "drv", "0", clockrlc.Ramp{V0: 0, V1: 1, Start: 1e-12, Rise: 1e-13})
	nl.AddR("rd", "drv", "in", line.Rd)
	if _, err := nl.AddLadder("w", "in", "out", rlc, 10); err != nil {
		log.Fatal(err)
	}
	nl.AddC("cl", "out", "0", line.Cl)
	res, err := clockrlc.Transient(nl, 0.2e-12, 800e-12, []string{"out"})
	if err != nil {
		log.Fatal(err)
	}
	vout, _ := res.Waveform("out")
	meas, err := clockrlc.DelayFromT0(res.Time, vout, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	zeta, _ := clockrlc.DampingRatio(line)
	fmt.Printf("ζ = %.2f | Elmore (RC) %.1f ps | two-pole (RLC) %.1f ps | simulated %.1f ps\n",
		zeta, clockrlc.ToPS(elm), clockrlc.ToPS(two), clockrlc.ToPS(meas))

	// --- 3. shield-width sweep -----------------------------------
	fmt.Println("\n--- crosstalk vs shield width (Section IV rule) ---")
	base := clockrlc.XtalkScenario{
		Victim: clockrlc.Segment{
			Length: clockrlc.Um(2000), SignalWidth: clockrlc.Um(4),
			GroundWidth: clockrlc.Um(4), Spacing: clockrlc.Um(1),
			Shielding: clockrlc.ShieldNone,
		},
		AggressorWidth:   clockrlc.Um(4),
		AggressorSpacing: clockrlc.Um(1),
		Sections:         6,
		RiseTime:         riseTime,
	}
	pts, err := clockrlc.ShieldWidthSweep(ext, base, []float64{0.25, 0.5, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("shield/signal = %-5.2f peak victim noise %.1f mV\n", p.WidthRatio, p.PeakNoise*1e3)
	}
	un := base
	un.Unshielded = true
	unRes, err := clockrlc.RunCrosstalk(ext, un)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unshielded           peak victim noise %.1f mV\n", unRes.PeakNoise*1e3)
}
