package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSPICEDeckStructure(t *testing.T) {
	n := New()
	n.AddV("vin", "in", Ground, Ramp{V0: 0, V1: 1, Start: 1e-11, Rise: 5e-11})
	n.AddR("rd", "in", "seg.n1", 40)
	i1 := n.AddL("l1", "seg.n1", "seg.n2", 1e-9)
	i2 := n.AddL("l2", "seg.n2", "out", 2e-9)
	n.AddK("k12", i1, i2, 0.5e-9)
	n.AddC("cl", "out", "gnd", 50e-15)

	var buf bytes.Buffer
	if err := n.WriteSPICE(&buf, "test deck"); err != nil {
		t.Fatal(err)
	}
	deck := buf.String()
	for _, want := range []string{
		"* test deck",
		"Rrd in seg_n1 40",
		"Ll1 seg_n1 seg_n2 1e-09",
		"Ll2 seg_n2 out 2e-09",
		"Ccl out 0 5e-14",
		"Vvin in 0 PWL(0 0 1e-11 0 6e-11 1)",
		".end",
	} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q:\n%s", want, deck)
		}
	}
	// Coupling coefficient: 0.5n/sqrt(1n·2n) = 0.3535...
	if !strings.Contains(deck, "Kk12 Ll1 Ll2 0.35355") {
		t.Errorf("deck K line wrong:\n%s", deck)
	}
}

func TestWriteSPICEWaveforms(t *testing.T) {
	n := New()
	n.AddV("vdc", "a", Ground, DC(1.8))
	n.AddV("vpwl", "b", Ground, PWL{T: []float64{0, 1e-9}, V: []float64{0, 2}})
	n.AddV("vstep", "c", Ground, Ramp{V0: 0, V1: 1, Start: 1e-9, Rise: 0})
	n.AddR("ra", "a", Ground, 1)
	n.AddR("rb", "b", Ground, 1)
	n.AddR("rc", "c", Ground, 1)
	var buf bytes.Buffer
	if err := n.WriteSPICE(&buf, "waves"); err != nil {
		t.Fatal(err)
	}
	deck := buf.String()
	if !strings.Contains(deck, "DC 1.8") {
		t.Errorf("DC source missing:\n%s", deck)
	}
	if !strings.Contains(deck, "PWL(0 0 1e-09 2)") {
		t.Errorf("PWL source missing:\n%s", deck)
	}
	// Zero-rise ramp becomes a 1 fs edge.
	if !strings.Contains(deck, "1.000001e-09 1") {
		t.Errorf("step source missing:\n%s", deck)
	}
}

func TestWriteSPICERejectsInvalid(t *testing.T) {
	n := New()
	n.AddR("bad", "a", "b", -1)
	var buf bytes.Buffer
	if err := n.WriteSPICE(&buf, "x"); err == nil {
		t.Error("emitted an invalid netlist")
	}
}
