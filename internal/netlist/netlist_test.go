package netlist

import (
	"math"
	"strings"
	"testing"
)

func TestWaveforms(t *testing.T) {
	if DC(2.5).At(99) != 2.5 {
		t.Error("DC waveform wrong")
	}
	r := Ramp{V0: 0, V1: 1, Start: 10, Rise: 20}
	cases := []struct{ t, want float64 }{
		{0, 0}, {10, 0}, {20, 0.5}, {30, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := r.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Ramp.At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	// Zero-rise ramp is a step.
	s := Ramp{V0: 0, V1: 1, Start: 5, Rise: 0}
	if s.At(4.999) != 0 || s.At(5.001) != 1 {
		t.Error("zero-rise ramp is not a step")
	}
	p := PWL{T: []float64{0, 1, 3}, V: []float64{0, 2, -2}}
	for _, c := range []struct{ t, want float64 }{
		{-1, 0}, {0.5, 1}, {1, 2}, {2, 0}, {5, -2},
	} {
		if got := p.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PWL.At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if (PWL{}).At(1) != 0 {
		t.Error("empty PWL must be zero")
	}
}

func TestValidateCatchesBadElements(t *testing.T) {
	cases := []struct {
		name  string
		build func(n *Netlist)
		want  string
	}{
		{"negative R", func(n *Netlist) { n.AddR("r", "a", "b", -1) }, "resistor"},
		{"shorted R", func(n *Netlist) { n.AddR("r", "a", "a", 1) }, "shorted"},
		{"zero C", func(n *Netlist) { n.AddC("c", "a", "b", 0) }, "capacitor"},
		{"zero L", func(n *Netlist) { n.AddL("l", "a", "b", 0) }, "inductor"},
		{"nil wave", func(n *Netlist) { n.AddV("v", "a", "b", nil) }, "waveform"},
		{"self mutual", func(n *Netlist) {
			i := n.AddL("l1", "a", "b", 1e-9)
			n.AddK("k", i, i, 1e-10)
		}, "itself"},
		{"k >= 1", func(n *Netlist) {
			i1 := n.AddL("l1", "a", "b", 1e-9)
			i2 := n.AddL("l2", "c", "d", 1e-9)
			n.AddK("k", i1, i2, 1.5e-9)
		}, "|k| >= 1"},
		{"dangling mutual", func(n *Netlist) {
			i1 := n.AddL("l1", "a", "b", 1e-9)
			n.AddK("k", i1, 7, 1e-10)
		}, "missing inductor"},
	}
	for _, c := range cases {
		n := New()
		c.build(n)
		err := n.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.want)
		}
	}
}

func TestNodesOrderAndGroundExclusion(t *testing.T) {
	n := New()
	n.AddV("v", "in", "0", DC(1))
	n.AddR("r", "in", "mid", 10)
	n.AddL("l", "mid", "out", 1e-9)
	n.AddC("c", "out", "gnd", 1e-15)
	nodes := n.Nodes()
	want := []string{"in", "mid", "out"}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
}

func TestAddLadderStructure(t *testing.T) {
	n := New()
	seg := SegmentRLC{R: 100, L: 4e-9, C: 1e-12}
	inds, err := n.AddLadder("s", "a", "b", seg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(inds) != 4 {
		t.Fatalf("ladder created %d inductors, want 4", len(inds))
	}
	// Totals must be preserved.
	var rt, lt, ct float64
	for _, r := range n.Resistors {
		rt += r.R
	}
	for _, l := range n.Inductors {
		lt += l.L
	}
	for _, c := range n.Capacitors {
		ct += c.C
	}
	if math.Abs(rt-seg.R) > 1e-9 {
		t.Errorf("ladder R total %g, want %g", rt, seg.R)
	}
	if math.Abs(lt-seg.L) > 1e-18 {
		t.Errorf("ladder L total %g, want %g", lt, seg.L)
	}
	if math.Abs(ct-seg.C) > 1e-24 {
		t.Errorf("ladder C total %g, want %g", ct, seg.C)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("ladder netlist invalid: %v", err)
	}
}

func TestAddLadderRCOnly(t *testing.T) {
	n := New()
	inds, err := n.AddLadder("s", "a", "b", SegmentRLC{R: 10, L: 0, C: 1e-13}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(inds) != 0 {
		t.Errorf("RC ladder created inductors: %v", inds)
	}
	if len(n.Resistors) != 3 {
		t.Errorf("RC ladder has %d resistors, want 3", len(n.Resistors))
	}
}

func TestAddLadderErrors(t *testing.T) {
	n := New()
	if _, err := n.AddLadder("s", "a", "b", SegmentRLC{R: 1, C: 1e-15}, 0); err == nil {
		t.Error("accepted zero sections")
	}
	if _, err := n.AddLadder("s", "a", "a", SegmentRLC{R: 1, C: 1e-15}, 1); err == nil {
		t.Error("accepted coincident endpoints")
	}
	if _, err := n.AddLadder("s", "a", "b", SegmentRLC{R: 0, C: 1e-15}, 1); err == nil {
		t.Error("accepted zero resistance segment")
	}
	if _, err := n.AddLadder("s", "a", "b", SegmentRLC{R: 1, L: -1, C: 1e-15}, 1); err == nil {
		t.Error("accepted negative inductance segment")
	}
}
