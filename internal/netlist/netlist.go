// Package netlist models the linear circuits the extractor emits:
// resistors, capacitors, (mutually coupled) inductors and independent
// sources, connected between named nodes. Node "0" (alias "gnd") is
// ground. The package also provides the ladder builders that turn a
// segment's extracted R, L, C into the distributed RLC sections the
// paper's netlist formulation uses.
package netlist

import (
	"errors"
	"fmt"
)

// Ground is the reserved ground node name.
const Ground = "0"

// Resistor is a two-terminal resistance in ohms.
type Resistor struct {
	Name string
	A, B string
	R    float64
}

// Capacitor is a two-terminal capacitance in farads.
type Capacitor struct {
	Name string
	A, B string
	C    float64
}

// Inductor is a two-terminal inductance in henries; current flows
// A → B internally.
type Inductor struct {
	Name string
	A, B string
	L    float64
}

// Mutual couples two inductors (by index into the netlist's inductor
// list) with mutual inductance M in henries (sign included; dots at
// the A terminals).
type Mutual struct {
	Name   string
	L1, L2 int
	M      float64
}

// Waveform is a time-dependent source value.
type Waveform interface {
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Ramp rises linearly from V0 to V1 between Start and Start+Rise and
// holds V1 afterwards. It models the clock buffer's switching edge.
type Ramp struct {
	V0, V1      float64
	Start, Rise float64
}

// At implements Waveform.
func (r Ramp) At(t float64) float64 {
	switch {
	case t <= r.Start:
		return r.V0
	case r.Rise <= 0 || t >= r.Start+r.Rise:
		return r.V1
	default:
		return r.V0 + (r.V1-r.V0)*(t-r.Start)/r.Rise
	}
}

// PWL is a piece-wise linear waveform through (T[i], V[i]) points,
// constant outside the range.
type PWL struct {
	T, V []float64
}

// At implements Waveform.
func (p PWL) At(t float64) float64 {
	n := len(p.T)
	if n == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	if t >= p.T[n-1] {
		return p.V[n-1]
	}
	for i := 1; i < n; i++ {
		if t <= p.T[i] {
			f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
			return p.V[i-1] + f*(p.V[i]-p.V[i-1])
		}
	}
	return p.V[n-1]
}

// VSource is an independent voltage source; the branch current is an
// MNA unknown.
type VSource struct {
	Name string
	A, B string // A is +
	Wave Waveform
}

// Netlist is an editable linear circuit.
type Netlist struct {
	Resistors  []Resistor
	Capacitors []Capacitor
	Inductors  []Inductor
	Mutuals    []Mutual
	VSources   []VSource
}

// New returns an empty netlist.
func New() *Netlist { return &Netlist{} }

// AddR appends a resistor and returns its index.
func (n *Netlist) AddR(name, a, b string, r float64) int {
	n.Resistors = append(n.Resistors, Resistor{Name: name, A: a, B: b, R: r})
	return len(n.Resistors) - 1
}

// AddC appends a capacitor and returns its index.
func (n *Netlist) AddC(name, a, b string, c float64) int {
	n.Capacitors = append(n.Capacitors, Capacitor{Name: name, A: a, B: b, C: c})
	return len(n.Capacitors) - 1
}

// AddL appends an inductor and returns its index (used by AddK).
func (n *Netlist) AddL(name, a, b string, l float64) int {
	n.Inductors = append(n.Inductors, Inductor{Name: name, A: a, B: b, L: l})
	return len(n.Inductors) - 1
}

// AddK couples inductors l1 and l2 (indices from AddL) with mutual
// inductance m (henries).
func (n *Netlist) AddK(name string, l1, l2 int, m float64) int {
	n.Mutuals = append(n.Mutuals, Mutual{Name: name, L1: l1, L2: l2, M: m})
	return len(n.Mutuals) - 1
}

// AddV appends an independent voltage source and returns its index.
func (n *Netlist) AddV(name, a, b string, w Waveform) int {
	n.VSources = append(n.VSources, VSource{Name: name, A: a, B: b, Wave: w})
	return len(n.VSources) - 1
}

// Validate checks element values and coupling coefficients.
func (n *Netlist) Validate() error {
	for _, r := range n.Resistors {
		if r.R <= 0 {
			return fmt.Errorf("netlist: resistor %q has non-positive value %g", r.Name, r.R)
		}
		if r.A == r.B {
			return fmt.Errorf("netlist: resistor %q is shorted (%s-%s)", r.Name, r.A, r.B)
		}
	}
	for _, c := range n.Capacitors {
		if c.C <= 0 {
			return fmt.Errorf("netlist: capacitor %q has non-positive value %g", c.Name, c.C)
		}
		if c.A == c.B {
			return fmt.Errorf("netlist: capacitor %q is shorted", c.Name)
		}
	}
	for _, l := range n.Inductors {
		if l.L <= 0 {
			return fmt.Errorf("netlist: inductor %q has non-positive value %g", l.Name, l.L)
		}
		if l.A == l.B {
			return fmt.Errorf("netlist: inductor %q is shorted", l.Name)
		}
	}
	for _, m := range n.Mutuals {
		if m.L1 < 0 || m.L1 >= len(n.Inductors) || m.L2 < 0 || m.L2 >= len(n.Inductors) {
			return fmt.Errorf("netlist: mutual %q references missing inductor", m.Name)
		}
		if m.L1 == m.L2 {
			return fmt.Errorf("netlist: mutual %q couples an inductor to itself", m.Name)
		}
		l1 := n.Inductors[m.L1].L
		l2 := n.Inductors[m.L2].L
		if k := m.M * m.M / (l1 * l2); k >= 1 {
			return fmt.Errorf("netlist: mutual %q has |k| >= 1 (M=%g, L1=%g, L2=%g)", m.Name, m.M, l1, l2)
		}
	}
	for _, v := range n.VSources {
		if v.Wave == nil {
			return fmt.Errorf("netlist: source %q has no waveform", v.Name)
		}
		if v.A == v.B {
			return fmt.Errorf("netlist: source %q is shorted", v.Name)
		}
	}
	return nil
}

// Nodes returns every node name appearing in the netlist, ground
// excluded, in first-appearance order.
func (n *Netlist) Nodes() []string {
	var order []string
	seen := map[string]bool{Ground: true, "gnd": true}
	add := func(names ...string) {
		for _, s := range names {
			if !seen[s] {
				seen[s] = true
				order = append(order, s)
			}
		}
	}
	for _, e := range n.Resistors {
		add(e.A, e.B)
	}
	for _, e := range n.Capacitors {
		add(e.A, e.B)
	}
	for _, e := range n.Inductors {
		add(e.A, e.B)
	}
	for _, e := range n.VSources {
		add(e.A, e.B)
	}
	return order
}

// SegmentRLC carries the lumped totals extracted for one wire segment.
type SegmentRLC struct {
	R float64 // total series resistance, Ω
	L float64 // total series (loop) inductance, H
	C float64 // total capacitance to ground, F
}

// Validate checks physical signs. A zero L is allowed (RC-only
// netlists); R and C must be positive.
func (s SegmentRLC) Validate() error {
	if s.R <= 0 || s.C <= 0 || s.L < 0 {
		return fmt.Errorf("netlist: segment RLC out of range (R=%g, L=%g, C=%g)", s.R, s.L, s.C)
	}
	return nil
}

// AddLadder appends a distributed RLC ladder of n π-sections between
// nodes from and to, modelling one extracted segment. Each section
// carries R/n and L/n in series with C/n split half to each end (the
// classic π equivalent: C/2n at the section ends accumulate to C/n at
// interior junctions). With L = 0 the sections degenerate to RC.
// Internal node names are derived from prefix. The indices of the
// created inductors are returned so callers can add inter-segment
// mutual couplings.
func (n *Netlist) AddLadder(prefix, from, to string, seg SegmentRLC, sections int) ([]int, error) {
	if sections < 1 {
		return nil, errors.New("netlist: ladder needs at least one section")
	}
	if err := seg.Validate(); err != nil {
		return nil, err
	}
	if from == to {
		return nil, fmt.Errorf("netlist: ladder %q endpoints coincide", prefix)
	}
	var inductors []int
	rsec := seg.R / float64(sections)
	lsec := seg.L / float64(sections)
	csec := seg.C / float64(sections)
	prev := from
	n.AddC(prefix+".c0", from, Ground, csec/2)
	for s := 0; s < sections; s++ {
		var mid string
		end := to
		if s < sections-1 {
			end = fmt.Sprintf("%s.n%d", prefix, s+1)
		}
		if lsec > 0 {
			mid = fmt.Sprintf("%s.m%d", prefix, s)
			n.AddR(fmt.Sprintf("%s.r%d", prefix, s), prev, mid, rsec)
			inductors = append(inductors,
				n.AddL(fmt.Sprintf("%s.l%d", prefix, s), mid, end, lsec))
		} else {
			n.AddR(fmt.Sprintf("%s.r%d", prefix, s), prev, end, rsec)
		}
		capVal := csec
		if s == sections-1 {
			capVal = csec / 2
		}
		n.AddC(fmt.Sprintf("%s.c%d", prefix, s+1), end, Ground, capVal)
		prev = end
	}
	return inductors, nil
}
