package netlist

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteSPICE emits the netlist as a SPICE deck so extracted segments
// can be handed to an external simulator. Node "0" is SPICE ground;
// other node names have characters SPICE dislikes replaced by
// underscores. Mutual inductances are emitted as K elements with
// coupling coefficients (SPICE convention), sources as PWL/DC/ramp
// equivalents.
func (n *Netlist) WriteSPICE(w io.Writer, title string) error {
	if err := n.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "* %s\n", title)
	node := func(s string) string {
		if s == Ground || s == "gnd" {
			return "0"
		}
		r := strings.NewReplacer(".", "_", " ", "_", ",", "_", "(", "_", ")", "_")
		return r.Replace(s)
	}
	name := func(s string) string { return node(s) } // same sanitation
	for i, r := range n.Resistors {
		fmt.Fprintf(&b, "R%s %s %s %.9g\n", nameOrIdx(name(r.Name), "r", i), node(r.A), node(r.B), r.R)
	}
	for i, c := range n.Capacitors {
		fmt.Fprintf(&b, "C%s %s %s %.9g\n", nameOrIdx(name(c.Name), "c", i), node(c.A), node(c.B), c.C)
	}
	for i, l := range n.Inductors {
		fmt.Fprintf(&b, "L%s %s %s %.9g\n", nameOrIdx(name(l.Name), "l", i), node(l.A), node(l.B), l.L)
	}
	for i, k := range n.Mutuals {
		l1 := "L" + nameOrIdx(name(n.Inductors[k.L1].Name), "l", k.L1)
		l2 := "L" + nameOrIdx(name(n.Inductors[k.L2].Name), "l", k.L2)
		coeff := k.M / math.Sqrt(n.Inductors[k.L1].L*n.Inductors[k.L2].L)
		fmt.Fprintf(&b, "K%s %s %s %.9g\n", nameOrIdx(name(k.Name), "k", i), l1, l2, coeff)
	}
	for i, v := range n.VSources {
		fmt.Fprintf(&b, "V%s %s %s %s\n", nameOrIdx(name(v.Name), "v", i), node(v.A), node(v.B), spiceWave(v.Wave))
	}
	fmt.Fprintln(&b, ".end")
	_, err := io.WriteString(w, b.String())
	return err
}

func nameOrIdx(name, prefix string, i int) string {
	if name == "" {
		return fmt.Sprintf("%s%d", prefix, i)
	}
	return name
}

// spiceWave renders a waveform as a SPICE source specification.
func spiceWave(w Waveform) string {
	switch s := w.(type) {
	case DC:
		return fmt.Sprintf("DC %.9g", float64(s))
	case Ramp:
		if s.Rise <= 0 {
			return fmt.Sprintf("PWL(0 %.9g %.12g %.9g %.12g %.9g)",
				s.V0, s.Start, s.V0, s.Start+1e-15, s.V1)
		}
		return fmt.Sprintf("PWL(0 %.9g %.12g %.9g %.12g %.9g)",
			s.V0, s.Start, s.V0, s.Start+s.Rise, s.V1)
	case PWL:
		var b strings.Builder
		b.WriteString("PWL(")
		for i := range s.T {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.12g %.9g", s.T[i], s.V[i])
		}
		b.WriteByte(')')
		return b.String()
	default:
		// Sample unknown waveforms coarsely; better than dropping the
		// source.
		return fmt.Sprintf("DC %.9g", w.At(0))
	}
}
