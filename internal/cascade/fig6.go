package cascade

import (
	"clockrlc/internal/units"
)

// Fig6Cross is the paper's Fig. 6 cross section: all three wires
// w = 1.2 µm. Spacing and thickness are not stated in the paper; the
// values here are typical for the 0.25 µm-generation technology the
// paper targets and are recorded in EXPERIMENTS.md.
func Fig6Cross() CrossSection {
	return CrossSection{
		SignalWidth: units.Um(1.2),
		GroundWidth: units.Um(1.2),
		Spacing:     units.Um(1.2),
		Thickness:   units.Um(1.0),
	}
}

// Fig6a builds the paper's Fig. 6(a) tree: trunk a→b, then two
// two-segment branches b→c→e and b→d→f. Segment lengths follow the
// figure (100, 150, 250, 250, 100 µm); the comparison target is
//
//	Lab + (Lbc + Lce) ∥ (Lbd + Ldf).
func Fig6a(rho float64) (*Tree, error) {
	specs := []SegmentSpec{
		{Name: "ab", From: "a", To: "b", Dir: YPlus, Length: units.Um(100)},
		{Name: "bc", From: "b", To: "c", Dir: XMinus, Length: units.Um(150)},
		{Name: "ce", From: "c", To: "e", Dir: YPlus, Length: units.Um(250)},
		{Name: "bd", From: "b", To: "d", Dir: XPlus, Length: units.Um(250)},
		{Name: "df", From: "d", To: "f", Dir: YPlus, Length: units.Um(100)},
	}
	return NewTree("a", specs, Fig6Cross(), rho)
}

// Fig6b builds the paper's Fig. 6(b) tree: a longer trunk with one
// short stub, lengths 600, 300, 20 and 600 µm per the figure (the
// figure's exact topology is partially legible; this layout preserves
// its segment lengths and two-branch structure).
func Fig6b(rho float64) (*Tree, error) {
	specs := []SegmentSpec{
		{Name: "ab", From: "a", To: "b", Dir: YPlus, Length: units.Um(600)},
		{Name: "bc", From: "b", To: "c", Dir: XMinus, Length: units.Um(300)},
		{Name: "cd", From: "c", To: "d", Dir: YPlus, Length: units.Um(20)},
		{Name: "be", From: "b", To: "e", Dir: XPlus, Length: units.Um(600)},
	}
	return NewTree("a", specs, Fig6Cross(), rho)
}
