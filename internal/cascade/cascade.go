// Package cascade implements Section IV of the paper: linear
// cascading of shielded interconnect segments.
//
// A routed tree is built from three-wire (ground/signal/ground)
// segments laid out in the plane. The claim under test: because two
// at-least-equal-width ground wires shield a segment's inductive
// coupling from its environment, the loop inductance of the whole tree
// equals the series/parallel combination of per-segment loop
// inductances extracted in isolation. The package provides both
// sides:
//
//   - CascadedLoopL: per-segment isolated loop solves combined by the
//     series (path) / parallel (branch) rule;
//   - FullLoopL: a rigorous whole-tree PEEC solve with every mutual
//     coupling between every pair of parallel bars anywhere in the
//     tree, the stand-in for the paper's whole-structure RI3 runs.
//
// Their relative difference is the Table I error column. One caveat
// when comparing against the paper's 3.57 %/1.55 %: both sides of our
// comparison discretise the tree into the same straight bars, so the
// difference isolates *inter-segment inductive coupling* (which the
// shielding suppresses to well below a per cent — the paper's claim,
// conservatively confirmed). The paper's residual few-per-cent error
// additionally contains corner effects at the bends of its continuous
// conductors, of order w/length, which neither side of our comparison
// models; consistently, the paper's error shrinks (3.57 % → 1.55 %)
// as its segments lengthen.
package cascade

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/linalg"
	"clockrlc/internal/loop"
	"clockrlc/internal/obs"
	"clockrlc/internal/peec"
)

// Cascading accounting: cascade.segments counts per-segment isolated
// loop solves (the paper's unit of work); the full-tree reference
// solve is tracked separately since it scales with the whole bar set.
var (
	cascadeSegments = obs.GetCounter("cascade.segments")
	cascadeRuns     = obs.GetCounter("cascade.runs")
	fullSolves      = obs.GetCounter("cascade.full_solves")
	fullSolveNs     = obs.GetCounter("cascade.full_solve_ns")
)

// Dir is a routing direction in the plane.
type Dir int

const (
	// XPlus routes toward +x.
	XPlus Dir = iota
	// XMinus routes toward −x.
	XMinus
	// YPlus routes toward +y.
	YPlus
	// YMinus routes toward −y.
	YMinus
)

// axis returns the peec axis of the direction.
func (d Dir) axis() peec.Axis {
	if d == XPlus || d == XMinus {
		return peec.AxisX
	}
	return peec.AxisY
}

// sign is +1 for the positive directions, −1 otherwise.
func (d Dir) sign() float64 {
	if d == XPlus || d == YPlus {
		return 1
	}
	return -1
}

// CrossSection is the three-wire profile shared by a tree's segments
// (the paper's Fig. 6 uses equal-width wires, w = 1.2 µm).
type CrossSection struct {
	SignalWidth, GroundWidth, Spacing, Thickness float64
}

// Validate checks the profile.
func (c CrossSection) Validate() error {
	if c.SignalWidth <= 0 || c.GroundWidth <= 0 || c.Spacing <= 0 || c.Thickness <= 0 {
		return fmt.Errorf("cascade: cross-section fields must be positive: %+v", c)
	}
	return nil
}

// SegmentSpec describes one tree edge: it starts at the node named
// From (whose position is already known) and runs Length in direction
// Dir to create/reach node To.
type SegmentSpec struct {
	Name     string
	From, To string
	Dir      Dir
	Length   float64
}

// Tree is a routed interconnect tree of three-wire segments.
type Tree struct {
	Root     string
	Specs    []SegmentSpec
	Cross    CrossSection
	Rho      float64
	pos      map[string][2]float64
	children map[string][]int // node → outgoing spec indices
}

// NewTree lays out the tree: node positions are accumulated by walking
// the specs from the root (which sits at the origin). Specs must be
// ordered so that every segment's From node is already placed.
func NewTree(root string, specs []SegmentSpec, cross CrossSection, rho float64) (*Tree, error) {
	if err := cross.Validate(); err != nil {
		return nil, err
	}
	if rho <= 0 {
		return nil, fmt.Errorf("cascade: resistivity must be positive, got %g", rho)
	}
	if len(specs) == 0 {
		return nil, errors.New("cascade: tree has no segments")
	}
	t := &Tree{
		Root:     root,
		Specs:    specs,
		Cross:    cross,
		Rho:      rho,
		pos:      map[string][2]float64{root: {0, 0}},
		children: map[string][]int{},
	}
	for i, s := range specs {
		if s.Length <= 0 {
			return nil, fmt.Errorf("cascade: segment %q has non-positive length", s.Name)
		}
		p, ok := t.pos[s.From]
		if !ok {
			return nil, fmt.Errorf("cascade: segment %q starts at unplaced node %q", s.Name, s.From)
		}
		if _, dup := t.pos[s.To]; dup {
			return nil, fmt.Errorf("cascade: segment %q re-enters node %q (not a tree)", s.Name, s.To)
		}
		q := p
		switch s.Dir.axis() {
		case peec.AxisX:
			q[0] += s.Dir.sign() * s.Length
		default:
			q[1] += s.Dir.sign() * s.Length
		}
		t.pos[s.To] = q
		t.children[s.From] = append(t.children[s.From], i)
	}
	return t, nil
}

// Pos returns a node's laid-out position.
func (t *Tree) Pos(node string) ([2]float64, error) {
	p, ok := t.pos[node]
	if !ok {
		return [2]float64{}, fmt.Errorf("cascade: unknown node %q", node)
	}
	return p, nil
}

// Sinks returns the leaf nodes (no outgoing segments), in spec order.
func (t *Tree) Sinks() []string {
	var sinks []string
	for _, s := range t.Specs {
		if len(t.children[s.To]) == 0 {
			sinks = append(sinks, s.To)
		}
	}
	return sinks
}

// segBars builds the three bars of a segment (g1, signal, g2 in
// cross-section order). The returned orientation sign is +1 when the
// branch current From→To flows along the bar's positive axis.
func (t *Tree) segBars(s SegmentSpec) (bars [3]peec.Bar, orient float64) {
	p := t.pos[s.From]
	c := t.Cross
	offset := c.SignalWidth/2 + c.Spacing + c.GroundWidth/2
	orient = s.Dir.sign()
	ax := s.Dir.axis()
	// Axial start: min corner along the routing axis.
	var a0 float64
	if ax == peec.AxisX {
		a0 = p[0]
	} else {
		a0 = p[1]
	}
	if orient < 0 {
		a0 -= s.Length
	}
	mk := func(lateral, width float64) peec.Bar {
		b := peec.Bar{Axis: ax, L: s.Length, W: width, T: c.Thickness}
		if ax == peec.AxisX {
			b.O = [3]float64{a0, p[1] + lateral - width/2, 0}
		} else {
			b.O = [3]float64{p[0] + lateral - width/2, a0, 0}
		}
		return b
	}
	bars[0] = mk(-offset, c.GroundWidth)
	bars[1] = mk(0, c.SignalWidth)
	bars[2] = mk(+offset, c.GroundWidth)
	return bars, orient
}

// SegmentLoopL solves one segment in isolation and returns its loop
// inductance at frequency f.
func (t *Tree) SegmentLoopL(i int, f float64) (float64, error) {
	if i < 0 || i >= len(t.Specs) {
		return 0, fmt.Errorf("cascade: segment index %d out of range", i)
	}
	bars, _ := t.segBars(t.Specs[i])
	roles := []loop.Role{loop.RoleReturn, loop.RoleSignal, loop.RoleReturn}
	rhos := []float64{t.Rho, t.Rho, t.Rho}
	sol, err := loop.Solve(bars[:], roles, rhos, f)
	if err != nil {
		return 0, err
	}
	return sol.L, nil
}

// CascadedLoopL computes the tree's loop inductance by the paper's
// series/parallel rule: walking from the root, a path adds segment
// loop inductances in series, and sibling branches combine in
// parallel (all sinks are shorted ends of the loop). For Fig. 6(a)
// this reproduces Lab + (Lbc + Lce) ∥ (Lbd + Ldf).
func (t *Tree) CascadedLoopL(f float64) (float64, error) {
	return t.CascadedLoopLCtx(context.Background(), f)
}

// CascadedLoopLCtx is CascadedLoopL with its span parented through
// ctx (obs.StartCtx) — the concurrency-correct form when several
// trees reduce in parallel.
func (t *Tree) CascadedLoopLCtx(ctx context.Context, f float64) (float64, error) {
	_, sp := obs.StartCtx(ctx, "cascade.cascaded_loop_l")
	defer sp.End()
	sp.SetAttr("segments", len(t.Specs))
	cascadeRuns.Inc()
	cascadeSegments.Add(int64(len(t.Specs)))
	segL := make([]float64, len(t.Specs))
	eng := check.Active()
	for i := range t.Specs {
		l, err := t.SegmentLoopL(i, f)
		if err != nil {
			return 0, fmt.Errorf("cascade: segment %q: %w", t.Specs[i].Name, err)
		}
		// Series/parallel combination preserves positivity only if
		// every term is positive — an armed engine names the segment
		// whose isolated loop solve came out non-physical before the
		// combination can smear it across the tree.
		if eng.Armed() && (math.IsNaN(l) || math.IsInf(l, 0) || l <= 0) {
			if err := eng.Report(&check.Violation{
				Stage: check.StageCascade, Invariant: "segment loop inductance finite and positive",
				Subject: fmt.Sprintf("segment %q", t.Specs[i].Name),
				Detail:  fmt.Sprintf("L = %g", l),
			}); err != nil {
				return 0, err
			}
		}
		segL[i] = l
	}
	var down func(node string) float64
	down = func(node string) float64 {
		kids := t.children[node]
		if len(kids) == 0 {
			return 0
		}
		inv := 0.0
		for _, i := range kids {
			branch := segL[i] + down(t.Specs[i].To)
			if branch <= 0 {
				return math.Inf(1)
			}
			inv += 1 / branch
		}
		return 1 / inv
	}
	l := down(t.Root)
	if math.IsInf(l, 0) || l <= 0 {
		return 0, errors.New("cascade: degenerate combination")
	}
	if eng.Armed() && math.IsNaN(l) {
		if err := eng.Report(&check.Violation{
			Stage: check.StageCascade, Invariant: "cascaded loop inductance finite",
			Subject: fmt.Sprintf("tree rooted at %q", t.Root),
			Detail:  fmt.Sprintf("L = %g", l),
		}); err != nil {
			return 0, err
		}
	}
	return l, nil
}

// FullLoopL performs the whole-tree extraction: every bar of every
// segment becomes a branch with resistance and full partial mutual
// couplings to all other bars (orthogonal pairs are exactly zero),
// ground wires of adjoining segments are merged at junctions, signal
// and ground are shorted at every sink, and a 1 A loop drive is
// applied at the root. Returns the loop inductance Im(Z)/ω.
func (t *Tree) FullLoopL(f float64) (float64, error) {
	return t.FullLoopLCtx(context.Background(), f)
}

// FullLoopLCtx is FullLoopL with context-parented tracing.
func (t *Tree) FullLoopLCtx(ctx context.Context, f float64) (float64, error) {
	if f <= 0 {
		return 0, fmt.Errorf("cascade: frequency must be positive, got %g", f)
	}
	_, sp := obs.StartCtx(ctx, "cascade.full_loop_l")
	defer sp.End()
	sp.SetAttr("segments", len(t.Specs))
	fullSolves.Inc()
	defer obs.SinceNs(fullSolveNs, time.Now())
	type branch struct {
		bar    peec.Bar
		orient float64
		p, q   string // node names: current flows p→q through the bar
	}
	var branches []branch
	for _, s := range t.Specs {
		bars, orient := t.segBars(s)
		branches = append(branches,
			branch{bars[0], orient, "g:" + s.From, "g:" + s.To},
			branch{bars[1], orient, "s:" + s.From, "s:" + s.To},
			branch{bars[2], orient, "g:" + s.From, "g:" + s.To},
		)
	}
	// Node numbering; sinks merge their signal node into the ground
	// node (shorted loop end), and the root ground node is the
	// reference (absent from the system).
	merge := map[string]string{}
	for _, sink := range t.Sinks() {
		merge["s:"+sink] = "g:" + sink
	}
	ref := "g:" + t.Root
	idx := map[string]int{}
	nodeID := func(name string) int {
		if m, ok := merge[name]; ok {
			name = m
		}
		if name == ref {
			return -1
		}
		id, ok := idx[name]
		if !ok {
			id = len(idx)
			idx[name] = id
		}
		return id
	}
	type nb struct{ p, q int }
	nbs := make([]nb, len(branches))
	for i, b := range branches {
		nbs[i] = nb{nodeID(b.p), nodeID(b.q)}
	}

	// Branch impedance matrix with orientation-corrected mutuals.
	nB := len(branches)
	z := linalg.NewCMatrix(nB, nB)
	w := 2 * math.Pi * f
	for i := 0; i < nB; i++ {
		bi := branches[i]
		r := t.Rho * bi.bar.L / (bi.bar.W * bi.bar.T)
		z.Set(i, i, complex(r, w*peec.HoerLoveSelf(bi.bar)))
		for j := i + 1; j < nB; j++ {
			bj := branches[j]
			m := peec.HoerLoveMutual(bi.bar, bj.bar) * bi.orient * bj.orient
			if m != 0 {
				z.Set(i, j, complex(0, w*m))
				z.Set(j, i, complex(0, w*m))
			}
		}
	}
	zf, err := linalg.FactorC(z)
	if err != nil {
		return 0, fmt.Errorf("cascade: branch impedance factor: %w", err)
	}
	// Nodal system Y·v = J with Y = A·Z⁻¹·Aᵀ, built column by column:
	// column k of Z⁻¹·Aᵀ is Z⁻¹ applied to Aᵀ's column (branch
	// incidence of node k).
	nN := len(idx)
	y := linalg.NewCMatrix(nN, nN)
	col := make([]complex128, nB)
	for k := 0; k < nN; k++ {
		for i := range col {
			col[i] = 0
		}
		for bi, n := range nbs {
			if n.p == k {
				col[bi] += 1
			}
			if n.q == k {
				col[bi] -= 1
			}
		}
		x, err := zf.Solve(col)
		if err != nil {
			return 0, err
		}
		// y[:, k] = A·x
		for bi, n := range nbs {
			if n.p >= 0 {
				y.Add(n.p, k, x[bi])
			}
			if n.q >= 0 {
				y.Add(n.q, k, -x[bi])
			}
		}
	}
	j := make([]complex128, nN)
	src := nodeID("s:" + t.Root)
	if src < 0 {
		return 0, errors.New("cascade: root signal node merged into reference")
	}
	j[src] = 1 // +1 A into the root signal node, −1 A out of the
	// reference ground node (implicit).
	v, err := linalg.SolveSystemC(y, j)
	if err != nil {
		return 0, fmt.Errorf("cascade: nodal solve: %w", err)
	}
	zloop := v[src] // reference voltage is 0
	l := imagOverW(zloop, w)
	if eng := check.Active(); eng.Armed() && (math.IsNaN(l) || math.IsInf(l, 0) || l <= 0) {
		if err := eng.Report(&check.Violation{
			Stage: check.StageCascade, Invariant: "full-tree loop inductance finite and positive",
			Subject: fmt.Sprintf("tree rooted at %q", t.Root),
			Detail:  fmt.Sprintf("L = %g", l),
		}); err != nil {
			return 0, err
		}
	}
	return l, nil
}

func imagOverW(z complex128, w float64) float64 { return imag(z) / w }
