package cascade

import (
	"math"
	"testing"

	"clockrlc/internal/units"
)

// A U-shaped route has two long antiparallel runs. In the full-tree
// extraction their mutual coupling must enter with a negative sign
// (opposite current directions), so the full loop inductance falls
// below the cascaded series sum. This pins the orientation handling
// of FullLoopL.
func TestUTurnOrientationSign(t *testing.T) {
	// Route: up 400, right over a short jog, down 400 — the two long
	// runs sit close and carry opposite currents. Deliberately thin
	// shields let the runs see each other (with the normal equal-width
	// shields the effect is suppressed to ~0.02 % — itself a
	// confirmation of Section IV; see the test below).
	specs := []SegmentSpec{
		{Name: "up", From: "a", To: "b", Dir: YPlus, Length: units.Um(400)},
		{Name: "jog", From: "b", To: "c", Dir: XPlus, Length: units.Um(4.5)},
		{Name: "down", From: "c", To: "d", Dir: YMinus, Length: units.Um(400)},
	}
	cross := Fig6Cross()
	cross.GroundWidth = units.Um(0.3)
	tr, err := NewTree("a", specs, cross, units.RhoCopper)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tr.FullLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	casc, err := tr.CascadedLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	if full <= 0 {
		t.Fatalf("full loop L = %g", full)
	}
	if !(full < casc) {
		t.Errorf("antiparallel runs must reduce the full loop L: full %g vs cascaded %g", full, casc)
	}
	if rel := (casc - full) / casc; rel < 0.002 {
		t.Errorf("U-turn reduction only %g; orientation sign may be lost", rel)
	}

	// With proper equal-width shields the same route cascades almost
	// perfectly — Section IV's claim seen from the orientation side.
	trShielded, err := NewTree("a", specs, Fig6Cross(), units.RhoCopper)
	if err != nil {
		t.Fatal(err)
	}
	fullS, err := trShielded.FullLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	cascS, err := trShielded.CascadedLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(cascS-fullS) / cascS; rel > 0.01 {
		t.Errorf("shielded U-turn cascading error %g, want < 1%%", rel)
	}
}

// The mirrored route (down first) must give the identical loop
// inductance: the solve cannot depend on global direction conventions.
func TestDirectionMirrorSymmetry(t *testing.T) {
	mk := func(d1, d3 Dir) float64 {
		specs := []SegmentSpec{
			{Name: "s1", From: "a", To: "b", Dir: d1, Length: units.Um(300)},
			{Name: "s2", From: "b", To: "c", Dir: XPlus, Length: units.Um(50)},
			{Name: "s3", From: "c", To: "d", Dir: d3, Length: units.Um(300)},
		}
		tr, err := NewTree("a", specs, Fig6Cross(), units.RhoCopper)
		if err != nil {
			t.Fatal(err)
		}
		full, err := tr.FullLoopL(fsig)
		if err != nil {
			t.Fatal(err)
		}
		return full
	}
	upDown := mk(YPlus, YMinus)
	downUp := mk(YMinus, YPlus)
	if rel := math.Abs(upDown-downUp) / upDown; rel > 1e-9 {
		t.Errorf("mirror asymmetry: %g vs %g (rel %g)", upDown, downUp, rel)
	}
}

// Separating the two runs far apart must recover the cascaded value.
func TestUTurnDecouplesWithDistance(t *testing.T) {
	mk := func(jog float64) (full, casc float64) {
		specs := []SegmentSpec{
			{Name: "up", From: "a", To: "b", Dir: YPlus, Length: units.Um(400)},
			{Name: "jog", From: "b", To: "c", Dir: XPlus, Length: jog},
			{Name: "down", From: "c", To: "d", Dir: YMinus, Length: units.Um(400)},
		}
		tr, err := NewTree("a", specs, Fig6Cross(), units.RhoCopper)
		if err != nil {
			t.Fatal(err)
		}
		if full, err = tr.FullLoopL(fsig); err != nil {
			t.Fatal(err)
		}
		if casc, err = tr.CascadedLoopL(fsig); err != nil {
			t.Fatal(err)
		}
		return full, casc
	}
	fullNear, cascNear := mk(units.Um(20))
	fullFar, cascFar := mk(units.Um(400))
	relNear := (cascNear - fullNear) / cascNear
	relFar := math.Abs(cascFar-fullFar) / cascFar
	if !(relFar < relNear) {
		t.Errorf("coupling did not decay with separation: near %g, far %g", relNear, relFar)
	}
	if relFar > 0.02 {
		t.Errorf("far-separated U-turn still differs by %g", relFar)
	}
}
