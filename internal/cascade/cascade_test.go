package cascade

import (
	"math"
	"testing"

	"clockrlc/internal/units"
)

const fsig = 3.2e9

func straightTree(t *testing.T, n int, segLen float64) *Tree {
	t.Helper()
	var specs []SegmentSpec
	from := "n0"
	for i := 0; i < n; i++ {
		to := "n" + string(rune('1'+i))
		specs = append(specs, SegmentSpec{
			Name: from + to, From: from, To: to, Dir: YPlus, Length: segLen,
		})
		from = to
	}
	tr, err := NewTree("n0", specs, Fig6Cross(), units.RhoCopper)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSingleSegmentCascadeEqualsFull(t *testing.T) {
	tr := straightTree(t, 1, units.Um(400))
	casc, err := tr.CascadedLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tr.FullLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	if casc <= 0 || full <= 0 {
		t.Fatalf("non-positive loop L: cascaded %g, full %g", casc, full)
	}
	if rel := math.Abs(casc-full) / full; !(rel <= 0.01) {
		t.Errorf("single segment: cascaded %g vs full %g (rel %g)", casc, full, rel)
	}
}

func TestCollinearChainCascades(t *testing.T) {
	tr := straightTree(t, 3, units.Um(300))
	casc, err := tr.CascadedLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tr.FullLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	// Collinear segments couple (positively) beyond their own extent;
	// the shielded-cascade claim is that the effect is small.
	if rel := math.Abs(casc-full) / full; !(rel <= 0.06) {
		t.Errorf("3-segment chain: cascaded %g vs full %g (rel %g)", casc, full, rel)
	}
	// And the cascade is the plain series sum here.
	var sum float64
	for i := range tr.Specs {
		l, err := tr.SegmentLoopL(i, fsig)
		if err != nil {
			t.Fatal(err)
		}
		sum += l
	}
	if rel := math.Abs(casc-sum) / sum; rel > 1e-12 {
		t.Errorf("unbranched cascade %g != series sum %g", casc, sum)
	}
}

func TestFig6aTableIError(t *testing.T) {
	tr, err := Fig6a(units.RhoCopper)
	if err != nil {
		t.Fatal(err)
	}
	casc, err := tr.CascadedLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tr.FullLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(casc-full) / full
	// The paper reports 3.57 % for this tree; shapes and spacings are
	// only approximately recoverable from the figure, so hold the
	// reproduction to the same order: a few per cent, not tens.
	if !(rel <= 0.08) {
		t.Errorf("Fig6a: cascaded %g vs full %g (error %.2f%%, paper 3.57%%)", casc, full, rel*100)
	}
	if casc <= 0 {
		t.Errorf("cascaded L = %g", casc)
	}
	// Sanity: total scale. 350–600 µm of 1.2 µm CPW is sub-nH.
	if nh := units.ToNH(full); nh <= 0.05 || nh >= 2 {
		t.Errorf("full loop L = %g nH out of expected range", nh)
	}
}

func TestFig6bTableIError(t *testing.T) {
	tr, err := Fig6b(units.RhoCopper)
	if err != nil {
		t.Fatal(err)
	}
	casc, err := tr.CascadedLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	full, err := tr.FullLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(casc-full) / full
	if !(rel <= 0.08) {
		t.Errorf("Fig6b: cascaded %g vs full %g (error %.2f%%, paper 1.55%%)", casc, full, rel*100)
	}
}

func TestCascadedCombinationRule(t *testing.T) {
	tr, err := Fig6a(units.RhoCopper)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-evaluate Lab + (Lbc + Lce) ∥ (Lbd + Ldf).
	l := make([]float64, len(tr.Specs))
	for i := range tr.Specs {
		if l[i], err = tr.SegmentLoopL(i, fsig); err != nil {
			t.Fatal(err)
		}
	}
	b1 := l[1] + l[2]
	b2 := l[3] + l[4]
	want := l[0] + b1*b2/(b1+b2)
	got, err := tr.CascadedLoopL(fsig)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 1e-12 {
		t.Errorf("cascade rule: got %g, hand combination %g", got, want)
	}
}

func TestTreeLayout(t *testing.T) {
	tr, err := Fig6a(units.RhoCopper)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := tr.Pos("b")
	if err != nil {
		t.Fatal(err)
	}
	if pb[0] != 0 || math.Abs(pb[1]-units.Um(100)) > 1e-18 {
		t.Errorf("Pos(b) = %v", pb)
	}
	pe, err := tr.Pos("e")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe[0]-(-units.Um(150))) > 1e-18 || math.Abs(pe[1]-units.Um(350)) > 1e-18 {
		t.Errorf("Pos(e) = %v", pe)
	}
	sinks := tr.Sinks()
	if len(sinks) != 2 || sinks[0] != "e" || sinks[1] != "f" {
		t.Errorf("Sinks = %v", sinks)
	}
	if _, err := tr.Pos("zz"); err == nil {
		t.Error("Pos accepted unknown node")
	}
}

func TestNewTreeValidation(t *testing.T) {
	cross := Fig6Cross()
	if _, err := NewTree("a", nil, cross, units.RhoCopper); err == nil {
		t.Error("accepted empty tree")
	}
	if _, err := NewTree("a", []SegmentSpec{
		{Name: "xy", From: "x", To: "y", Dir: XPlus, Length: 1e-6},
	}, cross, units.RhoCopper); err == nil {
		t.Error("accepted unplaced From node")
	}
	if _, err := NewTree("a", []SegmentSpec{
		{Name: "ab", From: "a", To: "b", Dir: XPlus, Length: 1e-6},
		{Name: "ab2", From: "a", To: "b", Dir: YPlus, Length: 1e-6},
	}, cross, units.RhoCopper); err == nil {
		t.Error("accepted a cycle")
	}
	if _, err := NewTree("a", []SegmentSpec{
		{Name: "ab", From: "a", To: "b", Dir: XPlus, Length: 0},
	}, cross, units.RhoCopper); err == nil {
		t.Error("accepted zero-length segment")
	}
	if _, err := NewTree("a", []SegmentSpec{
		{Name: "ab", From: "a", To: "b", Dir: XPlus, Length: 1e-6},
	}, CrossSection{}, units.RhoCopper); err == nil {
		t.Error("accepted empty cross section")
	}
	if _, err := NewTree("a", []SegmentSpec{
		{Name: "ab", From: "a", To: "b", Dir: XPlus, Length: 1e-6},
	}, cross, 0); err == nil {
		t.Error("accepted zero resistivity")
	}
}

func TestFullLoopLErrors(t *testing.T) {
	tr := straightTree(t, 1, units.Um(100))
	if _, err := tr.FullLoopL(0); err == nil {
		t.Error("accepted zero frequency")
	}
	if _, err := tr.SegmentLoopL(9, fsig); err == nil {
		t.Error("accepted out-of-range segment index")
	}
}
