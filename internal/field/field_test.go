package field

import (
	"math"
	"testing"

	"clockrlc/internal/units"
)

func TestParallelPlateLimit(t *testing.T) {
	// Two wide plates separated by a small gap: C/len ≈ ε·w/d.
	w := units.Um(40)
	d := units.Um(1)
	th := units.Um(1)
	plates := []Rect{
		{Y0: -w / 2, Z0: 0, W: w, T: th},
		{Y0: -w / 2, Z0: th + d, W: w, T: th},
	}
	win := Window{
		Y0: -units.Um(60), Y1: units.Um(60),
		Z0: -units.Um(30), Z1: units.Um(33),
		NY: 241, NZ: 127,
	}
	c, err := CapacitanceMatrix(plates, nil, 1.0, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ideal := units.Eps0 * w / d
	got := -c.At(0, 1) // coupling capacitance
	// Fringing adds capacitance; the coupling term should be within
	// ~15 % above the ideal parallel-plate value for w/d = 40.
	if got < ideal || got > 1.25*ideal {
		t.Errorf("plate C = %g, ideal %g (ratio %g)", got, ideal, got/ideal)
	}
}

func TestMaxwellMatrixStructure(t *testing.T) {
	// Three coplanar traces (the paper's 3-trace capacitance
	// subproblem).
	tr := func(y float64) Rect {
		return Rect{Y0: y, Z0: 0, W: units.Um(2), T: units.Um(1)}
	}
	conds := []Rect{tr(-units.Um(4)), tr(0), tr(units.Um(4))}
	win := AutoWindow(conds, 3, 220)
	c, err := CapacitanceMatrix(conds, nil, units.EpsSiO2, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if c.At(i, i) <= 0 {
			t.Errorf("C[%d][%d] = %g, want > 0", i, i, c.At(i, i))
		}
		rowSum := 0.0
		for j := 0; j < 3; j++ {
			if i != j {
				if c.At(i, j) >= 0 {
					t.Errorf("C[%d][%d] = %g, want < 0", i, j, c.At(i, j))
				}
				if d := math.Abs(c.At(i, j) - c.At(j, i)); d > 1e-9*math.Abs(c.At(i, j)) {
					t.Errorf("asymmetry at (%d,%d): %g vs %g", i, j, c.At(i, j), c.At(j, i))
				}
			}
			rowSum += c.At(i, j)
		}
		// Row sum is the capacitance to the grounded boundary: >= 0.
		if rowSum < 0 {
			t.Errorf("row %d sums to %g, want >= 0", i, rowSum)
		}
	}
	// Middle trace couples equally to both neighbours by symmetry.
	if rel := math.Abs(c.At(1, 0)-c.At(1, 2)) / math.Abs(c.At(1, 0)); rel > 0.02 {
		t.Errorf("symmetric coupling violated: %g vs %g", c.At(1, 0), c.At(1, 2))
	}
}

func TestCapacitanceShortRange(t *testing.T) {
	// The paper's premise for the 3-trace reduction: capacitive
	// coupling is short range. With a grounded neighbour in between,
	// the far coupling must be tiny compared to the near coupling.
	// Signal [0,2] µm, shield [3,7] µm (at-least-equal-width, per the
	// paper's shielding rule), far trace [8,10] µm.
	conds := []Rect{
		{Y0: 0, Z0: 0, W: units.Um(2), T: units.Um(1)},
		{Y0: units.Um(3), Z0: 0, W: units.Um(4), T: units.Um(1)},
		{Y0: units.Um(8), Z0: 0, W: units.Um(2), T: units.Um(1)},
	}
	win := AutoWindow(conds, 3, 240)
	c, err := CapacitanceMatrix(conds, nil, units.EpsSiO2, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	near := -c.At(0, 1)
	far := -c.At(0, 2)
	if far > near/10 {
		t.Errorf("far coupling %g not ≪ near coupling %g", far, near)
	}
}

func TestGroundPlaneIncreasesGroundCapacitance(t *testing.T) {
	cond := []Rect{{Y0: -units.Um(1), Z0: units.Um(2), W: units.Um(2), T: units.Um(1)}}
	win := Window{
		Y0: -units.Um(20), Y1: units.Um(20),
		Z0: -units.Um(5), Z1: units.Um(20),
		NY: 161, NZ: 101,
	}
	noPlane, err := CapacitanceMatrix(cond, nil, units.EpsSiO2, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plane := []Rect{{Y0: -units.Um(20), Z0: -units.Um(2), W: units.Um(40), T: units.Um(1)}}
	withPlane, err := CapacitanceMatrix(cond, plane, units.EpsSiO2, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withPlane.At(0, 0) <= noPlane.At(0, 0) {
		t.Errorf("plane must increase total C: %g <= %g", withPlane.At(0, 0), noPlane.At(0, 0))
	}
}

func TestGridRefinementConvergence(t *testing.T) {
	conds := []Rect{
		{Y0: 0, Z0: 0, W: units.Um(2), T: units.Um(1)},
		{Y0: units.Um(3), Z0: 0, W: units.Um(2), T: units.Um(1)},
	}
	// Windows chosen so all conductor edges land on grid nodes at both
	// resolutions; this isolates true discretisation convergence from
	// staircase wobble of the effective geometry.
	win := Window{
		Y0: -units.Um(14), Y1: units.Um(19),
		Z0: -units.Um(15), Z1: units.Um(16),
	}
	coarseWin, fineWin := win, win
	coarseWin.NY, coarseWin.NZ = 133, 125 // h = 0.25 µm
	fineWin.NY, fineWin.NZ = 265, 249     // h = 0.125 µm
	coarse, err := CapacitanceMatrix(conds, nil, 1, coarseWin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := CapacitanceMatrix(conds, nil, 1, fineWin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := -coarse.At(0, 1), -fine.At(0, 1)
	if rel := math.Abs(a-b) / b; rel > 0.08 {
		t.Errorf("coupling C not converging: coarse %g vs fine %g (rel %g)", a, b, rel)
	}
}

func TestCapacitanceMatrixErrors(t *testing.T) {
	good := []Rect{{Y0: 0, Z0: 0, W: 1e-6, T: 1e-6}}
	win := AutoWindow(good, 2, 64)
	if _, err := CapacitanceMatrix(nil, nil, 1, win, Options{}); err == nil {
		t.Error("accepted empty conductor list")
	}
	if _, err := CapacitanceMatrix(good, nil, -1, win, Options{}); err == nil {
		t.Error("accepted negative permittivity")
	}
	if _, err := CapacitanceMatrix(good, nil, 1, Window{NY: 4, NZ: 4, Y1: 1, Z1: 1}, Options{}); err == nil {
		t.Error("accepted degenerate window")
	}
	bad := []Rect{{Y0: 0, Z0: 0, W: 0, T: 1e-6}}
	if _, err := CapacitanceMatrix(bad, nil, 1, win, Options{}); err == nil {
		t.Error("accepted zero-width conductor")
	}
	// Unresolvable conductor: far outside the window.
	out := []Rect{{Y0: 10, Z0: 10, W: 1e-9, T: 1e-9}}
	if _, err := CapacitanceMatrix(out, nil, 1, win, Options{}); err == nil {
		t.Error("accepted a conductor the grid cannot resolve")
	}
}

func TestAutoWindowCoversRects(t *testing.T) {
	rects := []Rect{
		{Y0: -units.Um(5), Z0: 0, W: units.Um(2), T: units.Um(1)},
		{Y0: units.Um(7), Z0: units.Um(3), W: units.Um(2), T: units.Um(1)},
	}
	w := AutoWindow(rects, 2, 100)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range rects {
		if r.Y0 < w.Y0 || r.Y0+r.W > w.Y1 || r.Z0 < w.Z0 || r.Z0+r.T > w.Z1 {
			t.Errorf("window %+v does not cover %+v", w, r)
		}
	}
}
