// Package field implements a 2-D finite-difference electrostatic
// solver for per-unit-length capacitance matrices of interconnect
// cross sections. It stands in for the numerical capacitance
// extraction (Raphael) the paper's pre-characterised capacitance
// tables were built with.
//
// The solver works on the (y, z) cross-section plane: conductors are
// axis-aligned rectangles held at fixed potentials, the surrounding
// dielectric is uniform, and the outer window boundary is a grounded
// Dirichlet box (placed far enough away that it collects only the far
// fringe field). Laplace's equation is relaxed with SOR; conductor
// charges are obtained from Gauss's law on the grid, and the Maxwell
// capacitance matrix assembled column by column.
package field

import (
	"errors"
	"fmt"
	"math"
	"time"

	"clockrlc/internal/linalg"
	"clockrlc/internal/obs"
	"clockrlc/internal/units"
)

// Electrostatic solver accounting: SOR relaxations run, total
// iterations they took, and wall time per capacitance matrix.
var (
	fieldSolves   = obs.GetCounter("field.solves")
	fieldSorIters = obs.GetCounter("field.sor_iters")
	fieldMatrixNs = obs.GetCounter("field.cap_matrix_ns")
	fieldSorHist  = obs.GetHistogram("field.sor_iters_per_solve")
)

// Rect is an axis-aligned rectangle in the cross-section plane:
// [Y0, Y0+W] × [Z0, Z0+T].
type Rect struct {
	Y0, Z0, W, T float64
}

// contains reports whether the point is inside the rectangle,
// inclusive of edges up to a tolerance. The tolerance absorbs the
// floating-point noise of grid-node coordinates computed as
// origin + i·h, which would otherwise randomly exclude nodes lying
// exactly on conductor faces and change the effective geometry by a
// whole grid cell.
func (r Rect) contains(y, z, tol float64) bool {
	return y >= r.Y0-tol && y <= r.Y0+r.W+tol && z >= r.Z0-tol && z <= r.Z0+r.T+tol
}

// Window is the solver domain and grid resolution.
type Window struct {
	Y0, Y1, Z0, Z1 float64
	NY, NZ         int
}

// Validate checks the window is non-degenerate.
func (w Window) Validate() error {
	if w.Y1 <= w.Y0 || w.Z1 <= w.Z0 {
		return fmt.Errorf("field: degenerate window [%g,%g]×[%g,%g]", w.Y0, w.Y1, w.Z0, w.Z1)
	}
	if w.NY < 8 || w.NZ < 8 {
		return fmt.Errorf("field: grid too coarse (%d×%d), need at least 8×8", w.NY, w.NZ)
	}
	return nil
}

// AutoWindow builds a window that surrounds the given rectangles with
// margin times the structure extent on every side, with a grid of
// roughly n cells across the larger dimension.
func AutoWindow(rects []Rect, margin float64, n int) Window {
	if len(rects) == 0 {
		panic("field: AutoWindow with no rectangles")
	}
	y0, y1 := math.Inf(1), math.Inf(-1)
	z0, z1 := math.Inf(1), math.Inf(-1)
	for _, r := range rects {
		y0 = math.Min(y0, r.Y0)
		y1 = math.Max(y1, r.Y0+r.W)
		z0 = math.Min(z0, r.Z0)
		z1 = math.Max(z1, r.Z0+r.T)
	}
	dy, dz := y1-y0, z1-z0
	ext := math.Max(dy, dz)
	if ext == 0 {
		ext = 1e-6
	}
	w := Window{
		Y0: y0 - margin*ext, Y1: y1 + margin*ext,
		Z0: z0 - margin*ext, Z1: z1 + margin*ext,
	}
	aspect := (w.Y1 - w.Y0) / (w.Z1 - w.Z0)
	if aspect >= 1 {
		w.NY = n
		w.NZ = int(math.Max(8, float64(n)/aspect))
	} else {
		w.NZ = n
		w.NY = int(math.Max(8, float64(n)*aspect))
	}
	return w
}

// Options tunes the SOR iteration.
type Options struct {
	// Omega is the over-relaxation factor in (1, 2); 0 selects 1.9.
	Omega float64
	// Tol is the maximum potential update at which iteration stops;
	// 0 selects 1e-7 (potentials are O(1)).
	Tol float64
	// MaxIter bounds the iteration count; 0 selects 20000.
	MaxIter int
}

func (o Options) withDefaults() Options {
	if o.Omega == 0 {
		o.Omega = 1.9
	}
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	if o.MaxIter == 0 {
		o.MaxIter = 20000
	}
	return o
}

// grid marks each cell: -1 free space, -2 grounded conductor,
// k >= 0 conductor index k.
type grid struct {
	w      Window
	hy, hz float64
	mark   []int
	phi    []float64
	// epsY[idx] is the relative permittivity at the midpoint of the
	// edge from node idx to idx+1 (y direction); epsZ[idx] likewise
	// toward idx+NY (z direction). Sampling at edge midpoints places
	// layer interfaces exactly between nodes.
	epsY, epsZ []float64
}

func (g *grid) idx(i, j int) int { return j*g.w.NY + i }

func newGrid(w Window, conds, grounds []Rect, background float64, layers []Dielectric) *grid {
	g := &grid{
		w:    w,
		hy:   (w.Y1 - w.Y0) / float64(w.NY-1),
		hz:   (w.Z1 - w.Z0) / float64(w.NZ-1),
		mark: make([]int, w.NY*w.NZ),
		phi:  make([]float64, w.NY*w.NZ),
		epsY: make([]float64, w.NY*w.NZ),
		epsZ: make([]float64, w.NY*w.NZ),
	}
	tol := 1e-6 * math.Min(g.hy, g.hz)
	epsAt := func(z float64) float64 {
		for _, l := range layers {
			if z >= l.Z0-tol && z <= l.Z1+tol {
				return l.EpsRel
			}
		}
		return background
	}
	for j := 0; j < w.NZ; j++ {
		z := w.Z0 + float64(j)*g.hz
		for i := 0; i < w.NY; i++ {
			y := w.Y0 + float64(i)*g.hy
			m := -1
			for k, r := range conds {
				if r.contains(y, z, tol) {
					m = k
					break
				}
			}
			if m == -1 {
				for _, r := range grounds {
					if r.contains(y, z, tol) {
						m = -2
						break
					}
				}
			}
			idx := g.idx(i, j)
			g.mark[idx] = m
			// Edge permittivities sampled at the edge midpoints.
			g.epsY[idx] = epsAt(z)
			g.epsZ[idx] = epsAt(z + g.hz/2)
		}
	}
	return g
}

// epsEdge returns the permittivity governing the flux between node a
// and a neighbouring node (b = a±1 for y edges, a±NY for z edges).
func (g *grid) epsEdge(a, b int) float64 {
	switch b - a {
	case 1:
		return g.epsY[a]
	case -1:
		return g.epsY[b]
	case g.w.NY:
		return g.epsZ[a]
	default: // -NY
		return g.epsZ[b]
	}
}

// solve relaxes Laplace with conductor k driven to 1 V, all other
// conductors and the boundary at 0 V. Returns the iteration count.
func (g *grid) solve(k int, opt Options) (int, error) {
	ny, nz := g.w.NY, g.w.NZ
	// Fix potentials.
	for idx, m := range g.mark {
		switch {
		case m == k:
			g.phi[idx] = 1
		case m >= 0 || m == -2:
			g.phi[idx] = 0
		default:
			g.phi[idx] = 0 // free-space initial guess
		}
	}
	// 5-point SOR on free cells only, discretising ∇·(ε∇φ) = 0: each
	// edge carries conductance ε_edge/h² (harmonic-mean permittivity,
	// exact for layered media). The grid may be anisotropic (hy != hz).
	ay := 1 / (g.hy * g.hy)
	az := 1 / (g.hz * g.hz)
	for it := 1; it <= opt.MaxIter; it++ {
		var maxd float64
		for j := 1; j < nz-1; j++ {
			row := j * ny
			for i := 1; i < ny-1; i++ {
				idx := row + i
				if g.mark[idx] != -1 {
					continue
				}
				wl := ay * g.epsEdge(idx, idx-1)
				wr := ay * g.epsEdge(idx, idx+1)
				wd := az * g.epsEdge(idx, idx-ny)
				wu := az * g.epsEdge(idx, idx+ny)
				next := (wl*g.phi[idx-1] + wr*g.phi[idx+1] + wd*g.phi[idx-ny] + wu*g.phi[idx+ny]) /
					(wl + wr + wd + wu)
				d := next - g.phi[idx]
				g.phi[idx] += opt.Omega * d
				if d < 0 {
					d = -d
				}
				if d > maxd {
					maxd = d
				}
			}
		}
		if maxd < opt.Tol {
			return it, nil
		}
	}
	return opt.MaxIter, errors.New("field: SOR did not converge; refine Options or grid")
}

// charges integrates Gauss's law around every conductor: for each
// conductor cell face adjacent to free space, the flux ε·(φ_out −
// φ_cond)/h·h_perp leaves the conductor. Returns charge per unit
// length (C/m) per conductor index.
func (g *grid) charges(n int) []float64 {
	q := make([]float64, n)
	ny, nz := g.w.NY, g.w.NZ
	for j := 0; j < nz; j++ {
		for i := 0; i < ny; i++ {
			idx := g.idx(i, j)
			m := g.mark[idx]
			if m < 0 {
				continue
			}
			pc := g.phi[idx]
			// Four neighbours; flux only across conductor→free faces,
			// with the edge's own permittivity.
			if i > 0 && g.mark[idx-1] == -1 {
				q[m] += units.Eps0 * g.epsEdge(idx, idx-1) * (pc - g.phi[idx-1]) / g.hy * g.hz
			}
			if i < ny-1 && g.mark[idx+1] == -1 {
				q[m] += units.Eps0 * g.epsEdge(idx, idx+1) * (pc - g.phi[idx+1]) / g.hy * g.hz
			}
			if j > 0 && g.mark[idx-ny] == -1 {
				q[m] += units.Eps0 * g.epsEdge(idx, idx-ny) * (pc - g.phi[idx-ny]) / g.hz * g.hy
			}
			if j < nz-1 && g.mark[idx+ny] == -1 {
				q[m] += units.Eps0 * g.epsEdge(idx, idx+ny) * (pc - g.phi[idx+ny]) / g.hz * g.hy
			}
		}
	}
	return q
}

// Dielectric is one horizontal dielectric slab: relative permittivity
// EpsRel between heights Z0 and Z1 (the real ILD stack of a process).
// Outside every slab the background permittivity applies.
type Dielectric struct {
	Z0, Z1 float64
	EpsRel float64
}

// Validate checks the slab.
func (d Dielectric) Validate() error {
	if d.Z1 <= d.Z0 || d.EpsRel <= 0 {
		return fmt.Errorf("field: bad dielectric slab %+v", d)
	}
	return nil
}

// CapacitanceMatrix computes the Maxwell capacitance matrix (F/m) of
// the conductors in a uniform dielectric: entry (i, j) is the charge
// on conductor i when conductor j is at 1 V and all others (plus
// grounds and the window boundary) are at 0 V. Diagonals are
// positive, off-diagonals negative, and the matrix is symmetric up to
// discretisation error.
func CapacitanceMatrix(conds, grounds []Rect, epsRel float64, w Window, opt Options) (*linalg.Matrix, error) {
	return CapacitanceMatrixLayered(conds, grounds, epsRel, nil, w, opt)
}

// CapacitanceMatrixLayered is CapacitanceMatrix for a layered
// dielectric stack: slabs override the background permittivity in
// their height ranges. Flux across layer interfaces uses the
// harmonic-mean permittivity, which reproduces the exact series
// capacitance of stacked dielectrics.
func CapacitanceMatrixLayered(conds, grounds []Rect, background float64, layers []Dielectric, w Window, opt Options) (*linalg.Matrix, error) {
	if len(conds) == 0 {
		return nil, errors.New("field: no conductors")
	}
	if background <= 0 {
		return nil, fmt.Errorf("field: background permittivity must be positive, got %g", background)
	}
	for _, l := range layers {
		if err := l.Validate(); err != nil {
			return nil, err
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	for i, r := range conds {
		if r.W <= 0 || r.T <= 0 {
			return nil, fmt.Errorf("field: conductor %d has non-positive dimensions", i)
		}
	}
	opt = opt.withDefaults()
	g := newGrid(w, conds, grounds, background, layers)
	// Every conductor must own at least one grid cell.
	seen := make([]bool, len(conds))
	for _, m := range g.mark {
		if m >= 0 {
			seen[m] = true
		}
	}
	for i, s := range seen {
		if !s {
			return nil, fmt.Errorf("field: conductor %d not resolved by the grid; refine NY/NZ", i)
		}
	}
	defer obs.SinceNs(fieldMatrixNs, time.Now())
	n := len(conds)
	c := linalg.NewMatrix(n, n)
	for k := 0; k < n; k++ {
		it, err := g.solve(k, opt)
		fieldSolves.Inc()
		fieldSorIters.Add(int64(it))
		fieldSorHist.Observe(float64(it))
		if err != nil {
			return nil, err
		}
		q := g.charges(n)
		for i := 0; i < n; i++ {
			c.Set(i, k, q[i])
		}
	}
	// Symmetrise: reciprocity holds in the continuum; averaging removes
	// the discretisation asymmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (c.At(i, j) + c.At(j, i)) / 2
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	return c, nil
}
