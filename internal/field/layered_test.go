package field

import (
	"math"
	"testing"

	"clockrlc/internal/units"
)

// Two stacked dielectric slabs between wide plates must reproduce the
// exact series-capacitance formula C = ε0·w/(d1/ε1 + d2/ε2).
func TestLayeredSeriesCapacitance(t *testing.T) {
	w := units.Um(120) // full-window plates → 1-D field
	d1, d2 := units.Um(1), units.Um(2)
	e1, e2 := 3.9, 7.5
	plates := []Rect{
		{Y0: -w / 2, Z0: -units.Um(1), W: w, T: units.Um(1)}, // bottom plate: top face at z = 0
		{Y0: -w / 2, Z0: d1 + d2, W: w, T: units.Um(1)},      // top plate: bottom face at z = d1+d2
	}
	layers := []Dielectric{
		{Z0: 0, Z1: d1, EpsRel: e1},
		{Z0: d1, Z1: d1 + d2, EpsRel: e2},
	}
	win := Window{
		Y0: -units.Um(60), Y1: units.Um(60),
		Z0: -units.Um(11), Z1: units.Um(13),
		NY: 241, NZ: 97, // hz = 0.25 µm: interfaces land on nodes
	}
	lay, err := CapacitanceMatrixLayered(plates, nil, 1.0, layers, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := CapacitanceMatrixLayered(plates, nil, 1.0, nil, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Full-window plates share a small lateral-boundary artifact
	// (~2 % of width); taking the layered/uniform ratio cancels it,
	// leaving the pure series-dielectric physics:
	// C_lay/C_uni = d_total / (d1/ε1 + d2/ε2).
	gotRatio := lay.At(0, 1) / uni.At(0, 1)
	wantRatio := (d1 + d2) / (d1/e1 + d2/e2)
	if rel := math.Abs(gotRatio-wantRatio) / wantRatio; !(rel <= 0.005) {
		t.Errorf("series ratio = %g, want %g (rel %g)", gotRatio, wantRatio, rel)
	}
	// And the absolute value lands within the boundary artifact of the
	// closed form.
	got := -lay.At(0, 1)
	want := units.Eps0 * w / (d1/e1 + d2/e2)
	if rel := math.Abs(got-want) / want; !(rel <= 0.04) {
		t.Errorf("layered plate C = %g, series formula %g (rel %g)", got, want, rel)
	}
}

// A single slab covering everything must agree with the uniform
// solver exactly.
func TestLayeredDegeneratesToUniform(t *testing.T) {
	conds := []Rect{
		{Y0: 0, Z0: 0, W: units.Um(2), T: units.Um(1)},
		{Y0: units.Um(3), Z0: 0, W: units.Um(2), T: units.Um(1)},
	}
	win := AutoWindow(conds, 3, 140)
	uni, err := CapacitanceMatrix(conds, nil, units.EpsSiO2, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := CapacitanceMatrixLayered(conds, nil, 1.0,
		[]Dielectric{{Z0: win.Z0, Z1: win.Z1, EpsRel: units.EpsSiO2}}, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if rel := math.Abs(uni.At(i, j)-lay.At(i, j)) / math.Abs(uni.At(i, j)); rel > 1e-9 {
				t.Errorf("(%d,%d): uniform %g vs layered %g", i, j, uni.At(i, j), lay.At(i, j))
			}
		}
	}
}

// A high-k slab under the wires raises the ground capacitance.
func TestHighKUnderlayerRaisesGroundCap(t *testing.T) {
	cond := []Rect{{Y0: -units.Um(1), Z0: units.Um(2), W: units.Um(2), T: units.Um(1)}}
	plane := []Rect{{Y0: -units.Um(20), Z0: -units.Um(1), W: units.Um(40), T: units.Um(1)}}
	win := Window{
		Y0: -units.Um(20), Y1: units.Um(20),
		Z0: -units.Um(2), Z1: units.Um(18),
		NY: 161, NZ: 81,
	}
	base, err := CapacitanceMatrixLayered(cond, plane, units.EpsSiO2, nil, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hiK, err := CapacitanceMatrixLayered(cond, plane, units.EpsSiO2,
		[]Dielectric{{Z0: 0, Z1: units.Um(2), EpsRel: 7.5}}, win, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(hiK.At(0, 0) > 1.2*base.At(0, 0)) {
		t.Errorf("high-k underlayer barely changed C: %g vs %g", hiK.At(0, 0), base.At(0, 0))
	}
}

func TestLayeredValidation(t *testing.T) {
	conds := []Rect{{Y0: 0, Z0: 0, W: 1e-6, T: 1e-6}}
	win := AutoWindow(conds, 2, 64)
	if _, err := CapacitanceMatrixLayered(conds, nil, 1,
		[]Dielectric{{Z0: 1, Z1: 0, EpsRel: 2}}, win, Options{}); err == nil {
		t.Error("accepted inverted slab")
	}
	if _, err := CapacitanceMatrixLayered(conds, nil, 1,
		[]Dielectric{{Z0: 0, Z1: 1, EpsRel: -2}}, win, Options{}); err == nil {
		t.Error("accepted negative permittivity slab")
	}
	if _, err := CapacitanceMatrixLayered(conds, nil, 0, nil, win, Options{}); err == nil {
		t.Error("accepted zero background")
	}
}
