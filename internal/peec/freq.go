package peec

import (
	"fmt"
	"math"
	"time"

	"clockrlc/internal/linalg"
	"clockrlc/internal/obs"
)

// Skin-effect solve accounting (one EffectiveRL per self-table entry).
var (
	effectiveRLCalls = obs.GetCounter("peec.effective_rl_calls")
	effectiveRLNs    = obs.GetCounter("peec.effective_rl_ns")
)

// RL holds a frequency-dependent effective series resistance and
// inductance of a conductor (or conductor system).
type RL struct {
	R float64 // Ω
	L float64 // H
}

// EffectiveRL computes the effective series resistance and partial
// self inductance of a single bar at frequency f, capturing the skin
// and (self-)proximity effect by subdividing the cross section into
// nw×nt volume filaments that share both end nodes.
//
// All filaments are in parallel: with the filament impedance matrix
// Z = diag(R_fil) + jω·Lp, equal end-to-end voltage V across every
// filament means Z·i = V·1. Solving with V = 1 gives the admittance
// Y = Σi and the effective impedance 1/Y; then R(f) = Re(1/Y) and
// L(f) = Im(1/Y)/ω.
//
// At f = 0 the current distributes uniformly over the equal-area
// filaments, so the DC limit is returned directly: R = ρl/(wt) and
// L = mean of the filament Lp matrix.
func EffectiveRL(b Bar, rho, f float64, nw, nt int) (RL, error) {
	effectiveRLCalls.Inc()
	defer obs.SinceNs(effectiveRLNs, time.Now())
	if err := b.Validate(); err != nil {
		return RL{}, err
	}
	if rho <= 0 {
		return RL{}, fmt.Errorf("peec: resistivity must be positive, got %g", rho)
	}
	fil := Filaments(b, nw, nt)
	lp := PartialMatrix(fil)
	res := DCResistances(fil, rho)
	return effectiveRLFromSystem(lp, res, f)
}

// effectiveRLFromSystem reduces a parallel filament system with
// partial-inductance matrix lp and per-filament resistances res to an
// effective series RL at frequency f.
func effectiveRLFromSystem(lp *linalg.Matrix, res []float64, f float64) (RL, error) {
	n := len(res)
	if f <= 0 {
		// Uniform current split by conductance (equal-area filaments of
		// equal length have equal resistance, but handle the general
		// case: DC current divides as 1/R).
		g := 0.0
		for _, r := range res {
			g += 1 / r
		}
		rdc := 1 / g
		// L_DC = iᵀ·Lp·i with i the normalized DC distribution.
		i := make([]float64, n)
		for k, r := range res {
			i[k] = (1 / r) / g
		}
		l := 0.0
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				l += i[a] * lp.At(a, b) * i[b]
			}
		}
		return RL{R: rdc, L: l}, nil
	}
	w := 2 * math.Pi * f
	z := linalg.NewCMatrix(n, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			z.Set(a, b, complex(0, w*lp.At(a, b)))
		}
		z.Add(a, a, complex(res[a], 0))
	}
	ones := make([]complex128, n)
	for k := range ones {
		ones[k] = 1
	}
	i, err := linalg.SolveSystemC(z, ones)
	if err != nil {
		return RL{}, fmt.Errorf("peec: skin-effect solve: %w", err)
	}
	var y complex128
	for _, v := range i {
		y += v
	}
	zeff := 1 / y
	return RL{R: real(zeff), L: imag(zeff) / w}, nil
}
