package peec

import "math"

// Filaments splits a bar's cross section into nw×nt equal sub-bars
// ("volume filaments"). Each filament keeps the full length of the
// parent. Used both for quadrature cross-checks of the closed forms
// and for the skin-effect solver, where the current is allowed to
// redistribute among filaments.
func Filaments(b Bar, nw, nt int) []Bar {
	if nw < 1 || nt < 1 {
		panic("peec: Filaments needs nw, nt >= 1")
	}
	fw := b.W / float64(nw)
	ft := b.T / float64(nt)
	out := make([]Bar, 0, nw*nt)
	for i := 0; i < nw; i++ {
		for j := 0; j < nt; j++ {
			f := Bar{Axis: b.Axis, L: b.L, W: fw, T: ft}
			switch b.Axis {
			case AxisX:
				f.O = [3]float64{b.O[0], b.O[1] + float64(i)*fw, b.O[2] + float64(j)*ft}
			default: // AxisY: W extends along x
				f.O = [3]float64{b.O[0] + float64(i)*fw, b.O[1], b.O[2] + float64(j)*ft}
			}
			out = append(out, f)
		}
	}
	return out
}

// MutualSubdivided approximates the mutual partial inductance between
// two parallel bars by averaging centre-line filament mutuals over an
// na×nb filament grid per bar. It converges to HoerLoveMutual as the
// grids refine and serves as an independent numerical check of the
// closed form.
func MutualSubdivided(a, b Bar, naw, nat, nbw, nbt int) float64 {
	if a.Axis != b.Axis {
		return 0
	}
	fa := Filaments(a, naw, nat)
	fb := Filaments(b, nbw, nbt)
	sum := 0.0
	for _, p := range fa {
		pc := p.canonical()
		py := pc[1] + p.W/2
		pz := pc[2] + p.T/2
		for _, q := range fb {
			qc := q.canonical()
			qy := qc[1] + q.W/2
			qz := qc[2] + q.T/2
			dy := qy - py
			dz := qz - pz
			d := dy*dy + dz*dz
			sum += MutualFilaments(pc[0], pc[0]+p.L, qc[0], qc[0]+q.L, sqrt(d))
		}
	}
	return sum / float64(len(fa)*len(fb))
}

// SelfSubdivided approximates a bar's self partial inductance by the
// filament grid: the average over all filament pairs, with each
// filament's own contribution evaluated at its self-GMD.
func SelfSubdivided(b Bar, nw, nt int) float64 {
	fs := Filaments(b, nw, nt)
	n := len(fs)
	sum := 0.0
	for i, p := range fs {
		pc := p.canonical()
		py, pz := pc[1]+p.W/2, pc[2]+p.T/2
		for j, q := range fs {
			if i == j {
				sum += MutualFilamentsAligned(p.L, GMDSelf(p.W, p.T))
				continue
			}
			qc := q.canonical()
			qy, qz := qc[1]+q.W/2, qc[2]+q.T/2
			dy, dz := qy-py, qz-pz
			sum += MutualFilamentsAligned(p.L, sqrt(dy*dy+dz*dz))
		}
	}
	return sum / float64(n*n)
}

func sqrt(v float64) float64 { return math.Sqrt(v) }
