package peec

import (
	"math"
	"testing"
	"testing/quick"

	"clockrlc/internal/units"
)

func xbar(x0, y0, z0, l, w, t float64) Bar {
	return Bar{Axis: AxisX, O: [3]float64{x0, y0, z0}, L: l, W: w, T: t}
}

func TestHoerLoveSelfAgainstRuehliApproximation(t *testing.T) {
	cases := []struct{ l, w, th float64 }{
		{units.Um(1000), units.Um(1), units.Um(1)},
		{units.Um(6000), units.Um(10), units.Um(2)},
		{units.Um(2000), units.Um(5), units.Um(1)},
		{units.Um(300), units.Um(1.2), units.Um(1.2)},
	}
	for _, c := range cases {
		exact := HoerLoveSelf(xbar(0, 0, 0, c.l, c.w, c.th))
		approx := SelfRuehli(c.l, c.w, c.th)
		if exact <= 0 {
			t.Fatalf("l=%g: non-positive self inductance %g", c.l, exact)
		}
		if rel := math.Abs(exact-approx) / approx; rel > 0.02 {
			t.Errorf("l=%g w=%g t=%g: HoerLove %g vs Ruehli %g (rel %g)",
				c.l, c.w, c.th, exact, approx, rel)
		}
	}
}

func TestHoerLoveSelfAgainstFilamentSubdivision(t *testing.T) {
	b := xbar(0, 0, 0, units.Um(800), units.Um(4), units.Um(2))
	exact := HoerLoveSelf(b)
	approx := SelfSubdivided(b, 10, 6)
	if rel := math.Abs(exact-approx) / exact; rel > 0.01 {
		t.Errorf("HoerLoveSelf %g vs SelfSubdivided %g (rel %g)", exact, approx, rel)
	}
}

func TestHoerLoveMutualAgainstFilamentQuadrature(t *testing.T) {
	// Two close bars where the centre-filament approximation is poor
	// but filament quadrature converges to the closed form.
	a := xbar(0, 0, 0, units.Um(500), units.Um(10), units.Um(2))
	b := xbar(0, units.Um(11), 0, units.Um(500), units.Um(10), units.Um(2))
	exact := HoerLoveMutual(a, b)
	quad := MutualSubdivided(a, b, 12, 4, 12, 4)
	if exact <= 0 {
		t.Fatalf("mutual must be positive for parallel currents, got %g", exact)
	}
	if rel := math.Abs(exact-quad) / exact; rel > 0.01 {
		t.Errorf("HoerLoveMutual %g vs quadrature %g (rel %g)", exact, quad, rel)
	}
}

func TestHoerLoveMutualFarApartMatchesFilament(t *testing.T) {
	// Far apart, the bars look like filaments at the centre distance.
	l := units.Um(1000)
	d := units.Um(200)
	a := xbar(0, 0, 0, l, units.Um(2), units.Um(1))
	b := xbar(0, d, 0, l, units.Um(2), units.Um(1))
	exact := HoerLoveMutual(a, b)
	fil := MutualFilamentsAligned(l, d)
	if rel := math.Abs(exact-fil) / fil; rel > 1e-3 {
		t.Errorf("far mutual: HoerLove %g vs filament %g (rel %g)", exact, fil, rel)
	}
}

func TestHoerLoveReciprocity(t *testing.T) {
	a := xbar(0, 0, 0, units.Um(700), units.Um(3), units.Um(2))
	b := xbar(units.Um(100), units.Um(9), units.Um(4), units.Um(400), units.Um(5), units.Um(1))
	m1 := HoerLoveMutual(a, b)
	m2 := HoerLoveMutual(b, a)
	// The alternating 64-term sum incurs cancellation, so reciprocity
	// holds to roundoff amplified by the condition of the sum, not to
	// machine epsilon.
	if math.Abs(m1-m2) > 1e-6*math.Abs(m1) {
		t.Errorf("reciprocity violated: %g vs %g", m1, m2)
	}
}

func TestHoerLoveOrthogonalIsZero(t *testing.T) {
	a := xbar(0, 0, 0, units.Um(500), units.Um(2), units.Um(1))
	b := Bar{Axis: AxisY, O: [3]float64{0, 0, units.Um(2)}, L: units.Um(500), W: units.Um(2), T: units.Um(1)}
	if m := HoerLoveMutual(a, b); m != 0 {
		t.Errorf("orthogonal mutual = %g, want 0", m)
	}
}

func TestHoerLoveAxisYPairMatchesAxisXPair(t *testing.T) {
	// A parallel pair rotated 90° in the plane must have identical
	// mutual inductance.
	ax := xbar(0, 0, 0, units.Um(500), units.Um(2), units.Um(1))
	bx := xbar(units.Um(50), units.Um(8), units.Um(3), units.Um(400), units.Um(4), units.Um(1))
	ay := Bar{Axis: AxisY, O: [3]float64{ax.O[1], ax.O[0], ax.O[2]}, L: ax.L, W: ax.W, T: ax.T}
	by := Bar{Axis: AxisY, O: [3]float64{bx.O[1], bx.O[0], bx.O[2]}, L: bx.L, W: bx.W, T: bx.T}
	mx := HoerLoveMutual(ax, bx)
	my := HoerLoveMutual(ay, by)
	if math.Abs(mx-my) > 1e-15*math.Abs(mx) {
		t.Errorf("rotated pair mutual differs: %g vs %g", mx, my)
	}
}

func TestHoerLoveMutualVerticalOffset(t *testing.T) {
	// Coupling through the z offset (trace over plane strip geometry):
	// must be positive and decay with increasing z separation.
	l := units.Um(1000)
	a := xbar(0, 0, 0, l, units.Um(4), units.Um(1))
	prev := math.Inf(1)
	for _, dz := range []float64{2, 4, 8, 16, 32} {
		b := xbar(0, 0, units.Um(dz), l, units.Um(4), units.Um(1))
		m := HoerLoveMutual(a, b)
		if m <= 0 || m >= prev {
			t.Fatalf("dz=%gum: m=%g prev=%g (want positive, decaying)", dz, m, prev)
		}
		prev = m
	}
}

// Partial-inductance matrices are symmetric positive definite: the
// magnetic energy ½ iᵀ L i of any current distribution is positive.
func TestQuickPartialMatrixPositiveDefinite(t *testing.T) {
	f := func(seed int64) bool {
		// Deterministic small arrays with varying geometry.
		if seed < 0 {
			seed = -seed
		}
		n := int(seed%4 + 2)
		pitch := units.Um(float64(seed%7 + 3))
		bars := make([]Bar, n)
		for i := range bars {
			bars[i] = xbar(0, float64(i)*pitch, 0, units.Um(500), units.Um(2), units.Um(1))
		}
		lp := PartialMatrix(bars)
		// Energy of a few probe currents.
		probes := [][]float64{
			make([]float64, n),
			make([]float64, n),
		}
		for i := 0; i < n; i++ {
			probes[0][i] = 1
			probes[1][i] = float64(i%2*2 - 1) // alternating ±1
		}
		for _, x := range probes {
			e := 0.0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					e += x[i] * lp.At(i, j) * x[j]
				}
			}
			if e <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPartialMatrixDiagonalDominatesMutuals(t *testing.T) {
	b := TraceArrayBars(5, units.Um(1000), units.Um(2), units.Um(2), units.Um(1))
	lp := PartialMatrix(b)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j && lp.At(i, j) >= lp.At(i, i) {
				t.Errorf("Lp[%d][%d]=%g >= Lp[%d][%d]=%g", i, j, lp.At(i, j), i, i, lp.At(i, i))
			}
		}
	}
}

// TraceArrayBars is a test helper building n parallel equal bars.
func TraceArrayBars(n int, l, w, s, th float64) []Bar {
	bars := make([]Bar, n)
	for i := range bars {
		bars[i] = xbar(0, float64(i)*(w+s), 0, l, w, th)
	}
	return bars
}
