package peec

import (
	"math"
	"testing"
	"testing/quick"

	"clockrlc/internal/units"
)

// Physical invariant: the magnetic coupling coefficient of any pair of
// parallel bars satisfies 0 < k < 1 (k = M/sqrt(L1·L2)); equality
// would require perfectly shared flux, impossible for disjoint
// conductors.
func TestQuickCouplingCoefficientBounds(t *testing.T) {
	f := func(wq, sq, lq, oq uint8) bool {
		w1 := units.Um(float64(wq%10)/2 + 0.5)
		w2 := units.Um(float64(wq%7)/2 + 0.5)
		s := units.Um(float64(sq%20)/4 + 0.25)
		l := units.Um(float64(lq%50)*20 + 100)
		off := units.Um(float64(oq%5) * 10) // axial offset
		a := Bar{Axis: AxisX, O: [3]float64{0, 0, 0}, L: l, W: w1, T: units.Um(1)}
		b := Bar{Axis: AxisX, O: [3]float64{off, w1 + s, 0}, L: l, W: w2, T: units.Um(1)}
		m := HoerLoveMutual(a, b)
		k := m / math.Sqrt(HoerLoveSelf(a)*HoerLoveSelf(b))
		return m > 0 && k > 0 && k < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Monotonicity: mutual inductance decreases as the bars separate, in
// any transverse direction.
func TestQuickMutualMonotoneDecay(t *testing.T) {
	f := func(dq uint8, vertical bool) bool {
		l := units.Um(800)
		a := Bar{Axis: AxisX, O: [3]float64{0, 0, 0}, L: l, W: units.Um(2), T: units.Um(1)}
		d1 := units.Um(float64(dq%30) + 3)
		d2 := d1 + units.Um(2)
		mk := func(d float64) Bar {
			b := a
			if vertical {
				b.O[2] = d
			} else {
				b.O[1] = d
			}
			return b
		}
		return HoerLoveMutual(a, mk(d1)) > HoerLoveMutual(a, mk(d2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Additivity along the axis: a bar's self inductance exceeds the sum
// of its halves' self inductances (the cross mutual is positive), and
// equals halves + 2×(half-half mutual).
func TestSelfDecomposesIntoHalves(t *testing.T) {
	full := Bar{Axis: AxisX, O: [3]float64{0, 0, 0}, L: units.Um(1000), W: units.Um(3), T: units.Um(1)}
	h1 := full
	h1.L = full.L / 2
	h2 := h1
	h2.O[0] = full.O[0] + full.L/2
	lFull := HoerLoveSelf(full)
	l1 := HoerLoveSelf(h1)
	l2 := HoerLoveSelf(h2)
	m := HoerLoveMutual(h1, h2)
	if m <= 0 {
		t.Fatalf("collinear halves mutual = %g, want > 0", m)
	}
	sum := l1 + l2 + 2*m
	if rel := math.Abs(lFull-sum) / lFull; rel > 1e-6 {
		t.Errorf("self decomposition: full %g vs halves+2M %g (rel %g)", lFull, sum, rel)
	}
	if lFull <= l1+l2 {
		t.Errorf("super-linearity violated: full %g <= %g", lFull, l1+l2)
	}
}

// Scaling: all partial inductances scale linearly under uniform
// geometric scaling up to the logarithm (L(αl, αw, αt) = α·L(l, w, t)
// exactly, since inductance has dimension of length).
func TestQuickSelfScalesWithGeometry(t *testing.T) {
	f := func(sq uint8) bool {
		alpha := float64(sq%8)/2 + 0.5
		l, w, th := units.Um(500), units.Um(2), units.Um(1)
		a := Bar{Axis: AxisX, L: l, W: w, T: th}
		b := Bar{Axis: AxisX, L: alpha * l, W: alpha * w, T: alpha * th}
		la := HoerLoveSelf(a)
		lb := HoerLoveSelf(b)
		return math.Abs(lb-alpha*la) < 1e-6*lb+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
