package peec

import (
	"math"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/units"
)

func fig1SignalBar() Bar {
	// The Fig. 1 clock trace: 6000 µm long, 10 µm wide, 2 µm thick.
	return xbar(0, 0, 0, units.Um(6000), units.Um(10), units.Um(2))
}

func TestEffectiveRLDCLimits(t *testing.T) {
	b := fig1SignalBar()
	rl, err := EffectiveRL(b, units.RhoCopper, 0, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantR := units.RhoCopper * b.L / (b.W * b.T)
	if rel := math.Abs(rl.R-wantR) / wantR; rel > 1e-9 {
		t.Errorf("DC R = %g, want %g", rl.R, wantR)
	}
	// DC inductance must be close to the uniform-current self Lp.
	self := HoerLoveSelf(b)
	if rel := math.Abs(rl.L-self) / self; rel > 0.01 {
		t.Errorf("DC L = %g, want ≈ self Lp %g", rl.L, self)
	}
}

func TestEffectiveRLSkinEffectTrends(t *testing.T) {
	b := fig1SignalBar()
	var prev RL
	first := true
	for _, f := range []float64{0, 1e9, 3.2e9, 10e9, 30e9} {
		rl, err := EffectiveRL(b, units.RhoCopper, f, 10, 4)
		if err != nil {
			t.Fatalf("f=%g: %v", f, err)
		}
		if !first {
			if rl.R < prev.R*(1-1e-9) {
				t.Errorf("R must not decrease with frequency: R(%g)=%g < %g", f, rl.R, prev.R)
			}
			if rl.L > prev.L*(1+1e-9) {
				t.Errorf("L must not increase with frequency: L(%g)=%g > %g", f, rl.L, prev.L)
			}
		}
		prev, first = rl, false
	}
	// At 30 GHz the skin depth (≈0.38 µm) is well below the half
	// thickness, so AC resistance must exceed DC noticeably.
	rdc := units.RhoCopper * b.L / (b.W * b.T)
	if prev.R < 1.3*rdc {
		t.Errorf("R(30GHz) = %g, want ≥ 1.3×Rdc = %g", prev.R, 1.3*rdc)
	}
}

func TestEffectiveRLValidation(t *testing.T) {
	if _, err := EffectiveRL(Bar{}, units.RhoCopper, 1e9, 2, 2); err == nil {
		t.Error("EffectiveRL accepted an invalid bar")
	}
	if _, err := EffectiveRL(fig1SignalBar(), -1, 1e9, 2, 2); err == nil {
		t.Error("EffectiveRL accepted a negative resistivity")
	}
}

func TestFilamentsPartitionBar(t *testing.T) {
	b := fig1SignalBar()
	fs := Filaments(b, 5, 2)
	if len(fs) != 10 {
		t.Fatalf("filament count = %d", len(fs))
	}
	var area float64
	for _, f := range fs {
		if f.L != b.L {
			t.Errorf("filament length %g != bar length %g", f.L, b.L)
		}
		area += f.W * f.T
	}
	if rel := math.Abs(area-b.W*b.T) / (b.W * b.T); rel > 1e-12 {
		t.Errorf("filament areas sum to %g, bar area %g", area, b.W*b.T)
	}
}

func TestPlaneStripsCoverPlane(t *testing.T) {
	p := pgPlane()
	strips := PlaneStrips(p, 0, units.Um(1000), 9)
	if len(strips) != 9 {
		t.Fatalf("strip count = %d", len(strips))
	}
	var w float64
	for _, s := range strips {
		w += s.W
		if s.T != p.Thickness {
			t.Errorf("strip thickness %g != plane %g", s.T, p.Thickness)
		}
	}
	if math.Abs(w-p.Width) > 1e-12*p.Width {
		t.Errorf("strip widths sum to %g, plane width %g", w, p.Width)
	}
	// First strip starts at the plane's left edge.
	if math.Abs(strips[0].O[1]-(-p.Width/2)) > 1e-18 {
		t.Errorf("first strip starts at %g, want %g", strips[0].O[1], -p.Width/2)
	}
}

func pgPlane() geom.GroundPlane {
	return geom.GroundPlane{
		Z:         -units.Um(3),
		Thickness: units.Um(1),
		Width:     units.Um(90),
		Rho:       units.RhoCopper,
	}
}
