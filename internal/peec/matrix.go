package peec

import (
	"time"

	"clockrlc/internal/linalg"
	"clockrlc/internal/obs"
)

// Partial-inductance engine accounting: matrix assemblies and the
// wall time they absorb (the dominant cost of table builds and
// whole-tree solves).
var (
	matrixBuilds = obs.GetCounter("peec.matrix_builds")
	matrixNs     = obs.GetCounter("peec.matrix_ns")
	matrixBars   = obs.GetHistogram("peec.matrix_bars")
)

// PartialMatrix computes the full partial inductance matrix Lp (H) of
// a set of bars using the exact closed-form Hoer–Love integrals.
// Entry (i, j) is the mutual partial inductance between bars i and j;
// the diagonal holds self partial inductances. Orthogonal pairs are
// exactly zero. The matrix is symmetric by reciprocity and the
// implementation computes only the upper triangle.
func PartialMatrix(bars []Bar) *linalg.Matrix {
	matrixBuilds.Inc()
	matrixBars.Observe(float64(len(bars)))
	defer obs.SinceNs(matrixNs, time.Now())
	n := len(bars)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := HoerLoveMutual(bars[i], bars[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// DCResistances returns the DC resistance ρl/(wt) of each bar for a
// shared resistivity rho (Ω·m).
func DCResistances(bars []Bar, rho float64) []float64 {
	out := make([]float64, len(bars))
	for i, b := range bars {
		out[i] = rho * b.L / (b.W * b.T)
	}
	return out
}
