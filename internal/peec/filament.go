package peec

import (
	"math"

	"clockrlc/internal/units"
)

// MutualFilaments returns the mutual partial inductance (H) between
// two parallel filaments a distance d apart (perpendicular distance
// between their carrier lines). The first spans [a0, a1] and the
// second [b0, b1] along their common axial coordinate; arbitrary
// overlap/offset is allowed.
//
// The closed form is the classic Neumann-integral result
//
//	M = (µ0/4π) [ F(b1−a0) − F(b1−a1) − F(b0−a0) + F(b0−a1) ]
//	F(x) = x·asinh(x/d) − sqrt(x² + d²)
//
// For d = 0 (collinear filaments) the divergent parts cancel whenever
// the segments do not overlap, leaving F(x) = x·ln|x| − |x| (with
// F(0) = 0); overlapping collinear filaments have infinite mutual
// inductance and return +Inf.
func MutualFilaments(a0, a1, b0, b1, d float64) float64 {
	if a1 < a0 {
		a0, a1 = a1, a0
	}
	if b1 < b0 {
		b0, b1 = b1, b0
	}
	if d < 0 {
		d = -d
	}
	if d == 0 {
		// Collinear: require disjoint (touching allowed).
		if a1 > b0 && b1 > a0 {
			return math.Inf(1)
		}
		f := func(x float64) float64 {
			ax := math.Abs(x)
			if ax == 0 {
				return 0
			}
			return ax*math.Log(ax) - ax
		}
		return units.Mu0 / (4 * math.Pi) *
			(f(b1-a0) - f(b1-a1) - f(b0-a0) + f(b0-a1))
	}
	f := func(x float64) float64 {
		return x*math.Asinh(x/d) - math.Hypot(x, d)
	}
	return units.Mu0 / (4 * math.Pi) *
		(f(b1-a0) - f(b1-a1) - f(b0-a0) + f(b0-a1))
}

// MutualFilamentsAligned is the common special case of two equal-length
// filaments with aligned ends at distance d:
//
//	M = (µ0 l/2π)(asinh(l/d) − sqrt(1 + d²/l²) + d/l)
func MutualFilamentsAligned(l, d float64) float64 {
	return units.Mu0 / (2 * math.Pi) *
		(l*math.Asinh(l/d) - math.Hypot(l, d) + d)
}

// GMDSelf returns the geometric mean distance of a rectangular w×t
// cross section from itself, Grover's approximation 0.2235(w+t).
// Replacing a bar with a filament at this self-GMD reproduces the
// bar's self partial inductance to ~1 % for l ≫ w+t.
func GMDSelf(w, t float64) float64 {
	return 0.2235 * (w + t)
}

// SelfGMD returns the approximate self partial inductance of a
// rectangular bar of length l, width w and thickness t using the
// self-GMD filament substitution.
func SelfGMD(l, w, t float64) float64 {
	return MutualFilamentsAligned(l, GMDSelf(w, t))
}

// SelfRuehli returns Ruehli's well-known logarithmic approximation for
// the partial self inductance of a thin rectangular bar,
//
//	Lp ≈ (µ0 l/2π) [ ln(2l/(w+t)) + 1/2 + 0.2235(w+t)/l ]
//
// valid for l ≳ w+t. It is used in tests as an independent reference
// for the exact Hoer–Love evaluation.
func SelfRuehli(l, w, t float64) float64 {
	u := w + t
	return units.Mu0 * l / (2 * math.Pi) *
		(math.Log(2*l/u) + 0.5 + 0.2235*u/l)
}

// MutualGMD approximates the mutual partial inductance of two parallel
// equal-length aligned bars whose centre lines are a distance d apart
// by the filament formula at the centre distance. For spacings larger
// than about one conductor width this is accurate to a few per cent;
// the exact value is HoerLoveMutual.
func MutualGMD(l, d float64) float64 {
	return MutualFilamentsAligned(l, d)
}
