package peec

import (
	"math"
	"testing"
	"testing/quick"

	"clockrlc/internal/units"
)

func TestMutualFilamentsMatchesAlignedSpecialCase(t *testing.T) {
	l := units.Um(1000)
	for _, d := range []float64{units.Um(1), units.Um(5), units.Um(50)} {
		general := MutualFilaments(0, l, 0, l, d)
		aligned := MutualFilamentsAligned(l, d)
		if math.Abs(general-aligned) > 1e-18+1e-12*aligned {
			t.Errorf("d=%g: general %g != aligned %g", d, general, aligned)
		}
	}
}

// The Neumann double integral evaluated numerically must match the
// closed form for an offset pair.
func TestMutualFilamentsAgainstNumericalNeumann(t *testing.T) {
	a0, a1 := 0.0, units.Um(300)
	b0, b1 := units.Um(120), units.Um(560)
	d := units.Um(7)
	closed := MutualFilaments(a0, a1, b0, b1, d)
	// Simpson-ish midpoint quadrature of µ0/4π ∫∫ dx dy / r.
	n := 4000
	ha := (a1 - a0) / float64(n)
	hb := (b1 - b0) / float64(n)
	sum := 0.0
	for i := 0; i < n; i++ {
		x := a0 + (float64(i)+0.5)*ha
		for j := 0; j < n; j++ {
			y := b0 + (float64(j)+0.5)*hb
			sum += 1 / math.Hypot(x-y, d)
		}
	}
	numeric := units.Mu0 / (4 * math.Pi) * sum * ha * hb
	if rel := math.Abs(closed-numeric) / numeric; rel > 2e-3 {
		t.Errorf("closed form %g vs numeric %g (rel err %g)", closed, numeric, rel)
	}
}

func TestMutualFilamentsCollinear(t *testing.T) {
	// Two collinear filaments, lengths l and m separated by gap g:
	// Grover: M = (µ0/4π)[(l+m+g)ln(l+m+g) − (l+g)ln(l+g) −
	//               (m+g)ln(m+g) + g·ln g]
	l, m, g := units.Um(100), units.Um(250), units.Um(30)
	got := MutualFilaments(0, l, l+g, l+g+m, 0)
	f := func(x float64) float64 {
		if x == 0 {
			return 0
		}
		return x * math.Log(x)
	}
	want := units.Mu0 / (4 * math.Pi) * (f(l+m+g) - f(l+g) - f(m+g) + f(g))
	// The closed form in MutualFilaments also carries the −x terms but
	// they cancel exactly for the four arguments; verify totals agree.
	if math.Abs(got-want) > 1e-18+1e-9*math.Abs(want) {
		t.Errorf("collinear M = %g, want %g", got, want)
	}
	if got <= 0 {
		t.Errorf("collinear mutual must be positive, got %g", got)
	}
}

func TestMutualFilamentsCollinearOverlapInfinite(t *testing.T) {
	if v := MutualFilaments(0, 2, 1, 3, 0); !math.IsInf(v, 1) {
		t.Errorf("overlapping collinear filaments: got %g, want +Inf", v)
	}
}

func TestMutualFilamentsEndpointOrderInvariance(t *testing.T) {
	a := MutualFilaments(0, 1e-3, 2e-4, 9e-4, 1e-5)
	b := MutualFilaments(1e-3, 0, 9e-4, 2e-4, -1e-5)
	if math.Abs(a-b) > 1e-20 {
		t.Errorf("endpoint order changed result: %g vs %g", a, b)
	}
}

// Reciprocity: swapping the two filaments leaves M unchanged.
func TestQuickMutualFilamentsReciprocity(t *testing.T) {
	f := func(p, q, r, s uint16, du uint8) bool {
		a0 := float64(p%1000) * 1e-6
		a1 := a0 + float64(q%1000+1)*1e-6
		b0 := float64(r%1000) * 1e-6
		b1 := b0 + float64(s%1000+1)*1e-6
		d := (float64(du%50) + 1) * 1e-6
		m1 := MutualFilaments(a0, a1, b0, b1, d)
		m2 := MutualFilaments(b0, b1, a0, a1, d)
		return math.Abs(m1-m2) <= 1e-18+1e-12*math.Abs(m1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Mutual inductance decays monotonically with distance.
func TestMutualFilamentsMonotoneInDistance(t *testing.T) {
	l := units.Um(2000)
	prev := math.Inf(1)
	for d := units.Um(1); d < units.Um(100); d += units.Um(1) {
		m := MutualFilamentsAligned(l, d)
		if m >= prev {
			t.Fatalf("M(%g) = %g not < M(prev) = %g", d, m, prev)
		}
		prev = m
	}
}

func TestSelfGMDAgainstRuehli(t *testing.T) {
	// The two classical approximations agree to ~1% for long thin bars.
	cases := []struct{ l, w, t float64 }{
		{units.Um(1000), units.Um(1), units.Um(1)},
		{units.Um(6000), units.Um(10), units.Um(2)},
		{units.Um(500), units.Um(2), units.Um(0.5)},
	}
	for _, c := range cases {
		a := SelfGMD(c.l, c.w, c.t)
		b := SelfRuehli(c.l, c.w, c.t)
		if rel := math.Abs(a-b) / b; rel > 0.02 {
			t.Errorf("l=%g w=%g t=%g: SelfGMD %g vs SelfRuehli %g (rel %g)",
				c.l, c.w, c.t, a, b, rel)
		}
	}
}

// The paper (Sec. V): self inductance is super-linear in length; going
// from 1000 µm to 2000 µm increases Lp by roughly 2.1–2.4×.
func TestSelfInductanceSuperlinearity(t *testing.T) {
	w, th := units.Um(1.2), units.Um(1)
	l1 := SelfGMD(units.Um(1000), w, th)
	l2 := SelfGMD(units.Um(2000), w, th)
	ratio := l2 / l1
	if ratio <= 2.0 {
		t.Errorf("self L must grow super-linearly: ratio = %g", ratio)
	}
	if ratio < 2.05 || ratio > 2.4 {
		t.Errorf("ratio = %g outside the paper's ≈2.1–2.4 band", ratio)
	}
}

func TestMutualSuperlinearity(t *testing.T) {
	d := units.Um(5)
	m1 := MutualFilamentsAligned(units.Um(1000), d)
	m2 := MutualFilamentsAligned(units.Um(2000), d)
	if r := m2 / m1; r <= 2.0 || r > 2.6 {
		t.Errorf("mutual L ratio for 2× length = %g, want super-linear ≈2.1–2.5", r)
	}
}
