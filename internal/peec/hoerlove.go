package peec

import (
	"math"

	"clockrlc/internal/obs"
	"clockrlc/internal/units"
)

// mutualCalls counts Hoer–Love kernel evaluations (self inductances
// included — a self is the kernel applied to coincident bars). One
// atomic add per call, negligible next to the 64 hlF evaluations.
var mutualCalls = obs.GetCounter("peec.mutual_calls")

// hlF is the sixth-order antiderivative of 1/r appearing in the
// Hoer–Love closed-form volume integral for the mutual inductance of
// parallel rectangular conductors (C. Hoer and C. Love, J. Res. NBS
// 69C, 1965; also Ruehli 1972). Each term is guarded so that the
// degenerate corner evaluations arising in self-inductance (arguments
// exactly zero) contribute their correct limit of zero instead of
// 0·∞ = NaN.
func hlF(x, y, z float64) float64 {
	x2, y2, z2 := x*x, y*y, z*z
	r := math.Sqrt(x2 + y2 + z2)
	if r == 0 {
		return 0
	}
	// plusR computes v + r without cancellation for v < 0, where the
	// naive sum underflows to 0 when the transverse part is small:
	// v + r = (r² − v²)/(r − v) = (r² − v²)/(r − v).
	plusR := func(v, transverse2 float64) float64 {
		if v >= 0 {
			return v + r
		}
		return transverse2 / (r - v)
	}
	var s float64
	// The three log terms, cyclic in (x, y, z). The coefficient
	// vanishes exactly when both transverse coordinates vanish, which
	// is also when the log blows up, so skipping on zero coefficient
	// is the correct limit.
	if c := y2*z2/4 - y2*y2/24 - z2*z2/24; c != 0 && x != 0 {
		s += c * x * math.Log(plusR(x, y2+z2)/math.Sqrt(y2+z2))
	}
	if c := x2*z2/4 - x2*x2/24 - z2*z2/24; c != 0 && y != 0 {
		s += c * y * math.Log(plusR(y, x2+z2)/math.Sqrt(x2+z2))
	}
	if c := x2*y2/4 - x2*x2/24 - y2*y2/24; c != 0 && z != 0 {
		s += c * z * math.Log(plusR(z, x2+y2)/math.Sqrt(x2+y2))
	}
	s += r / 60 * (x2*x2 + y2*y2 + z2*z2 - 3*(x2*y2+y2*z2+z2*x2))
	// The three arctangent terms; each vanishes when any coordinate is
	// zero.
	if x != 0 && y != 0 && z != 0 {
		s -= x * y * z2 * z / 6 * math.Atan(x*y/(z*r))
		s -= x * y2 * y * z / 6 * math.Atan(x*z/(y*r))
		s -= x2 * x * y * z / 6 * math.Atan(y*z/(x*r))
	}
	return s
}

// hlSum evaluates the triple alternating second-difference of hlF over
// the integration limits of each dimension. For a dimension with
// source extent p, observer extent q and offset E (observer minimum
// minus source minimum), the four evaluation points are
// {E−p, E, E+q−p, E+q} with signs {+, −, −, +}: the second difference
// that results from integrating over both extents.
func hlSum(ex, lx1, lx2, ey, wy1, wy2, ez, tz1, tz2 float64) float64 {
	xs := [4]float64{ex - lx1, ex, ex + lx2 - lx1, ex + lx2}
	ys := [4]float64{ey - wy1, ey, ey + wy2 - wy1, ey + wy2}
	zs := [4]float64{ez - tz1, ez, ez + tz2 - tz1, ez + tz2}
	// Snap limit points that are zero up to floating-point residue of
	// the offset arithmetic (touching faces, aligned ends) to exact
	// zero; otherwise residues of order 1e-16·scale activate the
	// guarded singular terms in hlF with garbage coefficients.
	scale := math.Max(math.Abs(lx1)+math.Abs(lx2)+math.Abs(ex),
		math.Max(math.Abs(wy1)+math.Abs(wy2)+math.Abs(ey),
			math.Abs(tz1)+math.Abs(tz2)+math.Abs(ez)))
	snap := 1e-12 * scale
	for _, pts := range []*[4]float64{&xs, &ys, &zs} {
		for i, v := range pts {
			if math.Abs(v) < snap {
				pts[i] = 0
			}
		}
	}
	sg := [4]float64{1, -1, -1, 1}
	var s float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			p := sg[i] * sg[j]
			for k := 0; k < 4; k++ {
				s += p * sg[k] * hlF(xs[i], ys[j], zs[k])
			}
		}
	}
	return s
}

// HoerLoveMutual returns the exact partial mutual inductance (H)
// between two parallel rectangular bars with uniform current density,
// including all proximity geometry (arbitrary axial offset, lateral
// and vertical displacement, unequal cross sections and lengths).
// Orthogonal bars return exactly 0 (perpendicular currents do not
// couple). When a and b describe the same volume the result is the
// bar's partial self inductance.
func HoerLoveMutual(a, b Bar) float64 {
	mutualCalls.Inc()
	if a.Axis != b.Axis {
		return 0
	}
	oa, ob := a.canonical(), b.canonical()
	ex := ob[0] - oa[0]
	ey := ob[1] - oa[1]
	ez := ob[2] - oa[2]
	den := 4 * math.Pi * a.W * a.T * b.W * b.T
	return units.Mu0 / den * hlSum(ex, a.L, b.L, ey, a.W, b.W, ez, a.T, b.T)
}

// HoerLoveSelf returns the exact partial self inductance of a bar.
func HoerLoveSelf(b Bar) float64 {
	return HoerLoveMutual(b, b)
}
