// Package peec implements the partial-inductance engine that stands in
// for the paper's Raphael RI3 / FastHenry extractor.
//
// Conductors are rectangular bars carrying uniform axial current. The
// engine provides three evaluation paths that cross-validate each
// other:
//
//   - exact closed-form partial self and mutual inductance of parallel
//     rectangular bars (Hoer–Love volume integrals, the same formulas
//     PEEC extractors use internally);
//   - filament formulas (exact for zero cross-section) plus
//     geometric-mean-distance approximations (Grover);
//   - filament-grid quadrature (subdivide the cross sections, average
//     filament mutuals), which also underpins the frequency-dependent
//     R(f)/L(f) skin-effect solver in freq.go.
//
// Everything is magnetoquasistatic and SI.
package peec

import (
	"fmt"

	"clockrlc/internal/geom"
)

// Axis identifies the current direction of a bar. Traces in adjacent
// layers are orthogonal (paper Sec. II), so only two axes occur; the
// mutual inductance between orthogonal bars is identically zero.
type Axis int

const (
	// AxisX marks a bar whose current flows along x.
	AxisX Axis = iota
	// AxisY marks a bar whose current flows along y.
	AxisY
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Bar is a rectangular conductor. O is the minimum corner in global
// coordinates; L extends along Axis, W across it in the routing plane,
// and T along z.
type Bar struct {
	Axis    Axis
	O       [3]float64
	L, W, T float64
}

// Validate reports whether the bar has positive dimensions.
func (b Bar) Validate() error {
	if b.L <= 0 || b.W <= 0 || b.T <= 0 {
		return fmt.Errorf("peec: bar dimensions must be positive, got L=%g W=%g T=%g", b.L, b.W, b.T)
	}
	if b.Axis != AxisX && b.Axis != AxisY {
		return fmt.Errorf("peec: bad axis %d", b.Axis)
	}
	return nil
}

// canonical returns the bar's minimum corner with the length dimension
// mapped onto the first coordinate: for AxisY bars, x and y swap.
// All pairwise formulas operate in this frame; swapping both bars of a
// parallel pair is a relabeling of coordinates and leaves mutual
// inductance unchanged.
func (b Bar) canonical() (o [3]float64) {
	if b.Axis == AxisX {
		return b.O
	}
	return [3]float64{b.O[1], b.O[0], b.O[2]}
}

// CrossSection returns W·T.
func (b Bar) CrossSection() float64 { return b.W * b.T }

// BarFromTrace converts a geom.Trace (x-directed, centre-based
// coordinates) into a peec.Bar (corner-based).
func BarFromTrace(t geom.Trace) Bar {
	return Bar{
		Axis: AxisX,
		O:    [3]float64{t.X0, t.Y - t.Width/2, t.Z - t.Thickness/2},
		L:    t.Length,
		W:    t.Width,
		T:    t.Thickness,
	}
}

// PlaneStrips discretizes a ground plane into n x-directed strips of
// equal width spanning the plane, each of the given length starting at
// x0. The strip resolution controls how well the return-current
// crowding under the signal trace is captured; tests show n ≈ 10–20 is
// sufficient for loop inductance to converge to ~1 %.
func PlaneStrips(p geom.GroundPlane, x0, length float64, n int) []Bar {
	if n < 1 {
		panic("peec: PlaneStrips needs n >= 1")
	}
	w := p.Width / float64(n)
	out := make([]Bar, n)
	for i := range out {
		out[i] = Bar{
			Axis: AxisX,
			O:    [3]float64{x0, -p.Width/2 + float64(i)*w, p.Z - p.Thickness/2},
			L:    length,
			W:    w,
			T:    p.Thickness,
		}
	}
	return out
}
