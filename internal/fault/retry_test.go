package fault

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

// fastPolicy keeps test wall time negligible.
var fastPolicy = Policy{Attempts: 4, Base: time.Microsecond, Max: 10 * time.Microsecond, Factor: 2, Jitter: 0.5}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	calls := 0
	err := fastPolicy.Do(context.Background(), "op", func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("%w: flaky", ErrTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v after transients, want nil", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
}

func TestRetryTerminalErrorImmediate(t *testing.T) {
	terminal := errors.New("corrupt")
	calls := 0
	err := fastPolicy.Do(context.Background(), "op", func() error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) || calls != 1 {
		t.Fatalf("terminal error retried: err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustedWrapsLastError(t *testing.T) {
	calls := 0
	err := fastPolicy.Do(context.Background(), "cache.read", func() error {
		calls++
		return fmt.Errorf("%w: still down", ErrTransient)
	})
	if calls != fastPolicy.Attempts {
		t.Fatalf("fn ran %d times, want %d", calls, fastPolicy.Attempts)
	}
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted retry returned %v, want wrapped transient", err)
	}
}

func TestRetryHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 100, Base: time.Hour, Factor: 1}
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, "op", func() error {
			return fmt.Errorf("%w: down", ErrTransient)
		})
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the hour-long backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled retry returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled retry did not return promptly")
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{fmt.Errorf("%w: x", ErrTransient), true},
		{fmt.Errorf("open: %w", syscall.EINTR), true},
		{fmt.Errorf("open: %w", syscall.EAGAIN), true},
		{context.Canceled, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
