package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCheckDisabledIsNil(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("no injector registered but Enabled() = true")
	}
	for _, pt := range []Point{SolverCall, CacheRead, CacheWrite, SplineLookup} {
		if err := Check(pt); err != nil {
			t.Fatalf("Check(%s) with no injector = %v, want nil", pt, err)
		}
	}
}

func TestErrorMode(t *testing.T) {
	defer Reset()
	Register(NewInjector(1, Rule{Point: SolverCall, Mode: ModeError, Prob: 1}))
	err := Check(SolverCall)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not unwrap to ErrInjected", err)
	}
	if IsTransient(err) {
		t.Fatalf("non-transient rule produced transient error %v", err)
	}
	// Other points are untouched.
	if err := Check(CacheRead); err != nil {
		t.Fatalf("unarmed point injected %v", err)
	}
}

func TestTransientMarking(t *testing.T) {
	defer Reset()
	Register(NewInjector(1, Rule{Point: CacheRead, Mode: ModeError, Prob: 1, Transient: true}))
	err := Check(CacheRead)
	if !IsTransient(err) {
		t.Fatalf("transient rule produced non-transient error %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("transient error %v lost ErrInjected", err)
	}
}

func TestNthFiresExactlyOnce(t *testing.T) {
	defer Reset()
	Register(NewInjector(7, Rule{Point: SolverCall, Mode: ModeError, Nth: 3}))
	var failures []int
	for i := 1; i <= 6; i++ {
		if Check(SolverCall) != nil {
			failures = append(failures, i)
		}
	}
	if len(failures) != 1 || failures[0] != 3 {
		t.Fatalf("Nth=3 fired at calls %v, want [3]", failures)
	}
}

func TestTimesCapsFirings(t *testing.T) {
	defer Reset()
	Register(NewInjector(1, Rule{Point: SolverCall, Mode: ModeError, Prob: 1, Times: 2}))
	n := 0
	for i := 0; i < 10; i++ {
		if Check(SolverCall) != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("Times=2 fired %d times", n)
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	Register(NewInjector(1, Rule{Point: SplineLookup, Mode: ModePanic, Prob: 1}))
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("panicked with %T %v, want *InjectedPanic", r, r)
		}
		if ip.Point != SplineLookup {
			t.Fatalf("panic point %s, want %s", ip.Point, SplineLookup)
		}
	}()
	Check(SplineLookup)
	t.Fatal("ModePanic did not panic")
}

func TestLatencyMode(t *testing.T) {
	defer Reset()
	const d = 20 * time.Millisecond
	Register(NewInjector(1, Rule{Point: CacheWrite, Mode: ModeLatency, Prob: 1, Delay: d}))
	t0 := time.Now()
	if err := Check(CacheWrite); err != nil {
		t.Fatalf("latency mode returned error %v", err)
	}
	if el := time.Since(t0); el < d {
		t.Fatalf("latency injection slept %v, want >= %v", el, d)
	}
}

// TestDeterministicSeed pins the contract chaos replay relies on: the
// same seed yields the same fire pattern, a different seed a
// different one (with overwhelming probability over 200 calls).
func TestDeterministicSeed(t *testing.T) {
	defer Reset()
	pattern := func(seed int64) []bool {
		Register(NewInjector(seed, Rule{Point: SolverCall, Mode: ModeError, Prob: 0.3}))
		out := make([]bool, 200)
		for i := range out {
			out[i] = Check(SolverCall) != nil
		}
		return out
	}
	a, b, c := pattern(42), pattern(42), pattern(43)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different fire patterns")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical fire patterns")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Fatalf("Prob=0.3 fired %d/200 times, far from expectation", fired)
	}
}

// TestConcurrentChecks exercises the registry and per-point counters
// from many goroutines; run under -race this is the data-race gate
// for the injection layer itself.
func TestConcurrentChecks(t *testing.T) {
	defer Reset()
	in := NewInjector(5, Rule{Point: SolverCall, Mode: ModeError, Prob: 0.5})
	Register(in)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Check(SolverCall)
				Check(SplineLookup)
			}
		}()
	}
	wg.Wait()
	if got := in.Calls(SolverCall); got != 8*500 {
		t.Fatalf("call counter = %d, want %d", got, 8*500)
	}
}
