package fault

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"time"

	"clockrlc/internal/obs"
)

// Retry accounting: re-attempts performed and operations abandoned
// after exhausting their budget.
var (
	retryAttempts = obs.GetCounter("fault.retries")
	retryGiveups  = obs.GetCounter("fault.retry_giveups")
)

// IsTransient reports whether an error is worth retrying: anything
// marked ErrTransient (injected or wrapped by callers) plus the
// classic retryable POSIX errnos a loaded filesystem or process table
// produces. Corruption, validation failures and context cancellation
// are deliberately not transient — retrying them wastes the budget on
// a deterministic outcome.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	for _, e := range []syscall.Errno{
		syscall.EINTR, syscall.EAGAIN, syscall.EBUSY,
		syscall.ENFILE, syscall.EMFILE,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// Policy is a capped exponential-backoff retry schedule with
// deterministic jitter. The zero value retries nothing; use
// DefaultPolicy (or a literal) for real work.
type Policy struct {
	// Attempts is the total attempt budget including the first try.
	Attempts int
	// Base is the first backoff; each further backoff multiplies by
	// Factor and is capped at Max.
	Base, Max time.Duration
	Factor    float64
	// Jitter spreads each backoff uniformly over ±Jitter·backoff,
	// decided deterministically from Seed and the attempt index so
	// chaos runs replay exactly.
	Jitter float64
	Seed   int64
}

// DefaultPolicy suits in-process transient failures: three attempts,
// millisecond-scale backoff, half-width jitter.
var DefaultPolicy = Policy{
	Attempts: 3,
	Base:     time.Millisecond,
	Max:      100 * time.Millisecond,
	Factor:   4,
	Jitter:   0.5,
}

// Do runs fn until it succeeds, fails terminally, exhausts the
// attempt budget, or ctx is cancelled. Only transient errors (per
// IsTransient) are retried; the final error of an exhausted budget is
// wrapped with the operation name and attempt count. Backoff sleeps
// honour ctx, so cancellation interrupts a waiting retry immediately.
func (p Policy) Do(ctx context.Context, op string, fn func() error) error {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	backoff := p.Base
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn()
		if err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		if attempt >= p.Attempts {
			retryGiveups.Inc()
			return fmt.Errorf("fault: %s failed after %d attempts: %w", op, attempt, err)
		}
		retryAttempts.Inc()
		d := backoff
		if p.Jitter > 0 {
			u := unit(p.Seed, Point(op), uint64(attempt))
			d = time.Duration(float64(d) * (1 - p.Jitter + 2*p.Jitter*u))
		}
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		backoff = time.Duration(float64(backoff) * p.Factor)
		if p.Max > 0 && backoff > p.Max {
			backoff = p.Max
		}
	}
}

// RetryStats reports the process-wide retry counters.
func RetryStats() (retries, giveups int64) {
	return retryAttempts.Value(), retryGiveups.Value()
}
