// Package fault provides the extraction pipeline's fault-injection
// points and its retry machinery. Production code marks the places
// where the outside world can fail — field-solver calls, cache I/O,
// spline lookups — with fault.Check(point); a test (or a chaos run)
// registers an Injector that deterministically converts chosen calls
// into errors, added latency, or panics. When no injector is
// registered the hook is a single atomic pointer load and a nil
// branch, so the instrumented hot paths cost nothing measurable; see
// BENCH_fault.json for the warm-lookup evidence.
//
// Determinism matters more than realism here: every injection
// decision is a pure function of (seed, point, per-point call index),
// so a failing chaos run replays exactly with the same seed, under
// -race, at any worker count.
package fault

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"clockrlc/internal/obs"
)

// Injection accounting: how many calls each mode converted. The
// counters make chaos runs observable through the same metrics
// surface as production work (-metrics, /debug/vars).
var (
	injectedErrors = obs.GetCounter("fault.injected_errors")
	injectedPanics = obs.GetCounter("fault.injected_panics")
	injectedDelays = obs.GetCounter("fault.injected_delays")
)

// Point names one instrumented failure site. Points are stable
// identifiers: tests select them by value and metrics dashboards
// group by them.
type Point string

// The pipeline's injection points.
const (
	// SolverCall guards every field-engine solve of a table sweep
	// entry (self and mutual).
	SolverCall Point = "table.solver"
	// CacheRead guards loading a table set from the on-disk cache.
	CacheRead Point = "table.cache.read"
	// CacheWrite guards persisting a built table set to the cache.
	CacheWrite Point = "table.cache.write"
	// SplineLookup guards the warm-path table lookups (SelfL/MutualL).
	SplineLookup Point = "table.lookup"
	// ServeAdmit guards request admission in the extraction daemon: an
	// injected error forces a shed (429) without consuming capacity.
	ServeAdmit Point = "serve.admit"
	// ServeFill guards a registry fill — the daemon's one
	// catastrophically expensive cold path (table build or cache load).
	// Injected errors count toward the cold-build circuit breaker.
	ServeFill Point = "serve.fill"
	// ServeRespond guards response encoding in the daemon's handlers;
	// panic mode here exercises the handler-wrapper recovery.
	ServeRespond Point = "serve.respond"
	// CkptWrite guards persisting a long-job checkpoint record; an
	// injected error must leave the previous checkpoint generation
	// intact and the job running.
	CkptWrite Point = "ckpt.write"
	// CkptRead guards loading a checkpoint record on resume; an
	// injected error degrades to an older generation or a clean
	// restart, never a wrong answer.
	CkptRead Point = "ckpt.read"
)

// Mode selects what a firing rule does to the call.
type Mode int

const (
	// ModeError makes the call return an injected error.
	ModeError Mode = iota
	// ModeLatency delays the call by Rule.Delay and lets it proceed.
	ModeLatency
	// ModePanic panics with an *InjectedPanic.
	ModePanic
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModePanic:
		return "panic"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ErrInjected is the default error ModeError rules return; injected
// errors always unwrap to it unless the rule supplies its own Err.
var ErrInjected = errors.New("fault: injected error")

// ErrTransient marks an error as transient: worth retrying with
// backoff. Injected errors carry it when Rule.Transient is set;
// IsTransient also recognises the retryable POSIX errnos.
var ErrTransient = errors.New("fault: transient")

// InjectedPanic is the value ModePanic rules panic with.
type InjectedPanic struct {
	Point Point
	Call  uint64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("fault: injected panic at %s (call %d)", p.Point, p.Call)
}

// Rule arms one injection behaviour at one point. Exactly one of the
// selectors applies: Nth fires on the Nth call (1-based) at the
// point; otherwise Prob fires each call with that probability,
// decided deterministically from the injector seed and the call
// index (Prob >= 1 fires every call). Times, when positive, caps the
// total number of firings.
type Rule struct {
	Point Point
	Mode  Mode
	Nth   int
	Prob  float64
	Times int
	// Err overrides the injected error (ModeError); nil injects
	// ErrInjected. Transient additionally wraps it in ErrTransient so
	// the retry layer will re-attempt it.
	Err       error
	Transient bool
	// Delay is the added latency for ModeLatency (default 1ms).
	Delay time.Duration
}

type armedRule struct {
	Rule
	fired atomic.Int64
}

// Injector evaluates a rule set at every instrumented point. One
// injector may be hit concurrently from any number of goroutines.
type Injector struct {
	seed  int64
	rules []*armedRule
	calls map[Point]*atomic.Uint64
}

// NewInjector compiles a deterministic injector from a seed and a
// rule set.
func NewInjector(seed int64, rules ...Rule) *Injector {
	in := &Injector{seed: seed, calls: make(map[Point]*atomic.Uint64)}
	for _, r := range rules {
		in.rules = append(in.rules, &armedRule{Rule: r})
		if _, ok := in.calls[r.Point]; !ok {
			in.calls[r.Point] = new(atomic.Uint64)
		}
	}
	return in
}

// Calls reports how many times a point has been hit on this injector.
func (in *Injector) Calls(pt Point) uint64 {
	if c, ok := in.calls[pt]; ok {
		return c.Load()
	}
	return 0
}

// active is the process-wide injector. nil (the production state)
// makes every Check a pointer load and a branch.
var active atomic.Pointer[Injector]

// Register arms an injector process-wide, replacing any previous one.
// Registering nil is equivalent to Reset.
func Register(in *Injector) { active.Store(in) }

// Reset disarms injection; every Check returns to the no-op path.
func Reset() { active.Store(nil) }

// Enabled reports whether an injector is currently registered.
func Enabled() bool { return active.Load() != nil }

// Check is the hook compiled into each instrumented site. With no
// injector registered it returns nil immediately; otherwise the
// registered rules decide whether this call errors, sleeps, or
// panics.
func Check(pt Point) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.check(pt)
}

func (in *Injector) check(pt Point) error {
	ctr, ok := in.calls[pt]
	if !ok {
		return nil
	}
	n := ctr.Add(1)
	for _, r := range in.rules {
		if r.Point != pt {
			continue
		}
		fire := false
		switch {
		case r.Nth > 0:
			fire = n == uint64(r.Nth)
		case r.Prob >= 1:
			fire = true
		case r.Prob > 0:
			fire = unit(in.seed, pt, n) < r.Prob
		}
		if !fire {
			continue
		}
		if r.Times > 0 && r.fired.Add(1) > int64(r.Times) {
			continue
		}
		switch r.Mode {
		case ModeLatency:
			injectedDelays.Inc()
			d := r.Delay
			if d <= 0 {
				d = time.Millisecond
			}
			time.Sleep(d)
		case ModePanic:
			injectedPanics.Inc()
			panic(&InjectedPanic{Point: pt, Call: n})
		default:
			injectedErrors.Inc()
			err := r.Err
			if err == nil {
				err = ErrInjected
			}
			if r.Transient {
				err = fmt.Errorf("%w: %w", ErrTransient, err)
			}
			return fmt.Errorf("fault: injected at %s (call %d): %w", pt, n, err)
		}
	}
	return nil
}

// unit maps (seed, point, call index) to a uniform value in [0, 1)
// with an FNV mix and the splitmix64 finalizer — deterministic across
// runs, platforms and goroutine schedules.
func unit(seed int64, pt Point, n uint64) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(pt); i++ {
		h = (h ^ uint64(pt[i])) * 0x100000001b3
	}
	h ^= n * 0xff51afd7ed558ccd
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
