package core

import (
	"fmt"
	"sort"

	"clockrlc/internal/geom"
	"clockrlc/internal/netlist"
	"clockrlc/internal/table"
)

// LayerTech names one routing layer's technology parameters. The
// paper builds separate tables per layer because each layer has its
// own nominal thickness (and, in copper processes, often its own
// effective resistivity and dielectric environment).
type LayerTech struct {
	Name string
	Tech Technology
}

// MultiExtractor holds one Extractor per routing layer — the paper's
// "build tables for different layers".
type MultiExtractor struct {
	Frequency float64
	layers    map[string]*Extractor
}

// NewMultiExtractor builds tables for every layer over shared axes and
// shielding configurations (nil selects ShieldNone + ShieldMicrostrip,
// as in NewExtractor).
func NewMultiExtractor(layers []LayerTech, freq float64, axes table.Axes, shieldings []geom.Shielding, opts ...Option) (*MultiExtractor, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("core: no layers")
	}
	m := &MultiExtractor{Frequency: freq, layers: map[string]*Extractor{}}
	for _, l := range layers {
		if l.Name == "" {
			return nil, fmt.Errorf("core: layer with empty name")
		}
		if _, dup := m.layers[l.Name]; dup {
			return nil, fmt.Errorf("core: duplicate layer %q", l.Name)
		}
		e, err := NewExtractor(l.Tech, freq, axes, shieldings, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: layer %q: %w", l.Name, err)
		}
		m.layers[l.Name] = e
	}
	return m, nil
}

// Layer returns the extractor for one routing layer.
func (m *MultiExtractor) Layer(name string) (*Extractor, error) {
	e, ok := m.layers[name]
	if !ok {
		return nil, fmt.Errorf("core: no tables for layer %q (have %v)", name, m.Names())
	}
	return e, nil
}

// Names lists the layers, sorted.
func (m *MultiExtractor) Names() []string {
	out := make([]string, 0, len(m.layers))
	for n := range m.layers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SegmentRLC extracts a segment routed on the named layer.
func (m *MultiExtractor) SegmentRLC(layer string, s Segment) (netlist.SegmentRLC, error) {
	e, err := m.Layer(layer)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	return e.SegmentRLC(s)
}

// StackFromTechnology derives per-layer LayerTechs from a geometry
// technology stack description: each layer takes its own thickness and
// resistivity, the dielectric constant from the stack, and its
// capacitive reference at the layer below (or capFloor for the lowest
// layer). The inductive plane parameters are shared.
func StackFromTechnology(t geom.Technology, capFloor, planeGap, planeThickness float64) ([]LayerTech, error) {
	if len(t.Layers) == 0 {
		return nil, fmt.Errorf("core: technology %q has no layers", t.Name)
	}
	if t.EpsRel <= 0 {
		return nil, fmt.Errorf("core: technology %q has no dielectric constant", t.Name)
	}
	out := make([]LayerTech, 0, len(t.Layers))
	for i, l := range t.Layers {
		capHeight := capFloor
		if i > 0 {
			below := t.Layers[i-1]
			capHeight = (l.Z - l.Thickness/2) - (below.Z + below.Thickness/2)
			if capHeight <= 0 {
				return nil, fmt.Errorf("core: layers %q and %q overlap", below.Name, l.Name)
			}
		}
		out = append(out, LayerTech{
			Name: l.Name,
			Tech: Technology{
				Thickness:      l.Thickness,
				Rho:            l.Rho,
				EpsRel:         t.EpsRel,
				CapHeight:      capHeight,
				PlaneGap:       planeGap,
				PlaneThickness: planeThickness,
			},
		})
	}
	return out, nil
}
