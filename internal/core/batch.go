package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
)

// Batch accounting: runs, segments extracted through the batch path,
// and accumulated wall time (throughput = batch_segments /
// batch_ns·1e9).
var (
	batchRuns     = obs.GetCounter("core.batch_runs")
	batchSegments = obs.GetCounter("core.batch_segments")
	batchNs       = obs.GetCounter("core.batch_ns")
)

// Batch fans segment extraction across a bounded worker pool. A
// production flow extracts thousands of segments against one shared
// table set; table lookups are pure reads of precomputed spline
// coefficients, so the fan-out needs no locking and results are
// written by index — output order matches input order exactly.
type Batch struct {
	// Workers bounds the pool; zero or negative selects GOMAXPROCS.
	Workers int
}

// SegmentsRLC extracts every segment concurrently and returns the
// results in input order. The first failing segment stops further
// work and is returned, identified by its index. Progress is
// observable through the core.batch_* counters.
func (b Batch) SegmentsRLC(e *Extractor, segs []Segment) ([]netlist.SegmentRLC, error) {
	return b.SegmentsRLCCtx(context.Background(), e, segs)
}

// SegmentsRLCCtx is SegmentsRLC honouring cancellation: a cancelled
// ctx stops new segment claims, drains the in-flight workers (no
// goroutine outlives the call) and returns ctx.Err() within one
// segment's extraction time. A panicking segment is isolated to its
// worker and surfaces as a *table.CellPanic naming the segment index.
func (b Batch) SegmentsRLCCtx(ctx context.Context, e *Extractor, segs []Segment) ([]netlist.SegmentRLC, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The batch span rides the context so each worker's per-segment
	// extraction span (core.extract, started via StartCtx inside
	// SegmentRLCCtx) parents under the batch — not under whatever span
	// another goroutine happened to have open on the shared stack.
	ctx, sp := e.observer().StartCtx(ctx, "core.batch")
	sp.SetAttr("segments", len(segs))
	sp.SetAttr("workers", workers)
	defer sp.End()
	t0 := time.Now()
	defer func() {
		batchRuns.Inc()
		batchNs.Add(time.Since(t0).Nanoseconds())
	}()
	out := make([]netlist.SegmentRLC, len(segs))
	err := table.ParallelForCtx(ctx, len(segs), workers, func(k int) error {
		rlc, err := e.SegmentRLCCtx(ctx, segs[k])
		if err != nil {
			return fmt.Errorf("core: batch segment %d: %w", k, err)
		}
		out[k] = rlc
		batchSegments.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SegmentsRLC extracts a batch of segments through the vectorized
// path: R and C per segment on a GOMAXPROCS-wide worker pool, then
// every loop inductance through the table layer's batch lookups (one
// spline contraction pass per shielding group, repeated geometries
// deduped). Results are bit-identical to a serial loop over
// SegmentRLC, in input order; the first failing segment stops the
// batch, identified by its index. Batch keeps the per-segment worker
// pool for callers that need bounded fan-out of whole extractions.
func (e *Extractor) SegmentsRLC(segs []Segment) ([]netlist.SegmentRLC, error) {
	return e.segmentsRLCVectorized(context.Background(), segs)
}

// SegmentsRLCCtx is SegmentsRLC honouring cancellation through the
// R/C worker phase; the lookup phase is pure reads and runs to
// completion.
func (e *Extractor) SegmentsRLCCtx(ctx context.Context, segs []Segment) ([]netlist.SegmentRLC, error) {
	return e.segmentsRLCVectorized(ctx, segs)
}
