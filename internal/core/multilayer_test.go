package core

import (
	"math"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/units"
)

func twoLayerStack() geom.Technology {
	return geom.Technology{
		Name:   "cu-2layer",
		EpsRel: units.EpsSiO2,
		Layers: []geom.Layer{
			{Name: "M5", Z: units.Um(3), Thickness: units.Um(1), Rho: units.RhoCopper},
			{Name: "M6", Z: units.Um(7), Thickness: units.Um(2), Rho: units.RhoCopper},
		},
	}
}

func TestStackFromTechnology(t *testing.T) {
	layers, err := StackFromTechnology(twoLayerStack(), units.Um(2), units.Um(2), units.Um(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(layers) != 2 {
		t.Fatalf("got %d layers", len(layers))
	}
	// M5 sits on the cap floor; M6's reference is M5's top:
	// (7 − 1) − (3 + 0.5) = 2.5 µm.
	if math.Abs(layers[0].Tech.CapHeight-units.Um(2)) > 1e-15 {
		t.Errorf("M5 cap height = %g", layers[0].Tech.CapHeight)
	}
	if math.Abs(layers[1].Tech.CapHeight-units.Um(2.5)) > 1e-15 {
		t.Errorf("M6 cap height = %g", layers[1].Tech.CapHeight)
	}
	if layers[1].Tech.Thickness != units.Um(2) {
		t.Errorf("M6 thickness = %g", layers[1].Tech.Thickness)
	}
}

func TestStackFromTechnologyRejects(t *testing.T) {
	if _, err := StackFromTechnology(geom.Technology{EpsRel: 3.9}, 1e-6, 1e-6, 1e-6); err == nil {
		t.Error("accepted empty stack")
	}
	bad := twoLayerStack()
	bad.EpsRel = 0
	if _, err := StackFromTechnology(bad, 1e-6, 1e-6, 1e-6); err == nil {
		t.Error("accepted zero permittivity")
	}
	overlap := twoLayerStack()
	overlap.Layers[1].Z = units.Um(3.5)
	if _, err := StackFromTechnology(overlap, 1e-6, 1e-6, 1e-6); err == nil {
		t.Error("accepted overlapping layers")
	}
}

func TestMultiExtractorPerLayerTables(t *testing.T) {
	layers, err := StackFromTechnology(twoLayerStack(), units.Um(2), units.Um(2), units.Um(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiExtractor(layers, fsig, testAxes(), []geom.Shielding{geom.ShieldNone})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Names(); len(got) != 2 || got[0] != "M5" || got[1] != "M6" {
		t.Fatalf("Names = %v", got)
	}
	seg := Segment{
		Length:      units.Um(2000),
		SignalWidth: units.Um(4),
		GroundWidth: units.Um(4),
		Spacing:     units.Um(1),
		Shielding:   geom.ShieldNone,
	}
	r5, err := m.SegmentRLC("M5", seg)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := m.SegmentRLC("M6", seg)
	if err != nil {
		t.Fatal(err)
	}
	// The thicker M6 wire has lower resistance and slightly lower
	// inductance; the per-layer tables must reflect it.
	if !(r6.R < r5.R) {
		t.Errorf("thick layer R %g not below thin layer %g", r6.R, r5.R)
	}
	if !(r6.L < r5.L) {
		t.Errorf("thick layer L %g not below thin layer %g", r6.L, r5.L)
	}
	if _, err := m.Layer("M9"); err == nil {
		t.Error("returned tables for a missing layer")
	}
	if _, err := m.SegmentRLC("M9", seg); err == nil {
		t.Error("extracted on a missing layer")
	}
}

func TestMultiExtractorValidation(t *testing.T) {
	if _, err := NewMultiExtractor(nil, fsig, testAxes(), nil); err == nil {
		t.Error("accepted empty layer list")
	}
	lt := LayerTech{Name: "", Tech: testTech()}
	if _, err := NewMultiExtractor([]LayerTech{lt}, fsig, testAxes(), nil); err == nil {
		t.Error("accepted anonymous layer")
	}
	a := LayerTech{Name: "M1", Tech: testTech()}
	if _, err := NewMultiExtractor([]LayerTech{a, a}, fsig, testAxes(),
		[]geom.Shielding{geom.ShieldNone}); err == nil {
		t.Error("accepted duplicate layer")
	}
}
