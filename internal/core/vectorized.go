package core

// Vectorized extraction. Extractor.SegmentsRLC feeds whole clocktrees
// through the table layer's batch lookups (table.Set.SelfLBatch /
// MutualLBatch): segments are grouped by shielding configuration, the
// four lookups of every loop composition are packed into two batch
// calls per group, and one spline contraction pass answers them all —
// deduping repeated geometries, which clock trees are made of. The
// composed values are bit-identical to the scalar loop (LoopL per
// segment); only the constant factors change.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"clockrlc/internal/geom"
	"clockrlc/internal/netlist"
	"clockrlc/internal/resist"
	"clockrlc/internal/table"
)

// LoopLBatch composes the loop inductance of every segment through the
// batch lookup path, returning henries in input order. Values are
// bit-identical to calling LoopL per segment; the first failing
// segment (in input order within its shielding group) stops the batch
// with an error naming it.
func (e *Extractor) LoopLBatch(segs []Segment) ([]float64, error) {
	return e.LoopLBatchCtx(context.Background(), segs)
}

// LoopLBatchCtx is LoopLBatch with context-parented tracing. The
// context carries tracing lineage only; lookups are pure reads and are
// not cancelled.
func (e *Extractor) LoopLBatchCtx(ctx context.Context, segs []Segment) ([]float64, error) {
	for i, s := range segs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", i, err)
		}
	}
	out := make([]float64, len(segs))
	if si, err := e.loopLBatchInto(ctx, segs, out); err != nil {
		return nil, fmt.Errorf("core: segment %d: %w", si, err)
	}
	return out, nil
}

// loopLBatchInto composes loop inductances for pre-validated segments
// into out (len(out) == len(segs)). On failure it returns the index of
// the offending segment and the same error the scalar path would have
// produced for it.
func (e *Extractor) loopLBatchInto(ctx context.Context, segs []Segment, out []float64) (int, error) {
	if len(segs) == 0 {
		return 0, nil
	}
	_, sp := e.observer().StartCtx(ctx, "table.lookup")
	defer sp.End()
	sp.SetAttr("batch", len(segs))
	loopCompositions.Add(int64(len(segs)))

	// Group segments by shielding configuration, preserving input order
	// within each group — each group shares one table set and batches
	// its lookups together.
	type group struct {
		set  *table.Set
		idxs []int
	}
	var order []geom.Shielding
	groups := map[geom.Shielding]*group{}
	for i, s := range segs {
		g, ok := groups[s.Shielding]
		if !ok {
			set, err := e.Tables(s.Shielding)
			if err != nil {
				return i, err
			}
			g = &group{set: set}
			groups[s.Shielding] = g
			order = append(order, s.Shielding)
		}
		g.idxs = append(g.idxs, i)
	}

	eng := e.checkEngine()
	armed := eng.Armed()
	for _, sh := range order {
		g := groups[sh]
		m := len(g.idxs)
		// Two self queries per segment — (SignalWidth, Length) then
		// (GroundWidth, Length) — and two mutual queries — signal↔ground
		// at Spacing, then ground↔ground across the signal trace —
		// exactly the four lookups LoopL issues, in the same order.
		sw := make([]float64, 2*m)
		sl := make([]float64, 2*m)
		selfOut := make([]float64, 2*m)
		mw1 := make([]float64, 2*m)
		mw2 := make([]float64, 2*m)
		msp := make([]float64, 2*m)
		mln := make([]float64, 2*m)
		mutOut := make([]float64, 2*m)
		for j, si := range g.idxs {
			s := segs[si]
			sw[2*j], sl[2*j] = s.SignalWidth, s.Length
			sw[2*j+1], sl[2*j+1] = s.GroundWidth, s.Length
			mw1[2*j], mw2[2*j], msp[2*j], mln[2*j] = s.SignalWidth, s.GroundWidth, s.Spacing, s.Length
			// Ground-to-ground spacing across the signal trace.
			sgg := 2*s.Spacing + s.SignalWidth
			mw1[2*j+1], mw2[2*j+1], msp[2*j+1], mln[2*j+1] = s.GroundWidth, s.GroundWidth, sgg, s.Length
		}
		if err := g.set.SelfLBatch(sw, sl, selfOut); err != nil {
			return batchQuerySegment(g.idxs, err)
		}
		if err := g.set.MutualLBatch(mw1, mw2, msp, mln, mutOut); err != nil {
			return batchQuerySegment(g.idxs, err)
		}
		for j, si := range g.idxs {
			s := segs[si]
			ls, lg := selfOut[2*j], selfOut[2*j+1]
			msg, mgg := mutOut[2*j], mutOut[2*j+1]
			var lloop float64
			if s.Shielding == geom.ShieldNone {
				lloop = ls + (lg+mgg)/2 - 2*msg
			} else {
				lloop = ls - 2*msg*msg/(lg+mgg)
			}
			if armed {
				if err := checkLoopComposition(eng, s, ls, lg, msg, mgg, lloop); err != nil {
					return si, err
				}
			}
			out[si] = lloop
		}
	}
	return 0, nil
}

// batchQuerySegment maps a table batch-lookup failure back to the
// segment that issued the failing query (two queries per segment) and
// unwraps the *table.BatchError so the surfaced error matches what the
// scalar lookup would have returned for that segment.
func batchQuerySegment(idxs []int, err error) (int, error) {
	var be *table.BatchError
	if errors.As(err, &be) {
		if si := be.Index / 2; si < len(idxs) {
			return idxs[si], be.Err
		}
	}
	if len(idxs) > 0 {
		return idxs[0], err
	}
	return 0, err
}

// segmentsRLCVectorized is the batch extraction path behind
// Extractor.SegmentsRLC: R and C per segment on a worker pool (both
// are per-segment analytic/field-model work), then every loop
// inductance through one vectorized lookup pass. Results are
// bit-identical to a serial loop over SegmentRLC.
func (e *Extractor) segmentsRLCVectorized(ctx context.Context, segs []Segment) ([]netlist.SegmentRLC, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := e.observer().StartCtx(ctx, "core.batch")
	sp.SetAttr("segments", len(segs))
	sp.SetAttr("mode", "vectorized")
	defer sp.End()
	t0 := time.Now()
	defer func() {
		batchRuns.Inc()
		batchNs.Add(time.Since(t0).Nanoseconds())
	}()
	out := make([]netlist.SegmentRLC, len(segs))
	if len(segs) == 0 {
		return out, nil
	}
	// Gate every segment's geometry up front, in input order, so the
	// first invalid segment is named deterministically.
	for i, s := range segs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("core: batch segment %d: %w", i, err)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	sp.SetAttr("workers", workers)
	err := table.ParallelForCtx(ctx, len(segs), workers, func(k int) error {
		s := segs[k]
		r, err := resist.ACSkinArea(s.Length, s.SignalWidth, e.Tech.Thickness, e.Tech.Rho, e.Frequency)
		if err != nil {
			return fmt.Errorf("core: batch segment %d: %w", k, err)
		}
		c, err := e.SegmentCap(s)
		if err != nil {
			return fmt.Errorf("core: batch segment %d: %w", k, err)
		}
		out[k].R, out[k].C = r, c
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ls := make([]float64, len(segs))
	if si, lerr := e.loopLBatchInto(ctx, segs, ls); lerr != nil {
		return nil, fmt.Errorf("core: batch segment %d: %w", si, lerr)
	}
	for i := range out {
		out[i].L = ls[i]
		if err := out[i].Validate(); err != nil {
			return nil, fmt.Errorf("core: batch segment %d: core: extracted values unphysical: %w", i, err)
		}
	}
	segmentsExtracted.Add(int64(len(segs)))
	batchSegments.Add(int64(len(segs)))
	return out, nil
}
