package core

// Fuzz the geometry gates. Segment.Validate and Technology.Validate
// stand between user input and the field solver; whatever the fuzzer
// throws at them they must either reject with ErrBadGeometry or accept
// only values the solver can actually consume (finite and strictly
// positive). A NaN that slips past here surfaces much later as a
// cryptic numerical failure or a silently wrong table entry.

import (
	"errors"
	"math"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/units"
)

func physical(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

func FuzzGeometryValidate(f *testing.F) {
	f.Add(units.Um(2000), units.Um(8), units.Um(4), units.Um(1), byte(0),
		units.Um(2), units.RhoCopper, units.EpsSiO2, units.Um(2))
	f.Add(math.NaN(), units.Um(8), units.Um(4), units.Um(1), byte(1),
		units.Um(2), units.RhoCopper, units.EpsSiO2, units.Um(2))
	f.Add(units.Um(2000), math.Inf(1), units.Um(4), units.Um(1), byte(2),
		units.Um(2), units.RhoCopper, units.EpsSiO2, units.Um(2))
	f.Add(0.0, -1.0, 0.0, -0.0, byte(0), math.NaN(), math.Inf(-1), 0.0, -5.0)
	f.Fuzz(func(t *testing.T, length, wsig, wgnd, sp float64, shield byte,
		th, rho, eps, caph float64) {
		seg := Segment{
			Length:      length,
			SignalWidth: wsig,
			GroundWidth: wgnd,
			Spacing:     sp,
			Shielding:   geom.Shielding(shield % 3),
		}
		if err := seg.Validate(); err != nil {
			if !errors.Is(err, ErrBadGeometry) {
				t.Fatalf("segment rejection %v is not ErrBadGeometry", err)
			}
		} else {
			for _, v := range []float64{seg.Length, seg.SignalWidth, seg.GroundWidth, seg.Spacing} {
				if !physical(v) {
					t.Fatalf("Segment.Validate accepted non-physical geometry: %+v", seg)
				}
			}
		}
		tech := Technology{
			Thickness: th,
			Rho:       rho,
			EpsRel:    eps,
			CapHeight: caph,
		}
		if err := tech.Validate(); err != nil {
			if !errors.Is(err, ErrBadGeometry) {
				t.Fatalf("technology rejection %v is not ErrBadGeometry", err)
			}
		} else {
			for _, v := range []float64{tech.Thickness, tech.Rho, tech.EpsRel, tech.CapHeight} {
				if !physical(v) {
					t.Fatalf("Technology.Validate accepted non-physical values: %+v", tech)
				}
			}
		}
	})
}
