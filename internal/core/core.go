// Package core implements the paper's extraction methodology: given a
// clocktree segment's geometry and shielding configuration, produce
// its R, L and C by
//
//   - analytic resistance at the significant frequency (Section V:
//     "resistance is calculated analytically"),
//   - capacitance from the pre-characterised 3-trace models with the
//     grounded-coupling assumption (Section VI),
//   - inductance by composing the pre-computed self/mutual tables of
//     Section III into the segment's loop inductance,
//
// and formulate RLC netlists for blocks of N parallel wires — either
// the loop formulation (grounds folded into the return, one inductor
// per section) or the partial formulation (every trace an inductor
// ladder with mutual K couplings, letting the simulator determine the
// return path, per Section II).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"clockrlc/internal/capmodel"
	"clockrlc/internal/check"
	"clockrlc/internal/geom"
	"clockrlc/internal/loop"
	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
	"clockrlc/internal/peec"
	"clockrlc/internal/resist"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

// Extraction accounting: segments extracted and loop compositions
// performed (each loop composition is four table lookups).
var (
	segmentsExtracted = obs.GetCounter("core.segments_extracted")
	loopCompositions  = obs.GetCounter("core.loop_compositions")
	directSolves      = obs.GetCounter("core.direct_solves")
)

// ErrBadGeometry marks input-validation failures of segment and
// technology geometry: negative, zero or non-finite dimensions are
// rejected at the gate with the offending field named, before any of
// them can reach the field solver and surface later as a cryptic
// numerical failure (or worse, a silently wrong table entry).
var ErrBadGeometry = errors.New("core: invalid geometry")

// checkDim validates one named geometric field.
func checkDim(what, field string, v float64) error {
	switch {
	case math.IsNaN(v):
		return fmt.Errorf("%w: %s %s is NaN", ErrBadGeometry, what, field)
	case math.IsInf(v, 0):
		return fmt.Errorf("%w: %s %s is infinite", ErrBadGeometry, what, field)
	case v <= 0:
		return fmt.Errorf("%w: %s %s = %g must be positive", ErrBadGeometry, what, field, v)
	}
	return nil
}

// Technology collects the per-layer process quantities extraction
// needs. All lengths in metres.
type Technology struct {
	// Thickness is the routing layer's metal thickness.
	Thickness float64
	// Rho is the metal resistivity (Ω·m).
	Rho float64
	// EpsRel is the inter-layer dielectric constant.
	EpsRel float64
	// CapHeight is the dielectric height between the trace bottom and
	// the capacitive reference below (the orthogonal layer N−1 or a
	// ground plane).
	CapHeight float64
	// PlaneGap and PlaneThickness describe the inductive ground plane
	// in layer N−2 (and N+2 for stripline) used by the shielded
	// configurations.
	PlaneGap, PlaneThickness float64
}

// Validate checks the technology is usable, naming the offending
// field (NaN included — a NaN slips past plain sign comparisons).
func (t Technology) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Thickness", t.Thickness},
		{"Rho", t.Rho},
		{"EpsRel", t.EpsRel},
		{"CapHeight", t.CapHeight},
	} {
		if err := checkDim("technology", f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// Segment describes one clocktree wire segment: a signal trace guarded
// by two ground traces (Fig. 8/9), optionally over ground plane(s).
type Segment struct {
	Length      float64
	SignalWidth float64
	GroundWidth float64
	Spacing     float64 // edge-to-edge signal↔ground
	Shielding   geom.Shielding
}

// Validate checks the segment geometry, naming the offending field.
func (s Segment) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Length", s.Length},
		{"SignalWidth", s.SignalWidth},
		{"GroundWidth", s.GroundWidth},
		{"Spacing", s.Spacing},
	} {
		if err := checkDim("segment", f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// Extractor performs table-based RLC extraction for one layer of a
// technology.
type Extractor struct {
	Tech Technology
	// Frequency is the significant frequency (0.32/tr) extraction
	// runs at.
	Frequency float64
	tables    map[geom.Shielding]*table.Set
	cache     *table.Cache
	obs       *obs.Observer
	checks    *check.Engine
	lookup    table.LookupPolicy
}

// Option configures an Extractor at construction time.
type Option func(*Extractor)

// WithObserver routes the extractor's spans (table builds, segment
// extraction, lookups) to the given observer instead of the
// process-wide default. Metrics counters remain process-wide.
func WithObserver(o *obs.Observer) Option {
	return func(e *Extractor) { e.obs = o }
}

// WithTableCache makes NewExtractor consult the content-addressed
// on-disk cache before running any field-solver sweep and write newly
// built sets back. A cache hit constructs a ready extractor with zero
// solver calls and lookups bit-identical to a cold build.
func WithTableCache(c *table.Cache) Option {
	return func(e *Extractor) { e.cache = c }
}

// WithChecks gives this extractor its own physical-invariant policy,
// overriding the process-wide engine (check.SetPolicy) for everything
// the extractor does: its table sets are audited at construction and
// its loop compositions check the coupling bounds and positivity of
// the result. WithChecks(check.Off) explicitly disarms one extractor
// under a stricter process policy.
func WithChecks(p check.Policy) Option {
	return func(e *Extractor) { e.checks = check.New(p) }
}

// WithLookupPolicy selects what the extractor's out-of-range table
// lookups do — extrapolate (default), clamp, or error — applied to
// every set the extractor builds or loads.
func WithLookupPolicy(p table.LookupPolicy) Option {
	return func(e *Extractor) { e.lookup = p }
}

// observer returns the configured observer, falling back to the
// process default.
func (e *Extractor) observer() *obs.Observer {
	if e.obs != nil {
		return e.obs
	}
	return obs.Default()
}

// checkEngine returns the extractor's invariant engine: the WithChecks
// override when set, otherwise the process-wide engine (nil when
// disarmed — one atomic load).
func (e *Extractor) checkEngine() *check.Engine {
	if e.checks != nil {
		return e.checks
	}
	return check.Active()
}

// NewExtractor builds the inductance tables for the requested
// shielding configurations (nil selects ShieldNone and
// ShieldMicrostrip) over the given axes and returns a ready extractor.
func NewExtractor(tech Technology, freq float64, axes table.Axes, shieldings []geom.Shielding, opts ...Option) (*Extractor, error) {
	return NewExtractorCtx(context.Background(), tech, freq, axes, shieldings, opts...)
}

// NewExtractorCtx is NewExtractor honouring cancellation through the
// table builds (and the cache probe when WithTableCache is set): a
// cancelled ctx drains the sweep workers and returns ctx.Err().
func NewExtractorCtx(ctx context.Context, tech Technology, freq float64, axes table.Axes, shieldings []geom.Shielding, opts ...Option) (*Extractor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if freq <= 0 {
		return nil, fmt.Errorf("core: frequency must be positive, got %g", freq)
	}
	if shieldings == nil {
		shieldings = []geom.Shielding{geom.ShieldNone, geom.ShieldMicrostrip}
	}
	e := &Extractor{Tech: tech, Frequency: freq, tables: map[geom.Shielding]*table.Set{}}
	for _, o := range opts {
		o(e)
	}
	ctx, sp := e.observer().StartCtx(ctx, "core.build_tables")
	defer sp.End()
	for _, sh := range shieldings {
		cfg := table.Config{
			Name:           fmt.Sprintf("layer/%v", sh),
			Thickness:      tech.Thickness,
			Rho:            tech.Rho,
			Shielding:      sh,
			PlaneGap:       tech.PlaneGap,
			PlaneThickness: tech.PlaneThickness,
			Frequency:      freq,
		}
		var set *table.Set
		var err error
		if e.cache != nil {
			set, err = e.cache.GetOrBuildCtx(ctx, cfg, axes, e.observer())
		} else {
			set, err = table.BuildCtx(ctx, cfg, axes, e.observer())
		}
		if err != nil {
			return nil, fmt.Errorf("core: building %v tables: %w", sh, err)
		}
		set.Lookup = e.lookup
		// The build/load paths already audit under the process-wide
		// engine; a WithChecks override audits again under its own
		// policy (e.g. Strict here while the process runs Warn).
		if e.checks != nil && e.checks.Armed() {
			if err := e.checks.ReportAll(set.Audit()); err != nil {
				return nil, fmt.Errorf("core: auditing %v tables: %w", sh, err)
			}
		}
		e.tables[sh] = set
	}
	return e, nil
}

// NewExtractorFromTables wraps pre-built (e.g. loaded) table sets.
// Each shielding configuration may be supplied once, and every set
// must have been built at the extractor's significant frequency —
// inductance entries are frequency-dependent, so a library built at
// the wrong frequency would yield silently wrong loop L.
func NewExtractorFromTables(tech Technology, freq float64, sets ...*table.Set) (*Extractor, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if freq <= 0 {
		return nil, fmt.Errorf("core: frequency must be positive, got %g", freq)
	}
	e := &Extractor{Tech: tech, Frequency: freq, tables: map[geom.Shielding]*table.Set{}}
	for _, s := range sets {
		if s == nil {
			return nil, fmt.Errorf("core: nil table set")
		}
		if prev, dup := e.tables[s.Config.Shielding]; dup {
			return nil, fmt.Errorf("core: duplicate %v table sets (%q and %q); supply each shielding configuration once",
				s.Config.Shielding, prev.Config.Name, s.Config.Name)
		}
		if !sameFrequency(s.Config.Frequency, freq) {
			return nil, fmt.Errorf("core: table set %q was built at %g Hz but the extractor runs at %g Hz; rebuild the tables at the extractor's significant frequency",
				s.Config.Name, s.Config.Frequency, freq)
		}
		e.tables[s.Config.Shielding] = s
	}
	return e, nil
}

// sameFrequency tolerates only representation-level jitter (1 ppb):
// table entries vary smoothly with frequency, but a set built at a
// genuinely different significant frequency must be rejected.
func sameFrequency(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// SetObserver routes the extractor's spans to o (nil restores the
// process default). Covers extractors built via NewExtractorFromTables
// or NewMultiExtractor, which predate the Option list.
func (e *Extractor) SetObserver(o *obs.Observer) { e.obs = o }

// Configure applies options to an already-constructed extractor — the
// path a long-running server takes, where the table sets are shared
// and cached but the check/lookup policies vary per request. Note
// WithTableCache and WithLookupPolicy only influence table
// construction, so they are inert here; WithChecks and WithObserver
// take full effect.
func (e *Extractor) Configure(opts ...Option) {
	for _, o := range opts {
		o(e)
	}
}

// Tables exposes the table set for a shielding configuration.
func (e *Extractor) Tables(sh geom.Shielding) (*table.Set, error) {
	set, ok := e.tables[sh]
	if !ok {
		return nil, fmt.Errorf("core: no tables built for %v", sh)
	}
	return set, nil
}

// LoopL composes the segment's loop inductance from table lookups.
//
// Coplanar waveguide (no plane): with the symmetric grounds splitting
// the return evenly,
//
//	Lloop = Ls + (Lg + Mgg)/2 − 2·Msg
//
// from partial self/mutual entries. Shielded configurations
// (microstrip/stripline): the tabulated entries are already loop
// quantities with the plane as return; the two ground wires form
// shorted loops that the signal couples into, giving
//
//	Lloop = Ls − 2·Msg²/(Lg + Mgg).
func (e *Extractor) LoopL(s Segment) (float64, error) {
	return e.LoopLCtx(context.Background(), s)
}

// LoopLCtx is LoopL with its span parented through ctx
// (obs.StartCtx), the form concurrent callers — core.Batch, the
// clocktree stages — use so per-segment lookups attribute to the
// right parent at any worker count. The context carries tracing
// lineage only; lookups are pure reads and are not cancelled.
func (e *Extractor) LoopLCtx(ctx context.Context, s Segment) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	_, sp := e.observer().StartCtx(ctx, "table.lookup")
	defer sp.End()
	sp.SetAttr("shielding", s.Shielding.String())
	loopCompositions.Inc()
	set, err := e.Tables(s.Shielding)
	if err != nil {
		return 0, err
	}
	ls, err := set.SelfL(s.SignalWidth, s.Length)
	if err != nil {
		return 0, err
	}
	lg, err := set.SelfL(s.GroundWidth, s.Length)
	if err != nil {
		return 0, err
	}
	msg, err := set.MutualL(s.SignalWidth, s.GroundWidth, s.Spacing, s.Length)
	if err != nil {
		return 0, err
	}
	// Ground-to-ground spacing across the signal trace.
	sgg := 2*s.Spacing + s.SignalWidth
	mgg, err := set.MutualL(s.GroundWidth, s.GroundWidth, sgg, s.Length)
	if err != nil {
		return 0, err
	}
	var lloop float64
	if s.Shielding == geom.ShieldNone {
		lloop = ls + (lg+mgg)/2 - 2*msg
	} else {
		lloop = ls - 2*msg*msg/(lg+mgg)
	}
	if eng := e.checkEngine(); eng.Armed() {
		if err := checkLoopComposition(eng, s, ls, lg, msg, mgg, lloop); err != nil {
			return 0, err
		}
	}
	return lloop, nil
}

// checkLoopComposition enforces the physical bounds of a loop
// composition under an armed engine: the signal↔ground and
// ground↔ground coupling coefficients must stay below 1, and the
// composed loop inductance must come out finite and positive. A
// violation here means the table entries are individually plausible
// but mutually inconsistent — exactly what a per-value check cannot
// see.
func checkLoopComposition(eng *check.Engine, s Segment, ls, lg, msg, mgg, lloop float64) error {
	subject := fmt.Sprintf("segment (%v, l=%g, ws=%g, wg=%g, s=%g)",
		s.Shielding, s.Length, s.SignalWidth, s.GroundWidth, s.Spacing)
	report := func(invariant, detail string) error {
		return eng.Report(&check.Violation{
			Stage: check.StageSegment, Invariant: invariant,
			Subject: subject, Detail: detail,
		})
	}
	if ls > 0 && lg > 0 {
		if k := math.Abs(msg) / math.Sqrt(ls*lg); k >= 1 {
			if err := report("signal-ground coupling k < 1",
				fmt.Sprintf("k = |Msg|/sqrt(Ls*Lg) = %.4g (Msg=%g, Ls=%g, Lg=%g)", k, msg, ls, lg)); err != nil {
				return err
			}
		}
	}
	if lg > 0 {
		if k := math.Abs(mgg) / lg; k >= 1 {
			if err := report("ground-ground coupling k < 1",
				fmt.Sprintf("k = |Mgg|/Lg = %.4g (Mgg=%g, Lg=%g)", k, mgg, lg)); err != nil {
				return err
			}
		}
	}
	if math.IsNaN(lloop) || math.IsInf(lloop, 0) || lloop <= 0 {
		if err := report("loop inductance finite and positive",
			fmt.Sprintf("Lloop = %g (Ls=%g, Lg=%g, Msg=%g, Mgg=%g)", lloop, ls, lg, msg, mgg)); err != nil {
			return err
		}
	}
	return nil
}

// DirectLoopL solves the full 3-wire (+plane) system with the field
// engine at full fidelity (filament-subdivided conductors, proximity
// crowding resolved), bypassing tables — the accuracy reference for
// LoopL.
//
// Note on the comparison: the table method composes the loop from
// isolated 1-trace and 2-trace entries, so it cannot capture the
// drive/return proximity crowding of the assembled loop. For
// micron-gap shields at multi-GHz significant frequencies that
// approximation costs up to ~10 % of loop inductance (it vanishes at
// lower frequency or wider spacing); the interpolation itself is
// accurate to ~1–2 % (see the table package tests). This is the
// inherent envelope of the paper's method, of a kind with its own
// Table I cascading errors.
func (e *Extractor) DirectLoopL(s Segment) (float64, error) {
	return e.DirectLoopLCtx(context.Background(), s)
}

// DirectLoopLCtx is DirectLoopL with context-parented tracing.
func (e *Extractor) DirectLoopLCtx(ctx context.Context, s Segment) (float64, error) {
	_, sp := e.observer().StartCtx(ctx, "core.direct_loop_l")
	defer sp.End()
	directSolves.Inc()
	blk, err := e.Block(s)
	if err != nil {
		return 0, err
	}
	sol, err := loop.SolveBlock(blk, 1, loop.Options{Frequency: e.Frequency, SubW: 4, SubT: 2})
	if err != nil {
		return 0, err
	}
	return sol.L, nil
}

// Block materialises the segment's geometry.
func (e *Extractor) Block(s Segment) (*geom.Block, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	z := e.Tech.Thickness / 2
	var blk *geom.Block
	switch s.Shielding {
	case geom.ShieldNone:
		blk = geom.CoplanarWaveguide(s.Length, s.SignalWidth, s.GroundWidth, s.Spacing,
			e.Tech.Thickness, z, e.Tech.Rho)
	case geom.ShieldMicrostrip:
		blk = geom.Microstrip(s.Length, s.SignalWidth, s.GroundWidth, s.Spacing,
			e.Tech.Thickness, z, e.Tech.Rho, e.Tech.PlaneGap, e.Tech.PlaneThickness)
	case geom.ShieldStripline:
		blk = geom.Microstrip(s.Length, s.SignalWidth, s.GroundWidth, s.Spacing,
			e.Tech.Thickness, z, e.Tech.Rho, e.Tech.PlaneGap, e.Tech.PlaneThickness)
		top := *blk.PlaneBelow
		top.Z = z + e.Tech.Thickness/2 + e.Tech.PlaneGap + e.Tech.PlaneThickness/2
		blk.PlaneAbove = &top
	default:
		return nil, fmt.Errorf("core: unsupported shielding %v", s.Shielding)
	}
	return blk, nil
}

// SegmentRLC extracts the lumped totals for one segment: analytic AC
// resistance, grounded-total capacitance of the signal trace, and the
// table-composed loop inductance.
func (e *Extractor) SegmentRLC(s Segment) (netlist.SegmentRLC, error) {
	return e.SegmentRLCCtx(context.Background(), s)
}

// SegmentRLCCtx is SegmentRLC with context-parented tracing: the
// extraction span parents under the span carried by ctx and the loop
// composition's lookup span nests under it, so a batch of concurrent
// extractions attributes each lookup to its own segment.
func (e *Extractor) SegmentRLCCtx(ctx context.Context, s Segment) (netlist.SegmentRLC, error) {
	if err := s.Validate(); err != nil {
		return netlist.SegmentRLC{}, err
	}
	ctx, sp := e.observer().StartCtx(ctx, "core.extract")
	defer sp.End()
	sp.SetAttr("length", s.Length)
	segmentsExtracted.Inc()
	r, err := resist.ACSkinArea(s.Length, s.SignalWidth, e.Tech.Thickness, e.Tech.Rho, e.Frequency)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	c, err := e.SegmentCap(s)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	l, err := e.LoopLCtx(ctx, s)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	out := netlist.SegmentRLC{R: r, L: l, C: c}
	if err := out.Validate(); err != nil {
		return netlist.SegmentRLC{}, fmt.Errorf("core: extracted values unphysical: %w", err)
	}
	return out, nil
}

// SegmentRCOnly extracts the same segment without inductance — the
// baseline netlist the paper compares against (Fig. 2 vs Fig. 3). R
// and C are extracted directly; the four table lookups of the loop
// composition are skipped entirely rather than computed and
// discarded.
func (e *Extractor) SegmentRCOnly(s Segment) (netlist.SegmentRLC, error) {
	return e.SegmentRCOnlyCtx(context.Background(), s)
}

// SegmentRCOnlyCtx is SegmentRCOnly with context-parented tracing.
func (e *Extractor) SegmentRCOnlyCtx(ctx context.Context, s Segment) (netlist.SegmentRLC, error) {
	if err := s.Validate(); err != nil {
		return netlist.SegmentRLC{}, err
	}
	_, sp := e.observer().StartCtx(ctx, "core.extract_rc")
	defer sp.End()
	sp.SetAttr("length", s.Length)
	segmentsExtracted.Inc()
	r, err := resist.ACSkinArea(s.Length, s.SignalWidth, e.Tech.Thickness, e.Tech.Rho, e.Frequency)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	c, err := e.SegmentCap(s)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	out := netlist.SegmentRLC{R: r, C: c}
	if err := out.Validate(); err != nil {
		return netlist.SegmentRLC{}, fmt.Errorf("core: extracted values unphysical: %w", err)
	}
	return out, nil
}

// SegmentCap returns the signal trace's total capacitance (area +
// fringe to the reference below, plus both lateral couplings treated
// as grounded), in farads.
func (e *Extractor) SegmentCap(s Segment) (float64, error) {
	blk, err := e.Block(s)
	if err != nil {
		return 0, err
	}
	caps, err := capmodel.BlockCaps(blk, e.Tech.CapHeight, e.Tech.EpsRel)
	if err != nil {
		return 0, err
	}
	return caps[1].Total() * s.Length, nil
}

// PartialNetlist builds the Section II formulation of the segment as
// a rigorous sectioned PEEC netlist: the three traces are cut into
// `sections` collinear bars, the full partial-inductance matrix of all
// 3·sections bars is computed with the field engine, and every bar
// becomes an R–L branch with mutual K elements to every other bar
// (collinear same-wire couplings included). Nothing is folded into a
// loop inductance: the simulator determines the return path, exactly
// the PEEC usage the paper's Section II describes. The ground traces
// are bonded to the circuit ground rail at every section junction —
// the paper's "regular connections to the near by ground nodes (such
// as ground C4 bumps)".
//
// The signal runs between nodes from and to; sectioned internal nodes
// are prefixed with prefix.
func (e *Extractor) PartialNetlist(nl *netlist.Netlist, prefix, from, to string, s Segment, sections int) error {
	return e.PartialNetlistOpts(nl, prefix, from, to, s, PartialOptions{Sections: sections})
}

// PartialOptions tunes the sectioned PEEC netlist formulation.
type PartialOptions struct {
	// Sections per wire.
	Sections int
	// EndBondsOnly ties the ground wires to the rail only at the
	// segment's two ends instead of at every junction — the topology a
	// designer gets without intermediate C4/ground-strap connections.
	// The shield return current is then forced uniform along the wire,
	// which raises the effective dynamic inductance above the ideal
	// loop value (the configuration behind the paper's Fig. 3 ringing).
	EndBondsOnly bool
	// CapOverride, when positive, replaces the modelled total signal
	// capacitance (used to calibrate against a published value).
	CapOverride float64
}

// PartialNetlistOpts is PartialNetlist with explicit options.
func (e *Extractor) PartialNetlistOpts(nl *netlist.Netlist, prefix, from, to string, s Segment, opts PartialOptions) error {
	sections := opts.Sections
	if sections < 1 {
		return fmt.Errorf("core: need at least one section, got %d", sections)
	}
	if s.Shielding != geom.ShieldNone {
		return fmt.Errorf("core: partial formulation models no-plane blocks; got %v", s.Shielding)
	}
	blk, err := e.Block(s)
	if err != nil {
		return err
	}
	caps, err := capmodel.BlockCaps(blk, e.Tech.CapHeight, e.Tech.EpsRel)
	if err != nil {
		return err
	}

	// Section every trace into collinear bars: bar index = wire*sections + k.
	nWires := len(blk.Traces)
	secLen := s.Length / float64(sections)
	bars := make([]peec.Bar, 0, nWires*sections)
	for _, tr := range blk.Traces {
		full := peec.BarFromTrace(tr)
		for k := 0; k < sections; k++ {
			b := full
			b.O[0] = full.O[0] + float64(k)*secLen
			b.L = secLen
			bars = append(bars, b)
		}
	}
	lp := peec.PartialMatrix(bars)

	const bondR = 1e-3
	wireNames := []string{"g1", "sig", "g2"}
	inds := make([]int, len(bars))
	for wi, tr := range blk.Traces {
		name := wireNames[wi]
		isSig := wi == 1
		rWire, err := resist.ACSkinArea(s.Length, tr.Width, e.Tech.Thickness, e.Tech.Rho, e.Frequency)
		if err != nil {
			return err
		}
		var cSec float64
		if isSig {
			cSec = caps[wi].Total() * s.Length / float64(sections)
			if opts.CapOverride > 0 {
				cSec = opts.CapOverride / float64(sections)
			}
		}
		prev := from
		if !isSig {
			prev = fmt.Sprintf("%s.%s.end0", prefix, name)
			nl.AddR(fmt.Sprintf("%s.%s.bond0", prefix, name), prev, netlist.Ground, bondR)
		}
		for k := 0; k < sections; k++ {
			bi := wi*sections + k
			end := fmt.Sprintf("%s.%s.n%d", prefix, name, k+1)
			if k == sections-1 {
				if isSig {
					end = to
				} // ground wires keep their distinct far-end node
			}
			mid := fmt.Sprintf("%s.%s.m%d", prefix, name, k)
			nl.AddR(fmt.Sprintf("%s.%s.r%d", prefix, name, k), prev, mid, rWire/float64(sections))
			inds[bi] = nl.AddL(fmt.Sprintf("%s.%s.l%d", prefix, name, k), mid, end, lp.At(bi, bi))
			if isSig {
				nl.AddC(fmt.Sprintf("%s.%s.c%d", prefix, name, k), end, netlist.Ground, cSec)
			} else if !opts.EndBondsOnly || k == sections-1 {
				nl.AddR(fmt.Sprintf("%s.%s.bond%d", prefix, name, k+1), end, netlist.Ground, bondR)
			}
			prev = end
		}
	}
	// Full mutual coupling: K for every bar pair.
	for i := 0; i < len(bars); i++ {
		for j := i + 1; j < len(bars); j++ {
			m := lp.At(i, j)
			if m == 0 {
				continue
			}
			nl.AddK(fmt.Sprintf("%s.k.%d.%d", prefix, i, j), inds[i], inds[j], m)
		}
	}
	return nil
}

// SignificantFrequency re-exports the frequency rule for callers that
// build extractors from a rise time.
func SignificantFrequency(riseTime float64) float64 {
	return units.SignificantFrequency(riseTime)
}
