package core

import (
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
)

// TestWithObserverSpanNesting checks the trace shape a CLI run
// produces: table builds during construction, then per-segment
// core.extract spans each parenting a table.lookup span.
func TestWithObserverSpanNesting(t *testing.T) {
	mem := &obs.MemorySink{}
	o := obs.New(mem)
	e, err := NewExtractor(testTech(), fsig, testAxes(),
		[]geom.Shielding{geom.ShieldNone}, WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SegmentRLC(fig1Segment()); err != nil {
		t.Fatal(err)
	}

	var extractID uint64
	starts := map[string]int{}
	var lookupParent uint64
	for _, ev := range mem.Events() {
		if ev.Type != obs.EventSpanStart {
			continue
		}
		starts[ev.Name]++
		switch ev.Name {
		case "core.extract":
			extractID = ev.Span
		case "table.lookup":
			lookupParent = ev.Parent
		}
	}
	for _, name := range []string{"core.build_tables", "table.build", "core.extract", "table.lookup"} {
		if starts[name] == 0 {
			t.Errorf("no %q span recorded (got %v)", name, starts)
		}
	}
	if extractID == 0 || lookupParent != extractID {
		t.Errorf("table.lookup parent = %d, want core.extract span %d", lookupParent, extractID)
	}
}

// TestObserverDefaultsDisabled ensures an un-optioned extractor routes
// to the disabled process default (no events, no failures).
func TestObserverDefaultsDisabled(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	if e.observer() != obs.Default() {
		t.Fatal("expected the process-default observer")
	}
	if e.observer().Enabled() {
		t.Fatal("default observer should be disabled in tests")
	}
	if _, err := e.SegmentRLC(fig1Segment()); err != nil {
		t.Fatal(err)
	}
}
