package core

// Tests for the vectorized extraction path: bit-identity against the
// scalar loop (the batch lookups share the spline contraction kernel,
// so nothing may drift), error attribution by segment index, and
// cancellation.

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

// mixedBatchSegs builds n segments cycling through a handful of
// distinct geometries across both shielding configurations — the
// repeated-geometry shape of a real clock tree.
func mixedBatchSegs(n int) []Segment {
	base := []Segment{
		fig1Segment(),
		{Length: units.Um(900), SignalWidth: units.Um(3), GroundWidth: units.Um(2),
			Spacing: units.Um(1.5), Shielding: geom.ShieldNone},
		{Length: units.Um(2500), SignalWidth: units.Um(6), GroundWidth: units.Um(4),
			Spacing: units.Um(2), Shielding: geom.ShieldMicrostrip},
		{Length: units.Um(400), SignalWidth: units.Um(1.8), GroundWidth: units.Um(1.8),
			Spacing: units.Um(1.1), Shielding: geom.ShieldMicrostrip},
	}
	segs := make([]Segment, n)
	for i := range segs {
		segs[i] = base[i%len(base)]
	}
	return segs
}

// TestSegmentsRLCVectorizedBitIdentical: the vectorized batch path
// returns bit-for-bit what a serial loop over SegmentRLC returns, in
// input order, across mixed shielding groups and repeated geometries.
func TestSegmentsRLCVectorizedBitIdentical(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone, geom.ShieldMicrostrip})
	segs := mixedBatchSegs(37)
	got, err := e.SegmentsRLC(segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(segs) {
		t.Fatalf("%d results for %d segments", len(got), len(segs))
	}
	for i, s := range segs {
		want, err := e.SegmentRLC(s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got[i].R) != math.Float64bits(want.R) ||
			math.Float64bits(got[i].L) != math.Float64bits(want.L) ||
			math.Float64bits(got[i].C) != math.Float64bits(want.C) {
			t.Fatalf("segment %d drifted: got (%v, %v, %v), want (%v, %v, %v)",
				i, got[i].R, got[i].L, got[i].C, want.R, want.L, want.C)
		}
	}
}

// TestLoopLBatchMatchesLoopL: the exported batch composition is
// bit-identical to per-segment LoopL.
func TestLoopLBatchMatchesLoopL(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone, geom.ShieldMicrostrip})
	segs := mixedBatchSegs(12)
	got, err := e.LoopLBatch(segs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range segs {
		want, err := e.LoopL(s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("segment %d: batch %v != scalar %v (bitwise)", i, got[i], want)
		}
	}
	// Empty batches are fine.
	if out, err := e.LoopLBatch(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(out))
	}
}

// TestLoopLBatchNamesFailingSegment: lookup failures surface the
// scalar error, attributed to the right segment of the batch.
func TestLoopLBatchNamesFailingSegment(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	set, err := e.Tables(geom.ShieldNone)
	if err != nil {
		t.Fatal(err)
	}
	set.Lookup = table.LookupError
	defer func() { set.Lookup = table.LookupExtrapolate }()

	segs := []Segment{fig1Segment(), fig1Segment(), fig1Segment()}
	segs[2].SignalWidth = units.Um(80) // far beyond the 12 µm width axis
	_, err = e.LoopLBatch(segs)
	if !errors.Is(err, table.ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if !strings.Contains(err.Error(), "segment 2") {
		t.Errorf("error %q does not name the failing segment", err)
	}
	// Geometry failures are named too, before any lookup runs.
	segs[2] = fig1Segment()
	segs[0].Length = -1
	if _, err := e.LoopLBatch(segs); !errors.Is(err, ErrBadGeometry) || !strings.Contains(err.Error(), "segment 0") {
		t.Errorf("invalid geometry: got %v, want ErrBadGeometry naming segment 0", err)
	}
}

// TestSegmentsRLCVectorizedLookupErrorNamesSegment: the full batch
// path attributes an out-of-range lookup to its segment.
func TestSegmentsRLCVectorizedLookupErrorNamesSegment(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	set, err := e.Tables(geom.ShieldNone)
	if err != nil {
		t.Fatal(err)
	}
	set.Lookup = table.LookupError
	defer func() { set.Lookup = table.LookupExtrapolate }()

	segs := mixedBatchSegs(4)
	for i := range segs {
		segs[i].Shielding = geom.ShieldNone
	}
	segs[3].SignalWidth = units.Um(80)
	_, err = e.SegmentsRLC(segs)
	if !errors.Is(err, table.ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if !strings.Contains(err.Error(), "batch segment 3") {
		t.Errorf("error %q does not name the failing segment", err)
	}
}

// TestSegmentsRLCVectorizedCancellation: a pre-cancelled context stops
// the batch with ctx.Err().
func TestSegmentsRLCVectorizedCancellation(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SegmentsRLCCtx(ctx, mixedBatchSegs(8)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestSegmentsRLCVectorizedSpan: the batch span advertises the
// vectorized mode and parents one table.lookup span per batch (not
// per segment).
func TestSegmentsRLCVectorizedSpan(t *testing.T) {
	mem := &obs.MemorySink{}
	o := obs.New(mem)
	e, err := NewExtractor(testTech(), fsig, testAxes(),
		[]geom.Shielding{geom.ShieldNone}, WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	segs := batchSegs(6)
	if _, err := e.SegmentsRLC(segs); err != nil {
		t.Fatal(err)
	}
	var batchID uint64
	lookups := 0
	mode := any(nil)
	for _, ev := range mem.Events() {
		switch {
		case ev.Type == obs.EventSpanStart && ev.Name == "core.batch":
			batchID = ev.Span
		case ev.Type == obs.EventSpanEnd && ev.Name == "core.batch" && ev.Attrs != nil:
			mode = ev.Attrs["mode"]
		case ev.Type == obs.EventSpanStart && ev.Name == "table.lookup":
			lookups++
			if ev.Parent != batchID {
				t.Errorf("table.lookup parent = %d, want core.batch span %d", ev.Parent, batchID)
			}
		}
	}
	if mode != "vectorized" {
		t.Errorf("core.batch mode attr = %v, want vectorized", mode)
	}
	if lookups != 1 {
		t.Errorf("%d table.lookup spans for one batch, want 1", lookups)
	}
}
