package core

import (
	"math"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
	"clockrlc/internal/sim"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

const fsig = 3.2e9

func testTech() Technology {
	return Technology{
		Thickness:      units.Um(2),
		Rho:            units.RhoCopper,
		EpsRel:         units.EpsSiO2,
		CapHeight:      units.Um(2),
		PlaneGap:       units.Um(2),
		PlaneThickness: units.Um(1),
	}
}

func testAxes() table.Axes {
	return table.Axes{
		Widths:   table.LogAxis(units.Um(1), units.Um(12), 4),
		Spacings: table.LogAxis(units.Um(0.8), units.Um(22), 6),
		Lengths:  table.LogAxis(units.Um(100), units.Um(6000), 6),
	}
}

func fig1Segment() Segment {
	return Segment{
		Length:      units.Um(6000),
		SignalWidth: units.Um(10),
		GroundWidth: units.Um(5),
		Spacing:     units.Um(1),
		Shielding:   geom.ShieldNone,
	}
}

func newTestExtractor(t *testing.T, sh []geom.Shielding) *Extractor {
	t.Helper()
	e, err := NewExtractor(testTech(), fsig, testAxes(), sh)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLoopLCompositionMatchesDirectCPW(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	seg := fig1Segment()
	composed, err := e.LoopL(seg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.DirectLoopL(seg)
	if err != nil {
		t.Fatal(err)
	}
	if composed <= 0 {
		t.Fatalf("composed loop L = %g", composed)
	}
	// The composition misses drive/return proximity crowding (it is
	// built from isolated subproblems), which costs up to ~10 % at the
	// significant frequency for 1 µm gaps; see DirectLoopL's doc.
	if rel := math.Abs(composed-direct) / direct; !(rel <= 0.10) {
		t.Errorf("CPW composition %g vs direct %g (rel %g)", composed, direct, rel)
	}
}

func TestLoopLCompositionMatchesDirectMicrostrip(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldMicrostrip})
	seg := fig1Segment()
	seg.Shielding = geom.ShieldMicrostrip
	composed, err := e.LoopL(seg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.DirectLoopL(seg)
	if err != nil {
		t.Fatal(err)
	}
	if composed <= 0 {
		t.Fatalf("composed microstrip loop L = %g", composed)
	}
	// Shorted-loop composition plus the proximity-crowding gap.
	if rel := math.Abs(composed-direct) / direct; !(rel <= 0.14) {
		t.Errorf("microstrip composition %g vs direct %g (rel %g)", composed, direct, rel)
	}
}

func TestMicrostripLoopBelowCPW(t *testing.T) {
	e := newTestExtractor(t, nil) // builds both
	cpw := fig1Segment()
	ms := cpw
	ms.Shielding = geom.ShieldMicrostrip
	a, err := e.LoopL(cpw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.LoopL(ms)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Errorf("microstrip loop L %g must be below CPW %g", b, a)
	}
}

func TestSegmentRLCFig1Magnitudes(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	rlc, err := e.SegmentRLC(fig1Segment())
	if err != nil {
		t.Fatal(err)
	}
	// 6 mm × 10 µm × 2 µm Cu: ≈ 5 Ω (plus a small skin correction).
	if rlc.R < 4.5 || rlc.R > 8 {
		t.Errorf("R = %g Ω, want ≈ 5–7 Ω", rlc.R)
	}
	// Loop L of the Fig. 1 CPW: a few nH.
	if nh := units.ToNH(rlc.L); nh < 1 || nh > 8 {
		t.Errorf("L = %g nH, want O(1–8)", nh)
	}
	// Total C: O(1) pF.
	if pf := rlc.C / 1e-12; pf < 0.5 || pf > 5 {
		t.Errorf("C = %g pF, want O(1)", pf)
	}
	// RC-only variant zeroes L and keeps the rest.
	rc, err := e.SegmentRCOnly(fig1Segment())
	if err != nil {
		t.Fatal(err)
	}
	if rc.L != 0 || rc.R != rlc.R || rc.C != rlc.C {
		t.Errorf("SegmentRCOnly = %+v, want L=0 with same R, C", rc)
	}
}

// SegmentRCOnly must not touch the inductance tables at all: R and C
// are extracted directly, so no spline evaluation and no loop
// composition may occur.
func TestSegmentRCOnlySkipsTableLookups(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	evals0 := obs.GetCounter("spline.evals").Value()
	comps0 := obs.GetCounter("core.loop_compositions").Value()
	rc, err := e.SegmentRCOnly(fig1Segment())
	if err != nil {
		t.Fatal(err)
	}
	if rc.L != 0 || rc.R <= 0 || rc.C <= 0 {
		t.Errorf("SegmentRCOnly = %+v, want L=0, R>0, C>0", rc)
	}
	if got := obs.GetCounter("spline.evals").Value() - evals0; got != 0 {
		t.Errorf("RC-only extraction performed %d spline evals, want 0", got)
	}
	if got := obs.GetCounter("core.loop_compositions").Value() - comps0; got != 0 {
		t.Errorf("RC-only extraction composed loop L %d times, want 0", got)
	}
}

// Segments inside the documented DefaultAxes sweep (widths 0.6–20 µm,
// spacings 0.6–10 µm, lengths 50–8000 µm) must never clamp: the
// spacing axis is tabulated out to the worst-case ground-to-ground
// lookup 2·s + w = 40 µm, so every lookup of an in-range segment —
// including the derived one — interpolates.
func TestDefaultAxesInRangeSegmentsZeroClamps(t *testing.T) {
	ax := table.DefaultAxes()
	e, err := NewExtractor(testTech(), fsig, ax, []geom.Shielding{geom.ShieldNone})
	if err != nil {
		t.Fatal(err)
	}
	widths := []float64{ax.Widths[0], units.Um(5), ax.Widths[len(ax.Widths)-1]}
	spacings := []float64{units.Um(0.6), units.Um(3), units.Um(10)} // the user sweep
	lengths := []float64{ax.Lengths[0], units.Um(1000), ax.Lengths[len(ax.Lengths)-1]}
	clamped0 := table.ClampedLookups()
	for _, w := range widths {
		for _, gw := range widths {
			for _, s := range spacings {
				for _, l := range lengths {
					seg := Segment{Length: l, SignalWidth: w, GroundWidth: gw, Spacing: s}
					if _, err := e.LoopL(seg); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	if got := table.ClampedLookups() - clamped0; got != 0 {
		t.Errorf("in-range segments produced %d clamped lookups, want 0", got)
	}
}

// delayOut simulates a driver + segment netlist and returns the sink's
// 50 % arrival time from t = 0.
func delayOut(t *testing.T, build func(nl *netlist.Netlist) error) float64 {
	t.Helper()
	nl := netlist.New()
	nl.AddV("vsrc", "drv", "0", netlist.Ramp{V0: 0, V1: 1, Start: 5e-12, Rise: 100e-12})
	nl.AddR("rdrv", "drv", "in", 40)
	nl.AddC("cl", "out", "0", 50e-15)
	if err := build(nl); err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("netlist invalid: %v", err)
	}
	res, err := sim.Transient(nl, 0.5e-12, 1500e-12, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	vout, _ := res.Waveform("out")
	d, err := sim.DelayFromT0(res.Time, vout, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// With near-ideal (very low resistivity) ground wires the return
// current distribution is purely inductance-determined, which is the
// regime where folding the grounds into a loop inductance is exact —
// the loop ladder and the rigorous sectioned-PEEC netlist must agree.
func TestLoopAndPartialFormulationsConvergeLowLoss(t *testing.T) {
	tech := testTech()
	tech.Rho = units.RhoCopper / 1000
	e, err := NewExtractor(tech, fsig, testAxes(), []geom.Shielding{geom.ShieldNone})
	if err != nil {
		t.Fatal(err)
	}
	seg := fig1Segment()
	rlc, err := e.SegmentRLC(seg)
	if err != nil {
		t.Fatal(err)
	}
	dLoop := delayOut(t, func(nl *netlist.Netlist) error {
		_, err := nl.AddLadder("seg", "in", "out", rlc, 8)
		return err
	})
	dPart := delayOut(t, func(nl *netlist.Netlist) error {
		return e.PartialNetlist(nl, "seg", "in", "out", seg, 8)
	})
	if rel := math.Abs(dLoop-dPart) / dPart; !(rel <= 0.10) {
		t.Errorf("low-loss: loop delay %g vs partial %g (rel %g)", dLoop, dPart, rel)
	}
}

// With real copper grounds the formulations differ by the resistive
// return-path migration the loop method neglects; the paper accepts
// this as part of its approximation. Keep the envelope honest.
func TestLoopAndPartialFormulationsCopperEnvelope(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	seg := fig1Segment()
	rlc, err := e.SegmentRLC(seg)
	if err != nil {
		t.Fatal(err)
	}
	dLoop := delayOut(t, func(nl *netlist.Netlist) error {
		_, err := nl.AddLadder("seg", "in", "out", rlc, 8)
		return err
	})
	dPart := delayOut(t, func(nl *netlist.Netlist) error {
		return e.PartialNetlist(nl, "seg", "in", "out", seg, 8)
	})
	if dLoop <= 0 || dPart <= 0 {
		t.Fatalf("non-positive sink delays: %g, %g", dLoop, dPart)
	}
	if rel := math.Abs(dLoop-dPart) / dPart; !(rel <= 0.40) {
		t.Errorf("copper: loop delay %g vs partial %g (rel %g)", dLoop, dPart, rel)
	}
}

func TestExtractorValidation(t *testing.T) {
	if _, err := NewExtractor(Technology{}, fsig, testAxes(), nil); err == nil {
		t.Error("accepted empty technology")
	}
	if _, err := NewExtractor(testTech(), 0, testAxes(), nil); err == nil {
		t.Error("accepted zero frequency")
	}
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	if _, err := e.Tables(geom.ShieldStripline); err == nil {
		t.Error("returned tables never built")
	}
	bad := fig1Segment()
	bad.Length = 0
	if _, err := e.LoopL(bad); err == nil {
		t.Error("accepted zero-length segment")
	}
	seg := fig1Segment()
	seg.Shielding = geom.ShieldMicrostrip
	if _, err := e.LoopL(seg); err == nil {
		t.Error("looked up a configuration without tables")
	}
	if err := e.PartialNetlist(netlist.New(), "p", "a", "b", seg, 4); err == nil {
		t.Error("partial netlist accepted a shielded segment")
	}
	if err := e.PartialNetlist(netlist.New(), "p", "a", "b", fig1Segment(), 0); err == nil {
		t.Error("partial netlist accepted zero sections")
	}
}

func TestNewExtractorFromTables(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	set, err := e.Tables(geom.ShieldNone)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewExtractorFromTables(testTech(), fsig, set)
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.LoopL(fig1Segment())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.LoopL(fig1Segment())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("wrapped tables disagree: %g vs %g", a, b)
	}
}

func TestSignificantFrequencyReexport(t *testing.T) {
	if got := SignificantFrequency(100e-12); math.Abs(got-3.2e9) > 1 {
		t.Errorf("SignificantFrequency = %g", got)
	}
}

func TestStriplineOrdering(t *testing.T) {
	// Stripline (planes both sides) shields harder than microstrip,
	// which shields harder than the bare CPW: loop L strictly ordered.
	e, err := NewExtractor(testTech(), fsig, testAxes(),
		[]geom.Shielding{geom.ShieldNone, geom.ShieldMicrostrip, geom.ShieldStripline})
	if err != nil {
		t.Fatal(err)
	}
	seg := fig1Segment()
	var ls [3]float64
	for i, sh := range []geom.Shielding{geom.ShieldNone, geom.ShieldMicrostrip, geom.ShieldStripline} {
		s := seg
		s.Shielding = sh
		if ls[i], err = e.LoopL(s); err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		if ls[i] <= 0 {
			t.Fatalf("%v: loop L = %g", sh, ls[i])
		}
	}
	if !(ls[2] < ls[1] && ls[1] < ls[0]) {
		t.Errorf("shielding ordering violated: cpw %g, microstrip %g, stripline %g", ls[0], ls[1], ls[2])
	}
	// The stripline block geometry has both planes.
	s := seg
	s.Shielding = geom.ShieldStripline
	blk, err := e.Block(s)
	if err != nil {
		t.Fatal(err)
	}
	if blk.PlaneBelow == nil || blk.PlaneAbove == nil {
		t.Error("stripline block must carry both planes")
	}
	if blk.PlaneAbove.Z <= blk.PlaneBelow.Z {
		t.Error("plane z ordering wrong")
	}
	// Stripline composition also tracks its direct solve.
	composed, err := e.LoopL(s)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.DirectLoopL(s)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(composed-direct) / direct; !(rel <= 0.15) {
		t.Errorf("stripline composition %g vs direct %g (rel %g)", composed, direct, rel)
	}
}
