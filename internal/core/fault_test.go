package core

// Robustness tests for the extraction layer: field-named input
// validation, batch cancellation, and panic isolation across the
// worker pool.

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func TestSegmentValidationNamesTheField(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Segment)
		want   string
	}{
		{"zero length", func(s *Segment) { s.Length = 0 }, "Length"},
		{"negative signal width", func(s *Segment) { s.SignalWidth = -1e-6 }, "SignalWidth"},
		{"NaN spacing", func(s *Segment) { s.Spacing = math.NaN() }, "Spacing"},
		{"Inf ground width", func(s *Segment) { s.GroundWidth = math.Inf(1) }, "GroundWidth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seg := fig1Segment()
			tc.mutate(&seg)
			err := seg.Validate()
			if !errors.Is(err, ErrBadGeometry) {
				t.Fatalf("want ErrBadGeometry, got %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending field %q", err, tc.want)
			}
		})
	}
}

func TestTechnologyValidationNamesTheField(t *testing.T) {
	tech := testTech()
	tech.Rho = math.NaN()
	err := tech.Validate()
	if !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("want ErrBadGeometry, got %v", err)
	}
	if !strings.Contains(err.Error(), "Rho") {
		t.Fatalf("error %q does not name Rho", err)
	}
}

func TestBatchCancellationStopsNewClaims(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	segs := make([]Segment, 64)
	for i := range segs {
		segs[i] = fig1Segment()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	_, err := Batch{Workers: 4}.SegmentsRLCCtx(ctx, e, segs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if took := time.Since(t0); took > time.Second {
		t.Fatalf("cancelled batch returned after %v", took)
	}
}

func TestBatchPanicIsolatedToItsSegment(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	segs := make([]Segment, 8)
	for i := range segs {
		segs[i] = fig1Segment()
	}
	// The batch path runs on the same pool as the sweep; a panicking
	// cell must surface as a *table.CellPanic naming the segment index
	// while the other cells complete.
	err := table.ParallelForCtx(context.Background(), len(segs), 4, func(k int) error {
		if k == 3 {
			panic("segment blew up")
		}
		_, err := e.SegmentRLC(segs[k])
		return err
	})
	var cp *table.CellPanic
	if !errors.As(err, &cp) {
		t.Fatalf("want *table.CellPanic, got %v", err)
	}
	if cp.Cell != 3 {
		t.Fatalf("panic attributed to cell %d, want 3", cp.Cell)
	}
}

func TestNewExtractorCtxHonoursPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewExtractorCtx(ctx, testTech(), fsig, testAxes(), []geom.Shielding{geom.ShieldNone})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestBatchRejectsInvalidSegmentWithIndex(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	segs := []Segment{fig1Segment(), fig1Segment(), fig1Segment()}
	segs[1].SignalWidth = -units.Um(1)
	_, err := e.SegmentsRLC(segs)
	if !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("want ErrBadGeometry, got %v", err)
	}
	if !strings.Contains(err.Error(), "segment 1") {
		t.Fatalf("error %q does not name the failing segment index", err)
	}
}
