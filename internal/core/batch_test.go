package core

import (
	"strings"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func batchSegs(n int) []Segment {
	segs := make([]Segment, n)
	for i := range segs {
		f := float64(i)
		segs[i] = Segment{
			Length:      units.Um(400 + 150*f),
			SignalWidth: units.Um(2 + f/8),
			GroundWidth: units.Um(2 + f/10),
			Spacing:     units.Um(1 + f/16),
			Shielding:   geom.ShieldNone,
		}
	}
	return segs
}

// Batch extraction must return exactly what a serial loop over
// SegmentRLC returns, in input order, at any worker count — the
// lookups are pure reads, so fan-out cannot change a single bit.
func TestSegmentsRLCMatchesSerial(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	segs := batchSegs(24)
	want := make([]struct{ r, l, c float64 }, len(segs))
	for i, s := range segs {
		rlc, err := e.SegmentRLC(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = struct{ r, l, c float64 }{rlc.R, rlc.L, rlc.C}
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := Batch{Workers: workers}.SegmentsRLC(e, segs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(segs) {
			t.Fatalf("workers=%d: %d results for %d segments", workers, len(got), len(segs))
		}
		for i, rlc := range got {
			if rlc.R != want[i].r || rlc.L != want[i].l || rlc.C != want[i].c {
				t.Fatalf("workers=%d: segment %d drifted: got (%g, %g, %g), want (%g, %g, %g)",
					workers, i, rlc.R, rlc.L, rlc.C, want[i].r, want[i].l, want[i].c)
			}
		}
	}
	// The GOMAXPROCS shorthand takes the same path.
	got, err := e.SegmentsRLC(segs[:4])
	if err != nil {
		t.Fatal(err)
	}
	if got[2].L != want[2].l {
		t.Error("Extractor.SegmentsRLC disagrees with Batch")
	}
}

func TestSegmentsRLCErrorNamesSegment(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	segs := batchSegs(8)
	segs[5].Length = -1
	_, err := Batch{Workers: 4}.SegmentsRLC(e, segs)
	if err == nil {
		t.Fatal("batch accepted an invalid segment")
	}
	if !strings.Contains(err.Error(), "segment 5") {
		t.Errorf("batch error does not identify the failing segment: %v", err)
	}
}

func TestSegmentsRLCEmptyAndCounters(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	out, err := e.SegmentsRLC(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(out))
	}
	segs0 := obs.GetCounter("core.batch_segments").Value()
	runs0 := obs.GetCounter("core.batch_runs").Value()
	if _, err := e.SegmentsRLC(batchSegs(6)); err != nil {
		t.Fatal(err)
	}
	if got := obs.GetCounter("core.batch_segments").Value() - segs0; got != 6 {
		t.Errorf("batch_segments += %d, want 6", got)
	}
	if got := obs.GetCounter("core.batch_runs").Value() - runs0; got < 1 {
		t.Errorf("batch_runs += %d, want >= 1", got)
	}
}

// NewExtractor with a warm cache must construct without a single
// field-solver call — the subsystem's acceptance criterion — and its
// lookups must match the cold extractor's bit for bit.
func TestExtractorCacheWarmConstruction(t *testing.T) {
	cache, err := table.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shieldings := []geom.Shielding{geom.ShieldNone}
	cold, err := NewExtractor(testTech(), fsig, testAxes(), shieldings, WithTableCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	solves := obs.GetCounter("table.solver_calls")
	solves0 := solves.Value()
	warm, err := NewExtractor(testTech(), fsig, testAxes(), shieldings, WithTableCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if got := solves.Value() - solves0; got != 0 {
		t.Errorf("warm construction ran %d field-solver calls, want 0", got)
	}
	a, err := cold.LoopL(fig1Segment())
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.LoopL(fig1Segment())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cache-built extractor drifted: %g vs %g", a, b)
	}
	// The batch path rides the cached tables identically.
	batch, err := warm.SegmentsRLC(batchSegs(5))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := cold.SegmentRLC(batchSegs(5)[0])
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].L != serial.L {
		t.Errorf("batch over cached tables drifted: %g vs %g", batch[0].L, serial.L)
	}
}

func TestNewExtractorFromTablesRejections(t *testing.T) {
	e := newTestExtractor(t, []geom.Shielding{geom.ShieldNone})
	set, err := e.Tables(geom.ShieldNone)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := NewExtractorFromTables(testTech(), fsig, set, nil); err == nil {
		t.Error("accepted a nil table set")
	}

	// Two sets for the same shielding configuration: the old code kept
	// whichever came last, silently.
	dup := *set
	dup.Config.Name = "other/coplanar"
	_, err = NewExtractorFromTables(testTech(), fsig, set, &dup)
	if err == nil {
		t.Error("accepted duplicate shielding sets")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate error unclear: %v", err)
	}

	// A library built at the wrong significant frequency yields
	// silently wrong loop L; it must be rejected, naming both values.
	wrong := *set
	wrong.Config.Frequency = fsig / 2
	_, err = NewExtractorFromTables(testTech(), fsig, &wrong)
	if err == nil {
		t.Error("accepted tables built at the wrong frequency")
	} else if !strings.Contains(err.Error(), "Hz") {
		t.Errorf("frequency error unclear: %v", err)
	}

	// Representation jitter stays accepted.
	jitter := *set
	jitter.Config.Frequency = fsig * (1 + 1e-12)
	if _, err := NewExtractorFromTables(testTech(), fsig, &jitter); err != nil {
		t.Errorf("rejected 1e-12 relative frequency jitter: %v", err)
	}
}
