package clocktree

import (
	"math"
	"sync"
	"testing"

	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

const fsig = 3.2e9

var (
	extOnce sync.Once
	extOne  *core.Extractor
	extErr  error
)

// sharedExtractor builds one extractor for all tests in the package
// (table build dominates setup time).
func sharedExtractor(t *testing.T) *core.Extractor {
	t.Helper()
	extOnce.Do(func() {
		tech := core.Technology{
			Thickness:      units.Um(2),
			Rho:            units.RhoCopper,
			EpsRel:         units.EpsSiO2,
			CapHeight:      units.Um(2),
			PlaneGap:       units.Um(2),
			PlaneThickness: units.Um(1),
		}
		axes := table.Axes{
			Widths:   table.LogAxis(units.Um(1), units.Um(12), 4),
			Spacings: table.LogAxis(units.Um(0.8), units.Um(22), 6),
			Lengths:  table.LogAxis(units.Um(100), units.Um(6000), 6),
		}
		extOne, extErr = core.NewExtractor(tech, fsig, axes, nil)
	})
	if extErr != nil {
		t.Fatal(extErr)
	}
	return extOne
}

func testSegment() core.Segment {
	return core.Segment{
		SignalWidth: units.Um(10),
		GroundWidth: units.Um(5),
		Spacing:     units.Um(1),
		Shielding:   geom.ShieldNone,
	}
}

func testBuffer() Buffer {
	return Buffer{
		DriveRes:       40,
		InputCap:       40e-15,
		IntrinsicDelay: 30e-12,
		OutSlew:        100e-12,
	}
}

func testTree(t *testing.T, levels int) *Tree {
	t.Helper()
	tr, err := NewTree(
		HTreeLevels(units.Um(4000), levels, testSegment()),
		testBuffer(), sharedExtractor(t))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestHTreeLevelsHalving(t *testing.T) {
	lv := HTreeLevels(units.Um(4000), 3, testSegment())
	if len(lv) != 3 {
		t.Fatalf("levels = %d", len(lv))
	}
	for i, l := range lv {
		wantTrunk := units.Um(4000) / math.Pow(2, float64(i))
		if math.Abs(l.TrunkLen-wantTrunk) > 1e-15 {
			t.Errorf("level %d trunk = %g, want %g", i, l.TrunkLen, wantTrunk)
		}
		if math.Abs(l.ArmLen-wantTrunk/2) > 1e-15 {
			t.Errorf("level %d arm = %g, want %g", i, l.ArmLen, wantTrunk/2)
		}
	}
}

func TestSymmetricTreeHasZeroSkew(t *testing.T) {
	tr := testTree(t, 2)
	arr, err := tr.Arrivals(SimOptions{WithL: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 16 {
		t.Fatalf("leaf count = %d, want 16", len(arr))
	}
	s, _, _ := skewOf(arr)
	if s > 1e-15 {
		t.Errorf("symmetric tree skew = %g, want ~0", s)
	}
	if arr[0] <= 0 {
		t.Errorf("arrival = %g, want > 0", arr[0])
	}
}

func skewOf(arr []float64) (float64, int, int) {
	mn, mx := 0, 0
	for i, a := range arr {
		if a < arr[mn] {
			mn = i
		}
		if a > arr[mx] {
			mx = i
		}
	}
	return arr[mx] - arr[mn], mn, mx
}

func TestInductanceIncreasesStageDelay(t *testing.T) {
	tr := testTree(t, 1)
	rc, err := tr.Arrivals(SimOptions{WithL: false})
	if err != nil {
		t.Fatal(err)
	}
	rlc, err := tr.Arrivals(SimOptions{WithL: true})
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 2/3 observation: including L increases the arrival
	// time for this strongly-driven, wide-wire configuration.
	if rlc[0] <= rc[0] {
		t.Errorf("RLC arrival %g not above RC arrival %g", rlc[0], rc[0])
	}
	ratio := rlc[0] / rc[0]
	if ratio < 1.02 || ratio > 2.5 {
		t.Errorf("RLC/RC arrival ratio = %g, expect the paper's 1.1–2× band", ratio)
	}
}

func TestSkewWithLoadImbalance(t *testing.T) {
	tr := testTree(t, 1)
	// Leaf 0 carries 4× input load (fan-out difference).
	opts := SimOptions{WithL: false, LeafLoadScale: map[int]float64{0: 4}}
	skewRC, err := tr.Skew(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.WithL = true
	skewRLC, err := tr.Skew(opts)
	if err != nil {
		t.Fatal(err)
	}
	if skewRC <= 0 || skewRLC <= 0 {
		t.Fatalf("degenerate skews: rc=%g rlc=%g", skewRC, skewRLC)
	}
	// Section V: ignoring inductance misestimates skew by > 10 %.
	diff := math.Abs(skewRLC-skewRC) / skewRLC
	if diff < 0.05 {
		t.Errorf("skew difference RC vs RLC only %.1f%% (rc=%g, rlc=%g); paper reports >10%%",
			diff*100, skewRC, skewRLC)
	}
}

func TestScalePerturbsArrivals(t *testing.T) {
	tr := testTree(t, 1)
	nom, err := tr.Arrivals(SimOptions{WithL: true})
	if err != nil {
		t.Fatal(err)
	}
	pert, err := tr.Arrivals(SimOptions{
		WithL: true,
		Scale: map[int][3]float64{0: {1.3, 1.3, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(pert[0] > nom[0]) {
		t.Errorf("30%% RC increase did not slow the stage: %g vs %g", pert[0], nom[0])
	}
}

func TestNewTreeValidation(t *testing.T) {
	ext := sharedExtractor(t)
	if _, err := NewTree(nil, testBuffer(), ext); err == nil {
		t.Error("accepted empty levels")
	}
	if _, err := NewTree(HTreeLevels(units.Um(1000), 1, testSegment()), Buffer{}, ext); err == nil {
		t.Error("accepted zero buffer")
	}
	if _, err := NewTree(HTreeLevels(units.Um(1000), 1, testSegment()), testBuffer(), nil); err == nil {
		t.Error("accepted nil extractor")
	}
	bad := HTreeLevels(units.Um(1000), 1, testSegment())
	bad[0].TrunkLen = 0
	if _, err := NewTree(bad, testBuffer(), ext); err == nil {
		t.Error("accepted zero trunk")
	}
	seg := testSegment()
	seg.SignalWidth = 0
	if _, err := NewTree(HTreeLevels(units.Um(1000), 1, seg), testBuffer(), ext); err == nil {
		t.Error("accepted bad segment profile")
	}
}
