// Job identity for checkpointed tree analyses: the SHA-256 of every
// input that determines the walk's result. Two runs share a key iff
// they would produce bit-identical statistics, so a checkpoint can
// only ever resume the computation it came from.

package clocktree

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"clockrlc/internal/ckpt"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
)

// JobKey hashes everything that determines this tree analysis'
// result: the tree geometry and buffer model, the (defaulted)
// simulation options including every perturbation map entry, and the
// cache key of each inductance table set the levels draw on — the
// same key that names the table's on-disk cache entry, so a rebuilt
// or re-axed table changes the job. The hash is order-independent
// for maps (keys are sorted) and stable across runs and platforms.
func (t *Tree) JobKey(opts SimOptions) ([32]byte, error) {
	opts = opts.withDefaults(t.Buffer)
	h := sha256.New()
	fmt.Fprintf(h, "clockrlc-treejob-v1\n")
	fmt.Fprintf(h, "buffer %.17g %.17g %.17g %.17g\n",
		t.Buffer.DriveRes, t.Buffer.InputCap, t.Buffer.IntrinsicDelay, t.Buffer.OutSlew)
	for i, lv := range t.Levels {
		fmt.Fprintf(h, "level %d %.17g %.17g seg %.17g %.17g %.17g %d\n",
			i, lv.TrunkLen, lv.ArmLen,
			lv.Segment.SignalWidth, lv.Segment.GroundWidth, lv.Segment.Spacing,
			lv.Segment.Shielding)
	}
	fmt.Fprintf(h, "opts %t %d %.17g %.17g %t %d\n",
		opts.WithL, opts.Sections, opts.TimeStep, opts.Horizon,
		opts.NoStageDedup, opts.SampleCap)
	scaleKeys := make([]int, 0, len(opts.Scale))
	for k := range opts.Scale {
		scaleKeys = append(scaleKeys, k)
	}
	sort.Ints(scaleKeys)
	for _, k := range scaleKeys {
		sc := opts.Scale[k]
		fmt.Fprintf(h, "scale %d %.17g %.17g %.17g\n", k, sc[0], sc[1], sc[2])
	}
	loadKeys := make([]int, 0, len(opts.LeafLoadScale))
	for k := range opts.LeafLoadScale {
		loadKeys = append(loadKeys, k)
	}
	sort.Ints(loadKeys)
	for _, k := range loadKeys {
		fmt.Fprintf(h, "load %d %.17g\n", k, opts.LeafLoadScale[k])
	}
	// The extraction behind each stage is determined by the table sets
	// the levels' shieldings select; their cache keys already encode
	// config + axes + codec format.
	seen := map[geom.Shielding]bool{}
	for _, lv := range t.Levels {
		sh := lv.Segment.Shielding
		if seen[sh] {
			continue
		}
		seen[sh] = true
		set, err := t.Ext.Tables(sh)
		if err != nil {
			// An extractor without tables for this shielding (pure
			// direct-solve setups) still has a stable identity: the
			// shielding itself.
			fmt.Fprintf(h, "tables %d none\n", sh)
			continue
		}
		key, err := table.CacheKey(set.Config, set.Axes)
		if err != nil {
			return [32]byte{}, fmt.Errorf("clocktree: job key: %w", err)
		}
		fmt.Fprintf(h, "tables %d %s\n", sh, key)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out, nil
}

// OpenCheckpoint opens (creating if needed) the checkpoint store for
// this tree + options job under dir. The store is keyed by JobKey, so
// runs with different trees or options never see each other's state.
func (t *Tree) OpenCheckpoint(dir string, opts SimOptions) (*ckpt.Store, error) {
	key, err := t.JobKey(opts)
	if err != nil {
		return nil, err
	}
	return ckpt.Open(dir, key)
}
