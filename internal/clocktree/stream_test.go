package clocktree

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/fault"
	"clockrlc/internal/obs"
	"clockrlc/internal/sim"
)

// perturbedOpts is a tree configuration with enough per-stage and
// per-leaf perturbation that dedup has real work to skip and real
// work it must not skip.
func perturbedOpts() SimOptions {
	return SimOptions{
		WithL:         true,
		Scale:         map[int][3]float64{1: {1.1, 1.2, 1}},
		LeafLoadScale: map[int]float64{0: 1.5, 7: 2},
	}
}

func statsEqual(t *testing.T, name string, got, want *ArrivalStats) {
	t.Helper()
	bits := math.Float64bits
	if got.Leaves != want.Leaves {
		t.Errorf("%s: Leaves = %d, want %d", name, got.Leaves, want.Leaves)
	}
	if bits(got.Min) != bits(want.Min) || bits(got.Max) != bits(want.Max) {
		t.Errorf("%s: Min/Max = %v/%v, want %v/%v", name, got.Min, got.Max, want.Min, want.Max)
	}
	if got.MinLeaf != want.MinLeaf || got.MaxLeaf != want.MaxLeaf {
		t.Errorf("%s: Min/MaxLeaf = %d/%d, want %d/%d", name, got.MinLeaf, got.MaxLeaf, want.MinLeaf, want.MaxLeaf)
	}
	if bits(got.Sum) != bits(want.Sum) || bits(got.SumSq) != bits(want.SumSq) {
		t.Errorf("%s: Sum/SumSq = %v/%v, want %v/%v", name, got.Sum, got.SumSq, want.Sum, want.SumSq)
	}
	if got.Hist != want.Hist {
		t.Errorf("%s: histograms differ", name)
	}
	if len(got.Sample) != len(want.Sample) {
		t.Errorf("%s: %d samples, want %d", name, len(got.Sample), len(want.Sample))
	} else {
		for i := range got.Sample {
			if bits(got.Sample[i]) != bits(want.Sample[i]) {
				t.Errorf("%s: sample[%d] = %v, want %v", name, i, got.Sample[i], want.Sample[i])
			}
		}
	}
	if got.StagesSimulated != want.StagesSimulated || got.StagesDeduped != want.StagesDeduped {
		t.Errorf("%s: simulated/deduped = %d/%d, want %d/%d", name,
			got.StagesSimulated, got.StagesDeduped, want.StagesSimulated, want.StagesDeduped)
	}
}

// TestStreamedStatsBitIdentical pins the tentpole's correctness
// claim: the memoized streaming walk produces bit-identical arrivals
// to the exact walk (NoStageDedup), and the streamed statistics equal
// what the full slice reduces to.
func TestStreamedStatsBitIdentical(t *testing.T) {
	tr := testTree(t, 2)
	opts := perturbedOpts()
	opts.SampleCap = 8

	exact := opts
	exact.NoStageDedup = true
	arrExact, err := tr.Arrivals(exact)
	if err != nil {
		t.Fatal(err)
	}
	arrMemo, err := tr.Arrivals(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrExact) != len(arrMemo) {
		t.Fatalf("lengths differ: %d vs %d", len(arrExact), len(arrMemo))
	}
	for i := range arrExact {
		if math.Float64bits(arrExact[i]) != math.Float64bits(arrMemo[i]) {
			t.Fatalf("arrival %d: exact %v, memoized %v", i, arrExact[i], arrMemo[i])
		}
	}

	stats, err := tr.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	skew, early, late := sim.Skew(arrExact)
	if stats.Leaves != int64(len(arrExact)) {
		t.Fatalf("stats cover %d leaves, slice has %d", stats.Leaves, len(arrExact))
	}
	if int(stats.MinLeaf) != early || int(stats.MaxLeaf) != late {
		t.Errorf("extreme leaves %d/%d, slice says %d/%d", stats.MinLeaf, stats.MaxLeaf, early, late)
	}
	if got := stats.Max - stats.Min; math.Float64bits(got) != math.Float64bits(skew) {
		t.Errorf("skew %v, slice says %v", got, skew)
	}
	var sum float64
	for _, a := range arrExact {
		sum += a
	}
	if math.Float64bits(stats.Sum) != math.Float64bits(sum) {
		t.Errorf("Sum = %v, leaf-order slice sum = %v", stats.Sum, sum)
	}
	// Stage 1 is scaled; leaf 0 (stage 1) and leaf 7 (stage 2) carry
	// loads. Stages 3 and 4 are identical → exactly one dedup.
	if stats.StagesSimulated != 4 || stats.StagesDeduped != 1 {
		t.Errorf("simulated/deduped = %d/%d, want 4/1", stats.StagesSimulated, stats.StagesDeduped)
	}
	if len(stats.Sample) != 8 {
		t.Errorf("reservoir holds %d samples, want 8", len(stats.Sample))
	}

	// The reservoir is a pure function of the walk: a second run keeps
	// the identical sample.
	again, err := tr.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	statsEqual(t, "repeat run", again, stats)
}

// TestNominalTreeDedup pins the headline economics: a nominal H-tree
// needs one transient per level, everything else is memo hits.
func TestNominalTreeDedup(t *testing.T) {
	tr := testTree(t, 3)
	stats, err := tr.Analyze(SimOptions{WithL: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leaves != 64 {
		t.Fatalf("leaves = %d", stats.Leaves)
	}
	if stats.StagesSimulated != 3 {
		t.Errorf("simulated %d transients for a nominal 3-level tree, want 3", stats.StagesSimulated)
	}
	if stats.StagesDeduped != 21-3 {
		t.Errorf("deduped = %d, want 18", stats.StagesDeduped)
	}
	if stats.Min <= 0 || stats.Max < stats.Min {
		t.Errorf("degenerate stats: min %v max %v", stats.Min, stats.Max)
	}
	// A nominal tree's sinks differ only by solver rounding noise.
	if skew := stats.Max - stats.Min; skew > 1e-12*stats.Max {
		t.Errorf("nominal tree skew %v is beyond rounding noise", skew)
	}
}

// TestSkewReportNamesLeaves checks satellite 2: SkewReport carries
// the same skew as the legacy path plus the extreme leaf indices.
func TestSkewReportNamesLeaves(t *testing.T) {
	tr := testTree(t, 2)
	opts := perturbedOpts()
	arr, err := tr.Arrivals(opts)
	if err != nil {
		t.Fatal(err)
	}
	skew, early, late := sim.Skew(arr)
	rep, err := tr.SkewReport(opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rep.Skew) != math.Float64bits(skew) {
		t.Errorf("SkewReport.Skew = %v, sim.Skew = %v", rep.Skew, skew)
	}
	if int(rep.MinLeaf) != early || int(rep.MaxLeaf) != late {
		t.Errorf("extremes %d/%d, want %d/%d", rep.MinLeaf, rep.MaxLeaf, early, late)
	}
	if rep.Leaves != int64(len(arr)) {
		t.Errorf("Leaves = %d, want %d", rep.Leaves, len(arr))
	}
	legacy, err := tr.Skew(opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(legacy) != math.Float64bits(rep.Skew) {
		t.Errorf("Skew() = %v, SkewReport().Skew = %v", legacy, rep.Skew)
	}
}

// TestCheckpointResumeBitIdentical is the crash-recovery pin: a run
// that checkpoints aggressively, then a second run resuming from the
// last mid-walk checkpoint, must produce bit-identical statistics to
// an uninterrupted run while re-simulating strictly fewer stages.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	tr := testTree(t, 2)
	opts := perturbedOpts()
	opts.SampleCap = 8
	ctx := context.Background()

	ref, err := tr.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store, err := tr.OpenCheckpoint(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	statsA, err := tr.AnalyzeCtx(ctx, opts, &Checkpoint{Store: store, EveryStages: 1})
	if err != nil {
		t.Fatal(err)
	}
	statsEqual(t, "checkpointing run", statsA, ref)
	if store.Seq() == 0 {
		t.Fatal("no checkpoints were written")
	}

	// Resume in a "new process": a fresh store over the same directory.
	store2, err := tr.OpenCheckpoint(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	simsBefore := treeStages.Value()
	statsB, err := tr.AnalyzeCtx(ctx, opts, &Checkpoint{Store: store2, EveryStages: 1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	statsEqual(t, "resumed run", statsB, ref)
	if statsB.ResumedSeq == 0 {
		t.Fatal("resumed run did not report a checkpoint sequence")
	}
	resimulated := treeStages.Value() - simsBefore
	if resimulated >= ref.StagesSimulated {
		t.Errorf("resumed run re-simulated %d stages, cold run needed %d", resimulated, ref.StagesSimulated)
	}
}

// TestResumeDegradesOnCorruptState plants a checksum-valid checkpoint
// whose payload is not walker state: resume must count it as corrupt
// and fall back to a clean cold start with correct results.
func TestResumeDegradesOnCorruptState(t *testing.T) {
	tr := testTree(t, 2)
	opts := SimOptions{WithL: true}
	ctx := context.Background()
	ref, err := tr.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	store, err := tr.OpenCheckpoint(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(ctx, []byte("not walker state at all")); err != nil {
		t.Fatal(err)
	}
	before := obs.GetCounter("ckpt.corrupt").Value()
	stats, err := tr.AnalyzeCtx(ctx, opts, &Checkpoint{Store: store, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if obs.GetCounter("ckpt.corrupt").Value() != before+1 {
		t.Error("undecodable state not counted as corrupt")
	}
	if stats.ResumedSeq != 0 {
		t.Errorf("run claims to have resumed from seq %d", stats.ResumedSeq)
	}
	statsEqual(t, "degraded run", stats, ref)
}

// TestAnalyzeRejectsForeignStore pins the job-key gate inside the
// walker itself: a store opened for different options must be refused
// before any state is read.
func TestAnalyzeRejectsForeignStore(t *testing.T) {
	tr := testTree(t, 2)
	optsA := SimOptions{WithL: true}
	optsB := SimOptions{WithL: false}
	store, err := tr.OpenCheckpoint(t.TempDir(), optsA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AnalyzeCtx(context.Background(), optsB, &Checkpoint{Store: store}); err == nil {
		t.Fatal("walker accepted a store keyed for different options")
	}
}

// TestJobKeyDiscriminates: equal inputs agree, any result-affecting
// change disagrees.
func TestJobKeyDiscriminates(t *testing.T) {
	tr := testTree(t, 2)
	base := SimOptions{WithL: true, SampleCap: 4}
	k1, err := tr.JobKey(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := tr.JobKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("same inputs produced different job keys")
	}
	variants := []SimOptions{
		{WithL: false, SampleCap: 4},
		{WithL: true, SampleCap: 5},
		{WithL: true, SampleCap: 4, Sections: 9},
		{WithL: true, SampleCap: 4, Scale: map[int][3]float64{2: {1.01, 1, 1}}},
		{WithL: true, SampleCap: 4, LeafLoadScale: map[int]float64{3: 1.5}},
		{WithL: true, SampleCap: 4, NoStageDedup: true},
	}
	for i, v := range variants {
		kv, err := tr.JobKey(v)
		if err != nil {
			t.Fatal(err)
		}
		if kv == k1 {
			t.Errorf("variant %d collides with the base job key", i)
		}
	}
	// Different geometry must re-key too.
	tr2 := testTree(t, 3)
	k3, err := tr2.JobKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different trees share a job key")
	}
}

// TestCheckpointAuditCatchesBadStats: a well-checksummed checkpoint
// whose statistics violate their own invariants (min > max) must be
// rejected under -check strict, naming the checkpoint stage.
func TestCheckpointAuditCatchesBadStats(t *testing.T) {
	tr := testTree(t, 2)
	opts := SimOptions{WithL: true}
	store, err := tr.OpenCheckpoint(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	bad := &walker{levels: 2, opts: opts}
	bad.stats.Leaves = 4
	bad.stats.Min = 5e-12
	bad.stats.Max = 1e-12 // min > max: impossible
	bad.stats.Hist[0] = 4
	bad.stack = []frame{{level: 0, next: 1}}
	if _, err := store.Save(context.Background(), bad.encodeState()); err != nil {
		t.Fatal(err)
	}

	check.SetPolicy(check.Strict)
	defer check.SetPolicy(check.Off)
	_, err = tr.AnalyzeCtx(context.Background(), opts, &Checkpoint{Store: store, Resume: true})
	if !errors.Is(err, check.ErrViolation) {
		t.Fatalf("want a strict check violation, got %v", err)
	}
	var v *check.Violation
	if !errors.As(err, &v) || v.Stage != check.StageCheckpoint {
		t.Fatalf("violation not attributed to the checkpoint stage: %v", err)
	}

	// Under warn the same checkpoint is counted but the run proceeds
	// (and, with consistent remaining state, completes).
	check.SetPolicy(check.Warn)
	before := check.StageViolations(check.StageCheckpoint)
	if _, err := tr.AnalyzeCtx(context.Background(), opts, &Checkpoint{Store: store, Resume: true}); err != nil {
		t.Fatalf("warn policy must not abort the run: %v", err)
	}
	if check.StageViolations(check.StageCheckpoint) <= before {
		t.Error("warn policy did not count the violation")
	}
}

// settleGoroutines waits for the goroutine count to return to the
// baseline (plus slack for the runtime's own workers).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.Gosched()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines did not settle: %d, baseline %d", n, baseline)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestArrivalsCancellationLeakFree pins satellite 3: cancelling a
// mid-tree walk returns promptly with the context error and leaks no
// goroutines.
func TestArrivalsCancellationLeakFree(t *testing.T) {
	tr := testTree(t, 3)
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(5*time.Millisecond, cancel)
	start := time.Now()
	_, err := tr.ArrivalsCtx(ctx, SimOptions{WithL: true, NoStageDedup: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancellation took %v to unwind", d)
	}
	settleGoroutines(t, baseline)
}

// TestCancelInsideCheckpointWrite pins the harder half of satellite
// 3: cancellation arriving while a checkpoint write is in flight
// (injected latency at ckpt.write) still unwinds promptly and
// leak-free.
func TestCancelInsideCheckpointWrite(t *testing.T) {
	tr := testTree(t, 2)
	opts := perturbedOpts()
	store, err := tr.OpenCheckpoint(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	fault.Register(fault.NewInjector(7, fault.Rule{
		Point: fault.CkptWrite, Mode: fault.ModeLatency, Prob: 1, Delay: 150 * time.Millisecond,
	}))
	defer fault.Reset()

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	// Fires while the first (slowed) checkpoint save is sleeping.
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	_, err = tr.AnalyzeCtx(ctx, opts, &Checkpoint{Store: store, EveryStages: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v to unwind", d)
	}
	settleGoroutines(t, baseline)
}

// TestCheckpointSaveFailureDegrades: an injected write error must not
// stop the analysis — it is counted and the job completes correctly.
func TestCheckpointSaveFailureDegrades(t *testing.T) {
	tr := testTree(t, 2)
	opts := SimOptions{WithL: true}
	ref, err := tr.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	store, err := tr.OpenCheckpoint(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	fault.Register(fault.NewInjector(7, fault.Rule{
		Point: fault.CkptWrite, Mode: fault.ModeError, Prob: 1,
	}))
	defer fault.Reset()
	before := ckptSaveFails.Value()
	stats, err := tr.AnalyzeCtx(context.Background(), opts, &Checkpoint{Store: store, EveryStages: 1})
	if err != nil {
		t.Fatalf("analysis must survive checkpoint write failures: %v", err)
	}
	statsEqual(t, "save-degraded run", stats, ref)
	if ckptSaveFails.Value() <= before {
		t.Error("failed saves not counted")
	}
	if store.Seq() != 0 {
		t.Errorf("store advanced to seq %d despite injected failures", store.Seq())
	}
}

// TestStateCodecRoundTrip round-trips a populated walker through the
// binary codec.
func TestStateCodecRoundTrip(t *testing.T) {
	w := &walker{levels: 3, opts: SimOptions{SampleCap: 4}}
	w.stats = ArrivalStats{
		Leaves: 7, Min: 1e-12, Max: 9e-12, MinLeaf: 2, MaxLeaf: 5,
		Sum: 3.5e-11, SumSq: 4e-22,
		Sample:          []float64{1e-12, 2e-12},
		StagesSimulated: 3, StagesDeduped: 9,
	}
	w.stats.Hist[histBucket(1e-12)] = 7
	w.memo = map[stageSig][4]float64{
		{level: 1, scale: nominalScale, loads: nominalLoads}: {1, 2, 3, 4},
		{level: 2, scale: [3]float64{1.1, 1, 1}, loads: [4]float64{1, 2, 1, 1}}: {5, 6, 7, 8},
	}
	w.stack = []frame{
		{level: 0, next: 2, id: 0, base: 0, arrival: 1e-12, delays: [4]float64{1, 2, 3, 4}},
		{level: 1, next: 0, id: 2, base: 16, arrival: 2e-12, delays: [4]float64{5, 6, 7, 8}},
	}
	payload := w.encodeState()

	r := &walker{levels: 3, opts: SimOptions{SampleCap: 4}, memo: map[stageSig][4]float64{}}
	if err := r.decodeState(payload); err != nil {
		t.Fatal(err)
	}
	statsEqual(t, "round trip", &r.stats, &w.stats)
	if len(r.memo) != len(w.memo) {
		t.Fatalf("memo size %d, want %d", len(r.memo), len(w.memo))
	}
	for sig, d := range w.memo {
		if r.memo[sig] != d {
			t.Errorf("memo[%+v] = %v, want %v", sig, r.memo[sig], d)
		}
	}
	if len(r.stack) != 2 || r.stack[0] != w.stack[0] || r.stack[1] != w.stack[1] {
		t.Errorf("stack mismatch: %+v", r.stack)
	}

	// Shape attacks must fail cleanly, not panic.
	bad := [][]byte{
		nil,
		payload[:5],
		payload[:len(payload)-3],
		append(append([]byte{}, payload...), 0),
	}
	for i, p := range bad {
		r := &walker{levels: 3, opts: SimOptions{SampleCap: 4}}
		if err := r.decodeState(p); err == nil {
			t.Errorf("malformed payload %d decoded without error", i)
		}
	}
	// A frame claiming a level outside this tree must be rejected.
	deep := &walker{levels: 9, opts: SimOptions{SampleCap: 4}}
	deep.stack = []frame{{level: 7, next: 1}}
	shallow := &walker{levels: 2, opts: SimOptions{SampleCap: 4}}
	if err := shallow.decodeState(deep.encodeState()); err == nil {
		t.Error("frame level beyond tree depth decoded without error")
	}
}
