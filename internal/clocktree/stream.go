// Streaming tree analysis: a depth-first walk over the stage tree
// that keeps O(levels) state instead of O(4^levels), memoizes
// identical stage instances so a nominal million-sink tree costs ~10
// transients, and (optionally) checkpoints its exact position so a
// SIGKILL resumes instead of restarting.
//
// Bit-identity with the legacy breadth-first walk is load-bearing and
// rests on three facts, each pinned by a test:
//
//  1. Stage ids use heap numbering — stage k's children are
//     4k+1..4k+4 — which reproduces the BFS sequential ids, so
//     SimOptions.Scale keys mean the same stages.
//  2. A depth-first pre-order visits the leaf stages left to right,
//     which is exactly the order BFS pops them, so leaves are
//     observed (and, for ArrivalsCtx, appended) in the same order
//     with the same float operations.
//  3. Identical inputs give bit-identical transients, so replacing a
//     duplicate simulation with a memoized result cannot change any
//     arrival; SimOptions.NoStageDedup forces the exact walk to prove
//     it.

package clocktree

import (
	"context"
	"fmt"
	"math"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/ckpt"
	"clockrlc/internal/obs"
)

var (
	stagesDeduped = obs.GetCounter("clocktree.stages_deduped")
	// ckptResumes counts checkpoints that actually seeded a walk (the
	// store counts saves/corruption; resuming is the walker's act).
	ckptResumes = obs.GetCounter("ckpt.resumes")
	// ckptSaveFails counts checkpoint saves that failed and were
	// degraded past (the job keeps running; it just risks redoing work
	// after a crash).
	ckptSaveFails = obs.GetCounter("clocktree.ckpt_save_failures")
	// ckptCorruptState counts checkpoints whose record validated but
	// whose payload failed to decode as walker state. Shares the name
	// of the store's counter on purpose: both are "a checkpoint existed
	// and could not be trusted".
	ckptCorruptState = obs.GetCounter("ckpt.corrupt")
)

// histBuckets is the fixed size of ArrivalStats.Hist: 12 decades from
// 1e-13 s at 8 buckets per decade, spanning everything from
// sub-picosecond repeater stages to absurd microsecond arrivals.
const histBuckets = 96

// ArrivalStats is the bounded-memory summary Analyze produces in
// place of the 4^levels arrivals slice. All fields accumulate in leaf
// H-order, so a checkpointed-and-resumed run produces bit-identical
// values to an uninterrupted one.
type ArrivalStats struct {
	// Leaves observed so far (4^levels when the walk completed).
	Leaves int64
	// Min/Max arrival in seconds, with the H-order indices of the
	// leaves that set them (first occurrence on ties — the same
	// semantics as sim.Skew over the full slice).
	Min, Max         float64
	MinLeaf, MaxLeaf int64
	// Sum and SumSq accumulate Σat and Σat² for mean and variance.
	Sum, SumSq float64
	// Hist is a log-scale arrival histogram: bucket
	// ⌊(log10(at)+13)·8⌋ clamped to [0, 95] — 8 buckets per decade
	// from 1e-13 s. Non-positive arrivals land in bucket 0.
	Hist [histBuckets]int64
	// Sample is a deterministic reservoir of at most
	// SimOptions.SampleCap raw arrivals — the same leaves are kept
	// regardless of checkpoint/resume schedule.
	Sample []float64
	// StagesSimulated and StagesDeduped split the stage-instance count
	// into transients actually run and memo hits.
	StagesSimulated, StagesDeduped int64
	// ResumedSeq is the checkpoint sequence number this run resumed
	// from (0 = cold start).
	ResumedSeq uint64
}

// Mean returns the mean arrival in seconds (0 before any leaf).
func (s *ArrivalStats) Mean() float64 {
	if s.Leaves == 0 {
		return 0
	}
	return s.Sum / float64(s.Leaves)
}

// Std returns the population standard deviation of the arrivals.
func (s *ArrivalStats) Std() float64 {
	if s.Leaves == 0 {
		return 0
	}
	m := s.Mean()
	v := s.SumSq/float64(s.Leaves) - m*m
	if v < 0 {
		v = 0 // guard the subtraction's rounding
	}
	return math.Sqrt(v)
}

// SkewReport reduces the stats to the named-extremes skew report.
func (s *ArrivalStats) SkewReport() SkewReport {
	return SkewReport{
		Skew:       s.Max - s.Min,
		MinArrival: s.Min,
		MaxArrival: s.Max,
		MinLeaf:    s.MinLeaf,
		MaxLeaf:    s.MaxLeaf,
		Leaves:     s.Leaves,
	}
}

// histBucket maps an arrival to its histogram bucket. The !(at > 0)
// form routes NaN (never produced by a healthy sim, but a checkpoint
// is untrusted input) to bucket 0 instead of an undefined conversion.
func histBucket(at float64) int {
	if !(at > 0) {
		return 0
	}
	b := int(math.Floor((math.Log10(at) + 13) * 8))
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// splitmix64 is the reservoir's deterministic position source: a pure
// function of the leaf ordinal, so the kept sample is identical at
// any checkpoint/resume schedule (same mixer as internal/fault).
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Checkpoint configures durable progress saving for AnalyzeCtx.
type Checkpoint struct {
	// Store is the job-keyed store to save into; its key must match
	// the tree/options job key (use Tree.OpenCheckpoint).
	Store *ckpt.Store
	// EveryStages saves after this many newly *simulated* stages
	// (default 16). Memo hits are arithmetic and don't trigger saves
	// on their own; the time trigger covers long dedup-only phases.
	EveryStages int
	// Every saves after this much wall time even if no stage was
	// simulated (default 30s; the walk checks the clock every few
	// hundred visits, so this is approximate).
	Every time.Duration
	// Resume loads the newest valid checkpoint before walking. A
	// corrupt, missing, or wrong-job checkpoint degrades to a cold
	// start — never a wrong answer.
	Resume bool
}

func (c *Checkpoint) everyStages() int {
	if c.EveryStages <= 0 {
		return 16
	}
	return c.EveryStages
}

func (c *Checkpoint) every() time.Duration {
	if c.Every <= 0 {
		return 30 * time.Second
	}
	return c.Every
}

// stageSig is everything a stage transient's result depends on beyond
// the tree itself: the level (geometry), the per-stage RCL scale
// perturbation, and the four sink load multipliers. Two stage
// instances with equal signatures simulate bit-identically.
type stageSig struct {
	level int32
	scale [3]float64
	loads [4]float64
}

// frame is one level of the depth-first walk: a stage whose four sink
// delays are known and whose subtrees are being visited. next is the
// first unvisited sink (4 = done). base is the H-order index of the
// first leaf under this stage's subtree.
type frame struct {
	level   int32
	next    int32
	id      int64
	base    int64
	arrival float64
	delays  [4]float64
}

// walker is the streaming walk's full state. Everything here (minus
// the derived fields) round-trips through the checkpoint codec in
// state.go.
type walker struct {
	tree *Tree
	opts SimOptions
	// levels and childLeaves are derived: childLeaves[l] is the leaf
	// count of one child subtree of a level-l stage, 4^(levels−l−1).
	levels      int
	childLeaves []int64

	memo  map[stageSig][4]float64
	stack []frame
	stats ArrivalStats

	// observed counts leaves seen by *this process* (a resumed run
	// inherits stats.Leaves but not observed) for the metrics counter.
	observed int64
}

// stageDelays returns the four sink delays of a stage instance,
// simulating on a memo miss.
func (w *walker) stageDelays(ctx context.Context, level int, id int64, base int64) ([4]float64, error) {
	scale := nominalScale
	if sc, ok := w.opts.Scale[int(id)]; ok {
		scale = sc
	}
	loads := nominalLoads
	if level == w.levels-1 && len(w.opts.LeafLoadScale) > 0 {
		for i := 0; i < 4; i++ {
			if sc, ok := w.opts.LeafLoadScale[int(base)+i]; ok {
				loads[i] = sc
			}
		}
	}
	sig := stageSig{level: int32(level), scale: scale, loads: loads}
	if !w.opts.NoStageDedup {
		if d, ok := w.memo[sig]; ok {
			w.stats.StagesDeduped++
			stagesDeduped.Inc()
			return d, nil
		}
	}
	d, err := w.tree.simulateStage(ctx, level, id, w.opts, scale, loads)
	if err != nil {
		return d, err
	}
	w.stats.StagesSimulated++
	if !w.opts.NoStageDedup {
		w.memo[sig] = d
	}
	return d, nil
}

// observe folds one leaf arrival into the running statistics.
func (w *walker) observe(leaf int64, at float64) {
	s := &w.stats
	if s.Leaves == 0 || at < s.Min {
		s.Min, s.MinLeaf = at, leaf
	}
	if s.Leaves == 0 || at > s.Max {
		s.Max, s.MaxLeaf = at, leaf
	}
	s.Leaves++
	s.Sum += at
	s.SumSq += at * at
	s.Hist[histBucket(at)]++
	if cap := w.opts.SampleCap; cap > 0 {
		if len(s.Sample) < cap {
			s.Sample = append(s.Sample, at)
		} else if j := splitmix64(uint64(s.Leaves)) % uint64(s.Leaves); j < uint64(cap) {
			s.Sample[j] = at
		}
	}
	w.observed++
}

// auditResumed validates restored statistics under the process check
// policy (check.StageCheckpoint): the checksum already proved the
// bytes are what was written, this proves the values are a plausible
// mid-walk state before the job accumulates hours of work onto them.
func auditResumed(st *ArrivalStats, stackLen int, seq uint64) error {
	eng := check.Active()
	if !eng.Armed() {
		return nil
	}
	subject := fmt.Sprintf("checkpoint seq %d", seq)
	report := func(inv, detail string) error {
		return eng.Report(&check.Violation{
			Stage: check.StageCheckpoint, Invariant: inv,
			Subject: subject, Detail: detail,
		})
	}
	if st.Leaves < 0 || st.StagesSimulated < 0 || st.StagesDeduped < 0 {
		if err := report("counts are non-negative", fmt.Sprintf("leaves=%d simulated=%d deduped=%d", st.Leaves, st.StagesSimulated, st.StagesDeduped)); err != nil {
			return err
		}
	}
	if st.Leaves > 0 && !(st.Min <= st.Max) {
		if err := report("min ≤ max", fmt.Sprintf("min=%g max=%g", st.Min, st.Max)); err != nil {
			return err
		}
	}
	if math.IsNaN(st.Sum) || math.IsInf(st.Sum, 0) || math.IsNaN(st.SumSq) || math.IsInf(st.SumSq, 0) || st.SumSq < 0 {
		if err := report("sums are finite", fmt.Sprintf("sum=%g sumsq=%g", st.Sum, st.SumSq)); err != nil {
			return err
		}
	}
	var histTotal int64
	for _, n := range st.Hist {
		histTotal += n
	}
	if histTotal != st.Leaves {
		if err := report("histogram mass equals leaf count", fmt.Sprintf("hist=%d leaves=%d", histTotal, st.Leaves)); err != nil {
			return err
		}
	}
	if st.Leaves > 0 && stackLen == 0 {
		if err := report("mid-walk state has a frontier", fmt.Sprintf("leaves=%d stack=0", st.Leaves)); err != nil {
			return err
		}
	}
	return nil
}

// analyzeStream is the one walk behind ArrivalsCtx, AnalyzeCtx and
// SkewReportCtx. With keep it also materialises the arrivals slice
// (the legacy API); ck, when non-nil, adds durable checkpointing.
func (t *Tree) analyzeStream(ctx context.Context, opts SimOptions, ck *Checkpoint, keep bool) (*ArrivalStats, []float64, error) {
	ctx, sp := obs.StartCtx(ctx, "clocktree.arrivals")
	defer sp.End()
	levels := len(t.Levels)
	sp.SetAttr("levels", levels)
	if levels > 30 {
		return nil, nil, fmt.Errorf("clocktree: %d levels overflows leaf indexing", levels)
	}
	opts = opts.withDefaults(t.Buffer)

	w := &walker{tree: t, opts: opts, levels: levels}
	w.childLeaves = make([]int64, levels)
	perChild := int64(1)
	for l := levels - 1; l >= 0; l-- {
		w.childLeaves[l] = perChild
		perChild *= 4
	}
	totalLeaves := perChild // 4^levels
	if !opts.NoStageDedup {
		w.memo = make(map[stageSig][4]float64)
	}

	var arrivals []float64
	if keep {
		arrivals = make([]float64, 0, totalLeaves)
	}

	resumed := false
	if ck != nil && ck.Store != nil {
		key, err := t.JobKey(opts)
		if err != nil {
			return nil, nil, err
		}
		if key != ck.Store.Key() {
			return nil, nil, fmt.Errorf("clocktree: checkpoint store was opened for a different job (use Tree.OpenCheckpoint with the same options)")
		}
		if ck.Resume {
			payload, seq, err := ck.Store.Latest(ctx)
			switch {
			case err == nil:
				if derr := w.decodeState(payload); derr != nil {
					// Checksum-valid bytes that don't decode as walker
					// state: treat exactly like a corrupt record —
					// count it and start cold.
					ckptCorruptState.Inc()
					*w = walker{tree: t, opts: opts, levels: w.levels, childLeaves: w.childLeaves}
					if !opts.NoStageDedup {
						w.memo = make(map[stageSig][4]float64)
					}
				} else {
					if aerr := auditResumed(&w.stats, len(w.stack), seq); aerr != nil {
						return nil, nil, aerr
					}
					w.stats.ResumedSeq = seq
					resumed = true
					ckptResumes.Inc()
				}
			case err == ckpt.ErrNoCheckpoint:
				// Cold start.
			default:
				return nil, nil, err
			}
		}
	}
	sp.SetAttr("resumed_seq", w.stats.ResumedSeq)

	if keep && resumed {
		// The legacy slice API never checkpoints (ArrivalsCtx passes
		// ck = nil); a resumed walk cannot reconstruct already-observed
		// arrivals, so refuse rather than return a hole-y slice.
		return nil, nil, fmt.Errorf("clocktree: cannot resume into a materialised arrivals walk")
	}

	if !resumed {
		d, err := w.stageDelays(ctx, 0, 0, 0)
		if err != nil {
			return nil, nil, err
		}
		w.stack = append(w.stack, frame{level: 0, id: 0, base: 0, arrival: t.Buffer.IntrinsicDelay, delays: d})
	}

	simAtLastSave := w.stats.StagesSimulated
	lastSave := time.Now()
	visits := 0
	for len(w.stack) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		f := &w.stack[len(w.stack)-1]
		if f.next == 4 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		i := int(f.next)
		f.next++
		at := f.arrival + f.delays[i]
		if int(f.level) == levels-1 {
			w.observe(f.base+int64(i), at)
			if keep {
				arrivals = append(arrivals, at)
			}
		} else {
			childID := 4*f.id + int64(i) + 1
			childBase := f.base + int64(i)*w.childLeaves[f.level]
			childLevel := int(f.level) + 1
			// f is invalid after the append below (stack may regrow);
			// next was already advanced, so nothing else reads it.
			d, err := w.stageDelays(ctx, childLevel, childID, childBase)
			if err != nil {
				return nil, nil, err
			}
			w.stack = append(w.stack, frame{
				level:   int32(childLevel),
				id:      childID,
				base:    childBase,
				arrival: at + t.Buffer.IntrinsicDelay,
				delays:  d,
			})
		}
		visits++
		if ck != nil && ck.Store != nil {
			due := w.stats.StagesSimulated-simAtLastSave >= int64(ck.everyStages())
			if !due && visits%512 == 0 && time.Since(lastSave) >= ck.every() {
				due = true
			}
			if due {
				if _, err := ck.Store.Save(ctx, w.encodeState()); err != nil {
					if cerr := ctx.Err(); cerr != nil {
						return nil, nil, cerr
					}
					// A failed save never stops the job — it only
					// costs re-simulation after a crash.
					ckptSaveFails.Inc()
				}
				simAtLastSave = w.stats.StagesSimulated
				lastSave = time.Now()
			}
		}
	}

	if w.stats.Leaves != totalLeaves {
		return nil, nil, fmt.Errorf("clocktree: observed %d leaves, expected %d", w.stats.Leaves, totalLeaves)
	}
	treeLeaves.Add(w.observed)
	sp.SetAttr("simulated", w.stats.StagesSimulated)
	sp.SetAttr("deduped", w.stats.StagesDeduped)
	sp.SetAttr("stage_memo", len(w.memo))
	return &w.stats, arrivals, nil
}
