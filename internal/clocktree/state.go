// Checkpoint payload codec: the walker's resumable state — running
// statistics, stage memo, depth-first frontier — as a little-endian
// binary blob. The ckpt record envelope already authenticates the
// bytes (SHA-256) and scopes them to a job key; this codec only has
// to be unambiguous and defensive about *shape* (a decode of a
// well-checksummed but foreign or future-format payload must fail
// cleanly, never panic or allocate absurdly).

package clocktree

import (
	"encoding/binary"
	"fmt"
	"math"
)

const (
	// stateVersion is bumped whenever the walker state layout changes;
	// a mismatch degrades to a cold start (counted as ckpt.corrupt).
	stateVersion = 1
	// Decode bounds: far above anything a real walk produces (the memo
	// holds one entry per *distinct* stage signature, the stack one
	// frame per level) but small enough that a corrupt length cannot
	// ask for gigabytes.
	maxMemoEntries   = 1 << 22
	maxStackFrames   = 4096
	maxSampleEntries = 1 << 22
)

type stateWriter struct{ buf []byte }

func (w *stateWriter) u32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}
func (w *stateWriter) i64(v int64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v))
}
func (w *stateWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

type stateReader struct {
	buf []byte
	off int
	err error
}

func (r *stateReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("clocktree: checkpoint state truncated at offset %d", r.off)
		return false
	}
	return true
}
func (r *stateReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}
func (r *stateReader) i64() int64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return int64(v)
}
func (r *stateReader) f64() float64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(v)
}

// encodeState serialises the walker's resumable state. ResumedSeq and
// the per-process observed counter are deliberately not persisted:
// both describe the *run*, not the job.
func (w *walker) encodeState() []byte {
	sw := &stateWriter{buf: make([]byte, 0,
		4+ // version
			(9+histBuckets)*8+ // stats
			4+len(w.stats.Sample)*8+
			4+len(w.memo)*(4+11*8)+
			4+len(w.stack)*(8+2*8+1*8+4*8))}
	sw.u32(stateVersion)
	s := &w.stats
	sw.i64(s.Leaves)
	sw.f64(s.Min)
	sw.f64(s.Max)
	sw.i64(s.MinLeaf)
	sw.i64(s.MaxLeaf)
	sw.f64(s.Sum)
	sw.f64(s.SumSq)
	sw.i64(s.StagesSimulated)
	sw.i64(s.StagesDeduped)
	for _, n := range s.Hist {
		sw.i64(n)
	}
	sw.u32(uint32(len(s.Sample)))
	for _, v := range s.Sample {
		sw.f64(v)
	}
	sw.u32(uint32(len(w.memo)))
	for sig, d := range w.memo {
		sw.u32(uint32(sig.level))
		for _, v := range sig.scale {
			sw.f64(v)
		}
		for _, v := range sig.loads {
			sw.f64(v)
		}
		for _, v := range d {
			sw.f64(v)
		}
	}
	sw.u32(uint32(len(w.stack)))
	for _, f := range w.stack {
		sw.u32(uint32(f.level))
		sw.u32(uint32(f.next))
		sw.i64(f.id)
		sw.i64(f.base)
		sw.f64(f.arrival)
		for _, v := range f.delays {
			sw.f64(v)
		}
	}
	return sw.buf
}

// decodeState restores the walker from an encodeState payload,
// validating every count and index against the walker's own tree
// shape. Any failure leaves the walker unusable — the caller resets
// it and starts cold.
func (w *walker) decodeState(payload []byte) error {
	r := &stateReader{buf: payload}
	if v := r.u32(); r.err == nil && v != stateVersion {
		return fmt.Errorf("clocktree: checkpoint state version %d, want %d", v, stateVersion)
	}
	s := &w.stats
	s.Leaves = r.i64()
	s.Min = r.f64()
	s.Max = r.f64()
	s.MinLeaf = r.i64()
	s.MaxLeaf = r.i64()
	s.Sum = r.f64()
	s.SumSq = r.f64()
	s.StagesSimulated = r.i64()
	s.StagesDeduped = r.i64()
	for i := range s.Hist {
		s.Hist[i] = r.i64()
	}
	nSample := r.u32()
	if r.err == nil && nSample > maxSampleEntries {
		return fmt.Errorf("clocktree: checkpoint sample count %d out of range", nSample)
	}
	if r.err == nil && w.opts.SampleCap >= 0 && int(nSample) > w.opts.SampleCap {
		return fmt.Errorf("clocktree: checkpoint holds %d samples, options cap %d", nSample, w.opts.SampleCap)
	}
	if nSample > 0 && r.err == nil {
		s.Sample = make([]float64, nSample)
		for i := range s.Sample {
			s.Sample[i] = r.f64()
		}
	}
	nMemo := r.u32()
	if r.err == nil && nMemo > maxMemoEntries {
		return fmt.Errorf("clocktree: checkpoint memo count %d out of range", nMemo)
	}
	if nMemo > 0 && r.err == nil && w.memo == nil {
		w.memo = make(map[stageSig][4]float64, nMemo)
	}
	for i := uint32(0); i < nMemo && r.err == nil; i++ {
		var sig stageSig
		sig.level = int32(r.u32())
		for j := range sig.scale {
			sig.scale[j] = r.f64()
		}
		for j := range sig.loads {
			sig.loads[j] = r.f64()
		}
		var d [4]float64
		for j := range d {
			d[j] = r.f64()
		}
		if r.err != nil {
			break
		}
		if sig.level < 0 || int(sig.level) >= w.levels {
			return fmt.Errorf("clocktree: checkpoint memo entry at level %d of a %d-level tree", sig.level, w.levels)
		}
		if w.memo != nil {
			w.memo[sig] = d
		}
	}
	nStack := r.u32()
	if r.err == nil && nStack > maxStackFrames {
		return fmt.Errorf("clocktree: checkpoint stack depth %d out of range", nStack)
	}
	if nStack > 0 && r.err == nil {
		w.stack = make([]frame, 0, nStack)
	}
	for i := uint32(0); i < nStack && r.err == nil; i++ {
		var f frame
		f.level = int32(r.u32())
		f.next = int32(r.u32())
		f.id = r.i64()
		f.base = r.i64()
		f.arrival = r.f64()
		for j := range f.delays {
			f.delays[j] = r.f64()
		}
		if r.err != nil {
			break
		}
		if f.level < 0 || int(f.level) >= w.levels {
			return fmt.Errorf("clocktree: checkpoint frame at level %d of a %d-level tree", f.level, w.levels)
		}
		if f.next < 0 || f.next > 4 {
			return fmt.Errorf("clocktree: checkpoint frame with next = %d", f.next)
		}
		if f.id < 0 || f.base < 0 {
			return fmt.Errorf("clocktree: checkpoint frame with negative id/base (%d, %d)", f.id, f.base)
		}
		w.stack = append(w.stack, f)
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("clocktree: checkpoint state has %d trailing bytes", len(r.buf)-r.off)
	}
	if s.Leaves < 0 {
		return fmt.Errorf("clocktree: checkpoint leaf count %d negative", s.Leaves)
	}
	return nil
}
