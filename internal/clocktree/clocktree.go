// Package clocktree implements Section V of the paper: RLC extraction
// and skew simulation of a buffered H-tree clock distribution network
// (Fig. 7), with each wire segment realised as a shielded building
// block — coplanar waveguide (Fig. 8) or microstrip (Fig. 9) — and the
// passive portion between buffer levels formulated as cascaded
// RLC-segment ladders using the table-based loop inductances.
//
// The clock buffers follow the paper's driver model: a Thevenin source
// (series resistance, the "about 40 ohm" of Fig. 1) launching a ramp,
// plus an input capacitance loading the upstream stage and an
// intrinsic delay. Stages are linear, so the tree is simulated stage
// by stage and arrivals accumulate along root-to-leaf paths.
package clocktree

import (
	"context"
	"errors"
	"fmt"

	"clockrlc/internal/core"
	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
	"clockrlc/internal/sim"
)

// H-tree simulation accounting: stages are the unit of transient work
// (one MNA run each), leaves the unit of skew statistics.
var (
	treeStages = obs.GetCounter("clocktree.stages")
	treeLeaves = obs.GetCounter("clocktree.leaves")
)

// Buffer is the clock buffer model.
type Buffer struct {
	// DriveRes is the Thevenin output resistance in Ω.
	DriveRes float64
	// InputCap is the capacitance a buffer input presents, in F.
	InputCap float64
	// IntrinsicDelay is added per buffer stage, in s.
	IntrinsicDelay float64
	// OutSlew is the output ramp's 0–100 % rise time, in s.
	OutSlew float64
}

// Validate checks the buffer model.
func (b Buffer) Validate() error {
	if b.DriveRes <= 0 || b.InputCap <= 0 || b.OutSlew <= 0 || b.IntrinsicDelay < 0 {
		return fmt.Errorf("clocktree: buffer fields out of range: %+v", b)
	}
	return nil
}

// Level describes the wire geometry of one buffer level's H: the
// trunk runs from the driving buffer sideways to the two split points,
// the arms from each split point to the four receiving buffers.
type Level struct {
	TrunkLen, ArmLen float64
	Segment          core.Segment // Length is ignored; widths/spacing/shielding used
}

// Tree is a buffered H-tree clock network.
type Tree struct {
	Levels []Level
	Buffer Buffer
	Ext    *core.Extractor
}

// NewTree assembles and validates a tree.
func NewTree(levels []Level, buf Buffer, ext *core.Extractor) (*Tree, error) {
	if len(levels) == 0 {
		return nil, errors.New("clocktree: need at least one level")
	}
	if err := buf.Validate(); err != nil {
		return nil, err
	}
	if ext == nil {
		return nil, errors.New("clocktree: nil extractor")
	}
	for i, l := range levels {
		if l.TrunkLen <= 0 || l.ArmLen <= 0 {
			return nil, fmt.Errorf("clocktree: level %d has non-positive wire lengths", i)
		}
		s := l.Segment
		s.Length = l.TrunkLen
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("clocktree: level %d: %w", i, err)
		}
	}
	return &Tree{Levels: levels, Buffer: buf, Ext: ext}, nil
}

// HTreeLevels builds a classic H-tree level stack for a die of the
// given half-span: level ℓ's trunk reaches halfSpan/2^ℓ and its arms
// half of that, halving each level. All levels share the segment
// profile (widths typically taper in real designs; callers can edit
// the returned slice).
func HTreeLevels(halfSpan float64, nLevels int, seg core.Segment) []Level {
	levels := make([]Level, nLevels)
	span := halfSpan
	for i := range levels {
		levels[i] = Level{TrunkLen: span, ArmLen: span / 2, Segment: seg}
		span /= 2
	}
	return levels
}

// SimOptions controls a tree simulation.
type SimOptions struct {
	// WithL selects the RLC netlist; false extracts RC only (the
	// paper's comparison baseline).
	WithL bool
	// Sections per segment ladder (default 6).
	Sections int
	// TimeStep and Horizon for each stage transient (defaults
	// OutSlew/100 and 40·OutSlew).
	TimeStep, Horizon float64
	// Scale optionally perturbs a stage instance's extracted R, C and
	// L by the given multipliers (process variation). The paper's
	// proposal keeps L at 1 while R and C vary; setting the third
	// entry exercises the full variation for comparison. Indexed by
	// stage instance id as produced by Arrivals; nil means nominal
	// everywhere.
	Scale map[int][3]float64
	// LeafLoadScale optionally scales the load capacitance of
	// individual leaves (keyed by leaf index) to model sink load
	// imbalance.
	LeafLoadScale map[int]float64
}

func (o SimOptions) withDefaults(buf Buffer) SimOptions {
	if o.Sections <= 0 {
		o.Sections = 6
	}
	if o.TimeStep <= 0 {
		o.TimeStep = buf.OutSlew / 100
	}
	if o.Horizon <= 0 {
		o.Horizon = 40 * buf.OutSlew
	}
	return o
}

// stageDelays simulates one buffer stage: the driver at the H centre,
// two trunk ladders, four arm ladders, four sink loads. It returns
// the four sink 50 % arrival times measured from the stage's launch.
func (t *Tree) stageDelays(ctx context.Context, levelIdx, stageID int, opts SimOptions, leafBase int, isLeaf bool) ([4]float64, error) {
	var delays [4]float64
	ctx, sp := obs.StartCtx(ctx, "clocktree.stage")
	defer sp.End()
	sp.SetAttr("level", levelIdx)
	sp.SetAttr("stage", stageID)
	treeStages.Inc()
	lv := t.Levels[levelIdx]
	nl := netlist.New()
	nl.AddV("vsrc", "drv", netlist.Ground, netlist.Ramp{V0: 0, V1: 1, Start: opts.TimeStep, Rise: t.Buffer.OutSlew})
	nl.AddR("rdrv", "drv", "r", t.Buffer.DriveRes)

	extract := func(length float64) (netlist.SegmentRLC, error) {
		s := lv.Segment
		s.Length = length
		var rlc netlist.SegmentRLC
		var err error
		if opts.WithL {
			rlc, err = t.Ext.SegmentRLCCtx(ctx, s)
		} else {
			rlc, err = t.Ext.SegmentRCOnlyCtx(ctx, s)
		}
		if err != nil {
			return rlc, err
		}
		if sc, ok := opts.Scale[stageID]; ok {
			rlc.R *= sc[0]
			rlc.C *= sc[1]
			rlc.L *= sc[2]
		}
		return rlc, nil
	}
	trunk, err := extract(lv.TrunkLen)
	if err != nil {
		return delays, err
	}
	arm, err := extract(lv.ArmLen)
	if err != nil {
		return delays, err
	}
	if _, err := nl.AddLadder("tl", "r", "L", trunk, opts.Sections); err != nil {
		return delays, err
	}
	if _, err := nl.AddLadder("tr", "r", "R", trunk, opts.Sections); err != nil {
		return delays, err
	}
	sinks := []string{"s0", "s1", "s2", "s3"}
	splits := []string{"L", "L", "R", "R"}
	for i, s := range sinks {
		if _, err := nl.AddLadder("a"+s, splits[i], s, arm, opts.Sections); err != nil {
			return delays, err
		}
		load := t.Buffer.InputCap
		if isLeaf {
			if sc, ok := opts.LeafLoadScale[leafBase+i]; ok {
				load *= sc
			}
		}
		nl.AddC("c"+s, s, netlist.Ground, load)
	}
	res, err := sim.TransientCtx(ctx, nl, opts.TimeStep, opts.Horizon, sinks)
	if err != nil {
		return delays, fmt.Errorf("clocktree: stage %d (level %d): %w", stageID, levelIdx, err)
	}
	for i, s := range sinks {
		v, err := res.Waveform(s)
		if err != nil {
			return delays, err
		}
		d, err := sim.DelayFromT0(res.Time, v, 0, 1)
		if err != nil {
			return delays, fmt.Errorf("clocktree: stage %d sink %s never switches (horizon too short?): %w", stageID, s, err)
		}
		// Remove the launch offset (the source starts one time step in).
		delays[i] = d - opts.TimeStep
	}
	return delays, nil
}

// Arrivals simulates the full tree and returns the clock arrival time
// at every leaf (4^levels leaves, indexed in H-order), including
// buffer intrinsic delays. Stage instance ids are assigned in BFS
// order starting at 0 for the root stage; ids are stable for use with
// SimOptions.RCScale.
func (t *Tree) Arrivals(opts SimOptions) ([]float64, error) {
	return t.ArrivalsCtx(context.Background(), opts)
}

// ArrivalsCtx is Arrivals honouring cancellation (each stage's
// transient polls ctx) with context-parented tracing: every
// clocktree.stage span — and the extraction and transient spans
// inside it — parents under the arrivals span.
func (t *Tree) ArrivalsCtx(ctx context.Context, opts SimOptions) ([]float64, error) {
	ctx, sp := obs.StartCtx(ctx, "clocktree.arrivals")
	defer sp.End()
	sp.SetAttr("levels", len(t.Levels))
	opts = opts.withDefaults(t.Buffer)
	type job struct {
		level   int
		arrival float64
	}
	frontier := []job{{0, t.Buffer.IntrinsicDelay}}
	stageID := 0
	nLeaves := 1
	for range t.Levels {
		nLeaves *= 4
	}
	leafBase := 0
	var arrivals []float64
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		isLeaf := cur.level == len(t.Levels)-1
		d, err := t.stageDelays(ctx, cur.level, stageID, opts, leafBase, isLeaf)
		if err != nil {
			return nil, err
		}
		stageID++
		for i := 0; i < 4; i++ {
			at := cur.arrival + d[i]
			if isLeaf {
				arrivals = append(arrivals, at)
				leafBase++
			} else {
				frontier = append(frontier, job{cur.level + 1, at + t.Buffer.IntrinsicDelay})
			}
		}
	}
	if len(arrivals) != nLeaves {
		return nil, fmt.Errorf("clocktree: produced %d arrivals, expected %d", len(arrivals), nLeaves)
	}
	treeLeaves.Add(int64(nLeaves))
	return arrivals, nil
}

// Skew runs Arrivals and reduces to the skew (max − min arrival).
func (t *Tree) Skew(opts SimOptions) (float64, error) {
	arr, err := t.Arrivals(opts)
	if err != nil {
		return 0, err
	}
	s, _, _ := sim.Skew(arr)
	return s, nil
}
