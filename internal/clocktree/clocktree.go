// Package clocktree implements Section V of the paper: RLC extraction
// and skew simulation of a buffered H-tree clock distribution network
// (Fig. 7), with each wire segment realised as a shielded building
// block — coplanar waveguide (Fig. 8) or microstrip (Fig. 9) — and the
// passive portion between buffer levels formulated as cascaded
// RLC-segment ladders using the table-based loop inductances.
//
// The clock buffers follow the paper's driver model: a Thevenin source
// (series resistance, the "about 40 ohm" of Fig. 1) launching a ramp,
// plus an input capacitance loading the upstream stage and an
// intrinsic delay. Stages are linear, so the tree is simulated stage
// by stage and arrivals accumulate along root-to-leaf paths.
package clocktree

import (
	"context"
	"errors"
	"fmt"

	"clockrlc/internal/core"
	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
	"clockrlc/internal/sim"
)

// H-tree simulation accounting: stages are the unit of transient work
// (one MNA run each), leaves the unit of skew statistics.
var (
	treeStages = obs.GetCounter("clocktree.stages")
	treeLeaves = obs.GetCounter("clocktree.leaves")
)

// Buffer is the clock buffer model.
type Buffer struct {
	// DriveRes is the Thevenin output resistance in Ω.
	DriveRes float64
	// InputCap is the capacitance a buffer input presents, in F.
	InputCap float64
	// IntrinsicDelay is added per buffer stage, in s.
	IntrinsicDelay float64
	// OutSlew is the output ramp's 0–100 % rise time, in s.
	OutSlew float64
}

// Validate checks the buffer model.
func (b Buffer) Validate() error {
	if b.DriveRes <= 0 || b.InputCap <= 0 || b.OutSlew <= 0 || b.IntrinsicDelay < 0 {
		return fmt.Errorf("clocktree: buffer fields out of range: %+v", b)
	}
	return nil
}

// Level describes the wire geometry of one buffer level's H: the
// trunk runs from the driving buffer sideways to the two split points,
// the arms from each split point to the four receiving buffers.
type Level struct {
	TrunkLen, ArmLen float64
	Segment          core.Segment // Length is ignored; widths/spacing/shielding used
}

// Tree is a buffered H-tree clock network.
type Tree struct {
	Levels []Level
	Buffer Buffer
	Ext    *core.Extractor
}

// NewTree assembles and validates a tree.
func NewTree(levels []Level, buf Buffer, ext *core.Extractor) (*Tree, error) {
	if len(levels) == 0 {
		return nil, errors.New("clocktree: need at least one level")
	}
	if err := buf.Validate(); err != nil {
		return nil, err
	}
	if ext == nil {
		return nil, errors.New("clocktree: nil extractor")
	}
	for i, l := range levels {
		if l.TrunkLen <= 0 || l.ArmLen <= 0 {
			return nil, fmt.Errorf("clocktree: level %d has non-positive wire lengths", i)
		}
		s := l.Segment
		s.Length = l.TrunkLen
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("clocktree: level %d: %w", i, err)
		}
	}
	return &Tree{Levels: levels, Buffer: buf, Ext: ext}, nil
}

// HTreeLevels builds a classic H-tree level stack for a die of the
// given half-span: level ℓ's trunk reaches halfSpan/2^ℓ and its arms
// half of that, halving each level. All levels share the segment
// profile (widths typically taper in real designs; callers can edit
// the returned slice).
func HTreeLevels(halfSpan float64, nLevels int, seg core.Segment) []Level {
	levels := make([]Level, nLevels)
	span := halfSpan
	for i := range levels {
		levels[i] = Level{TrunkLen: span, ArmLen: span / 2, Segment: seg}
		span /= 2
	}
	return levels
}

// SimOptions controls a tree simulation.
type SimOptions struct {
	// WithL selects the RLC netlist; false extracts RC only (the
	// paper's comparison baseline).
	WithL bool
	// Sections per segment ladder (default 6).
	Sections int
	// TimeStep and Horizon for each stage transient (defaults
	// OutSlew/100 and 40·OutSlew).
	TimeStep, Horizon float64
	// Scale optionally perturbs a stage instance's extracted R, C and
	// L by the given multipliers (process variation). The paper's
	// proposal keeps L at 1 while R and C vary; setting the third
	// entry exercises the full variation for comparison. Indexed by
	// stage instance id as produced by Arrivals; nil means nominal
	// everywhere.
	Scale map[int][3]float64
	// LeafLoadScale optionally scales the load capacitance of
	// individual leaves to model sink load imbalance. Keys are leaf
	// indices in H-order — the order Arrivals returns them: leaf
	// stages left to right across the last level, four sinks per
	// stage, so leaves 4k..4k+3 hang off the k-th leaf stage. Absent
	// keys mean nominal (×1) load.
	LeafLoadScale map[int]float64
	// NoStageDedup forces the legacy exact walk: every stage instance
	// runs its own transient even when an identical instance (same
	// level, scale and sink loads) has already been simulated. The
	// default memoized walk is bit-identical — identical inputs yield
	// identical transients — so this exists for pinning tests and
	// paranoia runs, at O(4^levels) instead of O(distinct stages)
	// transient cost.
	NoStageDedup bool
	// SampleCap bounds the reservoir of raw arrival samples Analyze
	// keeps alongside the running statistics (0 = none). The reservoir
	// is deterministic: the same tree and options select the same
	// sample at any checkpoint/resume schedule.
	SampleCap int
}

func (o SimOptions) withDefaults(buf Buffer) SimOptions {
	if o.Sections <= 0 {
		o.Sections = 6
	}
	if o.TimeStep <= 0 {
		o.TimeStep = buf.OutSlew / 100
	}
	if o.Horizon <= 0 {
		o.Horizon = 40 * buf.OutSlew
	}
	return o
}

// nominalScale and nominalLoads are the multipliers an unperturbed
// stage carries. Multiplying by exactly 1.0 is a bitwise no-op, so a
// stage with these multipliers simulates bit-identically to the
// pre-memoization code path that skipped the multiply entirely.
var (
	nominalScale = [3]float64{1, 1, 1}
	nominalLoads = [4]float64{1, 1, 1, 1}
)

// simulateStage runs one buffer stage's transient: the driver at the
// H centre, two trunk ladders, four arm ladders, four sink loads. It
// returns the four sink 50 % arrival times measured from the stage's
// launch. scale multiplies the extracted R/C/L of every wire in the
// stage; loads multiplies the four sink capacitances (1s for an
// internal stage, whose sinks are the next level's buffer inputs).
func (t *Tree) simulateStage(ctx context.Context, levelIdx int, stageID int64, opts SimOptions, scale [3]float64, loads [4]float64) ([4]float64, error) {
	var delays [4]float64
	ctx, sp := obs.StartCtx(ctx, "clocktree.stage")
	defer sp.End()
	sp.SetAttr("level", levelIdx)
	sp.SetAttr("stage", stageID)
	treeStages.Inc()
	lv := t.Levels[levelIdx]
	nl := netlist.New()
	nl.AddV("vsrc", "drv", netlist.Ground, netlist.Ramp{V0: 0, V1: 1, Start: opts.TimeStep, Rise: t.Buffer.OutSlew})
	nl.AddR("rdrv", "drv", "r", t.Buffer.DriveRes)

	extract := func(length float64) (netlist.SegmentRLC, error) {
		s := lv.Segment
		s.Length = length
		var rlc netlist.SegmentRLC
		var err error
		if opts.WithL {
			rlc, err = t.Ext.SegmentRLCCtx(ctx, s)
		} else {
			rlc, err = t.Ext.SegmentRCOnlyCtx(ctx, s)
		}
		if err != nil {
			return rlc, err
		}
		rlc.R *= scale[0]
		rlc.C *= scale[1]
		rlc.L *= scale[2]
		return rlc, nil
	}
	trunk, err := extract(lv.TrunkLen)
	if err != nil {
		return delays, err
	}
	arm, err := extract(lv.ArmLen)
	if err != nil {
		return delays, err
	}
	if _, err := nl.AddLadder("tl", "r", "L", trunk, opts.Sections); err != nil {
		return delays, err
	}
	if _, err := nl.AddLadder("tr", "r", "R", trunk, opts.Sections); err != nil {
		return delays, err
	}
	sinks := []string{"s0", "s1", "s2", "s3"}
	splits := []string{"L", "L", "R", "R"}
	for i, s := range sinks {
		if _, err := nl.AddLadder("a"+s, splits[i], s, arm, opts.Sections); err != nil {
			return delays, err
		}
		nl.AddC("c"+s, s, netlist.Ground, t.Buffer.InputCap*loads[i])
	}
	res, err := sim.TransientCtx(ctx, nl, opts.TimeStep, opts.Horizon, sinks)
	if err != nil {
		return delays, fmt.Errorf("clocktree: stage %d (level %d): %w", stageID, levelIdx, err)
	}
	for i, s := range sinks {
		v, err := res.Waveform(s)
		if err != nil {
			return delays, err
		}
		d, err := sim.DelayFromT0(res.Time, v, 0, 1)
		if err != nil {
			return delays, fmt.Errorf("clocktree: stage %d sink %s never switches (horizon too short?): %w", stageID, s, err)
		}
		// Remove the launch offset (the source starts one time step in).
		delays[i] = d - opts.TimeStep
	}
	return delays, nil
}

// Arrivals simulates the full tree and returns the clock arrival time
// at every leaf (4^levels leaves, indexed in H-order), including
// buffer intrinsic delays. Stage instance ids are assigned in
// level-order (BFS) starting at 0 for the root stage — stage k's
// children are 4k+1..4k+4 — and are stable for use with
// SimOptions.Scale. For trees too deep to materialise 4^levels
// float64s, use Analyze, which streams the same walk into bounded
// statistics.
func (t *Tree) Arrivals(opts SimOptions) ([]float64, error) {
	return t.ArrivalsCtx(context.Background(), opts)
}

// ArrivalsCtx is Arrivals honouring cancellation (each stage's
// transient polls ctx, and the walk itself polls between stages) with
// context-parented tracing: every clocktree.stage span — and the
// extraction and transient spans inside it — parents under the
// arrivals span. Identical stage instances share one simulated
// transient (see Analyze); results are bit-identical to the exact
// per-instance walk.
func (t *Tree) ArrivalsCtx(ctx context.Context, opts SimOptions) ([]float64, error) {
	_, arrivals, err := t.analyzeStream(ctx, opts, nil, true)
	return arrivals, err
}

// Analyze simulates the full tree as a streaming walk and returns
// bounded arrival statistics instead of the 4^levels arrivals slice:
// min/max (with leaf indices), sum/sum-of-squares, a fixed-size log
// histogram and an optional bounded sample reservoir. Identical stage
// instances — same level, scale perturbation and sink loads — are
// simulated once and memoized, so a nominal H-tree costs O(levels)
// transients instead of O(4^levels): the million-sink tree ROADMAP
// item 1 asks for is ~10 transients plus arithmetic.
func (t *Tree) Analyze(opts SimOptions) (*ArrivalStats, error) {
	return t.AnalyzeCtx(context.Background(), opts, nil)
}

// AnalyzeCtx is Analyze honouring cancellation and, when ck is
// non-nil, durably checkpointing the walk so a crash, OOM kill or
// SIGKILL resumes instead of restarting — see Checkpoint.
func (t *Tree) AnalyzeCtx(ctx context.Context, opts SimOptions, ck *Checkpoint) (*ArrivalStats, error) {
	stats, _, err := t.analyzeStream(ctx, opts, ck, false)
	return stats, err
}

// SkewReport names the leaves that set a tree's skew, so a
// large-tree run can point at the offending sink paths instead of
// reporting a bare number.
type SkewReport struct {
	// Skew is max − min arrival.
	Skew float64
	// MinArrival/MaxArrival are the extreme arrival times in seconds.
	MinArrival, MaxArrival float64
	// MinLeaf/MaxLeaf are the H-order indices of the earliest and
	// latest leaves (first occurrence on ties, matching sim.Skew).
	MinLeaf, MaxLeaf int64
	// Leaves is the leaf count the report covers.
	Leaves int64
}

// Skew runs the tree and reduces to the skew (max − min arrival).
func (t *Tree) Skew(opts SimOptions) (float64, error) {
	rep, err := t.SkewReport(opts)
	if err != nil {
		return 0, err
	}
	return rep.Skew, nil
}

// SkewReport runs the tree (streaming; no full arrivals slice) and
// returns the skew together with the extreme arrivals and the leaf
// indices that set them.
func (t *Tree) SkewReport(opts SimOptions) (SkewReport, error) {
	return t.SkewReportCtx(context.Background(), opts)
}

// SkewReportCtx is SkewReport honouring cancellation.
func (t *Tree) SkewReportCtx(ctx context.Context, opts SimOptions) (SkewReport, error) {
	stats, err := t.AnalyzeCtx(ctx, opts, nil)
	if err != nil {
		return SkewReport{}, err
	}
	return stats.SkewReport(), nil
}
