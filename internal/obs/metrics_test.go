package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this also proves the increment path is data-race free.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("concurrent.hits")
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	// Get-or-create returns the same instance.
	if r.Counter("concurrent.hits") != c {
		t.Error("Counter lookup returned a different instance")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("g")
	if g.Value() != 0 {
		t.Errorf("unset gauge = %g, want 0", g.Value())
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Errorf("gauge = %g, want -2.5", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewRegistry().Histogram("h")
	for _, v := range []float64{1e-9, 2e-9, 3e-9, 0.5} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if s.Min != 1e-9 || s.Max != 0.5 {
		t.Errorf("min/max = %g/%g, want 1e-9/0.5", s.Min, s.Max)
	}
	wantMean := (1e-9 + 2e-9 + 3e-9 + 0.5) / 4
	if diff := s.Mean - wantMean; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("mean = %g, want %g", s.Mean, wantMean)
	}
	bounds, counts := h.Buckets()
	// 1e-9, 2e-9, 3e-9 share the 1e-9 decade; 0.5 lands in 1e-1.
	if len(bounds) != 2 || bounds[0] != 1e-9 || counts[0] != 3 || bounds[1] != 1e-1 || counts[1] != 1 {
		t.Errorf("buckets = %v %v", bounds, counts)
	}
	h.Observe(0) // under bucket, must not panic on log10
	if _, counts := h.Buckets(); counts[0] != 1 {
		t.Errorf("zero observation not in under bucket: %v", counts)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("hc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Stats().Count; got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

func TestRegistryResetKeepsPointers(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(7)
	g.Set(3)
	h.Observe(1)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Stats().Count != 0 {
		t.Error("Reset did not zero metrics")
	}
	if r.Counter("c") != c {
		t.Error("Reset dropped the counter instance")
	}
	c.Inc()
	if r.Counter("c").Value() != 1 {
		t.Error("counter unusable after Reset")
	}
}

func TestSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("table.lookup_hits").Add(12)
	r.Gauge("sim.dim").Set(64)
	r.Histogram("sim.steps_per_run").Observe(2000)
	s := r.Snapshot()
	if s.Counters["table.lookup_hits"] != 12 {
		t.Errorf("snapshot counter = %d", s.Counters["table.lookup_hits"])
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE clockrlc_table_lookup_hits counter",
		"clockrlc_table_lookup_hits 12",
		"clockrlc_sim_dim 64",
		"clockrlc_sim_steps_per_run_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, text)
		}
	}
	buf.Reset()
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"table.lookup_hits": 12`) {
		t.Errorf("JSON snapshot missing counter:\n%s", buf.String())
	}
}

func TestSinceNs(t *testing.T) {
	c := NewRegistry().Counter("ns")
	SinceNs(c, time.Now().Add(-time.Millisecond))
	if got := c.Value(); got < int64(time.Millisecond) {
		t.Errorf("SinceNs accumulated %d ns, want >= 1ms", got)
	}
}
