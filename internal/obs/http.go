package obs

import "net/http"

// MetricsHandler serves a registry's live snapshot in Prometheus text
// exposition format — mount it at /metrics on any HTTP server. nil
// selects the default registry. The snapshot is taken per request, so
// a scrape always sees current counter values.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reg := r
		if reg == nil {
			reg = DefaultRegistry()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.Snapshot().WriteText(w); err != nil {
			// The header is already out; nothing useful to do but stop.
			return
		}
	})
}
