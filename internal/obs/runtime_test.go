package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestSampleRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	SampleRuntime(r)
	for _, name := range []string{
		"runtime.heap_alloc_bytes", "runtime.heap_objects", "runtime.sys_bytes",
		"runtime.goroutines",
	} {
		if v := r.Gauge(name).Value(); v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
}

func TestRuntimeSamplerObservesGCPauses(t *testing.T) {
	r := NewRegistry()
	s := StartRuntimeSampler(r, 100*time.Millisecond)
	runtime.GC()
	runtime.GC()
	s.Stop()
	s.Stop() // idempotent

	if v := r.Gauge("runtime.num_gc").Value(); v < 2 {
		t.Errorf("runtime.num_gc = %g, want >= 2", v)
	}
	st := r.Histogram("runtime.gc_pause_seconds").Stats()
	if st.Count < 2 {
		t.Errorf("gc pause histogram count = %d, want >= 2", st.Count)
	}
	if st.Min < 0 || st.NonFinite != 0 {
		t.Errorf("gc pause stats = %+v", st)
	}
	// The pause histogram's decade buckets must yield a usable p99.
	if p99 := r.Histogram("runtime.gc_pause_seconds").Quantile(0.99); p99 != p99 || p99 < 0 {
		t.Errorf("gc pause p99 = %g", p99)
	}
}

func TestRuntimeSamplerTicks(t *testing.T) {
	r := NewRegistry()
	s := StartRuntimeSampler(r, 100*time.Millisecond)
	defer s.Stop()
	// The initial synchronous sample plus at least one tick.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.Gauge("runtime.goroutines").Value() > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("sampler never recorded goroutine count")
}
