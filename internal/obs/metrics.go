package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric (calls, cache
// hits, accumulated nanoseconds). All methods are safe for concurrent
// use and allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is tolerated but unconventional).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// reset zeroes the counter in place (shared pointers stay valid).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a last-value float metric (a dimension, a current size).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (zero if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) reset() { g.bits.Store(0) }

// histDecades spans 1e-16 … 1e+15 in decade buckets — wide enough for
// seconds (1e-12 … 1e3), henries (1e-12 … 1e-6) and raw counts.
const (
	histDecades  = 32
	histMinExp10 = -16
)

// Histogram records a distribution as count/sum/min/max plus decade
// (log10) buckets of |v|; a dedicated bucket collects zero and
// negative observations, a dedicated overflow bucket collects values
// above the last decade (they are no longer silently folded into it),
// and non-finite observations (NaN, ±Inf) are counted separately so
// one bad sample cannot poison sum/min/max/mean. It is
// mutex-protected — intended for per-operation observations (a
// transient's step count, a table build's duration), not
// per-inner-loop calls.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  [histDecades]int64
	under    int64 // v <= 0 or below the first decade
	over     int64 // v >= the upper edge of the last decade
	badObs   int64 // NaN/±Inf observations, excluded from everything above
}

// Observe records one value. Non-finite values are counted (visible
// in Stats.NonFinite) but excluded from count/sum/min/max and the
// buckets: a single NaN used to make sum, mean, min and max NaN for
// the rest of the process.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.badObs++
		h.mu.Unlock()
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v > 0 {
		if i := int(math.Floor(math.Log10(v))) - histMinExp10; i >= 0 && i < histDecades {
			h.buckets[i]++
		} else if i >= histDecades {
			h.over++
		} else {
			h.under++
		}
	} else {
		h.under++
	}
	h.mu.Unlock()
}

// HistStats is a histogram's reduced summary. Count/Sum/Min/Max/Mean
// cover the finite observations only; NonFinite counts the NaN/±Inf
// observations that were guarded out.
type HistStats struct {
	Count     int64   `json:"count"`
	Sum       float64 `json:"sum"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	Mean      float64 `json:"mean"`
	NonFinite int64   `json:"non_finite,omitempty"`
}

// Stats returns the current summary.
func (h *Histogram) Stats() HistStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, NonFinite: h.badObs}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	return s
}

// Buckets returns the non-empty decade buckets as (lower bound 10^k,
// count) pairs in increasing order, with the under/zero bucket first
// as (0, count) when occupied and the overflow bucket last as
// (+Inf, count) when occupied.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.under > 0 {
		bounds = append(bounds, 0)
		counts = append(counts, h.under)
	}
	for i, n := range h.buckets {
		if n > 0 {
			bounds = append(bounds, math.Pow(10, float64(i+histMinExp10)))
			counts = append(counts, n)
		}
	}
	if h.over > 0 {
		bounds = append(bounds, math.Inf(1))
		counts = append(counts, h.over)
	}
	return bounds, counts
}

// Quantile estimates the q-quantile (q in [0, 1]) of the finite
// observations from the decade buckets, log-interpolating within the
// bucket the rank falls in and clamping to the observed [min, max].
// The estimate is exact to within the decade resolution — the fidelity
// the per-stage latency aggregation needs for p50/p90/p99 ordering,
// not a substitute for recording raw samples. Returns NaN when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := float64(h.under)
	clamp := func(v float64) float64 {
		return math.Min(math.Max(v, h.min), h.max)
	}
	if rank <= cum {
		// Zero/negative/below-first-decade observations: the bucket has
		// no interior scale, so report its upper edge clamped to min.
		return clamp(math.Pow(10, float64(histMinExp10)))
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := float64(i + histMinExp10)
			frac := (rank - cum) / float64(n)
			return clamp(math.Pow(10, lo+frac))
		}
		cum = next
	}
	// Overflow bucket (or rounding): the largest observation stands in.
	return h.max
}

func (h *Histogram) reset() {
	h.mu.Lock()
	h.count, h.sum, h.min, h.max, h.under, h.over, h.badObs = 0, 0, 0, 0, 0, 0, 0
	h.buckets = [histDecades]int64{}
	h.mu.Unlock()
}

// Registry owns named metrics. Lookups get-or-create, so instrumented
// packages can grab their metrics once at init and callers can read
// them by name later.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry the package-level
// helpers use.
func DefaultRegistry() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every metric in place. Existing pointers held by
// instrumented packages remain valid, so Reset gives callers (CLIs
// measuring one phase, tests) a clean delta without re-registration.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// names returns the registry's metric names, sorted, per kind.
func (r *Registry) names() (cs, gs, hs []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.counters {
		cs = append(cs, n)
	}
	for n := range r.gauges {
		gs = append(gs, n)
	}
	for n := range r.hists {
		hs = append(hs, n)
	}
	sort.Strings(cs)
	sort.Strings(gs)
	sort.Strings(hs)
	return cs, gs, hs
}

// GetCounter returns a counter from the default registry.
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns a gauge from the default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram returns a histogram from the default registry.
func GetHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }

// SinceNs accumulates the nanoseconds elapsed since t0 into c — the
// idiom for coarse wall-time accounting:
//
//	defer obs.SinceNs(buildNs, time.Now())
func SinceNs(c *Counter, t0 time.Time) { c.Add(time.Since(t0).Nanoseconds()) }
