package obs

import (
	"math"
	"testing"
)

func TestHistogramNonFiniteGuard(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(2.0)
	s := h.Stats()
	if s.NonFinite != 3 {
		t.Errorf("NonFinite = %d, want 3", s.NonFinite)
	}
	if s.Count != 1 || s.Sum != 2 || s.Min != 2 || s.Max != 2 || s.Mean != 2 {
		t.Errorf("finite stats poisoned: %+v", s)
	}
	if math.IsNaN(s.Sum) || math.IsNaN(s.Mean) {
		t.Error("NaN leaked into sum/mean")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := &Histogram{}
	h.Observe(1.0)   // decade 0
	h.Observe(1e20)  // beyond the last decade (1e15): overflow bucket
	h.Observe(1e-20) // below the first decade: under bucket
	s := h.Stats()
	if s.Count != 3 || s.Max != 1e20 || s.Min != 1e-20 {
		t.Errorf("stats = %+v", s)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("got %d buckets %v, want under + decade + overflow", len(bounds), bounds)
	}
	if bounds[0] != 0 || counts[0] != 1 {
		t.Errorf("under bucket = (%g, %d)", bounds[0], counts[0])
	}
	if !math.IsInf(bounds[2], 1) || counts[2] != 1 {
		t.Errorf("overflow bucket = (%g, %d), want (+Inf, 1)", bounds[2], counts[2])
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile is not NaN")
	}
	// 90 observations at ~1ms, 10 at ~1s.
	for i := 0; i < 90; i++ {
		h.Observe(1e-3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	p50, p90, p99 := h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotonic: %g %g %g", p50, p90, p99)
	}
	// Decade resolution: p50 lands in the 1e-3 decade, p99 in the 1e0
	// decade (clamped to max).
	if p50 < 1e-3 || p50 >= 1e-2 {
		t.Errorf("p50 = %g, want within [1e-3, 1e-2)", p50)
	}
	if p99 < 0.1 || p99 > 1.0 {
		t.Errorf("p99 = %g, want within the observed-second decade", p99)
	}
	// Quantiles never exceed the observed extremes.
	if h.Quantile(0) < 1e-3 || h.Quantile(1) > 1.0 {
		t.Errorf("quantiles escaped [min, max]: q0=%g q1=%g", h.Quantile(0), h.Quantile(1))
	}
	// Overflow-bucket quantile reports the max.
	h2 := &Histogram{}
	h2.Observe(1e20)
	if got := h2.Quantile(0.99); got != 1e20 {
		t.Errorf("overflow quantile = %g, want max", got)
	}
}

func TestHistogramResetClearsNewFields(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.NaN())
	h.Observe(1e20)
	h.reset()
	s := h.Stats()
	if s.NonFinite != 0 || s.Count != 0 {
		t.Errorf("reset left stats %+v", s)
	}
	if bounds, _ := h.Buckets(); len(bounds) != 0 {
		t.Errorf("reset left buckets %v", bounds)
	}
}
