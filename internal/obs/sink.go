package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventType discriminates trace events.
type EventType string

// Event types emitted by observers and sessions.
const (
	EventSpanStart EventType = "span_start"
	EventSpanEnd   EventType = "span_end"
	EventMetrics   EventType = "metrics"
)

// Event is one trace record. Span events carry the span/parent ids
// that encode the trace tree; the terminal metrics event carries a
// registry snapshot.
type Event struct {
	Type   EventType      `json:"type"`
	Name   string         `json:"name,omitempty"`
	Span   uint64         `json:"span,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	Time   time.Time      `json:"time"`
	Dur    time.Duration  `json:"dur_ns,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	Snap   *Snapshot      `json:"metrics,omitempty"`
}

// Sink receives trace events. Implementations must be safe for
// concurrent Emit calls.
type Sink interface {
	Emit(e *Event)
	// Flush reports any deferred write error and pushes buffered
	// output toward its destination.
	Flush() error
}

// NopSink discards everything — the explicit form of "no tracing".
type NopSink struct{}

// Emit discards the event.
func (NopSink) Emit(*Event) {}

// Flush never fails.
func (NopSink) Flush() error { return nil }

// JSONLSink writes one JSON object per event, newline-delimited — the
// -trace file format. Write errors are latched and reported by Flush
// so hot paths never check errors.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	w   io.Writer
	err error
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w), w: w}
}

// Emit encodes the event as one JSON line.
func (s *JSONLSink) Emit(e *Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
	s.mu.Unlock()
}

// Flush returns the first write error, if any.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MemorySink collects events in memory — for tests and interactive
// inspection.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends a copy of the event.
func (s *MemorySink) Emit(e *Event) {
	s.mu.Lock()
	s.events = append(s.events, *e)
	s.mu.Unlock()
}

// Flush never fails.
func (s *MemorySink) Flush() error { return nil }

// Events returns a snapshot copy of the collected events.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}
