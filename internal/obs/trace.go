package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Trace analysis: reconstruct the span tree a JSONL trace (or a
// MemorySink) recorded, aggregate latency per span name, and walk the
// critical path. This is the read side of the context-propagated
// tracing model — with every concurrent span carrying its parent
// explicitly, the tree reconstructs exactly at any worker count, and
// an orphaned span (a parent id that never appeared) is a bug worth
// reporting, not an expected artefact.

// TraceSpan is one reconstructed span of a recorded trace.
type TraceSpan struct {
	ID     uint64
	Parent uint64 // zero for roots
	Name   string
	Start  time.Time
	End    time.Time
	Dur    time.Duration
	Attrs  map[string]any

	// Children are ordered by start time (ties by id).
	Children []*TraceSpan

	// Started/Ended report whether the trace contained the matching
	// event; a span with Ended == false was still open when the trace
	// stopped and its Dur is zero.
	Started, Ended bool
}

// SelfTime is the span's duration minus the duration of its children,
// floored at zero (concurrent children can overlap their parent
// beyond its own length).
func (s *TraceSpan) SelfTime() time.Duration {
	self := s.Dur
	for _, c := range s.Children {
		self -= c.Dur
	}
	if self < 0 {
		return 0
	}
	return self
}

// Trace is a reconstructed span forest.
type Trace struct {
	// Roots are the parentless spans, ordered by start time.
	Roots []*TraceSpan
	// Spans indexes every span by id.
	Spans map[uint64]*TraceSpan
	// Orphans are spans whose recorded parent id never appeared in the
	// trace; they are not attached under Roots. A concurrency-correct
	// trace has none.
	Orphans []*TraceSpan
	// Unended are spans with a start event but no end event.
	Unended []*TraceSpan
	// Metrics is the terminal registry snapshot, when the trace
	// carried one (cliobs appends it on Close).
	Metrics *Snapshot
}

// BuildTrace reconstructs the span forest from recorded events.
func BuildTrace(events []Event) *Trace {
	t := &Trace{Spans: map[uint64]*TraceSpan{}}
	get := func(id uint64) *TraceSpan {
		sp, ok := t.Spans[id]
		if !ok {
			sp = &TraceSpan{ID: id}
			t.Spans[id] = sp
		}
		return sp
	}
	for i := range events {
		e := &events[i]
		switch e.Type {
		case EventSpanStart:
			sp := get(e.Span)
			sp.Name, sp.Parent, sp.Start, sp.Started = e.Name, e.Parent, e.Time, true
		case EventSpanEnd:
			sp := get(e.Span)
			sp.Name, sp.Parent, sp.Ended = e.Name, e.Parent, true
			sp.End, sp.Dur, sp.Attrs = e.Time, e.Dur, e.Attrs
			if !sp.Started {
				sp.Start = e.Time.Add(-e.Dur)
			}
		case EventMetrics:
			if e.Snap != nil {
				t.Metrics = e.Snap
			}
		}
	}
	for _, sp := range t.Spans {
		if !sp.Ended {
			t.Unended = append(t.Unended, sp)
		}
		if sp.Parent == 0 {
			t.Roots = append(t.Roots, sp)
			continue
		}
		if parent, ok := t.Spans[sp.Parent]; ok {
			parent.Children = append(parent.Children, sp)
		} else {
			t.Orphans = append(t.Orphans, sp)
		}
	}
	byStart := func(spans []*TraceSpan) {
		sort.Slice(spans, func(i, j int) bool {
			if !spans[i].Start.Equal(spans[j].Start) {
				return spans[i].Start.Before(spans[j].Start)
			}
			return spans[i].ID < spans[j].ID
		})
	}
	byStart(t.Roots)
	byStart(t.Orphans)
	byStart(t.Unended)
	for _, sp := range t.Spans {
		byStart(sp.Children)
	}
	return t
}

// ReadTrace decodes a JSONL trace stream (the -trace file format).
func ReadTrace(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return events, nil
}

// NameStats is the per-span-name latency aggregation of one trace:
// how often the stage ran, its total and self (children-excluded)
// time, and p50/p90/p99 estimated from decade histogram buckets of
// the per-span durations.
type NameStats struct {
	Name          string
	Count         int
	Total, Self   time.Duration
	P50, P90, P99 time.Duration
}

// Aggregate reduces the trace to per-span-name stats, ordered by self
// time descending (ties by name, for deterministic reports). Unended
// spans contribute to Count but no time.
func (t *Trace) Aggregate() []NameStats {
	type acc struct {
		stats NameStats
		hist  *Histogram
	}
	byName := map[string]*acc{}
	for _, sp := range t.Spans {
		name := sp.Name
		if name == "" {
			name = "(unnamed)"
		}
		a, ok := byName[name]
		if !ok {
			a = &acc{stats: NameStats{Name: name}, hist: &Histogram{}}
			byName[name] = a
		}
		a.stats.Count++
		a.stats.Total += sp.Dur
		a.stats.Self += sp.SelfTime()
		if sp.Ended {
			a.hist.Observe(sp.Dur.Seconds())
		}
	}
	out := make([]NameStats, 0, len(byName))
	for _, a := range byName {
		q := func(p float64) time.Duration {
			v := a.hist.Quantile(p)
			if v != v { // NaN: no ended spans
				return 0
			}
			return time.Duration(v * float64(time.Second))
		}
		a.stats.P50, a.stats.P90, a.stats.P99 = q(0.50), q(0.90), q(0.99)
		out = append(out, a.stats)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// CriticalPath walks from the longest root down the chain of children
// that finished last — at each level the child whose end time gated
// its parent's completion. For a parallel stage the path follows the
// straggler, which is exactly the work that bounded the wall time;
// the path's head duration is the trace's wall time for that root.
// Returns nil for an empty trace.
func (t *Trace) CriticalPath() []*TraceSpan {
	var root *TraceSpan
	for _, r := range t.Roots {
		if root == nil || r.Dur > root.Dur {
			root = r
		}
	}
	if root == nil {
		return nil
	}
	path := []*TraceSpan{root}
	for cur := root; len(cur.Children) > 0; {
		var next *TraceSpan
		for _, c := range cur.Children {
			if !c.Ended {
				continue
			}
			if next == nil || c.End.After(next.End) {
				next = c
			}
		}
		if next == nil {
			break
		}
		path = append(path, next)
		cur = next
	}
	return path
}
