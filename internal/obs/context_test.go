package obs

import (
	"context"
	"sync"
	"testing"
)

func TestStartCtxParenting(t *testing.T) {
	sink := &MemorySink{}
	o := New(sink)
	ctx, root := o.StartCtx(context.Background(), "root")
	cctx, child := o.StartCtx(ctx, "child")
	_, grand := o.StartCtx(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	evs := sink.Events()
	byName := map[string]*Event{}
	for i := range evs {
		if evs[i].Type == EventSpanStart {
			byName[evs[i].Name] = &evs[i]
		}
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].Span {
		t.Errorf("child parent = %d, want root %d", byName["child"].Parent, byName["root"].Span)
	}
	if byName["grandchild"].Parent != byName["child"].Span {
		t.Errorf("grandchild parent = %d, want child %d", byName["grandchild"].Parent, byName["child"].Span)
	}
	// The returned context carries the new span.
	if got := SpanFromContext(cctx); got.d != child.d {
		t.Error("derived context does not carry the started span")
	}
}

func TestStartCtxDisarmedReturnsContextUnchanged(t *testing.T) {
	o := New() // no sinks: disabled
	ctx := context.Background()
	got, sp := o.StartCtx(ctx, "hot")
	if got != ctx {
		t.Error("disarmed StartCtx wrapped the context")
	}
	if sp.Active() {
		t.Error("disarmed StartCtx returned an active span")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := o.StartCtx(ctx, "hot")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disarmed StartCtx allocates %.1f objects/op, want 0", allocs)
	}
}

func TestContextWithSpanZeroAndNil(t *testing.T) {
	ctx := context.Background()
	if got := ContextWithSpan(ctx, Span{}); got != ctx {
		t.Error("zero span wrapped the context")
	}
	if sp := SpanFromContext(nil); sp.Active() {
		t.Error("nil context returned an active span")
	}
	if sp := SpanFromContext(context.Background()); sp.Active() {
		t.Error("bare context returned an active span")
	}
}

func TestStartCtxIgnoresForeignObserverSpan(t *testing.T) {
	sinkA, sinkB := &MemorySink{}, &MemorySink{}
	a, b := New(sinkA), New(sinkB)
	ctx, rootA := a.StartCtx(context.Background(), "a-root")
	_, spB := b.StartCtx(ctx, "b-span") // parent belongs to observer a
	spB.End()
	rootA.End()
	evs := sinkB.Events()
	if evs[0].Parent != 0 {
		t.Errorf("span parented across observers: parent = %d, want 0", evs[0].Parent)
	}
}

// TestStartCtxCrossGoroutine is the core concurrency-correctness
// property: spans started via StartCtx from many goroutines all parent
// under the span their context carries, never under each other, and
// never consult the single-goroutine stack (which another goroutine is
// concurrently mutating via legacy Start/End).
func TestStartCtxCrossGoroutine(t *testing.T) {
	sink := &MemorySink{}
	o := New(sink)
	ctx, root := o.StartCtx(context.Background(), "build")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Antagonist: churn the legacy stack from its own goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sp := o.Start("legacy")
				sp.End()
			}
		}
	}()
	const workers, perWorker = 8, 50
	var cwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for i := 0; i < perWorker; i++ {
				_, sp := o.StartCtx(ctx, "cell")
				sp.End()
			}
		}()
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
	root.End()

	tr := BuildTrace(sink.Events())
	if len(tr.Orphans) != 0 || len(tr.Unended) != 0 {
		t.Fatalf("%d orphans, %d unended; want 0, 0", len(tr.Orphans), len(tr.Unended))
	}
	rootID := tr.Roots[0].ID
	cells := 0
	for _, sp := range tr.Spans {
		if sp.Name == "cell" {
			cells++
			if sp.Parent != rootID {
				t.Fatalf("cell span %d parented under %d, want build root %d", sp.ID, sp.Parent, rootID)
			}
		}
	}
	if cells != workers*perWorker {
		t.Errorf("got %d cell spans, want %d", cells, workers*perWorker)
	}
}
