package obs

import "context"

// Context propagation: the concurrency-correct way to parent spans.
//
// The Observer's auto-parenting stack assumes one goroutine; the
// moment work fans out (table.BuildCtx's worker pool, core.Batch,
// every *Ctx entry point) the stack interleaves and spans mis-parent.
// StartCtx instead reads its parent from the context — each goroutine
// carries its own lineage, so reconstruction of the trace tree is
// exact at any worker count. The disarmed path (observer disabled)
// is a single atomic load returning the context unchanged: no
// allocation, no context wrapping, nothing for the hot paths to pay.

// spanCtxKey keys the current span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span, the
// parent of any StartCtx span started under the returned context.
// A zero span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp Span) context.Context {
	if sp.d == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx (the zero, disabled
// span when none is attached).
func SpanFromContext(ctx context.Context) Span {
	if ctx == nil {
		return Span{}
	}
	sp, _ := ctx.Value(spanCtxKey{}).(Span)
	return sp
}

// StartCtx begins a span parented to the span carried by ctx (a root
// span when ctx carries none, or one from a different observer) and
// returns a derived context carrying the new span, for passing to
// child operations. Unlike Start it never consults the shared
// auto-parenting stack, so it is correct from any number of
// goroutines. With the observer disabled it returns (ctx, Span{})
// after one atomic load.
func (o *Observer) StartCtx(ctx context.Context, name string) (context.Context, Span) {
	if o == nil || !o.enabled.Load() {
		return ctx, Span{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var parent uint64
	if p := SpanFromContext(ctx); p.d != nil && p.d.o == o {
		parent = p.d.id
	}
	d := &spanData{o: o, id: o.nextID.Add(1), parent: parent, name: name, start: o.clock()}
	o.mu.Lock()
	sinks := o.sinks
	o.mu.Unlock()
	emit(sinks, &Event{Type: EventSpanStart, Name: name, Span: d.id, Parent: d.parent, Time: d.start})
	sp := Span{d: d}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// StartCtx begins a context-parented span on the default observer.
func StartCtx(ctx context.Context, name string) (context.Context, Span) {
	return defaultObserver.StartCtx(ctx, name)
}
