package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	sink := &MemorySink{}
	o := New(sink)

	root := o.Start("extract")
	lookup := o.Start("table.lookup")
	lookup.End()
	cascade := o.Start("cascade")
	cascade.End()
	root.End()

	evs := sink.Events()
	want := []struct {
		typ  EventType
		name string
	}{
		{EventSpanStart, "extract"},
		{EventSpanStart, "table.lookup"},
		{EventSpanEnd, "table.lookup"},
		{EventSpanStart, "cascade"},
		{EventSpanEnd, "cascade"},
		{EventSpanEnd, "extract"},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	for i, w := range want {
		if evs[i].Type != w.typ || evs[i].Name != w.name {
			t.Errorf("event %d = %s %q, want %s %q", i, evs[i].Type, evs[i].Name, w.typ, w.name)
		}
	}
	// Parenting: both children carry the root's span id.
	rootID := evs[0].Span
	if rootID == 0 {
		t.Fatal("root span id is zero")
	}
	if evs[0].Parent != 0 {
		t.Errorf("root parent = %d, want 0", evs[0].Parent)
	}
	for _, i := range []int{1, 3} {
		if evs[i].Parent != rootID {
			t.Errorf("%q parent = %d, want root %d", evs[i].Name, evs[i].Parent, rootID)
		}
	}
	// Siblings must not nest under each other.
	if evs[3].Parent == evs[1].Span {
		t.Error("second sibling parented under ended first sibling")
	}
}

func TestSpanOutOfOrderEnd(t *testing.T) {
	sink := &MemorySink{}
	o := New(sink)
	a := o.Start("a")
	b := o.Start("b")
	a.End() // out of order: outer ends first — marked closed in place, not removed
	c := o.Start("c")
	if got := len(o.stack); got != 3 {
		t.Fatalf("stack depth %d, want 3 (a closed in place, b, c)", got)
	}
	c.End()
	b.End()
	// Ending the top pops it and every trailing closed entry beneath.
	if got := len(o.stack); got != 0 {
		t.Fatalf("stack depth %d after all ends, want 0", got)
	}
	evs := sink.Events()
	// c started while b was still open, so c parents to b.
	var bID uint64
	for _, e := range evs {
		if e.Type == EventSpanStart && e.Name == "b" {
			bID = e.Span
		}
	}
	for _, e := range evs {
		if e.Type == EventSpanStart && e.Name == "c" && e.Parent != bID {
			t.Errorf("c parent = %d, want b %d", e.Parent, bID)
		}
	}
}

func TestSpanChildExplicitParent(t *testing.T) {
	sink := &MemorySink{}
	o := New(sink)
	root := o.Start("root")
	ch := root.Child("worker")
	ch.End()
	root.End()
	evs := sink.Events()
	if evs[1].Name != "worker" || evs[1].Parent != evs[0].Span {
		t.Errorf("child parent = %d, want %d", evs[1].Parent, evs[0].Span)
	}
}

func TestSpanDoubleEndAndZeroSpan(t *testing.T) {
	sink := &MemorySink{}
	o := New(sink)
	s := o.Start("x")
	s.End()
	s.End()
	if n := len(sink.Events()); n != 2 {
		t.Errorf("double End emitted %d events, want 2", n)
	}
	var zero Span
	zero.End() // must not panic
	zero.SetAttr("k", 1)
	if zero.Active() {
		t.Error("zero span reports active")
	}
}

func TestSpanAttrsAndDuration(t *testing.T) {
	sink := &MemorySink{}
	o := New(sink)
	// Deterministic clock: each call advances 5 ms.
	var tick int
	base := time.Unix(1000, 0)
	o.now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 5 * time.Millisecond)
	}
	s := o.Start("build")
	s.SetAttr("entries", 42)
	s.End()
	evs := sink.Events()
	end := evs[1]
	if end.Dur != 5*time.Millisecond {
		t.Errorf("duration = %v, want 5ms", end.Dur)
	}
	if got := end.Attrs["entries"]; got != 42 {
		t.Errorf("attr entries = %v, want 42", got)
	}
}

func TestNoopSpanZeroAlloc(t *testing.T) {
	o := New() // no sinks: disabled
	allocs := testing.AllocsPerRun(1000, func() {
		sp := o.Start("hot")
		sp.SetAttr("k", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled Start/End allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCounterZeroAlloc(t *testing.T) {
	c := GetCounter("test.zero_alloc")
	allocs := testing.AllocsPerRun(1000, func() { c.Inc() })
	if allocs != 0 {
		t.Errorf("Counter.Inc allocates %.1f objects/op, want 0", allocs)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := New(sink)
	root := o.Start("extract")
	child := o.Start("table.lookup")
	child.SetAttr("w_um", 10.0)
	child.End()
	root.End()
	sink.Emit(&Event{Type: EventMetrics, Time: time.Now(), Snap: DefaultRegistry().Snapshot()})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d JSONL lines, want 5", len(lines))
	}
	var evs []Event
	for i, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		evs = append(evs, e)
	}
	if evs[0].Type != EventSpanStart || evs[0].Name != "extract" {
		t.Errorf("line 0 = %s %q", evs[0].Type, evs[0].Name)
	}
	if evs[2].Type != EventSpanEnd || evs[2].Name != "table.lookup" {
		t.Errorf("line 2 = %s %q", evs[2].Type, evs[2].Name)
	}
	if evs[2].Parent != evs[0].Span {
		t.Errorf("lookup parent = %d, want %d", evs[2].Parent, evs[0].Span)
	}
	if got := evs[2].Attrs["w_um"]; got != 10.0 {
		t.Errorf("attr w_um = %v, want 10", got)
	}
	if evs[4].Type != EventMetrics || evs[4].Snap == nil {
		t.Errorf("line 4 = %s (metrics snapshot missing)", evs[4].Type)
	}
}

func TestConcurrentSpansDoNotRace(t *testing.T) {
	sink := &MemorySink{}
	o := New(sink)
	root := o.Start("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := root.Child("worker")
				sp.SetAttr("i", i)
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	evs := sink.Events()
	if len(evs) != 2+2*8*100 {
		t.Errorf("got %d events, want %d", len(evs), 2+2*8*100)
	}
}

func TestRemoveSinkDisables(t *testing.T) {
	sink := &MemorySink{}
	o := New(sink)
	if !o.Enabled() {
		t.Fatal("observer with sink not enabled")
	}
	o.RemoveSink(sink)
	if o.Enabled() {
		t.Fatal("observer still enabled after RemoveSink")
	}
	if sp := o.Start("x"); sp.Active() {
		t.Error("disabled observer returned active span")
	}
}
