package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Snapshot is a registry's state at one instant, serialisable as JSON
// or Prometheus text exposition format.
type Snapshot struct {
	Time       time.Time            `json:"time"`
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]HistStats `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() *Snapshot {
	cs, gs, hs := r.names()
	s := &Snapshot{Time: time.Now()}
	if len(cs) > 0 {
		s.Counters = make(map[string]int64, len(cs))
		for _, n := range cs {
			s.Counters[n] = r.Counter(n).Value()
		}
	}
	if len(gs) > 0 {
		s.Gauges = make(map[string]float64, len(gs))
		for _, n := range gs {
			s.Gauges[n] = r.Gauge(n).Value()
		}
	}
	if len(hs) > 0 {
		s.Histograms = make(map[string]HistStats, len(hs))
		for _, n := range hs {
			s.Histograms[n] = r.Histogram(n).Stats()
		}
	}
	return s
}

// promName maps a dotted metric name to Prometheus conventions:
// "table.lookup_hits" → "clockrlc_table_lookup_hits".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("clockrlc_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sortedKeys returns the map's keys in sorted order (snapshot maps
// are small; determinism matters more than speed here).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// WriteText writes the snapshot in Prometheus text exposition format
// (counters and gauges as themselves; histograms as _count/_sum/_min/
// _max/_mean gauges).
func (s *Snapshot) WriteText(w io.Writer) error {
	for _, n := range sortedKeys(s.Counters) {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Gauges) {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", p, p, s.Gauges[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Histograms) {
		p := promName(n)
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s_count %d\n%s_sum %g\n%s_min %g\n%s_max %g\n%s_mean %g\n",
			p, p, h.Count, p, h.Sum, p, h.Min, p, h.Max, p, h.Mean); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot as one JSON object.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

var expvarOnce sync.Once

// PublishExpvar exposes the default registry under the expvar key
// "clockrlc" (visible at /debug/vars when an HTTP server with the
// default mux is running, e.g. a CLI's -pprof listener). Safe to call
// more than once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("clockrlc", expvar.Func(func() any {
			return defaultRegistry.Snapshot()
		}))
	})
}
