package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime self-metrics: the process observing itself. A long
// extraction (or the future rlcxd daemon) wants heap growth, GC
// behaviour and goroutine count in the same registry — and therefore
// the same -metrics/-pprof/expvar surfaces — as the pipeline's own
// counters, so one snapshot answers both "what did the run do" and
// "what did it cost the runtime".

// SampleRuntime records the Go runtime's current self-metrics into
// r's gauges (nil selects the default registry):
//
//	runtime.heap_alloc_bytes   live heap
//	runtime.heap_objects       live objects
//	runtime.sys_bytes          total memory obtained from the OS
//	runtime.goroutines         current goroutine count
//	runtime.num_gc             completed GC cycles
//	runtime.gc_pause_total_ns  cumulative stop-the-world pause
//
// Note ReadMemStats briefly stops the world; call at human
// frequencies (the sampler defaults to seconds), not per operation.
func SampleRuntime(r *Registry) {
	if r == nil {
		r = defaultRegistry
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	r.Gauge("runtime.sys_bytes").Set(float64(ms.Sys))
	r.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	r.Gauge("runtime.num_gc").Set(float64(ms.NumGC))
	r.Gauge("runtime.gc_pause_total_ns").Set(float64(ms.PauseTotalNs))
}

// RuntimeSampler periodically records runtime self-metrics into a
// registry, and feeds each newly completed GC's pause into the
// runtime.gc_pause_seconds histogram (whose decade buckets make the
// p99 pause recoverable with Histogram.Quantile).
type RuntimeSampler struct {
	r         *Registry
	stop      chan struct{}
	done      chan struct{}
	stopOnce  sync.Once
	lastNumGC uint32
}

// StartRuntimeSampler begins sampling every interval (minimum 100ms,
// default 5s when interval <= 0) until Stop. An initial sample is
// taken synchronously so the gauges exist before the first tick.
func StartRuntimeSampler(r *Registry, interval time.Duration) *RuntimeSampler {
	if r == nil {
		r = defaultRegistry
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	s := &RuntimeSampler{r: r, stop: make(chan struct{}), done: make(chan struct{})}
	s.sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.sample()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Stop takes a final sample and releases the sampler goroutine. Safe
// to call more than once.
func (s *RuntimeSampler) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		<-s.done
		s.sample()
	})
}

func (s *RuntimeSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.r.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	s.r.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	s.r.Gauge("runtime.sys_bytes").Set(float64(ms.Sys))
	s.r.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	s.r.Gauge("runtime.num_gc").Set(float64(ms.NumGC))
	s.r.Gauge("runtime.gc_pause_total_ns").Set(float64(ms.PauseTotalNs))
	// Feed each GC completed since the previous sample into the pause
	// histogram; PauseNs is a circular buffer of the last 256 pauses.
	if n := ms.NumGC; n > s.lastNumGC {
		h := s.r.Histogram("runtime.gc_pause_seconds")
		first := s.lastNumGC
		if n-first > 256 {
			first = n - 256
		}
		for i := first; i < n; i++ {
			h.Observe(float64(ms.PauseNs[(i+255)%256]) / 1e9)
		}
		s.lastNumGC = n
	}
}
