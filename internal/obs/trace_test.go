package obs

import (
	"strings"
	"testing"
	"time"
)

func ts(ms int) time.Time { return time.Unix(1000, 0).Add(time.Duration(ms) * time.Millisecond) }

func spanEvents(id, parent uint64, name string, startMs, endMs int) []Event {
	return []Event{
		{Type: EventSpanStart, Name: name, Span: id, Parent: parent, Time: ts(startMs)},
		{Type: EventSpanEnd, Name: name, Span: id, Parent: parent, Time: ts(endMs),
			Dur: time.Duration(endMs-startMs) * time.Millisecond},
	}
}

func TestBuildTraceShape(t *testing.T) {
	var evs []Event
	evs = append(evs, spanEvents(1, 0, "root", 0, 100)...)
	evs = append(evs, spanEvents(2, 1, "stage", 10, 90)...)
	evs = append(evs, spanEvents(3, 2, "cell", 20, 50)...)
	evs = append(evs, spanEvents(4, 2, "cell", 15, 80)...)
	// Orphan: parent 99 never appears.
	evs = append(evs, spanEvents(5, 99, "lost", 30, 40)...)
	// Unended: start only.
	evs = append(evs, Event{Type: EventSpanStart, Name: "open", Span: 6, Parent: 1, Time: ts(95)})
	tr := BuildTrace(evs)

	if len(tr.Roots) != 1 || tr.Roots[0].Name != "root" {
		t.Fatalf("roots = %+v", tr.Roots)
	}
	if len(tr.Orphans) != 1 || tr.Orphans[0].Name != "lost" {
		t.Fatalf("orphans = %+v", tr.Orphans)
	}
	if len(tr.Unended) != 1 || tr.Unended[0].Name != "open" {
		t.Fatalf("unended = %+v", tr.Unended)
	}
	stage := tr.Spans[2]
	if len(stage.Children) != 2 {
		t.Fatalf("stage has %d children, want 2", len(stage.Children))
	}
	// Children ordered by start: span 4 (15ms) before span 3 (20ms).
	if stage.Children[0].ID != 4 || stage.Children[1].ID != 3 {
		t.Errorf("children order = %d, %d; want 4, 3", stage.Children[0].ID, stage.Children[1].ID)
	}
	// Self time: stage 80ms − (30+65)ms children, floored at 0.
	if got := stage.SelfTime(); got != 0 {
		t.Errorf("stage self time = %v, want 0 (overlapping children exceed parent)", got)
	}
	if got := tr.Roots[0].SelfTime(); got != 20*time.Millisecond {
		t.Errorf("root self time = %v, want 20ms", got)
	}
}

func TestBuildTraceEndWithoutStart(t *testing.T) {
	evs := []Event{{
		Type: EventSpanEnd, Name: "tail", Span: 7, Time: ts(50), Dur: 30 * time.Millisecond,
	}}
	tr := BuildTrace(evs)
	sp := tr.Spans[7]
	if !sp.Start.Equal(ts(20)) {
		t.Errorf("back-computed start = %v, want %v", sp.Start, ts(20))
	}
	if sp.Started {
		t.Error("span without a start event reports Started")
	}
}

func TestAggregateOrderingAndPercentiles(t *testing.T) {
	var evs []Event
	evs = append(evs, spanEvents(1, 0, "root", 0, 100)...)
	// Three quick cells and one slow one, sequential under root.
	evs = append(evs, spanEvents(2, 1, "cell", 0, 10)...)
	evs = append(evs, spanEvents(3, 1, "cell", 10, 20)...)
	evs = append(evs, spanEvents(4, 1, "cell", 20, 30)...)
	evs = append(evs, spanEvents(5, 1, "cell", 30, 90)...)
	agg := BuildTrace(evs).Aggregate()
	if agg[0].Name != "cell" {
		t.Fatalf("top stage = %q, want cell", agg[0].Name)
	}
	c := agg[0]
	if c.Count != 4 || c.Total != 90*time.Millisecond || c.Self != 90*time.Millisecond {
		t.Errorf("cell stats = %+v", c)
	}
	if !(c.P50 <= c.P90 && c.P90 <= c.P99) {
		t.Errorf("percentiles not monotonic: %v %v %v", c.P50, c.P90, c.P99)
	}
	// p99 must land near the slow cell, p50 near the fast ones (decade
	// resolution: within the right order of magnitude).
	if c.P99 < 30*time.Millisecond || c.P99 > 60*time.Millisecond {
		t.Errorf("p99 = %v, want near the 60ms straggler (clamped to max)", c.P99)
	}
	if c.P50 < 10*time.Millisecond || c.P50 > 40*time.Millisecond {
		t.Errorf("p50 = %v, want within the 10ms decade", c.P50)
	}
	// root: self = 100 − 90 = 10ms, ranked below cell.
	if agg[1].Name != "root" || agg[1].Self != 10*time.Millisecond {
		t.Errorf("second stage = %+v", agg[1])
	}
}

func TestCriticalPathFollowsStraggler(t *testing.T) {
	var evs []Event
	evs = append(evs, spanEvents(1, 0, "root", 0, 100)...)
	evs = append(evs, spanEvents(2, 1, "fast-branch", 0, 40)...)
	evs = append(evs, spanEvents(3, 1, "slow-branch", 5, 95)...)
	evs = append(evs, spanEvents(4, 3, "inner", 10, 90)...)
	tr := BuildTrace(evs)
	path := tr.CriticalPath()
	var names []string
	for _, sp := range path {
		names = append(names, sp.Name)
	}
	if got := strings.Join(names, ">"); got != "root>slow-branch>inner" {
		t.Errorf("critical path = %s", got)
	}
	if path[0].Dur != 100*time.Millisecond {
		t.Errorf("path head dur = %v, want the root wall time", path[0].Dur)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	if p := BuildTrace(nil).CriticalPath(); p != nil {
		t.Errorf("empty trace critical path = %v", p)
	}
}

func TestReadTraceBadLine(t *testing.T) {
	in := `{"type":"span_start","name":"a","span":1,"time":"2026-01-02T03:04:05Z"}
{not json`
	_, err := ReadTrace(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 parse error", err)
	}
}

func TestReadTraceCapturesMetrics(t *testing.T) {
	in := `{"type":"metrics","time":"2026-01-02T03:04:05Z","metrics":{"time":"2026-01-02T03:04:05Z","counters":{"x":1}}}`
	evs, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildTrace(evs)
	if tr.Metrics == nil || tr.Metrics.Counters["x"] != 1 {
		t.Errorf("metrics snapshot not captured: %+v", tr.Metrics)
	}
}
