// Package obs is the extraction pipeline's observability layer:
// span-style tracing with hierarchical timing, typed process-wide
// metrics (counters, gauges, histograms) and pluggable event sinks.
// It is dependency-free (stdlib only) and designed so that the
// default, unobserved configuration costs nothing measurable on the
// hot paths it instruments:
//
//   - starting a span on an Observer with no sinks returns a zero
//     Span value without locking or allocating;
//   - counters are single atomic adds, created once at package init
//     of the instrumented package and shared process-wide.
//
// Tracing model: an Observer is a tracing scope. Start begins a span;
// spans started while another span of the same Observer is open are
// parented to it (an explicit stack, no goroutine magic), so
// single-goroutine pipelines — extract → table lookup → cascade —
// nest naturally. The stack is a strictly single-goroutine
// convenience: concurrent code must carry its parent explicitly,
// either with Span.Child or — the preferred form since the pipeline
// went concurrent — with StartCtx/ContextWithSpan/SpanFromContext,
// which thread the parent through a context.Context and never read or
// write the shared stack. Every span start/end is forwarded to the
// Observer's sinks as an Event.
//
// Metrics model: counters/gauges/histograms live in a Registry
// (package-level helpers use a process-wide default, like expvar).
// Snapshot reduces a registry to a serialisable value that can be
// dumped as JSON, Prometheus text, or published through expvar.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Observer is a tracing scope: spans started on it are timed and
// forwarded to its sinks. The zero value and nil are valid, disabled
// observers. An Observer with no sinks is disabled and Start is
// allocation-free.
type Observer struct {
	enabled atomic.Bool
	nextID  atomic.Uint64

	mu    sync.Mutex
	sinks []Sink
	stack []stackEntry // open-span entries, innermost last (auto-parenting)
	now   func() time.Time
}

// stackEntry is one auto-parenting stack slot. Entries ended out of
// order are marked closed in place rather than removed, so closing a
// span never shifts the positions of the entries around it — a new
// Start parents to the innermost entry that is still open, and
// trailing closed entries are trimmed when the top of the stack ends.
type stackEntry struct {
	id     uint64
	closed bool
}

// New returns an Observer forwarding to the given sinks (none ⇒
// disabled until AddSink).
func New(sinks ...Sink) *Observer {
	o := &Observer{now: time.Now}
	for _, s := range sinks {
		o.AddSink(s)
	}
	return o
}

var defaultObserver = New()

// Default returns the process-wide observer. Library code that is not
// handed an explicit Observer (e.g. via core's WithObserver option)
// traces here; it stays disabled until a sink is attached, typically
// by a CLI's -trace flag.
func Default() *Observer { return defaultObserver }

// Start begins a span on the default observer.
func Start(name string) Span { return defaultObserver.Start(name) }

// AddSink attaches a sink and enables the observer.
func (o *Observer) AddSink(s Sink) {
	if s == nil {
		return
	}
	o.mu.Lock()
	o.sinks = append(o.sinks, s)
	if o.now == nil {
		o.now = time.Now
	}
	o.mu.Unlock()
	o.enabled.Store(true)
}

// RemoveSink detaches a previously added sink; the observer is
// disabled again when no sinks remain.
func (o *Observer) RemoveSink(s Sink) {
	o.mu.Lock()
	kept := o.sinks[:0]
	for _, have := range o.sinks {
		if have != s {
			kept = append(kept, have)
		}
	}
	o.sinks = kept
	if len(kept) == 0 {
		o.stack = o.stack[:0]
		o.enabled.Store(false)
	}
	o.mu.Unlock()
}

// Enabled reports whether spans are currently recorded.
func (o *Observer) Enabled() bool { return o != nil && o.enabled.Load() }

func (o *Observer) clock() time.Time {
	if o.now != nil {
		return o.now()
	}
	return time.Now()
}

// Span is one timed operation. The zero value is a valid, disabled
// span whose methods are no-ops, so instrumented code never needs to
// branch on whether tracing is on.
type Span struct{ d *spanData }

type spanData struct {
	o      *Observer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	pushed bool // on the auto-parenting stack (legacy Start only)
	done   atomic.Bool

	mu    sync.Mutex
	attrs map[string]any
}

// Start begins a span. Its parent is the innermost span of this
// observer that is still open (zero for a root span).
//
// Start's auto-parenting reads a stack shared by the whole observer,
// so it is only correct when one goroutine at a time starts spans.
// Code that fans out — worker pools, batches, anything reached from a
// *Ctx entry point — must use StartCtx (or Span.Child), which carry
// the parent explicitly and never touch the stack.
func (o *Observer) Start(name string) Span {
	if o == nil || !o.enabled.Load() {
		return Span{}
	}
	d := &spanData{o: o, id: o.nextID.Add(1), name: name, start: o.clock(), pushed: true}
	o.mu.Lock()
	for i := len(o.stack) - 1; i >= 0; i-- {
		if !o.stack[i].closed {
			d.parent = o.stack[i].id
			break
		}
	}
	o.stack = append(o.stack, stackEntry{id: d.id})
	sinks := o.sinks
	o.mu.Unlock()
	emit(sinks, &Event{Type: EventSpanStart, Name: name, Span: d.id, Parent: d.parent, Time: d.start})
	return Span{d: d}
}

// Child begins a span explicitly parented to s, bypassing the
// observer's open-span stack — the form to use when fanning out to
// goroutines, where stack-based parenting would interleave.
func (s Span) Child(name string) Span {
	if s.d == nil {
		return Span{}
	}
	o := s.d.o
	if !o.enabled.Load() {
		return Span{}
	}
	d := &spanData{o: o, id: o.nextID.Add(1), parent: s.d.id, name: name, start: o.clock()}
	o.mu.Lock()
	sinks := o.sinks
	o.mu.Unlock()
	emit(sinks, &Event{Type: EventSpanStart, Name: name, Span: d.id, Parent: d.parent, Time: d.start})
	return Span{d: d}
}

// SetAttr attaches a key/value to the span; it is reported with the
// span's end event. Values should be JSON-marshalable.
func (s Span) SetAttr(key string, v any) {
	if s.d == nil {
		return
	}
	s.d.mu.Lock()
	if s.d.attrs == nil {
		s.d.attrs = make(map[string]any, 4)
	}
	s.d.attrs[key] = v
	s.d.mu.Unlock()
}

// Active reports whether the span is recording.
func (s Span) Active() bool { return s.d != nil }

// End finishes the span, emitting its duration and attributes.
// Ending a zero span or ending twice is a no-op.
func (s Span) End() {
	d := s.d
	if d == nil || !d.done.CompareAndSwap(false, true) {
		return
	}
	o := d.o
	end := o.clock()
	o.mu.Lock()
	// Retire the span's auto-parenting slot. The top of the stack pops
	// (plus any trailing already-closed entries beneath it); a span
	// ended out of order is only marked closed in place — removal used
	// to shift the entries above it down, which let a sibling started
	// afterwards re-parent under a span from another goroutine. Spans
	// created by StartCtx/Child were never pushed and skip the stack
	// entirely.
	if d.pushed {
		for i := len(o.stack) - 1; i >= 0; i-- {
			if o.stack[i].id == d.id {
				o.stack[i].closed = true
				break
			}
		}
		for n := len(o.stack); n > 0 && o.stack[n-1].closed; n = len(o.stack) {
			o.stack = o.stack[:n-1]
		}
	}
	sinks := o.sinks
	o.mu.Unlock()
	d.mu.Lock()
	attrs := d.attrs
	d.mu.Unlock()
	emit(sinks, &Event{
		Type: EventSpanEnd, Name: d.name, Span: d.id, Parent: d.parent,
		Time: end, Dur: end.Sub(d.start), Attrs: attrs,
	})
}

func emit(sinks []Sink, e *Event) {
	for _, s := range sinks {
		s.Emit(e)
	}
}
