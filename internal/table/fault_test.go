package table

// Chaos matrix for the build/cache/lookup pipeline: every injection
// point exercised in every mode, plus the cancellation and
// graceful-degradation guarantees the fault layer exists to provide.
// All tests run under -race via the Makefile chaos target.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"clockrlc/internal/fault"
)

// chaosConfig is a deliberately tiny sweep so every test pays a
// fraction of a second, not a field-solver campaign.
func chaosConfig() (Config, Axes) {
	cfg := freeConfig()
	axes := Axes{
		Widths:   LogAxis(1e-6, 8e-6, 2),
		Spacings: LogAxis(1e-6, 4e-6, 2),
		Lengths:  LogAxis(100e-6, 2000e-6, 3),
	}
	return cfg, axes
}

func encodeSet(t *testing.T, s *Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestInjectedSolverErrorFailsBuild(t *testing.T) {
	cfg, axes := chaosConfig()
	fault.Register(fault.NewInjector(1, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeError, Nth: 2,
	}))
	defer fault.Reset()
	if _, err := Build(cfg, axes); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestTransientSolverErrorIsRetriedToSuccess(t *testing.T) {
	cfg, axes := chaosConfig()
	clean, err := Build(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeSet(t, clean)

	retries0, _ := fault.RetryStats()
	// Two transient failures, both inside the per-cell retry budget of
	// three attempts.
	fault.Register(fault.NewInjector(1, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeError,
		Nth: 3, Transient: true, Times: 1,
	}, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeError,
		Nth: 7, Transient: true, Times: 1,
	}))
	defer fault.Reset()
	chaotic, err := Build(cfg, axes)
	if err != nil {
		t.Fatalf("transient errors should be absorbed by retry: %v", err)
	}
	if retries, _ := fault.RetryStats(); retries == retries0 {
		t.Fatal("retry counter did not move")
	}
	if !bytes.Equal(want, encodeSet(t, chaotic)) {
		t.Fatal("build with retried transients is not bit-identical to the clean build")
	}
}

func TestPersistentTransientSolverErrorExhaustsRetries(t *testing.T) {
	cfg, axes := chaosConfig()
	// Every solver call fails transiently: the retry budget runs out
	// and the exhausted error surfaces, still marked transient.
	fault.Register(fault.NewInjector(1, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeError,
		Prob: 1, Transient: true,
	}))
	defer fault.Reset()
	_, err := Build(cfg, axes)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want exhausted injected error, got %v", err)
	}
}

func TestInjectedWorkerPanicSurfacesAsCellPanic(t *testing.T) {
	cfg, axes := chaosConfig()
	cfg.Workers = 4
	fault.Register(fault.NewInjector(1, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModePanic, Nth: 2,
	}))
	defer fault.Reset()
	_, err := Build(cfg, axes)
	var cp *CellPanic
	if !errors.As(err, &cp) {
		t.Fatalf("want *CellPanic, got %v", err)
	}
	if cp.Cell < 0 {
		t.Fatalf("cell index not recorded: %+v", cp)
	}
	ip, ok := cp.Value.(*fault.InjectedPanic)
	if !ok {
		t.Fatalf("panic value %T is not the injected payload", cp.Value)
	}
	if ip.Point != fault.SolverCall {
		t.Fatalf("panic payload names %s, want %s", ip.Point, fault.SolverCall)
	}
	if len(cp.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

func TestInjectedLatencySlowsButDoesNotFail(t *testing.T) {
	cfg, axes := chaosConfig()
	const delay = 5 * time.Millisecond
	fault.Register(fault.NewInjector(1, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeLatency,
		Nth: 1, Delay: delay,
	}))
	defer fault.Reset()
	t0 := time.Now()
	if _, err := Build(cfg, axes); err != nil {
		t.Fatalf("latency injection must not fail the build: %v", err)
	}
	if took := time.Since(t0); took < delay {
		t.Fatalf("build took %v, expected at least the injected %v", took, delay)
	}
}

func TestInjectedLookupError(t *testing.T) {
	cfg, axes := chaosConfig()
	set, err := Build(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.SelfL(2e-6, 500e-6); err != nil {
		t.Fatalf("clean lookup failed: %v", err)
	}
	fault.Register(fault.NewInjector(1, fault.Rule{
		Point: fault.SplineLookup, Mode: fault.ModeError, Prob: 1,
	}))
	defer fault.Reset()
	if _, err := set.SelfL(2e-6, 500e-6); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("SelfL: want ErrInjected, got %v", err)
	}
	if _, err := set.MutualL(2e-6, 2e-6, 1.5e-6, 500e-6); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("MutualL: want ErrInjected, got %v", err)
	}
}

// goroutines settles transient runtime goroutines before counting, so
// the leak assertion is not fooled by a scheduler still winding down.
func goroutines() int {
	for i := 0; i < 50; i++ {
		runtime.Gosched()
	}
	return runtime.NumGoroutine()
}

func TestBuildCancellationIsPromptAndLeakFree(t *testing.T) {
	cfg, axes := chaosConfig()
	cfg.Workers = 4
	// Stretch each cell so the cancel reliably lands mid-sweep.
	fault.Register(fault.NewInjector(1, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeLatency,
		Prob: 1, Delay: 2 * time.Millisecond,
	}))
	defer fault.Reset()

	before := goroutines()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := BuildCtx(ctx, cfg, axes, nil)
	took := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The acceptance bound is "within one sweep cell's duration" of the
	// cancel; with 2ms cells and a 5ms cancel, a generous ceiling still
	// catches a build that ran the remaining sweep to completion.
	if took > time.Second {
		t.Fatalf("cancelled build returned after %v", took)
	}
	// All workers must have drained: the goroutine count returns to its
	// pre-build baseline.
	deadline := time.Now().Add(2 * time.Second)
	for goroutines() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := goroutines(); got > before {
		t.Fatalf("goroutine leak after cancelled build: %d before, %d after", before, got)
	}
}

func TestCacheGracefulDegradation(t *testing.T) {
	cfg, axes := chaosConfig()
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cache, then corrupt the stored entry in place.
	clean, err := cache.GetOrBuild(cfg, axes, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeSet(t, clean)
	key, err := CacheKey(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.Path(key), []byte(`{"truncated":`), 0o644); err != nil {
		t.Fatal(err)
	}

	// One transient read hiccup on top of the corruption: the read is
	// retried, still loads garbage, and the cache degrades to a rebuild
	// whose bytes match the original build exactly.
	_, _, _, corrupt0 := CacheStats()
	fault.Register(fault.NewInjector(1, fault.Rule{
		Point: fault.CacheRead, Mode: fault.ModeError,
		Nth: 1, Transient: true, Times: 1,
	}))
	defer fault.Reset()
	rebuilt, err := cache.GetOrBuild(cfg, axes, nil)
	if err != nil {
		t.Fatalf("degraded read must rebuild, not fail: %v", err)
	}
	if !bytes.Equal(want, encodeSet(t, rebuilt)) {
		t.Fatal("rebuild after corruption is not bit-identical to the original build")
	}
	if _, _, _, corrupt := CacheStats(); corrupt == corrupt0 {
		t.Fatal("corrupt entry was not counted")
	}
	// The rebuild re-persisted the entry; a clean process sees a hit.
	fault.Reset()
	if _, ok, err := cache.Get(cfg, axes); err != nil || !ok {
		t.Fatalf("entry not healed: ok=%v err=%v", ok, err)
	}
}

func TestCacheWriteFailureDegradesToUnpersistedSet(t *testing.T) {
	cfg, axes := chaosConfig()
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Every write attempt fails transiently: the retry budget is spent,
	// but the freshly built set is still returned — only persistence is
	// lost.
	fault.Register(fault.NewInjector(1, fault.Rule{
		Point: fault.CacheWrite, Mode: fault.ModeError,
		Prob: 1, Transient: true,
	}))
	defer fault.Reset()
	set, err := cache.GetOrBuild(cfg, axes, nil)
	if err != nil {
		t.Fatalf("write-back failure must not fail the extraction: %v", err)
	}
	if set == nil {
		t.Fatal("no set returned")
	}
	fault.Reset()
	if _, ok, err := cache.Get(cfg, axes); err != nil || ok {
		t.Fatalf("entry should not have been persisted: ok=%v err=%v", ok, err)
	}
}

func TestGetOrBuildCtxHonoursPreCancelledContext(t *testing.T) {
	cfg, axes := chaosConfig()
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cache.GetOrBuildCtx(ctx, cfg, axes, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
