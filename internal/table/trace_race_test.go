package table

import (
	"context"
	"fmt"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
	"clockrlc/internal/units"
)

// TestParallelBuildTraceParenting is the concurrency-correctness gate
// for the tracing layer (run under -race by `make race`/`make chaos`):
// a parallel BuildCtx at several worker counts must produce a trace
// that reconstructs with zero orphaned and zero unended spans, and
// with every per-cell span parented under the build span — cell spans
// are started on worker goroutines via StartCtx, so any accidental
// dependence on the observer's single-goroutine span stack would
// mis-parent them nondeterministically.
func TestParallelBuildTraceParenting(t *testing.T) {
	axes := Axes{
		Widths:   LogAxis(units.Um(1), units.Um(14), 3),
		Spacings: LogAxis(units.Um(0.5), units.Um(22), 3),
		Lengths:  LogAxis(units.Um(50), units.Um(8000), 4),
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sink := &obs.MemorySink{}
			o := obs.New(sink)
			cfg := Config{
				Name:      fmt.Sprintf("trace-race-%d", workers),
				Thickness: units.Um(2),
				Rho:       units.RhoCopper,
				Shielding: geom.ShieldNone,
				Frequency: 5e9,
				Workers:   workers,
			}
			if _, err := BuildCtx(context.Background(), cfg, axes, o); err != nil {
				t.Fatal(err)
			}
			tr := obs.BuildTrace(sink.Events())
			if len(tr.Orphans) != 0 {
				for _, sp := range tr.Orphans {
					t.Errorf("orphaned span %d %q (parent %d never seen)", sp.ID, sp.Name, sp.Parent)
				}
			}
			if len(tr.Unended) != 0 {
				for _, sp := range tr.Unended {
					t.Errorf("unended span %d %q", sp.ID, sp.Name)
				}
			}
			if len(tr.Roots) != 1 {
				t.Fatalf("got %d roots, want exactly the build span", len(tr.Roots))
			}
			build := tr.Roots[0]
			if build.Name != "table.build" {
				t.Fatalf("root span = %q, want table.build", build.Name)
			}
			var cells int
			for _, sp := range tr.Spans {
				switch sp.Name {
				case "table.self_cell", "table.mutual_cell":
					cells++
					if sp.Parent != build.ID {
						t.Errorf("%s span %d parented under %d, want build span %d",
							sp.Name, sp.ID, sp.Parent, build.ID)
					}
					if _, ok := sp.Attrs["cell"]; !ok {
						t.Errorf("%s span %d missing cell attribute", sp.Name, sp.ID)
					}
				}
			}
			// Every sweep cell must have produced a span: the self sweep
			// covers widths×lengths, the mutual sweep unordered width
			// pairs × spacings × lengths.
			nw, ns, nl := len(axes.Widths), len(axes.Spacings), len(axes.Lengths)
			want := nw*nl + nw*(nw+1)/2*ns*nl
			if cells != want {
				t.Errorf("got %d cell spans, want %d", cells, want)
			}
			// The critical path of a build trace starts at the build span,
			// so its head duration is the build wall time by construction.
			path := tr.CriticalPath()
			if len(path) == 0 || path[0] != build {
				t.Errorf("critical path does not start at the build span")
			}
		})
	}
}
