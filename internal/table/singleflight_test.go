package table

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"clockrlc/internal/fault"
)

// sweepSolves is the exact field-solver call count of one cold build
// over axes: every self cell plus the mutual upper triangle.
func sweepSolves(axes Axes) int64 {
	nw, ns, nl := len(axes.Widths), len(axes.Spacings), len(axes.Lengths)
	return int64(nw*nl + nw*(nw+1)/2*ns*nl)
}

// The single-flight acceptance test: 16 concurrent misses of the same
// content address run exactly one field-solver sweep and one
// write-back; every other caller either coalesces onto the leader's
// flight or hits the just-written entry. Latency injection at the
// solver point keeps the sweep slow enough that the callers genuinely
// overlap. Run under -race this also proves the shared result is
// handed out without mutation (every caller uses a distinct Name).
func TestGetOrBuildCtxSingleFlight(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()
	fault.Register(fault.NewInjector(42, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeLatency, Prob: 1, Delay: 2 * time.Millisecond,
	}))
	defer fault.Reset()

	solves0 := tableSolves.Value()
	writes0 := cacheWrites.Value()
	hits0 := cacheHits.Value()
	coal0 := cacheCoalesced.Value()

	const callers = 16
	sets := make([]*Set, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			mine := cfg
			mine.Name = fmt.Sprintf("caller/%d", i)
			sets[i], errs[i] = c.GetOrBuildCtx(context.Background(), mine, axes, nil)
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got, want := tableSolves.Value()-solves0, sweepSolves(axes); got != want {
		t.Errorf("solver_calls += %d, want exactly one sweep (%d)", got, want)
	}
	if got := cacheWrites.Value() - writes0; got != 1 {
		t.Errorf("cache_writes += %d, want 1", got)
	}
	if got := (cacheCoalesced.Value() - coal0) + (cacheHits.Value() - hits0); got != callers-1 {
		t.Errorf("coalesced+hits += %d, want %d (every non-leader shares or hits)", got, callers-1)
	}

	// Every caller got a set carrying its own Name, bit-identical
	// values, and nobody's header leaked into anybody else's.
	w, l := axes.Widths[0], axes.Lengths[0]
	ref, err := sets[0].SelfL(w, l)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sets {
		if got, want := s.Config.Name, fmt.Sprintf("caller/%d", i); got != want {
			t.Errorf("caller %d got Name %q, want %q", i, got, want)
		}
		if v, err := s.SelfL(w, l); err != nil || v != ref {
			t.Errorf("caller %d: SelfL = %g, %v; want %g", i, v, err, ref)
		}
	}
}

// A leader whose own caller cancels must not poison the waiters: an
// uncancelled waiter retries the flight (becoming the next leader)
// and still gets a set.
func TestGetOrBuildCtxWaiterSurvivesLeaderCancel(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()
	fault.Register(fault.NewInjector(7, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeLatency, Prob: 1, Delay: 2 * time.Millisecond,
	}))
	defer fault.Reset()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderStarted := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(leaderStarted)
		_, leaderErr = c.GetOrBuildCtx(leaderCtx, cfg, axes, nil)
	}()
	<-leaderStarted
	time.Sleep(5 * time.Millisecond) // let the leader enter its sweep
	cancelLeader()

	s, err := c.GetOrBuildCtx(context.Background(), cfg, axes, nil)
	if err != nil {
		t.Fatalf("waiter failed after leader cancel: %v", err)
	}
	if s == nil {
		t.Fatal("waiter got a nil set")
	}
	wg.Wait()
	if leaderErr == nil {
		// The leader may legitimately win the race and finish before
		// the cancel lands; only a non-cancellation failure is wrong.
		return
	}
	if !errors.Is(leaderErr, context.Canceled) && !errors.Is(leaderErr, context.DeadlineExceeded) {
		t.Errorf("leader error = %v, want a cancellation", leaderErr)
	}
}

// The shared-set mutation regression test: concurrent GetCtx callers
// using different Names must each see their own Name on the returned
// header, and (under -race) the loaded set itself must never be
// written — the hit path returns a shallow header copy instead of
// rewriting Config on the cached set.
func TestGetCtxConcurrentDistinctNames(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()
	if _, err := c.GetOrBuild(cfg, axes, nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("goroutine/%d", i)
			for j := 0; j < 20; j++ {
				mine := cfg
				mine.Name = name
				mine.Workers = i + 1
				s, ok, err := c.GetCtx(context.Background(), mine, axes)
				if err != nil || !ok {
					t.Errorf("GetCtx: ok=%v err=%v", ok, err)
					return
				}
				if s.Config.Name != name || s.Config.Workers != i+1 {
					t.Errorf("got header %q/%d, want %q/%d",
						s.Config.Name, s.Config.Workers, name, i+1)
					return
				}
				s.Close()
			}
		}(i)
	}
	wg.Wait()
}
