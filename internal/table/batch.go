package table

// Vectorized lookups. SelfLBatch and MutualLBatch are the batch
// counterparts of SelfL and MutualL: identical semantics per query —
// argument validation, fault injection, lookup-policy handling, armed
// value checks, and bit-identical results — but one spline.EvalBatch
// contraction pass over the whole batch (which dedups repeated
// geometries; clock trees repeat a handful) and one batched atomic add
// per counter instead of one per query.

import (
	"fmt"
	"sync"

	"clockrlc/internal/check"
	"clockrlc/internal/fault"
)

// BatchError reports which query of a batch lookup failed. It unwraps
// to the underlying per-query error (e.g. one unwrapping further to
// ErrOutOfRange under LookupError policy).
type BatchError struct {
	// Index is the query's position in the batch's input order.
	Index int
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("table: batch query %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// coordPool recycles the packed coordinate buffers the batch lookups
// assemble for spline.Grid.EvalBatch.
var coordPool = sync.Pool{New: func() any { return new([]float64) }}

func getCoordBuf(n int) (*[]float64, []float64) {
	p := coordPool.Get().(*[]float64)
	buf := *p
	if cap(buf) < n {
		buf = make([]float64, n)
		*p = buf
	}
	return p, buf[:n]
}

// lookupCounts accumulates per-query classification so the process
// counters advance once per batch, not once per query.
type lookupCounts struct {
	hits, clamped, oobExtrapolated, oobClamps, oobErrors int64
}

func (lc *lookupCounts) flush() {
	if lc.hits != 0 {
		lookupHits.Add(lc.hits)
	}
	if lc.clamped != 0 {
		lookupClamped.Add(lc.clamped)
	}
	if lc.oobExtrapolated != 0 {
		lookupOOBExtrapolated.Add(lc.oobExtrapolated)
	}
	if lc.oobClamps != 0 {
		lookupOOBClamps.Add(lc.oobClamps)
	}
	if lc.oobErrors != 0 {
		lookupOOBErrors.Add(lc.oobErrors)
	}
}

// SelfLBatch looks up the self inductance for n = len(out) traces,
// query i taking width ws[i] and length ls[i], writing henries to
// out[i]. Every per-query behaviour matches SelfL exactly — the same
// validation errors, the same fault-injection point, the same lookup
// policy and counters, and bit-identical values. The first failing
// query (in input order) stops the batch with a *BatchError naming it;
// queries before it have been counted, none of out is then valid.
func (s *Set) SelfLBatch(ws, ls, out []float64) error {
	n := len(out)
	if len(ws) != n || len(ls) != n {
		return fmt.Errorf("table: SelfLBatch needs equal-length slices (w=%d, l=%d, out=%d)", len(ws), len(ls), n)
	}
	if n == 0 {
		return nil
	}
	var lc lookupCounts
	defer lc.flush()
	bp, coords := getCoordBuf(2 * n)
	defer coordPool.Put(bp)
	for i := 0; i < n; i++ {
		w, l := ws[i], ls[i]
		if !(w > 0) || !(l > 0) {
			return &BatchError{Index: i, Err: fmt.Errorf("table: SelfL arguments must be positive (w=%g, l=%g)", w, l)}
		}
		if err := fault.Check(fault.SplineLookup); err != nil {
			return &BatchError{Index: i, Err: err}
		}
		ok := inRange(s.Axes.Widths, w) && inRange(s.Axes.Lengths, l)
		if ok {
			lc.hits++
		} else {
			lc.clamped++
			switch s.Lookup {
			case LookupError:
				lc.oobErrors++
				return &BatchError{Index: i, Err: fmt.Errorf("table: SelfL(w=%g, l=%g) outside table %q axes (w ∈ [%g, %g], l ∈ [%g, %g]): %w",
					w, l, s.Config.Name, s.Axes.Widths[0], s.Axes.Widths[len(s.Axes.Widths)-1],
					s.Axes.Lengths[0], s.Axes.Lengths[len(s.Axes.Lengths)-1], ErrOutOfRange)}
			case LookupClamp:
				lc.oobClamps++
				w, l = clampTo(s.Axes.Widths, w), clampTo(s.Axes.Lengths, l)
			default:
				lc.oobExtrapolated++
			}
		}
		coords[2*i], coords[2*i+1] = w, l
	}
	if err := s.Self.EvalBatch(coords, out); err != nil {
		return err
	}
	if e := check.Active(); e.Armed() {
		for i, v := range out {
			if !finite(v) || v <= 0 {
				if err := e.Report(&check.Violation{
					Stage: check.StageLookup, Invariant: "self inductance finite and positive",
					Subject: fmt.Sprintf("table %q", s.Config.Name),
					// coords holds the post-policy (possibly clamped)
					// coordinates, matching the scalar path's message.
					Cell:   fmt.Sprintf("SelfL(w=%g, l=%g)", coords[2*i], coords[2*i+1]),
					Detail: fmt.Sprintf("L = %g", v),
				}); err != nil {
					return &BatchError{Index: i, Err: err}
				}
			}
		}
	}
	return nil
}

// MutualLBatch looks up the mutual inductance for n = len(out) trace
// pairs, query i taking widths w1s[i] and w2s[i], edge-to-edge spacing
// sps[i] and common length ls[i]. Per-query semantics match MutualL
// exactly; see SelfLBatch for the batch contract.
func (s *Set) MutualLBatch(w1s, w2s, sps, ls, out []float64) error {
	n := len(out)
	if len(w1s) != n || len(w2s) != n || len(sps) != n || len(ls) != n {
		return fmt.Errorf("table: MutualLBatch needs equal-length slices (w1=%d, w2=%d, s=%d, l=%d, out=%d)",
			len(w1s), len(w2s), len(sps), len(ls), n)
	}
	if n == 0 {
		return nil
	}
	var lc lookupCounts
	defer lc.flush()
	bp, coords := getCoordBuf(4 * n)
	defer coordPool.Put(bp)
	for i := 0; i < n; i++ {
		w1, w2, sp, l := w1s[i], w2s[i], sps[i], ls[i]
		if !(w1 > 0) || !(w2 > 0) || !(sp > 0) || !(l > 0) {
			return &BatchError{Index: i, Err: fmt.Errorf("table: MutualL arguments must be positive (w1=%g, w2=%g, s=%g, l=%g)", w1, w2, sp, l)}
		}
		if err := fault.Check(fault.SplineLookup); err != nil {
			return &BatchError{Index: i, Err: err}
		}
		ok := inRange(s.Axes.Widths, w1) && inRange(s.Axes.Widths, w2) &&
			inRange(s.Axes.Spacings, sp) && inRange(s.Axes.Lengths, l)
		if ok {
			lc.hits++
		} else {
			lc.clamped++
			switch s.Lookup {
			case LookupError:
				lc.oobErrors++
				return &BatchError{Index: i, Err: fmt.Errorf("table: MutualL(w1=%g, w2=%g, s=%g, l=%g) outside table %q axes (w ∈ [%g, %g], s ∈ [%g, %g], l ∈ [%g, %g]): %w",
					w1, w2, sp, l, s.Config.Name,
					s.Axes.Widths[0], s.Axes.Widths[len(s.Axes.Widths)-1],
					s.Axes.Spacings[0], s.Axes.Spacings[len(s.Axes.Spacings)-1],
					s.Axes.Lengths[0], s.Axes.Lengths[len(s.Axes.Lengths)-1], ErrOutOfRange)}
			case LookupClamp:
				lc.oobClamps++
				w1, w2 = clampTo(s.Axes.Widths, w1), clampTo(s.Axes.Widths, w2)
				sp, l = clampTo(s.Axes.Spacings, sp), clampTo(s.Axes.Lengths, l)
			default:
				lc.oobExtrapolated++
			}
		}
		coords[4*i], coords[4*i+1], coords[4*i+2], coords[4*i+3] = w1, w2, sp, l
	}
	if err := s.Mutual.EvalBatch(coords, out); err != nil {
		return err
	}
	if e := check.Active(); e.Armed() {
		for i, v := range out {
			if !finite(v) || v < 0 {
				if err := e.Report(&check.Violation{
					Stage: check.StageLookup, Invariant: "mutual inductance finite and non-negative",
					Subject: fmt.Sprintf("table %q", s.Config.Name),
					Cell: fmt.Sprintf("MutualL(w1=%g, w2=%g, s=%g, l=%g)",
						coords[4*i], coords[4*i+1], coords[4*i+2], coords[4*i+3]),
					Detail: fmt.Sprintf("M = %g", v),
				}); err != nil {
					return &BatchError{Index: i, Err: err}
				}
			}
		}
	}
	return nil
}
