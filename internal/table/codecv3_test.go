package table

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lookupProbe evaluates a deterministic sweep of self and mutual
// lookups (in-range and extrapolated) and returns the raw bits, so two
// sets can be compared for bit-identical lookup behaviour.
func lookupProbe(t *testing.T, s *Set) []uint64 {
	t.Helper()
	var out []uint64
	ws := []float64{s.Axes.Widths[0] * 0.5, s.Axes.Widths[0], s.Axes.Widths[1] * 1.1, s.Axes.Widths[len(s.Axes.Widths)-1] * 1.5}
	sps := []float64{s.Axes.Spacings[0], s.Axes.Spacings[len(s.Axes.Spacings)-1] * 1.2}
	ls := []float64{s.Axes.Lengths[0], s.Axes.Lengths[1] * 1.3, s.Axes.Lengths[len(s.Axes.Lengths)-1]}
	for _, w := range ws {
		for _, l := range ls {
			v, err := s.SelfL(w, l)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, math.Float64bits(v))
		}
	}
	for _, w1 := range ws[:2] {
		for _, sp := range sps {
			for _, l := range ls {
				v, err := s.MutualL(w1, ws[2], sp, l)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, math.Float64bits(v))
			}
		}
	}
	return out
}

func TestCodecV3RoundTripBitIdentical(t *testing.T) {
	orig := syntheticSet(t)
	orig.Config.Thickness = 0.5e-6
	orig.Config.Rho = 1.68e-8
	orig.Config.Frequency = 3.2e9
	orig.Config.PlaneStrips = 12
	orig.Config.SubW = 4
	orig.Config.SubT = 2
	orig.Config.Workers = 7 // execution detail: not persisted by v3

	path := filepath.Join(t.TempDir(), "set.rlct")
	if err := orig.SaveFileV3(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()

	wantCfg := orig.Config
	wantCfg.Workers = 0
	if got.Config != wantCfg {
		t.Errorf("config round-trip: got %+v, want %+v", got.Config, wantCfg)
	}
	for name, pair := range map[string][2][]float64{
		"widths":   {orig.Axes.Widths, got.Axes.Widths},
		"spacings": {orig.Axes.Spacings, got.Axes.Spacings},
		"lengths":  {orig.Axes.Lengths, got.Axes.Lengths},
		"self":     {orig.Self.Vals, got.Self.Vals},
		"mutual":   {orig.Mutual.Vals, got.Mutual.Vals},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s[%d]: %v != %v (bitwise)", name, i, b[i], a[i])
			}
		}
	}
	a, b := lookupProbe(t, orig), lookupProbe(t, got)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lookup probe %d differs between original and v3-loaded set", i)
		}
	}
}

// TestCodecV3GoldenMigration is the migration gate: a v2 JSON file
// loaded and re-saved as v3 must yield bit-identical values and
// bit-identical lookup results.
func TestCodecV3GoldenMigration(t *testing.T) {
	dir := t.TempDir()
	orig := syntheticSet(t)
	jsonPath := filepath.Join(dir, "set.json")
	if err := orig.SaveFile(jsonPath); err != nil {
		t.Fatal(err)
	}

	fromJSON, err := LoadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	v3Path := filepath.Join(dir, "set.rlct")
	if err := fromJSON.SaveFileV3(v3Path); err != nil {
		t.Fatal(err)
	}
	fromV3, err := LoadFile(v3Path)
	if err != nil {
		t.Fatal(err)
	}
	defer fromV3.Close()

	for name, pair := range map[string][2][]float64{
		"self":   {fromJSON.Self.Vals, fromV3.Self.Vals},
		"mutual": {fromJSON.Mutual.Vals, fromV3.Mutual.Vals},
	} {
		a, b := pair[0], pair[1]
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s[%d]: v3 %v != v2 %v (bitwise)", name, i, b[i], a[i])
			}
		}
	}
	a, b := lookupProbe(t, fromJSON), lookupProbe(t, fromV3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lookup probe %d: v2-loaded and migrated v3 sets disagree bitwise", i)
		}
	}
}

func TestCodecV3LoadFromReader(t *testing.T) {
	orig := syntheticSet(t)
	var buf bytes.Buffer
	if err := orig.SaveV3(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mapped() {
		t.Error("reader-loaded set claims a file mapping")
	}
	if got.Config.Name != orig.Config.Name {
		t.Errorf("name %q != %q", got.Config.Name, orig.Config.Name)
	}
	for i := range orig.Mutual.Vals {
		if math.Float64bits(got.Mutual.Vals[i]) != math.Float64bits(orig.Mutual.Vals[i]) {
			t.Fatalf("mutual[%d] differs", i)
		}
	}
}

func TestCodecV3RejectsCorruption(t *testing.T) {
	orig := syntheticSet(t)
	var buf bytes.Buffer
	if err := orig.SaveV3(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	// reseal recomputes the checksum after a structural mutation, so
	// the test reaches the size/bound guards behind the integrity
	// check (the layers a checksum-aware corruptor would hit).
	reseal := func(b []byte) []byte {
		sum := v3Checksum(b)
		copy(b[16:48], sum[:])
		return b
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"truncated_header", func(b []byte) []byte { return b[:v3HeaderSize/2] }, "truncated"},
		{"truncated_body", func(b []byte) []byte { return reseal(b[:len(b)-9]) }, "size mismatch"},
		{"oversized", func(b []byte) []byte { return reseal(append(b, make([]byte, 16)...)) }, "size mismatch"},
		{"bit_flip_value", func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b }, "checksum mismatch"},
		{"bit_flip_header", func(b []byte) []byte { b[49] ^= 0x01; return b }, "checksum mismatch"},
		{"future_version", func(b []byte) []byte { b[8] = 77; return b }, "newer than this build"},
		{"absurd_axis_count", func(b []byte) []byte {
			b[104], b[105], b[106] = 0xFF, 0xFF, 0xFF
			return reseal(b)
		}, "exceed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), good...))
			// Both entry points must reject it with the same diagnosis.
			if _, err := Load(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("Load: got %v, want substring %q", err, tc.wantSub)
			}
			p := filepath.Join(dir, tc.name+".rlct")
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadFile(p)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("LoadFile: got %v, want substring %q", err, tc.wantSub)
			}
			if err != nil && !strings.Contains(err.Error(), p) {
				t.Errorf("LoadFile error does not name the file: %v", err)
			}
		})
	}
}

func TestCodecV3CloseIdempotent(t *testing.T) {
	orig := syntheticSet(t)
	path := filepath.Join(t.TempDir(), "set.rlct")
	if err := orig.SaveFileV3(path); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped := s.Mapped()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Mapped() {
		t.Error("set still reports Mapped after Close")
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	_ = mapped // plain-read fallback platforms legitimately report false
}

// TestLoadDirMixedFormats: a library directory may hold legacy .json
// and v3 .rlct sets side by side.
func TestLoadDirMixedFormats(t *testing.T) {
	dir := t.TempDir()
	a := syntheticSet(t)
	a.Config.Name = "m6/json"
	if err := a.SaveFile(filepath.Join(dir, fileName(a.Config.Name))); err != nil {
		t.Fatal(err)
	}
	b := syntheticSet(t)
	b.Config.Name = "m6/v3"
	if err := b.SaveFileV3(filepath.Join(dir, fileNameExt(b.Config.Name, ".rlct"))); err != nil {
		t.Fatal(err)
	}
	lib, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 2 {
		t.Fatalf("loaded %d sets, want 2 (%v)", lib.Len(), lib.Names())
	}
	for _, name := range []string{"m6/json", "m6/v3"} {
		if _, err := lib.Get(name); err != nil {
			t.Error(err)
		}
	}
}

// TestLoadDirErrorSinglePrefix is the regression test for the
// double-wrap bug: LoadFile already frames "table: <path>: …", and
// LoadDir used to re-frame it as "table: <name>: table: <path>: …".
func TestLoadDirErrorSinglePrefix(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("want error for corrupt library file")
	}
	if got := strings.Count(err.Error(), "table:"); got != 1 {
		t.Errorf("error frames the table: prefix %d times, want exactly 1: %v", got, err)
	}
	if !strings.Contains(err.Error(), "broken.json") {
		t.Errorf("error does not name the file: %v", err)
	}
}
