package table

// Native fuzz target for the v3 binary codec: LoadFile and Load face
// untrusted bytes (a copied library, an NFS-served cache, a corrupted
// download), so every truncation, bit flip, bad count and misaligned
// tail must be rejected with an error — never a panic, never a
// silently accepted wrong table. Seed corpus lives under
// testdata/fuzz/FuzzCodecV3LoadFile and runs as ordinary cases during
// plain `go test`; `make fuzz` adds a randomised budget.

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedV3 serialises a small valid set in the v3 binary codec.
func fuzzSeedV3(tb testing.TB) []byte {
	s := syntheticSet(tb)
	var buf bytes.Buffer
	if err := s.SaveV3(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzCodecV3LoadFile(f *testing.F) {
	valid := fuzzSeedV3(f)
	f.Add(valid)
	f.Add(valid[:v3HeaderSize-8]) // truncated inside the header
	f.Add(valid[:len(valid)-8])   // truncated value block
	f.Add(valid[:len(valid)-4])   // tail no longer 8-aligned
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40 // bit-flipped value
	f.Add(flip)
	future := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(future[8:], 9) // version from the future
	f.Add(future)
	counts := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(counts[104:], 0xFFFFFF) // absurd axis count
	f.Add(counts)
	f.Add(v3Magic[:]) // magic alone
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The file path (sniff + mmap or aligned read).
		path := filepath.Join(t.TempDir(), "in.rlct")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := LoadFile(path); err == nil {
			fuzzCheckAccepted(t, s)
			s.Close()
		}
		// The io.Reader path (sniff + buffered copy).
		if s, err := Load(bytes.NewReader(data)); err == nil {
			fuzzCheckAccepted(t, s)
			s.Close()
		}
	})
}

// fuzzCheckAccepted asserts an accepted record is internally
// consistent: validated axes, matching value counts, and a working
// in-range lookup (mirrors FuzzLoadFile's contract for the JSON
// codec).
func fuzzCheckAccepted(t *testing.T, s *Set) {
	t.Helper()
	if err := s.Axes.Validate(); err != nil {
		t.Fatalf("accepted a record with invalid axes: %v", err)
	}
	nw, ns, nl := len(s.Axes.Widths), len(s.Axes.Spacings), len(s.Axes.Lengths)
	if len(s.Self.Vals) != nw*nl || len(s.Mutual.Vals) != nw*nw*ns*nl {
		t.Fatalf("accepted mismatched value counts: self %d (want %d), mutual %d (want %d)",
			len(s.Self.Vals), nw*nl, len(s.Mutual.Vals), nw*nw*ns*nl)
	}
	if v, err := s.SelfL(s.Axes.Widths[0], s.Axes.Lengths[0]); err != nil {
		t.Fatalf("in-range lookup on an accepted record failed: %v", err)
	} else if math.IsNaN(v) {
		for _, sv := range s.Self.Vals {
			if math.IsNaN(sv) {
				return
			}
		}
		t.Fatal("NaN lookup from a NaN-free accepted record")
	}
}
