package table

// Native fuzz targets for the package's attack surfaces — the inputs
// a production extraction service would receive from users: serialised
// table records (Load), set names destined for the filesystem
// (fileName), and build configurations (Config.Validate). Each target
// asserts the decode/validate gate either rejects cleanly or yields an
// internally consistent value; panics and silently accepted garbage
// are the failures. Seed corpora live under testdata/fuzz and run as
// ordinary cases during plain `go test`; `make fuzz` gives each target
// a short randomised budget.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/units"
)

// fuzzSeedRecord serialises a small valid set for the decode corpus.
func fuzzSeedRecord(tb testing.TB) []byte {
	s := syntheticSet(tb)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzLoadFile(f *testing.F) {
	valid := fuzzSeedRecord(f)
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add(bytes.Replace(valid, []byte(`"version":2`), []byte(`"version":9`), 1))
	f.Add(valid[:len(valid)/2]) // truncated mid-record
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking or false acceptance is not
		}
		// An accepted record must be internally consistent: validated
		// axes, matching value counts, and a working in-range lookup.
		if err := s.Axes.Validate(); err != nil {
			t.Fatalf("Load accepted a record with invalid axes: %v", err)
		}
		nw, ns, nl := len(s.Axes.Widths), len(s.Axes.Spacings), len(s.Axes.Lengths)
		if len(s.Self.Vals) != nw*nl || len(s.Mutual.Vals) != nw*nw*ns*nl {
			t.Fatalf("Load accepted mismatched value counts: self %d (want %d), mutual %d (want %d)",
				len(s.Self.Vals), nw*nl, len(s.Mutual.Vals), nw*nw*ns*nl)
		}
		if v, err := s.SelfL(s.Axes.Widths[0], s.Axes.Lengths[0]); err != nil {
			t.Fatalf("in-range lookup on an accepted record failed: %v", err)
		} else if math.IsNaN(v) {
			// NaN table *values* are data (the audit layer's concern,
			// policy-gated); a NaN from a non-NaN table is a spline bug.
			for _, sv := range s.Self.Vals {
				if math.IsNaN(sv) {
					return
				}
			}
			t.Fatal("NaN lookup from a NaN-free accepted record")
		}
	})
}

// unescapeFileName inverts fileName's %XX escaping (test-local; the
// production mapping is one-way on purpose).
func unescapeFileName(fn string) (string, bool) {
	fn, ok := strings.CutSuffix(fn, ".json")
	if !ok {
		return "", false
	}
	var b strings.Builder
	for i := 0; i < len(fn); i++ {
		if fn[i] != '%' {
			b.WriteByte(fn[i])
			continue
		}
		if i+2 >= len(fn) {
			return "", false
		}
		hex := func(c byte) (byte, bool) {
			switch {
			case c >= '0' && c <= '9':
				return c - '0', true
			case c >= 'A' && c <= 'F':
				return c - 'A' + 10, true
			}
			return 0, false
		}
		hi, ok1 := hex(fn[i+1])
		lo, ok2 := hex(fn[i+2])
		if !ok1 || !ok2 {
			return "", false
		}
		b.WriteByte(hi<<4 | lo)
		i += 2
	}
	return b.String(), true
}

func FuzzLibraryFileName(f *testing.F) {
	f.Add("M6/microstrip")
	f.Add("a\\b")
	f.Add("a_b")
	f.Add("..")
	f.Add("%41")
	f.Add("name with spaces and ünïcode")
	f.Add("")
	f.Fuzz(func(t *testing.T, name string) {
		fn := fileName(name)
		if !strings.HasSuffix(fn, ".json") {
			t.Fatalf("fileName(%q) = %q lacks the .json suffix", name, fn)
		}
		for i := 0; i < len(fn); i++ {
			switch ch := fn[i]; {
			case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z',
				ch >= '0' && ch <= '9', ch == '.', ch == '-', ch == '_', ch == '%':
			default:
				t.Fatalf("fileName(%q) = %q contains unsafe byte %q", name, fn, ch)
			}
		}
		if strings.Contains(fn, "/") || strings.Contains(fn, "\\") {
			t.Fatalf("fileName(%q) = %q contains a path separator", name, fn)
		}
		// Injectivity via invertibility: the escaped name decodes back
		// to exactly the input, so two distinct names cannot share a
		// file.
		back, ok := unescapeFileName(fn)
		if !ok || back != name {
			t.Fatalf("fileName(%q) = %q does not round-trip (got %q, ok=%v)", name, fn, back, ok)
		}
	})
}

func FuzzConfigValidate(f *testing.F) {
	f.Add(units.Um(2), units.RhoCopper, 3.2e9, byte(0), 0.0, 0.0)
	f.Add(units.Um(2), units.RhoCopper, 3.2e9, byte(1), units.Um(2), units.Um(1))
	f.Add(math.NaN(), units.RhoCopper, 3.2e9, byte(0), 0.0, 0.0)
	f.Add(units.Um(2), math.Inf(1), 3.2e9, byte(2), units.Um(2), units.Um(1))
	f.Add(0.0, 0.0, 0.0, byte(1), math.NaN(), -1.0)
	f.Fuzz(func(t *testing.T, thickness, rho, freq float64, shield byte, gap, pthick float64) {
		cfg := Config{
			Name:           "fuzz",
			Thickness:      thickness,
			Rho:            rho,
			Frequency:      freq,
			Shielding:      geom.Shielding(shield % 3),
			PlaneGap:       gap,
			PlaneThickness: pthick,
		}
		err := cfg.Validate()
		if err != nil {
			return
		}
		// Accepted configurations must be entirely finite and positive
		// where the build assumes so — a NaN or Inf that slips through
		// here reaches the field solver.
		for _, v := range []float64{cfg.Thickness, cfg.Rho, cfg.Frequency} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("Validate accepted non-physical config: %+v", cfg)
			}
		}
		if cfg.Shielding != geom.ShieldNone {
			for _, v := range []float64{cfg.PlaneGap, cfg.PlaneThickness} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Fatalf("Validate accepted shielded config with bad plane: %+v", cfg)
				}
			}
		}
	})
}
