package table

// Property tests for the paper's Foundations 1 and 2 — the separation
// assumptions the whole table method rests on. Foundation 1: a trace's
// self inductance depends only on its own geometry (width, thickness,
// length), not on anything else in the configuration. Foundation 2:
// the mutual inductance of a pair depends only on that pair. These
// pin the properties at both the solver-entry level and the lookup
// level, so an accidental cross-coupling introduced by a future
// refactor (a config field leaking into the self solve, a mutual
// entry consulting a third trace) fails loudly.

import (
	"math"
	"testing"

	"clockrlc/internal/units"
)

// Foundation 1 at the build level: fields with no physical bearing on
// a free-configuration self solve (Name, Workers, PlaneStrips — the
// plane discretisation is unused with no plane) must not change a
// single bit of the self table.
func TestFoundation1SelfTableIgnoresUnrelatedConfig(t *testing.T) {
	axes := Axes{
		Widths:   LogAxis(units.Um(1), units.Um(8), 3),
		Spacings: LogAxis(units.Um(1), units.Um(4), 2),
		Lengths:  LogAxis(units.Um(200), units.Um(2000), 3),
	}
	base, err := Build(freeConfig(), axes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := freeConfig()
	cfg.Name = "some/other-name"
	cfg.Workers = 3
	cfg.PlaneStrips = 5
	alt, err := Build(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Self.Vals {
		if base.Self.Vals[i] != alt.Self.Vals[i] {
			t.Fatalf("self[%d] = %g changed to %g under unrelated config fields",
				i, base.Self.Vals[i], alt.Self.Vals[i])
		}
	}
}

// Foundation 1 at the axes level: the self table is a function of
// (widths × lengths) only — swapping the spacing axis (which only the
// mutual table consults) leaves it bit-identical.
func TestFoundation1SelfTableIgnoresSpacingAxis(t *testing.T) {
	widths := LogAxis(units.Um(1), units.Um(8), 3)
	lengths := LogAxis(units.Um(200), units.Um(2000), 3)
	a, err := Build(freeConfig(), Axes{Widths: widths,
		Spacings: LogAxis(units.Um(1), units.Um(4), 2), Lengths: lengths})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(freeConfig(), Axes{Widths: widths,
		Spacings: LogAxis(units.Um(0.6), units.Um(20), 4), Lengths: lengths})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Self.Vals {
		if a.Self.Vals[i] != b.Self.Vals[i] {
			t.Fatalf("self[%d] depends on the spacing axis: %g vs %g", i, a.Self.Vals[i], b.Self.Vals[i])
		}
	}
}

// Foundation 2 at the solver level: mutual inductance is a symmetric
// function of the pair — swapping (w1, w2) must give the same entry.
func TestFoundation2MutualEntryPairSymmetry(t *testing.T) {
	cfg := freeConfig().withDefaults()
	pairs := []struct{ w1, w2, sp, l float64 }{
		{units.Um(1), units.Um(4), units.Um(1), units.Um(500)},
		{units.Um(2), units.Um(8), units.Um(3), units.Um(2000)},
		{units.Um(0.8), units.Um(12), units.Um(0.7), units.Um(4000)},
	}
	for _, p := range pairs {
		a, err := mutualEntry(cfg, p.w1, p.w2, p.sp, p.l)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mutualEntry(cfg, p.w2, p.w1, p.sp, p.l)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(a-b) / math.Abs(a); !(rel <= 1e-12) {
			t.Errorf("mutual(w1=%g, w2=%g) = %g but mutual(w2, w1) = %g (rel %g)",
				p.w1, p.w2, a, b, rel)
		}
	}
}

// Foundation 2 at the lookup level: the table's mutual lookup at a
// knot point reproduces the pair's direct solver entry — no
// contribution leaks in from other entries of the grid — and the
// lookup itself is pair-symmetric on and off the knots.
func TestFoundation2MutualLookupDependsOnlyOnPair(t *testing.T) {
	cfg := freeConfig()
	axes := Axes{
		Widths:   LogAxis(units.Um(1), units.Um(8), 3),
		Spacings: LogAxis(units.Um(1), units.Um(4), 2),
		Lengths:  LogAxis(units.Um(200), units.Um(2000), 3),
	}
	set, err := Build(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := cfg.withDefaults()
	for _, i := range []int{0, 2} {
		for _, j := range []int{0, 1} {
			w1, w2 := axes.Widths[i], axes.Widths[j]
			sp, l := axes.Spacings[1], axes.Lengths[2]
			got, err := set.MutualL(w1, w2, sp, l)
			if err != nil {
				t.Fatal(err)
			}
			want, err := mutualEntry(dcfg, w1, w2, sp, l)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(got-want) / math.Abs(want); !(rel <= 1e-9) {
				t.Errorf("lookup at knot (w1=%g, w2=%g): %g vs solver %g (rel %g)", w1, w2, got, want, rel)
			}
		}
	}
	// Off-knot symmetry.
	w1, w2 := units.Um(1.7), units.Um(5.2)
	sp, l := units.Um(2.1), units.Um(900)
	a, err := set.MutualL(w1, w2, sp, l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := set.MutualL(w2, w1, sp, l)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a-b) / math.Abs(a); !(rel <= 1e-12) {
		t.Errorf("off-knot lookup not pair-symmetric: %g vs %g (rel %g)", a, b, rel)
	}
}
