package table

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"clockrlc/internal/check"
	"clockrlc/internal/units"
)

// batchLookupQueries builds n (w, l) self queries and n (w1, w2, sp,
// l) mutual queries over ndistinct repeated geometries, mixing
// in-range and out-of-range coordinates.
func batchLookupQueries(rng *rand.Rand, s *Set, n, ndistinct int) (ws, ls, w1s, w2s, sps, mls []float64) {
	type geo struct{ w, l, w1, w2, sp, ml float64 }
	pick := func(ax []float64) float64 {
		lo, hi := ax[0], ax[len(ax)-1]
		switch r := rng.Float64(); {
		case r < 0.12:
			return lo * (0.4 + 0.5*rng.Float64())
		case r > 0.88:
			return hi * (1 + 0.4*rng.Float64())
		default:
			return lo + rng.Float64()*(hi-lo)
		}
	}
	geos := make([]geo, ndistinct)
	for i := range geos {
		geos[i] = geo{
			w: pick(s.Axes.Widths), l: pick(s.Axes.Lengths),
			w1: pick(s.Axes.Widths), w2: pick(s.Axes.Widths),
			sp: pick(s.Axes.Spacings), ml: pick(s.Axes.Lengths),
		}
	}
	for i := 0; i < n; i++ {
		g := geos[rng.Intn(ndistinct)]
		ws, ls = append(ws, g.w), append(ls, g.l)
		w1s, w2s = append(w1s, g.w1), append(w2s, g.w2)
		sps, mls = append(sps, g.sp), append(mls, g.ml)
	}
	return
}

// TestLookupBatchMatchesScalarBitwise: under every lookup policy, the
// batch lookups return bit-identical values to the scalar loop, and
// advance the same counters by the same amounts.
func TestLookupBatchMatchesScalarBitwise(t *testing.T) {
	for _, policy := range []LookupPolicy{LookupExtrapolate, LookupClamp} {
		s := syntheticSet(t)
		s.Lookup = policy
		rng := rand.New(rand.NewSource(42))
		ws, ls, w1s, w2s, sps, mls := batchLookupQueries(rng, s, 200, 11)

		wantSelf := make([]float64, len(ws))
		for i := range ws {
			v, err := s.SelfL(ws[i], ls[i])
			if err != nil {
				t.Fatal(err)
			}
			wantSelf[i] = v
		}
		wantMut := make([]float64, len(w1s))
		for i := range w1s {
			v, err := s.MutualL(w1s[i], w2s[i], sps[i], mls[i])
			if err != nil {
				t.Fatal(err)
			}
			wantMut[i] = v
		}

		hits0, clamped0 := lookupHits.Value(), lookupClamped.Value()
		gotSelf := make([]float64, len(ws))
		if err := s.SelfLBatch(ws, ls, gotSelf); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		gotMut := make([]float64, len(w1s))
		if err := s.MutualLBatch(w1s, w2s, sps, mls, gotMut); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		for i := range gotSelf {
			if math.Float64bits(gotSelf[i]) != math.Float64bits(wantSelf[i]) {
				t.Fatalf("policy %v SelfL query %d: batch %v != scalar %v (bitwise)", policy, i, gotSelf[i], wantSelf[i])
			}
		}
		for i := range gotMut {
			if math.Float64bits(gotMut[i]) != math.Float64bits(wantMut[i]) {
				t.Fatalf("policy %v MutualL query %d: batch %v != scalar %v (bitwise)", policy, i, gotMut[i], wantMut[i])
			}
		}
		// The batch pass classifies exactly like the scalar pass did.
		batchHits := lookupHits.Value() - hits0
		batchClamped := lookupClamped.Value() - clamped0
		if batchHits+batchClamped != int64(len(ws)+len(w1s)) {
			t.Errorf("policy %v: counters classified %d lookups, want %d",
				policy, batchHits+batchClamped, len(ws)+len(w1s))
		}
	}
}

// TestLookupBatchErrorPolicy: under LookupError the batch stops at the
// first out-of-range query in input order with a *BatchError that
// unwraps to ErrOutOfRange, exactly as the scalar loop would.
func TestLookupBatchErrorPolicy(t *testing.T) {
	s := syntheticSet(t)
	s.Lookup = LookupError
	wOK, lOK := units.Um(2), units.Um(300)
	wBad := units.Um(40) // beyond the 4 µm width axis

	ws := []float64{wOK, wOK, wBad, wOK}
	ls := []float64{lOK, lOK, lOK, lOK}
	out := make([]float64, 4)
	errs0 := lookupOOBErrors.Value()
	err := s.SelfLBatch(ws, ls, out)
	if err == nil {
		t.Fatal("want error for out-of-range query under LookupError")
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 2 {
		t.Fatalf("got %v, want *BatchError with Index 2", err)
	}
	if !errors.Is(err, ErrOutOfRange) {
		t.Errorf("%v does not unwrap to ErrOutOfRange", err)
	}
	if got := lookupOOBErrors.Value() - errs0; got != 1 {
		t.Errorf("lookup_oob_errors += %d, want 1", got)
	}

	// Mutual variant, and the scalar error text is preserved inside.
	w1s := []float64{wOK, wBad}
	one := make([]float64, 2)
	err = s.MutualLBatch(w1s, []float64{wOK, wOK}, []float64{units.Um(1.5), units.Um(1.5)}, []float64{lOK, lOK}, one)
	if !errors.As(err, &be) || be.Index != 1 || !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("MutualLBatch: got %v", err)
	}
	if !strings.Contains(err.Error(), "outside table") {
		t.Errorf("batch error lost the scalar diagnosis: %v", err)
	}
}

func TestLookupBatchRejectsBadArgs(t *testing.T) {
	s := syntheticSet(t)
	// Mismatched slice lengths.
	if err := s.SelfLBatch([]float64{1}, []float64{1, 2}, make([]float64, 2)); err == nil {
		t.Error("want error for mismatched slice lengths")
	}
	// Non-positive and NaN coordinates name the offending query.
	var be *BatchError
	err := s.SelfLBatch([]float64{units.Um(1), -1}, []float64{units.Um(100), units.Um(100)}, make([]float64, 2))
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("got %v, want *BatchError at index 1", err)
	}
	err = s.MutualLBatch([]float64{math.NaN()}, []float64{1}, []float64{1}, []float64{1}, make([]float64, 1))
	if !errors.As(err, &be) || be.Index != 0 {
		t.Fatalf("NaN: got %v, want *BatchError at index 0", err)
	}
	// Empty batches are fine.
	if err := s.SelfLBatch(nil, nil, nil); err != nil {
		t.Error(err)
	}
	if err := s.MutualLBatch(nil, nil, nil, nil, nil); err != nil {
		t.Error(err)
	}
}

// TestLookupBatchArmedCheck: the armed value checks fire on batch
// results exactly as on scalar ones.
func TestLookupBatchArmedCheck(t *testing.T) {
	defer check.SetPolicy(check.Off)
	check.SetPolicy(check.Off)
	s := syntheticSet(t)
	// Poison one self value so the interpolant goes non-positive right
	// at a knot.
	vals := append([]float64(nil), s.Self.Vals...)
	vals[0] = -1e-9
	rebuilt := syntheticSet(t)
	copy(rebuilt.Self.Vals, vals)
	rebuildSelf(t, rebuilt)

	check.SetPolicy(check.Strict)
	out := make([]float64, 1)
	err := rebuilt.SelfLBatch([]float64{rebuilt.Axes.Widths[0]}, []float64{rebuilt.Axes.Lengths[0]}, out)
	if !errors.Is(err, check.ErrViolation) {
		t.Fatalf("strict batch lookup of a non-positive value: got %v, want ErrViolation", err)
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 0 {
		t.Errorf("violation does not name the query: %v", err)
	}
}
