// Package table implements the paper's table-based inductance
// extraction (Section III): per layer and per shielding configuration,
// a self-inductance table over (width, length) and a mutual-inductance
// table over (width1, width2, spacing, length) are pre-computed with
// the numerical engine (internal/peec + internal/loop standing in for
// Raphael RI3) at the significant frequency, then interpolated with
// tensor-product cubic splines at lookup time.
//
// For the free (no ground plane) configuration the tables store
// partial inductances under the PEEC model — the simulator determines
// the return path. For microstrip/stripline configurations the tables
// store loop inductances with the plane(s) merged into the return, per
// Section II.B, so the planes never appear in the final netlist.
package table

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/fault"
	"clockrlc/internal/geom"
	"clockrlc/internal/loop"
	"clockrlc/internal/obs"
	"clockrlc/internal/peec"
	"clockrlc/internal/spline"
	"clockrlc/internal/units"
)

// Table accounting. Builds report their engine-solve counts and wall
// time; self_entries and mutual_entries count entries actually solved
// (the mirrored symmetric half of the mutual table is not re-counted).
// Lookups distinguish in-range interpolations (lookup_hits) from
// queries outside the table axes (lookup_clamped), which the splines
// extrapolate linearly — accurate only mildly beyond the grid, so a
// nonzero clamp count is worth surfacing to the user.
var (
	tablesBuilt   = obs.GetCounter("table.builds")
	tableBuildNs  = obs.GetCounter("table.build_ns")
	tableSolves   = obs.GetCounter("table.solver_calls")
	tableSelfEnts = obs.GetCounter("table.self_entries")
	tableMutEnts  = obs.GetCounter("table.mutual_entries")
	lookupHits    = obs.GetCounter("table.lookup_hits")
	lookupClamped = obs.GetCounter("table.lookup_clamped")
	buildTimeHist = obs.GetHistogram("table.build_seconds")

	// Per-policy accounting of the out-of-range lookups themselves.
	// lookup_clamped above keeps its PR 1 meaning — every out-of-range
	// lookup, whatever the policy did about it — so existing dashboards
	// and the rlcx warning stay accurate; the three counters below
	// split that total by outcome.
	lookupOOBExtrapolated = obs.GetCounter("table.lookup_oob_extrapolated")
	lookupOOBClamps       = obs.GetCounter("table.lookup_oob_clamps")
	lookupOOBErrors       = obs.GetCounter("table.lookup_oob_errors")
)

// ClampedLookups returns the process-wide count of table lookups that
// fell outside the built axes (whatever the lookup policy did about
// them).
func ClampedLookups() int64 { return lookupClamped.Value() }

// ErrOutOfRange is the sentinel a LookupError-policy lookup unwraps
// to when its coordinates fall outside the built axes.
var ErrOutOfRange = errors.New("table: lookup outside built axes")

// LookupPolicy selects what an out-of-range lookup does. Every
// out-of-range lookup is counted (table.lookup_clamped plus the
// per-outcome counters) under every policy — the policies differ only
// in the value returned.
type LookupPolicy int

const (
	// LookupExtrapolate (the default, and the pre-existing behaviour)
	// lets the spline extrapolate its end slope linearly — accurate
	// only mildly beyond the grid, per the paper's usage.
	LookupExtrapolate LookupPolicy = iota
	// LookupClamp clamps each coordinate to the nearest axis endpoint
	// and interpolates there, bounding the answer by the table's range.
	LookupClamp
	// LookupError refuses the lookup with an error unwrapping to
	// ErrOutOfRange that names the offending coordinates and axes.
	LookupError
)

func (p LookupPolicy) String() string {
	switch p {
	case LookupExtrapolate:
		return "extrapolate"
	case LookupClamp:
		return "clamp"
	case LookupError:
		return "error"
	}
	return fmt.Sprintf("LookupPolicy(%d)", int(p))
}

// ParseLookupPolicy parses the -lookup-policy flag values
// "extrapolate", "clamp" and "error" (case-insensitive).
func ParseLookupPolicy(s string) (LookupPolicy, error) {
	switch strings.ToLower(s) {
	case "extrapolate":
		return LookupExtrapolate, nil
	case "clamp":
		return LookupClamp, nil
	case "error":
		return LookupError, nil
	}
	return LookupExtrapolate, fmt.Errorf("table: bad lookup policy %q (want extrapolate, clamp or error)", s)
}

// Config identifies the extraction context a table set is built for.
type Config struct {
	// Name labels the set, conventionally "<layer>/<shielding>".
	Name string
	// Thickness is the layer's nominal metal thickness (m); the paper
	// assumes one nominal thickness per layer.
	Thickness float64
	// Rho is the metal resistivity (Ω·m).
	Rho float64
	// Shielding selects partial (ShieldNone) vs loop (microstrip /
	// stripline) inductance entries.
	Shielding geom.Shielding
	// PlaneGap is the dielectric gap between the trace bottom and the
	// plane top (m); PlaneThickness the plane's metal thickness.
	// Required for microstrip and stripline.
	PlaneGap, PlaneThickness float64
	// Frequency is the significant frequency the entries are extracted
	// at (0.32/tr).
	Frequency float64
	// PlaneStrips controls the plane discretisation (default 12).
	PlaneStrips int
	// SubW, SubT subdivide traces for skin effect during table build
	// (defaults 4 and 2).
	SubW, SubT int
	// Workers bounds the build's worker pool; the sweep entries are
	// independent field solves, so they parallelise embarrassingly.
	// Zero or negative selects GOMAXPROCS. The built values are
	// bit-for-bit independent of the worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.PlaneStrips <= 0 {
		c.PlaneStrips = 12
	}
	if c.SubW <= 0 {
		c.SubW = 4
	}
	if c.SubT <= 0 {
		c.SubT = 2
	}
	return c
}

// checkPositive rejects non-positive and non-finite values with an
// error naming the offending field; NaN would otherwise slip past a
// plain `v <= 0` comparison and reach the field solver.
func checkPositive(pkg, field string, v float64) error {
	switch {
	case math.IsNaN(v):
		return fmt.Errorf("%s: %s is NaN", pkg, field)
	case math.IsInf(v, 0):
		return fmt.Errorf("%s: %s is infinite", pkg, field)
	case v <= 0:
		return fmt.Errorf("%s: %s must be positive, got %g", pkg, field, v)
	}
	return nil
}

// Validate checks the configuration is buildable.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"thickness", c.Thickness},
		{"resistivity", c.Rho},
		{"frequency", c.Frequency},
	} {
		if err := checkPositive("table", f.name, f.v); err != nil {
			return err
		}
	}
	if c.Shielding != geom.ShieldNone {
		if math.IsNaN(c.PlaneGap) || math.IsNaN(c.PlaneThickness) ||
			math.IsInf(c.PlaneGap, 0) || math.IsInf(c.PlaneThickness, 0) ||
			c.PlaneGap <= 0 || c.PlaneThickness <= 0 {
			return fmt.Errorf("table: %v configuration needs PlaneGap and PlaneThickness", c.Shielding)
		}
	}
	return nil
}

// Axes are the sweep points of a table build. The paper's self table
// is (width × length) and its mutual table (w1 × w2 × spacing ×
// length); spacings are edge-to-edge. Lengths and spacings should be
// log-spaced: inductance is logarithmic in both.
type Axes struct {
	Widths   []float64
	Spacings []float64
	Lengths  []float64
}

// Validate checks the axes are usable.
func (a Axes) Validate() error {
	for name, ax := range map[string][]float64{
		"widths": a.Widths, "spacings": a.Spacings, "lengths": a.Lengths,
	} {
		if len(ax) < 2 {
			return fmt.Errorf("table: need at least two %s", name)
		}
		for i, v := range ax {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("table: %s[%d] = %g is not finite", name, i, v)
			}
			if v <= 0 {
				return fmt.Errorf("table: %s[%d] = %g must be positive", name, i, v)
			}
			if i > 0 && v <= ax[i-1] {
				return fmt.Errorf("table: %s must be strictly increasing", name)
			}
		}
	}
	return nil
}

// LogAxis returns n log-spaced points from a to b inclusive.
func LogAxis(a, b float64, n int) []float64 {
	if n < 2 || a <= 0 || b <= a {
		panic(fmt.Sprintf("table: bad LogAxis(%g, %g, %d)", a, b, n))
	}
	out := make([]float64, n)
	la, lb := math.Log(a), math.Log(b)
	for i := range out {
		out[i] = math.Exp(la + (lb-la)*float64(i)/float64(n-1))
	}
	out[0], out[n-1] = a, b // exact endpoints despite rounding
	return out
}

// DefaultAxes returns a sensible sweep for clocktree geometries:
// widths 0.6–20 µm, edge-to-edge spacings 0.6–10 µm, lengths
// 50–8000 µm. The spacing axis is tabulated out to 40 µm — beyond the
// 10 µm user sweep — because loop composition also looks up the
// ground-to-ground coupling at 2·spacing + signalWidth, which reaches
// 40 µm at the sweep corners; tabulating it keeps in-range segments
// free of extrapolation clamps.
func DefaultAxes() Axes {
	return Axes{
		Widths:   LogAxis(units.Um(0.6), units.Um(20), 6),
		Spacings: LogAxis(units.Um(0.6), units.Um(40), 6),
		Lengths:  LogAxis(units.Um(50), units.Um(8000), 8),
	}
}

// Set is one built table set: the self and mutual grids plus their
// provenance. Set values are immutable after build, and lookups read
// only precomputed spline coefficients, so SelfL/MutualL are safe to
// call from any number of goroutines sharing one Set.
type Set struct {
	Config Config
	Axes   Axes
	// Self is indexed (width, length); Mutual (w1, w2, spacing,
	// length). Values in henries.
	Self, Mutual *spline.Grid
	// Lookup selects what out-of-range lookups do (the zero value,
	// LookupExtrapolate, is the pre-existing behaviour). Set it before
	// sharing the Set across goroutines; it is not persisted by the
	// codec.
	Lookup LookupPolicy

	// unmap releases the file mapping backing a zero-copy v3 load
	// (nil for heap-backed sets). See Mapped and Close in codecv3.go.
	unmap func() error
}

// Build sweeps the numerical engine over the axes and assembles the
// spline tables. Self entries come from 1-trace solves, mutual
// entries from 2-trace solves, each with the configuration's plane(s)
// when shielded. The sweep runs on a bounded worker pool
// (cfg.Workers, default GOMAXPROCS); entries are written by index, so
// the result is bit-for-bit identical to a serial build. Tracing goes
// to the default observer; use BuildObserved to direct it elsewhere.
func Build(cfg Config, axes Axes) (*Set, error) {
	return BuildCtx(context.Background(), cfg, axes, nil)
}

// BuildObserved is Build tracing to the given observer (nil selects
// the default observer). The build span is touched only from the
// calling goroutine; workers contribute solely through the atomic
// metrics counters.
func BuildObserved(cfg Config, axes Axes, o *obs.Observer) (*Set, error) {
	return BuildCtx(context.Background(), cfg, axes, o)
}

// solverRetry re-attempts transient field-solver failures (per
// fault.IsTransient) a few times with jittered backoff before failing
// the sweep cell; deterministic solver errors fail on the first try.
var solverRetry = fault.Policy{
	Attempts: 3,
	Base:     time.Millisecond,
	Max:      50 * time.Millisecond,
	Factor:   4,
	Jitter:   0.5,
}

// BuildCtx is Build honouring cancellation and deadlines: a cancelled
// ctx stops the sweep within one cell's solve time, drains every
// worker (no goroutine survives the return) and yields ctx.Err().
// Transient solver failures are retried per solverRetry; a panicking
// sweep cell surfaces as a *CellPanic carrying its cell index.
func BuildCtx(ctx context.Context, cfg Config, axes Axes, o *obs.Observer) (*Set, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := axes.Validate(); err != nil {
		return nil, err
	}
	if o == nil {
		o = obs.Default()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The build span rides the context: every worker's per-cell span
	// parents under it explicitly (obs.StartCtx), so a parallel build's
	// trace reconstructs exactly at any worker count instead of
	// interleaving on the observer's shared stack.
	ctx, sp := o.StartCtx(ctx, "table.build")
	sp.SetAttr("name", cfg.Name)
	sp.SetAttr("workers", workers)
	defer sp.End()
	t0 := time.Now()
	defer func() {
		tablesBuilt.Inc()
		d := time.Since(t0)
		tableBuildNs.Add(d.Nanoseconds())
		buildTimeHist.Observe(d.Seconds())
	}()
	s := &Set{Config: cfg, Axes: axes}

	nw, ns, nl := len(axes.Widths), len(axes.Spacings), len(axes.Lengths)
	selfVals := make([]float64, nw*nl)
	err := ParallelForCtx(ctx, len(selfVals), workers, func(k int) error {
		w, l := axes.Widths[k/nl], axes.Lengths[k%nl]
		_, csp := o.StartCtx(ctx, "table.self_cell")
		csp.SetAttr("cell", k)
		defer csp.End()
		return solverRetry.Do(ctx, "table.self", func() error {
			v, err := selfEntry(cfg, w, l)
			if err != nil {
				return fmt.Errorf("table: self(w=%g, l=%g): %w", w, l, err)
			}
			selfVals[k] = v
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	tableSelfEnts.Add(int64(len(selfVals)))
	s.Self, err = spline.NewGrid([][]float64{axes.Widths, axes.Lengths}, selfVals)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("self_entries", len(selfVals))

	// Mutual is symmetric in (w1, w2): solve only the upper triangle
	// and mirror the transposed entries afterwards.
	type mutJob struct {
		w1, w2, sp, l float64
		idx           int
	}
	jobs := make([]mutJob, 0, nw*(nw+1)/2*ns*nl)
	for i, w1 := range axes.Widths {
		for j := i; j < nw; j++ {
			w2 := axes.Widths[j]
			for si, spc := range axes.Spacings {
				for li, l := range axes.Lengths {
					jobs = append(jobs, mutJob{w1, w2, spc, l, ((i*nw+j)*ns+si)*nl + li})
				}
			}
		}
	}
	mutVals := make([]float64, nw*nw*ns*nl)
	err = ParallelForCtx(ctx, len(jobs), workers, func(k int) error {
		jb := jobs[k]
		_, csp := o.StartCtx(ctx, "table.mutual_cell")
		csp.SetAttr("cell", k)
		defer csp.End()
		return solverRetry.Do(ctx, "table.mutual", func() error {
			v, err := mutualEntry(cfg, jb.w1, jb.w2, jb.sp, jb.l)
			if err != nil {
				return fmt.Errorf("table: mutual(w1=%g, w2=%g, s=%g, l=%g): %w", jb.w1, jb.w2, jb.sp, jb.l, err)
			}
			mutVals[jb.idx] = v
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	// Only the solved (upper-triangle) entries count as built; the
	// mirrored half reuses them.
	tableMutEnts.Add(int64(len(jobs)))
	sp.SetAttr("mutual_entries", len(mutVals))
	sp.SetAttr("mutual_solves", len(jobs))
	for i := 1; i < nw; i++ {
		for j := 0; j < i; j++ {
			upper := ((j*nw + i) * ns) * nl
			lower := ((i*nw + j) * ns) * nl
			copy(mutVals[lower:lower+ns*nl], mutVals[upper:upper+ns*nl])
		}
	}
	s.Mutual, err = spline.NewGrid(
		[][]float64{axes.Widths, axes.Widths, axes.Spacings, axes.Lengths}, mutVals)
	if err != nil {
		return nil, err
	}
	// Post-build audit: when the process check engine is armed, a
	// freshly built set that already violates a physical invariant is
	// counted (Warn) or rejected before anything downstream can consume
	// it (Strict).
	if err := s.reportAudit(check.Active()); err != nil {
		return nil, err
	}
	return s, nil
}

// selfEntry extracts one self-table value.
func selfEntry(cfg Config, w, l float64) (float64, error) {
	tableSolves.Inc()
	if err := fault.Check(fault.SolverCall); err != nil {
		return 0, err
	}
	if cfg.Shielding == geom.ShieldNone {
		rl, err := peec.EffectiveRL(
			peec.Bar{Axis: peec.AxisX, O: [3]float64{0, -w / 2, 0}, L: l, W: w, T: cfg.Thickness},
			cfg.Rho, cfg.Frequency, cfg.SubW, cfg.SubT)
		if err != nil {
			return 0, err
		}
		return rl.L, nil
	}
	blk := oneTraceBlock(cfg, w, l)
	sol, err := loop.SolveBlock(blk, 0, loopOpts(cfg))
	if err != nil {
		return 0, err
	}
	return sol.L, nil
}

// mutualEntry extracts one mutual-table value.
func mutualEntry(cfg Config, w1, w2, sp, l float64) (float64, error) {
	tableSolves.Inc()
	if err := fault.Check(fault.SolverCall); err != nil {
		return 0, err
	}
	if cfg.Shielding == geom.ShieldNone {
		a := peec.Bar{Axis: peec.AxisX, O: [3]float64{0, 0, 0}, L: l, W: w1, T: cfg.Thickness}
		b := peec.Bar{Axis: peec.AxisX, O: [3]float64{0, w1 + sp, 0}, L: l, W: w2, T: cfg.Thickness}
		return peec.HoerLoveMutual(a, b), nil
	}
	blk := twoTraceBlock(cfg, w1, w2, sp, l)
	sol, err := loop.SolveBlock(blk, 0, loopOpts(cfg))
	if err != nil {
		return 0, err
	}
	if len(sol.MutualL) != 1 {
		return 0, errors.New("table: two-trace solve returned no mutual")
	}
	return sol.MutualL[0], nil
}

func loopOpts(cfg Config) loop.Options {
	return loop.Options{
		Frequency:   cfg.Frequency,
		PlaneStrips: cfg.PlaneStrips,
		SubW:        cfg.SubW,
		SubT:        cfg.SubT,
	}
}

// planes builds the configuration's ground plane(s) around traces at
// thickness-centre z = cfg.Thickness/2, sized relative to the block
// footprint.
func planes(cfg Config, footprint float64) (below, above *geom.GroundPlane) {
	mk := func(z float64) *geom.GroundPlane {
		return &geom.GroundPlane{
			Z:         z,
			Thickness: cfg.PlaneThickness,
			Width:     3*footprint + 20*cfg.PlaneGap,
			Rho:       cfg.Rho,
		}
	}
	switch cfg.Shielding {
	case geom.ShieldMicrostrip:
		below = mk(-cfg.PlaneGap - cfg.PlaneThickness/2)
	case geom.ShieldStripline:
		below = mk(-cfg.PlaneGap - cfg.PlaneThickness/2)
		above = mk(cfg.Thickness + cfg.PlaneGap + cfg.PlaneThickness/2)
	}
	return below, above
}

func oneTraceBlock(cfg Config, w, l float64) *geom.Block {
	below, above := planes(cfg, w)
	return &geom.Block{
		Traces: []geom.Trace{
			{X0: 0, Y: 0, Z: cfg.Thickness / 2, Length: l, Width: w, Thickness: cfg.Thickness},
		},
		IsGround:   []bool{false},
		PlaneBelow: below,
		PlaneAbove: above,
		Rho:        cfg.Rho,
	}
}

func twoTraceBlock(cfg Config, w1, w2, sp, l float64) *geom.Block {
	below, above := planes(cfg, w1+w2+sp)
	return &geom.Block{
		Traces: []geom.Trace{
			{X0: 0, Y: 0, Z: cfg.Thickness / 2, Length: l, Width: w1, Thickness: cfg.Thickness},
			{X0: 0, Y: w1/2 + sp + w2/2, Z: cfg.Thickness / 2, Length: l, Width: w2, Thickness: cfg.Thickness},
		},
		IsGround:   []bool{false, false},
		PlaneBelow: below,
		PlaneAbove: above,
		Rho:        cfg.Rho,
	}
}

// inRange reports whether v lies within the axis' built sweep.
func inRange(ax []float64, v float64) bool {
	return v >= ax[0] && v <= ax[len(ax)-1]
}

// countLookup classifies a lookup: fully inside every axis range
// counts as a hit; any out-of-range coordinate counts the lookup as
// clamped (the spline extrapolates its end slope linearly there).
func countLookup(ok bool) {
	if ok {
		lookupHits.Inc()
	} else {
		lookupClamped.Inc()
	}
}

// clampTo clamps v to the axis' built range.
func clampTo(ax []float64, v float64) float64 {
	if v < ax[0] {
		return ax[0]
	}
	if last := ax[len(ax)-1]; v > last {
		return last
	}
	return v
}

// SelfL looks up the self inductance for a trace of width w and
// length l. Coordinates outside the built axes are handled per
// s.Lookup: extrapolated (default), clamped to the axis endpoints, or
// refused with an error unwrapping to ErrOutOfRange — each outcome
// counted. When the process check engine is armed, the looked-up value
// itself is checked finite and positive.
func (s *Set) SelfL(w, l float64) (float64, error) {
	// The negated form also rejects NaN arguments (NaN > 0 is false),
	// which would otherwise panic the spline's bracket search.
	if !(w > 0) || !(l > 0) {
		return 0, fmt.Errorf("table: SelfL arguments must be positive (w=%g, l=%g)", w, l)
	}
	if err := fault.Check(fault.SplineLookup); err != nil {
		return 0, err
	}
	ok := inRange(s.Axes.Widths, w) && inRange(s.Axes.Lengths, l)
	countLookup(ok)
	if !ok {
		switch s.Lookup {
		case LookupError:
			lookupOOBErrors.Inc()
			return 0, fmt.Errorf("table: SelfL(w=%g, l=%g) outside table %q axes (w ∈ [%g, %g], l ∈ [%g, %g]): %w",
				w, l, s.Config.Name, s.Axes.Widths[0], s.Axes.Widths[len(s.Axes.Widths)-1],
				s.Axes.Lengths[0], s.Axes.Lengths[len(s.Axes.Lengths)-1], ErrOutOfRange)
		case LookupClamp:
			lookupOOBClamps.Inc()
			w, l = clampTo(s.Axes.Widths, w), clampTo(s.Axes.Lengths, l)
		default:
			lookupOOBExtrapolated.Inc()
		}
	}
	v, err := s.Self.Eval(w, l)
	if err != nil {
		return 0, err
	}
	if e := check.Active(); e.Armed() {
		if !finite(v) || v <= 0 {
			if err := e.Report(&check.Violation{
				Stage: check.StageLookup, Invariant: "self inductance finite and positive",
				Subject: fmt.Sprintf("table %q", s.Config.Name),
				Cell:    fmt.Sprintf("SelfL(w=%g, l=%g)", w, l),
				Detail:  fmt.Sprintf("L = %g", v),
			}); err != nil {
				return 0, err
			}
		}
	}
	return v, nil
}

// MutualL looks up the mutual inductance between parallel traces of
// widths w1 and w2, edge-to-edge spacing sp, common length l.
// Out-of-range coordinates follow s.Lookup as in SelfL; armed checks
// require the value finite and non-negative.
func (s *Set) MutualL(w1, w2, sp, l float64) (float64, error) {
	// As in SelfL, the negated form also rejects NaN.
	if !(w1 > 0) || !(w2 > 0) || !(sp > 0) || !(l > 0) {
		return 0, fmt.Errorf("table: MutualL arguments must be positive (w1=%g, w2=%g, s=%g, l=%g)", w1, w2, sp, l)
	}
	if err := fault.Check(fault.SplineLookup); err != nil {
		return 0, err
	}
	ok := inRange(s.Axes.Widths, w1) && inRange(s.Axes.Widths, w2) &&
		inRange(s.Axes.Spacings, sp) && inRange(s.Axes.Lengths, l)
	countLookup(ok)
	if !ok {
		switch s.Lookup {
		case LookupError:
			lookupOOBErrors.Inc()
			return 0, fmt.Errorf("table: MutualL(w1=%g, w2=%g, s=%g, l=%g) outside table %q axes (w ∈ [%g, %g], s ∈ [%g, %g], l ∈ [%g, %g]): %w",
				w1, w2, sp, l, s.Config.Name,
				s.Axes.Widths[0], s.Axes.Widths[len(s.Axes.Widths)-1],
				s.Axes.Spacings[0], s.Axes.Spacings[len(s.Axes.Spacings)-1],
				s.Axes.Lengths[0], s.Axes.Lengths[len(s.Axes.Lengths)-1], ErrOutOfRange)
		case LookupClamp:
			lookupOOBClamps.Inc()
			w1, w2 = clampTo(s.Axes.Widths, w1), clampTo(s.Axes.Widths, w2)
			sp, l = clampTo(s.Axes.Spacings, sp), clampTo(s.Axes.Lengths, l)
		default:
			lookupOOBExtrapolated.Inc()
		}
	}
	v, err := s.Mutual.Eval(w1, w2, sp, l)
	if err != nil {
		return 0, err
	}
	if e := check.Active(); e.Armed() {
		if !finite(v) || v < 0 {
			if err := e.Report(&check.Violation{
				Stage: check.StageLookup, Invariant: "mutual inductance finite and non-negative",
				Subject: fmt.Sprintf("table %q", s.Config.Name),
				Cell:    fmt.Sprintf("MutualL(w1=%g, w2=%g, s=%g, l=%g)", w1, w2, sp, l),
				Detail:  fmt.Sprintf("M = %g", v),
			}); err != nil {
				return 0, err
			}
		}
	}
	return v, nil
}
