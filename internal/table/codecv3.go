package table

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"clockrlc/internal/geom"
	"clockrlc/internal/spline"
)

// Codec v3 is the zero-copy binary format: a little-endian,
// 8-byte-aligned layout whose on-disk shape is the in-memory shape, so
// a load can mmap the file and point the spline grids straight into
// the mapping — no parse, no float copies, no tridiagonal solves (the
// per-axis spline coefficient matrices are persisted too).
//
// Layout (all offsets fixed, all multi-byte values little-endian):
//
//	off   size  field
//	  0      8  magic "RLCTBLv3"
//	  8      4  u32 version (= 3)
//	 12      4  u32 shielding
//	 16     32  SHA-256 of the whole file with these 32 bytes zeroed
//	 48      8  f64 thickness          56   8  f64 rho
//	 64      8  f64 plane gap          72   8  f64 plane thickness
//	 80      8  f64 frequency
//	 88      4  u32 plane strips       92   4  u32 subW
//	 96      4  u32 subT              100   4  u32 name length
//	104      4  u32 nw                108   4  u32 ns
//	112      4  u32 nl                116   4  u32 reserved (= 0)
//	120     nameLen  set name (UTF-8), zero-padded to a multiple of 8
//	then consecutive f64 blocks, each naturally 8-aligned:
//	  widths[nw]  spacings[ns]  lengths[nl]
//	  self values[nw·nl]  mutual values[nw²·ns·nl]
//	  coefW[nw²]  coefS[ns²]  coefL[nl²]
//
// The coefficient matrices are the per-axis second-derivative maps
// spline.NewGrid computes; persisting them lets the load construct
// grids with NewGridWithCoef that evaluate bit-identically to a
// from-scratch build. Config.Workers is an execution detail (excluded
// from the cache key for the same reason) and is not persisted.
const (
	formatVersionV3 = 3
	v3HeaderSize    = 120
	// v3MaxAxisLen bounds each axis count so the total-size arithmetic
	// below cannot overflow (4096⁴·8 ≈ 2⁵¹ bytes) and a hostile header
	// cannot demand an absurd allocation.
	v3MaxAxisLen = 1 << 12
	v3MaxNameLen = 1 << 12
)

// v3Magic identifies a v3 file; JSON records can never start with
// these bytes ('R' is not valid leading JSON whitespace or syntax).
var v3Magic = [8]byte{'R', 'L', 'C', 'T', 'B', 'L', 'v', '3'}

// hostLittleEndian reports whether float64/uint64 memory order matches
// the on-disk order, enabling the zero-copy reinterpret path. On a
// big-endian host every block is decoded with explicit byte order
// instead — correct, just not zero-copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// v3Checksum hashes the file with the embedded checksum bytes zeroed.
func v3Checksum(data []byte) [32]byte {
	h := sha256.New()
	h.Write(data[:16])
	var zeros [32]byte
	h.Write(zeros[:])
	h.Write(data[48:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// v3Pad rounds n up to the next multiple of 8.
func v3Pad(n int) int { return (n + 7) &^ 7 }

// checkU32 rejects config ints a u32 field cannot faithfully hold.
func checkU32(field string, v int) error {
	if v < 0 || int64(v) > math.MaxUint32 {
		return fmt.Errorf("config %s %d does not fit the v3 format", field, v)
	}
	return nil
}

// encodeV3 serialises the set to the v3 byte layout.
func (s *Set) encodeV3() ([]byte, error) {
	if s.Self == nil || s.Mutual == nil {
		return nil, errors.New("set has no grids")
	}
	if err := s.Axes.Validate(); err != nil {
		return nil, err
	}
	nw, ns, nl := len(s.Axes.Widths), len(s.Axes.Spacings), len(s.Axes.Lengths)
	if nw > v3MaxAxisLen || ns > v3MaxAxisLen || nl > v3MaxAxisLen {
		return nil, fmt.Errorf("axes too large for the v3 format (max %d knots per axis)", v3MaxAxisLen)
	}
	name := []byte(s.Config.Name)
	if len(name) > v3MaxNameLen {
		return nil, fmt.Errorf("set name is %d bytes (v3 max %d)", len(name), v3MaxNameLen)
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Shielding", int(s.Config.Shielding)},
		{"PlaneStrips", s.Config.PlaneStrips},
		{"SubW", s.Config.SubW},
		{"SubT", s.Config.SubT},
	} {
		if err := checkU32(f.name, f.v); err != nil {
			return nil, err
		}
	}
	if got, want := len(s.Self.Vals), nw*nl; got != want {
		return nil, fmt.Errorf("self value count %d does not match the axes product %d", got, want)
	}
	if got, want := len(s.Mutual.Vals), nw*nw*ns*nl; got != want {
		return nil, fmt.Errorf("mutual value count %d does not match the axes product %d", got, want)
	}
	coefW, coefS, coefL := s.Self.Coef(0), s.Mutual.Coef(2), s.Self.Coef(1)
	if len(coefW) != nw*nw || len(coefS) != ns*ns || len(coefL) != nl*nl {
		return nil, errors.New("grid coefficient matrices do not match the axes (set not built over its own axes?)")
	}

	namePad := v3Pad(len(name))
	nf := nw + ns + nl + nw*nl + nw*nw*ns*nl + nw*nw + ns*ns + nl*nl
	buf := make([]byte, v3HeaderSize+namePad+8*nf)
	le := binary.LittleEndian
	copy(buf, v3Magic[:])
	le.PutUint32(buf[8:], formatVersionV3)
	le.PutUint32(buf[12:], uint32(s.Config.Shielding))
	for i, v := range []float64{
		s.Config.Thickness, s.Config.Rho, s.Config.PlaneGap,
		s.Config.PlaneThickness, s.Config.Frequency,
	} {
		le.PutUint64(buf[48+8*i:], math.Float64bits(v))
	}
	le.PutUint32(buf[88:], uint32(s.Config.PlaneStrips))
	le.PutUint32(buf[92:], uint32(s.Config.SubW))
	le.PutUint32(buf[96:], uint32(s.Config.SubT))
	le.PutUint32(buf[100:], uint32(len(name)))
	le.PutUint32(buf[104:], uint32(nw))
	le.PutUint32(buf[108:], uint32(ns))
	le.PutUint32(buf[112:], uint32(nl))
	copy(buf[v3HeaderSize:], name)
	off := v3HeaderSize + namePad
	for _, block := range [][]float64{
		s.Axes.Widths, s.Axes.Spacings, s.Axes.Lengths,
		s.Self.Vals, s.Mutual.Vals, coefW, coefS, coefL,
	} {
		for _, v := range block {
			le.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	sum := v3Checksum(buf)
	copy(buf[16:48], sum[:])
	return buf, nil
}

// SaveV3 writes the set in the v3 binary format.
func (s *Set) SaveV3(w io.Writer) error {
	buf, err := s.encodeV3()
	if err != nil {
		return fmt.Errorf("table: %w", err)
	}
	_, err = w.Write(buf)
	return err
}

// SaveFileV3 writes the set to path in the v3 binary format with the
// same atomicity guarantees as SaveFile (temp file, fsync, rename,
// directory sync). By convention v3 files use the .rlct extension so
// LoadDir can discover them next to legacy .json sets.
func (s *Set) SaveFileV3(path string) error {
	buf, err := s.encodeV3()
	if err != nil {
		return fmt.Errorf("table: save %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("table: save %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op once renamed
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("table: save %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("table: save %s: sync: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("table: save %s: close: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("table: save %s: %w", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best effort; the data itself is already durable
		d.Close()
	}
	return nil
}

// v3Floats returns data[off : off+8n] as a []float64. When the host is
// little-endian and the region 8-aligned this is a zero-copy
// reinterpret of the underlying bytes (the mmap'd or aligned-read
// buffer); otherwise the block is decoded into a fresh slice.
func v3Floats(data []byte, off, n int) []float64 {
	if n == 0 {
		return nil
	}
	p := &data[off]
	if hostLittleEndian && uintptr(unsafe.Pointer(p))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(p)), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+8*i:]))
	}
	return out
}

// loadV3 decodes a v3 image. unmap, when non-nil, releases the file
// mapping backing data and is adopted by the returned set (Close);
// on any decode error it is the caller's job to unmap.
//
// Errors carry no "table:" prefix, mirroring load: Load and LoadFile
// frame them.
func loadV3(data []byte, unmap func() error) (*Set, error) {
	if len(data) < v3HeaderSize {
		return nil, fmt.Errorf("v3 record truncated: %d bytes is shorter than the %d-byte header", len(data), v3HeaderSize)
	}
	if [8]byte(data[:8]) != v3Magic {
		return nil, errors.New("bad v3 magic")
	}
	le := binary.LittleEndian
	switch v := le.Uint32(data[8:]); {
	case v < formatVersionV3:
		return nil, fmt.Errorf("bad format version %d in a v3-framed record", v)
	case v > formatVersionV3:
		return nil, fmt.Errorf("format version %d is newer than this build reads (max %d); rebuild the tables or upgrade", v, formatVersionV3)
	}
	if got, want := v3Checksum(data), [32]byte(data[16:48]); got != want {
		return nil, fmt.Errorf("checksum mismatch (file corrupt or truncated): stored %x…, computed %x…", want[:6], got[:6])
	}
	nameLen := int(le.Uint32(data[100:]))
	nw := int(le.Uint32(data[104:]))
	ns := int(le.Uint32(data[108:]))
	nl := int(le.Uint32(data[112:]))
	if nameLen > v3MaxNameLen {
		return nil, fmt.Errorf("name length %d exceeds the v3 limit %d", nameLen, v3MaxNameLen)
	}
	if nw > v3MaxAxisLen || ns > v3MaxAxisLen || nl > v3MaxAxisLen {
		return nil, fmt.Errorf("axis counts %d×%d×%d exceed the v3 limit %d", nw, ns, nl, v3MaxAxisLen)
	}
	nf := uint64(nw) + uint64(ns) + uint64(nl) +
		uint64(nw)*uint64(nl) +
		uint64(nw)*uint64(nw)*uint64(ns)*uint64(nl) +
		uint64(nw)*uint64(nw) + uint64(ns)*uint64(ns) + uint64(nl)*uint64(nl)
	want := uint64(v3HeaderSize) + uint64(v3Pad(nameLen)) + 8*nf
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("size mismatch (corrupt or truncated): %d bytes for a layout needing %d", len(data), want)
	}

	cfg := Config{
		Name:           string(data[v3HeaderSize : v3HeaderSize+nameLen]),
		Thickness:      math.Float64frombits(le.Uint64(data[48:])),
		Rho:            math.Float64frombits(le.Uint64(data[56:])),
		Shielding:      geom.Shielding(le.Uint32(data[12:])),
		PlaneGap:       math.Float64frombits(le.Uint64(data[64:])),
		PlaneThickness: math.Float64frombits(le.Uint64(data[72:])),
		Frequency:      math.Float64frombits(le.Uint64(data[80:])),
		PlaneStrips:    int(le.Uint32(data[88:])),
		SubW:           int(le.Uint32(data[92:])),
		SubT:           int(le.Uint32(data[96:])),
	}

	off := v3HeaderSize + v3Pad(nameLen)
	next := func(n int) []float64 {
		f := v3Floats(data, off, n)
		off += 8 * n
		return f
	}
	axes := Axes{Widths: next(nw), Spacings: next(ns), Lengths: next(nl)}
	selfVals := next(nw * nl)
	mutualVals := next(nw * nw * ns * nl)
	coefW, coefS, coefL := next(nw*nw), next(ns*ns), next(nl*nl)
	if err := axes.Validate(); err != nil {
		return nil, err
	}
	selfGrid, err := spline.NewGridWithCoef(
		[][]float64{axes.Widths, axes.Lengths}, selfVals,
		[][]float64{coefW, coefL})
	if err != nil {
		return nil, fmt.Errorf("self grid: %w", err)
	}
	mutGrid, err := spline.NewGridWithCoef(
		[][]float64{axes.Widths, axes.Widths, axes.Spacings, axes.Lengths}, mutualVals,
		[][]float64{coefW, coefW, coefS, coefL})
	if err != nil {
		return nil, fmt.Errorf("mutual grid: %w", err)
	}
	return &Set{Config: cfg, Axes: axes, Self: selfGrid, Mutual: mutGrid, unmap: unmap}, nil
}

// readAligned reads the whole of f into an 8-aligned buffer (backed by
// a []float64 allocation), so the zero-copy reinterpret in v3Floats
// works even without mmap.
func readAligned(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < v3HeaderSize {
		return nil, fmt.Errorf("v3 record truncated: %d bytes is shorter than the %d-byte header", size, v3HeaderSize)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("file too large to load: %d bytes", size)
	}
	backing := make([]float64, (int(size)+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), int(size))
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// loadFileV3 maps f and decodes it, falling back to an aligned plain
// read where mmap is unavailable or refused. The returned set owns the
// mapping (release with Close); a plain-read set owns nothing.
func loadFileV3(f *os.File) (*Set, error) {
	data, unmap, err := mapFile(f)
	if err != nil {
		// Fallback path: not zero-copy across the file boundary, but
		// still parse-free and solve-free.
		data, err = readAligned(f)
		if err != nil {
			return nil, err
		}
		unmap = nil
	}
	s, err := loadV3(data, unmap)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	return s, nil
}

// Mapped reports whether the set's grids point into a live file
// mapping (a zero-copy v3 load). Mapped sets are strictly read-only:
// writing a grid value would fault, and the set must outlive no use of
// its values past Close.
func (s *Set) Mapped() bool { return s.unmap != nil }

// Close releases the file mapping backing a zero-copy loaded set.
// After Close the set's axes, values and coefficient matrices must not
// be touched. Close is idempotent and a no-op for heap-backed sets.
func (s *Set) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	return u()
}

// WithLookup returns a set answering out-of-range lookups per p,
// sharing this set's grids. The receiver is never modified — setting
// s.Lookup directly on a set a registry shares across requests would
// be a data race — and the returned copy does not own the file
// mapping: only the original's Close releases it, so the copy must
// not outlive the original.
func (s *Set) WithLookup(p LookupPolicy) *Set {
	if s == nil || s.Lookup == p {
		return s
	}
	cp := *s
	cp.Lookup = p
	cp.unmap = nil
	return &cp
}
