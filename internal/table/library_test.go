package table

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clockrlc/internal/units"
)

func tinyAxes() Axes {
	return Axes{
		Widths:   LogAxis(units.Um(1), units.Um(4), 2),
		Spacings: LogAxis(units.Um(1), units.Um(2), 2),
		Lengths:  LogAxis(units.Um(100), units.Um(1000), 3),
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	l := NewLibrary()
	for _, name := range []string{"M6/coplanar", "M6/microstrip"} {
		cfg := freeConfig()
		cfg.Name = name
		if name == "M6/microstrip" {
			cfg = microstripConfig()
			cfg.Name = name
		}
		s, err := Build(cfg, tinyAxes())
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 2 {
		t.Fatalf("library size %d", l.Len())
	}
	dir := t.TempDir() + "/lib"
	if err := l.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// Slash in the name must not create subdirectories.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expected 2 files, got %d", len(entries))
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d sets", back.Len())
	}
	a, err := l.Get("M6/coplanar")
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Get("M6/coplanar")
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := a.SelfL(units.Um(2), units.Um(500))
	x2, _ := b.SelfL(units.Um(2), units.Um(500))
	if x1 != x2 {
		t.Errorf("lookup drift through library round trip: %g vs %g", x1, x2)
	}
}

// Distinct set names must land in distinct files — the old replacer
// collapsed "a/b", "a\\b" and "a__b" onto one file and SaveDir
// silently kept only the last set written.
func TestLibraryAdversarialNamesRoundTrip(t *testing.T) {
	base, err := Build(freeConfig(), tinyAxes())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"a/b", `a\b`, "a__b", "a b_", "a_b_", "a%2Fb", "M6/µstrip", "..",
	}
	l := NewLibrary()
	for _, name := range names {
		cfg := base.Config
		cfg.Name = name
		if err := l.Add(&Set{Config: cfg, Axes: base.Axes, Self: base.Self, Mutual: base.Mutual}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]string{}
	for _, name := range names {
		fn := fileName(name)
		if prev, dup := seen[fn]; dup {
			t.Fatalf("names %q and %q collide on file %q", prev, name, fn)
		}
		seen[fn] = name
		if filepath.Base(fn) != fn || strings.ContainsAny(fn, `/\ `) {
			t.Errorf("fileName(%q) = %q is not a safe flat name", name, fn)
		}
	}
	dir := filepath.Join(t.TempDir(), "lib")
	if err := l.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(names) {
		t.Fatalf("%d files for %d sets — SaveDir overwrote one", len(entries), len(names))
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		s, err := back.Get(name)
		if err != nil {
			t.Errorf("set %q lost in the round trip: %v", name, err)
			continue
		}
		a, _ := base.SelfL(units.Um(2), units.Um(500))
		b, _ := s.SelfL(units.Um(2), units.Um(500))
		if a != b {
			t.Errorf("set %q drifted through the round trip", name)
		}
	}
}

// Names differing only by letter case would merge on a
// case-insensitive filesystem; SaveDir must refuse up front rather
// than overwrite one set silently.
func TestSaveDirRejectsCaseCollision(t *testing.T) {
	base, err := Build(freeConfig(), tinyAxes())
	if err != nil {
		t.Fatal(err)
	}
	l := NewLibrary()
	for _, name := range []string{"m6/cpw", "M6/cpw"} {
		cfg := base.Config
		cfg.Name = name
		if err := l.Add(&Set{Config: cfg, Axes: base.Axes, Self: base.Self, Mutual: base.Mutual}); err != nil {
			t.Fatal(err)
		}
	}
	err = l.SaveDir(filepath.Join(t.TempDir(), "lib"))
	if err == nil {
		t.Fatal("SaveDir accepted case-colliding set names")
	}
	if !strings.Contains(err.Error(), "m6/cpw") || !strings.Contains(err.Error(), "M6/cpw") {
		t.Errorf("collision error must name both sets: %v", err)
	}
}

func TestLibraryValidation(t *testing.T) {
	l := NewLibrary()
	if err := l.Add(nil); err == nil {
		t.Error("accepted nil set")
	}
	if err := l.Add(&Set{}); err == nil {
		t.Error("accepted anonymous set")
	}
	cfg := freeConfig()
	s, err := Build(cfg, tinyAxes())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Add(s); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(s); err == nil {
		t.Error("accepted duplicate set")
	}
	if _, err := l.Get("nosuch"); err == nil {
		t.Error("Get returned missing set")
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("LoadDir accepted an empty directory")
	}
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LoadDir accepted a missing directory")
	}
}
