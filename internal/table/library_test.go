package table

import (
	"os"
	"path/filepath"
	"testing"

	"clockrlc/internal/units"
)

func tinyAxes() Axes {
	return Axes{
		Widths:   LogAxis(units.Um(1), units.Um(4), 2),
		Spacings: LogAxis(units.Um(1), units.Um(2), 2),
		Lengths:  LogAxis(units.Um(100), units.Um(1000), 3),
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	l := NewLibrary()
	for _, name := range []string{"M6/coplanar", "M6/microstrip"} {
		cfg := freeConfig()
		cfg.Name = name
		if name == "M6/microstrip" {
			cfg = microstripConfig()
			cfg.Name = name
		}
		s, err := Build(cfg, tinyAxes())
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 2 {
		t.Fatalf("library size %d", l.Len())
	}
	dir := t.TempDir() + "/lib"
	if err := l.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// Slash in the name must not create subdirectories.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expected 2 files, got %d", len(entries))
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d sets", back.Len())
	}
	a, err := l.Get("M6/coplanar")
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Get("M6/coplanar")
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := a.SelfL(units.Um(2), units.Um(500))
	x2, _ := b.SelfL(units.Um(2), units.Um(500))
	if x1 != x2 {
		t.Errorf("lookup drift through library round trip: %g vs %g", x1, x2)
	}
}

func TestLibraryValidation(t *testing.T) {
	l := NewLibrary()
	if err := l.Add(nil); err == nil {
		t.Error("accepted nil set")
	}
	if err := l.Add(&Set{}); err == nil {
		t.Error("accepted anonymous set")
	}
	cfg := freeConfig()
	s, err := Build(cfg, tinyAxes())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Add(s); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(s); err == nil {
		t.Error("accepted duplicate set")
	}
	if _, err := l.Get("nosuch"); err == nil {
		t.Error("Get returned missing set")
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("LoadDir accepted an empty directory")
	}
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LoadDir accepted a missing directory")
	}
}
