package table

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"clockrlc/internal/check"
	"clockrlc/internal/obs"
	"clockrlc/internal/spline"
)

// TestCacheEntryIsV3Mapped: cache entries are written in the v3
// binary codec, so a hit mmaps the artifact instead of parsing it.
func TestCacheEntryIsV3Mapped(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()
	if _, err := c.GetOrBuild(cfg, axes, nil); err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.Path(key))
	if err != nil {
		t.Fatalf("entry not at the .rlct path: %v", err)
	}
	if !bytes.HasPrefix(raw, v3Magic[:]) {
		t.Fatalf("cache entry does not start with the v3 magic: % x", raw[:8])
	}
	s, ok, err := c.Get(cfg, axes)
	if err != nil || !ok {
		t.Fatalf("warm get: ok=%v err=%v", ok, err)
	}
	defer s.Close()
	if !s.Mapped() {
		t.Skip("platform loaded via the plain-read fallback (no mmap)")
	}
}

// TestCacheStrictAuditViolationPropagates is the regression test for
// the trust-boundary bug: a cached set that is well-formed (checksum
// verifies) but fails the strict physical-invariant audit used to be
// counted table.cache_corrupt and silently rebuilt, bypassing the
// user's strict policy. It must surface as an error unwrapping to
// check.ErrViolation, with no corruption counted.
func TestCacheStrictAuditViolationPropagates(t *testing.T) {
	defer check.SetPolicy(check.Off)
	check.SetPolicy(check.Off)

	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()
	built, err := c.GetOrBuild(cfg, axes, nil)
	if err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite the entry with a physically wrong but well-formed set:
	// a diagonal mutual entry at twice the self inductance (k = 2).
	// The loaded entry may be a read-only mapping, so mutate a copy.
	nw, ns, nl := len(axes.Widths), len(axes.Spacings), len(axes.Lengths)
	selfVals := append([]float64(nil), built.Self.Vals...)
	mutVals := append([]float64(nil), built.Mutual.Vals...)
	mutVals[((1*nw+1)*ns+0)*nl+1] = 2 * selfVals[1*nl+1]
	bad := &Set{Config: built.Config, Axes: axes}
	if bad.Self, err = spline.NewGrid([][]float64{axes.Widths, axes.Lengths}, selfVals); err != nil {
		t.Fatal(err)
	}
	if bad.Mutual, err = spline.NewGrid(
		[][]float64{axes.Widths, axes.Widths, axes.Spacings, axes.Lengths}, mutVals); err != nil {
		t.Fatal(err)
	}
	if err := bad.SaveFileV3(c.Path(key)); err != nil {
		t.Fatal(err)
	}

	check.SetPolicy(check.Strict)
	_, _, _, corrupt0 := CacheStats()
	_, ok, err := c.Get(cfg, axes)
	if ok {
		t.Fatal("strict policy: cache served a set that violates physical invariants")
	}
	if !errors.Is(err, check.ErrViolation) {
		t.Fatalf("strict policy: got %v, want an error unwrapping to check.ErrViolation", err)
	}
	if _, _, _, corrupt := CacheStats(); corrupt != corrupt0 {
		t.Errorf("audit violation was counted as corruption (cache_corrupt += %d)", corrupt-corrupt0)
	}

	// GetOrBuild must fail too — not silently rebuild past the policy.
	if _, err := c.GetOrBuild(cfg, axes, nil); !errors.Is(err, check.ErrViolation) {
		t.Errorf("GetOrBuild under strict policy: got %v, want ErrViolation", err)
	}

	// Warn accepts the entry (counting the violation globally).
	check.SetPolicy(check.Warn)
	if _, ok, err := c.Get(cfg, axes); err != nil || !ok {
		t.Errorf("warn policy: ok=%v err=%v, want a hit", ok, err)
	}
}

// TestCacheSpanRecordsKey: the table.cache span carries the content
// address on both hit and miss, so obsreport traces can correlate
// cache entries across runs.
func TestCacheSpanRecordsKey(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()
	key, err := CacheKey(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantOutcome := range []string{"miss", "hit"} {
		sink := &obs.MemorySink{}
		o := obs.New(sink)
		if _, err := c.GetOrBuild(cfg, axes, o); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range sink.Events() {
			if e.Name != "table.cache" || e.Attrs == nil {
				continue
			}
			if e.Attrs["outcome"] != wantOutcome {
				continue
			}
			found = true
			if got := e.Attrs["key"]; got != key {
				t.Errorf("%s span key attr = %v, want %s", wantOutcome, got, key)
			}
		}
		if !found {
			t.Fatalf("no table.cache span with outcome %q", wantOutcome)
		}
	}
}
