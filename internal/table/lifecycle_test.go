package table

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

// WithLookup must hand concurrent requests their own policies without
// ever writing the shared set (run under -race) and without giving
// the copy ownership of the file mapping.
func TestWithLookupSharesGridsWithoutMutation(t *testing.T) {
	dir := t.TempDir()
	set, err := Build(freeConfig(), tinyAxes())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "set.rlct")
	if err := set.SaveFileV3(path); err != nil {
		t.Fatal(err)
	}
	shared, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()

	// An off-axis width: extrapolate answers, error refuses.
	w := shared.Axes.Widths[len(shared.Axes.Widths)-1] * 4
	l := shared.Axes.Lengths[0]
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if i%2 == 0 {
					s := shared.WithLookup(LookupError)
					if _, err := s.SelfL(w, l); !errors.Is(err, ErrOutOfRange) {
						t.Errorf("LookupError copy: err = %v, want ErrOutOfRange", err)
						return
					}
				} else {
					s := shared.WithLookup(LookupExtrapolate)
					if _, err := s.SelfL(w, l); err != nil {
						t.Errorf("LookupExtrapolate copy: %v", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if shared.Lookup != LookupExtrapolate {
		t.Errorf("shared set's policy was mutated to %v", shared.Lookup)
	}

	// Same-policy requests reuse the set itself; different-policy
	// copies never own the mapping.
	if s := shared.WithLookup(shared.Lookup); s != shared {
		t.Error("same-policy WithLookup did not return the receiver")
	}
	cp := shared.WithLookup(LookupClamp)
	if cp == shared {
		t.Error("different-policy WithLookup returned the receiver")
	}
	if cp.Mapped() {
		t.Error("policy copy claims to own the file mapping")
	}
	if shared.Mapped() != true {
		t.Skip("set not mapped on this platform; ownership check not applicable")
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if !shared.Mapped() {
		t.Error("closing the policy copy released the original's mapping")
	}
}

// A loaded library owns one mapping per v3 set; Close must release
// them all and be idempotent.
func TestLibraryCloseReleasesMappings(t *testing.T) {
	dir := t.TempDir()
	l := NewLibrary()
	for _, name := range []string{"M6/coplanar", "M6/b"} {
		cfg := freeConfig()
		cfg.Name = name
		s, err := Build(cfg, tinyAxes())
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SaveDirV3(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	mapped := 0
	for _, name := range loaded.Names() {
		s, err := loaded.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Mapped() {
			mapped++
		}
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range loaded.Names() {
		s, _ := loaded.Get(name)
		if s.Mapped() {
			t.Errorf("set %s still mapped after Library.Close", name)
		}
	}
	if err := loaded.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if mapped == 0 {
		t.Log("no set was mmap-backed on this platform; Close exercised the no-op path")
	}
}
