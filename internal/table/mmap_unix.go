//go:build unix

package table

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps f read-only. The mapping is page-aligned (so every
// 8-aligned file offset stays 8-aligned in memory) and private: cache
// entries are immutable and replaced only by atomic rename to a new
// inode, so the mapped bytes can never change under us. The returned
// release function is the matching munmap.
func mapFile(f *os.File) ([]byte, func() error, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("unmappable file size %d", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
