package table

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"clockrlc/internal/obs"
)

// cellPanics counts sweep cells whose body panicked and was converted
// into a CellPanic error instead of crashing the pool.
var cellPanics = obs.GetCounter("table.cell_panics")

// CellPanic is the named error a panicking parallel-sweep cell is
// converted into: the worker recovers, records the cell index and the
// stack at the panic site, and the pool drains cleanly instead of
// crashing the process. Retrieve it with errors.As to learn which
// cell failed.
type CellPanic struct {
	// Cell is the index the body panicked on.
	Cell int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (p *CellPanic) Error() string {
	return fmt.Sprintf("table: sweep cell %d panicked: %v", p.Cell, p.Value)
}

// runCell invokes fn(k), converting a panic into a *CellPanic error.
func runCell(fn func(k int) error, k int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			cellPanics.Inc()
			err = &CellPanic{Cell: k, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(k)
}

// ParallelFor is ParallelForCtx without cancellation; it remains the
// signature the pre-context callers use.
func ParallelFor(n, workers int, fn func(k int) error) error {
	return ParallelForCtx(context.Background(), n, workers, fn)
}

// ParallelForCtx runs fn(k) for k in [0, n) on up to workers
// goroutines. Indices are claimed from an atomic cursor, so callers
// that write results by index get deterministic output regardless of
// scheduling. The first error stops further work (in-flight items
// finish) and is returned; a cancelled ctx stops new claims and
// returns ctx.Err() once every worker has drained — the pool never
// leaks a goroutine and returns within one cell's duration of the
// cancellation. A panicking cell is isolated per worker and surfaces
// as a *CellPanic carrying the cell index; the other workers finish
// their in-flight cells normally. workers <= 1 degenerates to a plain
// serial loop with the same cancellation and panic semantics.
func ParallelForCtx(ctx context.Context, n, workers int, fn func(k int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runCell(fn, k); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor   atomic.Int64
		failed   atomic.Bool
		once     sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				k := int(cursor.Add(1)) - 1
				if k >= n {
					return
				}
				if err := runCell(fn, k); err != nil {
					once.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
