package table

import (
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(k) for k in [0, n) on up to workers goroutines.
// Indices are claimed from an atomic cursor, so callers that write
// results by index get deterministic output regardless of scheduling.
// The first error stops further work (in-flight items finish) and is
// returned. workers <= 1 degenerates to a plain serial loop. It is
// the bounded pool behind table builds and core's batch extraction.
func ParallelFor(n, workers int, fn func(k int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			if err := fn(k); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor   atomic.Int64
		failed   atomic.Bool
		once     sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				k := int(cursor.Add(1)) - 1
				if k >= n {
					return
				}
				if err := fn(k); err != nil {
					once.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
