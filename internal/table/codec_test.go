package table

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clockrlc/internal/units"
)

// codecTestSet builds one tiny set for persistence tests.
func codecTestSet(t *testing.T) *Set {
	t.Helper()
	set, err := Build(freeConfig(), tinyAxes())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// saveToFile writes the set and returns the path and raw bytes.
func saveToFile(t *testing.T, set *Set) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "set.json")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// A crash mid-save must never leave a truncated record under the
// final name: SaveFile goes through a temp file + rename, so a
// pre-existing good file survives a failed overwrite and no lookup
// ever sees half a sweep.
func TestSaveFileIsAtomic(t *testing.T) {
	set := codecTestSet(t)
	path, raw := saveToFile(t, set)

	// No temp droppings next to the artifact.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}

	// Overwriting in place keeps the record loadable and identical.
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("re-save of the same set produced different bytes")
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

// The torn-write regression: a file truncated mid-record (what the
// old non-atomic Save left after a crash) must fail loudly with an
// error naming the file — not poison the library or panic a spline.
func TestLoadRejectsTornWrite(t *testing.T) {
	set := codecTestSet(t)
	path, raw := saveToFile(t, set)
	torn := filepath.Join(filepath.Dir(path), "torn.json")
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(torn)
	if err == nil {
		t.Fatal("LoadFile accepted a torn record")
	}
	if !strings.Contains(err.Error(), "torn.json") {
		t.Errorf("torn-write error does not name the file: %v", err)
	}
	// A torn file in a library directory fails LoadDir with the same
	// identification instead of a silent partial library.
	if err := set.SaveFile(filepath.Join(filepath.Dir(path), "good2.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(filepath.Dir(path)); err == nil {
		t.Error("LoadDir accepted a directory with a torn record")
	}
}

func TestLoadRejectsBadChecksum(t *testing.T) {
	set := codecTestSet(t)
	path, raw := saveToFile(t, set)
	var ff fileFormat
	if err := json.Unmarshal(raw, &ff); err != nil {
		t.Fatal(err)
	}
	if ff.Version != formatVersion || ff.Checksum == "" {
		t.Fatalf("saved record: version %d, checksum %q", ff.Version, ff.Checksum)
	}
	// Corrupt one stored value; the record stays valid JSON with the
	// right counts, so only the checksum can catch it.
	ff.SelfVals[0] *= 1.0000001
	mut, err := json.Marshal(ff)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(filepath.Dir(path), "bitrot.json")
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(bad)
	if err == nil {
		t.Fatal("LoadFile accepted a bit-rotted record")
	}
	if !strings.Contains(err.Error(), "checksum") || !strings.Contains(err.Error(), "bitrot.json") {
		t.Errorf("checksum error must name the failure and the file: %v", err)
	}
}

func TestLoadRejectsValueCountMismatch(t *testing.T) {
	set := codecTestSet(t)
	for _, tc := range []struct {
		name string
		mod  func(ff *fileFormat)
		want string
	}{
		{"self short", func(ff *fileFormat) { ff.SelfVals = ff.SelfVals[:len(ff.SelfVals)-1] }, "self value count"},
		{"mutual short", func(ff *fileFormat) { ff.MutualVals = ff.MutualVals[:len(ff.MutualVals)-2] }, "mutual value count"},
		{"self empty", func(ff *fileFormat) { ff.SelfVals = nil }, "self value count"},
	} {
		// Version 1 records carry no checksum, so the count check is
		// the only line of defence on the migration path.
		ff := fileFormat{
			Version:    1,
			Config:     set.Config,
			Axes:       set.Axes,
			SelfVals:   append([]float64(nil), set.Self.Vals...),
			MutualVals: append([]float64(nil), set.Mutual.Vals...),
		}
		tc.mod(&ff)
		raw, err := json.Marshal(ff)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "count.json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadFile(path)
		if err == nil {
			t.Errorf("%s: LoadFile accepted a count mismatch", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) || !strings.Contains(err.Error(), "count.json") {
			t.Errorf("%s: error must explain the mismatch and name the file: %v", tc.name, err)
		}
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.json")
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("LoadFile accepted a future format version")
	}
	if !strings.Contains(err.Error(), "99") || !strings.Contains(err.Error(), "future.json") {
		t.Errorf("future-version error must name the version and the file: %v", err)
	}
	if _, err := Load(bytes.NewBufferString(`{"version": 0}`)); err == nil {
		t.Error("Load accepted version 0")
	}
}

// Version-1 records (written before the checksum codec) must keep
// loading bit-identically — the migration path for existing
// libraries.
func TestLoadMigratesV1(t *testing.T) {
	set := codecTestSet(t)
	ff := fileFormat{
		Version:    1,
		Config:     set.Config,
		Axes:       set.Axes,
		SelfVals:   set.Self.Vals,
		MutualVals: set.Mutual.Vals,
	}
	raw, err := json.Marshal(ff)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v1 record rejected: %v", err)
	}
	w, l := units.Um(2), units.Um(500)
	a, err1 := set.SelfL(w, l)
	b, err2 := back.SelfL(w, l)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a != b {
		t.Errorf("v1 migration drifted a lookup: %g vs %g", a, b)
	}
}

// Stale temp files from a crashed save must not break LoadDir: they
// do not end in .json and are skipped.
func TestLoadDirSkipsTempFiles(t *testing.T) {
	set := codecTestSet(t)
	dir := t.TempDir()
	if err := set.SaveFile(filepath.Join(dir, fileName(set.Config.Name))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "set.json.tmp-123"), []byte("half a reco"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir tripped on a stale temp file: %v", err)
	}
	if l.Len() != 1 {
		t.Errorf("loaded %d sets, want 1", l.Len())
	}
}
