package table

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/loop"
	"clockrlc/internal/peec"
	"clockrlc/internal/units"
)

const fsig = 3.2e9

func freeConfig() Config {
	return Config{
		Name:      "M6/coplanar",
		Thickness: units.Um(2),
		Rho:       units.RhoCopper,
		Shielding: geom.ShieldNone,
		Frequency: fsig,
	}
}

func microstripConfig() Config {
	c := freeConfig()
	c.Name = "M6/microstrip"
	c.Shielding = geom.ShieldMicrostrip
	c.PlaneGap = units.Um(2)
	c.PlaneThickness = units.Um(1)
	c.PlaneStrips = 10
	return c
}

func smallAxes() Axes {
	return Axes{
		Widths:   LogAxis(units.Um(1), units.Um(12), 4),
		Spacings: LogAxis(units.Um(0.8), units.Um(6), 4),
		Lengths:  LogAxis(units.Um(100), units.Um(6000), 6),
	}
}

func TestBuildFreeAndLookupAccuracy(t *testing.T) {
	set, err := Build(freeConfig(), smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	// Off-grid probes: compare lookup against direct extraction. This
	// is experiment E6 in miniature — the paper's claim is no loss of
	// accuracy beyond interpolation error.
	probes := []struct{ w, l float64 }{
		{units.Um(2.3), units.Um(900)},
		{units.Um(7.7), units.Um(3300)},
		{units.Um(10), units.Um(6000)}, // the Fig.1 signal trace
	}
	for _, p := range probes {
		got, err := set.SelfL(p.w, p.l)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := peec.EffectiveRL(
			peec.Bar{Axis: peec.AxisX, O: [3]float64{0, -p.w / 2, 0}, L: p.l, W: p.w, T: units.Um(2)},
			units.RhoCopper, fsig, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-rl.L) / rl.L; !(rel <= 0.02) {
			t.Errorf("self lookup (w=%g, l=%g): %g vs direct %g (rel %g)", p.w, p.l, got, rl.L, rel)
		}
	}
	// Mutual probe.
	w1, w2, sp, l := units.Um(3), units.Um(5), units.Um(2), units.Um(2000)
	got, err := set.MutualL(w1, w2, sp, l)
	if err != nil {
		t.Fatal(err)
	}
	a := peec.Bar{Axis: peec.AxisX, O: [3]float64{0, 0, 0}, L: l, W: w1, T: units.Um(2)}
	b := peec.Bar{Axis: peec.AxisX, O: [3]float64{0, w1 + sp, 0}, L: l, W: w2, T: units.Um(2)}
	want := peec.HoerLoveMutual(a, b)
	if rel := math.Abs(got-want) / want; !(rel <= 0.02) {
		t.Errorf("mutual lookup: %g vs direct %g (rel %g)", got, want, rel)
	}
}

func TestBuildMicrostripLoopTables(t *testing.T) {
	set, err := Build(microstripConfig(), smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	// Loop L over a plane must be well below the free partial L.
	free, err := Build(freeConfig(), smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	w, l := units.Um(4), units.Um(2000)
	ms, err := set.SelfL(w, l)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := free.SelfL(w, l)
	if err != nil {
		t.Fatal(err)
	}
	if ms <= 0 || ms >= fr {
		t.Errorf("microstrip loop L %g must be in (0, free Lp %g)", ms, fr)
	}
	// Off-grid microstrip probe vs direct loop solve.
	got, err := set.SelfL(units.Um(2.7), units.Um(1500))
	if err != nil {
		t.Fatal(err)
	}
	cfg := microstripConfig().withDefaults()
	blk := oneTraceBlock(cfg, units.Um(2.7), units.Um(1500))
	sol, err := loop.SolveBlock(blk, 0, loopOpts(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-sol.L) / sol.L; !(rel <= 0.03) {
		t.Errorf("microstrip self lookup %g vs direct %g (rel %g)", got, sol.L, rel)
	}
}

func TestMutualSymmetryInWidths(t *testing.T) {
	set, err := Build(freeConfig(), smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	a, err := set.MutualL(units.Um(2), units.Um(8), units.Um(1.5), units.Um(1000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := set.MutualL(units.Um(8), units.Um(2), units.Um(1.5), units.Um(1000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9*math.Abs(a) {
		t.Errorf("mutual not symmetric in widths: %g vs %g", a, b)
	}
}

func TestTableMonotoneTrends(t *testing.T) {
	set, err := Build(freeConfig(), smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	// Longer ⇒ more L.
	l1, _ := set.SelfL(units.Um(4), units.Um(500))
	l2, _ := set.SelfL(units.Um(4), units.Um(2000))
	if l2 <= l1 {
		t.Errorf("self L not increasing with length: %g then %g", l1, l2)
	}
	// Wider ⇒ less L.
	w1, _ := set.SelfL(units.Um(2), units.Um(1000))
	w2, _ := set.SelfL(units.Um(10), units.Um(1000))
	if w2 >= w1 {
		t.Errorf("self L not decreasing with width: %g then %g", w1, w2)
	}
	// Farther ⇒ less mutual.
	m1, _ := set.MutualL(units.Um(4), units.Um(4), units.Um(1), units.Um(1000))
	m2, _ := set.MutualL(units.Um(4), units.Um(4), units.Um(5), units.Um(1000))
	if m2 >= m1 {
		t.Errorf("mutual not decaying with spacing: %g then %g", m1, m2)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	set, err := Build(freeConfig(), smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config.Name != set.Config.Name {
		t.Errorf("config name %q != %q", back.Config.Name, set.Config.Name)
	}
	// Identical lookups.
	for _, p := range []struct{ w, l float64 }{
		{units.Um(2.2), units.Um(800)},
		{units.Um(9), units.Um(5000)},
	} {
		a, err1 := set.SelfL(p.w, p.l)
		b, err2 := back.SelfL(p.w, p.l)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Errorf("lookup drift after round trip: %g vs %g", a, b)
		}
	}
	m1, _ := set.MutualL(units.Um(3), units.Um(3), units.Um(2), units.Um(1000))
	m2, _ := back.MutualL(units.Um(3), units.Um(3), units.Um(2), units.Um(1000))
	if m1 != m2 {
		t.Errorf("mutual drift after round trip: %g vs %g", m1, m2)
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	set, err := Build(freeConfig(), Axes{
		Widths:   LogAxis(units.Um(1), units.Um(4), 2),
		Spacings: LogAxis(units.Um(1), units.Um(2), 2),
		Lengths:  LogAxis(units.Um(100), units.Um(1000), 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/set.json"
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config.Thickness != set.Config.Thickness {
		t.Error("config drift after file round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("Load accepted garbage")
	}
	if _, err := Load(bytes.NewBufferString(`{"version": 99}`)); err == nil {
		t.Error("Load accepted unknown version")
	}
	if _, err := LoadFile("/nonexistent/x.json"); err == nil {
		t.Error("LoadFile accepted missing file")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := freeConfig()
	bad.Thickness = 0
	if _, err := Build(bad, smallAxes()); err == nil {
		t.Error("Build accepted zero thickness")
	}
	bad = freeConfig()
	bad.Frequency = 0
	if _, err := Build(bad, smallAxes()); err == nil {
		t.Error("Build accepted zero frequency")
	}
	bad = microstripConfig()
	bad.PlaneGap = 0
	if _, err := Build(bad, smallAxes()); err == nil {
		t.Error("Build accepted microstrip without plane gap")
	}
}

func TestAxesValidation(t *testing.T) {
	ax := smallAxes()
	ax.Widths = []float64{units.Um(1)}
	if err := ax.Validate(); err == nil {
		t.Error("accepted single-point width axis")
	}
	ax = smallAxes()
	ax.Lengths[1] = ax.Lengths[0]
	if err := ax.Validate(); err == nil {
		t.Error("accepted non-increasing lengths")
	}
	ax = smallAxes()
	ax.Spacings[0] = -1
	if err := ax.Validate(); err == nil {
		t.Error("accepted negative spacing")
	}
}

func TestLookupArgumentValidation(t *testing.T) {
	set, err := Build(freeConfig(), Axes{
		Widths:   LogAxis(units.Um(1), units.Um(4), 2),
		Spacings: LogAxis(units.Um(1), units.Um(2), 2),
		Lengths:  LogAxis(units.Um(100), units.Um(1000), 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.SelfL(0, units.Um(100)); err == nil {
		t.Error("SelfL accepted zero width")
	}
	if _, err := set.MutualL(units.Um(1), units.Um(1), 0, units.Um(100)); err == nil {
		t.Error("MutualL accepted zero spacing")
	}
}

// Parallel builds must be bit-for-bit identical to serial builds:
// every entry is an independent solve written by index, so the worker
// count must not leak into the values.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	serial := freeConfig()
	serial.Workers = 1
	a, err := Build(serial, smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	parallel := freeConfig()
	parallel.Workers = 8
	b, err := Build(parallel, smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Self.Vals {
		if b.Self.Vals[k] != v {
			t.Fatalf("self[%d]: serial %g != parallel %g", k, v, b.Self.Vals[k])
		}
	}
	for k, v := range a.Mutual.Vals {
		if b.Mutual.Vals[k] != v {
			t.Fatalf("mutual[%d]: serial %g != parallel %g", k, v, b.Mutual.Vals[k])
		}
	}
}

// The mutual_entries counter must reflect entries actually solved —
// the upper (w1 <= w2) triangle — not the mirrored full table.
func TestMutualEntriesCountsSolvesOnly(t *testing.T) {
	ents0 := tableMutEnts.Value()
	solves0 := tableSolves.Value()
	axes := smallAxes()
	if _, err := Build(freeConfig(), axes); err != nil {
		t.Fatal(err)
	}
	nw, ns, nl := len(axes.Widths), len(axes.Spacings), len(axes.Lengths)
	upper := nw * (nw + 1) / 2 * ns * nl
	if got := tableMutEnts.Value() - ents0; got != int64(upper) {
		t.Errorf("mutual_entries += %d, want %d (upper triangle only)", got, upper)
	}
	wantSolves := int64(upper + nw*nl)
	if got := tableSolves.Value() - solves0; got != wantSolves {
		t.Errorf("solver_calls += %d, want %d", got, wantSolves)
	}
}

// A shared Set must serve concurrent lookups race-free (run under
// -race) and with values identical to a serial pass — the regression
// test for the lazily mutated spline cache.
func TestConcurrentLookups(t *testing.T) {
	set, err := Build(freeConfig(), smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		self        bool
		w, w2, s, l float64
	}
	probes := make([]probe, 48)
	want := make([]float64, len(probes))
	for i := range probes {
		f := float64(i)
		if i%2 == 0 {
			probes[i] = probe{self: true, w: units.Um(1 + f/8), l: units.Um(150 + 100*f)}
			want[i], err = set.SelfL(probes[i].w, probes[i].l)
		} else {
			probes[i] = probe{w: units.Um(1 + f/10), w2: units.Um(11 - f/10), s: units.Um(1 + f/16), l: units.Um(200 + 90*f)}
			want[i], err = set.MutualL(probes[i].w, probes[i].w2, probes[i].s, probes[i].l)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for rep := 0; rep < 150; rep++ {
				i := (seed*31 + rep) % len(probes)
				p := probes[i]
				var got float64
				var err error
				if p.self {
					got, err = set.SelfL(p.w, p.l)
				} else {
					got, err = set.MutualL(p.w, p.w2, p.s, p.l)
				}
				if err != nil {
					errs <- err
					return
				}
				if got != want[i] {
					errs <- fmt.Errorf("concurrent lookup drift at probe %d: %g vs %g", i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 137
		var hits [n]atomic.Int32
		if err := ParallelFor(n, workers, func(k int) error {
			hits[k].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for k := range hits {
			if got := hits[k].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, k, got)
			}
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ParallelFor(1000, 4, func(k int) error {
		ran.Add(1)
		if k == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The failure must stop the sweep well short of completion.
	if got := ran.Load(); got == 1000 {
		t.Error("error did not cancel remaining work")
	}
}

// Denser axes must monotonically shrink the worst off-grid error, and
// the default-ish density must sit below 1 %.
func TestGridDensityAblation(t *testing.T) {
	cfg := freeConfig()
	probeW := []float64{units.Um(1.6), units.Um(3.7), units.Um(8.9)}
	probeL := []float64{units.Um(260), units.Um(1900), units.Um(5100)}
	worst := func(nw, nl int) float64 {
		axes := Axes{
			Widths:   LogAxis(units.Um(1), units.Um(12), nw),
			Spacings: LogAxis(units.Um(0.8), units.Um(6), 3),
			Lengths:  LogAxis(units.Um(100), units.Um(6000), nl),
		}
		set, err := Build(cfg, axes)
		if err != nil {
			t.Fatal(err)
		}
		var w float64
		for _, pw := range probeW {
			for _, pl := range probeL {
				got, err := set.SelfL(pw, pl)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := selfEntry(cfg.withDefaults(), pw, pl)
				if err != nil {
					t.Fatal(err)
				}
				if rel := math.Abs(got-ref) / ref; rel > w {
					w = rel
				}
			}
		}
		return w
	}
	coarse := worst(3, 4)
	medium := worst(4, 6)
	fine := worst(6, 9)
	if !(fine <= medium && medium <= coarse) {
		t.Errorf("interpolation error not shrinking with density: %g, %g, %g", coarse, medium, fine)
	}
	if medium > 0.01 {
		t.Errorf("medium-density worst error %g, want < 1%%", medium)
	}
}

func TestLookupClampCounting(t *testing.T) {
	set, err := Build(freeConfig(), smallAxes())
	if err != nil {
		t.Fatal(err)
	}
	ax := smallAxes()
	hits0 := lookupHits.Value()
	clamped0 := lookupClamped.Value()

	// In-range lookups count as hits only.
	if _, err := set.SelfL(units.Um(2), units.Um(500)); err != nil {
		t.Fatal(err)
	}
	if _, err := set.MutualL(units.Um(2), units.Um(2), units.Um(1), units.Um(500)); err != nil {
		t.Fatal(err)
	}
	if got := lookupHits.Value() - hits0; got != 2 {
		t.Errorf("in-range lookups: hits += %d, want 2", got)
	}
	if got := lookupClamped.Value() - clamped0; got != 0 {
		t.Errorf("in-range lookups: clamped += %d, want 0", got)
	}

	// A width beyond the axis and a spacing beyond the axis both count
	// as clamped (the spline extrapolates linearly there).
	hits0, clamped0 = lookupHits.Value(), lookupClamped.Value()
	if _, err := set.SelfL(2*ax.Widths[len(ax.Widths)-1], units.Um(500)); err != nil {
		t.Fatal(err)
	}
	if _, err := set.MutualL(units.Um(2), units.Um(2), 3*ax.Spacings[len(ax.Spacings)-1], units.Um(500)); err != nil {
		t.Fatal(err)
	}
	if got := lookupClamped.Value() - clamped0; got != 2 {
		t.Errorf("out-of-range lookups: clamped += %d, want 2", got)
	}
	if got := lookupHits.Value() - hits0; got != 0 {
		t.Errorf("out-of-range lookups: hits += %d, want 0", got)
	}
	if ClampedLookups() != lookupClamped.Value() {
		t.Errorf("ClampedLookups() = %d, counter = %d", ClampedLookups(), lookupClamped.Value())
	}
}
