//go:build !unix

package table

import (
	"errors"
	"os"
)

// mapFile is unavailable off unix; loadFileV3 falls back to an aligned
// plain read, which is still parse-free and solve-free.
func mapFile(*os.File) ([]byte, func() error, error) {
	return nil, nil, errors.New("mmap unsupported on this platform")
}
