package table

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"clockrlc/internal/check"
	"clockrlc/internal/spline"
	"clockrlc/internal/units"
)

// syntheticSet assembles a physically plausible set from closed-form
// values (Rosa-style self inductance, coupling fixed well below 1) so
// audit tests need no field solves.
func syntheticSet(t testing.TB) *Set {
	t.Helper()
	return syntheticSetAxes(t, Axes{
		Widths:   []float64{units.Um(1), units.Um(2), units.Um(4)},
		Spacings: []float64{units.Um(1), units.Um(2)},
		Lengths:  []float64{units.Um(100), units.Um(400), units.Um(1600)},
	})
}

func syntheticSetAxes(t testing.TB, axes Axes) *Set {
	t.Helper()
	nw, ns, nl := len(axes.Widths), len(axes.Spacings), len(axes.Lengths)
	selfVals := make([]float64, nw*nl)
	for iw, w := range axes.Widths {
		for il, l := range axes.Lengths {
			selfVals[iw*nl+il] = 2e-7 * l * (math.Log(2*l/w) + 0.5)
		}
	}
	mutVals := make([]float64, nw*nw*ns*nl)
	for i := 0; i < nw; i++ {
		for j := 0; j < nw; j++ {
			for si := 0; si < ns; si++ {
				for li := 0; li < nl; li++ {
					l1, l2 := selfVals[i*nl+li], selfVals[j*nl+li]
					k := 0.3 / float64(si+1)
					mutVals[((i*nw+j)*ns+si)*nl+li] = k * math.Sqrt(l1*l2)
				}
			}
		}
	}
	s := &Set{Config: Config{Name: "m6/synthetic"}, Axes: axes}
	var err error
	if s.Self, err = spline.NewGrid([][]float64{axes.Widths, axes.Lengths}, selfVals); err != nil {
		t.Fatal(err)
	}
	if s.Mutual, err = spline.NewGrid(
		[][]float64{axes.Widths, axes.Widths, axes.Spacings, axes.Lengths}, mutVals); err != nil {
		t.Fatal(err)
	}
	return s
}

// rebuildSelf re-derives the self spline after a test mutated Vals, so
// the spike detector sees an interpolant consistent with the data.
func rebuildSelf(t *testing.T, s *Set) {
	t.Helper()
	vals := s.Self.Vals
	var err error
	if s.Self, err = spline.NewGrid([][]float64{s.Axes.Widths, s.Axes.Lengths}, vals); err != nil {
		t.Fatal(err)
	}
}

func auditInvariants(vs []check.Violation) []string {
	var out []string
	for _, v := range vs {
		out = append(out, v.Invariant)
	}
	return out
}

func hasViolation(vs []check.Violation, invariantFrag, cellFrag string) bool {
	for _, v := range vs {
		if strings.Contains(v.Invariant, invariantFrag) && strings.Contains(v.Cell, cellFrag) {
			return true
		}
	}
	return false
}

func TestAuditCleanSet(t *testing.T) {
	s := syntheticSet(t)
	if vs := s.Audit(); len(vs) != 0 {
		t.Fatalf("clean set audit reported %d violations: %v", len(vs), auditInvariants(vs))
	}
}

func TestAuditCleanBuiltSet(t *testing.T) {
	set, err := Build(freeConfig(), Axes{
		Widths:   LogAxis(units.Um(1), units.Um(8), 3),
		Spacings: LogAxis(units.Um(1), units.Um(4), 3),
		Lengths:  LogAxis(units.Um(200), units.Um(3000), 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs := set.Audit(); len(vs) != 0 {
		t.Fatalf("real built set fails its own audit: %v", auditInvariants(vs))
	}
}

func TestAuditFlagsNonPositiveSelf(t *testing.T) {
	s := syntheticSet(t)
	nl := len(s.Axes.Lengths)
	s.Self.Vals[1*nl+0] = -1e-10
	rebuildSelf(t, s)
	vs := s.Audit()
	if !hasViolation(vs, "self inductance positive", "self[1,0]") {
		t.Errorf("negative self not flagged at its cell; got %v", auditInvariants(vs))
	}
}

func TestAuditFlagsNaNSelf(t *testing.T) {
	s := syntheticSet(t)
	nl := len(s.Axes.Lengths)
	s.Self.Vals[0*nl+2] = math.NaN()
	rebuildSelf(t, s)
	if vs := s.Audit(); !hasViolation(vs, "self inductance finite", "self[0,2]") {
		t.Errorf("NaN self not flagged; got %v", auditInvariants(vs))
	}
}

func TestAuditFlagsNonMonotoneSelf(t *testing.T) {
	s := syntheticSet(t)
	nl := len(s.Axes.Lengths)
	// Swap the last two lengths of width row 2: still positive and
	// finite, but decreasing in length.
	s.Self.Vals[2*nl+1], s.Self.Vals[2*nl+2] = s.Self.Vals[2*nl+2], s.Self.Vals[2*nl+1]
	rebuildSelf(t, s)
	if vs := s.Audit(); !hasViolation(vs, "monotone non-decreasing", "self[2,2]") {
		t.Errorf("non-monotone self not flagged; got %v", auditInvariants(vs))
	}
}

func TestAuditFlagsAsymmetricMutual(t *testing.T) {
	s := syntheticSet(t)
	nw, ns, nl := len(s.Axes.Widths), len(s.Axes.Spacings), len(s.Axes.Lengths)
	idx := ((0*nw+1)*ns+1)*nl + 1 // mutual[0,1,1,1], mirror left intact
	s.Mutual.Vals[idx] *= 1.25
	if vs := s.Audit(); !hasViolation(vs, "symmetric", "mutual[0,1,1,1]") {
		t.Errorf("asymmetric mutual not flagged; got %v", auditInvariants(vs))
	}
}

func TestAuditFlagsCouplingAboveOne(t *testing.T) {
	s := syntheticSet(t)
	nw, ns, nl := len(s.Axes.Widths), len(s.Axes.Spacings), len(s.Axes.Lengths)
	// Diagonal cell (w1 == w2): trivially symmetric, so the only new
	// violation is the coupling bound.
	i := 1
	idx := ((i*nw+i)*ns+0)*nl + 2
	s.Mutual.Vals[idx] = 1.5 * s.Self.Vals[i*nl+2]
	vs := s.Audit()
	if !hasViolation(vs, "mutual coupling k < 1", "mutual[1,1,0,2]") {
		t.Fatalf("k >= 1 not flagged; got %v", auditInvariants(vs))
	}
	for _, v := range vs {
		if strings.Contains(v.Invariant, "k < 1") {
			if !strings.Contains(v.Subject, "m6/synthetic") {
				t.Errorf("violation subject %q does not name the table", v.Subject)
			}
			if !strings.Contains(v.Detail, "= 1.5") {
				t.Errorf("violation detail %q does not carry the coupling value", v.Detail)
			}
		}
	}
}

func TestAuditFlagsSplineSpike(t *testing.T) {
	// A dense length axis so a single-knot excursion has neighbouring
	// intervals whose envelopes are narrow: the cubic reacts to the
	// spike by swinging outside those envelopes between the knots. The
	// point of this test is that the *interpolant* between knots is
	// checked too, not just the knot values.
	s := syntheticSetAxes(t, Axes{
		Widths:   []float64{units.Um(1), units.Um(2)},
		Spacings: []float64{units.Um(1), units.Um(2)},
		Lengths:  LogAxis(units.Um(100), units.Um(3200), 6),
	})
	nl := len(s.Axes.Lengths)
	s.Self.Vals[0*nl+3] *= 50
	rebuildSelf(t, s)
	vs := s.Audit()
	spike := false
	for _, v := range vs {
		if strings.Contains(v.Invariant, "spline") {
			spike = true
		}
	}
	if !spike {
		t.Errorf("mid-knot spline excursion not flagged; got %v", auditInvariants(vs))
	}
}

// Satellite regression: a cached table corrupted to k > 1 — with a
// perfectly valid checksum, because it is re-saved after the flip — is
// rejected by Strict at load with an error naming the file, the cell
// and the invariant, while Warn counts and proceeds.
func TestCorruptCachedTableStrictVsWarn(t *testing.T) {
	defer check.SetPolicy(check.Off)
	check.SetPolicy(check.Off)

	s := syntheticSet(t)
	nw, ns, nl := len(s.Axes.Widths), len(s.Axes.Spacings), len(s.Axes.Lengths)
	i := 2
	s.Mutual.Vals[((i*nw+i)*ns+1)*nl+0] = 2 * s.Self.Vals[i*nl+0]
	path := filepath.Join(t.TempDir(), "m6-synthetic.json")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// The checksum is valid — a policy-off load accepts the file.
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("policy-off load rejected the file: %v", err)
	}

	check.SetPolicy(check.Strict)
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("strict load accepted a table with k >= 1")
	}
	if !errors.Is(err, check.ErrViolation) {
		t.Errorf("strict rejection %v does not unwrap to ErrViolation", err)
	}
	for _, frag := range []string{path, "mutual coupling k < 1", "mutual[2,2,1,0]", "m6/synthetic"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("strict rejection %q missing %q", err.Error(), frag)
		}
	}

	check.SetPolicy(check.Warn)
	before := check.Violations()
	stBefore := check.StageViolations(check.StageTableAudit)
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("warn load failed: %v", err)
	}
	if check.Violations() <= before {
		t.Error("warn load did not advance check.violations")
	}
	if check.StageViolations(check.StageTableAudit) <= stBefore {
		t.Error("warn load did not advance the table_audit stage counter")
	}
}

// Build-path hook: a strict engine audits freshly built sets, and a
// clean build passes.
func TestBuildAuditHookStrictClean(t *testing.T) {
	defer check.SetPolicy(check.Off)
	check.SetPolicy(check.Strict)
	set, err := Build(freeConfig(), Axes{
		Widths:   LogAxis(units.Um(1), units.Um(6), 3),
		Spacings: LogAxis(units.Um(1), units.Um(3), 2),
		Lengths:  LogAxis(units.Um(200), units.Um(2000), 3),
	})
	if err != nil {
		t.Fatalf("strict policy rejected a clean build: %v", err)
	}
	if set == nil {
		t.Fatal("nil set")
	}
}
