package table

import (
	"errors"
	"math"
	"strings"
	"testing"

	"clockrlc/internal/check"
	"clockrlc/internal/units"
)

func TestParseLookupPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want LookupPolicy
	}{
		{"extrapolate", LookupExtrapolate}, {"clamp", LookupClamp},
		{"error", LookupError}, {"Clamp", LookupClamp}, {"ERROR", LookupError},
	} {
		got, err := ParseLookupPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLookupPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseLookupPolicy("truncate"); err == nil {
		t.Error("ParseLookupPolicy accepted an unknown policy")
	}
	for p, want := range map[LookupPolicy]string{
		LookupExtrapolate: "extrapolate", LookupClamp: "clamp", LookupError: "error",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestLookupPolicyExtrapolateDefault(t *testing.T) {
	s := syntheticSet(t)
	oobW := 2 * s.Axes.Widths[len(s.Axes.Widths)-1]
	l := s.Axes.Lengths[1]
	clampedBefore := lookupClamped.Value()
	extrapBefore := lookupOOBExtrapolated.Value()
	v, err := s.SelfL(oobW, l)
	if err != nil {
		t.Fatalf("default-policy OOB lookup failed: %v", err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("extrapolated value %g not finite", v)
	}
	if lookupClamped.Value() != clampedBefore+1 {
		t.Error("OOB lookup did not advance table.lookup_clamped (backward-compat counter)")
	}
	if lookupOOBExtrapolated.Value() != extrapBefore+1 {
		t.Error("OOB lookup did not advance table.lookup_oob_extrapolated")
	}
}

func TestLookupPolicyClamp(t *testing.T) {
	s := syntheticSet(t)
	s.Lookup = LookupClamp
	wMax := s.Axes.Widths[len(s.Axes.Widths)-1]
	l := s.Axes.Lengths[1]
	clampsBefore := lookupOOBClamps.Value()
	got, err := s.SelfL(3*wMax, l)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.SelfL(wMax, l) // in range: the clamped coordinate
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("clamped lookup %g != endpoint lookup %g", got, want)
	}
	if lookupOOBClamps.Value() != clampsBefore+1 {
		t.Error("clamped lookup not counted in table.lookup_oob_clamps")
	}

	// Mutual path clamps every coordinate.
	sMax := s.Axes.Spacings[len(s.Axes.Spacings)-1]
	gotM, err := s.MutualL(3*wMax, s.Axes.Widths[0], 4*sMax, l)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := s.MutualL(wMax, s.Axes.Widths[0], sMax, l)
	if err != nil {
		t.Fatal(err)
	}
	if gotM != wantM {
		t.Errorf("clamped mutual %g != endpoint mutual %g", gotM, wantM)
	}
}

func TestLookupPolicyError(t *testing.T) {
	s := syntheticSet(t)
	s.Lookup = LookupError
	errsBefore := lookupOOBErrors.Value()
	_, err := s.SelfL(units.Um(100), s.Axes.Lengths[0])
	if err == nil {
		t.Fatal("error-policy OOB lookup returned nil error")
	}
	if !errors.Is(err, ErrOutOfRange) {
		t.Errorf("%v does not unwrap to ErrOutOfRange", err)
	}
	for _, frag := range []string{"m6/synthetic", "SelfL", "w ∈"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err.Error(), frag)
		}
	}
	if lookupOOBErrors.Value() != errsBefore+1 {
		t.Error("refused lookup not counted in table.lookup_oob_errors")
	}
	if _, err := s.MutualL(s.Axes.Widths[0], s.Axes.Widths[0], units.Um(50), s.Axes.Lengths[0]); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("mutual OOB under error policy: %v", err)
	}
	// In-range lookups are unaffected by the policy.
	if _, err := s.SelfL(s.Axes.Widths[1], s.Axes.Lengths[1]); err != nil {
		t.Errorf("in-range lookup failed under error policy: %v", err)
	}
}

// Armed lookups check the value itself: a table whose spline yields a
// non-positive self inductance is caught at lookup time.
func TestArmedLookupCatchesNonPositiveSelf(t *testing.T) {
	defer check.SetPolicy(check.Off)
	s := syntheticSet(t)
	nl := len(s.Axes.Lengths)
	for il := 0; il < nl; il++ {
		s.Self.Vals[1*nl+il] = -1e-12
	}
	rebuildSelf(t, s)
	w, l := s.Axes.Widths[1], s.Axes.Lengths[1]

	check.SetPolicy(check.Off)
	if _, err := s.SelfL(w, l); err != nil {
		t.Fatalf("disarmed lookup errored: %v", err)
	}

	check.SetPolicy(check.Warn)
	before := check.StageViolations(check.StageLookup)
	if _, err := s.SelfL(w, l); err != nil {
		t.Fatalf("warn lookup errored: %v", err)
	}
	if check.StageViolations(check.StageLookup) <= before {
		t.Error("warn lookup did not count the violation")
	}

	check.SetPolicy(check.Strict)
	_, err := s.SelfL(w, l)
	if err == nil {
		t.Fatal("strict lookup accepted a non-positive self inductance")
	}
	if !errors.Is(err, check.ErrViolation) {
		t.Errorf("%v does not unwrap to check.ErrViolation", err)
	}
}
