package table

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Library manages the table sets of a technology: one set per (layer,
// shielding configuration), addressable by the set's Config.Name. It
// is the on-disk artifact cmd/tablegen produces one file of; a design
// flow builds the library once and every extraction after that is
// lookups.
type Library struct {
	sets map[string]*Set
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{sets: map[string]*Set{}}
}

// Add registers a set under its Config.Name, rejecting duplicates and
// anonymous sets.
func (l *Library) Add(s *Set) error {
	if s == nil {
		return fmt.Errorf("table: nil set")
	}
	if s.Config.Name == "" {
		return fmt.Errorf("table: set has no name")
	}
	if _, dup := l.sets[s.Config.Name]; dup {
		return fmt.Errorf("table: duplicate set %q", s.Config.Name)
	}
	l.sets[s.Config.Name] = s
	return nil
}

// Get returns a set by name.
func (l *Library) Get(name string) (*Set, error) {
	s, ok := l.sets[name]
	if !ok {
		return nil, fmt.Errorf("table: library has no set %q (have %v)", name, l.Names())
	}
	return s, nil
}

// Names lists the registered sets, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.sets))
	for n := range l.sets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the set count.
func (l *Library) Len() int { return len(l.sets) }

// Close releases every set's file mapping (a no-op for heap-backed
// sets). Every set is closed even if some fail; the first error is
// returned, naming its set. After Close no set's values may be
// touched. A long-lived process that opens libraries repeatedly must
// Close them, or each v3 open leaks a mapping for process lifetime.
func (l *Library) Close() error {
	var first error
	for _, name := range l.Names() {
		if err := l.sets[name].Close(); err != nil && first == nil {
			first = fmt.Errorf("table: close %s: %w", name, err)
		}
	}
	return first
}

// fileName maps a set name ("M6/microstrip") to a filesystem-safe
// file name. The mapping is injective: bytes outside [A-Za-z0-9._-]
// — '%' included — are %XX-escaped, so distinct names ("a/b" vs
// "a\\b" vs "a_b") can never collapse onto the same file and SaveDir
// can never silently overwrite one set with another.
func fileName(name string) string {
	return fileNameExt(name, ".json")
}

// fileNameExt is fileName with a caller-chosen extension (".json" for
// the legacy codec, ".rlct" for v3 binaries).
func fileNameExt(name, ext string) string {
	var b strings.Builder
	b.Grow(len(name) + len(ext))
	for i := 0; i < len(name); i++ {
		switch ch := name[i]; {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z',
			ch >= '0' && ch <= '9', ch == '.', ch == '-', ch == '_':
			b.WriteByte(ch)
		default:
			fmt.Fprintf(&b, "%%%02X", ch)
		}
	}
	b.WriteString(ext)
	return b.String()
}

// SaveDir writes every set to dir (created if needed), one JSON file
// per set, atomically (see SaveFile). File names are checked for
// collisions case-insensitively first: the escape above is injective,
// but a case-insensitive filesystem (macOS, Windows) would still
// merge names differing only by letter case, so that is rejected up
// front instead of overwriting silently.
func (l *Library) SaveDir(dir string) error {
	return l.saveDir(dir, ".json", (*Set).SaveFile)
}

// SaveDirV3 writes every set to dir in the v3 binary format, one
// .rlct file per set, with the same atomicity and collision checks as
// SaveDir.
func (l *Library) SaveDirV3(dir string) error {
	return l.saveDir(dir, ".rlct", (*Set).SaveFileV3)
}

func (l *Library) saveDir(dir, ext string, save func(*Set, string) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("table: %w", err)
	}
	used := map[string]string{} // folded file name → set name
	for _, name := range l.Names() {
		fn := fileNameExt(name, ext)
		folded := strings.ToLower(fn)
		if prev, dup := used[folded]; dup {
			return fmt.Errorf("table: set names %q and %q both map to file %q on a case-insensitive filesystem; rename one set", prev, name, fn)
		}
		used[folded] = name
		if err := save(l.sets[name], filepath.Join(dir, fn)); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads every *.json (legacy codec) and *.rlct (v3 binary)
// table set in dir into a new library. LoadFile already frames its
// errors with "table: <path>: …", so they pass through unwrapped here
// — re-framing them would stutter the prefix.
func LoadDir(dir string) (*Library, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	l := NewLibrary()
	for _, e := range entries {
		if e.IsDir() || (!strings.HasSuffix(e.Name(), ".json") && !strings.HasSuffix(e.Name(), ".rlct")) {
			continue
		}
		s, err := LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		if err := l.Add(s); err != nil {
			return nil, err
		}
	}
	if l.Len() == 0 {
		return nil, fmt.Errorf("table: no table sets found in %s", dir)
	}
	return l, nil
}
