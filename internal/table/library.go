package table

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Library manages the table sets of a technology: one set per (layer,
// shielding configuration), addressable by the set's Config.Name. It
// is the on-disk artifact cmd/tablegen produces one file of; a design
// flow builds the library once and every extraction after that is
// lookups.
type Library struct {
	sets map[string]*Set
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{sets: map[string]*Set{}}
}

// Add registers a set under its Config.Name, rejecting duplicates and
// anonymous sets.
func (l *Library) Add(s *Set) error {
	if s == nil {
		return fmt.Errorf("table: nil set")
	}
	if s.Config.Name == "" {
		return fmt.Errorf("table: set has no name")
	}
	if _, dup := l.sets[s.Config.Name]; dup {
		return fmt.Errorf("table: duplicate set %q", s.Config.Name)
	}
	l.sets[s.Config.Name] = s
	return nil
}

// Get returns a set by name.
func (l *Library) Get(name string) (*Set, error) {
	s, ok := l.sets[name]
	if !ok {
		return nil, fmt.Errorf("table: library has no set %q (have %v)", name, l.Names())
	}
	return s, nil
}

// Names lists the registered sets, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.sets))
	for n := range l.sets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the set count.
func (l *Library) Len() int { return len(l.sets) }

// fileName maps a set name ("M6/microstrip") to a safe file name.
func fileName(name string) string {
	r := strings.NewReplacer("/", "__", " ", "_", "\\", "__")
	return r.Replace(name) + ".json"
}

// SaveDir writes every set to dir (created if needed), one JSON file
// per set.
func (l *Library) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("table: %w", err)
	}
	for _, name := range l.Names() {
		if err := l.sets[name].SaveFile(filepath.Join(dir, fileName(name))); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads every *.json table set in dir into a new library.
func LoadDir(dir string) (*Library, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	l := NewLibrary()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		s, err := LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("table: %s: %w", e.Name(), err)
		}
		if err := l.Add(s); err != nil {
			return nil, err
		}
	}
	if l.Len() == 0 {
		return nil, fmt.Errorf("table: no table sets found in %s", dir)
	}
	return l, nil
}
