package table

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"clockrlc/internal/spline"
)

// fileFormat is the on-disk JSON schema of a table set. Only the
// axes and raw values are stored; splines are rebuilt at load time.
type fileFormat struct {
	Version    int       `json:"version"`
	Config     Config    `json:"config"`
	Axes       Axes      `json:"axes"`
	SelfVals   []float64 `json:"self"`
	MutualVals []float64 `json:"mutual"`
}

const formatVersion = 1

// Save writes the set as JSON.
func (s *Set) Save(w io.Writer) error {
	ff := fileFormat{
		Version:    formatVersion,
		Config:     s.Config,
		Axes:       s.Axes,
		SelfVals:   s.Self.Vals,
		MutualVals: s.Mutual.Vals,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ff)
}

// SaveFile writes the set to a file path.
func (s *Set) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("table: %w", err)
	}
	defer f.Close()
	if err := s.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a set previously written by Save, revalidating the axes
// and rebuilding the interpolants.
func Load(r io.Reader) (*Set, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("table: decode: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, fmt.Errorf("table: unsupported format version %d (want %d)", ff.Version, formatVersion)
	}
	if err := ff.Axes.Validate(); err != nil {
		return nil, err
	}
	selfGrid, err := spline.NewGrid([][]float64{ff.Axes.Widths, ff.Axes.Lengths}, ff.SelfVals)
	if err != nil {
		return nil, fmt.Errorf("table: self grid: %w", err)
	}
	mutGrid, err := spline.NewGrid(
		[][]float64{ff.Axes.Widths, ff.Axes.Widths, ff.Axes.Spacings, ff.Axes.Lengths}, ff.MutualVals)
	if err != nil {
		return nil, fmt.Errorf("table: mutual grid: %w", err)
	}
	return &Set{Config: ff.Config, Axes: ff.Axes, Self: selfGrid, Mutual: mutGrid}, nil
}

// LoadFile reads a set from a file path.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	defer f.Close()
	return Load(f)
}
