package table

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"clockrlc/internal/check"
	"clockrlc/internal/spline"
)

// fileFormat is the on-disk JSON schema of a table set. Only the
// axes and raw values are stored; splines are rebuilt at load time.
//
// Version history:
//
//	v1 — config, axes, raw values; no integrity information.
//	v2 — adds Checksum (hex SHA-256 of the record serialised with the
//	     checksum field empty) so torn or bit-rotted files are caught
//	     at load instead of poisoning a lookup.
//
// Loads accept v1 (the migration path for pre-existing artifacts) and
// v2; saves always write the current version. Versions newer than
// this build are rejected rather than guessed at.
type fileFormat struct {
	Version    int       `json:"version"`
	Config     Config    `json:"config"`
	Axes       Axes      `json:"axes"`
	SelfVals   []float64 `json:"self"`
	MutualVals []float64 `json:"mutual"`
	Checksum   string    `json:"checksum,omitempty"`
}

const (
	formatVersion   = 2
	minReadVersion  = 1
	checksumVersion = 2 // first version carrying a checksum
)

// checksum returns the record's integrity hash: hex SHA-256 over the
// canonical JSON serialisation with the checksum field itself empty.
// Go's JSON encoding of float64 is shortest-round-trip, so a decoded
// record re-serialises to the identical bytes and the check is exact.
func (ff fileFormat) checksum() (string, error) {
	ff.Checksum = ""
	b, err := json.Marshal(ff)
	if err != nil {
		return "", fmt.Errorf("checksum: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Save writes the set as JSON in the current format version,
// including the integrity checksum.
func (s *Set) Save(w io.Writer) error {
	ff := fileFormat{
		Version:    formatVersion,
		Config:     s.Config,
		Axes:       s.Axes,
		SelfVals:   s.Self.Vals,
		MutualVals: s.Mutual.Vals,
	}
	sum, err := ff.checksum()
	if err != nil {
		return fmt.Errorf("table: %w", err)
	}
	ff.Checksum = sum
	enc := json.NewEncoder(w)
	return enc.Encode(ff)
}

// SaveFile writes the set to a file path atomically: the record is
// written to a temporary file in the same directory, fsynced, and
// renamed over the destination, so a crash mid-save can never leave a
// truncated file under the final name. The directory is fsynced after
// the rename so the new name itself survives a crash.
func (s *Set) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("table: save %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op once renamed
	if err := s.Save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("table: save %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("table: save %s: sync: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("table: save %s: close: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("table: save %s: %w", path, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best effort; the data itself is already durable
		d.Close()
	}
	return nil
}

// load decodes and validates a record, sniffing the v3 binary magic
// to route between the codecs (a JSON document can never begin with
// 'R'); errors carry no "table:" prefix so Load and LoadFile can each
// frame them (LoadFile names the file, per the contract that a bad
// artifact identifies itself).
func load(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(len(v3Magic)); err == nil && bytes.Equal(head, v3Magic[:]) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("read: %w", err)
		}
		// v3Floats copies any block the buffer leaves unaligned, so an
		// arbitrary reader is fine here; the zero-copy fast path is
		// LoadFile's.
		return loadV3(data, nil)
	}
	return loadJSON(br)
}

// loadJSON decodes the legacy v1/v2 JSON record.
func loadJSON(r io.Reader) (*Set, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	switch {
	case ff.Version < minReadVersion:
		return nil, fmt.Errorf("bad format version %d (want %d–%d)", ff.Version, minReadVersion, formatVersion)
	case ff.Version > formatVersion:
		return nil, fmt.Errorf("format version %d is newer than this build reads (max %d); rebuild the tables or upgrade", ff.Version, formatVersion)
	}
	if ff.Version >= checksumVersion {
		if ff.Checksum == "" {
			return nil, errors.New("record is missing its checksum")
		}
		want, err := ff.checksum()
		if err != nil {
			return nil, err
		}
		if want != ff.Checksum {
			return nil, fmt.Errorf("checksum mismatch (file corrupt or truncated): stored %.12s…, computed %.12s…", ff.Checksum, want)
		}
	}
	if err := ff.Axes.Validate(); err != nil {
		return nil, err
	}
	nw, ns, nl := len(ff.Axes.Widths), len(ff.Axes.Spacings), len(ff.Axes.Lengths)
	if want := nw * nl; len(ff.SelfVals) != want {
		return nil, fmt.Errorf("self value count %d does not match the axes product %d (%d widths × %d lengths)",
			len(ff.SelfVals), want, nw, nl)
	}
	if want := nw * nw * ns * nl; len(ff.MutualVals) != want {
		return nil, fmt.Errorf("mutual value count %d does not match the axes product %d (%d² widths × %d spacings × %d lengths)",
			len(ff.MutualVals), want, nw, ns, nl)
	}
	selfGrid, err := spline.NewGrid([][]float64{ff.Axes.Widths, ff.Axes.Lengths}, ff.SelfVals)
	if err != nil {
		return nil, fmt.Errorf("self grid: %w", err)
	}
	mutGrid, err := spline.NewGrid(
		[][]float64{ff.Axes.Widths, ff.Axes.Widths, ff.Axes.Spacings, ff.Axes.Lengths}, ff.MutualVals)
	if err != nil {
		return nil, fmt.Errorf("mutual grid: %w", err)
	}
	return &Set{Config: ff.Config, Axes: ff.Axes, Self: selfGrid, Mutual: mutGrid}, nil
}

// Load reads a set previously written by Save, verifying the
// checksum (v2+) and the value counts against the axes product, and
// rebuilding the interpolants. When the process check engine is
// armed, the loaded set is additionally audited against the physical
// invariants — the checksum proves the bytes are the ones saved, the
// audit proves the values could have come from a correct build.
func Load(r io.Reader) (*Set, error) {
	s, err := load(r)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	if err := s.reportAudit(check.Active()); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadFile reads a set from a file path. v3 files take the zero-copy
// path: the file is mmap'd (plain aligned read where mmap is
// unavailable) and the grids point straight into the image — release
// with Set.Close. Every failure — decode, integrity, or (when the
// check engine is armed) a physical-invariant audit — names the file,
// so a bad artifact in a multi-file library is identifiable.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	defer f.Close()
	var head [8]byte
	n, _ := io.ReadFull(f, head[:])
	var s *Set
	if n == len(head) && head == v3Magic {
		s, err = loadFileV3(f)
	} else {
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			return nil, fmt.Errorf("table: %s: %w", path, serr)
		}
		s, err = loadJSON(f)
	}
	if err != nil {
		return nil, fmt.Errorf("table: %s: %w", path, err)
	}
	if err := s.reportAudit(check.Active()); err != nil {
		s.Close()
		return nil, fmt.Errorf("table: %s: %w", path, err)
	}
	return s, nil
}
