package table

// Content-addressed on-disk table cache. The paper's economy is
// "solve once, look up forever" (Section III): the field-solver sweep
// is the expensive step and every extraction after it is spline
// lookups. The cache makes that durable across processes: a stable
// hash of every value-determining input — (Config, Axes, codec format
// version) — addresses an on-disk store of built sets, so any number
// of concurrent extractions can share one pre-built artifact, and a
// rebuilt binary with an incompatible codec simply misses and
// re-solves rather than loading stale bytes.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/fault"
	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
)

// Cache accounting: hits serve a ready set with zero solver calls,
// misses fall through to Build, corrupt counts entries that existed
// but failed to load or verify (treated as misses and overwritten by
// the next Put). io_errors counts reads and writes that stayed failed
// after the transient-retry budget — the cache degrades to a rebuild
// (read) or an unpersisted set (write) rather than failing the
// extraction.
var (
	cacheHits      = obs.GetCounter("table.cache_hits")
	cacheMisses    = obs.GetCounter("table.cache_misses")
	cacheWrites    = obs.GetCounter("table.cache_writes")
	cacheCorrupt   = obs.GetCounter("table.cache_corrupt")
	cacheIOErrs    = obs.GetCounter("table.cache_io_errors")
	cacheCoalesced = obs.GetCounter("table.cache_coalesced")
)

// cacheRetry re-attempts transient cache I/O (per fault.IsTransient)
// before degrading; corrupt or missing entries are never retried.
var cacheRetry = fault.Policy{
	Attempts: 3,
	Base:     time.Millisecond,
	Max:      50 * time.Millisecond,
	Factor:   4,
	Jitter:   0.5,
}

// cacheKeyRecord pins exactly the fields that participate in the
// cache key. Config.Name is provenance (a label) and Config.Workers
// is an execution detail — builds are bit-for-bit deterministic at
// any worker count — so neither influences the built values and
// neither is hashed. The codec format version is included so a codec
// change retires every old entry at once instead of half-reading it.
// Field order is part of the address: do not reorder without bumping
// the codec version.
type cacheKeyRecord struct {
	FormatVersion  int
	Thickness      float64
	Rho            float64
	Shielding      geom.Shielding
	PlaneGap       float64
	PlaneThickness float64
	Frequency      float64
	PlaneStrips    int
	SubW           int
	SubT           int
	Widths         []float64
	Spacings       []float64
	Lengths        []float64
}

// CacheKey returns the content address of the table set that (cfg,
// axes) would build: the hex SHA-256 of the value-determining fields
// after defaulting. Two configurations that build bit-identical sets
// hash identically (Name and Workers are excluded); any change to a
// physical parameter, an axis point, or the codec version changes the
// key.
func CacheKey(cfg Config, axes Axes) (string, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	if err := axes.Validate(); err != nil {
		return "", err
	}
	rec := cacheKeyRecord{
		// Entries are stored in the v3 binary codec; bumping this
		// retired every v2 JSON entry at once (they re-key, miss, and
		// rebuild) instead of half-reading them.
		FormatVersion:  formatVersionV3,
		Thickness:      cfg.Thickness,
		Rho:            cfg.Rho,
		Shielding:      cfg.Shielding,
		PlaneGap:       cfg.PlaneGap,
		PlaneThickness: cfg.PlaneThickness,
		Frequency:      cfg.Frequency,
		PlaneStrips:    cfg.PlaneStrips,
		SubW:           cfg.SubW,
		SubT:           cfg.SubT,
		Widths:         axes.Widths,
		Spacings:       axes.Spacings,
		Lengths:        axes.Lengths,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return "", fmt.Errorf("table: cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Cache is a content-addressed store of built table sets, one codec
// file per key, under a single directory. It is safe for concurrent
// use by any number of processes: entries are immutable once written,
// writes are atomic (temp file + rename), and racing builders of the
// same key write bit-identical bytes, so whichever rename lands last
// changes nothing.
type Cache struct {
	dir string

	// flights dedups concurrent GetOrBuildCtx misses within this
	// process: the first caller of a key becomes the leader and runs
	// the field-solver sweep; everyone else arriving before the leader
	// finishes waits on the flight and shares the one result. Without
	// it, N concurrent misses run N full sweeps and N write-backs.
	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress build: done is closed when the leader has
// a result, after which set/err are immutable.
type flight struct {
	done chan struct{}
	set  *Set
	err  error
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("table: cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("table: cache: %w", err)
	}
	return &Cache{dir: dir, flights: map[string]*flight{}}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the on-disk location of a key's entry. Entries are v3
// binaries (.rlct) so a hit mmaps instead of parsing; the extension
// change is safe because the FormatVersion bump re-keyed everything
// anyway.
func (c *Cache) Path(key string) string { return filepath.Join(c.dir, key+".rlct") }

// Get looks up the set (cfg, axes) addresses. A missing entry is
// (nil, false, nil); a present entry that fails to load, fails its
// checksum, or no longer hashes to its own address is counted corrupt
// and treated as a miss (the next Put atomically replaces it). On a
// hit the stored set is returned with the caller's Name and Workers
// applied, since those are excluded from the address.
func (c *Cache) Get(cfg Config, axes Axes) (*Set, bool, error) {
	return c.GetCtx(context.Background(), cfg, axes)
}

// GetCtx is Get honouring cancellation: retry backoffs wake on a
// cancelled ctx and the context error is returned rather than being
// misread as a miss. Transient read failures (injected or the
// retryable POSIX errnos) are re-attempted per cacheRetry; if they
// persist the entry is counted in table.cache_io_errors and treated
// as a miss, degrading to a rebuild instead of failing the caller.
func (c *Cache) GetCtx(ctx context.Context, cfg Config, axes Axes) (*Set, bool, error) {
	key, err := CacheKey(cfg, axes)
	if err != nil {
		return nil, false, err
	}
	var s *Set
	err = cacheRetry.Do(ctx, "table.cache.read", func() error {
		if err := fault.Check(fault.CacheRead); err != nil {
			return err
		}
		var lerr error
		s, lerr = LoadFile(c.Path(key))
		return lerr
	})
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return nil, false, err
		case errors.Is(err, fs.ErrNotExist):
			cacheMisses.Inc()
			return nil, false, nil
		case errors.Is(err, check.ErrViolation):
			// The entry is well-formed — its checksum verified — but
			// its values fail the strict-policy physical-invariant
			// audit. That is not corruption, and silently rebuilding
			// would bypass the user's strict policy: fail loudly.
			return nil, false, err
		case fault.IsTransient(err):
			cacheIOErrs.Inc()
			cacheMisses.Inc()
			return nil, false, nil
		default:
			cacheCorrupt.Inc()
			cacheMisses.Inc()
			return nil, false, nil
		}
	}
	// Content-addressed verification: the entry must hash back to the
	// address it was found under, or it was written by a different
	// scheme (or tampered with) and cannot be trusted for this key.
	storedKey, err := CacheKey(s.Config, s.Axes)
	if err != nil || storedKey != key {
		cacheCorrupt.Inc()
		cacheMisses.Inc()
		return nil, false, nil
	}
	cacheHits.Inc()
	return setWithHeader(s, cfg), true, nil
}

// setWithHeader returns s carrying the caller's Name and Workers —
// both excluded from the content address, so a hit must re-apply them
// — without mutating s: once a registry shares one *Set across
// requests, writing s.Config here would be a data race on every hit.
// The copy shares the grids (and, when s came straight off a fresh
// load, inherits its mapping: the original header is discarded, so
// ownership transfers with the copy).
func setWithHeader(s *Set, cfg Config) *Set {
	if s.Config.Name == cfg.Name && s.Config.Workers == cfg.Workers {
		return s
	}
	cp := *s
	cp.Config.Name = cfg.Name
	cp.Config.Workers = cfg.Workers
	return &cp
}

// Put stores a built set under its content address, atomically.
func (c *Cache) Put(s *Set) error {
	return c.PutCtx(context.Background(), s)
}

// PutCtx is Put honouring cancellation; transient write failures are
// re-attempted per cacheRetry before the error is returned.
func (c *Cache) PutCtx(ctx context.Context, s *Set) error {
	if s == nil {
		return errors.New("table: cache: nil set")
	}
	key, err := CacheKey(s.Config, s.Axes)
	if err != nil {
		return err
	}
	err = cacheRetry.Do(ctx, "table.cache.write", func() error {
		if err := fault.Check(fault.CacheWrite); err != nil {
			return err
		}
		return s.SaveFileV3(c.Path(key))
	})
	if err != nil {
		return err
	}
	cacheWrites.Inc()
	return nil
}

// GetOrBuild returns the cached set for (cfg, axes) when present —
// zero field-solver calls, lookups bit-identical to a cold build —
// and otherwise builds it (tracing to o, nil selects the default
// observer) and writes it back for every extraction after this one.
func (c *Cache) GetOrBuild(cfg Config, axes Axes, o *obs.Observer) (*Set, error) {
	return c.GetOrBuildCtx(context.Background(), cfg, axes, o)
}

// GetOrBuildCtx is GetOrBuild honouring cancellation end to end: the
// cache probe, the sweep (which drains its workers within one cell of
// a cancel) and the write-back all stop on ctx. A failed write-back
// of a successfully built set degrades rather than fails — the set is
// correct and usable, only its persistence was lost — counted in
// table.cache_io_errors and flagged on the span; cancellation during
// the write is still propagated.
//
// Concurrent misses of the same content address are single-flighted:
// the first caller runs the sweep, everyone else waits on its flight
// (counted in table.cache_coalesced) and shares the one result — and
// its error, except cancellation: a leader cancelled by its own
// caller is not the waiters' failure, so an uncancelled waiter
// retries (and typically becomes the next leader). Waiters honour
// their own ctx while parked.
func (c *Cache) GetOrBuildCtx(ctx context.Context, cfg Config, axes Axes, o *obs.Observer) (*Set, error) {
	if o == nil {
		o = obs.Default()
	}
	ctx, sp := o.StartCtx(ctx, "table.cache")
	sp.SetAttr("name", cfg.Name)
	defer sp.End()
	// The content address doubles as the flight key and is recorded on
	// the span so obsreport traces can correlate cache entries across
	// runs.
	key, err := CacheKey(cfg, axes)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("key", key)
	for {
		s, ok, err := c.GetCtx(ctx, cfg, axes)
		if err != nil {
			return nil, err
		}
		if ok {
			sp.SetAttr("outcome", "hit")
			return s, nil
		}
		c.mu.Lock()
		if c.flights == nil { // zero-value Cache (tests construct &Cache{})
			c.flights = map[string]*flight{}
		}
		if f, inFlight := c.flights[key]; inFlight {
			c.mu.Unlock()
			cacheCoalesced.Inc()
			sp.SetAttr("outcome", "coalesced")
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err != nil {
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					continue
				}
				return nil, f.err
			}
			return setWithHeader(f.set, cfg), nil
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()
		sp.SetAttr("outcome", "miss")
		f.set, f.err = c.buildAndPut(ctx, cfg, axes, o, sp)
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		return f.set, f.err
	}
}

// buildAndPut is the miss path: run the sweep, write the result back
// (degrading — not failing — on a persistent write error).
func (c *Cache) buildAndPut(ctx context.Context, cfg Config, axes Axes, o *obs.Observer, sp obs.Span) (*Set, error) {
	s, err := BuildCtx(ctx, cfg, axes, o)
	if err != nil {
		return nil, err
	}
	if err := c.PutCtx(ctx, s); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		cacheIOErrs.Inc()
		sp.SetAttr("write_error", err.Error())
	}
	return s, nil
}

// CacheStats reports the process-wide cache counters.
func CacheStats() (hits, misses, writes, corrupt int64) {
	return cacheHits.Value(), cacheMisses.Value(), cacheWrites.Value(), cacheCorrupt.Value()
}
