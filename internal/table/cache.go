package table

// Content-addressed on-disk table cache. The paper's economy is
// "solve once, look up forever" (Section III): the field-solver sweep
// is the expensive step and every extraction after it is spline
// lookups. The cache makes that durable across processes: a stable
// hash of every value-determining input — (Config, Axes, codec format
// version) — addresses an on-disk store of built sets, so any number
// of concurrent extractions can share one pre-built artifact, and a
// rebuilt binary with an incompatible codec simply misses and
// re-solves rather than loading stale bytes.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
)

// Cache accounting: hits serve a ready set with zero solver calls,
// misses fall through to Build, corrupt counts entries that existed
// but failed to load or verify (treated as misses and overwritten by
// the next Put).
var (
	cacheHits    = obs.GetCounter("table.cache_hits")
	cacheMisses  = obs.GetCounter("table.cache_misses")
	cacheWrites  = obs.GetCounter("table.cache_writes")
	cacheCorrupt = obs.GetCounter("table.cache_corrupt")
)

// cacheKeyRecord pins exactly the fields that participate in the
// cache key. Config.Name is provenance (a label) and Config.Workers
// is an execution detail — builds are bit-for-bit deterministic at
// any worker count — so neither influences the built values and
// neither is hashed. The codec format version is included so a codec
// change retires every old entry at once instead of half-reading it.
// Field order is part of the address: do not reorder without bumping
// the codec version.
type cacheKeyRecord struct {
	FormatVersion  int
	Thickness      float64
	Rho            float64
	Shielding      geom.Shielding
	PlaneGap       float64
	PlaneThickness float64
	Frequency      float64
	PlaneStrips    int
	SubW           int
	SubT           int
	Widths         []float64
	Spacings       []float64
	Lengths        []float64
}

// CacheKey returns the content address of the table set that (cfg,
// axes) would build: the hex SHA-256 of the value-determining fields
// after defaulting. Two configurations that build bit-identical sets
// hash identically (Name and Workers are excluded); any change to a
// physical parameter, an axis point, or the codec version changes the
// key.
func CacheKey(cfg Config, axes Axes) (string, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	if err := axes.Validate(); err != nil {
		return "", err
	}
	rec := cacheKeyRecord{
		FormatVersion:  formatVersion,
		Thickness:      cfg.Thickness,
		Rho:            cfg.Rho,
		Shielding:      cfg.Shielding,
		PlaneGap:       cfg.PlaneGap,
		PlaneThickness: cfg.PlaneThickness,
		Frequency:      cfg.Frequency,
		PlaneStrips:    cfg.PlaneStrips,
		SubW:           cfg.SubW,
		SubT:           cfg.SubT,
		Widths:         axes.Widths,
		Spacings:       axes.Spacings,
		Lengths:        axes.Lengths,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return "", fmt.Errorf("table: cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Cache is a content-addressed store of built table sets, one codec
// file per key, under a single directory. It is safe for concurrent
// use by any number of processes: entries are immutable once written,
// writes are atomic (temp file + rename), and racing builders of the
// same key write bit-identical bytes, so whichever rename lands last
// changes nothing.
type Cache struct {
	dir string
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("table: cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("table: cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the on-disk location of a key's entry.
func (c *Cache) Path(key string) string { return filepath.Join(c.dir, key+".json") }

// Get looks up the set (cfg, axes) addresses. A missing entry is
// (nil, false, nil); a present entry that fails to load, fails its
// checksum, or no longer hashes to its own address is counted corrupt
// and treated as a miss (the next Put atomically replaces it). On a
// hit the stored set is returned with the caller's Name and Workers
// applied, since those are excluded from the address.
func (c *Cache) Get(cfg Config, axes Axes) (*Set, bool, error) {
	key, err := CacheKey(cfg, axes)
	if err != nil {
		return nil, false, err
	}
	s, err := LoadFile(c.Path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			cacheMisses.Inc()
			return nil, false, nil
		}
		cacheCorrupt.Inc()
		cacheMisses.Inc()
		return nil, false, nil
	}
	// Content-addressed verification: the entry must hash back to the
	// address it was found under, or it was written by a different
	// scheme (or tampered with) and cannot be trusted for this key.
	storedKey, err := CacheKey(s.Config, s.Axes)
	if err != nil || storedKey != key {
		cacheCorrupt.Inc()
		cacheMisses.Inc()
		return nil, false, nil
	}
	s.Config.Name = cfg.Name
	s.Config.Workers = cfg.Workers
	cacheHits.Inc()
	return s, true, nil
}

// Put stores a built set under its content address, atomically.
func (c *Cache) Put(s *Set) error {
	if s == nil {
		return errors.New("table: cache: nil set")
	}
	key, err := CacheKey(s.Config, s.Axes)
	if err != nil {
		return err
	}
	if err := s.SaveFile(c.Path(key)); err != nil {
		return err
	}
	cacheWrites.Inc()
	return nil
}

// GetOrBuild returns the cached set for (cfg, axes) when present —
// zero field-solver calls, lookups bit-identical to a cold build —
// and otherwise builds it (tracing to o, nil selects the default
// observer) and writes it back for every extraction after this one.
func (c *Cache) GetOrBuild(cfg Config, axes Axes, o *obs.Observer) (*Set, error) {
	if o == nil {
		o = obs.Default()
	}
	sp := o.Start("table.cache")
	sp.SetAttr("name", cfg.Name)
	defer sp.End()
	s, ok, err := c.Get(cfg, axes)
	if err != nil {
		return nil, err
	}
	if ok {
		sp.SetAttr("outcome", "hit")
		return s, nil
	}
	sp.SetAttr("outcome", "miss")
	s, err = BuildObserved(cfg, axes, o)
	if err != nil {
		return nil, err
	}
	if err := c.Put(s); err != nil {
		return nil, err
	}
	return s, nil
}

// CacheStats reports the process-wide cache counters.
func CacheStats() (hits, misses, writes, corrupt int64) {
	return cacheHits.Value(), cacheMisses.Value(), cacheWrites.Value(), cacheCorrupt.Value()
}
