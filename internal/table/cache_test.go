package table

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clockrlc/internal/units"
)

func TestCacheKeyStability(t *testing.T) {
	cfg, axes := freeConfig(), tinyAxes()
	k1, err := CacheKey(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("key not stable: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a hex SHA-256", k1)
	}

	// Name and Workers are provenance/execution details, not value
	// inputs: they must not change the address.
	relabeled := cfg
	relabeled.Name = "completely/different"
	relabeled.Workers = 7
	if k, _ := CacheKey(relabeled, axes); k != k1 {
		t.Error("Name/Workers leaked into the cache key")
	}

	// Every physical parameter and every axis point must change it.
	perturbed := []Config{}
	c := cfg
	c.Frequency *= 2
	perturbed = append(perturbed, c)
	c = cfg
	c.Thickness *= 1.5
	perturbed = append(perturbed, c)
	c = cfg
	c.SubW = 8
	perturbed = append(perturbed, c)
	for i, pc := range perturbed {
		if k, err := CacheKey(pc, axes); err != nil {
			t.Fatal(err)
		} else if k == k1 {
			t.Errorf("perturbed config %d hashed to the same key", i)
		}
	}
	ax2 := tinyAxes()
	ax2.Lengths[1] *= 1.01
	if k, err := CacheKey(cfg, ax2); err != nil {
		t.Fatal(err)
	} else if k == k1 {
		t.Error("perturbed axes hashed to the same key")
	}

	bad := cfg
	bad.Thickness = 0
	if _, err := CacheKey(bad, axes); err == nil {
		t.Error("CacheKey accepted an unbuildable config")
	}
}

// The acceptance criterion of the cache: a hit constructs a ready set
// with zero field-solver calls and lookups bit-identical to the cold
// build it was populated from.
func TestCacheHitZeroSolverCallsBitIdentical(t *testing.T) {
	c, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()

	cold, err := c.GetOrBuild(cfg, axes, nil)
	if err != nil {
		t.Fatal(err)
	}

	solves0 := tableSolves.Value()
	hits0, _, _, _ := CacheStats()
	warm, err := c.GetOrBuild(cfg, axes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tableSolves.Value() - solves0; got != 0 {
		t.Errorf("cache hit ran %d field-solver calls, want 0", got)
	}
	if hits, _, _, _ := CacheStats(); hits-hits0 != 1 {
		t.Errorf("cache_hits += %d, want 1", hits-hits0)
	}

	// Bit-identical stored values and lookups, on and off grid.
	for k, v := range cold.Self.Vals {
		if warm.Self.Vals[k] != v {
			t.Fatalf("self[%d]: cold %g != warm %g", k, v, warm.Self.Vals[k])
		}
	}
	for k, v := range cold.Mutual.Vals {
		if warm.Mutual.Vals[k] != v {
			t.Fatalf("mutual[%d]: cold %g != warm %g", k, v, warm.Mutual.Vals[k])
		}
	}
	for _, p := range []struct{ w, l float64 }{
		{units.Um(1.7), units.Um(300)},
		{units.Um(3.1), units.Um(900)},
	} {
		a, err1 := cold.SelfL(p.w, p.l)
		b, err2 := warm.SelfL(p.w, p.l)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Errorf("SelfL(%g, %g): cold %g != warm %g", p.w, p.l, a, b)
		}
	}
	m1, _ := cold.MutualL(units.Um(1.5), units.Um(1.5), units.Um(1.2), units.Um(400))
	m2, _ := warm.MutualL(units.Um(1.5), units.Um(1.5), units.Um(1.2), units.Um(400))
	if m1 != m2 {
		t.Errorf("MutualL drifted through the cache: %g vs %g", m1, m2)
	}
}

// The hit re-applies the caller's Name (excluded from the address),
// so one cached sweep serves differently labelled sets.
func TestCacheHitAppliesCallerName(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()
	if _, err := c.GetOrBuild(cfg, axes, nil); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Name = "M7/coplanar"
	s, ok, err := c.Get(other, axes)
	if err != nil || !ok {
		t.Fatalf("expected a hit, got ok=%v err=%v", ok, err)
	}
	if s.Config.Name != "M7/coplanar" {
		t.Errorf("hit kept stored name %q", s.Config.Name)
	}
}

// A corrupt entry (torn write from a crashed peer, bit rot) is
// counted and treated as a miss; the rebuild atomically replaces it.
func TestCacheCorruptEntryIsMissAndHeals(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()
	if _, err := c.GetOrBuild(cfg, axes, nil); err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.Path(key), raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, _, corrupt0 := CacheStats()
	if _, ok, err := c.Get(cfg, axes); err != nil || ok {
		t.Fatalf("corrupt entry: ok=%v err=%v, want miss", ok, err)
	}
	if _, _, _, corrupt := CacheStats(); corrupt-corrupt0 != 1 {
		t.Errorf("cache_corrupt += %d, want 1", corrupt-corrupt0)
	}
	// GetOrBuild heals the entry; the next Get is a clean hit again.
	if _, err := c.GetOrBuild(cfg, axes, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(cfg, axes); err != nil || !ok {
		t.Errorf("healed entry: ok=%v err=%v, want hit", ok, err)
	}
}

// An entry whose content no longer hashes to its own file name (a
// renamed file, a foreign artifact dropped into the cache directory)
// must not be served for that address.
func TestCacheRejectsMisfiledEntry(t *testing.T) {
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg, axes := freeConfig(), tinyAxes()
	if _, err := c.GetOrBuild(cfg, axes, nil); err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(cfg, axes)
	if err != nil {
		t.Fatal(err)
	}
	// File the valid entry under a different address.
	other := cfg
	other.Frequency *= 2
	otherKey, err := CacheKey(other, axes)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(c.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.Path(otherKey), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(other, axes); ok {
		t.Error("cache served an entry that hashes to a different address")
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := NewCache(""); err == nil {
		t.Error("NewCache accepted an empty directory")
	}
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(nil); err == nil {
		t.Error("Put accepted a nil set")
	}
	if !strings.HasPrefix(filepath.Base(c.Path("abc")), "abc") {
		t.Errorf("Path(%q) = %q", "abc", c.Path("abc"))
	}
}
