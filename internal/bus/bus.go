// Package bus models the paper's Fig. 4 bus structure: N parallel
// signal traces between two dedicated AC-ground traces, as one RLC
// netlist ("we can easily construct the RLC netlist for a N parallel
// wires", Section V). Every wire is sectioned into PEEC bars with the
// full partial-inductance coupling matrix; capacitances follow the
// paper's 3-trace decomposition, with signal-to-shield couplings
// grounded and signal-to-signal couplings kept as true coupling
// capacitors (they connect two live nodes).
//
// The package answers the bus questions the extraction enables:
// switching noise injected into quiet victims by any set of
// aggressors, and the victim-position dependence of that noise.
package bus

import (
	"fmt"
	"math"

	"clockrlc/internal/capmodel"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/netlist"
	"clockrlc/internal/peec"
	"clockrlc/internal/resist"
	"clockrlc/internal/sim"
)

// Spec describes the bus.
type Spec struct {
	// N is the signal count (the block has N+2 wires with the outer
	// grounds).
	N int
	// Length, SignalWidth, GroundWidth, Spacing define the geometry;
	// spacing is uniform edge-to-edge.
	Length, SignalWidth, GroundWidth, Spacing float64
	// Sections per wire (default 6).
	Sections int
	// DriverRes, RiseTime, LoadCap describe the drivers on every
	// signal (aggressors switch 0→1 V; victims hold 0 V).
	DriverRes, RiseTime, LoadCap float64
}

func (s Spec) withDefaults() Spec {
	if s.Sections <= 0 {
		s.Sections = 6
	}
	if s.DriverRes <= 0 {
		s.DriverRes = 40
	}
	if s.RiseTime <= 0 {
		s.RiseTime = 50e-12
	}
	if s.LoadCap <= 0 {
		s.LoadCap = 50e-15
	}
	return s
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("bus: need at least one signal, got %d", s.N)
	}
	if s.Length <= 0 || s.SignalWidth <= 0 || s.GroundWidth <= 0 || s.Spacing <= 0 {
		return fmt.Errorf("bus: geometry must be positive: %+v", s)
	}
	return nil
}

// Result is one bus noise run.
type Result struct {
	// Peak[i] is the victim i's largest |V| (entries for aggressors
	// hold 0). Indices are signal indices 0..N-1.
	Peak []float64
	// Time and V hold the waveform of the probed victim.
	Time, V []float64
}

// block lays out the N+2 wires.
func (s Spec) block(tech core.Technology) *geom.Block {
	total := s.N + 2
	b := &geom.Block{
		Traces:   make([]geom.Trace, total),
		IsGround: make([]bool, total),
		Rho:      tech.Rho,
	}
	y := 0.0
	for i := 0; i < total; i++ {
		w := s.SignalWidth
		if i == 0 || i == total-1 {
			w = s.GroundWidth
			b.IsGround[i] = true
		}
		b.Traces[i] = geom.Trace{
			X0: 0, Y: y + w/2, Z: tech.Thickness / 2,
			Length: s.Length, Width: w, Thickness: tech.Thickness,
		}
		y += w + s.Spacing
	}
	return b
}

// Noise simulates the bus with the given aggressor signal indices
// switching 0→1 V and every other signal quiet, and reports each
// quiet victim's peak noise. probeVictim selects whose waveform is
// returned (must be a victim).
func Noise(e *core.Extractor, s Spec, aggressors []int, probeVictim int) (*Result, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	isAgg := make([]bool, s.N)
	for _, a := range aggressors {
		if a < 0 || a >= s.N {
			return nil, fmt.Errorf("bus: aggressor index %d out of range", a)
		}
		isAgg[a] = true
	}
	if probeVictim < 0 || probeVictim >= s.N || isAgg[probeVictim] {
		return nil, fmt.Errorf("bus: probe victim %d invalid (out of range or an aggressor)", probeVictim)
	}

	blk := s.block(e.Tech)
	caps, err := capmodel.BlockCaps(blk, e.Tech.CapHeight, e.Tech.EpsRel)
	if err != nil {
		return nil, err
	}

	// Sectioned bars for all wires (grounds included).
	n := s.Sections
	secLen := s.Length / float64(n)
	total := s.N + 2
	var bars []peec.Bar
	for _, tr := range blk.Traces {
		full := peec.BarFromTrace(tr)
		for k := 0; k < n; k++ {
			b := full
			b.O[0] = full.O[0] + float64(k)*secLen
			b.L = secLen
			bars = append(bars, b)
		}
	}
	lp := peec.PartialMatrix(bars)

	nl := netlist.New()
	node := func(w int, k int) string {
		if k == 0 {
			if w == 0 || w == total-1 {
				return fmt.Sprintf("g%d.end0", w)
			}
			return fmt.Sprintf("s%d.in", w-1)
		}
		return fmt.Sprintf("w%d.n%d", w, k)
	}
	endNode := func(w int) string {
		if w == 0 || w == total-1 {
			return fmt.Sprintf("g%d.end1", w)
		}
		return fmt.Sprintf("s%d.out", w-1)
	}
	const bondR = 1e-3
	inds := make([]int, len(bars))
	for w := 0; w < total; w++ {
		tr := blk.Traces[w]
		rw, err := resist.ACSkinArea(s.Length, tr.Width, e.Tech.Thickness, e.Tech.Rho, e.Frequency)
		if err != nil {
			return nil, err
		}
		ground := blk.IsGround[w]
		if ground {
			nl.AddR(fmt.Sprintf("w%d.bond0", w), node(w, 0), netlist.Ground, bondR)
		}
		for k := 0; k < n; k++ {
			from := node(w, k)
			to := node(w, k+1)
			if k == n-1 {
				to = endNode(w)
			}
			mid := fmt.Sprintf("w%d.m%d", w, k)
			nl.AddR(fmt.Sprintf("w%d.r%d", w, k), from, mid, rw/float64(n))
			inds[w*n+k] = nl.AddL(fmt.Sprintf("w%d.l%d", w, k), mid, to, lp.At(w*n+k, w*n+k))
			if ground {
				nl.AddR(fmt.Sprintf("w%d.bond%d", w, k+1), to, netlist.Ground, bondR)
				continue
			}
			// Capacitance per the 3-trace decomposition: ground part
			// plus grounded couplings to AC-ground neighbours; true
			// coupling capacitors to live signal neighbours.
			c := caps[w].Ground
			if blk.IsGround[w-1] {
				c += caps[w].Left
			}
			if blk.IsGround[w+1] {
				c += caps[w].Right
			}
			nl.AddC(fmt.Sprintf("w%d.c%d", w, k), to, netlist.Ground, c*s.Length/float64(n))
			if !blk.IsGround[w+1] {
				// Coupling capacitor to the right live neighbour's
				// co-located node (added once per adjacent pair).
				right := node(w+1, k+1)
				if k == n-1 {
					right = endNode(w + 1)
				}
				nl.AddC(fmt.Sprintf("cc%d.%d", w, k), to, right, caps[w].Right*s.Length/float64(n))
			}
		}
	}
	// Full inductive coupling.
	for i := 0; i < len(bars); i++ {
		for j := i + 1; j < len(bars); j++ {
			if m := lp.At(i, j); m != 0 {
				nl.AddK(fmt.Sprintf("k.%d.%d", i, j), inds[i], inds[j], m)
			}
		}
	}
	// Drivers and loads.
	for sig := 0; sig < s.N; sig++ {
		var wave netlist.Waveform = netlist.DC(0)
		if isAgg[sig] {
			wave = netlist.Ramp{V0: 0, V1: 1, Start: 5e-12, Rise: s.RiseTime}
		}
		nl.AddV(fmt.Sprintf("v%d", sig), fmt.Sprintf("d%d", sig), netlist.Ground, wave)
		nl.AddR(fmt.Sprintf("rd%d", sig), fmt.Sprintf("d%d", sig), fmt.Sprintf("s%d.in", sig), s.DriverRes)
		nl.AddC(fmt.Sprintf("cl%d", sig), fmt.Sprintf("s%d.out", sig), netlist.Ground, s.LoadCap)
	}

	var probes []string
	for sig := 0; sig < s.N; sig++ {
		if !isAgg[sig] {
			probes = append(probes, fmt.Sprintf("s%d.out", sig))
		}
	}
	res, err := sim.Transient(nl, s.RiseTime/150, 20*s.RiseTime, probes)
	if err != nil {
		return nil, fmt.Errorf("bus: %w", err)
	}
	out := &Result{Peak: make([]float64, s.N), Time: res.Time}
	for sig := 0; sig < s.N; sig++ {
		if isAgg[sig] {
			continue
		}
		v, err := res.Waveform(fmt.Sprintf("s%d.out", sig))
		if err != nil {
			return nil, err
		}
		for _, x := range v {
			if a := math.Abs(x); a > out.Peak[sig] {
				out.Peak[sig] = a
			}
		}
		if sig == probeVictim {
			out.V = v
		}
	}
	return out, nil
}
