package bus

import (
	"math"
	"sync"
	"testing"

	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

var (
	once sync.Once
	ext  *core.Extractor
	eErr error
)

func extractor(t *testing.T) *core.Extractor {
	t.Helper()
	once.Do(func() {
		tech := core.Technology{
			Thickness:      units.Um(2),
			Rho:            units.RhoCopper,
			EpsRel:         units.EpsSiO2,
			CapHeight:      units.Um(2),
			PlaneGap:       units.Um(2),
			PlaneThickness: units.Um(1),
		}
		axes := table.Axes{
			Widths:   table.LogAxis(units.Um(0.8), units.Um(6), 3),
			Spacings: table.LogAxis(units.Um(0.5), units.Um(4), 3),
			Lengths:  table.LogAxis(units.Um(400), units.Um(4000), 3),
		}
		ext, eErr = core.NewExtractor(tech, 6.4e9, axes, []geom.Shielding{geom.ShieldNone})
	})
	if eErr != nil {
		t.Fatal(eErr)
	}
	return ext
}

func fiveBitBus() Spec {
	return Spec{
		N:           5,
		Length:      units.Um(1500),
		SignalWidth: units.Um(2),
		GroundWidth: units.Um(2),
		Spacing:     units.Um(1),
		Sections:    5,
	}
}

func TestAdjacentAggressorInjectsNoise(t *testing.T) {
	res, err := Noise(extractor(t), fiveBitBus(), []int{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Peak[2] > 0.01) {
		t.Errorf("adjacent aggressor noise %.4f V implausibly small", res.Peak[2])
	}
	if !(res.Peak[2] < 0.5) {
		t.Errorf("adjacent aggressor noise %.4f V implausibly large", res.Peak[2])
	}
	// Noise decays across the bus.
	if !(res.Peak[2] > res.Peak[3] && res.Peak[3] > res.Peak[4]) {
		t.Errorf("noise not decaying across the bus: %v", res.Peak)
	}
	if len(res.V) == 0 {
		t.Error("probe waveform missing")
	}
}

// Superposition: the circuit is linear, so the noise from aggressors
// {0} and {4} switching together equals the sum of their individual
// contributions at every victim.
func TestSuperposition(t *testing.T) {
	e := extractor(t)
	spec := fiveBitBus()
	a0, err := Noise(e, spec, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	a4, err := Noise(e, spec, []int{4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	both, err := Noise(e, spec, []int{0, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Compare waveforms point-wise (peaks of sums need not add, but
	// the waveforms must).
	if len(a0.V) != len(both.V) || len(a4.V) != len(both.V) {
		t.Fatal("waveform length mismatch")
	}
	var maxErr, scale float64
	for i := range both.V {
		sum := a0.V[i] + a4.V[i]
		if d := math.Abs(both.V[i] - sum); d > maxErr {
			maxErr = d
		}
		if a := math.Abs(both.V[i]); a > scale {
			scale = a
		}
	}
	if maxErr > 1e-6+1e-6*scale {
		t.Errorf("superposition violated: max deviation %g (scale %g)", maxErr, scale)
	}
}

// Symmetry: victims equidistant from a central aggressor see the same
// noise.
func TestSymmetricNeighbours(t *testing.T) {
	res, err := Noise(extractor(t), fiveBitBus(), []int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Peak[1]-res.Peak[3]) / res.Peak[1]; rel > 1e-6 {
		t.Errorf("asymmetric noise around central aggressor: %v", res.Peak)
	}
	if rel := math.Abs(res.Peak[0]-res.Peak[4]) / res.Peak[0]; rel > 1e-6 {
		t.Errorf("asymmetric far noise: %v", res.Peak)
	}
}

// A middle victim with everyone else switching collects more noise
// than an edge victim in the same storm (edge wires sit next to a
// shield).
func TestMiddleVictimWorstCase(t *testing.T) {
	e := extractor(t)
	spec := fiveBitBus()
	mid, err := Noise(e, spec, []int{0, 1, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := Noise(e, spec, []int{1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(mid.Peak[2] > edge.Peak[0]) {
		t.Errorf("middle victim %.4f not above edge victim %.4f", mid.Peak[2], edge.Peak[0])
	}
}

func TestBusValidation(t *testing.T) {
	e := extractor(t)
	bad := fiveBitBus()
	bad.N = 0
	if _, err := Noise(e, bad, nil, 0); err == nil {
		t.Error("accepted empty bus")
	}
	if _, err := Noise(e, fiveBitBus(), []int{9}, 0); err == nil {
		t.Error("accepted out-of-range aggressor")
	}
	if _, err := Noise(e, fiveBitBus(), []int{2}, 2); err == nil {
		t.Error("accepted aggressor as probe victim")
	}
	if _, err := Noise(e, fiveBitBus(), []int{1}, 7); err == nil {
		t.Error("accepted out-of-range probe")
	}
	bad = fiveBitBus()
	bad.Spacing = 0
	if _, err := Noise(e, bad, []int{1}, 2); err == nil {
		t.Error("accepted zero spacing")
	}
}
