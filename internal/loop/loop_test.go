package loop

import (
	"math"
	"testing"

	"clockrlc/internal/geom"
	"clockrlc/internal/peec"
	"clockrlc/internal/units"
)

const fsig = 3.2e9 // significant frequency for tr = 100 ps

func twoBar(l, w, th, d float64) ([]peec.Bar, []Role, []float64) {
	bars := []peec.Bar{
		{Axis: peec.AxisX, O: [3]float64{0, 0, 0}, L: l, W: w, T: th},
		{Axis: peec.AxisX, O: [3]float64{0, d, 0}, L: l, W: w, T: th},
	}
	return bars, []Role{RoleSignal, RoleReturn}, []float64{units.RhoCopper, units.RhoCopper}
}

func TestTwoWireLoopMatchesPartialCombination(t *testing.T) {
	l, w, th := units.Um(2000), units.Um(2), units.Um(1)
	d := units.Um(10)
	bars, roles, rhos := twoBar(l, w, th, d)
	sol, err := Solve(bars, roles, rhos, fsig)
	if err != nil {
		t.Fatal(err)
	}
	ls := peec.HoerLoveSelf(bars[0])
	lr := peec.HoerLoveSelf(bars[1])
	m := peec.HoerLoveMutual(bars[0], bars[1])
	want := ls + lr - 2*m
	if rel := math.Abs(sol.L-want) / want; rel > 1e-9 {
		t.Errorf("two-wire loop L = %g, want Ls+Lr-2M = %g (rel %g)", sol.L, want, rel)
	}
	wantR := 2 * units.RhoCopper * l / (w * th)
	if rel := math.Abs(sol.R-wantR) / wantR; rel > 1e-9 {
		t.Errorf("two-wire loop R = %g, want %g", sol.R, wantR)
	}
	// Currents are forced to ±1.
	if math.Abs(real(sol.Currents[0])-1) > 1e-12 || math.Abs(real(sol.Currents[1])+1) > 1e-12 {
		t.Errorf("currents = %v, want +1/-1", sol.Currents)
	}
}

func TestCPWSymmetricSplit(t *testing.T) {
	// Signal centred between two identical grounds: each ground
	// carries -1/2 by symmetry, so
	// Lloop = Ls + (Lg + Mgg)/2 - 2Msg.
	l := units.Um(3000)
	blk := geom.CoplanarWaveguide(l, units.Um(10), units.Um(10), units.Um(2), units.Um(2), 0, units.RhoCopper)
	bars := []peec.Bar{
		peec.BarFromTrace(blk.Traces[1]), // signal
		peec.BarFromTrace(blk.Traces[0]),
		peec.BarFromTrace(blk.Traces[2]),
	}
	roles := []Role{RoleSignal, RoleReturn, RoleReturn}
	rhos := []float64{units.RhoCopper, units.RhoCopper, units.RhoCopper}
	sol, err := Solve(bars, roles, rhos, fsig)
	if err != nil {
		t.Fatal(err)
	}
	ls := peec.HoerLoveSelf(bars[0])
	lg := peec.HoerLoveSelf(bars[1])
	mgg := peec.HoerLoveMutual(bars[1], bars[2])
	msg := peec.HoerLoveMutual(bars[0], bars[1])
	want := ls + (lg+mgg)/2 - 2*msg
	if rel := math.Abs(sol.L-want) / want; rel > 1e-6 {
		t.Errorf("CPW loop L = %g, want %g (rel %g)", sol.L, want, rel)
	}
	// Ground currents split evenly.
	if d := math.Abs(real(sol.Currents[1]) - real(sol.Currents[2])); d > 1e-9 {
		t.Errorf("asymmetric ground split: %v", sol.Currents)
	}
}

func fig1Block() *geom.Block {
	return geom.CoplanarWaveguide(units.Um(6000), units.Um(10), units.Um(5),
		units.Um(1), units.Um(2), 0, units.RhoCopper)
}

func TestSolveBlockFig1Magnitude(t *testing.T) {
	// The Fig. 1 CPW: loop inductance should land in the nH range
	// (a few nH for 6 mm with ~1 µm gaps).
	sol, err := SolveBlock(fig1Block(), 1, Options{Frequency: fsig})
	if err != nil {
		t.Fatal(err)
	}
	lnh := units.ToNH(sol.L)
	if math.IsNaN(lnh) || lnh < 1 || lnh > 10 {
		t.Errorf("Fig.1 CPW loop L = %g nH, want O(1–10) nH", lnh)
	}
	if sol.R <= 0 {
		t.Errorf("loop R = %g, want > 0", sol.R)
	}
}

func TestGroundPlaneReducesLoopInductance(t *testing.T) {
	cpw := fig1Block()
	ms := geom.Microstrip(units.Um(6000), units.Um(10), units.Um(5), units.Um(1),
		units.Um(2), 0, units.RhoCopper, units.Um(2), units.Um(1))
	a, err := SolveBlock(cpw, 1, Options{Frequency: fsig})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveBlock(ms, 1, Options{Frequency: fsig})
	if err != nil {
		t.Fatal(err)
	}
	if b.L >= a.L {
		t.Errorf("plane must reduce loop L: microstrip %g >= cpw %g", b.L, a.L)
	}
	if b.L <= 0 {
		t.Errorf("microstrip loop L = %g, want > 0", b.L)
	}
}

func TestPlaneStripConvergence(t *testing.T) {
	ms := geom.Microstrip(units.Um(2000), units.Um(4), units.Um(4), units.Um(1),
		units.Um(1), 0, units.RhoCopper, units.Um(2), units.Um(1))
	coarse, err := SolveBlock(ms, 1, Options{Frequency: fsig, PlaneStrips: 8})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := SolveBlock(ms, 1, Options{Frequency: fsig, PlaneStrips: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(coarse.L-fine.L) / fine.L; rel > 0.03 {
		t.Errorf("plane strip discretisation not converged: 8 strips %g vs 32 strips %g (rel %g)",
			coarse.L, fine.L, rel)
	}
}

func TestSignalSubdivisionStaysClose(t *testing.T) {
	// Subdividing the signal for skin effect should move loop L only
	// modestly at the significant frequency for these cross sections.
	blk := fig1Block()
	u, err := SolveBlock(blk, 1, Options{Frequency: fsig})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SolveBlock(blk, 1, Options{Frequency: fsig, SubW: 6, SubT: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s.L) || math.IsNaN(u.L) {
		t.Fatalf("NaN loop inductance: uniform %g, subdivided %g", u.L, s.L)
	}
	// At 3.2 GHz with 1 µm gaps the proximity effect pulls return
	// current to the facing edges and shrinks the loop by ~10–15 %;
	// sanity-band the redistribution rather than pinning it.
	rel := (u.L - s.L) / u.L
	if rel < 0 || rel > 0.25 {
		t.Errorf("subdivided loop L shift = %g of uniform (uniform %g, subdivided %g); want in [0, 0.25]",
			rel, u.L, s.L)
	}
}

// Foundation 1 (paper Fig. 5b): the loop self inductance of a trace
// over a plane is unchanged by the presence of other (quiet) traces.
func TestFoundation1(t *testing.T) {
	full := geom.TraceArray(5, units.Um(1000), units.Um(2), units.Um(2), units.Um(1), 0, units.RhoCopper)
	full.IsGround = []bool{false, false, false, false, false}
	plane := &geom.GroundPlane{Z: -units.Um(3), Thickness: units.Um(1), Width: units.Um(60), Rho: units.RhoCopper}
	full.PlaneBelow = plane

	solo := &geom.Block{
		Traces:     []geom.Trace{full.Traces[0]},
		IsGround:   []bool{false},
		PlaneBelow: plane,
		Rho:        units.RhoCopper,
	}
	opts := Options{Frequency: fsig, PlaneStrips: 16}
	a, err := SolveBlock(full, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveBlock(solo, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a.L-b.L) / b.L; rel > 1e-9 {
		t.Errorf("Foundation 1 violated: full %g vs solo %g", a.L, b.L)
	}
}

// Foundation 2 (paper Fig. 5c): the loop mutual between T1 and T5 is
// unchanged by the presence of T2–T4.
func TestFoundation2(t *testing.T) {
	plane := &geom.GroundPlane{Z: -units.Um(3), Thickness: units.Um(1), Width: units.Um(60), Rho: units.RhoCopper}
	full := geom.TraceArray(5, units.Um(1000), units.Um(2), units.Um(2), units.Um(1), 0, units.RhoCopper)
	full.IsGround = []bool{false, false, false, false, false}
	full.PlaneBelow = plane

	pair := &geom.Block{
		Traces:     []geom.Trace{full.Traces[0], full.Traces[4]},
		IsGround:   []bool{false, false},
		PlaneBelow: plane,
		Rho:        units.RhoCopper,
	}
	opts := Options{Frequency: fsig, PlaneStrips: 16}
	mFull, err := LoopMatrix(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	mPair, err := LoopMatrix(pair, opts)
	if err != nil {
		t.Fatal(err)
	}
	// T1–T5 mutual: full matrix entry (0,4) vs pair entry (0,1).
	a, b := mFull.At(0, 4), mPair.At(0, 1)
	if rel := math.Abs(a-b) / math.Abs(b); rel > 1e-9 {
		t.Errorf("Foundation 2 violated: full %g vs pair %g", a, b)
	}
	// Self terms also match (Foundation 1 via the matrix path).
	if rel := math.Abs(mFull.At(0, 0)-mPair.At(0, 0)) / mPair.At(0, 0); rel > 1e-9 {
		t.Errorf("self loop L differs: %g vs %g", mFull.At(0, 0), mPair.At(0, 0))
	}
}

func TestLoopMatrixReciprocity(t *testing.T) {
	blk := geom.TraceArray(4, units.Um(800), units.Um(2), units.Um(3), units.Um(1), 0, units.RhoCopper)
	m, err := LoopMatrix(blk, Options{Frequency: fsig})
	if err != nil {
		t.Fatal(err)
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		if m.At(i, i) <= 0 {
			t.Errorf("loop self L[%d] = %g, want > 0", i, m.At(i, i))
		}
		for j := i + 1; j < n; j++ {
			a, b := m.At(i, j), m.At(j, i)
			if math.Abs(a-b) > 1e-6*math.Abs(a) {
				t.Errorf("loop mutual not reciprocal: M[%d][%d]=%g M[%d][%d]=%g", i, j, a, j, i, b)
			}
		}
	}
}

func TestSolveErrors(t *testing.T) {
	bars, roles, rhos := twoBar(units.Um(100), units.Um(1), units.Um(1), units.Um(5))
	if _, err := Solve(bars, roles, rhos, 0); err == nil {
		t.Error("Solve accepted f = 0")
	}
	if _, err := Solve(bars, roles[:1], rhos, fsig); err == nil {
		t.Error("Solve accepted mismatched roles")
	}
	if _, err := Solve(bars, []Role{RoleSignal, RoleSignal}, rhos, fsig); err == nil {
		t.Error("Solve accepted a system with no return")
	}
	if _, err := Solve(bars, []Role{RoleReturn, RoleReturn}, rhos, fsig); err == nil {
		t.Error("Solve accepted a system with no signal")
	}
	if _, err := Solve(nil, nil, nil, fsig); err == nil {
		t.Error("Solve accepted an empty system")
	}
	bad := []float64{units.RhoCopper, -1}
	if _, err := Solve(bars, roles, bad, fsig); err == nil {
		t.Error("Solve accepted negative resistivity")
	}
}

func TestSolveBlockErrors(t *testing.T) {
	blk := fig1Block()
	if _, err := SolveBlock(blk, 0, Options{Frequency: fsig}); err == nil {
		t.Error("SolveBlock accepted a ground trace as signal")
	}
	if _, err := SolveBlock(blk, 9, Options{Frequency: fsig}); err == nil {
		t.Error("SolveBlock accepted out-of-range index")
	}
	if _, err := SolveBlock(blk, 1, Options{}); err == nil {
		t.Error("SolveBlock accepted zero frequency")
	}
}

// The paper's Section VI limitation: parallel trace arrays in layer
// N−2 are ignored, "assuming that they are statistically quiet". Two
// bounding cases quantify the assumption for the Fig. 1 CPW:
//   - quiet (open) traces change the loop inductance by exactly zero
//     under PEEC (they carry no current), so ignoring them is lossless;
//   - the worst case — the same array AC-grounded (a dense return
//     mesh) — lowers loop L by a bounded amount, the maximum error the
//     assumption can incur.
func TestVerticalNeighbourArrayAssumption(t *testing.T) {
	blk := fig1Block()
	base, err := SolveBlock(blk, 1, Options{Frequency: fsig})
	if err != nil {
		t.Fatal(err)
	}

	// An array of 2 µm traces at 2 µm pitch in layer N−2 (4 µm below),
	// spanning the block.
	mkArray := func() []peec.Bar {
		var bars []peec.Bar
		for i := -5; i <= 5; i++ {
			bars = append(bars, peec.Bar{
				Axis: peec.AxisX,
				O:    [3]float64{0, float64(i)*units.Um(4) - units.Um(1), -units.Um(5)},
				L:    blk.Traces[0].Length, W: units.Um(2), T: units.Um(1),
			})
		}
		return bars
	}

	build := func(role Role) (float64, error) {
		bars := []peec.Bar{
			peec.BarFromTrace(blk.Traces[1]),
			peec.BarFromTrace(blk.Traces[0]),
			peec.BarFromTrace(blk.Traces[2]),
		}
		roles := []Role{RoleSignal, RoleReturn, RoleReturn}
		rhos := []float64{units.RhoCopper, units.RhoCopper, units.RhoCopper}
		for _, b := range mkArray() {
			bars = append(bars, b)
			roles = append(roles, role)
			rhos = append(rhos, units.RhoCopper)
		}
		sol, err := Solve(bars, roles, rhos, fsig)
		if err != nil {
			return 0, err
		}
		return sol.L, nil
	}

	quiet, err := build(RoleOpen)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(quiet-base.L) / base.L; rel > 1e-12 {
		t.Errorf("quiet array changed loop L by %g; must be exactly ignorable", rel)
	}

	grounded, err := build(RoleReturn)
	if err != nil {
		t.Fatal(err)
	}
	if !(grounded < base.L) {
		t.Errorf("grounded mesh must reduce loop L: %g vs %g", grounded, base.L)
	}
	worstErr := (base.L - grounded) / base.L
	// The Fig. 1 CPW has its returns only 1 µm away; a mesh 4 µm below
	// can only divert a bounded share of the return current.
	if worstErr > 0.35 {
		t.Errorf("worst-case vertical-array error %.1f%% implausibly large", worstErr*100)
	}
	t.Logf("ignoring a grounded N−2 array costs at most %.1f%% of loop L", worstErr*100)
}
