// Package loop computes loop inductance and resistance of
// multiconductor systems: a driven signal conductor returning through
// any combination of coplanar AC-ground traces and local ground planes
// (discretised into strips), per Section II.B of the paper.
//
// Model: every bar is a volume filament connected between a shared
// near node and a shared far node of its role group. The far ends of
// signal and return are shorted (the "merged ground node with the far
// end sink nodes" of the paper); a unit AC current is driven around
// the loop. With the complex branch impedance matrix
// Z = diag(R) + jω·Lp the solver finds the return-current distribution
// and reports Zloop = Rloop + jωLloop. Bars marked RoleOpen carry no
// current but their induced loop-referenced EMF is reported, which
// yields loop mutual inductances (the Fig. 5 matrix).
package loop

import (
	"errors"
	"fmt"
	"math"

	"clockrlc/internal/geom"
	"clockrlc/internal/linalg"
	"clockrlc/internal/peec"
)

// Role classifies a bar's electrical function in a loop solve.
type Role int

const (
	// RoleSignal bars together carry the +1 A drive current.
	RoleSignal Role = iota
	// RoleReturn bars together carry the −1 A return current; all are
	// merged at both the near return node and the far (shorted) node.
	RoleReturn
	// RoleOpen bars carry no current; their induced EMF is observed.
	RoleOpen
)

// Solution is the result of a loop solve.
type Solution struct {
	// R and L are the effective loop resistance (Ω) and inductance (H)
	// seen by the drive at the solve frequency.
	R, L float64
	// MutualL[k] is the loop mutual inductance between the driven loop
	// and the k-th RoleOpen bar (in input order), i.e. the inductance
	// relating drive current to the EMF of the loop formed by that bar
	// and the same return.
	MutualL []float64
	// Currents holds the complex branch current of every bar (zero for
	// open bars), in input order, for a 1 A drive.
	Currents []complex128
}

// Solve computes the loop impedance of the system at frequency f > 0.
// bars, roles and rhos must have equal length; rhos holds per-bar
// resistivities in Ω·m.
func Solve(bars []peec.Bar, roles []Role, rhos []float64, f float64) (*Solution, error) {
	n := len(bars)
	if len(roles) != n || len(rhos) != n {
		return nil, fmt.Errorf("loop: %d bars, %d roles, %d resistivities", n, len(roles), len(rhos))
	}
	if n == 0 {
		return nil, errors.New("loop: empty system")
	}
	if f <= 0 {
		return nil, fmt.Errorf("loop: frequency must be positive, got %g", f)
	}
	var sig, ret, open []int
	for i, r := range roles {
		switch r {
		case RoleSignal:
			sig = append(sig, i)
		case RoleReturn:
			ret = append(ret, i)
		case RoleOpen:
			open = append(open, i)
		default:
			return nil, fmt.Errorf("loop: bad role %d for bar %d", r, i)
		}
	}
	if len(sig) == 0 {
		return nil, errors.New("loop: no signal bars")
	}
	if len(ret) == 0 {
		return nil, errors.New("loop: no return bars")
	}
	for i, b := range bars {
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("loop: bar %d: %w", i, err)
		}
		if rhos[i] <= 0 {
			return nil, fmt.Errorf("loop: bar %d: resistivity %g must be positive", i, rhos[i])
		}
	}

	lp := peec.PartialMatrix(bars)
	w := 2 * math.Pi * f

	// Active unknowns: currents of signal+return bars, then the two
	// group drop voltages v_s, v_r.
	active := append(append([]int{}, sig...), ret...)
	na := len(active)
	col := make(map[int]int, na)
	for c, idx := range active {
		col[idx] = c
	}
	dim := na + 2
	vs, vr := na, na+1

	a := linalg.NewCMatrix(dim, dim)
	b := make([]complex128, dim)

	zAt := func(i, j int) complex128 {
		v := complex(0, w*lp.At(i, j))
		if i == j {
			v += complex(rhos[i]*bars[i].L/(bars[i].W*bars[i].T), 0)
		}
		return v
	}

	// Branch voltage equations: Σ_j Z_kj·i_j − v_group = 0.
	for r, k := range active {
		for _, j := range active {
			a.Add(r, col[j], zAt(k, j))
		}
		if roles[k] == RoleSignal {
			a.Add(r, vs, -1)
		} else {
			a.Add(r, vr, -1)
		}
	}
	// KCL constraints: Σ signal = +1, Σ return = −1.
	for _, k := range sig {
		a.Set(na, col[k], 1)
	}
	b[na] = 1
	for _, k := range ret {
		a.Set(na+1, col[k], 1)
	}
	b[na+1] = -1

	x, err := linalg.SolveSystemC(a, b)
	if err != nil {
		return nil, fmt.Errorf("loop: solve: %w", err)
	}

	zloop := x[vs] - x[vr]
	sol := &Solution{
		R:        real(zloop),
		L:        imag(zloop) / w,
		Currents: make([]complex128, n),
	}
	for _, k := range active {
		sol.Currents[k] = x[col[k]]
	}
	// Induced loop EMF on each open bar: its branch drop (driven by
	// mutual coupling only) referenced to the return drop.
	for _, k := range open {
		var emf complex128
		for _, j := range active {
			emf += complex(0, w*lp.At(k, j)) * x[col[j]]
		}
		m := imag(emf-x[vr]) / w
		sol.MutualL = append(sol.MutualL, m)
	}
	return sol, nil
}

// Options configures BlockSolver behaviour.
type Options struct {
	// Frequency of the solve in Hz; must be positive (use the
	// significant frequency 0.32/tr).
	Frequency float64
	// PlaneStrips is the number of strips each ground plane is
	// discretised into (default 12).
	PlaneStrips int
	// SubW, SubT subdivide the driven signal trace into filaments to
	// capture skin/proximity redistribution (default 1×1: uniform
	// current). Return traces are likewise subdivided.
	SubW, SubT int
}

func (o Options) withDefaults() Options {
	if o.PlaneStrips <= 0 {
		o.PlaneStrips = 12
	}
	if o.SubW <= 0 {
		o.SubW = 1
	}
	if o.SubT <= 0 {
		o.SubT = 1
	}
	return o
}

// SolveBlock computes the loop R and L of one signal trace of a
// geom.Block returning through the block's ground traces and plane(s),
// and the loop mutual inductances to every other (open) signal trace.
// signalIdx selects the driven trace. The Solution.MutualL entries are
// ordered by increasing trace index of the open traces.
func SolveBlock(blk *geom.Block, signalIdx int, opts Options) (*Solution, error) {
	if err := blk.Validate(); err != nil {
		return nil, fmt.Errorf("loop: %w", err)
	}
	if signalIdx < 0 || signalIdx >= len(blk.Traces) {
		return nil, fmt.Errorf("loop: signal index %d out of range", signalIdx)
	}
	if blk.IsGround[signalIdx] {
		return nil, fmt.Errorf("loop: trace %d is a ground trace", signalIdx)
	}
	opts = opts.withDefaults()
	if opts.Frequency <= 0 {
		return nil, fmt.Errorf("loop: Options.Frequency must be positive, got %g", opts.Frequency)
	}

	var bars []peec.Bar
	var roles []Role
	var rhos []float64
	addTrace := func(tr geom.Trace, role Role, subW, subT int) {
		b := peec.BarFromTrace(tr)
		if role == RoleOpen || (subW == 1 && subT == 1) {
			bars = append(bars, b)
			roles = append(roles, role)
			rhos = append(rhos, blk.Rho)
			return
		}
		for _, f := range peec.Filaments(b, subW, subT) {
			bars = append(bars, f)
			roles = append(roles, role)
			rhos = append(rhos, blk.Rho)
		}
	}
	for i, tr := range blk.Traces {
		switch {
		case i == signalIdx:
			addTrace(tr, RoleSignal, opts.SubW, opts.SubT)
		case blk.IsGround[i]:
			addTrace(tr, RoleReturn, opts.SubW, opts.SubT)
		default:
			addTrace(tr, RoleOpen, 1, 1)
		}
	}
	x0 := blk.Traces[0].X0
	length := blk.Traces[0].Length
	for _, p := range []*geom.GroundPlane{blk.PlaneBelow, blk.PlaneAbove} {
		if p == nil {
			continue
		}
		for _, s := range peec.PlaneStrips(*p, x0, length, opts.PlaneStrips) {
			bars = append(bars, s)
			roles = append(roles, RoleReturn)
			rhos = append(rhos, p.Rho)
		}
	}
	return Solve(bars, roles, rhos, opts.Frequency)
}

// LoopMatrix computes the full loop inductance matrix of a block's
// signal traces (the Fig. 5 artifact): entry (i, i) is the loop self
// inductance of signal trace i, entry (i, j) the loop mutual between
// signal traces i and j, all with returns through the block's grounds
// and plane(s). Indices follow blk.SignalIndices() order.
func LoopMatrix(blk *geom.Block, opts Options) (*linalg.Matrix, error) {
	sigs := blk.SignalIndices()
	n := len(sigs)
	m := linalg.NewMatrix(n, n)
	for a, idx := range sigs {
		sol, err := SolveBlock(blk, idx, opts)
		if err != nil {
			return nil, fmt.Errorf("loop: trace %d: %w", idx, err)
		}
		m.Set(a, a, sol.L)
		// MutualL is ordered by increasing open-trace index; map back.
		k := 0
		for b, jdx := range sigs {
			if jdx == idx {
				continue
			}
			_ = jdx
			m.Set(a, b, sol.MutualL[k])
			k++
		}
	}
	return m, nil
}
