package sim

import (
	"math"
	"testing"
	"testing/quick"

	"clockrlc/internal/netlist"
)

// rcStep builds V(step)—R—node—C—gnd.
func rcStep(r, c float64) *netlist.Netlist {
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.DC(1))
	nl.AddR("r", "in", "out", r)
	nl.AddC("c", "out", "0", c)
	return nl
}

func TestTransientRCStepMatchesAnalytic(t *testing.T) {
	r, c := 1e3, 1e-12 // τ = 1 ns
	tau := r * c
	// Near-ideal step at t = 0 (a DC source would pre-charge the cap
	// through the DC operating point).
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.Ramp{V0: 0, V1: 1, Start: 0, Rise: tau / 1e4})
	nl.AddR("r", "in", "out", r)
	nl.AddC("c", "out", "0", c)
	res, err := Transient(nl, tau/200, 6*tau, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Waveform("out")
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range res.Time {
		want := 1 - math.Exp(-tm/tau)
		if math.Abs(v[i]-want) > 3e-3 {
			t.Fatalf("RC step at t=%g: v=%g want %g", tm, v[i], want)
		}
	}
	// 50 % delay = τ·ln 2.
	d, err := DelayFromT0(res.Time, v, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(d-tau*math.Ln2) / (tau * math.Ln2); rel > 0.01 {
		t.Errorf("RC delay = %g, want %g", d, tau*math.Ln2)
	}
}

func TestTransientRLStep(t *testing.T) {
	// V(1)—R—mid—L—gnd: v(mid) = e^{−tR/L}.
	r, l := 50.0, 5e-9 // τ = 0.1 ns
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.DC(1))
	nl.AddR("r", "in", "mid", r)
	nl.AddL("l", "mid", "0", l)
	tau := l / r
	res, err := Transient(nl, tau/200, 5*tau, []string{"mid"})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Waveform("mid")
	// Skip t=0 (DC operating point has the inductor fully shorted,
	// the continuous-time ideal starts the transient at v=1 for a
	// step source; with DC(1) the operating point IS the final state).
	// Use a ramp-free check instead: at DC the inductor shorts mid to
	// ground, so v must be ~0 throughout.
	for i, tm := range res.Time {
		if math.Abs(v[i]) > 1e-9 {
			t.Fatalf("DC-initialised RL: v(mid)(%g) = %g, want 0", tm, v[i])
		}
	}
	// Now with a delayed step the transient must follow e^{−t/τ}.
	nl2 := netlist.New()
	nl2.AddV("vin", "in", "0", netlist.Ramp{V0: 0, V1: 1, Start: tau, Rise: tau / 1000})
	nl2.AddR("r", "in", "mid", r)
	nl2.AddL("l", "mid", "0", l)
	res2, err := Transient(nl2, tau/400, 6*tau, []string{"mid"})
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := res2.Waveform("mid")
	t0 := tau + tau/1000
	for i, tm := range res2.Time {
		if tm < t0+tau/50 {
			continue
		}
		want := math.Exp(-(tm - t0) / tau)
		if math.Abs(v2[i]-want) > 0.02 {
			t.Fatalf("RL decay at t=%g: v=%g want %g", tm, v2[i], want)
		}
	}
}

func TestTransientSeriesRLCRinging(t *testing.T) {
	// Series RLC step: underdamped response with
	// ωd = sqrt(1/LC − (R/2L)²), overshoot = exp(−ζπ/√(1−ζ²)).
	r, l, c := 10.0, 5e-9, 0.5e-12
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.Ramp{V0: 0, V1: 1, Start: 1e-12, Rise: 1e-13})
	nl.AddR("r", "in", "m", r)
	nl.AddL("l", "m", "out", l)
	nl.AddC("c", "out", "0", c)
	w0 := 1 / math.Sqrt(l*c)
	zeta := r / 2 * math.Sqrt(c/l)
	wd := w0 * math.Sqrt(1-zeta*zeta)
	period := 2 * math.Pi / wd
	res, err := Transient(nl, period/500, 4*period, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Waveform("out")
	over, under := Overshoot(v, 0, 1)
	wantOver := math.Exp(-zeta * math.Pi / math.Sqrt(1-zeta*zeta))
	if math.Abs(over-wantOver) > 0.03 {
		t.Errorf("overshoot = %g, want %g", over, wantOver)
	}
	if under <= 0 {
		t.Error("underdamped response must undershoot after the first peak")
	}
	// Ring frequency via successive rising crossings of the final value.
	t1, err := CrossTime(res.Time, v, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	rest := make([]float64, 0, len(v))
	var tshift []float64
	for i, tm := range res.Time {
		if tm > t1+0.6*period {
			rest = append(rest, v[i])
			tshift = append(tshift, tm)
		}
	}
	t2, err := CrossTime(tshift, rest, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	meas := t2 - t1
	if rel := math.Abs(meas-period) / period; rel > 0.03 {
		t.Errorf("ring period = %g, want %g (rel %g)", meas, period, rel)
	}
}

func TestMutualCouplingSeriesAiding(t *testing.T) {
	// Two series inductors with aiding mutual behave as L1+L2+2M;
	// verify via the ring frequency of an RLC loop.
	l1, l2, m := 2e-9, 2e-9, 1.2e-9
	r, c := 5.0, 0.4e-12
	build := func(withK bool) *netlist.Netlist {
		nl := netlist.New()
		nl.AddV("vin", "in", "0", netlist.Ramp{V0: 0, V1: 1, Start: 1e-12, Rise: 1e-13})
		nl.AddR("r", "in", "a", r)
		i1 := nl.AddL("l1", "a", "b", l1)
		i2 := nl.AddL("l2", "b", "out", l2)
		if withK {
			nl.AddK("k", i1, i2, m)
		}
		nl.AddC("c", "out", "0", c)
		return nl
	}
	period := func(leff float64) float64 {
		w0 := 1 / math.Sqrt(leff*c)
		zeta := r / 2 * math.Sqrt(c/leff)
		return 2 * math.Pi / (w0 * math.Sqrt(1-zeta*zeta))
	}
	for _, tc := range []struct {
		withK bool
		leff  float64
	}{
		{false, l1 + l2},
		{true, l1 + l2 + 2*m},
	} {
		p := period(tc.leff)
		res, err := Transient(build(tc.withK), p/600, 3*p, []string{"out"})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := res.Waveform("out")
		tpk, err := CrossTime(res.Time, v, 1.0, true)
		if err != nil {
			t.Fatal(err)
		}
		// First crossing of the final value occurs at roughly a
		// quarter period after the step; use it as a frequency probe.
		if tpk <= 0 || math.Abs(tpk-p/4)/(p/4) > 0.25 {
			t.Errorf("withK=%v: first crossing %g, want ≈ %g", tc.withK, tpk, p/4)
		}
	}
}

func TestTrapezoidalEnergyConservationLC(t *testing.T) {
	// Lossless LC ring: trapezoidal integration must not damp the
	// oscillation amplitude appreciably over many cycles.
	l, c := 1e-9, 1e-12
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.Ramp{V0: 0, V1: 1, Start: 1e-12, Rise: 1e-13})
	// A tiny series resistor keeps the DC operating point well posed.
	nl.AddR("r", "in", "m", 1e-3)
	nl.AddL("l", "m", "out", l)
	nl.AddC("c", "out", "0", c)
	period := 2 * math.Pi * math.Sqrt(l*c)
	res, err := Transient(nl, period/300, 30*period, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Waveform("out")
	// Peak of first two cycles vs last two cycles.
	n := len(v)
	maxIn := func(seg []float64) float64 {
		m := seg[0]
		for _, x := range seg {
			if x > m {
				m = x
			}
		}
		return m
	}
	early := maxIn(v[:n/10])
	late := maxIn(v[n-n/10:])
	if late < 0.98*early {
		t.Errorf("LC ring decayed: early peak %g, late peak %g", early, late)
	}
	if early < 1.9 {
		t.Errorf("LC step must ring to ≈2 V, got %g", early)
	}
}

func TestLadderDelayConvergesWithSections(t *testing.T) {
	seg := netlist.SegmentRLC{R: 100, L: 2e-9, C: 0.8e-12}
	delay := func(sections int) float64 {
		nl := netlist.New()
		nl.AddV("vin", "src", "0", netlist.Ramp{V0: 0, V1: 1, Start: 0, Rise: 20e-12})
		nl.AddR("rdrv", "src", "in", 40)
		if _, err := nl.AddLadder("seg", "in", "out", seg, sections); err != nil {
			t.Fatal(err)
		}
		nl.AddC("cload", "out", "0", 20e-15)
		res, err := Transient(nl, 0.2e-12, 1500e-12, []string{"out"})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := res.Waveform("out")
		d, err := DelayFromT0(res.Time, v, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d4, d8, d16 := delay(4), delay(8), delay(16)
	// Converging: successive refinements shrink the change.
	if math.Abs(d8-d16) > math.Abs(d4-d8)+1e-15 {
		t.Errorf("ladder not converging: |d8−d16|=%g > |d4−d8|=%g", math.Abs(d8-d16), math.Abs(d4-d8))
	}
	if rel := math.Abs(d8-d16) / d16; rel > 0.05 {
		t.Errorf("8 vs 16 sections delay differs by %g", rel)
	}
}

func TestTransientErrors(t *testing.T) {
	nl := rcStep(1e3, 1e-12)
	if _, err := Transient(nl, 0, 1e-9, nil); err == nil {
		t.Error("accepted zero step")
	}
	if _, err := Transient(nl, 1e-9, 0, nil); err == nil {
		t.Error("accepted zero tstop")
	}
	if _, err := Transient(nl, 1e-12, 1e-9, []string{"nosuch"}); err == nil {
		t.Error("accepted unknown probe")
	}
	// Floating node: capacitor in series with capacitor leaves the
	// middle node without a DC path.
	fl := netlist.New()
	fl.AddV("v", "in", "0", netlist.DC(1))
	fl.AddC("c1", "in", "x", 1e-12)
	fl.AddC("c2", "x", "0", 1e-12)
	if _, err := Transient(fl, 1e-12, 1e-10, nil); err == nil {
		t.Error("accepted a floating DC node")
	}
	// Invalid element.
	bad := netlist.New()
	bad.AddV("v", "in", "0", netlist.DC(1))
	bad.AddR("r", "in", "0", -5)
	if _, err := Transient(bad, 1e-12, 1e-10, nil); err == nil {
		t.Error("accepted negative resistance")
	}
}

func TestGroundAliasProbe(t *testing.T) {
	nl := rcStep(1e3, 1e-12)
	res, err := Transient(nl, 1e-11, 1e-9, []string{"gnd", "out"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := res.Waveform("gnd")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g {
		if v != 0 {
			t.Fatal("ground probe must be identically zero")
		}
	}
}

// Property: an RC network driven by a bounded source is passive — no
// node voltage can leave the source's range (monotone RC ladders
// cannot overshoot).
func TestQuickRCPassivity(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		rng := seed
		next := func(lo, hi float64) float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			u := float64((rng>>11)&0xFFFFFFFF) / float64(0xFFFFFFFF)
			return lo + u*(hi-lo)
		}
		nl := netlist.New()
		nl.AddV("v", "drv", "0", netlist.Ramp{V0: 0, V1: 1, Start: 1e-12, Rise: next(1e-12, 100e-12)})
		prev := "drv"
		sections := 2 + int(seed%4)
		for i := 0; i < sections; i++ {
			mid := "n" + string(rune('a'+i))
			nl.AddR("r"+mid, prev, mid, next(1, 500))
			nl.AddC("c"+mid, mid, "0", next(5e-15, 500e-15))
			prev = mid
		}
		res, err := Transient(nl, 0.5e-12, 600e-12, []string{prev})
		if err != nil {
			return false
		}
		v, _ := res.Waveform(prev)
		for _, x := range v {
			if x < -1e-9 || x > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
