package sim

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"clockrlc/internal/linalg"
	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
)

// ACResult holds a small-signal frequency sweep: per probed node, the
// complex voltage at each frequency for the requested AC stimulus.
type ACResult struct {
	Freq   []float64
	V      map[string][]complex128
	IProbe map[string][]complex128 // per AC-driven source: branch current
}

// Mag returns |V| of a probed node across the sweep.
func (r *ACResult) Mag(node string) ([]float64, error) {
	v, ok := r.V[node]
	if !ok {
		return nil, fmt.Errorf("sim: node %q was not probed", node)
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = cmplx.Abs(x)
	}
	return out, nil
}

// PhaseDeg returns the phase of a probed node in degrees.
func (r *ACResult) PhaseDeg(node string) ([]float64, error) {
	v, ok := r.V[node]
	if !ok {
		return nil, fmt.Errorf("sim: node %q was not probed", node)
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = cmplx.Phase(x) * 180 / math.Pi
	}
	return out, nil
}

// AC performs a small-signal frequency sweep of the linear netlist.
// acMag maps voltage-source names to their AC magnitudes (sources not
// listed are shorted, i.e. magnitude 0). Probes are node names; the
// branch currents of all AC-driven sources are also recorded.
func AC(nl *netlist.Netlist, freqs []float64, acMag map[string]float64, probes []string) (*ACResult, error) {
	return ACCtx(context.Background(), nl, freqs, acMag, probes)
}

// ACCtx is AC honouring cancellation between frequency points and
// guarding each solve against non-finite results (ErrDiverged).
func ACCtx(ctx context.Context, nl *netlist.Netlist, freqs []float64, acMag map[string]float64, probes []string) (*ACResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("sim: AC needs at least one frequency")
	}
	_, sp := obs.StartCtx(ctx, "sim.ac")
	sp.SetAttr("freqs", len(freqs))
	defer sp.End()
	for _, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("sim: AC frequency %g must be positive", f)
		}
	}
	m, err := assemble(nl)
	if err != nil {
		return nil, err
	}
	for _, p := range probes {
		if p == netlist.Ground || p == "gnd" {
			continue
		}
		if _, ok := m.nodeIdx[p]; !ok {
			return nil, fmt.Errorf("sim: unknown probe node %q", p)
		}
	}
	srcIdx := map[string]int{}
	for k, v := range nl.VSources {
		srcIdx[v.Name] = k
	}
	for name := range acMag {
		if _, ok := srcIdx[name]; !ok {
			return nil, fmt.Errorf("sim: AC magnitude for unknown source %q", name)
		}
	}

	res := &ACResult{
		Freq:   append([]float64(nil), freqs...),
		V:      map[string][]complex128{},
		IProbe: map[string][]complex128{},
	}
	b := make([]complex128, m.dim)
	for name, mag := range acMag {
		b[m.srcBase+srcIdx[name]] = complex(mag, 0)
		res.IProbe[name] = nil
	}

	a := linalg.NewCMatrix(m.dim, m.dim)
	for _, f := range freqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := 2 * math.Pi * f
		for i := range a.Data {
			a.Data[i] = complex(m.g.Data[i], w*m.c.Data[i])
		}
		x, err := linalg.SolveSystemC(a, b)
		if err != nil {
			return nil, fmt.Errorf("sim: AC solve at %g Hz: %w", f, err)
		}
		for _, v := range x {
			if cmplx.IsNaN(v) || cmplx.IsInf(v) {
				simDiverged.Inc()
				return nil, fmt.Errorf("sim: AC solve at %g Hz: %w", f, ErrDiverged)
			}
		}
		for _, p := range probes {
			var v complex128
			if idx := nodeOf(m.nodeIdx, p); idx >= 0 {
				v = x[idx]
			}
			res.V[p] = append(res.V[p], v)
		}
		for name := range acMag {
			res.IProbe[name] = append(res.IProbe[name], x[m.srcBase+srcIdx[name]])
		}
	}
	return res, nil
}

// InputImpedance returns V/I seen by the named AC source across a
// previously computed sweep (the source must have been AC-driven).
func (r *ACResult) InputImpedance(source string, mag float64) ([]complex128, error) {
	i, ok := r.IProbe[source]
	if !ok {
		return nil, fmt.Errorf("sim: source %q was not AC-driven", source)
	}
	out := make([]complex128, len(i))
	for k, cur := range i {
		if cur == 0 {
			out[k] = complex(math.Inf(1), 0)
			continue
		}
		// The MNA source current flows from + to − inside the source;
		// the impedance seen by the source is V/(−I).
		out[k] = complex(mag, 0) / -cur
	}
	return out, nil
}
