package sim

import (
	"math"
	"math/cmplx"
	"testing"

	"clockrlc/internal/netlist"
)

func TestACRCLowpass(t *testing.T) {
	r, c := 1e3, 1e-12
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.DC(0))
	nl.AddR("r", "in", "out", r)
	nl.AddC("c", "out", "0", c)
	fc := 1 / (2 * math.Pi * r * c)
	freqs := []float64{fc / 100, fc / 10, fc, 10 * fc, 100 * fc}
	res, err := AC(nl, freqs, map[string]float64{"vin": 1}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	mag, err := res.Mag("out")
	if err != nil {
		t.Fatal(err)
	}
	ph, err := res.PhaseDeg("out")
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range freqs {
		wrc := 2 * math.Pi * f * r * c
		want := 1 / math.Sqrt(1+wrc*wrc)
		if rel := math.Abs(mag[i]-want) / want; rel > 1e-9 {
			t.Errorf("f=%g: |H| = %g, want %g", f, mag[i], want)
		}
		wantPh := -math.Atan(wrc) * 180 / math.Pi
		if math.Abs(ph[i]-wantPh) > 1e-6 {
			t.Errorf("f=%g: phase = %g, want %g", f, ph[i], wantPh)
		}
	}
}

func TestACSeriesRLCResonance(t *testing.T) {
	r, l, c := 2.0, 5e-9, 2e-12
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.DC(0))
	nl.AddR("r", "in", "a", r)
	nl.AddL("l", "a", "out", l)
	nl.AddC("c", "out", "0", c)
	f0 := 1 / (2 * math.Pi * math.Sqrt(l*c))
	q := math.Sqrt(l/c) / r
	res, err := AC(nl, []float64{f0}, map[string]float64{"vin": 1}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	mag, _ := res.Mag("out")
	// At resonance the cap voltage magnifies to ~Q.
	if rel := math.Abs(mag[0]-q) / q; rel > 1e-6 {
		t.Errorf("|V(out)| at f0 = %g, want Q = %g", mag[0], q)
	}
}

func TestACInputImpedance(t *testing.T) {
	// A plain resistor load: Zin = R at any frequency.
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.DC(0))
	nl.AddR("r", "in", "0", 123)
	res, err := AC(nl, []float64{1e6, 1e9}, map[string]float64{"vin": 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	z, err := res.InputImpedance("vin", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range z {
		if cmplx.Abs(v-123) > 1e-9 {
			t.Errorf("Zin[%d] = %v, want 123", i, v)
		}
	}
	// An inductor load: Zin = jωL.
	nl2 := netlist.New()
	nl2.AddV("vin", "in", "0", netlist.DC(0))
	nl2.AddR("rs", "in", "m", 1e-6)
	nl2.AddL("l", "m", "0", 1e-9)
	res2, err := AC(nl2, []float64{1e9}, map[string]float64{"vin": 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	z2, _ := res2.InputImpedance("vin", 1)
	want := complex(0, 2*math.Pi*1e9*1e-9)
	if cmplx.Abs(z2[0]-want) > 1e-3*cmplx.Abs(want) {
		t.Errorf("Zin = %v, want %v", z2[0], want)
	}
}

func TestACUndrivenSourceIsShort(t *testing.T) {
	// Voltage divider with the lower source AC-grounded: plain divider.
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.DC(0))
	nl.AddV("vbias", "b", "0", netlist.DC(1))
	nl.AddR("r1", "in", "out", 100)
	nl.AddR("r2", "out", "b", 100)
	res, err := AC(nl, []float64{1e6}, map[string]float64{"vin": 1}, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	mag, _ := res.Mag("out")
	if math.Abs(mag[0]-0.5) > 1e-12 {
		t.Errorf("divider |V| = %g, want 0.5", mag[0])
	}
}

func TestACErrors(t *testing.T) {
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.DC(0))
	nl.AddR("r", "in", "0", 10)
	if _, err := AC(nl, nil, map[string]float64{"vin": 1}, nil); err == nil {
		t.Error("accepted empty frequency list")
	}
	if _, err := AC(nl, []float64{0}, map[string]float64{"vin": 1}, nil); err == nil {
		t.Error("accepted zero frequency")
	}
	if _, err := AC(nl, []float64{1e6}, map[string]float64{"nosuch": 1}, nil); err == nil {
		t.Error("accepted unknown AC source")
	}
	if _, err := AC(nl, []float64{1e6}, nil, []string{"nosuch"}); err == nil {
		t.Error("accepted unknown probe")
	}
	res, err := AC(nl, []float64{1e6}, map[string]float64{"vin": 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Mag("never"); err == nil {
		t.Error("Mag accepted unprobed node")
	}
	if _, err := res.InputImpedance("never", 1); err == nil {
		t.Error("InputImpedance accepted undriven source")
	}
}

func TestACMutualCouplingTransformer(t *testing.T) {
	// A 1:1 transformer with k ≈ 1 driving a resistor: at high
	// frequency the secondary voltage approaches k·V.
	l1, l2 := 10e-9, 10e-9
	k := 0.95
	m := k * math.Sqrt(l1*l2)
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.DC(0))
	nl.AddR("rs", "in", "p", 1e-3)
	i1 := nl.AddL("lp", "p", "0", l1)
	i2 := nl.AddL("ls", "s", "0", l2)
	nl.AddK("k", i1, i2, m)
	nl.AddR("rl", "s", "0", 1e6)
	res, err := AC(nl, []float64{10e9}, map[string]float64{"vin": 1}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	mag, _ := res.Mag("s")
	if math.Abs(mag[0]-k) > 0.01 {
		t.Errorf("secondary |V| = %g, want ≈ k = %g", mag[0], k)
	}
}
