package sim

import (
	"errors"
	"fmt"
	"math"

	"clockrlc/internal/check"
)

// checkDelay reports a measured delay that came out non-finite or
// negative through an armed check engine. A negative source-to-sink
// delay is physically impossible for these passive RLC networks — the
// sink cannot lead its driver — so it means the waveforms themselves
// are wrong (e.g. a diverged integration that slipped through).
func checkDelay(what string, d float64) error {
	eng := check.Active()
	if !eng.Armed() {
		return nil
	}
	if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		return eng.Report(&check.Violation{
			Stage: check.StageSim, Invariant: "delay finite and non-negative",
			Subject: what, Detail: fmt.Sprintf("delay = %g s", d),
		})
	}
	return nil
}

// CrossTime returns the first time the waveform crosses level in the
// given direction (rising: from below to at-or-above), using linear
// interpolation between samples. It returns an error when the
// waveform never crosses.
func CrossTime(t, v []float64, level float64, rising bool) (float64, error) {
	if len(t) != len(v) {
		return 0, fmt.Errorf("sim: CrossTime length mismatch %d vs %d", len(t), len(v))
	}
	if len(t) < 2 {
		return 0, errors.New("sim: CrossTime needs at least two samples")
	}
	for i := 1; i < len(t); i++ {
		a, b := v[i-1], v[i]
		var hit bool
		if rising {
			hit = a < level && b >= level
		} else {
			hit = a > level && b <= level
		}
		if hit {
			if b == a {
				return t[i], nil
			}
			f := (level - a) / (b - a)
			return t[i-1] + f*(t[i]-t[i-1]), nil
		}
	}
	return 0, fmt.Errorf("sim: waveform never crosses %g", level)
}

// Delay50 returns the 50 %-swing delay from waveform "from" to
// waveform "to", both sharing time axis t, for a transition from v0 to
// v1. This is the paper's delay metric (buffer output to sink).
func Delay50(t, from, to []float64, v0, v1 float64) (float64, error) {
	level := v0 + 0.5*(v1-v0)
	rising := v1 > v0
	t1, err := CrossTime(t, from, level, rising)
	if err != nil {
		return 0, fmt.Errorf("sim: source waveform: %w", err)
	}
	t2, err := CrossTime(t, to, level, rising)
	if err != nil {
		return 0, fmt.Errorf("sim: sink waveform: %w", err)
	}
	d := t2 - t1
	if err := checkDelay("Delay50", d); err != nil {
		return 0, err
	}
	return d, nil
}

// DelayFromT0 returns the time the waveform first reaches the 50 %
// level of a v0→v1 transition, measured from t = 0.
func DelayFromT0(t, v []float64, v0, v1 float64) (float64, error) {
	d, err := CrossTime(t, v, v0+0.5*(v1-v0), v1 > v0)
	if err != nil {
		return 0, err
	}
	if err := checkDelay("DelayFromT0", d); err != nil {
		return 0, err
	}
	return d, nil
}

// Overshoot returns the fractional overshoot of a waveform settling to
// final value vf from below: (max − vf)/|swing|. Zero when the
// waveform never exceeds vf. The undershoot of the subsequent ring is
// (vf − min after the peak)/|swing|, returned second.
func Overshoot(v []float64, v0, vf float64) (over, under float64) {
	swing := math.Abs(vf - v0)
	if swing == 0 || len(v) == 0 {
		return 0, 0
	}
	maxV := v[0]
	maxAt := 0
	for i, x := range v {
		if x > maxV {
			maxV, maxAt = x, i
		}
	}
	if maxV > vf {
		over = (maxV - vf) / swing
	}
	minAfter := maxV
	for _, x := range v[maxAt:] {
		if x < minAfter {
			minAfter = x
		}
	}
	if over > 0 && minAfter < vf {
		under = (vf - minAfter) / swing
	}
	return over, under
}

// RiseTime returns the 10 %–90 % rise time of a v0→v1 transition.
func RiseTime(t, v []float64, v0, v1 float64) (float64, error) {
	lo := v0 + 0.1*(v1-v0)
	hi := v0 + 0.9*(v1-v0)
	rising := v1 > v0
	t10, err := CrossTime(t, v, lo, rising)
	if err != nil {
		return 0, err
	}
	t90, err := CrossTime(t, v, hi, rising)
	if err != nil {
		return 0, err
	}
	return t90 - t10, nil
}

// Skew returns max − min over a set of delays, plus the index of the
// earliest and latest arrival.
func Skew(delays []float64) (skew float64, earliest, latest int) {
	if len(delays) == 0 {
		return 0, -1, -1
	}
	earliest, latest = 0, 0
	for i, d := range delays {
		if d < delays[earliest] {
			earliest = i
		}
		if d > delays[latest] {
			latest = i
		}
	}
	return delays[latest] - delays[earliest], earliest, latest
}
