package sim

import (
	"math"
	"testing"
)

func TestCrossTimeInterpolates(t *testing.T) {
	tm := []float64{0, 1, 2, 3}
	v := []float64{0, 0.4, 0.8, 1.0}
	got, err := CrossTime(tm, v, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	// Between samples 1 and 2: 0.4 → 0.8, crossing 0.5 at f = 0.25.
	if math.Abs(got-1.25) > 1e-12 {
		t.Errorf("CrossTime = %g, want 1.25", got)
	}
}

func TestCrossTimeFalling(t *testing.T) {
	tm := []float64{0, 1, 2}
	v := []float64{1, 0.6, 0.2}
	got, err := CrossTime(tm, v, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.25) > 1e-12 {
		t.Errorf("falling CrossTime = %g, want 1.25", got)
	}
}

func TestCrossTimeErrors(t *testing.T) {
	if _, err := CrossTime([]float64{0, 1}, []float64{0}, 0.5, true); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := CrossTime([]float64{0}, []float64{0}, 0.5, true); err == nil {
		t.Error("accepted single sample")
	}
	if _, err := CrossTime([]float64{0, 1}, []float64{0, 0.2}, 0.5, true); err == nil {
		t.Error("reported a crossing that never happens")
	}
}

func TestDelay50(t *testing.T) {
	tm := []float64{0, 1, 2, 3, 4}
	from := []float64{0, 1, 1, 1, 1} // crosses 0.5 at t = 0.5
	to := []float64{0, 0, 0, 1, 1}   // crosses 0.5 at t = 2.5
	d, err := Delay50(tm, from, to, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2.0) > 1e-12 {
		t.Errorf("Delay50 = %g, want 2", d)
	}
}

func TestOvershootAndUndershoot(t *testing.T) {
	v := []float64{0, 0.5, 1.3, 0.8, 1.05, 0.98, 1.0}
	over, under := Overshoot(v, 0, 1)
	if math.Abs(over-0.3) > 1e-12 {
		t.Errorf("overshoot = %g, want 0.3", over)
	}
	if math.Abs(under-0.2) > 1e-12 {
		t.Errorf("undershoot = %g, want 0.2", under)
	}
	// Monotone waveform: zero overshoot.
	over, under = Overshoot([]float64{0, 0.5, 0.9, 1.0}, 0, 1)
	if over != 0 || under != 0 {
		t.Errorf("monotone waveform reported over=%g under=%g", over, under)
	}
	// Degenerate inputs.
	if o, u := Overshoot(nil, 0, 1); o != 0 || u != 0 {
		t.Error("nil waveform must report zero")
	}
	if o, u := Overshoot([]float64{1, 2}, 1, 1); o != 0 || u != 0 {
		t.Error("zero swing must report zero")
	}
}

func TestRiseTime(t *testing.T) {
	// Linear ramp 0→1 over [0, 1]: 10–90 takes 0.8.
	tm := make([]float64, 101)
	v := make([]float64, 101)
	for i := range tm {
		tm[i] = float64(i) / 100
		v[i] = tm[i]
	}
	rt, err := RiseTime(tm, v, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rt-0.8) > 1e-9 {
		t.Errorf("RiseTime = %g, want 0.8", rt)
	}
}

func TestSkew(t *testing.T) {
	s, e, l := Skew([]float64{3, 1, 4, 1.5})
	if s != 3 || e != 1 || l != 2 {
		t.Errorf("Skew = (%g, %d, %d), want (3, 1, 2)", s, e, l)
	}
	if s, e, l := Skew(nil); s != 0 || e != -1 || l != -1 {
		t.Error("empty Skew must be degenerate")
	}
}
