// Package sim is the SPICE stand-in: a modified-nodal-analysis (MNA)
// transient simulator for the linear RLC(+K) netlists the extractor
// produces. Integration is trapezoidal with a fixed step; because the
// circuits are linear and time appears only in the sources, the system
// matrix is factored once and each step is a single back-substitution —
// exactly the structure SPICE exploits for linear networks.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"clockrlc/internal/linalg"
	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
)

// ErrDiverged is returned when a simulation's state vector stops
// being finite — numerical divergence or a poisoned source — instead
// of recording NaN/Inf waveforms that silently corrupt every derived
// delay and skew number.
var ErrDiverged = errors.New("sim: solution diverged (non-finite values)")

// simDiverged counts transient/AC runs aborted by the divergence
// guard.
var simDiverged = obs.GetCounter("sim.diverged")

// finiteVec reports whether every component of x is finite.
func finiteVec(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// cancelCheckStride bounds how many integration steps run between
// context polls: cancellation latency stays under a few dozen
// back-substitutions while the hot loop stays branch-cheap.
const cancelCheckStride = 64

// Transient-simulator accounting. Counters are bumped once per run
// (never inside the step loop) so the unobserved hot path is
// untouched; the histograms record per-run shape (system dimension,
// step count, timestep) for profiling the MNA workload.
var (
	simTransients = obs.GetCounter("sim.transients")
	simSteps      = obs.GetCounter("sim.steps")
	simFactors    = obs.GetCounter("sim.factorizations")
	simNs         = obs.GetCounter("sim.transient_ns")
	simDimHist    = obs.GetHistogram("sim.dim")
	simStepsHist  = obs.GetHistogram("sim.steps_per_run")
	simStepHist   = obs.GetHistogram("sim.timestep_seconds")
)

// mna holds the assembled descriptor system G·x + C·ẋ = b(t) where x
// stacks node voltages, inductor currents and source currents.
type mna struct {
	nl       *netlist.Netlist
	nodeIdx  map[string]int // node name → column (ground absent)
	nNodes   int
	indBase  int // first inductor-current column
	srcBase  int // first source-current column
	dim      int
	g, c     *linalg.Matrix
	srcNodes [][2]int // per source: (A idx, B idx), -1 = ground
}

func nodeOf(m map[string]int, name string) int {
	if name == netlist.Ground || name == "gnd" {
		return -1
	}
	return m[name]
}

func assemble(nl *netlist.Netlist) (*mna, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	nodes := nl.Nodes()
	m := &mna{
		nl:      nl,
		nodeIdx: make(map[string]int, len(nodes)),
		nNodes:  len(nodes),
	}
	for i, n := range nodes {
		m.nodeIdx[n] = i
	}
	m.indBase = m.nNodes
	m.srcBase = m.nNodes + len(nl.Inductors)
	m.dim = m.srcBase + len(nl.VSources)
	if m.dim == 0 {
		return nil, errors.New("sim: empty circuit")
	}
	m.g = linalg.NewMatrix(m.dim, m.dim)
	m.c = linalg.NewMatrix(m.dim, m.dim)

	stampPair := func(mat *linalg.Matrix, a, b int, v float64) {
		if a >= 0 {
			mat.Add(a, a, v)
		}
		if b >= 0 {
			mat.Add(b, b, v)
		}
		if a >= 0 && b >= 0 {
			mat.Add(a, b, -v)
			mat.Add(b, a, -v)
		}
	}
	for _, r := range nl.Resistors {
		stampPair(m.g, nodeOf(m.nodeIdx, r.A), nodeOf(m.nodeIdx, r.B), 1/r.R)
	}
	for _, c := range nl.Capacitors {
		stampPair(m.c, nodeOf(m.nodeIdx, c.A), nodeOf(m.nodeIdx, c.B), c.C)
	}
	for k, l := range nl.Inductors {
		row := m.indBase + k
		a, b := nodeOf(m.nodeIdx, l.A), nodeOf(m.nodeIdx, l.B)
		// KCL: branch current leaves A, enters B.
		if a >= 0 {
			m.g.Add(a, row, 1)
			m.g.Add(row, a, 1)
		}
		if b >= 0 {
			m.g.Add(b, row, -1)
			m.g.Add(row, b, -1)
		}
		// Branch equation: v_A − v_B − L·di/dt (− M terms) = 0.
		m.c.Add(row, row, -l.L)
	}
	for _, mu := range nl.Mutuals {
		r1 := m.indBase + mu.L1
		r2 := m.indBase + mu.L2
		m.c.Add(r1, r2, -mu.M)
		m.c.Add(r2, r1, -mu.M)
	}
	m.srcNodes = make([][2]int, len(nl.VSources))
	for k, v := range nl.VSources {
		row := m.srcBase + k
		a, b := nodeOf(m.nodeIdx, v.A), nodeOf(m.nodeIdx, v.B)
		m.srcNodes[k] = [2]int{a, b}
		if a >= 0 {
			m.g.Add(a, row, 1)
			m.g.Add(row, a, 1)
		}
		if b >= 0 {
			m.g.Add(b, row, -1)
			m.g.Add(row, b, -1)
		}
	}
	return m, nil
}

// rhs fills b(t): source rows carry the source voltages.
func (m *mna) rhs(t float64, b []float64) {
	for i := range b {
		b[i] = 0
	}
	for k, v := range m.nl.VSources {
		b[m.srcBase+k] = v.Wave.At(t)
	}
}

// Result holds a transient run: the time axis and the probed node
// voltage waveforms.
type Result struct {
	Time   []float64
	Probes map[string][]float64
}

// Waveform returns the samples for a probed node.
func (r *Result) Waveform(node string) ([]float64, error) {
	w, ok := r.Probes[node]
	if !ok {
		return nil, fmt.Errorf("sim: node %q was not probed", node)
	}
	return w, nil
}

// Transient runs a fixed-step trapezoidal simulation from 0 to tstop
// with step h, recording the voltages of the probe nodes (ground may
// be probed and is identically zero). The initial state is the DC
// operating point of the sources at t = 0.
func Transient(nl *netlist.Netlist, h, tstop float64, probes []string) (*Result, error) {
	return TransientCtx(context.Background(), nl, h, tstop, probes)
}

// TransientCtx is Transient honouring cancellation (polled every
// cancelCheckStride steps, so a cancel lands within a handful of
// back-substitutions) and guarded against divergence: the state
// vector is checked for NaN/Inf after every step and a non-finite
// state aborts with ErrDiverged naming the step instead of returning
// poisoned waveforms.
func TransientCtx(ctx context.Context, nl *netlist.Netlist, h, tstop float64, probes []string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if h <= 0 || tstop <= 0 || tstop < h {
		return nil, fmt.Errorf("sim: bad time grid (h=%g, tstop=%g)", h, tstop)
	}
	_, sp := obs.StartCtx(ctx, "sim.transient")
	defer sp.End()
	simTransients.Inc()
	simStepHist.Observe(h)
	defer obs.SinceNs(simNs, time.Now())
	m, err := assemble(nl)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("dim", m.dim)
	simDimHist.Observe(float64(m.dim))
	for _, p := range probes {
		if p == netlist.Ground || p == "gnd" {
			continue
		}
		if _, ok := m.nodeIdx[p]; !ok {
			return nil, fmt.Errorf("sim: unknown probe node %q", p)
		}
	}

	// DC operating point: G·x = b(0).
	b0 := make([]float64, m.dim)
	m.rhs(0, b0)
	gf, err := linalg.Factor(m.g)
	simFactors.Inc()
	if err != nil {
		return nil, fmt.Errorf("sim: DC operating point is singular (floating node or inductor loop): %w", err)
	}
	x, err := gf.Solve(b0)
	if err != nil {
		return nil, fmt.Errorf("sim: DC solve: %w", err)
	}
	if !finiteVec(x) {
		simDiverged.Inc()
		return nil, fmt.Errorf("sim: DC operating point: %w", ErrDiverged)
	}

	// Trapezoidal system matrix A = G + (2/h)·C, factored once.
	a := m.g.Clone()
	s := 2 / h
	for i, v := range m.c.Data {
		a.Data[i] += s * v
	}
	af, err := linalg.Factor(a)
	simFactors.Inc()
	if err != nil {
		return nil, fmt.Errorf("sim: transient matrix singular: %w", err)
	}

	steps := int(tstop/h + 0.5)
	// Bulk-add once per run; nothing observes inside the step loop.
	simSteps.Add(int64(steps))
	simStepsHist.Observe(float64(steps))
	sp.SetAttr("steps", steps)
	res := &Result{
		Time:   make([]float64, 0, steps+1),
		Probes: make(map[string][]float64, len(probes)),
	}
	record := func(t float64, x []float64) {
		res.Time = append(res.Time, t)
		for _, p := range probes {
			var v float64
			if idx := nodeOf(m.nodeIdx, p); idx >= 0 {
				v = x[idx]
			}
			res.Probes[p] = append(res.Probes[p], v)
		}
	}
	record(0, x)

	bNext := make([]float64, m.dim)
	rhsVec := make([]float64, m.dim)
	for n := 1; n <= steps; n++ {
		if n%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		t0 := float64(n-1) * h
		t1 := float64(n) * h
		// rhs = (2/h)C·x0 − G·x0 + b(t0) + b(t1)
		cx := m.c.MulVec(x)
		gx := m.g.MulVec(x)
		m.rhs(t0, rhsVec)
		m.rhs(t1, bNext)
		for i := range rhsVec {
			rhsVec[i] += bNext[i] + s*cx[i] - gx[i]
		}
		if !finiteVec(rhsVec) {
			simDiverged.Inc()
			return nil, fmt.Errorf("sim: step %d (t=%g s): right-hand side non-finite (bad source?): %w", n, t1, ErrDiverged)
		}
		x, err = af.Solve(rhsVec)
		if err != nil {
			return nil, fmt.Errorf("sim: step %d: %w", n, err)
		}
		if !finiteVec(x) {
			simDiverged.Inc()
			return nil, fmt.Errorf("sim: step %d (t=%g s): %w", n, t1, ErrDiverged)
		}
		record(t1, x)
	}
	return res, nil
}
