package sim

// Divergence guards and cancellation for the transient and AC
// engines.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"clockrlc/internal/netlist"
)

// nanAfter returns NaN past time t0 — a poisoned source that drives
// the MNA right-hand side non-finite mid-run.
type nanAfter struct{ t0 float64 }

func (w nanAfter) At(t float64) float64 {
	if t > w.t0 {
		return math.NaN()
	}
	return 1
}

func TestTransientDetectsPoisonedSource(t *testing.T) {
	nl := netlist.New()
	nl.AddV("vin", "in", "0", nanAfter{t0: 0.5e-9})
	nl.AddR("r", "in", "out", 1e3)
	nl.AddC("c", "out", "0", 1e-12)
	_, err := Transient(nl, 1e-11, 2e-9, []string{"out"})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("want ErrDiverged, got %v", err)
	}
}

func TestTransientCtxCancelsMidRun(t *testing.T) {
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.Ramp{V0: 0, V1: 1, Start: 0, Rise: 1e-10})
	nl.AddR("r", "in", "out", 1e3)
	nl.AddC("c", "out", "0", 1e-12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	// A very long horizon: without the in-loop cancellation checks this
	// run would take visible wall time.
	_, err := TransientCtx(ctx, nl, 1e-13, 1e-6, []string{"out"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if took := time.Since(t0); took > time.Second {
		t.Fatalf("cancelled transient returned after %v", took)
	}
}

func TestACCtxCancelsBetweenFrequencies(t *testing.T) {
	nl := netlist.New()
	nl.AddV("vin", "in", "0", netlist.DC(0))
	nl.AddR("r", "in", "out", 1e3)
	nl.AddC("c", "out", "0", 1e-12)
	freqs := make([]float64, 1000)
	for i := range freqs {
		freqs[i] = 1e6 * float64(i+1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ACCtx(ctx, nl, freqs, map[string]float64{"vin": 1}, []string{"out"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDivergenceCounterMoves(t *testing.T) {
	before := simDiverged.Value()
	nl := netlist.New()
	nl.AddV("vin", "in", "0", nanAfter{t0: 0})
	nl.AddR("r", "in", "out", 1e3)
	nl.AddC("c", "out", "0", 1e-12)
	if _, err := Transient(nl, 1e-11, 1e-9, []string{"out"}); err == nil {
		t.Fatal("poisoned run did not fail")
	}
	if simDiverged.Value() == before {
		t.Fatal("sim.diverged counter did not move")
	}
}
