package geom

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"clockrlc/internal/units"
)

func TestTraceValidate(t *testing.T) {
	good := Trace{Length: 1e-3, Width: 1e-6, Thickness: 1e-6}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	for _, bad := range []Trace{
		{Length: 0, Width: 1e-6, Thickness: 1e-6},
		{Length: 1e-3, Width: -1, Thickness: 1e-6},
		{Length: 1e-3, Width: 1e-6, Thickness: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid trace %+v accepted", bad)
		}
	}
}

func TestEdgeToEdgeSpacing(t *testing.T) {
	a := Trace{Y: 0, Width: units.Um(10), Length: 1, Thickness: 1e-6}
	b := Trace{Y: units.Um(8.5), Width: units.Um(5), Length: 1, Thickness: 1e-6}
	// centres 8.5 µm apart, half-widths 5 + 2.5 → spacing 1 µm.
	got := a.EdgeToEdgeSpacing(b)
	if math.Abs(got-units.Um(1)) > 1e-12 {
		t.Errorf("spacing = %g, want 1 µm", got)
	}
	// Symmetric.
	if d := b.EdgeToEdgeSpacing(a); math.Abs(d-got) > 1e-15 {
		t.Errorf("spacing not symmetric: %g vs %g", d, got)
	}
}

func TestCoplanarWaveguideFig1Geometry(t *testing.T) {
	// The Fig. 1 configuration: 6000 µm long, 2 µm thick, 10 µm signal,
	// 5 µm grounds, 1 µm spacing.
	b := CoplanarWaveguide(units.Um(6000), units.Um(10), units.Um(5), units.Um(1), units.Um(2), 0, units.RhoCopper)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(b.Traces) != 3 {
		t.Fatalf("trace count = %d", len(b.Traces))
	}
	sig := b.Traces[1]
	if sig.Width != units.Um(10) {
		t.Errorf("signal width = %g", sig.Width)
	}
	// Edge-to-edge spacing between signal and each ground must be 1 µm.
	for _, gi := range []int{0, 2} {
		s := sig.EdgeToEdgeSpacing(b.Traces[gi])
		if math.Abs(s-units.Um(1)) > 1e-12 {
			t.Errorf("spacing to trace %d = %g, want 1 µm", gi, s)
		}
	}
	if got := b.SignalIndices(); len(got) != 1 || got[0] != 1 {
		t.Errorf("SignalIndices = %v", got)
	}
	if got := b.GroundIndices(); len(got) != 2 {
		t.Errorf("GroundIndices = %v", got)
	}
}

func TestMicrostripPlaneBelow(t *testing.T) {
	gap := units.Um(2)
	pt := units.Um(1)
	b := Microstrip(units.Um(1000), units.Um(4), units.Um(4), units.Um(1), units.Um(1), units.Um(5), units.RhoCopper, gap, pt)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if b.PlaneBelow == nil {
		t.Fatal("microstrip has no plane below")
	}
	// Vertical clearance between trace bottom face and plane top face
	// must equal gap.
	traceBottom := b.Traces[1].Z - b.Traces[1].Thickness/2
	planeTop := b.PlaneBelow.Z + b.PlaneBelow.Thickness/2
	if math.Abs((traceBottom-planeTop)-gap) > 1e-15 {
		t.Errorf("plane gap = %g, want %g", traceBottom-planeTop, gap)
	}
	if b.PlaneAbove != nil {
		t.Error("microstrip must not have a plane above")
	}
}

func TestTraceArraySymmetry(t *testing.T) {
	b := TraceArray(5, units.Um(1000), units.Um(2), units.Um(2), units.Um(1), 0, units.RhoCopper)
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Centres symmetric about 0.
	n := len(b.Traces)
	for i := 0; i < n/2; i++ {
		if math.Abs(b.Traces[i].Y+b.Traces[n-1-i].Y) > 1e-18 {
			t.Errorf("array not symmetric: y[%d]=%g y[%d]=%g", i, b.Traces[i].Y, n-1-i, b.Traces[n-1-i].Y)
		}
	}
	// Outer traces grounded, inner not.
	if !b.IsGround[0] || !b.IsGround[4] || b.IsGround[2] {
		t.Errorf("ground flags = %v", b.IsGround)
	}
}

func TestBlockValidateRejects(t *testing.T) {
	tr := Trace{Length: 1e-3, Width: 1e-6, Thickness: 1e-6}
	cases := []struct {
		name string
		b    *Block
		want string
	}{
		{"empty", &Block{}, "no traces"},
		{"flag mismatch", &Block{Traces: []Trace{tr}, IsGround: nil}, "ground flags"},
		{"mixed lengths", &Block{
			Traces:   []Trace{tr, {Length: 2e-3, Width: 1e-6, Thickness: 1e-6}},
			IsGround: []bool{true, false},
		}, "one length"},
		{"no return", &Block{Traces: []Trace{tr}, IsGround: []bool{false}}, "return path"},
		{"bad plane", &Block{
			Traces: []Trace{tr}, IsGround: []bool{true},
			PlaneBelow: &GroundPlane{},
		}, "plane below"},
	}
	for _, c := range cases {
		err := c.b.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid block", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestLayerByName(t *testing.T) {
	tech := Technology{
		Name:   "t1",
		Layers: []Layer{{Name: "M5"}, {Name: "M6"}},
	}
	if _, err := tech.LayerByName("M6"); err != nil {
		t.Errorf("LayerByName(M6): %v", err)
	}
	if _, err := tech.LayerByName("M9"); err == nil {
		t.Error("LayerByName(M9) succeeded for missing layer")
	}
}

func TestShieldingString(t *testing.T) {
	if ShieldNone.String() != "coplanar" || ShieldMicrostrip.String() != "microstrip" ||
		ShieldStripline.String() != "stripline" {
		t.Error("Shielding.String mismatch")
	}
	if !strings.Contains(Shielding(42).String(), "42") {
		t.Error("unknown shielding should include its number")
	}
}

// Property: for any positive dimensions, the CPW constructor produces
// a valid block whose edge-to-edge spacings equal the request.
func TestQuickCoplanarWaveguide(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		length := units.Um(float64(a%100) + 10)
		sw := units.Um(float64(b%20)/2 + 0.5)
		gw := units.Um(float64(c%20)/2 + 0.5)
		sp := units.Um(float64(d%10)/2 + 0.25)
		blk := CoplanarWaveguide(length, sw, gw, sp, units.Um(1), 0, units.RhoCopper)
		if blk.Validate() != nil {
			return false
		}
		s := blk.Traces[1].EdgeToEdgeSpacing(blk.Traces[0])
		return math.Abs(s-sp) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestX1AndArea(t *testing.T) {
	tr := Trace{X0: units.Um(10), Length: units.Um(100), Width: units.Um(2), Thickness: units.Um(1)}
	if math.Abs(tr.X1()-units.Um(110)) > 1e-18 {
		t.Errorf("X1 = %g", tr.X1())
	}
	if math.Abs(tr.CrossSectionArea()-2e-12) > 1e-24 {
		t.Errorf("area = %g", tr.CrossSectionArea())
	}
}
