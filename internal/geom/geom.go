// Package geom models the interconnect geometry the extractor works
// on: rectangular traces, blocks of coplanar traces (Fig. 4 of the
// paper), metal layers, ground planes, and the shielding
// configurations used as clocktree building blocks (coplanar waveguide,
// Fig. 8; microstrip, Fig. 9; and stripline).
//
// Coordinate convention: traces run along the x axis ("length"), are
// laid out across y ("width" direction, where spacings are measured),
// and stacked in z (layer thicknesses). All dimensions are SI metres.
package geom

import (
	"errors"
	"fmt"
)

// Trace is a rectangular conductor of Length along x, Width across y
// and Thickness in z. X0 is the axial position of its near end, Y the
// coordinate of its width centre and Z the coordinate of its thickness
// centre.
type Trace struct {
	X0, Y, Z                 float64
	Length, Width, Thickness float64
}

// Validate reports whether the trace has physically meaningful
// dimensions.
func (t Trace) Validate() error {
	if t.Length <= 0 || t.Width <= 0 || t.Thickness <= 0 {
		return fmt.Errorf("geom: trace dimensions must be positive, got l=%g w=%g t=%g",
			t.Length, t.Width, t.Thickness)
	}
	return nil
}

// X1 returns the axial position of the far end.
func (t Trace) X1() float64 { return t.X0 + t.Length }

// CrossSectionArea returns w·t in m².
func (t Trace) CrossSectionArea() float64 { return t.Width * t.Thickness }

// EdgeToEdgeSpacing returns the y gap between the facing edges of t
// and o. A negative value means the traces overlap in y.
func (t Trace) EdgeToEdgeSpacing(o Trace) float64 {
	d := t.Y - o.Y
	if d < 0 {
		d = -d
	}
	return d - (t.Width+o.Width)/2
}

// Layer describes one routing layer of the technology stack.
type Layer struct {
	Name string
	// Z is the height of the layer's thickness centre above the
	// substrate reference, in metres.
	Z float64
	// Thickness is the nominal metal thickness.
	Thickness float64
	// Rho is the metal resistivity in Ω·m.
	Rho float64
	// MinWidth and MinSpacing are design-rule floors used by table
	// generators to choose sensible sweep ranges.
	MinWidth, MinSpacing float64
}

// GroundPlane describes a wide AC-ground conductor (continuous or
// densely meshed power/ground plane) in a vertically neighbouring
// layer, per Section II.B of the paper. It spans the full extent of
// the block above/below it.
type GroundPlane struct {
	// Z is the height of the plane's thickness centre.
	Z float64
	// Thickness of the plane metal.
	Thickness float64
	// Width of the plane across y. Must comfortably exceed the block
	// width for the local-ground-plane approximation to hold.
	Width float64
	// Rho is the plane resistivity in Ω·m.
	Rho float64
}

// Validate reports whether the plane is physically meaningful.
func (p GroundPlane) Validate() error {
	if p.Thickness <= 0 || p.Width <= 0 {
		return fmt.Errorf("geom: ground plane dimensions must be positive, got t=%g w=%g", p.Thickness, p.Width)
	}
	if p.Rho <= 0 {
		return fmt.Errorf("geom: ground plane resistivity must be positive, got %g", p.Rho)
	}
	return nil
}

// Technology is the stack description: ordered layers (bottom to top)
// and the inter-layer dielectric constant.
type Technology struct {
	Name   string
	Layers []Layer
	// EpsRel is the relative permittivity of the inter-layer
	// dielectric (SiO2 ≈ 3.9).
	EpsRel float64
}

// LayerByName finds a layer in the stack.
func (t *Technology) LayerByName(name string) (Layer, error) {
	for _, l := range t.Layers {
		if l.Name == name {
			return l, nil
		}
	}
	return Layer{}, fmt.Errorf("geom: technology %q has no layer %q", t.Name, name)
}

// Shielding enumerates the clocktree interconnect building blocks the
// paper considers.
type Shielding int

const (
	// ShieldNone is an isolated multiconductor system with no local
	// ground plane (returns are the coplanar ground traces only).
	ShieldNone Shielding = iota
	// ShieldMicrostrip adds a local ground plane below (layer N-2),
	// Fig. 9.
	ShieldMicrostrip
	// ShieldStripline adds local ground planes both below (N-2) and
	// above (N+2).
	ShieldStripline
)

// String implements fmt.Stringer.
func (s Shielding) String() string {
	switch s {
	case ShieldNone:
		return "coplanar"
	case ShieldMicrostrip:
		return "microstrip"
	case ShieldStripline:
		return "stripline"
	default:
		return fmt.Sprintf("Shielding(%d)", int(s))
	}
}

// Block is the extraction unit of Fig. 4: n coplanar traces of equal
// length in one layer, the two outermost of which are dedicated AC
// ground traces, optionally with ground planes above/below.
type Block struct {
	Traces []Trace
	// IsGround marks which traces are AC-grounded returns. By the
	// paper's convention the first and last are; interior signal
	// shields may be marked too.
	IsGround []bool
	// PlaneBelow/PlaneAbove are optional local ground planes
	// (Shielding configurations). Nil when absent.
	PlaneBelow, PlaneAbove *GroundPlane
	// Rho is the trace resistivity in Ω·m.
	Rho float64
}

// Validate checks structural invariants.
func (b *Block) Validate() error {
	if len(b.Traces) == 0 {
		return errors.New("geom: block has no traces")
	}
	if len(b.IsGround) != len(b.Traces) {
		return fmt.Errorf("geom: block has %d traces but %d ground flags", len(b.Traces), len(b.IsGround))
	}
	l := b.Traces[0].Length
	for i, tr := range b.Traces {
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("trace %d: %w", i, err)
		}
		if tr.Length != l {
			return fmt.Errorf("geom: block traces must share one length, trace %d has %g != %g", i, tr.Length, l)
		}
	}
	grounds := 0
	for _, g := range b.IsGround {
		if g {
			grounds++
		}
	}
	if grounds == 0 && b.PlaneBelow == nil && b.PlaneAbove == nil {
		return errors.New("geom: block has no return path (no ground traces or planes)")
	}
	if p := b.PlaneBelow; p != nil {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("plane below: %w", err)
		}
	}
	if p := b.PlaneAbove; p != nil {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("plane above: %w", err)
		}
	}
	return nil
}

// SignalIndices returns the indices of non-ground traces.
func (b *Block) SignalIndices() []int {
	var out []int
	for i, g := range b.IsGround {
		if !g {
			out = append(out, i)
		}
	}
	return out
}

// GroundIndices returns the indices of ground traces.
func (b *Block) GroundIndices() []int {
	var out []int
	for i, g := range b.IsGround {
		if g {
			out = append(out, i)
		}
	}
	return out
}

// CoplanarWaveguide constructs the paper's basic three-trace building
// block (Fig. 8): ground / signal / ground in one layer. The signal
// trace is centred at y = 0 with its near end at x = 0 and thickness
// centre at z.
func CoplanarWaveguide(length, sigWidth, gndWidth, spacing, thickness, z, rho float64) *Block {
	dy := sigWidth/2 + spacing + gndWidth/2
	b := &Block{
		Traces: []Trace{
			{X0: 0, Y: -dy, Z: z, Length: length, Width: gndWidth, Thickness: thickness},
			{X0: 0, Y: 0, Z: z, Length: length, Width: sigWidth, Thickness: thickness},
			{X0: 0, Y: +dy, Z: z, Length: length, Width: gndWidth, Thickness: thickness},
		},
		IsGround: []bool{true, false, true},
		Rho:      rho,
	}
	return b
}

// Microstrip constructs the Fig. 9 building block: the coplanar
// waveguide of CoplanarWaveguide plus a local ground plane a distance
// planeGap below the bottom face of the traces (edge to edge), with
// the given plane thickness. The plane width defaults to three times
// the block width, wide enough to behave as a local plane.
func Microstrip(length, sigWidth, gndWidth, spacing, thickness, z, rho, planeGap, planeThickness float64) *Block {
	b := CoplanarWaveguide(length, sigWidth, gndWidth, spacing, thickness, z, rho)
	blockWidth := 2*gndWidth + sigWidth + 2*spacing
	b.PlaneBelow = &GroundPlane{
		Z:         z - thickness/2 - planeGap - planeThickness/2,
		Thickness: planeThickness,
		Width:     3 * blockWidth,
		Rho:       rho,
	}
	return b
}

// TraceArray constructs a block of n equal-width traces with uniform
// spacing, first and last marked as grounds — the Fig. 4/Fig. 5 bus
// structure. Trace centres are symmetric around y = 0.
func TraceArray(n int, length, width, spacing, thickness, z, rho float64) *Block {
	if n < 2 {
		panic("geom: TraceArray needs at least 2 traces")
	}
	pitch := width + spacing
	y0 := -pitch * float64(n-1) / 2
	b := &Block{
		Traces:   make([]Trace, n),
		IsGround: make([]bool, n),
		Rho:      rho,
	}
	for i := 0; i < n; i++ {
		b.Traces[i] = Trace{
			X0: 0, Y: y0 + float64(i)*pitch, Z: z,
			Length: length, Width: width, Thickness: thickness,
		}
	}
	b.IsGround[0] = true
	b.IsGround[n-1] = true
	return b
}
