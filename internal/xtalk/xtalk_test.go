package xtalk

import (
	"sync"
	"testing"

	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

var (
	once sync.Once
	ext  *core.Extractor
	eErr error
)

func extractor(t *testing.T) *core.Extractor {
	t.Helper()
	once.Do(func() {
		tech := core.Technology{
			Thickness:      units.Um(2),
			Rho:            units.RhoCopper,
			EpsRel:         units.EpsSiO2,
			CapHeight:      units.Um(2),
			PlaneGap:       units.Um(2),
			PlaneThickness: units.Um(1),
		}
		axes := table.Axes{
			Widths:   table.LogAxis(units.Um(1), units.Um(14), 3),
			Spacings: table.LogAxis(units.Um(0.5), units.Um(10), 3),
			Lengths:  table.LogAxis(units.Um(100), units.Um(4000), 4),
		}
		ext, eErr = core.NewExtractor(tech, 6.4e9, axes, []geom.Shielding{geom.ShieldNone})
	})
	if eErr != nil {
		t.Fatal(eErr)
	}
	return ext
}

func baseScenario() Scenario {
	return Scenario{
		Victim: core.Segment{
			Length:      units.Um(2000),
			SignalWidth: units.Um(4),
			GroundWidth: units.Um(4),
			Spacing:     units.Um(1),
			Shielding:   geom.ShieldNone,
		},
		AggressorWidth:   units.Um(4),
		AggressorSpacing: units.Um(1),
		Sections:         6,
	}
}

func TestNoiseIsBoundedAndNonzero(t *testing.T) {
	res, err := Run(extractor(t), baseScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakNoise <= 0 {
		t.Fatal("no coupled noise at all — couplings are not wired")
	}
	// A well-shielded victim sees a small fraction of the 1 V swing.
	if res.PeakNoise > 0.15 {
		t.Errorf("peak noise %.3f V too large for a shielded victim", res.PeakNoise)
	}
	if len(res.Time) != len(res.VictimSink) || len(res.Time) == 0 {
		t.Error("waveform not recorded")
	}
}

func TestWiderShieldsReduceNoise(t *testing.T) {
	// The Section IV "at least equal width" experiment: noise decays
	// monotonically as the shields widen.
	pts, err := ShieldWidthSweep(extractor(t), baseScenario(), []float64{0.25, 0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PeakNoise >= pts[i-1].PeakNoise {
			t.Errorf("noise not decreasing with shield width: ratio %g → %.4f V, ratio %g → %.4f V",
				pts[i-1].WidthRatio, pts[i-1].PeakNoise, pts[i].WidthRatio, pts[i].PeakNoise)
		}
	}
	// Equal-width shields already suppress noise well below the
	// quarter-width case.
	if pts[2].PeakNoise > pts[0].PeakNoise/1.5 {
		t.Errorf("equal-width shields only reduce noise from %.4f to %.4f V",
			pts[0].PeakNoise, pts[2].PeakNoise)
	}
}

func TestShieldsSuppressCoupling(t *testing.T) {
	// Section IV's claim: the two guarded ground wires shield the
	// inductive coupling between the system and its environment. The
	// unshielded victim (same aggressor clearance to the victim as the
	// shielded case has to its shield) must see several times the
	// noise.
	e := extractor(t)
	shielded, err := Run(e, baseScenario())
	if err != nil {
		t.Fatal(err)
	}
	un := baseScenario()
	un.Unshielded = true
	unshielded, err := Run(e, un)
	if err != nil {
		t.Fatal(err)
	}
	if !(unshielded.PeakNoise > 3*shielded.PeakNoise) {
		t.Errorf("shielding gain too small: unshielded %.4f V vs shielded %.4f V",
			unshielded.PeakNoise, shielded.PeakNoise)
	}
}

func TestScenarioValidation(t *testing.T) {
	e := extractor(t)
	sc := baseScenario()
	sc.AggressorWidth = 0
	if _, err := Run(e, sc); err == nil {
		t.Error("accepted zero aggressor width")
	}
	sc = baseScenario()
	sc.Victim.Length = 0
	if _, err := Run(e, sc); err == nil {
		t.Error("accepted invalid victim")
	}
	if _, err := ShieldWidthSweep(e, baseScenario(), []float64{-1}); err == nil {
		t.Error("accepted negative width ratio")
	}
}
