// Package xtalk models the coupling of neighbouring signals into a
// shielded clock segment — Section V's point that "the coupling effect
// mainly inductive coupling of other signals next to the clocktree can
// be taken care of by simply adding them in the clocktree simulation",
// and Section IV's conclusion that ground wires of at least the signal
// width shield that coupling.
//
// A scenario places an aggressor wire beyond one ground shield of the
// victim's coplanar waveguide. All four wires are sectioned into PEEC
// bars with the full partial-inductance coupling matrix; the aggressor
// switches while the victim's driver holds low, and the victim sink's
// peak noise is measured with the MNA simulator. Capacitive coupling
// from aggressor to victim is blocked by the grounded shield (the
// 2-D field solver shows the across-shield capacitance is >10× below
// the adjacent coupling), so the noise observed is dominantly
// inductive — the regime the paper highlights.
package xtalk

import (
	"fmt"
	"math"

	"clockrlc/internal/capmodel"
	"clockrlc/internal/core"
	"clockrlc/internal/netlist"
	"clockrlc/internal/peec"
	"clockrlc/internal/resist"
	"clockrlc/internal/sim"
)

// Scenario describes an aggressor next to a shielded victim.
type Scenario struct {
	// Victim is the clock segment (3-wire CPW profile; Shielding must
	// be ShieldNone — the coplanar shields are modelled explicitly).
	Victim core.Segment
	// AggressorWidth and AggressorSpacing place the aggressor beyond
	// the right shield (edge-to-edge from the shield).
	AggressorWidth, AggressorSpacing float64
	// Sections per wire (default 8).
	Sections int
	// DriverRes drives both the victim (holding low) and the
	// aggressor (switching 0→1 V); default 40 Ω.
	DriverRes float64
	// RiseTime of the aggressor edge; default 50 ps.
	RiseTime float64
	// LoadCap at the victim and aggressor far ends; default 50 fF.
	LoadCap float64
	// Unshielded removes the two ground wires, leaving the victim to
	// return through the ideal rail only — the configuration the
	// paper's shielding rule protects against. The aggressor then sits
	// AggressorSpacing from the victim itself.
	Unshielded bool
}

func (s Scenario) withDefaults() Scenario {
	if s.Sections <= 0 {
		s.Sections = 8
	}
	if s.DriverRes <= 0 {
		s.DriverRes = 40
	}
	if s.RiseTime <= 0 {
		s.RiseTime = 50e-12
	}
	if s.LoadCap <= 0 {
		s.LoadCap = 50e-15
	}
	return s
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	if err := s.Victim.Validate(); err != nil {
		return err
	}
	if s.AggressorWidth <= 0 || s.AggressorSpacing <= 0 {
		return fmt.Errorf("xtalk: aggressor geometry must be positive (w=%g, s=%g)", s.AggressorWidth, s.AggressorSpacing)
	}
	return nil
}

// Result is one crosstalk run.
type Result struct {
	// PeakNoise is the largest |V| at the quiet victim's sink for a
	// 1 V aggressor swing.
	PeakNoise float64
	// Time and VictimSink hold the noise waveform.
	Time, VictimSink []float64
}

// Run simulates the scenario with extractor e's technology.
func Run(e *core.Extractor, sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	blk, err := e.Block(sc.Victim)
	if err != nil {
		return nil, err
	}
	caps, err := capmodel.BlockCaps(blk, e.Tech.CapHeight, e.Tech.EpsRel)
	if err != nil {
		return nil, err
	}
	// Aggressor capacitance: ground component plus grounded coupling
	// to the adjacent shield.
	aggGround, err := capmodel.GroundCap(sc.AggressorWidth, e.Tech.Thickness, e.Tech.CapHeight, e.Tech.EpsRel)
	if err != nil {
		return nil, err
	}
	aggCouple, err := capmodel.CouplingCap(sc.AggressorWidth, e.Tech.Thickness,
		e.Tech.CapHeight, sc.AggressorSpacing, e.Tech.EpsRel)
	if err != nil {
		return nil, err
	}

	// Bars: g1, victim, g2 from the block, plus the aggressor beyond
	// g2 — or just victim + aggressor for the unshielded comparison.
	var bars []peec.Bar
	var aggY float64
	zBottom := blk.Traces[0].Z - blk.Traces[0].Thickness/2
	if sc.Unshielded {
		vic := blk.Traces[1]
		aggY = vic.Y + vic.Width/2 + sc.AggressorSpacing + sc.AggressorWidth/2
		bars = append(bars, peec.BarFromTrace(vic))
	} else {
		g2 := blk.Traces[2]
		aggY = g2.Y + g2.Width/2 + sc.AggressorSpacing + sc.AggressorWidth/2
		for _, tr := range blk.Traces {
			bars = append(bars, peec.BarFromTrace(tr))
		}
	}
	bars = append(bars, peec.Bar{
		Axis: peec.AxisX,
		O:    [3]float64{0, aggY - sc.AggressorWidth/2, zBottom},
		L:    sc.Victim.Length, W: sc.AggressorWidth, T: e.Tech.Thickness,
	})

	n := sc.Sections
	secLen := sc.Victim.Length / float64(n)
	var secBars []peec.Bar
	for _, b := range bars {
		for k := 0; k < n; k++ {
			s := b
			s.O[0] = b.O[0] + float64(k)*secLen
			s.L = secLen
			secBars = append(secBars, s)
		}
	}
	lp := peec.PartialMatrix(secBars)

	nl := netlist.New()
	// Victim driver holds low through its output resistance; the
	// aggressor switches.
	nl.AddV("vagg", "adrv", netlist.Ground, netlist.Ramp{V0: 0, V1: 1, Start: 5e-12, Rise: sc.RiseTime})
	nl.AddR("ragg", "adrv", "a.in", sc.DriverRes)
	nl.AddV("vvic", "vdrv", netlist.Ground, netlist.DC(0))
	nl.AddR("rvic", "vdrv", "v.in", sc.DriverRes)

	type wire struct {
		name     string
		from, to string
		rTotal   float64
		cPerSec  float64
		grounded bool
	}
	rOf := func(w float64) (float64, error) {
		return resist.ACSkinArea(sc.Victim.Length, w, e.Tech.Thickness, e.Tech.Rho, e.Frequency)
	}
	rG, err := rOf(sc.Victim.GroundWidth)
	if err != nil {
		return nil, err
	}
	rV, err := rOf(sc.Victim.SignalWidth)
	if err != nil {
		return nil, err
	}
	rA, err := rOf(sc.AggressorWidth)
	if err != nil {
		return nil, err
	}
	vWire := wire{"v", "v.in", "v.out", rV, caps[1].Total() * sc.Victim.Length / float64(n), false}
	aWire := wire{"a", "a.in", "a.out", rA, (aggGround + aggCouple) * sc.Victim.Length / float64(n), false}
	var wires []wire
	if sc.Unshielded {
		// The victim keeps its total (grounded-coupling) capacitance;
		// the shields are simply absent from the inductive system.
		wires = []wire{vWire, aWire}
	} else {
		wires = []wire{
			{"g1", "", "", rG, 0, true},
			vWire,
			{"g2", "", "", rG, 0, true},
			aWire,
		}
	}
	const bondR = 1e-3
	inds := make([]int, len(secBars))
	for wi, w := range wires {
		prev := w.from
		if w.grounded {
			prev = fmt.Sprintf("%s.end0", w.name)
			nl.AddR(w.name+".bond0", prev, netlist.Ground, bondR)
		}
		for k := 0; k < n; k++ {
			bi := wi*n + k
			end := fmt.Sprintf("%s.n%d", w.name, k+1)
			if k == n-1 && !w.grounded {
				end = w.to
			}
			mid := fmt.Sprintf("%s.m%d", w.name, k)
			nl.AddR(fmt.Sprintf("%s.r%d", w.name, k), prev, mid, w.rTotal/float64(n))
			inds[bi] = nl.AddL(fmt.Sprintf("%s.l%d", w.name, k), mid, end, lp.At(bi, bi))
			if w.grounded {
				nl.AddR(fmt.Sprintf("%s.bond%d", w.name, k+1), end, netlist.Ground, bondR)
			} else if w.cPerSec > 0 {
				nl.AddC(fmt.Sprintf("%s.c%d", w.name, k), end, netlist.Ground, w.cPerSec)
			}
			prev = end
		}
	}
	for i := 0; i < len(secBars); i++ {
		for j := i + 1; j < len(secBars); j++ {
			if m := lp.At(i, j); m != 0 {
				nl.AddK(fmt.Sprintf("k.%d.%d", i, j), inds[i], inds[j], m)
			}
		}
	}
	nl.AddC("clv", "v.out", netlist.Ground, sc.LoadCap)
	nl.AddC("cla", "a.out", netlist.Ground, sc.LoadCap)

	horizon := 20 * sc.RiseTime
	res, err := sim.Transient(nl, sc.RiseTime/200, horizon, []string{"v.out"})
	if err != nil {
		return nil, fmt.Errorf("xtalk: %w", err)
	}
	v, _ := res.Waveform("v.out")
	out := &Result{Time: res.Time, VictimSink: v}
	for _, x := range v {
		if a := math.Abs(x); a > out.PeakNoise {
			out.PeakNoise = a
		}
	}
	return out, nil
}

// ShieldSweepPoint is one row of a shield-width sweep.
type ShieldSweepPoint struct {
	// WidthRatio is shield width / signal width.
	WidthRatio float64
	PeakNoise  float64
}

// ShieldWidthSweep measures victim noise as the shield width scales
// relative to the signal width — the experiment behind the paper's
// "at least equal width" shielding rule.
func ShieldWidthSweep(e *core.Extractor, base Scenario, ratios []float64) ([]ShieldSweepPoint, error) {
	var out []ShieldSweepPoint
	for _, r := range ratios {
		if r <= 0 {
			return nil, fmt.Errorf("xtalk: width ratio %g must be positive", r)
		}
		sc := base
		sc.Victim.GroundWidth = r * base.Victim.SignalWidth
		res, err := Run(e, sc)
		if err != nil {
			return nil, fmt.Errorf("xtalk: ratio %g: %w", r, err)
		}
		out = append(out, ShieldSweepPoint{WidthRatio: r, PeakNoise: res.PeakNoise})
	}
	return out, nil
}
