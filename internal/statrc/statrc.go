// Package statrc stands in for the paper's reference [4] ("Fast
// Generation of Statistically-based Worst-Case Modeling of On-Chip
// Interconnect"): a process-variation model that perturbs interconnect
// geometry (line width, metal thickness, dielectric height), from
// which statistically varied R and C — and, for the paper's key
// observation, nearly invariant L — are generated.
//
// Section V uses this to argue that the nominal inductance can be
// combined with statistically generated RC when studying process
// impact on clock skew.
package statrc

import (
	"fmt"
	"math"
	"math/rand"

	"clockrlc/internal/capmodel"
	"clockrlc/internal/core"
	"clockrlc/internal/netlist"
	"clockrlc/internal/resist"
)

// Variation holds the 1σ process variations. Edge bias is absolute —
// etch and lithography move metal edges by a distance that does not
// scale with the drawn width — while thickness (CMP) and dielectric
// height vary relative to their nominal values.
type Variation struct {
	// EdgeBiasSigma is the absolute 1σ displacement of each metal
	// edge, in metres (a line's width shifts by 2× this; the gap to a
	// neighbour shrinks by 2× this when both edges move outward).
	EdgeBiasSigma float64
	// ThicknessSigma is the relative 1σ of metal thickness (CMP).
	ThicknessSigma float64
	// HeightSigma is the relative 1σ of the inter-layer dielectric
	// height.
	HeightSigma float64
}

// Validate rejects negative or implausibly large sigmas.
func (v Variation) Validate() error {
	if v.EdgeBiasSigma < 0 || v.EdgeBiasSigma > 0.5e-6 {
		return fmt.Errorf("statrc: edge-bias sigma %g outside [0, 0.5 µm]", v.EdgeBiasSigma)
	}
	for _, s := range []float64{v.ThicknessSigma, v.HeightSigma} {
		if s < 0 || s > 0.3 {
			return fmt.Errorf("statrc: relative sigma %g outside [0, 0.3]", s)
		}
	}
	return nil
}

// Sample is one drawn process corner: an absolute edge bias (metres,
// positive widens lines and narrows gaps) plus multiplicative scales
// for thickness and dielectric height. Draw clamps to ±3σ.
type Sample struct {
	EdgeBias          float64
	Thickness, Height float64
}

// Draw samples a Gaussian process corner using the provided source.
func (v Variation) Draw(rng *rand.Rand) Sample {
	gauss := func() float64 {
		g := rng.NormFloat64()
		if g > 3 {
			g = 3
		}
		if g < -3 {
			g = -3
		}
		return g
	}
	return Sample{
		EdgeBias:  gauss() * v.EdgeBiasSigma,
		Thickness: 1 + gauss()*v.ThicknessSigma,
		Height:    1 + gauss()*v.HeightSigma,
	}
}

// Corner returns the deterministic k-sigma high-resistance corner:
// edges pulled in (narrower lines) and thinner metal. Dielectric
// height also shrinks, which raises area capacitance. (R and C do not
// share a single worst corner; this is the resistance-dominated one.)
func (v Variation) Corner(k float64) Sample {
	return Sample{
		EdgeBias:  -k * v.EdgeBiasSigma,
		Thickness: 1 - k*v.ThicknessSigma,
		Height:    1 - k*v.HeightSigma,
	}
}

// PerturbedRLC extracts a segment's R, C and L under the sample's
// geometry: R analytically from the scaled cross section, C from the
// capacitance models with scaled geometry, and L re-composed from the
// extractor's tables with the scaled widths. The point of the
// experiment: R and C shift by O(σ) while L barely moves.
func PerturbedRLC(e *core.Extractor, seg core.Segment, s Sample) (netlist.SegmentRLC, error) {
	if s.Thickness <= 0 || s.Height <= 0 {
		return netlist.SegmentRLC{}, fmt.Errorf("statrc: degenerate sample %+v", s)
	}
	p := seg
	p.SignalWidth += 2 * s.EdgeBias
	p.GroundWidth += 2 * s.EdgeBias
	p.Spacing -= 2 * s.EdgeBias
	if p.SignalWidth <= 0 || p.GroundWidth <= 0 {
		return netlist.SegmentRLC{}, fmt.Errorf("statrc: sample erases a wire (bias %g)", s.EdgeBias)
	}
	if p.Spacing <= 0 {
		return netlist.SegmentRLC{}, fmt.Errorf("statrc: sample closes the wire gap (spacing %g)", p.Spacing)
	}

	r, err := resist.ACSkinArea(p.Length, p.SignalWidth, e.Tech.Thickness*s.Thickness, e.Tech.Rho, e.Frequency)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	blk, err := e.Block(p)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	for i := range blk.Traces {
		blk.Traces[i].Thickness *= s.Thickness
	}
	caps, err := capmodel.BlockCaps(blk, e.Tech.CapHeight*s.Height, e.Tech.EpsRel)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	c := caps[1].Total() * p.Length

	l, err := e.LoopL(p)
	if err != nil {
		return netlist.SegmentRLC{}, err
	}
	return netlist.SegmentRLC{R: r, L: l, C: c}, nil
}

// Spread summarises a Monte-Carlo population.
type Spread struct {
	Mean, Sigma float64
}

// Rel returns σ/µ.
func (s Spread) Rel() float64 {
	if s.Mean == 0 {
		return math.Inf(1)
	}
	return s.Sigma / math.Abs(s.Mean)
}

// MonteCarlo draws n samples and returns the spreads of R, C and L for
// the segment. A deterministic seed makes experiments reproducible.
func MonteCarlo(e *core.Extractor, seg core.Segment, v Variation, n int, seed int64) (r, c, l Spread, err error) {
	if err = v.Validate(); err != nil {
		return
	}
	if n < 2 {
		err = fmt.Errorf("statrc: need at least 2 samples, got %d", n)
		return
	}
	rng := rand.New(rand.NewSource(seed))
	rs := make([]float64, 0, n)
	cs := make([]float64, 0, n)
	ls := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		rlc, e2 := PerturbedRLC(e, seg, v.Draw(rng))
		if e2 != nil {
			err = e2
			return
		}
		rs = append(rs, rlc.R)
		cs = append(cs, rlc.C)
		ls = append(ls, rlc.L)
	}
	return spread(rs), spread(cs), spread(ls), nil
}

func spread(xs []float64) Spread {
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var vv float64
	for _, x := range xs {
		d := x - mean
		vv += d * d
	}
	vv /= float64(len(xs) - 1)
	return Spread{Mean: mean, Sigma: math.Sqrt(vv)}
}
