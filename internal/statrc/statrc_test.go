package statrc

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

var (
	once sync.Once
	ext  *core.Extractor
	eErr error
)

func extractor(t *testing.T) *core.Extractor {
	t.Helper()
	once.Do(func() {
		tech := core.Technology{
			Thickness:      units.Um(2),
			Rho:            units.RhoCopper,
			EpsRel:         units.EpsSiO2,
			CapHeight:      units.Um(2),
			PlaneGap:       units.Um(2),
			PlaneThickness: units.Um(1),
		}
		axes := table.Axes{
			Widths:   table.LogAxis(units.Um(1), units.Um(14), 5),
			Spacings: table.LogAxis(units.Um(0.5), units.Um(22), 6),
			Lengths:  table.LogAxis(units.Um(100), units.Um(6000), 6),
		}
		ext, eErr = core.NewExtractor(tech, 3.2e9, axes, []geom.Shielding{geom.ShieldNone})
	})
	if eErr != nil {
		t.Fatal(eErr)
	}
	return ext
}

func seg() core.Segment {
	return core.Segment{
		Length:      units.Um(3000),
		SignalWidth: units.Um(10),
		GroundWidth: units.Um(5),
		Spacing:     units.Um(1.5),
		Shielding:   geom.ShieldNone,
	}
}

func typVariation() Variation {
	// 30 nm 1σ edge bias, 6 % CMP thickness, 5 % ILD height — typical
	// for the paper's technology generation.
	return Variation{EdgeBiasSigma: 0.03e-6, ThicknessSigma: 0.06, HeightSigma: 0.05}
}

func TestLInsensitiveToProcessVariation(t *testing.T) {
	e := extractor(t)
	r, c, l, err := MonteCarlo(e, seg(), typVariation(), 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: inductance is not sensitive to process
	// variation while R and C are. Require an order of magnitude.
	if !(l.Rel() < r.Rel()/5) {
		t.Errorf("σL/µL = %g not ≪ σR/µR = %g", l.Rel(), r.Rel())
	}
	if !(l.Rel() < c.Rel()/3) {
		t.Errorf("σL/µL = %g not ≪ σC/µC = %g", l.Rel(), c.Rel())
	}
	if l.Rel() > 0.01 {
		t.Errorf("σL/µL = %g, expected below 1%%", l.Rel())
	}
	if r.Rel() < 0.02 {
		t.Errorf("σR/µR = %g suspiciously small for 5–6%% geometry sigmas", r.Rel())
	}
}

func TestCornerDirections(t *testing.T) {
	e := extractor(t)
	nom, err := PerturbedRLC(e, seg(), Sample{Thickness: 1, Height: 1})
	if err != nil {
		t.Fatal(err)
	}
	worst, err := PerturbedRLC(e, seg(), typVariation().Corner(3))
	if err != nil {
		t.Fatal(err)
	}
	if !(worst.R > nom.R) {
		t.Errorf("3σ corner R %g not above nominal %g", worst.R, nom.R)
	}
	// L moves by well under the R move.
	dL := math.Abs(worst.L-nom.L) / nom.L
	dR := math.Abs(worst.R-nom.R) / nom.R
	if !(dL < dR/4) {
		t.Errorf("corner ΔL/L = %g not ≪ ΔR/R = %g", dL, dR)
	}
	// Capacitance direction isolated: thinner dielectric alone must
	// raise the total capacitance.
	thin, err := PerturbedRLC(e, seg(), Sample{Thickness: 1, Height: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if !(thin.C > nom.C) {
		t.Errorf("thinner ILD C %g not above nominal %g", thin.C, nom.C)
	}
}

func TestDrawClampsTo3Sigma(t *testing.T) {
	v := typVariation()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		s := v.Draw(rng)
		if math.Abs(s.EdgeBias) > 3*v.EdgeBiasSigma+1e-18 {
			t.Fatalf("edge bias sample %g beyond 3σ", s.EdgeBias)
		}
		if s.Thickness <= 0 || s.Height <= 0 {
			t.Fatalf("degenerate sample %+v", s)
		}
	}
}

func TestValidation(t *testing.T) {
	if err := (Variation{EdgeBiasSigma: -1e-9}).Validate(); err == nil {
		t.Error("accepted negative sigma")
	}
	if err := (Variation{HeightSigma: 0.5}).Validate(); err == nil {
		t.Error("accepted huge sigma")
	}
	if err := (Variation{EdgeBiasSigma: 1e-6}).Validate(); err == nil {
		t.Error("accepted micron-scale edge bias")
	}
	e := extractor(t)
	if _, err := PerturbedRLC(e, seg(), Sample{}); err == nil {
		t.Error("accepted zero sample")
	}
	// Edge growth that consumes the whole gap must fail loudly.
	s := seg()
	s.Spacing = units.Um(0.1)
	if _, err := PerturbedRLC(e, s, Sample{EdgeBias: 0.06e-6, Thickness: 1, Height: 1}); err == nil {
		t.Error("accepted a sample that closes the wire gap")
	}
	if _, _, _, err := MonteCarlo(e, seg(), typVariation(), 1, 0); err == nil {
		t.Error("accepted n=1")
	}
}

func TestSpreadRel(t *testing.T) {
	s := Spread{Mean: 0, Sigma: 1}
	if !math.IsInf(s.Rel(), 1) {
		t.Error("Rel of zero mean must be +Inf")
	}
	s = Spread{Mean: 10, Sigma: 1}
	if s.Rel() != 0.1 {
		t.Errorf("Rel = %g", s.Rel())
	}
}
