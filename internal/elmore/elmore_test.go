package elmore

import (
	"math"
	"testing"

	"clockrlc/internal/netlist"
	"clockrlc/internal/sim"
)

// simDelay measures the 50 % delay of the configuration with the MNA
// simulator (ideal step at t = 0+).
func simDelay(t *testing.T, l Line, sections int) float64 {
	t.Helper()
	nl := netlist.New()
	rise := 1e-13
	nl.AddV("v", "drv", "0", netlist.Ramp{V0: 0, V1: 1, Start: 1e-12, Rise: rise})
	nl.AddR("rd", "drv", "in", l.Rd)
	if _, err := nl.AddLadder("w", "in", "out", netlist.SegmentRLC{R: l.R, L: l.L, C: l.C}, sections); err != nil {
		t.Fatal(err)
	}
	if l.Cl > 0 {
		nl.AddC("cl", "out", "0", l.Cl)
	}
	res, err := sim.Transient(nl, 0.1e-12, 2000e-12, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Waveform("out")
	d, err := sim.DelayFromT0(res.Time, v, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d - (1e-12 + rise/2)
}

func TestElmoreDelayAgainstSimulation(t *testing.T) {
	// Overdamped RC-dominated lines: Elmore within its classic ~±25 %.
	cases := []Line{
		{Rd: 40, R: 5, C: 1e-12, Cl: 50e-15},
		{Rd: 100, R: 50, C: 0.5e-12, Cl: 20e-15},
		{Rd: 20, R: 200, C: 2e-12, Cl: 10e-15},
	}
	for _, l := range cases {
		l.L = 0
		est, err := ElmoreDelay(l)
		if err != nil {
			t.Fatal(err)
		}
		meas := simDelay(t, l, 12)
		if rel := math.Abs(est-meas) / meas; rel > 0.25 {
			t.Errorf("%+v: Elmore %g vs sim %g (rel %g)", l, est, meas, rel)
		}
	}
}

func TestTwoPoleDelayAgainstSimulation(t *testing.T) {
	// RLC lines across damping regimes.
	cases := []Line{
		{Rd: 40, R: 5, L: 2e-9, C: 1e-12, Cl: 50e-15},   // near critical
		{Rd: 25, R: 4, L: 4e-9, C: 0.8e-12, Cl: 30e-15}, // underdamped
		{Rd: 120, R: 30, L: 1e-9, C: 1e-12, Cl: 50e-15}, // overdamped
	}
	for _, l := range cases {
		est, err := TwoPoleDelay(l)
		if err != nil {
			t.Fatal(err)
		}
		meas := simDelay(t, l, 12)
		if rel := math.Abs(est-meas) / meas; rel > 0.30 {
			zeta, _ := DampingRatio(l)
			t.Errorf("%+v (ζ=%.2f): two-pole %g vs sim %g (rel %g)", l, zeta, est, meas, rel)
		}
	}
}

func TestTwoPoleBeatsElmoreForInductiveLines(t *testing.T) {
	// The reason RLC extraction matters: for an underdamped line the
	// RC (Elmore) estimate errs far more than the two-pole RLC one.
	l := Line{Rd: 25, R: 4, L: 4e-9, C: 0.8e-12, Cl: 30e-15}
	meas := simDelay(t, l, 12)
	rc := l
	rc.L = 0
	elm, err := ElmoreDelay(rc)
	if err != nil {
		t.Fatal(err)
	}
	two, err := TwoPoleDelay(l)
	if err != nil {
		t.Fatal(err)
	}
	errElm := math.Abs(elm - meas)
	errTwo := math.Abs(two - meas)
	if errTwo >= errElm {
		t.Errorf("two-pole error %g not below Elmore error %g (sim %g)", errTwo, errElm, meas)
	}
}

func TestDampingAndFlight(t *testing.T) {
	l := Line{Rd: 40, R: 5, L: 2e-9, C: 1e-12, Cl: 0}
	z, err := DampingRatio(l)
	if err != nil {
		t.Fatal(err)
	}
	want := (40 + 2.5) / 2 * math.Sqrt(1e-12/2e-9)
	if math.Abs(z-want) > 1e-12 {
		t.Errorf("ζ = %g, want %g", z, want)
	}
	if tof := TimeOfFlight(l); math.Abs(tof-math.Sqrt(2e-9*1e-12)) > 1e-18 {
		t.Errorf("tof = %g", tof)
	}
	rcOnly := l
	rcOnly.L = 0
	if z, _ := DampingRatio(rcOnly); !math.IsInf(z, 1) {
		t.Errorf("RC line ζ = %g, want +Inf", z)
	}
	if TimeOfFlight(rcOnly) != 0 {
		t.Error("RC line has no time of flight")
	}
}

func TestValidation(t *testing.T) {
	if _, err := ElmoreDelay(Line{}); err == nil {
		t.Error("accepted zero line")
	}
	if _, err := TwoPoleDelay(Line{Rd: 1, R: 1, C: 1e-12}); err == nil {
		t.Error("TwoPoleDelay accepted L = 0")
	}
	if _, err := DampingRatio(Line{Rd: -1, R: 1, C: 1e-12}); err == nil {
		t.Error("DampingRatio accepted negative Rd")
	}
}
