// Package elmore provides the closed-form delay estimators designers
// used before (and alongside) simulation: the Elmore RC delay and the
// Ismail–Friedman two-pole RLC model ("Effects of inductance on the
// propagation delay and repeater insertion in VLSI circuits",
// IEEE T-VLSI 2000 — contemporary with the paper). They serve as the
// fast baseline the paper's table-based extraction feeds when full
// transient simulation is not wanted, and as an independent sanity
// reference for the MNA simulator.
package elmore

import (
	"fmt"
	"math"

	"clockrlc/internal/check"
)

// Line is a driver + distributed line + load configuration: a driver
// of resistance Rd drives a wire with total R, L, C, loaded by Cl.
type Line struct {
	Rd      float64 // driver resistance, Ω
	R, L, C float64 // wire totals (L may be 0 for RC), H/F/Ω
	Cl      float64 // load capacitance, F
}

// Validate checks the configuration. NaNs are rejected explicitly: a
// NaN compares false against every bound, so the sign checks alone
// would wave a NaN field through into the delay formulas.
func (l Line) Validate() error {
	for _, v := range []float64{l.Rd, l.R, l.L, l.C, l.Cl} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("elmore: line has a non-finite field: %+v", l)
		}
	}
	if l.Rd <= 0 || l.R <= 0 || l.C <= 0 || l.Cl < 0 || l.L < 0 {
		return fmt.Errorf("elmore: line out of range: %+v", l)
	}
	return nil
}

// checkBound reports a closed-form delay bound that came out
// non-finite or negative through an armed check engine — with a
// validated line this can only happen if the formula itself is broken
// or a future refactor changes the equivalent-parameter algebra.
func checkBound(what string, d float64) error {
	eng := check.Active()
	if !eng.Armed() {
		return nil
	}
	if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		return eng.Report(&check.Violation{
			Stage: check.StageSim, Invariant: "closed-form delay bound finite and non-negative",
			Subject: what, Detail: fmt.Sprintf("t50 = %g s", d),
		})
	}
	return nil
}

// ElmoreDelay returns the classic 50 % RC delay estimate
//
//	t50 ≈ ln 2 · [ Rd·(C + Cl) + R·(C/2 + Cl) ]
//
// (the Elmore time constant of a driver plus distributed line plus
// load, scaled by ln 2 for the 50 % crossing of a single pole).
func ElmoreDelay(l Line) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	tau := l.Rd*(l.C+l.Cl) + l.R*(l.C/2+l.Cl)
	t50 := math.Ln2 * tau
	if err := checkBound("ElmoreDelay", t50); err != nil {
		return 0, err
	}
	return t50, nil
}

// TwoPoleDelay returns the Ismail–Friedman style two-pole estimate of
// the 50 % delay for an RLC line,
//
//	t50 ≈ (e^(−2.9·ζ^1.35) + 1.48·ζ) / ωn
//
// with the equivalent second-order parameters of the driver + line +
// load system:
//
//	ωn = 1/sqrt(L·Ct),  ζ = (Rt/2)·sqrt(Ct/L)
//	Rt = Rd + R/2,  Ct = C + Cl
//
// Using the full line capacitance in the equivalent makes 1/ωn track
// the distributed line's time of flight sqrt(L·C), which is what the
// 50 % arrival follows in the underdamped regime; validated against
// the MNA simulator across damping regimes in this package's tests.
// For L → 0 the estimate degenerates via the large-ζ branch, but use
// ElmoreDelay for pure RC lines.
func TwoPoleDelay(l Line) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if l.L <= 0 {
		return 0, fmt.Errorf("elmore: TwoPoleDelay needs L > 0 (got %g); use ElmoreDelay", l.L)
	}
	rt := l.Rd + l.R/2
	ct := l.C + l.Cl
	wn := 1 / math.Sqrt(l.L*ct)
	zeta := rt / 2 * math.Sqrt(ct/l.L)
	t50 := (math.Exp(-2.9*math.Pow(zeta, 1.35)) + 1.48*zeta) / wn
	if err := checkBound("TwoPoleDelay", t50); err != nil {
		return 0, err
	}
	return t50, nil
}

// DampingRatio returns ζ of the equivalent second-order system; below
// ~1 the response rings (the paper's Fig. 3 overshoot regime).
func DampingRatio(l Line) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if l.L <= 0 {
		return math.Inf(1), nil
	}
	rt := l.Rd + l.R/2
	ct := l.C + l.Cl
	return rt / 2 * math.Sqrt(ct/l.L), nil
}

// TimeOfFlight returns sqrt(L·C): the wave propagation time of the
// line, the lower bound on delay an RC model cannot see.
func TimeOfFlight(l Line) float64 {
	if l.L <= 0 {
		return 0
	}
	return math.Sqrt(l.L * l.C)
}
