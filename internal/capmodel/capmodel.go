// Package capmodel provides closed-form per-unit-length capacitance
// models for interconnect cross sections, the fast path that mirrors
// the paper's pre-characterised capacitance tables (ref. [4]). The
// numerical reference for these formulas is internal/field.
//
// The formulas are Sakurai's classical fitted expressions (T. Sakurai,
// "Closed-form expressions for interconnection delay, coupling, and
// crosstalk in VLSIs", IEEE T-ED 1993, and Sakurai & Tamaru 1983):
//
//	single line over plane:
//	  C1/ε = 1.15 (w/h) + 2.80 (t/h)^0.222
//	coupling between parallel neighbours:
//	  C2/ε = [0.03 (w/h) + 0.83 (t/h) − 0.07 (t/h)^0.222] (s/h)^−1.34
//
// with w the width, t the thickness, h the height above the return
// plane and s the edge-to-edge spacing. The fits are quoted accurate
// to ~10 % for 0.3 ≤ w/h ≤ 10 and 0.3 ≤ t/h, 0.5 ≤ s/h ≤ 10.
//
// Semantics: the fit decomposes a line's TOTAL capacitance into a
// ground component plus per-neighbour coupling components. That split
// does not coincide with the off-diagonal of the Maxwell matrix a
// field solver produces, but the total (ground + couplings) matches
// the Maxwell diagonal — which is exactly the quantity consumed by the
// paper's grounded-coupling netlist assumption. Tests in this package
// verify the totals against internal/field.
//
// Per the paper's capacitance treatment: coupling is short-range, so
// an n-trace problem decomposes into 3-trace subproblems (each trace
// with its two neighbours), and every coupling capacitor to an AC
// ground wire is treated as a perfectly grounded capacitor
// (Section VI's stated optimistic assumption).
package capmodel

import (
	"fmt"

	"math"

	"clockrlc/internal/geom"
	"clockrlc/internal/units"
)

// GroundCap returns the per-unit-length capacitance (F/m) of a single
// line of width w and thickness t at height h over a ground plane,
// in a dielectric of relative permittivity epsRel.
func GroundCap(w, t, h, epsRel float64) (float64, error) {
	if w <= 0 || t <= 0 || h <= 0 || epsRel <= 0 {
		return 0, fmt.Errorf("capmodel: GroundCap arguments must be positive (w=%g t=%g h=%g eps=%g)", w, t, h, epsRel)
	}
	eps := epsRel * units.Eps0
	return eps * (1.15*(w/h) + 2.80*math.Pow(t/h, 0.222)), nil
}

// CouplingCap returns the per-unit-length coupling capacitance (F/m)
// between two parallel lines of width w and thickness t at height h
// over a ground plane, separated edge-to-edge by s.
func CouplingCap(w, t, h, s, epsRel float64) (float64, error) {
	if w <= 0 || t <= 0 || h <= 0 || s <= 0 || epsRel <= 0 {
		return 0, fmt.Errorf("capmodel: CouplingCap arguments must be positive (w=%g t=%g h=%g s=%g eps=%g)", w, t, h, s, epsRel)
	}
	eps := epsRel * units.Eps0
	v := 0.03*(w/h) + 0.83*(t/h) - 0.07*math.Pow(t/h, 0.222)
	if v < 0 {
		// Outside the fit's validity (very thin lines); clamp at the
		// parallel-edge estimate rather than returning a negative C.
		v = t / h
	}
	return eps * v * math.Pow(s/h, -1.34), nil
}

// TraceCaps holds the decomposed capacitances of one trace within its
// 3-trace subproblem, per unit length.
type TraceCaps struct {
	// Ground is the capacitance to the reference plane below.
	Ground float64
	// Left and Right are the lateral coupling capacitances to the
	// neighbouring traces (zero at the array edges).
	Left, Right float64
}

// Total returns the grounded-coupling total: the paper treats every
// coupling capacitor to an AC ground wire as perfectly grounded, so a
// shielded signal trace's effective capacitance is the plain sum.
func (c TraceCaps) Total() float64 { return c.Ground + c.Left + c.Right }

// BlockCaps solves the paper's n-trace capacitance problem by
// reduction to 3-trace subproblems: each trace sees its ground
// capacitance plus coupling to its immediate neighbours only. h is
// the height of the trace bottom over the capacitive reference plane
// (the orthogonal layer below or an explicit ground plane).
func BlockCaps(b *geom.Block, h, epsRel float64) ([]TraceCaps, error) {
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("capmodel: %w", err)
	}
	n := len(b.Traces)
	out := make([]TraceCaps, n)
	for i, tr := range b.Traces {
		g, err := GroundCap(tr.Width, tr.Thickness, h, epsRel)
		if err != nil {
			return nil, err
		}
		out[i].Ground = g
		if i > 0 {
			s := tr.EdgeToEdgeSpacing(b.Traces[i-1])
			c, err := CouplingCap(tr.Width, tr.Thickness, h, s, epsRel)
			if err != nil {
				return nil, err
			}
			out[i].Left = c
		}
		if i < n-1 {
			s := tr.EdgeToEdgeSpacing(b.Traces[i+1])
			c, err := CouplingCap(tr.Width, tr.Thickness, h, s, epsRel)
			if err != nil {
				return nil, err
			}
			out[i].Right = c
		}
	}
	return out, nil
}
