package capmodel

import (
	"math"
	"testing"
	"testing/quick"

	"clockrlc/internal/field"
	"clockrlc/internal/geom"
	"clockrlc/internal/units"
)

func TestGroundCapAgainstFieldSolver(t *testing.T) {
	// A line over a plane, inside Sakurai's validity range.
	w, th, h := units.Um(2), units.Um(1), units.Um(2)
	analytic, err := GroundCap(w, th, h, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cond := []field.Rect{{Y0: -w / 2, Z0: 0, W: w, T: th}}
	plane := []field.Rect{{Y0: -units.Um(40), Z0: -h - units.Um(1), W: units.Um(80), T: units.Um(1)}}
	win := field.Window{
		Y0: -units.Um(30), Y1: units.Um(30),
		Z0: -h - units.Um(2), Z1: units.Um(20),
		NY: 241, NZ: 121,
	}
	c, err := field.CapacitanceMatrix(cond, plane, 1.0, win, field.Options{})
	if err != nil {
		t.Fatal(err)
	}
	numeric := c.At(0, 0)
	if rel := math.Abs(analytic-numeric) / numeric; rel > 0.15 {
		t.Errorf("GroundCap %g vs field solver %g (rel %g)", analytic, numeric, rel)
	}
}

func TestCouplingCapAgainstFieldSolver(t *testing.T) {
	w, th, h, s := units.Um(2), units.Um(1), units.Um(2), units.Um(2)
	analytic, err := CouplingCap(w, th, h, s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	conds := []field.Rect{
		{Y0: 0, Z0: 0, W: w, T: th},
		{Y0: w + s, Z0: 0, W: w, T: th},
	}
	plane := []field.Rect{{Y0: -units.Um(40), Z0: -h - units.Um(1), W: units.Um(80), T: units.Um(1)}}
	win := field.Window{
		Y0: -units.Um(25), Y1: units.Um(31),
		Z0: -h - units.Um(2), Z1: units.Um(20),
		NY: 225, NZ: 121,
	}
	c, err := field.CapacitanceMatrix(conds, plane, 1.0, win, field.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sakurai's fit decomposes a line's TOTAL capacitance into a
	// ground part and per-neighbour coupling parts; that split does not
	// coincide with the Maxwell matrix split, but the total — which is
	// what the paper's grounded-coupling netlist assumption consumes —
	// must agree with the Maxwell diagonal.
	g, err := GroundCap(w, th, h, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	total := g + analytic
	numeric := c.At(0, 0)
	if rel := math.Abs(total-numeric) / numeric; rel > 0.10 {
		t.Errorf("total C (ground %g + coupling %g = %g) vs field solver %g (rel %g)",
			g, analytic, total, numeric, rel)
	}
	// And the coupling component itself must at least be a fraction of
	// the Maxwell off-diagonal, never exceed the total.
	if analytic <= 0 || analytic >= numeric {
		t.Errorf("coupling %g outside (0, total %g)", analytic, numeric)
	}
}

func TestGroundCapMonotonicity(t *testing.T) {
	f := func(wq, hq uint8) bool {
		w := units.Um(float64(wq%40)/4 + 1)
		h := units.Um(float64(hq%20)/4 + 1)
		c1, err1 := GroundCap(w, units.Um(1), h, units.EpsSiO2)
		c2, err2 := GroundCap(w+units.Um(0.5), units.Um(1), h, units.EpsSiO2)
		c3, err3 := GroundCap(w, units.Um(1), h+units.Um(0.5), units.EpsSiO2)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		// Wider ⇒ more C; farther from plane ⇒ less C.
		return c2 > c1 && c3 < c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCouplingCapDecaysWithSpacing(t *testing.T) {
	prev := math.Inf(1)
	for _, s := range []float64{1, 2, 4, 8} {
		c, err := CouplingCap(units.Um(2), units.Um(1), units.Um(2), units.Um(s), units.EpsSiO2)
		if err != nil {
			t.Fatal(err)
		}
		if c >= prev {
			t.Fatalf("coupling C must decay with spacing: C(%g µm) = %g >= %g", s, c, prev)
		}
		prev = c
	}
}

func TestArgumentValidation(t *testing.T) {
	if _, err := GroundCap(0, 1, 1, 1); err == nil {
		t.Error("GroundCap accepted zero width")
	}
	if _, err := CouplingCap(1, 1, 1, 0, 1); err == nil {
		t.Error("CouplingCap accepted zero spacing")
	}
	if _, err := GroundCap(1, 1, 1, -3.9); err == nil {
		t.Error("GroundCap accepted negative permittivity")
	}
}

func TestCouplingCapNeverNegative(t *testing.T) {
	// Very thin lines push the fit coefficient negative; the clamp
	// must keep the physical sign.
	c, err := CouplingCap(units.Um(10), units.Um(0.05), units.Um(10), units.Um(1), units.EpsSiO2)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Errorf("coupling C = %g, want > 0", c)
	}
}

func TestBlockCapsFig1(t *testing.T) {
	b := geom.CoplanarWaveguide(units.Um(6000), units.Um(10), units.Um(5),
		units.Um(1), units.Um(2), 0, units.RhoCopper)
	caps, err := BlockCaps(b, units.Um(2), units.EpsSiO2)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 3 {
		t.Fatalf("got %d trace caps", len(caps))
	}
	sig := caps[1]
	// The centre trace has neighbours on both sides; edges have one.
	if sig.Left <= 0 || sig.Right <= 0 {
		t.Errorf("signal couplings = %+v, want both positive", sig)
	}
	if caps[0].Left != 0 || caps[2].Right != 0 {
		t.Errorf("edge traces must have zero outer coupling: %+v %+v", caps[0], caps[2])
	}
	// Symmetry: the two equal gaps give equal couplings.
	if math.Abs(sig.Left-sig.Right) > 1e-18 {
		t.Errorf("asymmetric couplings: %g vs %g", sig.Left, sig.Right)
	}
	// Total for the Fig. 1 signal: sanity band. 6 mm of 10 µm-wide
	// trace 2 µm over a plane is on the order of a picofarad.
	total := sig.Total() * units.Um(6000)
	if total < 0.3e-12 || total > 3e-12 {
		t.Errorf("Fig.1 signal total C = %g F, want O(1 pF)", total)
	}
	if sig.Total() <= sig.Ground {
		t.Error("Total must include couplings")
	}
}

func TestBlockCapsValidation(t *testing.T) {
	b := geom.CoplanarWaveguide(units.Um(100), units.Um(2), units.Um(2), units.Um(1), units.Um(1), 0, units.RhoCopper)
	if _, err := BlockCaps(b, 0, units.EpsSiO2); err == nil {
		t.Error("BlockCaps accepted zero height")
	}
	if _, err := BlockCaps(&geom.Block{}, units.Um(1), units.EpsSiO2); err == nil {
		t.Error("BlockCaps accepted invalid block")
	}
}
