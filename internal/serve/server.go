package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/cliobs"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

// Request accounting: requests by endpoint outcome, segments
// extracted through the service, and request latency.
var (
	srvRequests  = obs.GetCounter("serve.requests")
	srvErrors    = obs.GetCounter("serve.request_errors")
	srvSegments  = obs.GetCounter("serve.segments")
	srvLatency   = obs.GetHistogram("serve.request_seconds")
	srvInFlight  = obs.GetGauge("serve.inflight")
	srvInFlightN atomic.Int64
)

// maxBodyBytes bounds a request body; a batch of tens of thousands of
// segments fits comfortably.
const maxBodyBytes = 16 << 20

// Config parameterises the daemon's extraction service.
type Config struct {
	// Tech is the routing technology every request extracts against.
	Tech core.Technology
	// Axes are the table axes (zero value selects table.DefaultAxes).
	Axes table.Axes
	// Cache is the content-addressed on-disk cache backing the
	// registry; nil builds tables in memory only.
	Cache *table.Cache
	// MaxSets bounds the registry's resident table sets (0 =
	// unbounded); evicted sets munmap once their last request ends.
	MaxSets int
	// Workers bounds each request's extraction fan-out and any table
	// build's sweep pool (0 = GOMAXPROCS).
	Workers int
	// DefaultCheck is the physical-invariant policy applied when a
	// request does not select one.
	DefaultCheck check.Policy
	// DefaultLookup is the out-of-range lookup policy applied when a
	// request does not select one.
	DefaultLookup table.LookupPolicy
	// Observer routes the service's spans (nil = process default).
	Observer *obs.Observer
}

// Server is the extraction service: request handlers over a sharded
// refcounted registry of table sets. Create with New, mount Handler
// on an http.Server, and Close when drained.
type Server struct {
	cfg      Config
	reg      *Registry
	mux      *http.ServeMux
	inflight sync.WaitGroup
}

// New validates cfg and builds the service.
func New(cfg Config) (*Server, error) {
	if err := cfg.Tech.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Axes.Widths) == 0 && len(cfg.Axes.Spacings) == 0 && len(cfg.Axes.Lengths) == 0 {
		cfg.Axes = table.DefaultAxes()
	}
	if err := cfg.Axes.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg,
		reg: NewRegistry(cfg.Cache, cfg.MaxSets, cfg.Observer),
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/extract", s.instrument("extract", s.handleExtract))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	debug := cliobs.NewDebugMux()
	s.mux.Handle("/debug/", debug)
	s.mux.Handle("/metrics", debug)
	return s, nil
}

// Handler returns the service's HTTP handler: /v1/extract, /v1/batch,
// /healthz, /metrics (Prometheus text), /debug/vars and
// /debug/pprof/*.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the table-set registry (for tests and metrics).
func (s *Server) Registry() *Registry { return s.reg }

// Drain blocks until every in-flight request has finished or ctx
// expires. http.Server.Shutdown already refuses new connections and
// waits for active ones; Drain additionally covers handlers driven
// through Handler() directly (tests, embedding).
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close releases the registry's table sets. Call after Drain.
func (s *Server) Close() error { return s.reg.Close() }

// observer returns the configured observer or the process default.
func (s *Server) observer() *obs.Observer {
	if s.cfg.Observer != nil {
		return s.cfg.Observer
	}
	return obs.Default()
}

// SegmentRequest is one wire segment, in the units the CLIs use
// (micrometres; the response is SI).
type SegmentRequest struct {
	LengthUm      float64 `json:"length_um"`
	SignalWidthUm float64 `json:"signal_width_um"`
	GroundWidthUm float64 `json:"ground_width_um"`
	SpacingUm     float64 `json:"spacing_um"`
	// Shielding is "coplanar" (default), "microstrip" or "stripline".
	Shielding string `json:"shielding,omitempty"`
}

// BatchRequest extracts a batch of segments at one significant
// frequency. Check and LookupPolicy select per-request policies
// (empty = the server's defaults).
type BatchRequest struct {
	RiseTimePs   float64          `json:"rise_time_ps"`
	Check        string           `json:"check,omitempty"`
	LookupPolicy string           `json:"lookup_policy,omitempty"`
	Segments     []SegmentRequest `json:"segments"`
}

// ExtractRequest is BatchRequest's single-segment form: the segment
// fields are inlined.
type ExtractRequest struct {
	SegmentRequest
	RiseTimePs   float64 `json:"rise_time_ps"`
	Check        string  `json:"check,omitempty"`
	LookupPolicy string  `json:"lookup_policy,omitempty"`
}

// SegmentResult is one extracted segment, SI units.
type SegmentResult struct {
	ROhm float64 `json:"r_ohm"`
	LH   float64 `json:"l_h"`
	CF   float64 `json:"c_f"`
}

// BatchResponse carries results in input order.
type BatchResponse struct {
	Results []SegmentResult `json:"results"`
}

// errorResponse is every error body: {"error": "..."}.
type errorResponse struct {
	Error string `json:"error"`
}

// instrument wraps a handler with the in-flight waitgroup and the
// request counters/latency histogram.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		srvInFlight.Set(float64(srvInFlightN.Add(1)))
		srvRequests.Inc()
		t0 := time.Now()
		ctx, sp := s.observer().StartCtx(r.Context(), "serve."+name)
		defer func() {
			sp.End()
			srvLatency.Observe(time.Since(t0).Seconds())
			srvInFlight.Set(float64(srvInFlightN.Add(-1)))
			s.inflight.Done()
		}()
		h(w, r.WithContext(ctx))
	}
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req ExtractRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	out, err := s.extract(r.Context(), BatchRequest{
		RiseTimePs:   req.RiseTimePs,
		Check:        req.Check,
		LookupPolicy: req.LookupPolicy,
		Segments:     []SegmentRequest{req.SegmentRequest},
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toResult(out[0]))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	out, err := s.extract(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := BatchResponse{Results: make([]SegmentResult, len(out))}
	for i, rlc := range out {
		resp.Results[i] = toResult(rlc)
	}
	writeJSON(w, http.StatusOK, resp)
}

// badRequestError marks client-side validation failures (HTTP 400).
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// extract is the request core: resolve policies, pin the needed table
// sets in the registry, compose a per-request extractor over the
// shared sets, and run the vectorized batch path. Results are in
// input order; the first failing segment aborts the batch with an
// error naming its index.
func (s *Server) extract(ctx context.Context, req BatchRequest) ([]netlist.SegmentRLC, error) {
	if len(req.Segments) == 0 {
		return nil, &badRequestError{errors.New("no segments in request")}
	}
	if req.RiseTimePs <= 0 {
		return nil, &badRequestError{fmt.Errorf("rise_time_ps %g must be positive", req.RiseTimePs)}
	}
	checkPolicy := s.cfg.DefaultCheck
	if req.Check != "" {
		p, err := check.ParsePolicy(req.Check)
		if err != nil {
			return nil, &badRequestError{err}
		}
		checkPolicy = p
	}
	lookup := s.cfg.DefaultLookup
	if req.LookupPolicy != "" {
		p, err := table.ParseLookupPolicy(req.LookupPolicy)
		if err != nil {
			return nil, &badRequestError{err}
		}
		lookup = p
	}
	freq := units.SignificantFrequency(req.RiseTimePs * units.PicoSecond)

	segs := make([]core.Segment, len(req.Segments))
	needed := map[geom.Shielding]bool{}
	for i, sr := range req.Segments {
		sh, err := parseShielding(sr.Shielding)
		if err != nil {
			return nil, &badRequestError{fmt.Errorf("segment %d: %w", i, err)}
		}
		segs[i] = core.Segment{
			Length:      units.Um(sr.LengthUm),
			SignalWidth: units.Um(sr.SignalWidthUm),
			GroundWidth: units.Um(sr.GroundWidthUm),
			Spacing:     units.Um(sr.SpacingUm),
			Shielding:   sh,
		}
		if err := segs[i].Validate(); err != nil {
			return nil, &badRequestError{fmt.Errorf("segment %d: %w", i, err)}
		}
		needed[sh] = true
	}

	// Pin every needed set for the request's lifetime. The sets are
	// shared across requests; the per-request lookup policy rides a
	// shallow header copy, never a write to the shared set.
	var sets []*table.Set
	for sh := range needed {
		set, release, err := s.reg.Acquire(ctx, s.tableConfig(sh, freq), s.cfg.Axes)
		if err != nil {
			return nil, err
		}
		defer release()
		sets = append(sets, set.WithLookup(lookup))
	}
	ext, err := core.NewExtractorFromTables(s.cfg.Tech, freq, sets...)
	if err != nil {
		return nil, err
	}
	ext.Configure(core.WithChecks(checkPolicy), core.WithObserver(s.cfg.Observer))

	// The vectorized batch path: one spline contraction pass per
	// shielding group, repeated geometries deduped.
	out, err := ext.SegmentsRLCCtx(ctx, segs)
	if err != nil {
		return nil, err
	}
	srvSegments.Add(int64(len(out)))
	return out, nil
}

// tableConfig is the table identity a shielding configuration at a
// significant frequency resolves to — identical physics to what the
// CLIs build, so daemon and CLI share cache entries.
func (s *Server) tableConfig(sh geom.Shielding, freq float64) table.Config {
	return table.Config{
		Name:           "serve/" + sh.String(),
		Thickness:      s.cfg.Tech.Thickness,
		Rho:            s.cfg.Tech.Rho,
		Shielding:      sh,
		PlaneGap:       s.cfg.Tech.PlaneGap,
		PlaneThickness: s.cfg.Tech.PlaneThickness,
		Frequency:      freq,
		Workers:        s.cfg.Workers,
	}
}

func parseShielding(s string) (geom.Shielding, error) {
	switch s {
	case "", "coplanar":
		return geom.ShieldNone, nil
	case "microstrip":
		return geom.ShieldMicrostrip, nil
	case "stripline":
		return geom.ShieldStripline, nil
	}
	return 0, fmt.Errorf("bad shielding %q (want coplanar, microstrip or stripline)", s)
}

func toResult(rlc netlist.SegmentRLC) SegmentResult {
	return SegmentResult{ROhm: rlc.R, LH: rlc.L, CF: rlc.C}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, &badRequestError{fmt.Errorf("bad request body: %w", err)})
		return false
	}
	return true
}

// writeError maps an extraction failure to a status code: client
// mistakes (malformed request, bad geometry, out-of-range lookups
// under the error policy, strict-check violations of the request's
// own data) are 4xx; a cancelled request reports 503 (the daemon is
// draining) and everything else 500.
func writeError(w http.ResponseWriter, err error) {
	srvErrors.Inc()
	status := http.StatusInternalServerError
	var bad *badRequestError
	switch {
	case errors.As(err, &bad), errors.Is(err, core.ErrBadGeometry):
		status = http.StatusBadRequest
	case errors.Is(err, table.ErrOutOfRange), errors.Is(err, check.ErrViolation):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if status != http.StatusOK {
		enc.SetIndent("", "  ") // error bodies are read by humans
	}
	enc.Encode(v)
}
