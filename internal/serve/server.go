package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/cliobs"
	"clockrlc/internal/core"
	"clockrlc/internal/fault"
	"clockrlc/internal/geom"
	"clockrlc/internal/netlist"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

// Request accounting: requests by endpoint outcome, segments
// extracted through the service, and request latency. Overload
// accounting: shed counts requests refused by admission control
// (429), deadline_exceeded counts requests whose per-request budget
// fired (503), client_gone counts requests whose client disconnected
// before the response (499), and panics counts handler panics
// recovered into 500s.
var (
	srvRequests  = obs.GetCounter("serve.requests")
	srvErrors    = obs.GetCounter("serve.request_errors")
	srvSegments  = obs.GetCounter("serve.segments")
	srvLatency   = obs.GetHistogram("serve.request_seconds")
	srvInFlight  = obs.GetGauge("serve.inflight")
	srvShed      = obs.GetCounter("serve.shed")
	srvDeadline  = obs.GetCounter("serve.deadline_exceeded")
	srvGone      = obs.GetCounter("serve.client_gone")
	srvPanics    = obs.GetCounter("serve.panics")
	srvInFlightN atomic.Int64
)

// StatusClientClosedRequest is nginx's 499: the client went away
// before the response; no standard code covers it and the distinction
// from a server-caused 503 matters when reading overload dashboards.
const StatusClientClosedRequest = 499

// maxBodyBytes bounds a request body; a batch of tens of thousands of
// segments fits comfortably.
const maxBodyBytes = 16 << 20

// Config parameterises the daemon's extraction service.
type Config struct {
	// Tech is the routing technology every request extracts against.
	Tech core.Technology
	// Axes are the table axes (zero value selects table.DefaultAxes).
	Axes table.Axes
	// Cache is the content-addressed on-disk cache backing the
	// registry; nil builds tables in memory only.
	Cache *table.Cache
	// MaxSets bounds the registry's resident table sets (0 =
	// unbounded); evicted sets munmap once their last request ends.
	MaxSets int
	// Workers bounds each request's extraction fan-out and any table
	// build's sweep pool (0 = GOMAXPROCS).
	Workers int
	// DefaultCheck is the physical-invariant policy applied when a
	// request does not select one.
	DefaultCheck check.Policy
	// DefaultLookup is the out-of-range lookup policy applied when a
	// request does not select one.
	DefaultLookup table.LookupPolicy
	// Observer routes the service's spans (nil = process default).
	Observer *obs.Observer

	// MaxInFlight bounds concurrently admitted extract/batch requests
	// (0 = unbounded: admission control off).
	MaxInFlight int
	// QueueDepth bounds requests waiting for an admission slot; at
	// capacity with a full queue the daemon sheds with 429 +
	// Retry-After. 0 means shed immediately at capacity.
	QueueDepth int
	// QueueWait bounds how long a queued request waits before being
	// shed (0 = 1s). Only meaningful with MaxInFlight > 0.
	QueueWait time.Duration
	// RequestTimeout is the per-request extraction budget wrapped into
	// the request context; clients may lower it (or set their own when
	// this is 0) via timeout_ms, but never raise it past this cap.
	// 0 = no server-imposed deadline.
	RequestTimeout time.Duration
	// BreakerFailures opens a table key's cold-build circuit breaker
	// after that many consecutive fill failures (0 = breaker off).
	BreakerFailures int
	// BreakerCooldown is how long an open circuit sheds cold requests
	// for that key before admitting a half-open probe (0 = 5s).
	BreakerCooldown time.Duration

	// now overrides the breaker clock in tests; nil means time.Now.
	now func() time.Time
}

// Server is the extraction service: request handlers over a sharded
// refcounted registry of table sets. Create with New, mount Handler
// on an http.Server, and Close when drained.
type Server struct {
	cfg      Config
	reg      *Registry
	adm      *admitter
	mux      *http.ServeMux
	inflight sync.WaitGroup
	draining atomic.Bool
}

// New validates cfg and builds the service.
func New(cfg Config) (*Server, error) {
	if err := cfg.Tech.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Axes.Widths) == 0 && len(cfg.Axes.Spacings) == 0 && len(cfg.Axes.Lengths) == 0 {
		cfg.Axes = table.DefaultAxes()
	}
	if err := cfg.Axes.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg,
		reg: NewRegistry(RegistryOptions{
			Cache:           cfg.Cache,
			MaxSets:         cfg.MaxSets,
			Observer:        cfg.Observer,
			BreakerFailures: cfg.BreakerFailures,
			BreakerCooldown: cfg.BreakerCooldown,
			Now:             cfg.now,
		}),
		adm: newAdmitter(cfg.MaxInFlight, cfg.QueueDepth, cfg.QueueWait),
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/extract", s.instrument("extract", s.handleExtract))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	debug := cliobs.NewDebugMux()
	s.mux.Handle("/debug/", debug)
	s.mux.Handle("/metrics", debug)
	return s, nil
}

// handleHealthz is the readiness probe: "ok" while serving, 503
// "draining" once StartDrain has been called so load balancers stop
// routing during the drain window. The breaker line gives operators
// the one number the runbook keys off: how many table keys are
// currently refusing cold builds.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	open := s.reg.OpenBreakers()
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		fmt.Fprintf(w, "breakers_open %d\n", open)
		return
	}
	fmt.Fprintln(w, "ok")
	fmt.Fprintf(w, "breakers_open %d\n", open)
}

// StartDrain flips readiness: /healthz starts answering 503 and new
// extract/batch requests are refused with 503 + Retry-After, while
// already-admitted requests run to completion. Call before
// http.Server.Shutdown so load balancers observe the flip while the
// listener still accepts probes.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP handler: /v1/extract, /v1/batch,
// /healthz, /metrics (Prometheus text), /debug/vars and
// /debug/pprof/*.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the table-set registry (for tests and metrics).
func (s *Server) Registry() *Registry { return s.reg }

// Drain blocks until every in-flight request has finished or ctx
// expires. http.Server.Shutdown already refuses new connections and
// waits for active ones; Drain additionally covers handlers driven
// through Handler() directly (tests, embedding).
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close releases the registry's table sets. Call after Drain.
func (s *Server) Close() error { return s.reg.Close() }

// observer returns the configured observer or the process default.
func (s *Server) observer() *obs.Observer {
	if s.cfg.Observer != nil {
		return s.cfg.Observer
	}
	return obs.Default()
}

// SegmentRequest is one wire segment, in the units the CLIs use
// (micrometres; the response is SI).
type SegmentRequest struct {
	LengthUm      float64 `json:"length_um"`
	SignalWidthUm float64 `json:"signal_width_um"`
	GroundWidthUm float64 `json:"ground_width_um"`
	SpacingUm     float64 `json:"spacing_um"`
	// Shielding is "coplanar" (default), "microstrip" or "stripline".
	Shielding string `json:"shielding,omitempty"`
}

// BatchRequest extracts a batch of segments at one significant
// frequency. Check and LookupPolicy select per-request policies
// (empty = the server's defaults). TimeoutMs lowers the per-request
// extraction budget below the server's -request-timeout (it can never
// raise it past that cap).
type BatchRequest struct {
	RiseTimePs   float64          `json:"rise_time_ps"`
	Check        string           `json:"check,omitempty"`
	LookupPolicy string           `json:"lookup_policy,omitempty"`
	TimeoutMs    float64          `json:"timeout_ms,omitempty"`
	Segments     []SegmentRequest `json:"segments"`
}

// ExtractRequest is BatchRequest's single-segment form: the segment
// fields are inlined.
type ExtractRequest struct {
	SegmentRequest
	RiseTimePs   float64 `json:"rise_time_ps"`
	Check        string  `json:"check,omitempty"`
	LookupPolicy string  `json:"lookup_policy,omitempty"`
	TimeoutMs    float64 `json:"timeout_ms,omitempty"`
}

// SegmentResult is one extracted segment, SI units.
type SegmentResult struct {
	ROhm float64 `json:"r_ohm"`
	LH   float64 `json:"l_h"`
	CF   float64 `json:"c_f"`
}

// BatchResponse carries results in input order.
type BatchResponse struct {
	Results []SegmentResult `json:"results"`
}

// errorResponse is every error body: {"error": "..."}.
type errorResponse struct {
	Error string `json:"error"`
}

// statusWriter records whether (and with what status) a handler has
// responded, so the panic recovery path knows if a best-effort 500 is
// still possible and tests can observe the mapped status.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.wrote = true
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.wrote = true
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// instrument wraps a handler with the in-flight waitgroup, the
// request counters/latency histogram, admission control, the drain
// gate, and panic isolation. The recover runs inside the same
// deferred function that re-arms the waitgroup, so a panicking
// handler still reaches inflight.Done and Drain can never deadlock on
// a crashed request.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		srvInFlight.Set(float64(srvInFlightN.Add(1)))
		srvRequests.Inc()
		t0 := time.Now()
		ctx, sp := s.observer().StartCtx(r.Context(), "serve."+name)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				srvPanics.Inc()
				srvErrors.Inc()
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError,
						errorResponse{Error: fmt.Sprintf("internal error: handler panic: %v", p)})
				}
			}
			sp.End()
			srvLatency.Observe(time.Since(t0).Seconds())
			srvInFlight.Set(float64(srvInFlightN.Add(-1)))
			s.inflight.Done()
		}()
		if s.draining.Load() {
			sw.Header().Set("Retry-After", "1")
			srvErrors.Inc()
			writeJSON(sw, http.StatusServiceUnavailable, errorResponse{Error: "serve: draining"})
			return
		}
		release, err := s.admitRequest(ctx)
		if err != nil {
			s.writeRequestError(sw, r, ctx, err)
			return
		}
		defer release()
		h(sw, r.WithContext(ctx))
	}
}

// admitRequest runs the serve.admit fault point and the admission
// semaphore; either can shed the request.
func (s *Server) admitRequest(ctx context.Context) (func(), error) {
	if err := fault.Check(fault.ServeAdmit); err != nil {
		return nil, &ShedError{Reason: "injected", RetryAfter: time.Second}
	}
	return s.adm.admit(ctx)
}

// requestBudget resolves the effective extraction deadline from the
// server cap and the client's timeout_ms. The client may only lower
// the server's budget; with no server cap the client's value is
// taken as-is.
func (s *Server) requestBudget(timeoutMs float64) (time.Duration, error) {
	if timeoutMs < 0 || math.IsNaN(timeoutMs) || math.IsInf(timeoutMs, 0) {
		return 0, &badRequestError{fmt.Errorf("timeout_ms %g must be a non-negative number", timeoutMs)}
	}
	client := time.Duration(timeoutMs * float64(time.Millisecond))
	server := s.cfg.RequestTimeout
	switch {
	case client <= 0:
		return server, nil
	case server > 0 && client > server:
		return server, nil
	default:
		return client, nil
	}
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	var req ExtractRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	s.serveBatch(w, r, BatchRequest{
		RiseTimePs:   req.RiseTimePs,
		Check:        req.Check,
		LookupPolicy: req.LookupPolicy,
		TimeoutMs:    req.TimeoutMs,
		Segments:     []SegmentRequest{req.SegmentRequest},
	}, func(out []netlist.SegmentRLC) any { return toResult(out[0]) })
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	s.serveBatch(w, r, req, func(out []netlist.SegmentRLC) any {
		resp := BatchResponse{Results: make([]SegmentResult, len(out))}
		for i, rlc := range out {
			resp.Results[i] = toResult(rlc)
		}
		return resp
	})
}

// serveBatch is the shared handler body: resolve the request budget,
// run the extraction under it, classify any failure, and encode the
// response (crossing the serve.respond fault point).
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, req BatchRequest,
	shape func([]netlist.SegmentRLC) any) {
	budget, err := s.requestBudget(req.TimeoutMs)
	if err != nil {
		s.writeRequestError(w, r, r.Context(), err)
		return
	}
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	out, err := s.extract(ctx, req)
	if err == nil {
		err = fault.Check(fault.ServeRespond)
	}
	if err != nil {
		s.writeRequestError(w, r, ctx, err)
		return
	}
	writeJSON(w, http.StatusOK, shape(out))
}

// badRequestError marks client-side validation failures (HTTP 400).
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// extract is the request core: resolve policies, pin the needed table
// sets in the registry, compose a per-request extractor over the
// shared sets, and run the vectorized batch path. Results are in
// input order; the first failing segment aborts the batch with an
// error naming its index.
func (s *Server) extract(ctx context.Context, req BatchRequest) ([]netlist.SegmentRLC, error) {
	if len(req.Segments) == 0 {
		return nil, &badRequestError{errors.New("no segments in request")}
	}
	if req.RiseTimePs <= 0 {
		return nil, &badRequestError{fmt.Errorf("rise_time_ps %g must be positive", req.RiseTimePs)}
	}
	checkPolicy := s.cfg.DefaultCheck
	if req.Check != "" {
		p, err := check.ParsePolicy(req.Check)
		if err != nil {
			return nil, &badRequestError{err}
		}
		checkPolicy = p
	}
	lookup := s.cfg.DefaultLookup
	if req.LookupPolicy != "" {
		p, err := table.ParseLookupPolicy(req.LookupPolicy)
		if err != nil {
			return nil, &badRequestError{err}
		}
		lookup = p
	}
	freq := units.SignificantFrequency(req.RiseTimePs * units.PicoSecond)

	segs := make([]core.Segment, len(req.Segments))
	needed := map[geom.Shielding]bool{}
	for i, sr := range req.Segments {
		sh, err := parseShielding(sr.Shielding)
		if err != nil {
			return nil, &badRequestError{fmt.Errorf("segment %d: %w", i, err)}
		}
		segs[i] = core.Segment{
			Length:      units.Um(sr.LengthUm),
			SignalWidth: units.Um(sr.SignalWidthUm),
			GroundWidth: units.Um(sr.GroundWidthUm),
			Spacing:     units.Um(sr.SpacingUm),
			Shielding:   sh,
		}
		if err := segs[i].Validate(); err != nil {
			return nil, &badRequestError{fmt.Errorf("segment %d: %w", i, err)}
		}
		needed[sh] = true
	}

	// Pin every needed set for the request's lifetime. The sets are
	// shared across requests; the per-request lookup policy rides a
	// shallow header copy, never a write to the shared set.
	var sets []*table.Set
	for sh := range needed {
		set, release, err := s.reg.Acquire(ctx, s.tableConfig(sh, freq), s.cfg.Axes)
		if err != nil {
			return nil, err
		}
		defer release()
		sets = append(sets, set.WithLookup(lookup))
	}
	ext, err := core.NewExtractorFromTables(s.cfg.Tech, freq, sets...)
	if err != nil {
		return nil, err
	}
	ext.Configure(core.WithChecks(checkPolicy), core.WithObserver(s.cfg.Observer))

	// The vectorized batch path: one spline contraction pass per
	// shielding group, repeated geometries deduped.
	out, err := ext.SegmentsRLCCtx(ctx, segs)
	if err != nil {
		return nil, err
	}
	srvSegments.Add(int64(len(out)))
	return out, nil
}

// tableConfig is the table identity a shielding configuration at a
// significant frequency resolves to — identical physics to what the
// CLIs build, so daemon and CLI share cache entries.
func (s *Server) tableConfig(sh geom.Shielding, freq float64) table.Config {
	return table.Config{
		Name:           "serve/" + sh.String(),
		Thickness:      s.cfg.Tech.Thickness,
		Rho:            s.cfg.Tech.Rho,
		Shielding:      sh,
		PlaneGap:       s.cfg.Tech.PlaneGap,
		PlaneThickness: s.cfg.Tech.PlaneThickness,
		Frequency:      freq,
		Workers:        s.cfg.Workers,
	}
}

func parseShielding(s string) (geom.Shielding, error) {
	switch s {
	case "", "coplanar":
		return geom.ShieldNone, nil
	case "microstrip":
		return geom.ShieldMicrostrip, nil
	case "stripline":
		return geom.ShieldStripline, nil
	}
	return 0, fmt.Errorf("bad shielding %q (want coplanar, microstrip or stripline)", s)
}

func toResult(rlc netlist.SegmentRLC) SegmentResult {
	return SegmentResult{ROhm: rlc.R, LH: rlc.L, CF: rlc.C}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		srvErrors.Inc()
		return false
	}
	return true
}

// retryAfterValue renders a Retry-After header value: whole seconds,
// rounded up, floored at 1 (the header has second granularity and 0
// would invite an immediate stampede).
func retryAfterValue(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeRequestError maps a request failure to the service's status
// contract:
//
//	400  malformed request, bad geometry, bad timeout_ms
//	422  out-of-range lookup (error policy), strict-check violation
//	429  shed by admission control            (+ Retry-After)
//	499  client disconnected before the response
//	503  request budget exceeded, cold-build failure, breaker open,
//	     draining                             (+ Retry-After)
//	500  everything else (including recovered handler panics)
//
// reqCtx is the context the extraction actually ran under (it carries
// the per-request budget); r.Context() distinguishes a client that
// hung up from a budget that fired.
func (s *Server) writeRequestError(w http.ResponseWriter, r *http.Request, reqCtx context.Context, err error) {
	srvErrors.Inc()
	var (
		status = http.StatusInternalServerError
		retry  time.Duration
		bad    *badRequestError
		shed   *ShedError
		open   *BreakerOpenError
		fill   *FillError
	)
	switch {
	case errors.As(err, &bad), errors.Is(err, core.ErrBadGeometry):
		status = http.StatusBadRequest
	case errors.Is(err, table.ErrOutOfRange), errors.Is(err, check.ErrViolation):
		status = http.StatusUnprocessableEntity
	case errors.As(err, &shed):
		status = http.StatusTooManyRequests
		retry = shed.RetryAfter
		srvShed.Inc()
	case errors.As(err, &open):
		status = http.StatusServiceUnavailable
		retry = open.RetryAfter
	case errors.As(err, &fill):
		status = http.StatusServiceUnavailable
		retry = fill.RetryAfter
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		switch {
		case r != nil && r.Context().Err() != nil:
			// The client's connection context died: nobody is reading
			// this response, but the status still lands in the access
			// accounting.
			status = StatusClientClosedRequest
			srvGone.Inc()
		case reqCtx != nil && errors.Is(reqCtx.Err(), context.DeadlineExceeded):
			status = http.StatusServiceUnavailable
			retry = time.Second
			srvDeadline.Inc()
		default:
			status = http.StatusServiceUnavailable
			retry = time.Second
		}
	}
	if retry > 0 {
		w.Header().Set("Retry-After", retryAfterValue(retry))
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if status != http.StatusOK {
		enc.SetIndent("", "  ") // error bodies are read by humans
	}
	enc.Encode(v)
}
