package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/core"
	"clockrlc/internal/fault"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func testTech() core.Technology {
	return core.Technology{
		Thickness:      units.Um(2),
		Rho:            units.RhoCopper,
		EpsRel:         units.EpsSiO2,
		CapHeight:      units.Um(2),
		PlaneGap:       units.Um(2),
		PlaneThickness: units.Um(1),
	}
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{
		Tech:          testTech(),
		Axes:          testAxes(),
		DefaultCheck:  check.Warn,
		DefaultLookup: table.LookupError,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func testSegments() []SegmentRequest {
	return []SegmentRequest{
		{LengthUm: 500, SignalWidthUm: 2, GroundWidthUm: 2, SpacingUm: 1.5},
		{LengthUm: 300, SignalWidthUm: 1.5, GroundWidthUm: 3, SpacingUm: 1.2, Shielding: "microstrip"},
		{LengthUm: 800, SignalWidthUm: 3, GroundWidthUm: 2, SpacingUm: 1.8, Shielding: "coplanar"},
	}
}

// The golden: a /v1/batch response is bit-identical, in input order,
// to the same extraction run in-process against the same tables.
// Float64s round-trip exactly through Go's JSON encoding, so the
// comparison is ==, not a tolerance.
func TestBatchMatchesInProcessExtraction(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const tr = 50.0
	status, body := postJSON(t, ts, "/v1/batch", BatchRequest{
		RiseTimePs: tr, Segments: testSegments(),
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(testSegments()) {
		t.Fatalf("%d results for %d segments", len(resp.Results), len(testSegments()))
	}

	// The same extraction, in-process, through the same table physics.
	freq := units.SignificantFrequency(tr * units.PicoSecond)
	var sets []*table.Set
	for _, sh := range []string{"", "microstrip"} {
		shv, err := parseShielding(sh)
		if err != nil {
			t.Fatal(err)
		}
		set, err := table.BuildCtx(context.Background(), s.tableConfig(shv, freq), s.cfg.Axes, nil)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, set)
	}
	ext, err := core.NewExtractorFromTables(testTech(), freq, sets...)
	if err != nil {
		t.Fatal(err)
	}
	var segs []core.Segment
	for _, sr := range testSegments() {
		sh, _ := parseShielding(sr.Shielding)
		segs = append(segs, core.Segment{
			Length:      units.Um(sr.LengthUm),
			SignalWidth: units.Um(sr.SignalWidthUm),
			GroundWidth: units.Um(sr.GroundWidthUm),
			Spacing:     units.Um(sr.SpacingUm),
			Shielding:   sh,
		})
	}
	want, err := ext.SegmentsRLC(segs)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range resp.Results {
		if got.ROhm != want[i].R || got.LH != want[i].L || got.CF != want[i].C {
			t.Errorf("segment %d: served (%g, %g, %g) != in-process (%g, %g, %g)",
				i, got.ROhm, got.LH, got.CF, want[i].R, want[i].L, want[i].C)
		}
	}
}

// /v1/extract is the single-segment form of /v1/batch.
func TestExtractMatchesBatch(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seg := testSegments()[0]
	status, body := postJSON(t, ts, "/v1/extract", ExtractRequest{SegmentRequest: seg, RiseTimePs: 50})
	if status != http.StatusOK {
		t.Fatalf("extract status %d: %s", status, body)
	}
	var single SegmentResult
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	status, body = postJSON(t, ts, "/v1/batch", BatchRequest{
		RiseTimePs: 50, Segments: []SegmentRequest{seg},
	})
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if single != batch.Results[0] {
		t.Errorf("extract %+v != batch-of-one %+v", single, batch.Results[0])
	}
	if single.ROhm <= 0 || single.LH <= 0 || single.CF <= 0 {
		t.Errorf("non-positive RLC: %+v", single)
	}
}

// A failing segment aborts the batch with an error naming its index.
func TestBatchErrorNamesSegmentIndex(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	segs := testSegments()
	segs[1].SignalWidthUm = -2
	status, body := postJSON(t, ts, "/v1/batch", BatchRequest{RiseTimePs: 50, Segments: segs})
	if status != http.StatusBadRequest {
		t.Errorf("status %d, want 400: %s", status, body)
	}
	if !strings.Contains(string(body), "segment 1") {
		t.Errorf("error does not name segment 1: %s", body)
	}

	segs = testSegments()
	segs[2].Shielding = "faraday-cage"
	status, body = postJSON(t, ts, "/v1/batch", BatchRequest{RiseTimePs: 50, Segments: segs})
	if status != http.StatusBadRequest {
		t.Errorf("status %d, want 400: %s", status, body)
	}
	if !strings.Contains(string(body), "segment 2") {
		t.Errorf("error does not name segment 2: %s", body)
	}
}

// The per-request lookup policy decides whether an off-axis geometry
// is refused (422, unwrapping to the table's out-of-range error) or
// extrapolated (200) — against the same resident set.
func TestPerRequestLookupPolicy(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	offAxis := BatchRequest{
		RiseTimePs: 50,
		Segments: []SegmentRequest{
			// 8 µm is past the test axes' 4 µm width ceiling.
			{LengthUm: 500, SignalWidthUm: 8, GroundWidthUm: 8, SpacingUm: 1.5},
		},
	}

	offAxis.LookupPolicy = "error"
	status, body := postJSON(t, ts, "/v1/batch", offAxis)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("error policy: status %d, want 422: %s", status, body)
	}
	if !strings.Contains(string(body), "segment 0") {
		t.Errorf("error does not name the segment: %s", body)
	}

	offAxis.LookupPolicy = "extrapolate"
	status, body = postJSON(t, ts, "/v1/batch", offAxis)
	if status != http.StatusOK {
		t.Errorf("extrapolate policy: status %d, want 200: %s", status, body)
	}

	// The policy rides a per-request header copy: a following
	// default-policy (error) request is still refused.
	offAxis.LookupPolicy = ""
	status, body = postJSON(t, ts, "/v1/batch", offAxis)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("default policy after extrapolate request: status %d, want 422: %s", status, body)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		path string
		body string
		want string
	}{
		"malformed json":  {"/v1/batch", `{"rise_time_ps": 50, "segments": [`, "bad request body"},
		"unknown field":   {"/v1/batch", `{"rise_time_ps": 50, "rise": 1}`, "bad request body"},
		"no segments":     {"/v1/batch", `{"rise_time_ps": 50, "segments": []}`, "no segments"},
		"bad rise time":   {"/v1/batch", `{"rise_time_ps": 0, "segments": [{"length_um": 500, "signal_width_um": 2, "ground_width_um": 2, "spacing_um": 1.5}]}`, "rise_time_ps"},
		"bad check":       {"/v1/batch", `{"rise_time_ps": 50, "check": "maybe", "segments": [{"length_um": 500, "signal_width_um": 2, "ground_width_um": 2, "spacing_um": 1.5}]}`, "maybe"},
		"bad lookup":      {"/v1/batch", `{"rise_time_ps": 50, "lookup_policy": "guess", "segments": [{"length_um": 500, "signal_width_um": 2, "ground_width_um": 2, "spacing_um": 1.5}]}`, "guess"},
		"extract no body": {"/v1/extract", ``, "bad request body"},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %q does not mention %q", name, body, tc.want)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body is not {\"error\": ...}: %s", name, body)
		}
	}
}

func TestHealthMetricsAndDebugEndpoints(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Run one extraction so the serve counters exist in the snapshot.
	if status, body := postJSON(t, ts, "/v1/batch", BatchRequest{
		RiseTimePs: 50, Segments: testSegments()[:1],
	}); status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, body)
	}

	for path, want := range map[string]string{
		"/healthz":     "ok",
		"/metrics":     "clockrlc_serve_requests",
		"/debug/vars":  `"clockrlc"`,
		"/debug/pprof": "profiles",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body does not contain %q", path, want)
		}
	}
}

// Drain waits for in-flight requests (latency-injected so the build
// genuinely straddles the drain) and returns promptly once they
// finish; a deadline that cannot be met surfaces as the context
// error.
func TestDrainWaitsForInFlight(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fault.Register(fault.NewInjector(11, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeLatency, Prob: 1, Delay: 5 * time.Millisecond,
	}))
	defer fault.Reset()

	done := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts, "/v1/batch", BatchRequest{
			RiseTimePs: 50, Segments: testSegments()[:1],
		})
		done <- status
	}()

	// Wait until the request is actually in flight.
	deadline := time.Now().Add(5 * time.Second)
	for srvInFlightN.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	short, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Drain(short); err == nil {
		t.Error("Drain met an unmeetable deadline with a build in flight")
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Drain returning proves the handler finished; the client read of
	// the response lags it by a socket round-trip.
	select {
	case status := <-done:
		if status != http.StatusOK {
			t.Errorf("in-flight request finished with status %d", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	if n := srvInFlightN.Load(); n != 0 {
		t.Errorf("inflight = %d after drain", n)
	}
}
