package serve

import (
	"fmt"
	"time"
)

// The cold-build circuit breaker protects the one catastrophically
// expensive operation the daemon has — a full field-solver sweep (or a
// cache load) behind a registry miss. A solver that fails once under
// load will almost certainly fail again milliseconds later; without a
// breaker every queued cold request re-runs the sweep and the host
// spends its capacity discovering the same failure. The breaker turns
// that stampede into one fast 503 + Retry-After per caller.
//
// States follow the classic pattern: closed (counting consecutive
// failures) → open (every acquire of the key short-circuits until the
// cooldown expires) → half-open (exactly one probe fill is admitted;
// its outcome closes or re-opens the breaker).
//
// Failures are counted per caller observation, not per fill attempt:
// when 32 coalesced cold requests share one failed fill, all 32
// record a failure. That keeps the trip deterministic under the
// registry's single-flighting (any interleaving of fills and waiters
// yields at least min(callers, threshold) observations) and trips
// faster exactly when concurrent demand — the stampede the breaker
// exists to stop — is highest. Context cancellations never count: a
// caller giving up says nothing about solver health.

type breakerState int

const (
	bkClosed breakerState = iota
	bkOpen
	bkHalfOpen
)

// breaker is one key's circuit state. It holds no lock of its own:
// every access happens under the owning shard's mutex, which the
// registry already takes on the miss/fill paths the breaker guards.
type breaker struct {
	threshold int           // consecutive failures to open
	cooldown  time.Duration // open → half-open delay
	state     breakerState
	failures  int
	until     time.Time // while open: when a half-open probe is allowed
}

// allow reports whether a fill may proceed. While open it returns the
// remaining cooldown as the Retry-After hint; once the cooldown has
// expired it transitions to half-open and admits exactly one probe
// (probe=true) — concurrent callers keep short-circuiting until the
// probe resolves.
func (b *breaker) allow(now time.Time) (ok bool, retryAfter time.Duration, probe bool) {
	switch b.state {
	case bkOpen:
		if now.Before(b.until) {
			return false, b.until.Sub(now), false
		}
		b.state = bkHalfOpen
		return true, 0, true
	case bkHalfOpen:
		// A probe is in flight; its outcome decides the state.
		return false, b.cooldown, false
	}
	return true, 0, false
}

// success records a completed fill (or probe): the circuit closes and
// the consecutive-failure count resets.
func (b *breaker) success() {
	b.state = bkClosed
	b.failures = 0
}

// failure records one caller-observed fill failure and reports whether
// this observation tripped the breaker open. A failed half-open probe
// re-opens for another full cooldown (and counts as a trip); failures
// observed while already open (late waiters on a pre-trip fill) are
// ignored.
func (b *breaker) failure(now time.Time) (tripped bool) {
	switch b.state {
	case bkHalfOpen:
		b.state = bkOpen
		b.until = now.Add(b.cooldown)
		return true
	case bkClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = bkOpen
			b.until = now.Add(b.cooldown)
			return true
		}
	}
	return false
}

// BreakerOpenError is returned by Registry.Acquire while a key's
// circuit is open: the cold build is known-failing and was not
// attempted. It maps to 503 + Retry-After at the HTTP layer.
type BreakerOpenError struct {
	Key        string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: table build circuit open for %.16s… (retry in %s)", e.Key, e.RetryAfter.Round(time.Millisecond))
}

// FillError wraps a cold-fill failure (a build or cache-load error
// that is the server's problem, not the request's): callers should
// back off and retry, so it maps to 503 + Retry-After.
type FillError struct {
	Err        error
	RetryAfter time.Duration
}

func (e *FillError) Error() string { return "serve: cold table build failed: " + e.Err.Error() }
func (e *FillError) Unwrap() error { return e.Err }
