package serve

import (
	"context"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"clockrlc/internal/fault"
	"clockrlc/internal/geom"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

func testTableConfig() table.Config {
	return table.Config{
		Name:      "serve-test/coplanar",
		Thickness: units.Um(2),
		Rho:       units.RhoCopper,
		Shielding: geom.ShieldNone,
		Frequency: 3.2e9,
	}
}

// testAxes is a fast-to-build grid whose spacing axis still covers
// the coplanar ground-to-ground spacing (2·spacing + signal width) of
// the test segments.
func testAxes() table.Axes {
	return table.Axes{
		Widths:   table.LogAxis(units.Um(1), units.Um(4), 2),
		Spacings: table.LogAxis(units.Um(1), units.Um(8), 3),
		Lengths:  table.LogAxis(units.Um(100), units.Um(1000), 3),
	}
}

// sweepSolves mirrors the build cost model: one solver call per self
// cell plus the mutual upper triangle.
func sweepSolves(axes table.Axes) int64 {
	nw, ns, nl := len(axes.Widths), len(axes.Spacings), len(axes.Lengths)
	return int64(nw*nl + nw*(nw+1)/2*ns*nl)
}

// configAtFrequency varies the content address without changing the
// sweep size: frequency is part of the cache key.
func configAtFrequency(f float64) table.Config {
	cfg := testTableConfig()
	cfg.Frequency = f
	return cfg
}

// Two acquires of one key share one *table.Set; the registry counts
// one miss and one hit.
func TestRegistryAcquireSharesOneSet(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	hits0, misses0 := regHits.Value(), regMisses.Value()

	s1, rel1, err := r.Acquire(context.Background(), testTableConfig(), testAxes())
	if err != nil {
		t.Fatal(err)
	}
	s2, rel2, err := r.Acquire(context.Background(), testTableConfig(), testAxes())
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("two acquires of one key returned distinct sets")
	}
	if d := regMisses.Value() - misses0; d != 1 {
		t.Errorf("misses = %d, want 1", d)
	}
	if d := regHits.Value() - hits0; d != 1 {
		t.Errorf("hits = %d, want 1", d)
	}
	rel1()
	rel1() // double release is a no-op
	rel2()
	if n := r.Len(); n != 1 {
		t.Errorf("Len = %d, want 1 (release does not evict)", n)
	}
}

// The cold-start acceptance: 32 concurrent acquires of one
// never-built key run exactly one field-solver sweep. Latency
// injection keeps the sweep slow enough that the callers genuinely
// overlap.
func TestRegistryColdAcquire32Concurrent(t *testing.T) {
	cache, err := table.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(RegistryOptions{Cache: cache})
	fault.Register(fault.NewInjector(7, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeLatency, Prob: 1, Delay: 2 * time.Millisecond,
	}))
	defer fault.Reset()

	solves0 := obs.GetCounter("table.solver_calls").Value()
	const callers = 32
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		sets = map[*table.Set]bool{}
	)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s, rel, err := r.Acquire(context.Background(), testTableConfig(), testAxes())
			if err != nil {
				t.Error(err)
				return
			}
			defer rel()
			if _, err := s.SelfL(s.Axes.Widths[0], s.Axes.Lengths[0]); err != nil {
				t.Error(err)
			}
			mu.Lock()
			sets[s] = true
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if d := obs.GetCounter("table.solver_calls").Value() - solves0; d != sweepSolves(testAxes()) {
		t.Errorf("solver calls = %d, want exactly one sweep = %d", d, sweepSolves(testAxes()))
	}
	if len(sets) != 1 {
		t.Errorf("%d distinct sets handed out, want 1", len(sets))
	}
}

// sameShardConfig returns a config whose cache key lands in the same
// shard as base's, with a different content address.
func sameShardConfig(t *testing.T, r *Registry, base table.Config, axes table.Axes) table.Config {
	t.Helper()
	baseKey, err := table.CacheKey(base, axes)
	if err != nil {
		t.Fatal(err)
	}
	for f := base.Frequency * 1.01; ; f *= 1.01 {
		cfg := configAtFrequency(f)
		key, err := table.CacheKey(cfg, axes)
		if err != nil {
			t.Fatal(err)
		}
		if r.shard(key) == r.shard(baseKey) {
			return cfg
		}
	}
}

// Eviction closes an unreferenced set (its mapping is released) but
// never one a request still holds: the close happens at the last
// release.
func TestRegistryEvictionRespectsRefcounts(t *testing.T) {
	dir := t.TempDir()
	cache, err := table.NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfgA, axes := testTableConfig(), testAxes()

	// Warm the cache so registry fills arrive as mmapped loads.
	warm, err := cache.GetOrBuildCtx(ctx, cfgA, axes, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = warm

	r := NewRegistry(RegistryOptions{Cache: cache, MaxSets: 1}) // perShard = 1
	cfgB := sameShardConfig(t, r, cfgA, axes)
	if _, err := cache.GetOrBuildCtx(ctx, cfgB, axes, nil); err != nil {
		t.Fatal(err)
	}

	// Unreferenced eviction: acquire A, release, push B into the same
	// shard. A's mapping must be released immediately.
	setA, relA, err := r.Acquire(ctx, cfgA, axes)
	if err != nil {
		t.Fatal(err)
	}
	if !setA.Mapped() {
		t.Fatal("cache-hit fill is not mmapped; eviction test needs a mapping")
	}
	relA()
	evicts0 := regEvicts.Value()
	_, relB, err := r.Acquire(ctx, cfgB, axes)
	if err != nil {
		t.Fatal(err)
	}
	if d := regEvicts.Value() - evicts0; d != 1 {
		t.Errorf("evictions = %d, want 1", d)
	}
	if setA.Mapped() {
		t.Error("evicted unreferenced set still mapped")
	}

	// Referenced eviction: acquire A (refills, evicting B is not
	// possible — B is the only other entry and gets evicted), hold the
	// reference across the eviction and verify the set stays usable.
	setA2, relA2, err := r.Acquire(ctx, cfgA, axes)
	if err != nil {
		t.Fatal(err)
	}
	relB()
	_, relB2, err := r.Acquire(ctx, cfgB, axes) // evicts A while held
	if err != nil {
		t.Fatal(err)
	}
	if !setA2.Mapped() {
		t.Fatal("held set unmapped by eviction")
	}
	if _, err := setA2.SelfL(setA2.Axes.Widths[0], setA2.Axes.Lengths[0]); err != nil {
		t.Errorf("lookup on held evicted set: %v", err)
	}
	relA2()
	if setA2.Mapped() {
		t.Error("evicted set still mapped after last release")
	}
	relB2()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if n := r.Len(); n != 0 {
		t.Errorf("Len after Close = %d, want 0", n)
	}
}

func mappingCount(t *testing.T) int {
	t.Helper()
	b, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		t.Skipf("cannot read /proc/self/maps: %v", err)
	}
	return strings.Count(string(b), "\n")
}

// Steady-state acquire/evict cycles must not grow the process mapping
// count: every munmap-on-evict pairs with the mmap that loaded the
// set.
func TestRegistryMappingCountFlat(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/proc/self/maps is Linux-only")
	}
	dir := t.TempDir()
	cache, err := table.NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	axes := testAxes()
	cfgs := make([]table.Config, 4)
	for i := range cfgs {
		cfgs[i] = configAtFrequency(3.2e9 * (1 + float64(i)/10))
		if _, err := cache.GetOrBuildCtx(ctx, cfgs[i], axes, nil); err != nil {
			t.Fatal(err)
		}
	}

	r := NewRegistry(RegistryOptions{Cache: cache, MaxSets: 1})
	cycle := func() {
		for _, cfg := range cfgs {
			s, rel, err := r.Acquire(ctx, cfg, axes)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.SelfL(s.Axes.Widths[0], s.Axes.Lengths[0]); err != nil {
				t.Error(err)
			}
			rel()
		}
	}
	cycle() // warm up allocator/runtime mappings
	before := mappingCount(t)
	const cycles = 10
	for i := 0; i < cycles; i++ {
		cycle()
	}
	after := mappingCount(t)
	// The 4 configs cycle through a 1-per-shard registry: if evicted
	// sets leaked their mappings the count would grow by tens of
	// mappings; runtime noise is at most a few.
	if after-before >= cycles {
		t.Errorf("mapping count grew %d → %d across %d acquire/evict cycles", before, after, cycles)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// A failed fill must not poison the key: the next acquire retries.
func TestRegistryFailedFillRetries(t *testing.T) {
	r := NewRegistry(RegistryOptions{})
	cfg, axes := testTableConfig(), testAxes()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.Acquire(ctx, cfg, axes); err == nil {
		t.Fatal("acquire with cancelled ctx succeeded")
	}
	if n := r.Len(); n != 0 {
		t.Fatalf("failed fill left %d entries resident", n)
	}
	s, rel, err := r.Acquire(context.Background(), cfg, axes)
	if err != nil {
		t.Fatalf("retry after failed fill: %v", err)
	}
	defer rel()
	if s == nil {
		t.Fatal("nil set from successful retry")
	}
}
