// Package serve is the extraction daemon's in-process layer: a
// sharded, refcounted registry of table sets over the
// content-addressed cache, and the HTTP/JSON server that drives
// core's batch extraction through it. One resident process amortises
// the mmap/open cost of a table library across every request — the
// way a CTS flow drives extraction as a service rather than forking a
// CLI per net — while the registry's lifecycle discipline (acquire /
// release / munmap-on-evict) keeps the daemon's mapping count bounded
// where the one-shot CLIs could afford to leak until exit.
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"clockrlc/internal/obs"
	"clockrlc/internal/table"
)

// Registry accounting: hits serve an already-resident set, misses
// fill from the cache (or a build), evictions count sets pushed out
// by the capacity bound, and open_sets gauges the resident count.
var (
	regHits   = obs.GetCounter("serve.registry_hits")
	regMisses = obs.GetCounter("serve.registry_misses")
	regEvicts = obs.GetCounter("serve.registry_evictions")
	regOpen   = obs.GetGauge("serve.registry_open_sets")
)

// openSets backs the open_sets gauge (obs gauges are set-only).
var openSets atomic.Int64

func openSetsAdd(d int64) { regOpen.Set(float64(openSets.Add(d))) }

// regShardCount shards the registry map so concurrent requests for
// different table sets never contend on one lock. Power of two.
const regShardCount = 8

// Registry is a sharded in-memory layer over the content-addressed
// table cache. Entries are keyed by table.CacheKey and refcounted:
// Acquire pins a set, the returned release unpins it, and an evicted
// set is closed (its mapping released) only when the last holder
// releases — so an in-flight request can never have its spline
// coefficients unmapped underneath it.
type Registry struct {
	cache    *table.Cache
	o        *obs.Observer
	perShard int // max ready entries per shard; 0 = unbounded
	clock    atomic.Int64
	shards   [regShardCount]regShard
}

type regShard struct {
	mu      sync.Mutex
	entries map[string]*regEntry
}

// regEntry is one resident (or filling) table set. ready is closed
// when fill completes; set/err are immutable afterwards. refs counts
// holders: the map itself holds no reference — eviction removes the
// entry from the map, marks it evicted, and the last release closes
// the set.
type regEntry struct {
	key     string
	ready   chan struct{}
	set     *table.Set
	err     error
	refs    int
	evicted bool
	lastUse int64
}

// NewRegistry builds a registry over cache (which may be nil: misses
// then build in memory without persistence). maxSets bounds the
// resident set count (approximately: the bound is enforced per
// shard); 0 means unbounded. Spans from fills go to o (nil selects
// the default observer).
func NewRegistry(cache *table.Cache, maxSets int, o *obs.Observer) *Registry {
	r := &Registry{cache: cache, o: o}
	if maxSets > 0 {
		r.perShard = (maxSets + regShardCount - 1) / regShardCount
	}
	for i := range r.shards {
		r.shards[i].entries = map[string]*regEntry{}
	}
	return r
}

func (r *Registry) shard(key string) *regShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &r.shards[h.Sum32()&(regShardCount-1)]
}

// Acquire returns the resident set for (cfg, axes), filling it from
// the cache (single-flighted there, and deduplicated again here so
// one registry never issues two concurrent fills of one key) on first
// use. The returned release must be called exactly once when the
// request is done with the set; it is safe to call from any
// goroutine, and calling it again is a no-op.
func (r *Registry) Acquire(ctx context.Context, cfg table.Config, axes table.Axes) (*table.Set, func(), error) {
	key, err := table.CacheKey(cfg, axes)
	if err != nil {
		return nil, nil, err
	}
	sh := r.shard(key)

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		e.refs++
		e.lastUse = r.clock.Add(1)
		sh.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			r.releaseEntry(sh, e)
			return nil, nil, ctx.Err()
		}
		if e.err != nil {
			// The filler already removed the failed entry from the map;
			// just drop our reference.
			r.releaseEntry(sh, e)
			return nil, nil, e.err
		}
		regHits.Inc()
		return e.set, r.releaseFunc(sh, e), nil
	}

	// Miss: insert a filling entry, evict over capacity, then fill
	// outside the lock so other keys stay acquirable.
	e := &regEntry{key: key, ready: make(chan struct{}), refs: 1, lastUse: r.clock.Add(1)}
	sh.entries[key] = e
	victims := sh.evictOverCapLocked(r.perShard, e)
	sh.mu.Unlock()
	for _, v := range victims {
		v.Close()
	}
	regMisses.Inc()

	set, err := r.fill(ctx, cfg, axes)
	e.set, e.err = set, err
	if err != nil {
		sh.mu.Lock()
		if sh.entries[key] == e {
			delete(sh.entries, key)
		}
		e.evicted = true
		sh.mu.Unlock()
		close(e.ready)
		r.releaseEntry(sh, e)
		return nil, nil, err
	}
	openSetsAdd(1)
	close(e.ready)
	return set, r.releaseFunc(sh, e), nil
}

// fill loads or builds the set. The cache path is single-flighted
// across the whole process; the direct build path is only reached
// when the registry was constructed without a cache.
func (r *Registry) fill(ctx context.Context, cfg table.Config, axes table.Axes) (*table.Set, error) {
	if r.cache != nil {
		return r.cache.GetOrBuildCtx(ctx, cfg, axes, r.o)
	}
	o := r.o
	if o == nil {
		o = obs.Default()
	}
	return table.BuildCtx(ctx, cfg, axes, o)
}

// releaseFunc wraps releaseEntry in a once so a double release (a
// handler's defer racing an error path, say) can never unpin an
// entry twice.
func (r *Registry) releaseFunc(sh *regShard, e *regEntry) func() {
	var once sync.Once
	return func() { once.Do(func() { r.releaseEntry(sh, e) }) }
}

// releaseEntry unpins e and closes its set when it was evicted and
// this was the last holder.
func (r *Registry) releaseEntry(sh *regShard, e *regEntry) {
	sh.mu.Lock()
	e.refs--
	dead := e.evicted && e.refs == 0
	sh.mu.Unlock()
	if dead && e.set != nil {
		e.set.Close()
		openSetsAdd(-1)
	}
}

// evictOverCapLocked removes least-recently-used ready entries until
// the shard is within cap, never evicting keep. It returns the
// entries whose sets can be closed immediately (no holders); entries
// still referenced close at their last release. Caller holds sh.mu.
func (sh *regShard) evictOverCapLocked(cap int, keep *regEntry) []*table.Set {
	if cap <= 0 {
		return nil
	}
	var closable []*table.Set
	for len(sh.entries) > cap {
		var victim *regEntry
		for _, e := range sh.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return closable
		}
		delete(sh.entries, victim.key)
		victim.evicted = true
		regEvicts.Inc()
		if victim.refs == 0 {
			select {
			case <-victim.ready:
				if victim.set != nil {
					closable = append(closable, victim.set)
					openSetsAdd(-1)
				}
			default:
				// Still filling with zero holders cannot happen: the
				// filler holds a reference until fill completes.
			}
		}
	}
	return closable
}

// Len reports the resident entry count across all shards.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Close evicts every entry, closing each set as its last holder
// releases (immediately, for unreferenced entries). Acquire may still
// be called afterwards — the registry simply refills — so Close is
// also usable as a flush.
func (r *Registry) Close() error {
	var first error
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		var drop []*regEntry
		for key, e := range sh.entries {
			delete(sh.entries, key)
			e.evicted = true
			if e.refs == 0 {
				drop = append(drop, e)
			}
		}
		sh.mu.Unlock()
		for _, e := range drop {
			select {
			case <-e.ready:
			default:
				continue // filling entries close via their filler's release
			}
			if e.set != nil {
				if err := e.set.Close(); err != nil && first == nil {
					first = fmt.Errorf("serve: close %s: %w", e.key, err)
				}
				openSetsAdd(-1)
			}
		}
	}
	return first
}
