// Package serve is the extraction daemon's in-process layer: a
// sharded, refcounted registry of table sets over the
// content-addressed cache, and the HTTP/JSON server that drives
// core's batch extraction through it. One resident process amortises
// the mmap/open cost of a table library across every request — the
// way a CTS flow drives extraction as a service rather than forking a
// CLI per net — while the registry's lifecycle discipline (acquire /
// release / munmap-on-evict) keeps the daemon's mapping count bounded
// where the one-shot CLIs could afford to leak until exit.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"clockrlc/internal/fault"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
)

// Registry accounting: hits serve an already-resident set, misses
// fill from the cache (or a build), evictions count sets pushed out
// by the capacity bound, and open_sets gauges the resident count.
// breaker_open counts circuit trips (closed/half-open → open),
// breaker_probes counts half-open probe fills admitted, and
// breaker_rejected counts acquires short-circuited by an open
// circuit.
var (
	regHits       = obs.GetCounter("serve.registry_hits")
	regMisses     = obs.GetCounter("serve.registry_misses")
	regEvicts     = obs.GetCounter("serve.registry_evictions")
	regOpen       = obs.GetGauge("serve.registry_open_sets")
	regBkOpens    = obs.GetCounter("serve.breaker_open")
	regBkProbes   = obs.GetCounter("serve.breaker_probes")
	regBkRejected = obs.GetCounter("serve.breaker_rejected")
)

// openSets backs the open_sets gauge (obs gauges are set-only).
var openSets atomic.Int64

func openSetsAdd(d int64) { regOpen.Set(float64(openSets.Add(d))) }

// regShardCount shards the registry map so concurrent requests for
// different table sets never contend on one lock. Power of two.
const regShardCount = 8

// Registry is a sharded in-memory layer over the content-addressed
// table cache. Entries are keyed by table.CacheKey and refcounted:
// Acquire pins a set, the returned release unpins it, and an evicted
// set is closed (its mapping released) only when the last holder
// releases — so an in-flight request can never have its spline
// coefficients unmapped underneath it.
type Registry struct {
	cache    *table.Cache
	o        *obs.Observer
	perShard int // max ready entries per shard; 0 = unbounded
	bkFails  int // consecutive fill failures to open a key's breaker; 0 = disabled
	bkCool   time.Duration
	now      func() time.Time
	clock    atomic.Int64
	shards   [regShardCount]regShard
}

type regShard struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	// breakers outlive entries: a failed fill removes its entry (so
	// the key stays retryable) but the key's failure history must
	// persist to trip the circuit.
	breakers map[string]*breaker
}

// regEntry is one resident (or filling) table set. ready is closed
// when fill completes; set/err are immutable afterwards. refs counts
// holders: the map itself holds no reference — eviction removes the
// entry from the map, marks it evicted, and the last release closes
// the set.
type regEntry struct {
	key     string
	ready   chan struct{}
	set     *table.Set
	err     error
	refs    int
	evicted bool
	lastUse int64
}

// RegistryOptions parameterises a registry.
type RegistryOptions struct {
	// Cache may be nil: misses then build in memory without
	// persistence.
	Cache *table.Cache
	// MaxSets bounds the resident set count (approximately: the bound
	// is enforced per shard); 0 means unbounded.
	MaxSets int
	// Observer routes fill spans (nil selects the default observer).
	Observer *obs.Observer
	// BreakerFailures opens a key's cold-build circuit after that many
	// consecutive caller-observed fill failures; 0 disables the
	// breaker.
	BreakerFailures int
	// BreakerCooldown is how long an open circuit short-circuits
	// acquires before admitting one half-open probe (default 5s).
	BreakerCooldown time.Duration
	// Now overrides the breaker's clock (tests); nil means time.Now.
	Now func() time.Time
}

// NewRegistry builds a registry from opts.
func NewRegistry(opts RegistryOptions) *Registry {
	r := &Registry{
		cache:   opts.Cache,
		o:       opts.Observer,
		bkFails: opts.BreakerFailures,
		bkCool:  opts.BreakerCooldown,
		now:     opts.Now,
	}
	if r.bkFails > 0 && r.bkCool <= 0 {
		r.bkCool = 5 * time.Second
	}
	if r.now == nil {
		r.now = time.Now
	}
	if opts.MaxSets > 0 {
		r.perShard = (opts.MaxSets + regShardCount - 1) / regShardCount
	}
	for i := range r.shards {
		r.shards[i].entries = map[string]*regEntry{}
		r.shards[i].breakers = map[string]*breaker{}
	}
	return r
}

func (r *Registry) shard(key string) *regShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &r.shards[h.Sum32()&(regShardCount-1)]
}

// Acquire returns the resident set for (cfg, axes), filling it from
// the cache (single-flighted there, and deduplicated again here so
// one registry never issues two concurrent fills of one key) on first
// use. The returned release must be called exactly once when the
// request is done with the set; it is safe to call from any
// goroutine, and calling it again is a no-op.
func (r *Registry) Acquire(ctx context.Context, cfg table.Config, axes table.Axes) (*table.Set, func(), error) {
	key, err := table.CacheKey(cfg, axes)
	if err != nil {
		return nil, nil, err
	}
	sh := r.shard(key)

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		e.refs++
		e.lastUse = r.clock.Add(1)
		sh.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			r.releaseEntry(sh, e)
			return nil, nil, ctx.Err()
		}
		if e.err != nil {
			// The filler already removed the failed entry from the map;
			// drop our reference and record our own observation of the
			// failure — under coalescing every disappointed waiter
			// counts, which is what makes the trip deterministic.
			r.releaseEntry(sh, e)
			return nil, nil, r.fillFailed(sh, key, e.err, false)
		}
		regHits.Inc()
		return e.set, r.releaseFunc(sh, e), nil
	}

	// Miss: consult the key's breaker, insert a filling entry, evict
	// over capacity, then fill outside the lock so other keys stay
	// acquirable.
	probe := false
	if r.bkFails > 0 {
		b := sh.breakerLocked(key, r)
		ok, retryAfter, p := b.allow(r.now())
		if !ok {
			sh.mu.Unlock()
			regBkRejected.Inc()
			return nil, nil, &BreakerOpenError{Key: key, RetryAfter: retryAfter}
		}
		probe = p
	}
	e := &regEntry{key: key, ready: make(chan struct{}), refs: 1, lastUse: r.clock.Add(1)}
	sh.entries[key] = e
	victims := sh.evictOverCapLocked(r.perShard, e)
	sh.mu.Unlock()
	for _, v := range victims {
		v.Close()
	}
	regMisses.Inc()
	if probe {
		regBkProbes.Inc()
	}

	set, err := r.fill(ctx, cfg, axes)
	e.set, e.err = set, err
	if err != nil {
		sh.mu.Lock()
		if sh.entries[key] == e {
			delete(sh.entries, key)
		}
		e.evicted = true
		sh.mu.Unlock()
		close(e.ready)
		r.releaseEntry(sh, e)
		return nil, nil, r.fillFailed(sh, key, err, probe)
	}
	r.fillSucceeded(sh, key)
	openSetsAdd(1)
	close(e.ready)
	return set, r.releaseFunc(sh, e), nil
}

// breakerLocked returns the key's breaker, creating it on first use.
// Caller holds sh.mu.
func (sh *regShard) breakerLocked(key string, r *Registry) *breaker {
	b, ok := sh.breakers[key]
	if !ok {
		b = &breaker{threshold: r.bkFails, cooldown: r.bkCool}
		sh.breakers[key] = b
	}
	return b
}

// fillFailed records one caller-observed fill failure against the
// key's breaker and wraps the error for the HTTP layer. Cancellations
// pass through unwrapped and uncounted: a caller giving up says
// nothing about solver health, and a draining daemon must not trip
// its own breakers. A cancelled half-open probe re-arms the breaker
// open with an expired cooldown so the very next acquire probes again
// — never stranding the key in the probe-in-flight state.
func (r *Registry) fillFailed(sh *regShard, key string, err error, probe bool) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if probe && r.bkFails > 0 {
			sh.mu.Lock()
			if b, ok := sh.breakers[key]; ok && b.state == bkHalfOpen {
				b.state = bkOpen
				b.until = r.now()
			}
			sh.mu.Unlock()
		}
		return err
	}
	if r.bkFails > 0 {
		sh.mu.Lock()
		tripped := sh.breakerLocked(key, r).failure(r.now())
		sh.mu.Unlock()
		if tripped {
			regBkOpens.Inc()
		}
	}
	return &FillError{Err: err, RetryAfter: r.retryAfterHint()}
}

// fillSucceeded closes the key's breaker (resetting its
// consecutive-failure count).
func (r *Registry) fillSucceeded(sh *regShard, key string) {
	if r.bkFails <= 0 {
		return
	}
	sh.mu.Lock()
	if b, ok := sh.breakers[key]; ok {
		b.success()
	}
	sh.mu.Unlock()
}

// retryAfterHint is the backoff a failed cold build suggests to
// clients: the breaker cooldown when armed, else one second.
func (r *Registry) retryAfterHint() time.Duration {
	if r.bkCool > 0 {
		return r.bkCool
	}
	return time.Second
}

// OpenBreakers counts keys whose cold-build circuit is currently open
// (half-open probes in flight are not counted: the key is being
// retested). Surfaced on /healthz for operators and load balancers.
func (r *Registry) OpenBreakers() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, b := range sh.breakers {
			if b.state == bkOpen {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// fill loads or builds the set. The cache path is single-flighted
// across the whole process; the direct build path is only reached
// when the registry was constructed without a cache.
func (r *Registry) fill(ctx context.Context, cfg table.Config, axes table.Axes) (*table.Set, error) {
	if err := fault.Check(fault.ServeFill); err != nil {
		return nil, err
	}
	if r.cache != nil {
		return r.cache.GetOrBuildCtx(ctx, cfg, axes, r.o)
	}
	o := r.o
	if o == nil {
		o = obs.Default()
	}
	return table.BuildCtx(ctx, cfg, axes, o)
}

// releaseFunc wraps releaseEntry in a once so a double release (a
// handler's defer racing an error path, say) can never unpin an
// entry twice.
func (r *Registry) releaseFunc(sh *regShard, e *regEntry) func() {
	var once sync.Once
	return func() { once.Do(func() { r.releaseEntry(sh, e) }) }
}

// releaseEntry unpins e and closes its set when it was evicted and
// this was the last holder.
func (r *Registry) releaseEntry(sh *regShard, e *regEntry) {
	sh.mu.Lock()
	e.refs--
	dead := e.evicted && e.refs == 0
	sh.mu.Unlock()
	if dead && e.set != nil {
		e.set.Close()
		openSetsAdd(-1)
	}
}

// evictOverCapLocked removes least-recently-used ready entries until
// the shard is within cap, never evicting keep. It returns the
// entries whose sets can be closed immediately (no holders); entries
// still referenced close at their last release. Caller holds sh.mu.
func (sh *regShard) evictOverCapLocked(cap int, keep *regEntry) []*table.Set {
	if cap <= 0 {
		return nil
	}
	var closable []*table.Set
	for len(sh.entries) > cap {
		var victim *regEntry
		for _, e := range sh.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return closable
		}
		delete(sh.entries, victim.key)
		victim.evicted = true
		regEvicts.Inc()
		if victim.refs == 0 {
			select {
			case <-victim.ready:
				if victim.set != nil {
					closable = append(closable, victim.set)
					openSetsAdd(-1)
				}
			default:
				// Still filling with zero holders cannot happen: the
				// filler holds a reference until fill completes.
			}
		}
	}
	return closable
}

// Len reports the resident entry count across all shards.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Close evicts every entry, closing each set as its last holder
// releases (immediately, for unreferenced entries). Acquire may still
// be called afterwards — the registry simply refills — so Close is
// also usable as a flush.
func (r *Registry) Close() error {
	var first error
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		var drop []*regEntry
		for key, e := range sh.entries {
			delete(sh.entries, key)
			e.evicted = true
			if e.refs == 0 {
				drop = append(drop, e)
			}
		}
		sh.mu.Unlock()
		for _, e := range drop {
			select {
			case <-e.ready:
			default:
				continue // filling entries close via their filler's release
			}
			if e.set != nil {
				if err := e.set.Close(); err != nil && first == nil {
					first = fmt.Errorf("serve: close %s: %w", e.key, err)
				}
				openSetsAdd(-1)
			}
		}
	}
	return first
}
