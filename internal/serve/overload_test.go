package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"clockrlc/internal/check"
	"clockrlc/internal/fault"
	"clockrlc/internal/obs"
	"clockrlc/internal/table"
)

// postFull posts a request and returns the full response (the
// overload tests need the Retry-After header, which postJSON drops).
func postFull(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func oneSegmentBatch() BatchRequest {
	return BatchRequest{RiseTimePs: 50, Segments: testSegments()[:1]}
}

// Admission control: with capacity 1 and no queue, a request that
// arrives while another holds the slot is shed with 429 + Retry-After
// and counted on serve.shed.
func TestShedAtCapacity(t *testing.T) {
	s, err := New(Config{
		Tech: testTech(), Axes: testAxes(),
		DefaultCheck: check.Warn, DefaultLookup: table.LookupError,
		MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Keep the first request's cold fill slow enough to straddle the
	// second request deterministically.
	fault.Register(fault.NewInjector(21, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeLatency, Prob: 1, Delay: 2 * time.Millisecond,
	}))
	defer fault.Reset()

	shed0 := srvShed.Value()
	first := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts, "/v1/batch", oneSegmentBatch())
		first <- status
	}()
	// Wait until the first request holds the admission slot.
	deadline := time.Now().Add(10 * time.Second)
	for len(s.adm.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never took the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postFull(t, ts, "/v1/batch", oneSegmentBatch())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if d := srvShed.Value() - shed0; d != 1 {
		t.Errorf("serve.shed delta = %d, want 1", d)
	}
	if status := <-first; status != http.StatusOK {
		t.Errorf("admitted request finished %d", status)
	}
}

// The serve.admit fault point sheds deterministically without
// consuming capacity.
func TestInjectedAdmitShed(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fault.Register(fault.NewInjector(22, fault.Rule{
		Point: fault.ServeAdmit, Mode: fault.ModeError, Prob: 1,
	}))
	shed0 := srvShed.Value()
	resp, body := postFull(t, ts, "/v1/batch", oneSegmentBatch())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected shed without Retry-After")
	}
	if d := srvShed.Value() - shed0; d != 1 {
		t.Errorf("serve.shed delta = %d, want 1", d)
	}
	fault.Reset()
	if status, body := postJSON(t, ts, "/v1/batch", oneSegmentBatch()); status != http.StatusOK {
		t.Fatalf("post-injection request: status %d: %s", status, body)
	}
}

// A request whose budget fires mid-build answers 503 + Retry-After and
// lands on serve.deadline_exceeded, not client_gone.
func TestRequestDeadline503(t *testing.T) {
	s, err := New(Config{
		Tech: testTech(), Axes: testAxes(),
		DefaultCheck: check.Warn, DefaultLookup: table.LookupError,
		RequestTimeout: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// ~40 solver calls × 5ms floors the cold build at ~200ms, far past
	// the 25ms budget; the build observes the deadline between calls.
	fault.Register(fault.NewInjector(23, fault.Rule{
		Point: fault.SolverCall, Mode: fault.ModeLatency, Prob: 1, Delay: 5 * time.Millisecond,
	}))
	defer fault.Reset()

	dead0, gone0 := srvDeadline.Value(), srvGone.Value()
	resp, body := postFull(t, ts, "/v1/batch", oneSegmentBatch())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline 503 without Retry-After")
	}
	if d := srvDeadline.Value() - dead0; d != 1 {
		t.Errorf("serve.deadline_exceeded delta = %d, want 1", d)
	}
	if d := srvGone.Value() - gone0; d != 0 {
		t.Errorf("serve.client_gone delta = %d, want 0", d)
	}

	// The client's timeout_ms rides the same path.
	fault.Reset()
	req := oneSegmentBatch()
	req.TimeoutMs = -5
	if status, body := postJSON(t, ts, "/v1/batch", req); status != http.StatusBadRequest {
		t.Fatalf("timeout_ms -5: status %d, want 400: %s", status, body)
	}
}

// A client that disconnects before the response is a 499 in the
// accounting — distinct from a server-caused 503.
func TestClientGone499(t *testing.T) {
	s := newTestServer(t)

	gone0 := srvGone.Value()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := json.Marshal(oneSegmentBatch())
	r := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(b)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want 499: %s", w.Code, w.Body)
	}
	if d := srvGone.Value() - gone0; d != 1 {
		t.Errorf("serve.client_gone delta = %d, want 1", d)
	}
}

// The chaos acceptance from the issue: with serve.fill injected to
// always fail, 32 concurrent cold requests produce exactly one breaker
// trip, zero solver attempts, and 503 + Retry-After for every caller;
// once the injection clears and the cooldown expires, a single
// half-open probe recovers the key to 200. Deterministic under -race:
// failures are counted per caller observation, so any interleaving of
// the coalesced fill reaches the threshold, and trips serialise under
// the shard lock.
func TestBreakerChaosAcceptance(t *testing.T) {
	var (
		clockMu sync.Mutex
		clock   = time.Unix(1700000000, 0)
	)
	now := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return clock }
	advance := func(d time.Duration) { clockMu.Lock(); clock = clock.Add(d); clockMu.Unlock() }

	const threshold = 3
	cfg := Config{
		Tech: testTech(), Axes: testAxes(),
		DefaultCheck: check.Warn, DefaultLookup: table.LookupError,
		BreakerFailures: threshold,
		BreakerCooldown: time.Hour,
	}
	cfg.now = now
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fault.Register(fault.NewInjector(31, fault.Rule{
		Point: fault.ServeFill, Mode: fault.ModeError, Prob: 1,
	}))
	defer fault.Reset()

	var (
		opens0  = regBkOpens.Value()
		probes0 = regBkProbes.Value()
		misses0 = regMisses.Value()
		solves0 = obs.GetCounter("table.solver_calls").Value()
	)

	const callers = 32
	statuses := make(chan int, callers)
	noRetryAfter := make(chan int, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, _ := postFull(t, ts, "/v1/batch", oneSegmentBatch())
			statuses <- resp.StatusCode
			if resp.Header.Get("Retry-After") == "" {
				noRetryAfter <- resp.StatusCode
			}
		}()
	}
	close(start)
	wg.Wait()
	close(statuses)
	close(noRetryAfter)
	for status := range statuses {
		if status != http.StatusServiceUnavailable {
			t.Errorf("cold caller got %d, want 503", status)
		}
	}
	if n := len(noRetryAfter); n != 0 {
		t.Errorf("%d of %d 503s missing Retry-After", n, callers)
	}
	if d := regBkOpens.Value() - opens0; d != 1 {
		t.Errorf("serve.breaker_open delta = %d, want exactly 1 trip", d)
	}
	if d := obs.GetCounter("table.solver_calls").Value() - solves0; d != 0 {
		t.Errorf("solver calls = %d during injected fill failures, want 0", d)
	}
	// Fill attempts are bounded by the threshold: after the trip no
	// cold request reaches the fill path at all.
	if d := regMisses.Value() - misses0; d > threshold {
		t.Errorf("fill attempts = %d, want <= threshold %d", d, threshold)
	}

	// The open circuit is visible to operators.
	resp, body := func() (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "breakers_open 1") {
		t.Errorf("healthz during open circuit: %d %q, want ok with breakers_open 1", resp.StatusCode, body)
	}

	// While open and inside the cooldown the shed is a short-circuit:
	// no fill attempt, counted on breaker_rejected.
	rejected0 := regBkRejected.Value()
	if resp, body := postFull(t, ts, "/v1/batch", oneSegmentBatch()); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during cooldown: status %d, want 503: %s", resp.StatusCode, body)
	}
	if d := regBkRejected.Value() - rejected0; d != 1 {
		t.Errorf("serve.breaker_rejected delta = %d, want 1", d)
	}

	// Injection clears, the cooldown expires: one half-open probe
	// rebuilds the table and the key recovers to 200.
	fault.Reset()
	advance(2 * time.Hour)
	if status, body := postJSON(t, ts, "/v1/batch", oneSegmentBatch()); status != http.StatusOK {
		t.Fatalf("post-recovery request: status %d: %s", status, body)
	}
	if d := regBkProbes.Value() - probes0; d != 1 {
		t.Errorf("serve.breaker_probes delta = %d, want 1", d)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body2), "breakers_open 0") {
		t.Errorf("healthz after recovery: %q, want breakers_open 0", body2)
	}
}

// A panicking handler is isolated: the client gets a 500, the panic is
// counted, and the in-flight accounting still drains.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fault.Register(fault.NewInjector(24, fault.Rule{
		Point: fault.ServeRespond, Mode: fault.ModePanic, Prob: 1,
	}))
	panics0 := srvPanics.Value()
	status, body := postJSON(t, ts, "/v1/batch", oneSegmentBatch())
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", status, body)
	}
	if !strings.Contains(string(body), "panic") {
		t.Errorf("500 body does not mention the panic: %s", body)
	}
	if d := srvPanics.Value() - panics0; d != 1 {
		t.Errorf("serve.panics delta = %d, want 1", d)
	}

	// The waitgroup was re-armed despite the panic: Drain returns.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after panic: %v", err)
	}
	fault.Reset()
	if status, body := postJSON(t, ts, "/v1/batch", oneSegmentBatch()); status != http.StatusOK {
		t.Fatalf("post-panic request: status %d: %s", status, body)
	}
	if n := srvInFlightN.Load(); n != 0 {
		t.Errorf("inflight = %d after panic + drain", n)
	}
}

// Once StartDrain is called, /healthz answers 503 (load balancers stop
// routing) and new extraction requests are refused with Retry-After,
// while the metrics surface stays up.
func TestDrainFlipsReadiness(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, body := postJSON(t, ts, "/v1/batch", oneSegmentBatch()); status != http.StatusOK {
		t.Fatalf("pre-drain request: status %d: %s", status, body)
	}
	s.StartDrain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("healthz body %q does not say draining", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining healthz without Retry-After")
	}
	resp2, body2 := postFull(t, ts, "/v1/batch", oneSegmentBatch())
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("extract while draining: status %d, want 503: %s", resp2.StatusCode, body2)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("metrics while draining: status %d, want 200", mresp.StatusCode)
	}
}

// Evict-while-filling racing Acquire at shard-colliding keys: a
// 1-per-shard registry is hammered by workers alternating two keys in
// one shard while cache loads are latency-injected, so evictions land
// on entries that are mid-fill or held. Every held set must stay
// readable (never munmapped underneath a request), and the churn must
// leak neither goroutines nor mappings.
func TestRegistryEvictWhileFillingRace(t *testing.T) {
	cache, err := table.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	axes := testAxes()
	r := NewRegistry(RegistryOptions{Cache: cache, MaxSets: 1}) // perShard = 1
	cfgA := testTableConfig()
	cfgB := sameShardConfig(t, r, cfgA, axes)
	for _, cfg := range []table.Config{cfgA, cfgB} {
		if _, err := cache.GetOrBuildCtx(ctx, cfg, axes, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Slow the mmap loads so fills genuinely overlap the evictions.
	fault.Register(fault.NewInjector(25, fault.Rule{
		Point: fault.CacheRead, Mode: fault.ModeLatency, Prob: 1, Delay: time.Millisecond,
	}))
	defer fault.Reset()

	goroutines0 := runtime.NumGoroutine()
	maps0 := mappingCount(t)

	const workers, iters = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cfg := cfgA
		if w%2 == 1 {
			cfg = cfgB
		}
		wg.Add(1)
		go func(cfg table.Config) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				set, rel, err := r.Acquire(ctx, cfg, axes)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if _, err := set.SelfL(set.Axes.Widths[0], set.Axes.Lengths[0]); err != nil {
					t.Errorf("lookup on held set: %v", err)
				}
				rel()
			}
		}(cfg)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Goroutine flatness (the registry fills on caller goroutines; any
	// growth is a leak). Allow the runtime a moment to retire helpers.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutines0+2 {
		if time.Now().After(deadline) {
			t.Errorf("goroutines grew %d → %d across the churn", goroutines0, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if maps1 := mappingCount(t); maps1-maps0 > 4 {
		t.Errorf("mapping count grew %d → %d: evicted sets leaked mappings", maps0, maps1)
	}
}
