package serve

import (
	"context"
	"fmt"
	"time"
)

// Admission control sits in front of the extract/batch handlers: a
// bounded concurrency semaphore plus a short bounded wait queue.
// Under overload the daemon's job is to keep the admitted work fast
// and shed the rest with 429 + Retry-After — a queue deeper than a
// few requests only converts overload into latency, and an unbounded
// handler count converts it into an OOM. Warm lookups are
// microseconds, so capacity here is really a bound on how many cold
// builds and JSON codecs can be in flight at once.

// ShedError is returned when admission control refuses a request; it
// maps to 429 + Retry-After at the HTTP layer.
type ShedError struct {
	Reason     string // "queue full", "queue wait deadline", "injected"
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: overloaded (%s); retry in %s", e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// admitter implements the semaphore + bounded queue. A nil *admitter
// admits everything (admission disabled).
type admitter struct {
	sem   chan struct{} // capacity tokens: len == in-flight handlers
	queue chan struct{} // queue tokens: len == waiters
	wait  time.Duration // max time a queued request waits for a slot
}

// newAdmitter builds an admitter with the given concurrency capacity,
// queue depth and queue-wait budget. capacity <= 0 disables admission
// control. queue <= 0 means no waiting: at capacity every request
// sheds immediately. wait <= 0 defaults to one second.
func newAdmitter(capacity, queue int, wait time.Duration) *admitter {
	if capacity <= 0 {
		return nil
	}
	if wait <= 0 {
		wait = time.Second
	}
	a := &admitter{sem: make(chan struct{}, capacity), wait: wait}
	if queue > 0 {
		a.queue = make(chan struct{}, queue)
	}
	return a
}

// admit blocks until the request holds a capacity token, sheds it, or
// ctx is cancelled (a client that hung up while queued is not a
// shed). On success the returned release frees the token; it must be
// called exactly once.
func (a *admitter) admit(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	// Fast path: capacity available, no queueing.
	select {
	case a.sem <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.queue == nil {
		return nil, &ShedError{Reason: "at capacity", RetryAfter: a.retryAfter()}
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, &ShedError{Reason: "queue full", RetryAfter: a.retryAfter()}
	}
	defer func() { <-a.queue }()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		return a.release, nil
	case <-timer.C:
		return nil, &ShedError{Reason: "queue wait deadline", RetryAfter: a.retryAfter()}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admitter) release() { <-a.sem }

// retryAfter hints how long a shed client should back off: the queue
// drains within one queue-wait budget, floored at a second because
// Retry-After has second granularity.
func (a *admitter) retryAfter() time.Duration {
	if a.wait > time.Second {
		return a.wait
	}
	return time.Second
}
