package serve

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1700000000, 0)
	b := &breaker{threshold: 3, cooldown: 5 * time.Second}

	// Closed: failures below the threshold keep admitting.
	for i := 0; i < 2; i++ {
		if ok, _, probe := b.allow(now); !ok || probe {
			t.Fatalf("closed breaker: allow = (%v, probe %v) after %d failures", ok, probe, i)
		}
		if b.failure(now) {
			t.Fatalf("failure %d tripped below threshold", i+1)
		}
	}
	// Third consecutive failure trips.
	if !b.failure(now) {
		t.Fatal("threshold failure did not trip")
	}
	if b.state != bkOpen {
		t.Fatalf("state %v after trip, want open", b.state)
	}

	// Open: short-circuit with the remaining cooldown.
	ok, retry, _ := b.allow(now.Add(2 * time.Second))
	if ok {
		t.Fatal("open breaker admitted during cooldown")
	}
	if retry != 3*time.Second {
		t.Fatalf("retryAfter = %s, want remaining 3s", retry)
	}

	// Failures observed while open (late waiters) never re-trip.
	if b.failure(now.Add(time.Second)) {
		t.Fatal("failure while open counted as a trip")
	}

	// Cooldown expiry: exactly one half-open probe.
	later := now.Add(6 * time.Second)
	ok, _, probe := b.allow(later)
	if !ok || !probe {
		t.Fatalf("post-cooldown allow = (%v, probe %v), want one probe", ok, probe)
	}
	if ok, retry, _ := b.allow(later); ok || retry <= 0 {
		t.Fatalf("second caller during probe: allow = (%v, %s), want rejection with hint", ok, retry)
	}

	// Failed probe re-opens for a full cooldown and counts as a trip.
	if !b.failure(later) {
		t.Fatal("failed probe did not count as a trip")
	}
	if ok, _, _ := b.allow(later.Add(time.Second)); ok {
		t.Fatal("breaker admitted during post-probe cooldown")
	}

	// Successful probe closes and resets the failure count.
	if ok, _, probe := b.allow(later.Add(10 * time.Second)); !ok || !probe {
		t.Fatal("no probe after second cooldown")
	}
	b.success()
	if b.state != bkClosed || b.failures != 0 {
		t.Fatalf("state %v failures %d after success, want closed 0", b.state, b.failures)
	}
	if b.failure(later) {
		t.Fatal("first failure after recovery tripped (stale count)")
	}
}

func TestAdmitterCapacityAndQueue(t *testing.T) {
	// nil admitter (admission disabled) admits everything.
	var off *admitter
	rel, err := off.admit(context.Background())
	if err != nil {
		t.Fatalf("nil admitter refused: %v", err)
	}
	rel()

	// capacity 1, no queue: at capacity every request sheds at once.
	a := newAdmitter(1, 0, time.Second)
	rel1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var shed *ShedError
	if _, err := a.admit(context.Background()); !errors.As(err, &shed) {
		t.Fatalf("at capacity: err = %v, want ShedError", err)
	} else if shed.RetryAfter < time.Second {
		t.Fatalf("Retry-After %s below the 1s floor", shed.RetryAfter)
	}
	rel1()
	rel2, err := a.admit(context.Background())
	if err != nil {
		t.Fatalf("post-release admit: %v", err)
	}
	rel2()
}

func TestAdmitterQueueWaitAndHandoff(t *testing.T) {
	a := newAdmitter(1, 1, 200*time.Millisecond)
	rel1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One waiter queues; it must be admitted when the slot frees.
	admitted := make(chan func(), 1)
	errCh := make(chan error, 1)
	go func() {
		rel, err := a.admit(context.Background())
		if err != nil {
			errCh <- err
			return
		}
		admitted <- rel
	}()
	// Wait until the waiter holds the queue token, then a third request
	// finds the queue full and sheds immediately.
	deadline := time.Now().Add(5 * time.Second)
	for len(a.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never entered the queue")
		}
		time.Sleep(time.Millisecond)
	}
	var shed *ShedError
	if _, err := a.admit(context.Background()); !errors.As(err, &shed) {
		t.Fatalf("queue full: err = %v, want ShedError", err)
	}

	rel1()
	select {
	case rel := <-admitted:
		rel()
	case err := <-errCh:
		t.Fatalf("queued request shed despite a freed slot: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never admitted")
	}
}

func TestAdmitterQueueWaitDeadline(t *testing.T) {
	a := newAdmitter(1, 1, 20*time.Millisecond)
	rel1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel1()
	var shed *ShedError
	if _, err := a.admit(context.Background()); !errors.As(err, &shed) {
		t.Fatalf("queue-wait expiry: err = %v, want ShedError", err)
	} else if shed.Reason != "queue wait deadline" {
		t.Fatalf("shed reason %q", shed.Reason)
	}
}

func TestAdmitterClientGoneWhileQueuedIsNotShed(t *testing.T) {
	a := newAdmitter(1, 1, time.Minute)
	rel1, err := a.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel1()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx)
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(a.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never entered the queue")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errCh:
		var shed *ShedError
		if errors.As(err, &shed) {
			t.Fatalf("cancelled waiter reported as shed: %v", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	// The queue token must be returned.
	if len(a.queue) != 0 {
		t.Fatalf("queue token leaked: len %d", len(a.queue))
	}
}

func TestRequestBudget(t *testing.T) {
	s := &Server{cfg: Config{RequestTimeout: 100 * time.Millisecond}}
	for _, tc := range []struct {
		ms   float64
		want time.Duration
	}{
		{0, 100 * time.Millisecond},   // no client value: server cap
		{50, 50 * time.Millisecond},   // client lowers
		{500, 100 * time.Millisecond}, // client may never raise
	} {
		got, err := s.requestBudget(tc.ms)
		if err != nil || got != tc.want {
			t.Errorf("requestBudget(%g) = (%s, %v), want %s", tc.ms, got, err, tc.want)
		}
	}
	uncapped := &Server{}
	if got, err := uncapped.requestBudget(250); err != nil || got != 250*time.Millisecond {
		t.Errorf("uncapped requestBudget(250) = (%s, %v)", got, err)
	}
	if got, err := uncapped.requestBudget(0); err != nil || got != 0 {
		t.Errorf("uncapped requestBudget(0) = (%s, %v)", got, err)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := s.requestBudget(bad); err == nil {
			t.Errorf("requestBudget(%g) accepted", bad)
		}
	}
}
