package spline

// Fuzz the precomputed-coefficient Grid.Eval against the recursive
// reference evaluator it replaced (referenceEval, kept in
// spline_test.go as the golden implementation). The grid shape, knot
// positions, values and query point are all derived from fuzzer input,
// so the equivalence is exercised far off the log-spaced layouts the
// golden test pins — including the linear extrapolation region.

import (
	"math"
	"testing"
)

func FuzzGridEvalReference(f *testing.F) {
	f.Add(byte(2), byte(3), []byte{10, 200, 30, 40, 7, 99, 120, 3, 250, 18, 64}, 1.5, 2.5)
	f.Add(byte(4), byte(2), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, -3.0, 100.0)
	f.Add(byte(3), byte(3), []byte{0}, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, n1, n2 byte, raw []byte, c1, c2 float64) {
		if math.IsNaN(c1) || math.IsInf(c1, 0) || math.IsNaN(c2) || math.IsInf(c2, 0) {
			t.Skip("non-finite query point")
		}
		na := 2 + int(n1%3) // 2..4 knots per axis
		nb := 2 + int(n2%3)
		// Deterministic byte stream, cycling raw so short inputs still
		// produce full grids.
		at := 0
		next := func() byte {
			if len(raw) == 0 {
				return 37
			}
			b := raw[at%len(raw)]
			at++
			return b
		}
		axis := func(n int) []float64 {
			ax := make([]float64, n)
			x := 0.0
			for i := range ax {
				x += 0.25 + float64(next())/64 // strictly increasing steps
				ax[i] = x
			}
			return ax
		}
		axes := [][]float64{axis(na), axis(nb)}
		vals := make([]float64, na*nb)
		for i := range vals {
			vals[i] = (float64(next()) - 128) / 16
		}
		g, err := NewGrid(axes, vals)
		if err != nil {
			t.Fatalf("NewGrid rejected a well-formed grid: %v", err)
		}
		// Map the fuzzed query into a window one span wide around each
		// axis, covering interior, knot-exact and extrapolated points.
		coord := func(ax []float64, c float64) float64 {
			lo, hi := ax[0], ax[len(ax)-1]
			span := hi - lo
			return lo - span/2 + math.Mod(math.Abs(c), 2*span)
		}
		coords := []float64{coord(axes[0], c1), coord(axes[1], c2)}
		got, err := g.Eval(coords...)
		if err != nil {
			t.Fatalf("Eval(%v) failed: %v", coords, err)
		}
		want := referenceEval(axes, vals, coords)
		if math.IsNaN(got) != math.IsNaN(want) {
			t.Fatalf("Eval(%v) = %g, reference = %g (NaN mismatch)", coords, got, want)
		}
		if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("Eval(%v) = %g, reference = %g (diff %g)", coords, got, want, diff)
		}
	})
}
