package spline

import (
	"math"
	"testing"
	"testing/quick"
)

func linspace(a, b float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	return out
}

func logspace(a, b float64, n int) []float64 {
	out := make([]float64, n)
	la, lb := math.Log(a), math.Log(b)
	for i := range out {
		out[i] = math.Exp(la + (lb-la)*float64(i)/float64(n-1))
	}
	return out
}

func TestSpline1DReproducesKnots(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 7}
	ys := []float64{1, -2, 0.5, 3, -1}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if got := s.Eval(x); math.Abs(got-ys[i]) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want knot %g", x, got, ys[i])
		}
	}
}

func TestSpline1DExactForLinear(t *testing.T) {
	xs := linspace(0, 10, 7)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-2, 0.7, 3.3, 9.99, 15} {
		want := 3*x - 2
		if got := s.Eval(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("linear reproduction failed at %g: %g vs %g", x, got, want)
		}
	}
}

func TestSpline1DSinAccuracy(t *testing.T) {
	xs := linspace(0, math.Pi, 12)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x)
	}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.05; x < math.Pi; x += 0.1 {
		if err := math.Abs(s.Eval(x) - math.Sin(x)); err > 2e-3 {
			t.Errorf("sin interp error %g at %g", err, x)
		}
	}
}

func TestSpline1DLogLikeInductanceCurve(t *testing.T) {
	// The inductance tables are smooth log-like functions of length;
	// with the log-spaced knots the table builder uses, interpolation
	// error must be tiny on such shapes.
	f := func(l float64) float64 { return l * (math.Log(2*l/3e-6) + 0.5) }
	xs := logspace(100e-6, 6000e-6, 9)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(x)
	}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{150e-6, 777e-6, 2500e-6, 5900e-6} {
		rel := math.Abs(s.Eval(x)-f(x)) / f(x)
		// The natural boundary condition caps accuracy in the first
		// panel; 0.2 % there, much better in the interior.
		if rel > 2e-3 {
			t.Errorf("rel error %g at %g", rel, x)
		}
	}
}

func TestSpline1DLinearExtrapolation(t *testing.T) {
	xs := linspace(0, 1, 5)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the right end the continuation must be linear: second
	// differences vanish.
	d1 := s.Eval(1.2) - s.Eval(1.1)
	d2 := s.Eval(1.3) - s.Eval(1.2)
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("extrapolation not linear: deltas %g vs %g", d1, d2)
	}
	// And continuous at the boundary.
	if math.Abs(s.Eval(1+1e-9)-s.Eval(1-1e-9)) > 1e-6 {
		t.Error("extrapolation discontinuous at right end")
	}
}

func TestNew1DErrors(t *testing.T) {
	if _, err := New1D([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := New1D([]float64{0}, []float64{1}); err == nil {
		t.Error("accepted single point")
	}
	if _, err := New1D([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("accepted non-increasing abscissae")
	}
}

func TestGridBicubicProductFunction(t *testing.T) {
	// f(x, y) = (x² + 1)(y + 2): smooth, separable.
	xs := linspace(0, 2, 7)
	ys := linspace(-1, 1, 6)
	vals := make([]float64, len(xs)*len(ys))
	for i, x := range xs {
		for j, y := range ys {
			vals[i*len(ys)+j] = (x*x + 1) * (y + 2)
		}
	}
	g, err := NewGrid([][]float64{xs, ys}, vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]float64{{0.3, 0.4}, {1.77, -0.9}, {1.01, 0}} {
		want := (p[0]*p[0] + 1) * (p[1] + 2)
		got, err := g.Eval(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 2e-3 {
			t.Errorf("bicubic error %g at %v", rel, p)
		}
	}
}

func TestGrid4DInterpolation(t *testing.T) {
	// Shape of the mutual table: (w1, w2, s, l), smooth in each axis.
	w1 := linspace(1, 4, 4)
	w2 := linspace(1, 4, 4)
	sp := logspace(1, 8, 5)
	ln := logspace(100, 1000, 6)
	f := func(a, b, s, l float64) float64 {
		return l * math.Log(1+l/(s+a/2+b/2))
	}
	vals := make([]float64, 0, 4*4*5*5)
	for _, a := range w1 {
		for _, b := range w2 {
			for _, s := range sp {
				for _, l := range ln {
					vals = append(vals, f(a, b, s, l))
				}
			}
		}
	}
	g, err := NewGrid([][]float64{w1, w2, sp, ln}, vals)
	if err != nil {
		t.Fatal(err)
	}
	pts := [][4]float64{
		{1.5, 2.5, 3.3, 550},
		{3.2, 1.1, 6.7, 130},
		{2, 2, 2, 900},
	}
	for _, p := range pts {
		want := f(p[0], p[1], p[2], p[3])
		got, err := g.Eval(p[0], p[1], p[2], p[3])
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("4-D interp rel error %g at %v", rel, p)
		}
	}
}

func TestGridSingletonAxis(t *testing.T) {
	g, err := NewGrid([][]float64{{5}, {0, 1, 2}}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Eval(99, 1.5) // singleton axis coordinate ignored
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 1e-9 {
		t.Errorf("singleton-axis eval = %g, want 2.5", got)
	}
}

func TestGridAtSetRoundTrip(t *testing.T) {
	g, err := NewGrid([][]float64{{0, 1}, {0, 1, 2}}, make([]float64, 6))
	if err != nil {
		t.Fatal(err)
	}
	g.Set(42, 1, 2)
	if g.At(1, 2) != 42 {
		t.Error("Set/At round trip failed")
	}
	if g.At(0, 0) != 0 {
		t.Error("Set leaked to other cells")
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid(nil, nil); err == nil {
		t.Error("accepted empty axes")
	}
	if _, err := NewGrid([][]float64{{0, 1}}, []float64{1}); err == nil {
		t.Error("accepted wrong value count")
	}
	if _, err := NewGrid([][]float64{{1, 0}}, []float64{1, 2}); err == nil {
		t.Error("accepted decreasing axis")
	}
	g, _ := NewGrid([][]float64{{0, 1}}, []float64{1, 2})
	if _, err := g.Eval(0.5, 0.5); err == nil {
		t.Error("accepted wrong coordinate count")
	}
}

// Property: grid interpolation reproduces every knot exactly.
func TestQuickGridReproducesKnots(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		nx := int(seed%3) + 2
		ny := int(seed/3%3) + 2
		xs := linspace(0, float64(nx), nx)
		ys := linspace(0, float64(ny), ny)
		vals := make([]float64, nx*ny)
		for i := range vals {
			vals[i] = math.Sin(float64(i) + float64(seed%17))
		}
		g, err := NewGrid([][]float64{xs, ys}, vals)
		if err != nil {
			return false
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				got, err := g.Eval(xs[i], ys[j])
				if err != nil || math.Abs(got-vals[i*ny+j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
