package spline

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func linspace(a, b float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	return out
}

func logspace(a, b float64, n int) []float64 {
	out := make([]float64, n)
	la, lb := math.Log(a), math.Log(b)
	for i := range out {
		out[i] = math.Exp(la + (lb-la)*float64(i)/float64(n-1))
	}
	return out
}

func TestSpline1DReproducesKnots(t *testing.T) {
	xs := []float64{0, 1, 2.5, 4, 7}
	ys := []float64{1, -2, 0.5, 3, -1}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if got := s.Eval(x); math.Abs(got-ys[i]) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want knot %g", x, got, ys[i])
		}
	}
}

func TestSpline1DExactForLinear(t *testing.T) {
	xs := linspace(0, 10, 7)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 2
	}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-2, 0.7, 3.3, 9.99, 15} {
		want := 3*x - 2
		if got := s.Eval(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("linear reproduction failed at %g: %g vs %g", x, got, want)
		}
	}
}

func TestSpline1DSinAccuracy(t *testing.T) {
	xs := linspace(0, math.Pi, 12)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x)
	}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.05; x < math.Pi; x += 0.1 {
		if err := math.Abs(s.Eval(x) - math.Sin(x)); err > 2e-3 {
			t.Errorf("sin interp error %g at %g", err, x)
		}
	}
}

func TestSpline1DLogLikeInductanceCurve(t *testing.T) {
	// The inductance tables are smooth log-like functions of length;
	// with the log-spaced knots the table builder uses, interpolation
	// error must be tiny on such shapes.
	f := func(l float64) float64 { return l * (math.Log(2*l/3e-6) + 0.5) }
	xs := logspace(100e-6, 6000e-6, 9)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = f(x)
	}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{150e-6, 777e-6, 2500e-6, 5900e-6} {
		rel := math.Abs(s.Eval(x)-f(x)) / f(x)
		// The natural boundary condition caps accuracy in the first
		// panel; 0.2 % there, much better in the interior.
		if rel > 2e-3 {
			t.Errorf("rel error %g at %g", rel, x)
		}
	}
}

func TestSpline1DLinearExtrapolation(t *testing.T) {
	xs := linspace(0, 1, 5)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	s, err := New1D(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond the right end the continuation must be linear: second
	// differences vanish.
	d1 := s.Eval(1.2) - s.Eval(1.1)
	d2 := s.Eval(1.3) - s.Eval(1.2)
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("extrapolation not linear: deltas %g vs %g", d1, d2)
	}
	// And continuous at the boundary.
	if math.Abs(s.Eval(1+1e-9)-s.Eval(1-1e-9)) > 1e-6 {
		t.Error("extrapolation discontinuous at right end")
	}
}

func TestNew1DErrors(t *testing.T) {
	if _, err := New1D([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := New1D([]float64{0}, []float64{1}); err == nil {
		t.Error("accepted single point")
	}
	if _, err := New1D([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("accepted non-increasing abscissae")
	}
}

func TestGridBicubicProductFunction(t *testing.T) {
	// f(x, y) = (x² + 1)(y + 2): smooth, separable.
	xs := linspace(0, 2, 7)
	ys := linspace(-1, 1, 6)
	vals := make([]float64, len(xs)*len(ys))
	for i, x := range xs {
		for j, y := range ys {
			vals[i*len(ys)+j] = (x*x + 1) * (y + 2)
		}
	}
	g, err := NewGrid([][]float64{xs, ys}, vals)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]float64{{0.3, 0.4}, {1.77, -0.9}, {1.01, 0}} {
		want := (p[0]*p[0] + 1) * (p[1] + 2)
		got, err := g.Eval(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 2e-3 {
			t.Errorf("bicubic error %g at %v", rel, p)
		}
	}
}

func TestGrid4DInterpolation(t *testing.T) {
	// Shape of the mutual table: (w1, w2, s, l), smooth in each axis.
	w1 := linspace(1, 4, 4)
	w2 := linspace(1, 4, 4)
	sp := logspace(1, 8, 5)
	ln := logspace(100, 1000, 6)
	f := func(a, b, s, l float64) float64 {
		return l * math.Log(1+l/(s+a/2+b/2))
	}
	vals := make([]float64, 0, 4*4*5*5)
	for _, a := range w1 {
		for _, b := range w2 {
			for _, s := range sp {
				for _, l := range ln {
					vals = append(vals, f(a, b, s, l))
				}
			}
		}
	}
	g, err := NewGrid([][]float64{w1, w2, sp, ln}, vals)
	if err != nil {
		t.Fatal(err)
	}
	pts := [][4]float64{
		{1.5, 2.5, 3.3, 550},
		{3.2, 1.1, 6.7, 130},
		{2, 2, 2, 900},
	}
	for _, p := range pts {
		want := f(p[0], p[1], p[2], p[3])
		got, err := g.Eval(p[0], p[1], p[2], p[3])
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("4-D interp rel error %g at %v", rel, p)
		}
	}
}

func TestGridSingletonAxis(t *testing.T) {
	g, err := NewGrid([][]float64{{5}, {0, 1, 2}}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Eval(99, 1.5) // singleton axis coordinate ignored
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5) > 1e-9 {
		t.Errorf("singleton-axis eval = %g, want 2.5", got)
	}
}

func TestGridAtSetRoundTrip(t *testing.T) {
	g, err := NewGrid([][]float64{{0, 1}, {0, 1, 2}}, make([]float64, 6))
	if err != nil {
		t.Fatal(err)
	}
	g.Set(42, 1, 2)
	if g.At(1, 2) != 42 {
		t.Error("Set/At round trip failed")
	}
	if g.At(0, 0) != 0 {
		t.Error("Set leaked to other cells")
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid(nil, nil); err == nil {
		t.Error("accepted empty axes")
	}
	if _, err := NewGrid([][]float64{{0, 1}}, []float64{1}); err == nil {
		t.Error("accepted wrong value count")
	}
	if _, err := NewGrid([][]float64{{1, 0}}, []float64{1, 2}); err == nil {
		t.Error("accepted decreasing axis")
	}
	g, _ := NewGrid([][]float64{{0, 1}}, []float64{1, 2})
	if _, err := g.Eval(0.5, 0.5); err == nil {
		t.Error("accepted wrong coordinate count")
	}
}

// referenceEval is the pre-coefficient recursive evaluator the Grid
// replaced: a spline along the first axis through values each obtained
// by recursively interpolating the remaining axes with freshly built
// natural splines. Kept here as the golden reference for the
// precomputed cardinal-weight contraction.
func referenceEval(axes [][]float64, vals, coords []float64) float64 {
	ax := axes[0]
	if len(axes) == 1 {
		if len(ax) == 1 {
			return vals[0]
		}
		s, err := New1D(ax, vals)
		if err != nil {
			panic(err)
		}
		return s.Eval(coords[0])
	}
	stride := len(vals) / len(ax)
	line := make([]float64, len(ax))
	for i := range ax {
		line[i] = referenceEval(axes[1:], vals[i*stride:(i+1)*stride], coords[1:])
	}
	if len(ax) == 1 {
		return line[0]
	}
	s, err := New1D(ax, line)
	if err != nil {
		panic(err)
	}
	return s.Eval(coords[0])
}

// Golden equivalence: on grids shaped like the inductance tables (2-D
// self over width×length, 4-D mutual over w1×w2×spacing×length, log
// axes), the precomputed-coefficient Eval must match the recursive
// reference to 1e-12 relative — on knots, off grid and in the linear
// extrapolation region of every axis.
func TestGridMatchesRecursiveReference(t *testing.T) {
	selfAxes := [][]float64{logspace(0.6e-6, 20e-6, 6), logspace(50e-6, 8000e-6, 8)}
	mutAxes := [][]float64{
		logspace(0.6e-6, 20e-6, 6), logspace(0.6e-6, 20e-6, 6),
		logspace(0.6e-6, 40e-6, 5), logspace(50e-6, 8000e-6, 8),
	}
	fill := func(axes [][]float64, f func(c []float64) float64) []float64 {
		size := 1
		for _, ax := range axes {
			size *= len(ax)
		}
		vals := make([]float64, size)
		c := make([]float64, len(axes))
		for k := 0; k < size; k++ {
			rem := k
			for d := len(axes) - 1; d >= 0; d-- {
				c[d] = axes[d][rem%len(axes[d])]
				rem /= len(axes[d])
			}
			vals[k] = f(c)
		}
		return vals
	}
	// Smooth log-like shapes of the same character as the tables.
	selfF := func(c []float64) float64 {
		w, l := c[0], c[1]
		return 2e-7 * l * (math.Log(2*l/(w+0.4e-6)) + 0.5)
	}
	mutF := func(c []float64) float64 {
		w1, w2, s, l := c[0], c[1], c[2], c[3]
		d := s + w1/2 + w2/2
		return 2e-7 * l * math.Log(1+l/d)
	}
	// Probes per axis: a knot, two interior points and both
	// extrapolation sides.
	probes := func(ax []float64) []float64 {
		lo, hi := ax[0], ax[len(ax)-1]
		return []float64{
			0.8 * lo, lo, math.Sqrt(ax[0] * ax[1]),
			math.Sqrt(lo * hi), hi, 1.3 * hi,
		}
	}
	check := func(name string, axes [][]float64, f func(c []float64) float64) {
		g, err := NewGrid(axes, fill(axes, f))
		if err != nil {
			t.Fatal(err)
		}
		var rec func(d int, c []float64)
		rec = func(d int, c []float64) {
			if d == len(axes) {
				want := referenceEval(axes, g.Vals, c)
				got, err := g.Eval(c...)
				if err != nil {
					t.Fatal(err)
				}
				if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-12 {
					t.Errorf("%s: Eval(%v) = %g, reference %g (rel %g)", name, c, got, want, rel)
				}
				return
			}
			for _, x := range probes(axes[d]) {
				c[d] = x
				rec(d+1, c)
			}
		}
		rec(0, make([]float64, len(axes)))
	}
	check("self", selfAxes, selfF)
	check("mutual", mutAxes, mutF)
}

// Mutate-after-Set: with no lazy cache left, a Set must be visible to
// the very next Eval, exactly at the knot and smoothly off grid.
func TestGridSetVisibleToEval(t *testing.T) {
	xs := linspace(0, 4, 5)
	ys := linspace(0, 3, 4)
	vals := make([]float64, len(xs)*len(ys))
	for i := range vals {
		vals[i] = float64(i)
	}
	g, err := NewGrid([][]float64{xs, ys}, vals)
	if err != nil {
		t.Fatal(err)
	}
	before, err := g.Eval(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(before+100, 2, 1)
	after, err := g.Eval(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-(before+100)) > 1e-9 {
		t.Errorf("Eval at mutated knot = %g, want %g", after, before+100)
	}
	// Off-grid neighbourhood must move too (the stale-cache failure
	// mode was returning the old surface here).
	off1, _ := g.Eval(1.9, 1.1)
	g.Set(before, 2, 1)
	off2, _ := g.Eval(1.9, 1.1)
	if off1 == off2 {
		t.Error("off-grid Eval did not react to Set")
	}
}

// Concurrent lookups on a shared grid must be race-free (run under
// -race) and return the same values as a serial pass.
func TestGridConcurrentEval(t *testing.T) {
	axes := [][]float64{
		logspace(1, 20, 6), logspace(1, 20, 6),
		logspace(1, 40, 5), logspace(50, 8000, 8),
	}
	vals := make([]float64, 6*6*5*8)
	for i := range vals {
		vals[i] = math.Sin(float64(i)/7) + 2
	}
	g, err := NewGrid(axes, vals)
	if err != nil {
		t.Fatal(err)
	}
	coords := make([][4]float64, 64)
	want := make([]float64, len(coords))
	for i := range coords {
		f := float64(i)
		coords[i] = [4]float64{1 + f/4, 20 - f/5, 1 + f/2, 100 + 100*f}
		if want[i], err = g.Eval(coords[i][0], coords[i][1], coords[i][2], coords[i][3]); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				i := (seed + rep) % len(coords)
				got, err := g.Eval(coords[i][0], coords[i][1], coords[i][2], coords[i][3])
				if err != nil {
					errs <- err
					return
				}
				if got != want[i] {
					errs <- fmt.Errorf("concurrent Eval drift: %g vs %g", got, want[i])
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// Property: grid interpolation reproduces every knot exactly.
func TestQuickGridReproducesKnots(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		nx := int(seed%3) + 2
		ny := int(seed/3%3) + 2
		xs := linspace(0, float64(nx), nx)
		ys := linspace(0, float64(ny), ny)
		vals := make([]float64, nx*ny)
		for i := range vals {
			vals[i] = math.Sin(float64(i) + float64(seed%17))
		}
		g, err := NewGrid([][]float64{xs, ys}, vals)
		if err != nil {
			return false
		}
		for i := 0; i < nx; i++ {
			for j := 0; j < ny; j++ {
				got, err := g.Eval(xs[i], ys[j])
				if err != nil || math.Abs(got-vals[i*ny+j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
