package spline

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// batchTestGrid builds a 4-D grid shaped like the mutual-inductance
// table with deterministic but non-trivial values.
func batchTestGrid(t testing.TB) *Grid {
	t.Helper()
	axes := [][]float64{
		linspace(0.1, 2, 6),
		linspace(0.1, 2, 6),
		logspace(0.2, 10, 5),
		logspace(10, 3000, 8),
	}
	size := 1
	for _, ax := range axes {
		size *= len(ax)
	}
	vals := make([]float64, size)
	for i := range vals {
		vals[i] = math.Sin(float64(i)*0.37) + 2.5
	}
	g, err := NewGrid(axes, vals)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// batchQueries generates nq coordinate tuples: a mix of in-range,
// extrapolated, and deliberately repeated tuples (ndistinct distinct
// geometries, like a clock tree's repeated segment shapes).
func batchQueries(rng *rand.Rand, g *Grid, nq, ndistinct int) []float64 {
	dim := g.Dim()
	distinct := make([][]float64, ndistinct)
	for i := range distinct {
		q := make([]float64, dim)
		for d, ax := range g.Axes {
			lo, hi := ax[0], ax[len(ax)-1]
			// 10% below-range, 10% above-range, rest inside.
			switch r := rng.Float64(); {
			case r < 0.1:
				q[d] = lo - rng.Float64()*lo*0.5
			case r > 0.9:
				q[d] = hi * (1 + rng.Float64()*0.3)
			default:
				q[d] = lo + rng.Float64()*(hi-lo)
			}
		}
		distinct[i] = q
	}
	coords := make([]float64, 0, nq*dim)
	for i := 0; i < nq; i++ {
		coords = append(coords, distinct[rng.Intn(ndistinct)]...)
	}
	return coords
}

// TestEvalBatchMatchesEvalBitwise is the batch path's core contract:
// for every batch size and query order, EvalBatch result i is
// bit-identical (not merely close) to Eval on the same tuple.
func TestEvalBatchMatchesEvalBitwise(t *testing.T) {
	g := batchTestGrid(t)
	dim := g.Dim()
	for _, tc := range []struct {
		nq, ndistinct int
	}{
		{1, 1}, {2, 1}, {7, 3}, {64, 5}, {64, 64}, {257, 16}, {1024, 16},
	} {
		rng := rand.New(rand.NewSource(int64(tc.nq)*1000 + int64(tc.ndistinct)))
		coords := batchQueries(rng, g, tc.nq, tc.ndistinct)
		want := make([]float64, tc.nq)
		for i := range want {
			v, err := g.Eval(coords[i*dim : (i+1)*dim]...)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = v
		}
		got := make([]float64, tc.nq)
		if err := g.EvalBatch(coords, got); err != nil {
			t.Fatalf("nq=%d: %v", tc.nq, err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("nq=%d ndistinct=%d query %d: batch %v != scalar %v (bitwise)",
					tc.nq, tc.ndistinct, i, got[i], want[i])
			}
		}

		// Shuffle the query order: results must follow their queries
		// and stay bit-identical — order independence is what makes
		// the lexicographic sort an invisible optimisation.
		perm := rng.Perm(tc.nq)
		shuf := make([]float64, len(coords))
		for to, from := range perm {
			copy(shuf[to*dim:(to+1)*dim], coords[from*dim:(from+1)*dim])
		}
		gotShuf := make([]float64, tc.nq)
		if err := g.EvalBatch(shuf, gotShuf); err != nil {
			t.Fatal(err)
		}
		for to, from := range perm {
			if math.Float64bits(gotShuf[to]) != math.Float64bits(want[from]) {
				t.Fatalf("nq=%d shuffled query %d: %v != %v (bitwise)",
					tc.nq, to, gotShuf[to], want[from])
			}
		}
	}
}

func TestEvalBatchEmptyAndSizeMismatch(t *testing.T) {
	g := batchTestGrid(t)
	if err := g.EvalBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := g.EvalBatch(make([]float64, 7), make([]float64, 2)); err == nil {
		t.Fatal("want error for coords/out size mismatch")
	}
}

// TestEvalBatchConcurrent exercises the shared scratch pool and the
// package-level order pool under the race detector: many goroutines
// batch-evaluating one grid must neither race nor cross results.
func TestEvalBatchConcurrent(t *testing.T) {
	g := batchTestGrid(t)
	dim := g.Dim()
	rng := rand.New(rand.NewSource(99))
	coords := batchQueries(rng, g, 128, 9)
	want := make([]float64, 128)
	for i := range want {
		v, err := g.Eval(coords[i*dim : (i+1)*dim]...)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, 128)
			for rep := 0; rep < 20; rep++ {
				if err := g.EvalBatch(coords, out); err != nil {
					t.Error(err)
					return
				}
				for i := range out {
					if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
						t.Errorf("concurrent batch query %d: %v != %v", i, out[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestNewGridWithCoefBitIdentical: a grid rebuilt from exported
// coefficient matrices evaluates bit-identically to the original —
// the property codec v3 relies on to skip tridiagonal solves at load.
func TestNewGridWithCoefBitIdentical(t *testing.T) {
	g := batchTestGrid(t)
	coef := make([][]float64, g.Dim())
	for d := range coef {
		coef[d] = g.Coef(d)
	}
	g2, err := NewGridWithCoef(g.Axes, g.Vals, coef)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	coords := batchQueries(rng, g, 64, 64)
	dim := g.Dim()
	for i := 0; i < 64; i++ {
		q := coords[i*dim : (i+1)*dim]
		a, err := g.Eval(q...)
		if err != nil {
			t.Fatal(err)
		}
		b, err := g2.Eval(q...)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("query %d: rebuilt grid %v != original %v (bitwise)", i, b, a)
		}
	}
}

func TestNewGridWithCoefRejectsBadShapes(t *testing.T) {
	axes := [][]float64{{0, 1, 2}, {5}}
	vals := []float64{1, 2, 3}
	good, err := NewGrid(axes, vals)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][][]float64{
		{good.Coef(0)},               // missing a matrix
		{good.Coef(0)[:4], nil},      // wrong size
		{good.Coef(0), {1, 2, 3, 4}}, // singleton axis with coefficients
		{nil, nil},                   // nil matrix for non-singleton axis
	}
	for i, coef := range cases {
		if _, err := NewGridWithCoef(axes, vals, coef); err == nil {
			t.Errorf("case %d: want shape error, got nil", i)
		}
	}
}
