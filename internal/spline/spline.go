// Package spline implements natural cubic spline interpolation in one
// dimension and tensor-product spline interpolation over N-dimensional
// rectilinear grids — the "bi-cubic spline algorithm [10]" the paper
// uses to interpolate and extrapolate its inductance tables (the
// reference is Numerical Recipes' spline/splint/splin2 family).
package spline

import (
	"errors"
	"fmt"
	"sort"

	"clockrlc/internal/obs"
)

// gridEvals counts tensor-product interpolations (4 per composed
// loop-inductance lookup). A single atomic add — negligible next to
// the recursive line interpolation an Eval performs.
var gridEvals = obs.GetCounter("spline.evals")

// Spline1D is a natural cubic spline through strictly increasing
// abscissae.
type Spline1D struct {
	xs, ys, y2 []float64
}

// New1D constructs a natural cubic spline (second derivative zero at
// both ends) through the points (xs[i], ys[i]). xs must be strictly
// increasing with at least two points.
func New1D(xs, ys []float64) (*Spline1D, error) {
	n := len(xs)
	if n != len(ys) {
		return nil, fmt.Errorf("spline: %d abscissae but %d ordinates", n, len(ys))
	}
	if n < 2 {
		return nil, errors.New("spline: need at least two points")
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("spline: abscissae must be strictly increasing (x[%d]=%g, x[%d]=%g)",
				i-1, xs[i-1], i, xs[i])
		}
	}
	s := &Spline1D{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		y2: make([]float64, n),
	}
	// Tridiagonal solve for second derivatives, natural boundary
	// conditions (Numerical Recipes "spline").
	u := make([]float64, n)
	for i := 1; i < n-1; i++ {
		sig := (xs[i] - xs[i-1]) / (xs[i+1] - xs[i-1])
		p := sig*s.y2[i-1] + 2
		s.y2[i] = (sig - 1) / p
		u[i] = (ys[i+1]-ys[i])/(xs[i+1]-xs[i]) - (ys[i]-ys[i-1])/(xs[i]-xs[i-1])
		u[i] = (6*u[i]/(xs[i+1]-xs[i-1]) - sig*u[i-1]) / p
	}
	for k := n - 2; k >= 0; k-- {
		s.y2[k] = s.y2[k]*s.y2[k+1] + u[k]
	}
	return s, nil
}

// Eval evaluates the spline at x. Inside the data range the cubic
// interpolant is used; outside, the spline is continued linearly with
// the end slope, which keeps table extrapolation (the paper allows
// mild extrapolation) from blowing up cubically.
func (s *Spline1D) Eval(x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		return s.ys[0] + s.slopeAt(0)*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		return s.ys[n-1] + s.slopeAt(n-1)*(x-s.xs[n-1])
	}
	hi := sort.SearchFloat64s(s.xs, x)
	lo := hi - 1
	h := s.xs[hi] - s.xs[lo]
	a := (s.xs[hi] - x) / h
	b := (x - s.xs[lo]) / h
	return a*s.ys[lo] + b*s.ys[hi] +
		((a*a*a-a)*s.y2[lo]+(b*b*b-b)*s.y2[hi])*h*h/6
}

// slopeAt returns the spline's first derivative at knot i (used for
// linear extrapolation beyond the table).
func (s *Spline1D) slopeAt(i int) float64 {
	n := len(s.xs)
	switch i {
	case 0:
		h := s.xs[1] - s.xs[0]
		return (s.ys[1]-s.ys[0])/h - h/6*(2*s.y2[0]+s.y2[1])
	case n - 1:
		h := s.xs[n-1] - s.xs[n-2]
		return (s.ys[n-1]-s.ys[n-2])/h + h/6*(s.y2[n-2]+2*s.y2[n-1])
	default:
		h := s.xs[i+1] - s.xs[i]
		return (s.ys[i+1]-s.ys[i])/h - h/6*(2*s.y2[i]+s.y2[i+1])
	}
}

// Grid is an N-dimensional rectilinear table with tensor-product
// cubic-spline interpolation: exactly the bicubic scheme for two axes,
// generalised to the four axes of the mutual-inductance table.
type Grid struct {
	// Axes holds the strictly increasing coordinates of each
	// dimension. Axes of length 1 are allowed and treated as constant.
	Axes [][]float64
	// Vals holds the table values in row-major order with the last
	// axis varying fastest; len(Vals) = Π len(Axes[d]).
	Vals []float64

	// inner caches the splines along the last axis (one per line of
	// leading indices): by far the most numerous spline constructions
	// during an Eval, so caching them makes repeated lookups cheap.
	// Set invalidates the cache.
	inner      []*Spline1D
	innerStale bool
}

// NewGrid validates and wraps a table.
func NewGrid(axes [][]float64, vals []float64) (*Grid, error) {
	if len(axes) == 0 {
		return nil, errors.New("spline: grid needs at least one axis")
	}
	size := 1
	for d, ax := range axes {
		if len(ax) == 0 {
			return nil, fmt.Errorf("spline: axis %d is empty", d)
		}
		for i := 1; i < len(ax); i++ {
			if ax[i] <= ax[i-1] {
				return nil, fmt.Errorf("spline: axis %d not strictly increasing at %d", d, i)
			}
		}
		size *= len(ax)
	}
	if len(vals) != size {
		return nil, fmt.Errorf("spline: grid needs %d values, got %d", size, len(vals))
	}
	return &Grid{Axes: axes, Vals: vals, innerStale: true}, nil
}

// Dim returns the number of axes.
func (g *Grid) Dim() int { return len(g.Axes) }

// At returns the tabulated value at integer indices.
func (g *Grid) At(idx ...int) float64 {
	return g.Vals[g.offset(idx)]
}

// Set stores a tabulated value at integer indices and invalidates the
// interpolation cache.
func (g *Grid) Set(v float64, idx ...int) {
	g.Vals[g.offset(idx)] = v
	g.innerStale = true
}

func (g *Grid) offset(idx []int) int {
	if len(idx) != len(g.Axes) {
		panic(fmt.Sprintf("spline: %d indices for %d axes", len(idx), len(g.Axes)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= len(g.Axes[d]) {
			panic(fmt.Sprintf("spline: index %d out of range for axis %d (size %d)", i, d, len(g.Axes[d])))
		}
		off = off*len(g.Axes[d]) + i
	}
	return off
}

// Eval interpolates the table at the given coordinates using
// tensor-product natural cubic splines: a spline along the first axis
// through values each obtained by recursive interpolation over the
// remaining axes. Singleton axes pass their value through.
func (g *Grid) Eval(coords ...float64) (float64, error) {
	gridEvals.Inc()
	if len(coords) != len(g.Axes) {
		return 0, fmt.Errorf("spline: %d coordinates for %d axes", len(coords), len(g.Axes))
	}
	return g.eval(coords, 0, len(g.Vals)), nil
}

// refreshInner (re)builds the cached last-axis splines.
func (g *Grid) refreshInner() {
	last := g.Axes[len(g.Axes)-1]
	if len(last) == 1 {
		g.inner = nil
		g.innerStale = false
		return
	}
	nLines := len(g.Vals) / len(last)
	if cap(g.inner) < nLines {
		g.inner = make([]*Spline1D, nLines)
	} else {
		g.inner = g.inner[:nLines]
	}
	for i := 0; i < nLines; i++ {
		s, err := New1D(last, g.Vals[i*len(last):(i+1)*len(last)])
		if err != nil {
			// Axes were validated at construction.
			panic(err)
		}
		g.inner[i] = s
	}
	g.innerStale = false
}

// eval interpolates the row-major block of g.Vals starting at base
// with the given size, spanning axes[len(axes)-len(coords):] —
// implemented by recursing on the first remaining axis. The last axis
// uses the cached splines.
func (g *Grid) eval(coords []float64, base, size int) float64 {
	ax := g.Axes[len(g.Axes)-len(coords)]
	if len(coords) == 1 {
		if len(ax) == 1 {
			return g.Vals[base]
		}
		if g.innerStale {
			g.refreshInner()
		}
		return g.inner[base/len(ax)].Eval(coords[0])
	}
	stride := size / len(ax)
	line := make([]float64, len(ax))
	for i := range ax {
		line[i] = g.eval(coords[1:], base+i*stride, stride)
	}
	return eval1D(ax, line, coords[0])
}

// eval1D interpolates one axis; singleton axes are constant.
func eval1D(ax, vals []float64, x float64) float64 {
	if len(ax) == 1 {
		return vals[0]
	}
	s, err := New1D(ax, vals)
	if err != nil {
		// Axes are validated at construction; reaching here indicates
		// a programming error.
		panic(err)
	}
	return s.Eval(x)
}
