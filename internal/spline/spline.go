// Package spline implements natural cubic spline interpolation in one
// dimension and tensor-product spline interpolation over N-dimensional
// rectilinear grids — the "bi-cubic spline algorithm [10]" the paper
// uses to interpolate and extrapolate its inductance tables (the
// reference is Numerical Recipes' spline/splint/splin2 family).
//
// Grid interpolation is fully precomputed: construction solves, per
// axis, the natural-spline tridiagonal system for every unit data
// vector, storing the dense matrix that maps a line of tabulated
// values to that line's second derivatives. Because spline
// construction is linear in the data, the recursive
// interpolate-then-respline scheme collapses into one cardinal-weight
// contraction per axis, and Eval becomes a pure read of immutable
// state: lookups are goroutine-safe by construction and allocate
// nothing for table-sized grids.
package spline

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"clockrlc/internal/obs"
)

// gridEvals counts tensor-product interpolations (4 per composed
// loop-inductance lookup). A single atomic add — negligible next to
// the weight contraction an Eval performs.
var gridEvals = obs.GetCounter("spline.evals")

// Spline1D is a natural cubic spline through strictly increasing
// abscissae.
type Spline1D struct {
	xs, ys, y2 []float64
}

// New1D constructs a natural cubic spline (second derivative zero at
// both ends) through the points (xs[i], ys[i]). xs must be strictly
// increasing with at least two points.
func New1D(xs, ys []float64) (*Spline1D, error) {
	n := len(xs)
	if n != len(ys) {
		return nil, fmt.Errorf("spline: %d abscissae but %d ordinates", n, len(ys))
	}
	if n < 2 {
		return nil, errors.New("spline: need at least two points")
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("spline: abscissae must be strictly increasing (x[%d]=%g, x[%d]=%g)",
				i-1, xs[i-1], i, xs[i])
		}
	}
	s := &Spline1D{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		y2: make([]float64, n),
	}
	// Tridiagonal solve for second derivatives, natural boundary
	// conditions (Numerical Recipes "spline").
	u := make([]float64, n)
	for i := 1; i < n-1; i++ {
		sig := (xs[i] - xs[i-1]) / (xs[i+1] - xs[i-1])
		p := sig*s.y2[i-1] + 2
		s.y2[i] = (sig - 1) / p
		u[i] = (ys[i+1]-ys[i])/(xs[i+1]-xs[i]) - (ys[i]-ys[i-1])/(xs[i]-xs[i-1])
		u[i] = (6*u[i]/(xs[i+1]-xs[i-1]) - sig*u[i-1]) / p
	}
	for k := n - 2; k >= 0; k-- {
		s.y2[k] = s.y2[k]*s.y2[k+1] + u[k]
	}
	return s, nil
}

// Eval evaluates the spline at x. Inside the data range the cubic
// interpolant is used; outside, the spline is continued linearly with
// the end slope, which keeps table extrapolation (the paper allows
// mild extrapolation) from blowing up cubically.
func (s *Spline1D) Eval(x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		return s.ys[0] + s.slopeAt(0)*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		return s.ys[n-1] + s.slopeAt(n-1)*(x-s.xs[n-1])
	}
	hi := sort.SearchFloat64s(s.xs, x)
	lo := hi - 1
	h := s.xs[hi] - s.xs[lo]
	a := (s.xs[hi] - x) / h
	b := (x - s.xs[lo]) / h
	return a*s.ys[lo] + b*s.ys[hi] +
		((a*a*a-a)*s.y2[lo]+(b*b*b-b)*s.y2[hi])*h*h/6
}

// slopeAt returns the spline's first derivative at knot i (used for
// linear extrapolation beyond the table).
func (s *Spline1D) slopeAt(i int) float64 {
	n := len(s.xs)
	switch i {
	case 0:
		h := s.xs[1] - s.xs[0]
		return (s.ys[1]-s.ys[0])/h - h/6*(2*s.y2[0]+s.y2[1])
	case n - 1:
		h := s.xs[n-1] - s.xs[n-2]
		return (s.ys[n-1]-s.ys[n-2])/h + h/6*(s.y2[n-2]+2*s.y2[n-1])
	default:
		h := s.xs[i+1] - s.xs[i]
		return (s.ys[i+1]-s.ys[i])/h - h/6*(2*s.y2[i]+s.y2[i+1])
	}
}

// Grid is an N-dimensional rectilinear table with tensor-product
// cubic-spline interpolation: exactly the bicubic scheme for two axes,
// generalised to the four axes of the mutual-inductance table.
//
// Concurrency contract: Eval reads only state fixed at construction
// (the coefficient matrices depend on the axes alone), so any number
// of goroutines may Eval one Grid concurrently. Set writes a value in
// place and must not race with Eval; treat values as immutable once a
// grid is shared.
type Grid struct {
	// Axes holds the strictly increasing coordinates of each
	// dimension. Axes of length 1 are allowed and treated as constant.
	Axes [][]float64
	// Vals holds the table values in row-major order with the last
	// axis varying fastest; len(Vals) = Π len(Axes[d]).
	Vals []float64

	// coef[d] is the len(Axes[d])×len(Axes[d]) row-major matrix
	// taking a line of values along axis d to that line's natural
	// cubic-spline second derivatives (nil for singleton axes).
	// Computed once at construction from the axes alone.
	coef [][]float64
	// scratchLen is the per-Eval scratch requirement: one packed
	// weight vector per axis plus the contraction buffer.
	scratchLen int
	// pool recycles scratch for grids too large for the stack buffer.
	pool *sync.Pool
}

// evalStackScratch is the scratch size (in float64s) an Eval keeps on
// the stack; larger grids fall back to a per-grid sync.Pool. The
// default mutual table (6×6×5×8) needs well under half of this.
const evalStackScratch = 512

// NewGrid validates a table and precomputes its per-axis spline
// coefficient matrices.
func NewGrid(axes [][]float64, vals []float64) (*Grid, error) {
	return newGrid(axes, vals, nil)
}

// NewGridWithCoef constructs a grid from axes, values and per-axis
// coefficient matrices computed by an earlier NewGrid over the same
// axes (Coef exports them). The matrices are validated for shape but
// not recomputed, so a persisted grid reconstructs without solving a
// single tridiagonal system — and, because secondDerivMatrix is
// deterministic, a grid built this way evaluates bit-identically to
// one built by NewGrid. coef may alias read-only memory (e.g. a file
// mapping); NewGridWithCoef never writes through it.
func NewGridWithCoef(axes [][]float64, vals []float64, coef [][]float64) (*Grid, error) {
	if len(coef) != len(axes) {
		return nil, fmt.Errorf("spline: %d coefficient matrices for %d axes", len(coef), len(axes))
	}
	for d, ax := range axes {
		switch {
		case len(ax) <= 1:
			if len(coef[d]) != 0 {
				return nil, fmt.Errorf("spline: axis %d is singleton but has %d coefficients", d, len(coef[d]))
			}
		case len(coef[d]) != len(ax)*len(ax):
			return nil, fmt.Errorf("spline: axis %d needs a %d×%d coefficient matrix, got %d values",
				d, len(ax), len(ax), len(coef[d]))
		}
	}
	return newGrid(axes, vals, coef)
}

// newGrid is the shared constructor: coef == nil recomputes the
// matrices, otherwise the (shape-validated) provided ones are adopted.
func newGrid(axes [][]float64, vals []float64, coef [][]float64) (*Grid, error) {
	if len(axes) == 0 {
		return nil, errors.New("spline: grid needs at least one axis")
	}
	size := 1
	for d, ax := range axes {
		if len(ax) == 0 {
			return nil, fmt.Errorf("spline: axis %d is empty", d)
		}
		for i := 1; i < len(ax); i++ {
			if ax[i] <= ax[i-1] {
				return nil, fmt.Errorf("spline: axis %d not strictly increasing at %d", d, i)
			}
		}
		size *= len(ax)
	}
	if len(vals) != size {
		return nil, fmt.Errorf("spline: grid needs %d values, got %d", size, len(vals))
	}
	g := &Grid{Axes: axes, Vals: vals, coef: coef}
	if g.coef == nil {
		g.coef = make([][]float64, len(axes))
	}
	wsum := 0
	for d, ax := range axes {
		wsum += len(ax)
		if coef == nil && len(ax) > 1 {
			g.coef[d] = secondDerivMatrix(ax)
		}
	}
	g.scratchLen = wsum + size/len(axes[len(axes)-1])
	if g.scratchLen > evalStackScratch {
		n := g.scratchLen
		g.pool = &sync.Pool{New: func() any {
			s := make([]float64, n)
			return &s
		}}
	}
	return g, nil
}

// Coef exports axis d's precomputed second-derivative matrix (nil for
// singleton axes) so a codec can persist it next to the values and
// reconstruct the grid with NewGridWithCoef, skipping the per-axis
// tridiagonal solves at load. The returned slice is the grid's own
// immutable state; callers must not modify it.
func (g *Grid) Coef(d int) []float64 { return g.coef[d] }

// secondDerivMatrix returns the dense row-major matrix M with
// M[i][j] = second derivative at knot i of the natural cubic spline
// through the unit data vector e_j — i.e. y2 = M·y for any data y,
// by linearity of the tridiagonal construction.
func secondDerivMatrix(xs []float64) []float64 {
	n := len(xs)
	m := make([]float64, n*n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		s, err := New1D(xs, e)
		if err != nil {
			// Axes were validated by the caller.
			panic(err)
		}
		for i := 0; i < n; i++ {
			m[i*n+j] = s.y2[i]
		}
		e[j] = 0
	}
	return m
}

// Dim returns the number of axes.
func (g *Grid) Dim() int { return len(g.Axes) }

// At returns the tabulated value at integer indices.
func (g *Grid) At(idx ...int) float64 {
	return g.Vals[g.offset(idx)]
}

// Set stores a tabulated value at integer indices. The interpolation
// coefficients depend only on the axes, so the new value takes effect
// on the next Eval with no cache to invalidate. Set must not race
// with concurrent Eval on the same grid.
func (g *Grid) Set(v float64, idx ...int) {
	g.Vals[g.offset(idx)] = v
}

func (g *Grid) offset(idx []int) int {
	if len(idx) != len(g.Axes) {
		panic(fmt.Sprintf("spline: %d indices for %d axes", len(idx), len(g.Axes)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= len(g.Axes[d]) {
			panic(fmt.Sprintf("spline: index %d out of range for axis %d (size %d)", i, d, len(g.Axes[d])))
		}
		off = off*len(g.Axes[d]) + i
	}
	return off
}

// Eval interpolates the table at the given coordinates using
// tensor-product natural cubic splines. The recursive
// spline-of-spline interpolant is linear in the tabulated values, so
// it factors into one cardinal-weight vector per axis (built from the
// precomputed coefficient matrices) contracted against the value
// block, last axis first. Eval never mutates the grid; see the Grid
// concurrency contract. Singleton axes pass their value through.
func (g *Grid) Eval(coords ...float64) (float64, error) {
	gridEvals.Inc()
	if len(coords) != len(g.Axes) {
		return 0, fmt.Errorf("spline: %d coordinates for %d axes", len(coords), len(g.Axes))
	}
	var stack [evalStackScratch]float64
	scratch := stack[:]
	if g.scratchLen > evalStackScratch {
		p := g.pool.Get().(*[]float64)
		defer g.pool.Put(p)
		scratch = *p
	}

	// Cardinal weights per axis, packed into the scratch head.
	wOff := 0
	for d, ax := range g.Axes {
		axisWeights(ax, g.coef[d], coords[d], scratch[wOff:wOff+len(ax)])
		wOff += len(ax)
	}
	return g.contract(scratch, wOff), nil
}

// contract folds the value block against the per-axis cardinal weight
// vectors packed into scratch[:wOff], one axis at a time, last
// (fastest-varying, unit-stride) axis first. The first pass reads
// g.Vals and writes the scratch tail; later passes shrink it in place
// (the write index never overtakes the read window). The weight
// vectors in scratch[:wOff] are read-only here, so a caller may reuse
// them across contractions. Shared by Eval and EvalBatch so both
// perform the identical float operations in the identical order.
func (g *Grid) contract(scratch []float64, wOff int) float64 {
	buf := scratch[wOff:]
	cur := g.Vals
	curLen := len(g.Vals)
	for d := len(g.Axes) - 1; d >= 0; d-- {
		n := len(g.Axes[d])
		wOff -= n
		w := scratch[wOff : wOff+n]
		lines := curLen / n
		for i := 0; i < lines; i++ {
			acc := 0.0
			base := i * n
			for j := 0; j < n; j++ {
				acc += w[j] * cur[base+j]
			}
			buf[i] = acc
		}
		cur = buf
		curLen = lines
	}
	return cur[0]
}

// axisWeights fills w (len(ax) wide) with the cardinal weights of the
// 1-D natural-spline interpolant on knots ax at coordinate x, so that
// the interpolated value is Σ_j w[j]·y[j] for any data line y. m is
// the axis' second-derivative matrix (nil for singleton axes).
// Outside the knot range the weights realise the same linear
// end-slope continuation as Spline1D.Eval.
func axisWeights(ax, m []float64, x float64, w []float64) {
	n := len(ax)
	if n == 1 {
		w[0] = 1
		return
	}
	for i := range w {
		w[i] = 0
	}
	switch {
	case x <= ax[0]:
		h := ax[1] - ax[0]
		dx := x - ax[0]
		w[0] = 1 - dx/h
		w[1] = dx / h
		f := -dx * h / 6
		for j := 0; j < n; j++ {
			w[j] += f * (2*m[j] + m[n+j])
		}
	case x >= ax[n-1]:
		h := ax[n-1] - ax[n-2]
		dx := x - ax[n-1]
		w[n-1] = 1 + dx/h
		w[n-2] = -dx / h
		f := dx * h / 6
		for j := 0; j < n; j++ {
			w[j] += f * (m[(n-2)*n+j] + 2*m[(n-1)*n+j])
		}
	default:
		hi := sort.SearchFloat64s(ax, x)
		lo := hi - 1
		h := ax[hi] - ax[lo]
		a := (ax[hi] - x) / h
		b := (x - ax[lo]) / h
		w[lo] = a
		w[hi] = b
		ca := (a*a*a - a) * h * h / 6
		cb := (b*b*b - b) * h * h / 6
		for j := 0; j < n; j++ {
			w[j] += ca*m[lo*n+j] + cb*m[hi*n+j]
		}
	}
}
