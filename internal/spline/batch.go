package spline

import (
	"fmt"
	"sort"
	"sync"
)

// orderPool recycles the query-permutation slices EvalBatch sorts.
// One pool serves every grid: the slice is resized to the batch at
// hand and holds indices, not grid state.
var orderPool = sync.Pool{New: func() any { return new([]int) }}

// EvalBatch interpolates the table at nq = len(out) coordinate tuples
// packed row-major into coords (len(coords) = nq*Dim(): query i's
// coordinates are coords[i*Dim():(i+1)*Dim()]) and writes result i to
// out[i].
//
// Each result is bit-identical to Eval(coords[i*Dim():...]) — the
// batch path reuses Eval's weight construction and contraction
// verbatim — but the batch amortises work across queries: queries are
// visited in lexicographic coordinate order, so a per-axis cardinal
// weight vector is rebuilt only when that axis' coordinate changes
// between consecutive queries, and a query whose whole tuple repeats
// the previous one copies its result without contracting at all.
// Clock-tree workloads repeat a handful of segment geometries across
// thousands of sinks, which is exactly the shape this exploits.
//
// Weight sharing is keyed on exact float equality only — never on
// proximity — which is what keeps batch results bit-identical to the
// scalar loop regardless of input order. coords and the grid are not
// mutated; like Eval, EvalBatch is safe for concurrent use.
func (g *Grid) EvalBatch(coords, out []float64) error {
	dim := len(g.Axes)
	nq := len(out)
	if len(coords) != nq*dim {
		return fmt.Errorf("spline: batch of %d queries over %d axes needs %d coordinates, got %d",
			nq, dim, nq*dim, len(coords))
	}
	if nq == 0 {
		return nil
	}
	gridEvals.Add(int64(nq))

	op := orderPool.Get().(*[]int)
	defer orderPool.Put(op)
	order := *op
	if cap(order) < nq {
		order = make([]int, nq)
		*op = order
	}
	order = order[:nq]
	for i := range order {
		order[i] = i
	}
	// Lexicographic coordinate order (input index breaks ties) makes
	// identical tuples adjacent and maximises per-axis prefix sharing
	// between neighbours.
	sort.Slice(order, func(a, b int) bool {
		qa, qb := order[a]*dim, order[b]*dim
		for d := 0; d < dim; d++ {
			if ca, cb := coords[qa+d], coords[qb+d]; ca != cb {
				return ca < cb
			}
		}
		return order[a] < order[b]
	})

	var stack [evalStackScratch]float64
	scratch := stack[:]
	if g.scratchLen > evalStackScratch {
		p := g.pool.Get().(*[]float64)
		defer g.pool.Put(p)
		scratch = *p
	}

	prev := -1 // input index of the last query that contracted
	for _, qi := range order {
		q := coords[qi*dim : qi*dim+dim]
		if prev >= 0 {
			p := coords[prev*dim : prev*dim+dim]
			same := true
			for d := 0; d < dim; d++ {
				if q[d] != p[d] {
					same = false
					break
				}
			}
			if same {
				out[qi] = out[prev]
				continue
			}
		}
		wOff := 0
		for d, ax := range g.Axes {
			// contract leaves scratch[:wOff] untouched, so an axis
			// whose coordinate matches the previous query keeps its
			// weight vector as-is.
			if prev < 0 || coords[prev*dim+d] != q[d] {
				axisWeights(ax, g.coef[d], q[d], scratch[wOff:wOff+len(ax)])
			}
			wOff += len(ax)
		}
		out[qi] = g.contract(scratch, wOff)
		prev = qi
	}
	return nil
}
