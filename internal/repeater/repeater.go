// Package repeater implements repeater insertion for long RLC
// interconnect — the application the paper's extraction methodology
// feeds (the authors' follow-up, Cao et al., "Effective On-chip
// Inductance Modeling for Multiple Signal Lines and Application on
// Repeater Insertion", studies exactly this). A long line is split
// into n buffered stages; wire delay falls roughly as 1/n (RC) while
// buffer delay grows as n, so the total is U-shaped in n.
//
// The known result this package reproduces: inductance makes wire
// delay more linear in length (time of flight instead of diffusive
// RC), so the RLC-aware optimum uses FEWER repeaters than RC-only
// analysis suggests — an RC flow over-inserts buffers on wide clock
// routes.
package repeater

import (
	"fmt"

	"clockrlc/internal/core"
	"clockrlc/internal/netlist"
	"clockrlc/internal/sim"
)

// Buffer is the repeater model (Thevenin driver, input load, its own
// delay).
type Buffer struct {
	DriveRes       float64
	InputCap       float64
	IntrinsicDelay float64
	OutSlew        float64
}

// Validate checks the buffer.
func (b Buffer) Validate() error {
	if b.DriveRes <= 0 || b.InputCap <= 0 || b.OutSlew <= 0 || b.IntrinsicDelay < 0 {
		return fmt.Errorf("repeater: buffer out of range: %+v", b)
	}
	return nil
}

// Spec is a repeater-insertion problem: the total line (Segment.Length
// is the full route) and the repeater to insert.
type Spec struct {
	Line     core.Segment
	Buffer   Buffer
	WithL    bool
	Sections int // ladder sections per stage (default 6)
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if err := s.Line.Validate(); err != nil {
		return err
	}
	return s.Buffer.Validate()
}

// Point is the outcome for one repeater count.
type Point struct {
	N          int     // number of driven stages (n−1 inserted repeaters)
	StageDelay float64 // one stage's wire delay
	Total      float64 // n·(stage + intrinsic)
}

// DelayWithN returns the total source-to-sink delay with the line
// split into n identical buffered stages.
func DelayWithN(e *core.Extractor, s Spec, n int) (Point, error) {
	if err := s.Validate(); err != nil {
		return Point{}, err
	}
	if n < 1 {
		return Point{}, fmt.Errorf("repeater: need n >= 1 stages, got %d", n)
	}
	sections := s.Sections
	if sections <= 0 {
		sections = 6
	}
	seg := s.Line
	seg.Length = s.Line.Length / float64(n)
	var rlc netlist.SegmentRLC
	var err error
	if s.WithL {
		rlc, err = e.SegmentRLC(seg)
	} else {
		rlc, err = e.SegmentRCOnly(seg)
	}
	if err != nil {
		return Point{}, err
	}

	nl := netlist.New()
	start := s.Buffer.OutSlew / 10
	nl.AddV("v", "drv", netlist.Ground, netlist.Ramp{V0: 0, V1: 1, Start: start, Rise: s.Buffer.OutSlew})
	nl.AddR("rd", "drv", "in", s.Buffer.DriveRes)
	if _, err := nl.AddLadder("w", "in", "out", rlc, sections); err != nil {
		return Point{}, err
	}
	nl.AddC("cl", "out", netlist.Ground, s.Buffer.InputCap)
	tau := (s.Buffer.DriveRes + rlc.R) * (rlc.C + s.Buffer.InputCap)
	horizon := 12*tau + 6*s.Buffer.OutSlew
	res, err := sim.Transient(nl, s.Buffer.OutSlew/100, horizon, []string{"out"})
	if err != nil {
		return Point{}, fmt.Errorf("repeater: n=%d: %w", n, err)
	}
	v, _ := res.Waveform("out")
	d, err := sim.DelayFromT0(res.Time, v, 0, 1)
	if err != nil {
		return Point{}, fmt.Errorf("repeater: n=%d stage never switches: %w", n, err)
	}
	stage := d - (start + s.Buffer.OutSlew/2)
	return Point{
		N:          n,
		StageDelay: stage,
		Total:      float64(n) * (stage + s.Buffer.IntrinsicDelay),
	}, nil
}

// Optimize sweeps n = 1..maxN and returns the minimum-total point and
// the whole curve.
func Optimize(e *core.Extractor, s Spec, maxN int) (Point, []Point, error) {
	if maxN < 1 {
		return Point{}, nil, fmt.Errorf("repeater: maxN must be >= 1, got %d", maxN)
	}
	var pts []Point
	best := Point{Total: -1}
	for n := 1; n <= maxN; n++ {
		p, err := DelayWithN(e, s, n)
		if err != nil {
			return Point{}, nil, err
		}
		pts = append(pts, p)
		if best.Total < 0 || p.Total < best.Total {
			best = p
		}
	}
	return best, pts, nil
}
