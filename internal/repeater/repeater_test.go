package repeater

import (
	"sync"
	"testing"

	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

var (
	once sync.Once
	ext  *core.Extractor
	eErr error
)

func extractor(t *testing.T) *core.Extractor {
	t.Helper()
	once.Do(func() {
		tech := core.Technology{
			Thickness:      units.Um(2),
			Rho:            units.RhoCopper,
			EpsRel:         units.EpsSiO2,
			CapHeight:      units.Um(2),
			PlaneGap:       units.Um(2),
			PlaneThickness: units.Um(1),
		}
		axes := table.Axes{
			Widths:   table.LogAxis(units.Um(0.8), units.Um(6), 4),
			Spacings: table.LogAxis(units.Um(0.5), units.Um(4), 4),
			Lengths:  table.LogAxis(units.Um(400), units.Um(16000), 7),
		}
		ext, eErr = core.NewExtractor(tech, 6.4e9, axes, []geom.Shielding{geom.ShieldNone})
	})
	if eErr != nil {
		t.Fatal(eErr)
	}
	return ext
}

func testSpec(withL bool) Spec {
	return Spec{
		Line: core.Segment{
			Length:      units.Um(16000),
			SignalWidth: units.Um(2),
			GroundWidth: units.Um(2),
			Spacing:     units.Um(1),
			Shielding:   geom.ShieldNone,
		},
		Buffer: Buffer{
			DriveRes:       60,
			InputCap:       40e-15,
			IntrinsicDelay: 25e-12,
			OutSlew:        50e-12,
		},
		WithL:    withL,
		Sections: 6,
	}
}

func TestDelayCurveIsUShaped(t *testing.T) {
	e := extractor(t)
	best, pts, err := Optimize(e, testSpec(false), 8)
	if err != nil {
		t.Fatal(err)
	}
	if best.N == 1 || best.N == 8 {
		t.Errorf("RC optimum at the boundary (n=%d); curve: %v", best.N, totals(pts))
	}
	// Endpoint sanity: unrepeated long line is slower than optimal.
	if !(pts[0].Total > best.Total) {
		t.Errorf("n=1 (%g) not above optimum (%g)", pts[0].Total, best.Total)
	}
	if !(pts[len(pts)-1].Total > best.Total) {
		t.Errorf("n=8 (%g) not above optimum (%g)", pts[len(pts)-1].Total, best.Total)
	}
}

// The headline: inductance-aware analysis inserts no more repeaters
// than RC-only analysis, because wire delay with L already grows more
// linearly with length.
func TestInductanceReducesOptimalRepeaterCount(t *testing.T) {
	e := extractor(t)
	bestRC, _, err := Optimize(e, testSpec(false), 8)
	if err != nil {
		t.Fatal(err)
	}
	bestRLC, ptsRLC, err := Optimize(e, testSpec(true), 8)
	if err != nil {
		t.Fatal(err)
	}
	if bestRLC.N > bestRC.N {
		t.Errorf("RLC optimum n=%d exceeds RC optimum n=%d (RLC curve: %v)",
			bestRLC.N, bestRC.N, totals(ptsRLC))
	}
	if bestRLC.Total <= 0 || bestRC.Total <= 0 {
		t.Fatal("degenerate optima")
	}
}

// Per-stage wire delay decreases monotonically as stages shorten.
func TestStageDelayMonotone(t *testing.T) {
	e := extractor(t)
	prev := -1.0
	for _, n := range []int{1, 2, 4, 8} {
		p, err := DelayWithN(e, testSpec(true), n)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && p.StageDelay >= prev {
			t.Errorf("stage delay not decreasing: n=%d gives %g after %g", n, p.StageDelay, prev)
		}
		prev = p.StageDelay
	}
}

func TestRepeaterValidation(t *testing.T) {
	e := extractor(t)
	if _, err := DelayWithN(e, testSpec(true), 0); err == nil {
		t.Error("accepted n = 0")
	}
	bad := testSpec(true)
	bad.Buffer.DriveRes = 0
	if _, err := DelayWithN(e, bad, 2); err == nil {
		t.Error("accepted zero drive resistance")
	}
	bad = testSpec(true)
	bad.Line.Length = 0
	if _, err := DelayWithN(e, bad, 2); err == nil {
		t.Error("accepted zero line length")
	}
	if _, _, err := Optimize(e, testSpec(true), 0); err == nil {
		t.Error("accepted maxN = 0")
	}
}

func totals(pts []Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Total / 1e-12
	}
	return out
}
