package sizing

import (
	"sync"
	"testing"

	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/table"
	"clockrlc/internal/units"
)

var (
	once sync.Once
	ext  *core.Extractor
	eErr error
)

func extractor(t *testing.T) *core.Extractor {
	t.Helper()
	once.Do(func() {
		tech := core.Technology{
			Thickness:      units.Um(2),
			Rho:            units.RhoCopper,
			EpsRel:         units.EpsSiO2,
			CapHeight:      units.Um(2),
			PlaneGap:       units.Um(2),
			PlaneThickness: units.Um(1),
		}
		axes := table.Axes{
			Widths:   table.LogAxis(units.Um(0.6), units.Um(8), 5),
			Spacings: table.LogAxis(units.Um(0.4), units.Um(8), 5),
			Lengths:  table.LogAxis(units.Um(500), units.Um(6000), 5),
		}
		ext, eErr = core.NewExtractor(tech, 6.4e9, axes, []geom.Shielding{geom.ShieldNone})
	})
	if eErr != nil {
		t.Fatal(eErr)
	}
	return ext
}

func testSpec() Spec {
	return Spec{
		Length:      units.Um(4000),
		Pitch:       units.Um(4),
		GroundWidth: units.Um(2),
		Shielding:   geom.ShieldNone,
		DriveRes:    30,
		LoadCap:     40e-15,
		RiseTime:    50e-12,
		Sections:    6,
		WithL:       true,
	}
}

func widthCandidates() []float64 {
	var ws []float64
	for _, u := range []float64{0.7, 1.0, 1.4, 2.0, 2.6} {
		ws = append(ws, units.Um(u))
	}
	return ws
}

func TestSweepWidthTrends(t *testing.T) {
	pts, err := SweepWidth(extractor(t), testSpec(), widthCandidates())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].RLC.R >= pts[i-1].RLC.R {
			t.Errorf("R not decreasing with width: %g then %g", pts[i-1].RLC.R, pts[i].RLC.R)
		}
		if pts[i].RLC.C <= pts[i-1].RLC.C {
			t.Errorf("C not increasing with width at fixed pitch: %g then %g", pts[i-1].RLC.C, pts[i].RLC.C)
		}
		if pts[i].RLC.L >= pts[i-1].RLC.L {
			t.Errorf("loop L not decreasing with width: %g then %g", pts[i-1].RLC.L, pts[i].RLC.L)
		}
		if pts[i].Spacing >= pts[i-1].Spacing {
			t.Error("spacing must close as width grows")
		}
	}
}

func TestOptimizeFindsInteriorMinimum(t *testing.T) {
	best, pts, err := Optimize(extractor(t), testSpec(), widthCandidates())
	if err != nil {
		t.Fatal(err)
	}
	// For this driver/wire regime the delay curve is U-shaped: the
	// optimum is neither the narrowest (R-dominated) nor the widest
	// (C-dominated) candidate.
	if best.Width == pts[0].Width {
		t.Errorf("optimum at the narrowest width %g — R trade not visible (delays: %v)",
			best.Width, delays(pts))
	}
	if best.Width == pts[len(pts)-1].Width {
		t.Errorf("optimum at the widest width %g — C trade not visible (delays: %v)",
			best.Width, delays(pts))
	}
	for _, p := range pts {
		if p.Delay < best.Delay {
			t.Errorf("Optimize missed a better point: %g < %g", p.Delay, best.Delay)
		}
	}
}

func delays(pts []Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Delay / 1e-12
	}
	return out
}

func TestSizingValidation(t *testing.T) {
	e := extractor(t)
	bad := testSpec()
	bad.Pitch = 0
	if _, err := SweepWidth(e, bad, widthCandidates()); err == nil {
		t.Error("accepted zero pitch")
	}
	if _, err := SweepWidth(e, testSpec(), nil); err == nil {
		t.Error("accepted empty width list")
	}
	if _, err := SweepWidth(e, testSpec(), []float64{-1}); err == nil {
		t.Error("accepted negative width")
	}
	// Width that eats the whole pitch.
	if _, err := SweepWidth(e, testSpec(), []float64{units.Um(7)}); err == nil {
		t.Error("accepted width exceeding the pitch")
	}
}
