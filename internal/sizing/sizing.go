// Package sizing implements the optimization side of the paper's
// title application ("applied successfully to the clocktree RLC
// extraction and optimization"): sweeping a clock segment's signal
// width at fixed routing pitch, re-extracting R, L and C through the
// tables at every candidate (the speed of the table method is what
// makes such sweeps practical), simulating the stage, and picking the
// minimum-delay width.
//
// The trade being optimised: at fixed pitch, a wider signal wire
// lowers resistance and loop inductance but raises ground capacitance
// and — because the shield gap closes — lateral capacitance. With a
// driver of comparable impedance the delay curve is U-shaped and an
// interior optimum exists.
package sizing

import (
	"context"
	"fmt"
	"math"

	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/netlist"
	"clockrlc/internal/sim"
)

// Spec fixes everything about the stage except the signal width.
type Spec struct {
	// Length of the segment.
	Length float64
	// Pitch is the centre-to-centre distance between the signal and
	// each shield; widening the signal closes the gap.
	Pitch float64
	// GroundWidth of the shields.
	GroundWidth float64
	// Shielding configuration.
	Shielding geom.Shielding
	// DriveRes, LoadCap, RiseTime describe the stage's driver and sink.
	DriveRes, LoadCap, RiseTime float64
	// Sections per ladder (default 8).
	Sections int
	// WithL selects RLC (true) or RC-only sizing.
	WithL bool
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Length <= 0 || s.Pitch <= 0 || s.GroundWidth <= 0 ||
		s.DriveRes <= 0 || s.LoadCap <= 0 || s.RiseTime <= 0 {
		return fmt.Errorf("sizing: spec fields must be positive: %+v", s)
	}
	return nil
}

// Point is one candidate width's outcome.
type Point struct {
	Width float64
	// Spacing is the resulting edge-to-edge gap.
	Spacing float64
	// RLC are the extracted segment totals.
	RLC netlist.SegmentRLC
	// Delay is the simulated 50 % sink arrival from the source edge
	// midpoint.
	Delay float64
}

// segment builds the core.Segment for a candidate width.
func (s Spec) segment(w float64) (core.Segment, error) {
	spacing := s.Pitch - w/2 - s.GroundWidth/2
	if spacing <= 0 {
		return core.Segment{}, fmt.Errorf("sizing: width %g leaves no gap at pitch %g", w, s.Pitch)
	}
	return core.Segment{
		Length:      s.Length,
		SignalWidth: w,
		GroundWidth: s.GroundWidth,
		Spacing:     spacing,
		Shielding:   s.Shielding,
	}, nil
}

// SweepWidth evaluates every candidate width.
func SweepWidth(e *core.Extractor, s Spec, widths []float64) ([]Point, error) {
	return SweepWidthCtx(context.Background(), e, s, widths)
}

// SweepWidthCtx is SweepWidth honouring cancellation between
// candidate widths (each candidate is one extraction plus one
// transient simulation, so a cancel lands within one candidate's
// work).
func SweepWidthCtx(ctx context.Context, e *core.Extractor, s Spec, widths []float64) ([]Point, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(widths) == 0 {
		return nil, fmt.Errorf("sizing: no candidate widths")
	}
	sections := s.Sections
	if sections <= 0 {
		sections = 8
	}
	var out []Point
	for _, w := range widths {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if w <= 0 {
			return nil, fmt.Errorf("sizing: width %g must be positive", w)
		}
		seg, err := s.segment(w)
		if err != nil {
			return nil, err
		}
		var rlc netlist.SegmentRLC
		if s.WithL {
			rlc, err = e.SegmentRLC(seg)
		} else {
			rlc, err = e.SegmentRCOnly(seg)
		}
		if err != nil {
			return nil, fmt.Errorf("sizing: width %g: %w", w, err)
		}
		d, err := stageDelay(rlc, s, sections)
		if err != nil {
			return nil, fmt.Errorf("sizing: width %g: %w", w, err)
		}
		out = append(out, Point{Width: w, Spacing: seg.Spacing, RLC: rlc, Delay: d})
	}
	return out, nil
}

// Optimize runs SweepWidth and returns the minimum-delay point.
func Optimize(e *core.Extractor, s Spec, widths []float64) (Point, []Point, error) {
	return OptimizeCtx(context.Background(), e, s, widths)
}

// OptimizeCtx is Optimize with cancellation; see SweepWidthCtx.
func OptimizeCtx(ctx context.Context, e *core.Extractor, s Spec, widths []float64) (Point, []Point, error) {
	pts, err := SweepWidthCtx(ctx, e, s, widths)
	if err != nil {
		return Point{}, nil, err
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Delay < best.Delay {
			best = p
		}
	}
	return best, pts, nil
}

// stageDelay simulates one driver + ladder + load stage.
func stageDelay(rlc netlist.SegmentRLC, s Spec, sections int) (float64, error) {
	nl := netlist.New()
	start := s.RiseTime / 10
	nl.AddV("v", "drv", netlist.Ground, netlist.Ramp{V0: 0, V1: 1, Start: start, Rise: s.RiseTime})
	nl.AddR("rd", "drv", "in", s.DriveRes)
	if _, err := nl.AddLadder("w", "in", "out", rlc, sections); err != nil {
		return 0, err
	}
	nl.AddC("cl", "out", netlist.Ground, s.LoadCap)
	// The horizon must cover slow RC corners of the sweep.
	tau := (s.DriveRes + rlc.R) * (rlc.C + s.LoadCap)
	horizon := 10*tau + 4*s.RiseTime + 20*math.Sqrt(rlc.L*(rlc.C+s.LoadCap))
	res, err := sim.Transient(nl, s.RiseTime/100, horizon, []string{"out"})
	if err != nil {
		return 0, err
	}
	v, _ := res.Waveform("out")
	d, err := sim.DelayFromT0(res.Time, v, 0, 1)
	if err != nil {
		return 0, err
	}
	return d - (start + s.RiseTime/2), nil
}
