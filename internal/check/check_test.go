package check

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{
		{"off", Off}, {"warn", Warn}, {"strict", Strict},
		{"OFF", Off}, {"Strict", Strict},
	} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePolicy("loose"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{Off: "off", Warn: "warn", Strict: "strict"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestNilEngineIsDisarmed(t *testing.T) {
	var e *Engine
	if e.Armed() {
		t.Error("nil engine reports armed")
	}
	if e.Policy() != Off {
		t.Errorf("nil engine policy = %v, want Off", e.Policy())
	}
	if err := e.Report(&Violation{Stage: StageLookup, Invariant: "x"}); err != nil {
		t.Errorf("nil engine Report returned %v", err)
	}
}

func TestWarnCountsAndContinues(t *testing.T) {
	e := New(Warn)
	before := Violations()
	stBefore := StageViolations(StageTableAudit)
	v := &Violation{Stage: StageTableAudit, Invariant: "self inductance positive",
		Subject: `table "m6"`, Cell: "self[0,1]", Detail: "L = -1"}
	if err := e.Report(v); err != nil {
		t.Fatalf("Warn Report returned error %v", err)
	}
	if Violations() != before+1 {
		t.Errorf("total violations = %d, want %d", Violations(), before+1)
	}
	if StageViolations(StageTableAudit) != stBefore+1 {
		t.Error("stage counter did not advance")
	}
}

func TestStrictReturnsNamedError(t *testing.T) {
	e := New(Strict)
	v := &Violation{Stage: StageTableAudit, Invariant: "mutual coupling k < 1",
		Subject: `table "m6/coplanar"`, Cell: "mutual[2,3,1,0] (w1=2e-06)", Detail: "k = 1.73"}
	err := e.Report(v)
	if err == nil {
		t.Fatal("Strict Report returned nil")
	}
	if !errors.Is(err, ErrViolation) {
		t.Error("violation does not match ErrViolation")
	}
	for _, frag := range []string{"table_audit", "mutual coupling k < 1", "m6/coplanar", "mutual[2,3,1,0]", "k = 1.73"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err.Error(), frag)
		}
	}
}

func TestReportAllReturnsFirstStrict(t *testing.T) {
	e := New(Strict)
	vs := []Violation{
		{Stage: StageCascade, Invariant: "a"},
		{Stage: StageCascade, Invariant: "b"},
	}
	before := Violations()
	err := e.ReportAll(vs)
	if err == nil || !strings.Contains(err.Error(), `"a"`) {
		t.Errorf("ReportAll = %v, want first violation", err)
	}
	if Violations() != before+2 {
		t.Error("ReportAll did not count every violation")
	}
}

func TestGlobalEngineLifecycle(t *testing.T) {
	defer SetPolicy(Off)
	if Active() != nil {
		t.Fatal("engine armed at test start")
	}
	SetPolicy(Warn)
	if !Enabled() || Active().Policy() != Warn {
		t.Error("SetPolicy(Warn) did not arm the engine")
	}
	SetPolicy(Strict)
	if Active().Policy() != Strict {
		t.Error("SetPolicy(Strict) did not replace the engine")
	}
	SetPolicy(Off)
	if Active() != nil || Enabled() {
		t.Error("SetPolicy(Off) did not disarm")
	}
}

// The engine is hit concurrently from sweep workers and lookups; the
// report path must be race-free (run under -race in tier1).
func TestConcurrentReport(t *testing.T) {
	e := New(Warn)
	before := Violations()
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Report(&Violation{Stage: StageLookup, Invariant: "finite"})
			}
		}()
	}
	wg.Wait()
	if got := Violations() - before; got != goroutines*per {
		t.Errorf("counted %d violations, want %d", got, goroutines*per)
	}
}

func TestUnknownStageStillCounts(t *testing.T) {
	e := New(Warn)
	if err := e.Report(&Violation{Stage: Stage("custom"), Invariant: "x"}); err != nil {
		t.Fatal(err)
	}
	if StageViolations(Stage("custom")) == 0 {
		t.Error("unknown stage not counted")
	}
}
