// Package check is the extraction pipeline's physical-invariant
// engine. The on-disk cache already defends against bit-rot with
// SHA-256 checksums; this package defends against the failure mode
// checksums cannot see — *wrong but well-formed data*. A mis-generated
// table whose coupling coefficient k = |M|/√(L₁·L₂) exceeds 1, a
// spline overshoot that turns a self inductance negative, or a cascade
// whose series/parallel combination loses positivity all flow silently
// into simulation and produce confident, wrong delay and skew numbers.
// Production code marks the physically meaningful boundaries — table
// audits, lookups, segment composition, cascading, measured delays —
// with invariant checks that report here.
//
// The engine has three policies:
//
//   - Off:    every check site is a single atomic pointer load and a
//     nil branch (the same disarmed-hook design as internal/fault), so
//     the lookup hot path costs nothing measurable; see
//     BENCH_check.json.
//   - Warn:   violations are counted (check.violations and
//     check.violations.<stage>) and execution continues.
//   - Strict: the first violation is returned as a named error
//     (matchable with errors.Is against ErrViolation) identifying the
//     stage, subject, cell and violated invariant.
package check

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"clockrlc/internal/obs"
)

// Policy selects what a reported violation does.
type Policy int

const (
	// Off disarms every check site; the hook is one atomic load.
	Off Policy = iota
	// Warn counts violations and continues.
	Warn
	// Strict converts the violation into a named error.
	Strict
)

func (p Policy) String() string {
	switch p {
	case Off:
		return "off"
	case Warn:
		return "warn"
	case Strict:
		return "strict"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses the -check flag values "off", "warn" and
// "strict" (case-insensitive).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "off":
		return Off, nil
	case "warn":
		return Warn, nil
	case "strict":
		return Strict, nil
	}
	return Off, fmt.Errorf("check: bad policy %q (want off, warn or strict)", s)
}

// Stage names the pipeline boundary a violation was caught at. Stages
// are stable identifiers: metrics group by them
// (check.violations.<stage>) and strict errors carry them.
type Stage string

const (
	// StageTableAudit covers the post-build / post-load table audits.
	StageTableAudit Stage = "table_audit"
	// StageLookup covers the warm-path table lookups (SelfL/MutualL).
	StageLookup Stage = "lookup"
	// StageSegment covers per-segment RLC extraction and loop
	// composition.
	StageSegment Stage = "segment"
	// StageCascade covers Section IV series/parallel cascading.
	StageCascade Stage = "cascade"
	// StageSim covers simulation outputs and closed-form delay bounds.
	StageSim Stage = "sim"
	// StageCheckpoint covers resumed long-job state: statistics
	// restored from a checkpoint must still satisfy their own
	// invariants (min ≤ max, finite sums, consistent counts) before the
	// job continues accumulating onto them.
	StageCheckpoint Stage = "checkpoint"
)

// Violation accounting. The total plus one counter per stage flow
// through the same metrics surface as the rest of the pipeline
// (-metrics, /debug/vars), so a Warn run is observable after the fact.
var (
	violationsTotal = obs.GetCounter("check.violations")
	stageCounters   = map[Stage]*obs.Counter{
		StageTableAudit: obs.GetCounter("check.violations.table_audit"),
		StageLookup:     obs.GetCounter("check.violations.lookup"),
		StageSegment:    obs.GetCounter("check.violations.segment"),
		StageCascade:    obs.GetCounter("check.violations.cascade"),
		StageSim:        obs.GetCounter("check.violations.sim"),
		StageCheckpoint: obs.GetCounter("check.violations.checkpoint"),
	}
)

// Violations returns the process-wide count of reported invariant
// violations (all stages).
func Violations() int64 { return violationsTotal.Value() }

// StageViolations returns the process-wide violation count of one
// stage.
func StageViolations(st Stage) int64 {
	if c, ok := stageCounters[st]; ok {
		return c.Value()
	}
	return obs.GetCounter("check.violations." + string(st)).Value()
}

// ErrViolation is the sentinel every strict-mode violation unwraps to.
var ErrViolation = errors.New("check: physical invariant violated")

// Violation is one observed breach of a physical invariant. It is an
// error; under Strict it is returned to the caller, under Warn it is
// only counted.
type Violation struct {
	// Stage is the pipeline boundary the breach was caught at.
	Stage Stage
	// Invariant names the violated law, e.g. "mutual coupling k < 1".
	Invariant string
	// Subject identifies the object, e.g. the table set or segment name.
	Subject string
	// Cell pins the offending entry, e.g. "mutual[2,3,1,0] (w1=…)".
	Cell string
	// Detail carries the observed values, e.g. "k = 1.73".
	Detail string
}

func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s: invariant %q violated", v.Stage, v.Invariant)
	if v.Subject != "" {
		fmt.Fprintf(&b, " in %s", v.Subject)
	}
	if v.Cell != "" {
		fmt.Fprintf(&b, " at %s", v.Cell)
	}
	if v.Detail != "" {
		fmt.Fprintf(&b, ": %s", v.Detail)
	}
	return b.String()
}

// Unwrap makes every violation match errors.Is(err, ErrViolation).
func (v *Violation) Unwrap() error { return ErrViolation }

// Engine applies one policy to reported violations. A nil engine is
// valid and permanently disarmed, so check sites can hold the result
// of Active() without nil tests. One engine may be used concurrently
// from any number of goroutines (it is immutable after construction).
type Engine struct {
	policy Policy
}

// New returns an engine enforcing policy p. New(Off) is an explicitly
// disarmed engine — useful to override a stricter process-wide policy
// for one extractor.
func New(p Policy) *Engine { return &Engine{policy: p} }

// Policy reports the engine's policy; nil-safe (Off).
func (e *Engine) Policy() Policy {
	if e == nil {
		return Off
	}
	return e.policy
}

// Armed reports whether the engine enforces anything; nil-safe. Check
// sites guard their (possibly expensive) invariant evaluation with
// this so a disarmed pipeline pays only the Active() load.
func (e *Engine) Armed() bool { return e != nil && e.policy != Off }

// Report records one violation under the engine's policy: counted
// always (when armed), returned as the error under Strict, nil under
// Warn. A disarmed or nil engine ignores the report.
func (e *Engine) Report(v *Violation) error {
	if !e.Armed() {
		return nil
	}
	violationsTotal.Inc()
	if c, ok := stageCounters[v.Stage]; ok {
		c.Inc()
	} else {
		obs.GetCounter("check.violations." + string(v.Stage)).Inc()
	}
	if e.policy == Strict {
		return v
	}
	return nil
}

// ReportAll records a batch of violations, returning the first strict
// error (all violations are counted either way).
func (e *Engine) ReportAll(vs []Violation) error {
	if !e.Armed() {
		return nil
	}
	var first error
	for i := range vs {
		if err := e.Report(&vs[i]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// active is the process-wide engine. nil (the production default)
// makes every check site a pointer load and a branch — the same
// disarmed-hook pattern as internal/fault.
var active atomic.Pointer[Engine]

// SetPolicy arms the process-wide engine with policy p. Off stores
// nil, restoring the zero-cost path.
func SetPolicy(p Policy) {
	if p == Off {
		active.Store(nil)
		return
	}
	active.Store(New(p))
}

// Active returns the process-wide engine: nil (disarmed) unless a
// policy was set. The single atomic load here is the entire cost a
// disarmed check site pays.
func Active() *Engine { return active.Load() }

// Enabled reports whether the process-wide engine is armed.
func Enabled() bool { return Active().Armed() }
