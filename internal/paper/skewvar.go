package paper

import (
	"fmt"
	"math"
	"math/rand"

	"clockrlc/internal/clocktree"
	"clockrlc/internal/core"
	"clockrlc/internal/statrc"
	"clockrlc/internal/units"
)

// SkewVariationResult is experiment E14: Monte-Carlo clock skew under
// process variation, computed the exact way (R, C and L all re-
// extracted per sample) and the paper's proposed way ("combine the
// nominal inductance with the statistically generated RC").
type SkewVariationResult struct {
	Samples int
	// FullMean/FullSigma: skew statistics with per-stage R, C and L
	// variation.
	FullMean, FullSigma float64
	// NomLMean/NomLSigma: skew statistics with nominal L.
	NomLMean, NomLSigma float64
	// MaxPairErrPct is the largest per-sample relative difference
	// between the two skews — the direct cost of the paper's
	// simplification.
	MaxPairErrPct float64
}

// SkewVariation runs E14 on a 2-level H-tree (5 buffered stages).
// Per sample, every stage draws its own process corner; skew is then
// computed with and without the L component of the variation.
func SkewVariation(e *core.Extractor, samples int, seed int64) (*SkewVariationResult, error) {
	if samples < 2 {
		return nil, fmt.Errorf("paper: need at least 2 samples, got %d", samples)
	}
	seg := Fig1Segment()
	buf := clocktree.Buffer{
		DriveRes:       DriverRes,
		InputCap:       SinkCap,
		IntrinsicDelay: 30e-12,
		OutSlew:        RiseTime,
	}
	tree, err := clocktree.NewTree(clocktree.HTreeLevels(units.Um(4000), 2, seg), buf, e)
	if err != nil {
		return nil, err
	}
	v := statrc.Variation{EdgeBiasSigma: 0.03e-6, ThicknessSigma: 0.06, HeightSigma: 0.05}
	nom, err := e.SegmentRLC(seg)
	if err != nil {
		return nil, err
	}

	const nStages = 5 // 1 root + 4 leaf stages of a 2-level tree
	rng := rand.New(rand.NewSource(seed))
	res := &SkewVariationResult{Samples: samples}
	var fullSkews, nomSkews []float64
	for s := 0; s < samples; s++ {
		full := map[int][3]float64{}
		noml := map[int][3]float64{}
		for st := 0; st < nStages; st++ {
			sample := v.Draw(rng)
			p, err := statrc.PerturbedRLC(e, seg, sample)
			if err != nil {
				return nil, err
			}
			r := p.R / nom.R
			c := p.C / nom.C
			l := p.L / nom.L
			full[st] = [3]float64{r, c, l}
			noml[st] = [3]float64{r, c, 1}
		}
		fs, err := tree.Skew(clocktree.SimOptions{WithL: true, Sections: 4, Scale: full})
		if err != nil {
			return nil, err
		}
		ns, err := tree.Skew(clocktree.SimOptions{WithL: true, Sections: 4, Scale: noml})
		if err != nil {
			return nil, err
		}
		fullSkews = append(fullSkews, fs)
		nomSkews = append(nomSkews, ns)
		if fs > 0 {
			if d := math.Abs(fs-ns) / fs * 100; d > res.MaxPairErrPct {
				res.MaxPairErrPct = d
			}
		}
	}
	res.FullMean, res.FullSigma = meanSigma(fullSkews)
	res.NomLMean, res.NomLSigma = meanSigma(nomSkews)
	return res, nil
}

func meanSigma(xs []float64) (mean, sigma float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		sigma += d * d
	}
	sigma = math.Sqrt(sigma / float64(len(xs)-1))
	return mean, sigma
}
