package paper

import (
	"math"

	"clockrlc/internal/cascade"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/units"
	"clockrlc/internal/xtalk"
)

// ShieldRuleRow is one point of experiment E11: the Section IV
// "at least equal width" shielding rule, probed two ways — by the
// crosstalk noise an aggressor injects past the shields, and by the
// linear-cascading error of a routed tree built with that shield
// width.
type ShieldRuleRow struct {
	// WidthRatio is shield width / signal width.
	WidthRatio float64
	// PeakNoise at the quiet victim sink for a 1 V aggressor swing.
	PeakNoise float64
	// CascadeErrPct is the Fig. 6(a)-tree cascading error with this
	// shield width.
	CascadeErrPct float64
}

// ShieldRuleResult is E11's output.
type ShieldRuleResult struct {
	Rows []ShieldRuleRow
	// UnshieldedNoise is the victim noise with the ground wires
	// removed entirely — the baseline the rule protects against.
	UnshieldedNoise float64
}

// xtalkScenario is the shared E11/E12 victim-aggressor setup.
func xtalkScenario() xtalk.Scenario {
	return xtalk.Scenario{
		Victim: core.Segment{
			Length:      units.Um(2000),
			SignalWidth: units.Um(4),
			GroundWidth: units.Um(4),
			Spacing:     units.Um(1),
			Shielding:   geom.ShieldNone,
		},
		AggressorWidth:   units.Um(4),
		AggressorSpacing: units.Um(1),
		Sections:         6,
		RiseTime:         RiseTime,
		DriverRes:        DriverRes,
	}
}

// ShieldRule runs E11 over the given shield-to-signal width ratios.
func ShieldRule(e *core.Extractor, ratios []float64) (*ShieldRuleResult, error) {
	base := xtalkScenario()
	pts, err := xtalk.ShieldWidthSweep(e, base, ratios)
	if err != nil {
		return nil, err
	}
	res := &ShieldRuleResult{}
	for _, p := range pts {
		row := ShieldRuleRow{WidthRatio: p.WidthRatio, PeakNoise: p.PeakNoise}
		cross := cascade.Fig6Cross()
		cross.GroundWidth = p.WidthRatio * cross.SignalWidth
		tree, err := cascade.NewTree("a", fig6aSpecs(), cross, units.RhoCopper)
		if err != nil {
			return nil, err
		}
		full, err := tree.FullLoopL(Fsig)
		if err != nil {
			return nil, err
		}
		casc, err := tree.CascadedLoopL(Fsig)
		if err != nil {
			return nil, err
		}
		row.CascadeErrPct = math.Abs(casc-full) / full * 100
		res.Rows = append(res.Rows, row)
	}
	un := base
	un.Unshielded = true
	unRes, err := xtalk.Run(e, un)
	if err != nil {
		return nil, err
	}
	res.UnshieldedNoise = unRes.PeakNoise
	return res, nil
}

// fig6aSpecs re-states the Fig. 6(a) topology for reuse with modified
// cross sections.
func fig6aSpecs() []cascade.SegmentSpec {
	return []cascade.SegmentSpec{
		{Name: "ab", From: "a", To: "b", Dir: cascade.YPlus, Length: units.Um(100)},
		{Name: "bc", From: "b", To: "c", Dir: cascade.XMinus, Length: units.Um(150)},
		{Name: "ce", From: "c", To: "e", Dir: cascade.YPlus, Length: units.Um(250)},
		{Name: "bd", From: "b", To: "d", Dir: cascade.XPlus, Length: units.Um(250)},
		{Name: "df", From: "d", To: "f", Dir: cascade.YPlus, Length: units.Um(100)},
	}
}
