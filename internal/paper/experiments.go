package paper

import (
	"fmt"
	"math"

	"clockrlc/internal/cascade"
	"clockrlc/internal/clocktree"
	"clockrlc/internal/core"
	"clockrlc/internal/geom"
	"clockrlc/internal/linalg"
	"clockrlc/internal/loop"
	"clockrlc/internal/netlist"
	"clockrlc/internal/peec"
	"clockrlc/internal/sim"
	"clockrlc/internal/statrc"
	"clockrlc/internal/units"
)

// Fig23Variant is one RC-vs-RLC comparison of the Fig. 1 net.
type Fig23Variant struct {
	// Time axis and the four waveforms (driver output "in", sink
	// "out") for the RC-only and RLC netlists.
	Time                        []float64
	InRC, OutRC, InRLC, OutRLC  []float64
	DelayRC, DelayRLC           float64 // buffer switch → sink 50 %
	OvershootRLC, UndershootRLC float64
	OvershootRC                 float64
}

// Fig23Result is experiment E1: the Fig. 2 (RC only) and Fig. 3 (RLC)
// transients of the Fig. 1 configuration, run three ways.
type Fig23Result struct {
	// RLC holds the full-extraction totals of the 6 mm net.
	RLC netlist.SegmentRLC
	// Extracted uses the full extraction (loop-L ladder);
	// Calibrated replaces C with CalibratedLineCap. The paper's
	// 28.01 ps / 47.6 ps figures correspond to the calibrated variants.
	Extracted, Calibrated Fig23Variant
	// CalibratedPartial is the closest analog of the authors' SPICE
	// netlist: the sectioned PEEC formulation with ground wires bonded
	// only at the segment ends (no intermediate ground straps), at the
	// calibrated line capacitance. Its higher dynamic inductance
	// reproduces the Fig. 3 overshoot/undershoot.
	CalibratedPartial Fig23Variant
}

// fig23Run simulates one RC-vs-RLC pair for the given segment totals.
func fig23Run(seg netlist.SegmentRLC) (*Fig23Variant, error) {
	run := func(s netlist.SegmentRLC) (*sim.Result, error) {
		nl := netlist.New()
		nl.AddV("vsrc", "drv", netlist.Ground, netlist.Ramp{V0: 0, V1: Vdd, Start: 10e-12, Rise: RiseTime})
		nl.AddR("rdrv", "drv", "in", DriverRes)
		if _, err := nl.AddLadder("net", "in", "out", s, 10); err != nil {
			return nil, err
		}
		nl.AddC("cl", "out", netlist.Ground, SinkCap)
		return sim.Transient(nl, 0.25e-12, 1000e-12, []string{"in", "out"})
	}
	rcSeg := seg
	rcSeg.L = 0
	resRC, err := run(rcSeg)
	if err != nil {
		return nil, err
	}
	resRLC, err := run(seg)
	if err != nil {
		return nil, err
	}
	v := &Fig23Variant{Time: resRC.Time}
	v.InRC, _ = resRC.Waveform("in")
	v.OutRC, _ = resRC.Waveform("out")
	v.InRLC, _ = resRLC.Waveform("in")
	v.OutRLC, _ = resRLC.Waveform("out")

	// Delay from the buffer switching instant (the ramp's 50 % point,
	// at 10 ps + RiseTime/2) to the sink crossing.
	t0 := 10e-12 + RiseTime/2
	dsinkRC, err := sim.DelayFromT0(v.Time, v.OutRC, 0, Vdd)
	if err != nil {
		return nil, fmt.Errorf("paper: RC sink never switches: %w", err)
	}
	dsinkRLC, err := sim.DelayFromT0(v.Time, v.OutRLC, 0, Vdd)
	if err != nil {
		return nil, fmt.Errorf("paper: RLC sink never switches: %w", err)
	}
	v.DelayRC = dsinkRC - t0
	v.DelayRLC = dsinkRLC - t0
	v.OvershootRLC, v.UndershootRLC = sim.Overshoot(v.OutRLC, 0, Vdd)
	v.OvershootRC, _ = sim.Overshoot(v.OutRC, 0, Vdd)
	return v, nil
}

// Fig23 runs E1 with the given extractor.
func Fig23(e *core.Extractor) (*Fig23Result, error) {
	seg := Fig1Segment()
	rlc, err := e.SegmentRLC(seg)
	if err != nil {
		return nil, err
	}
	out := &Fig23Result{RLC: rlc}
	ext, err := fig23Run(rlc)
	if err != nil {
		return nil, err
	}
	out.Extracted = *ext
	cal := rlc
	cal.C = CalibratedLineCap
	calv, err := fig23Run(cal)
	if err != nil {
		return nil, err
	}
	out.Calibrated = *calv
	part, err := fig23PartialRun(e, seg, cal)
	if err != nil {
		return nil, err
	}
	out.CalibratedPartial = *part
	return out, nil
}

// fig23PartialRun simulates the calibrated RC baseline against the
// end-bonded sectioned-PEEC netlist.
func fig23PartialRun(e *core.Extractor, seg core.Segment, cal netlist.SegmentRLC) (*Fig23Variant, error) {
	mk := func(withL bool) (*sim.Result, error) {
		nl := netlist.New()
		nl.AddV("vsrc", "drv", netlist.Ground, netlist.Ramp{V0: 0, V1: Vdd, Start: 10e-12, Rise: RiseTime})
		nl.AddR("rdrv", "drv", "in", DriverRes)
		if withL {
			err := e.PartialNetlistOpts(nl, "net", "in", "out", seg, core.PartialOptions{
				Sections:     10,
				EndBondsOnly: true,
				CapOverride:  cal.C,
			})
			if err != nil {
				return nil, err
			}
		} else {
			rc := cal
			rc.L = 0
			if _, err := nl.AddLadder("net", "in", "out", rc, 10); err != nil {
				return nil, err
			}
		}
		nl.AddC("cl", "out", netlist.Ground, SinkCap)
		return sim.Transient(nl, 0.25e-12, 1000e-12, []string{"in", "out"})
	}
	resRC, err := mk(false)
	if err != nil {
		return nil, err
	}
	resRLC, err := mk(true)
	if err != nil {
		return nil, err
	}
	v := &Fig23Variant{Time: resRC.Time}
	v.InRC, _ = resRC.Waveform("in")
	v.OutRC, _ = resRC.Waveform("out")
	v.InRLC, _ = resRLC.Waveform("in")
	v.OutRLC, _ = resRLC.Waveform("out")
	t0 := 10e-12 + RiseTime/2
	dRC, err := sim.DelayFromT0(v.Time, v.OutRC, 0, Vdd)
	if err != nil {
		return nil, err
	}
	dRLC, err := sim.DelayFromT0(v.Time, v.OutRLC, 0, Vdd)
	if err != nil {
		return nil, err
	}
	v.DelayRC = dRC - t0
	v.DelayRLC = dRLC - t0
	v.OvershootRLC, v.UndershootRLC = sim.Overshoot(v.OutRLC, 0, Vdd)
	v.OvershootRC, _ = sim.Overshoot(v.OutRC, 0, Vdd)
	return v, nil
}

// Fig5Result is experiment E2: the loop inductance matrix of a 5-trace
// array over a ground plane (a), the 1-trace subproblem (b) and the
// 2-trace subproblem (c), demonstrating Foundations 1 and 2.
type Fig5Result struct {
	// Full is the 5×5 loop matrix of the full array (H).
	Full *linalg.Matrix
	// SelfSolo is T1's loop self inductance solved alone.
	SelfSolo float64
	// MutualPair is the T1–T5 loop mutual from the 2-trace solve.
	MutualPair float64
	// Foundation1Err and Foundation2Err are the relative deviations
	// |full − subproblem| / subproblem.
	Foundation1Err, Foundation2Err float64
}

// Fig5 runs E2. The array follows the figure: five traces in layer N
// with a ground plane in layer N−2.
func Fig5() (*Fig5Result, error) {
	plane := &geom.GroundPlane{
		Z:         -units.Um(3),
		Thickness: units.Um(1),
		Width:     units.Um(80),
		Rho:       units.RhoCopper,
	}
	array := geom.TraceArray(5, units.Um(2000), units.Um(2), units.Um(2), units.Um(1), 0, units.RhoCopper)
	array.IsGround = make([]bool, 5) // all signals; the plane is the return
	array.PlaneBelow = plane
	opts := loop.Options{Frequency: Fsig, PlaneStrips: 16}

	full, err := loop.LoopMatrix(array, opts)
	if err != nil {
		return nil, err
	}
	solo := &geom.Block{
		Traces:     []geom.Trace{array.Traces[0]},
		IsGround:   []bool{false},
		PlaneBelow: plane,
		Rho:        units.RhoCopper,
	}
	soloSol, err := loop.SolveBlock(solo, 0, opts)
	if err != nil {
		return nil, err
	}
	pair := &geom.Block{
		Traces:     []geom.Trace{array.Traces[0], array.Traces[4]},
		IsGround:   []bool{false, false},
		PlaneBelow: plane,
		Rho:        units.RhoCopper,
	}
	pairSol, err := loop.SolveBlock(pair, 0, opts)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		Full:       full,
		SelfSolo:   soloSol.L,
		MutualPair: pairSol.MutualL[0],
	}
	res.Foundation1Err = math.Abs(full.At(0, 0)-res.SelfSolo) / res.SelfSolo
	res.Foundation2Err = math.Abs(full.At(0, 4)-res.MutualPair) / math.Abs(res.MutualPair)
	return res, nil
}

// Table1Row is one row of experiment E3.
type Table1Row struct {
	Name        string
	FullL       float64 // whole-tree extraction (H)
	CascadedL   float64 // series/parallel combination (H)
	ErrPercent  float64
	PaperErrPct float64
}

// Table1 runs E3: the two Fig. 6 trees, full extraction vs linear
// cascading.
func Table1() ([]Table1Row, error) {
	mk := []struct {
		name  string
		build func(rho float64) (*cascade.Tree, error)
		paper float64
	}{
		{"Fig. 6(a)", cascade.Fig6a, 3.57},
		{"Fig. 6(b)", cascade.Fig6b, 1.55},
	}
	var rows []Table1Row
	for _, m := range mk {
		tr, err := m.build(units.RhoCopper)
		if err != nil {
			return nil, err
		}
		full, err := tr.FullLoopL(Fsig)
		if err != nil {
			return nil, err
		}
		casc, err := tr.CascadedLoopL(Fsig)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name:        m.name,
			FullL:       full,
			CascadedL:   casc,
			ErrPercent:  math.Abs(casc-full) / full * 100,
			PaperErrPct: m.paper,
		})
	}
	return rows, nil
}

// SkewResult is experiment E4: H-tree skew with and without
// inductance under a sink load imbalance.
type SkewResult struct {
	ArrivalRC, ArrivalRLC float64 // nominal leaf arrival
	SkewRC, SkewRLC       float64 // with the load imbalance
	SkewErrPercent        float64 // RC-only misestimate of skew
}

// HTreeSkew runs E4 on a 2-level H-tree (16 leaves) with a 4× load on
// leaf 0.
func HTreeSkew(e *core.Extractor, shield geom.Shielding) (*SkewResult, error) {
	seg := Fig1Segment()
	seg.Shielding = shield
	buf := clocktree.Buffer{
		DriveRes:       DriverRes,
		InputCap:       SinkCap,
		IntrinsicDelay: 30e-12,
		OutSlew:        RiseTime,
	}
	tree, err := clocktree.NewTree(clocktree.HTreeLevels(units.Um(4000), 2, seg), buf, e)
	if err != nil {
		return nil, err
	}
	res := &SkewResult{}
	nomRC, err := tree.Arrivals(clocktree.SimOptions{WithL: false})
	if err != nil {
		return nil, err
	}
	nomRLC, err := tree.Arrivals(clocktree.SimOptions{WithL: true})
	if err != nil {
		return nil, err
	}
	res.ArrivalRC, res.ArrivalRLC = nomRC[0], nomRLC[0]
	imbalance := map[int]float64{0: 4}
	res.SkewRC, err = tree.Skew(clocktree.SimOptions{WithL: false, LeafLoadScale: imbalance})
	if err != nil {
		return nil, err
	}
	res.SkewRLC, err = tree.Skew(clocktree.SimOptions{WithL: true, LeafLoadScale: imbalance})
	if err != nil {
		return nil, err
	}
	res.SkewErrPercent = math.Abs(res.SkewRLC-res.SkewRC) / res.SkewRLC * 100
	return res, nil
}

// LengthSweepRow is one point of experiment E5 (super-linear L vs
// length).
type LengthSweepRow struct {
	Length    float64
	SelfL     float64
	MutualL   float64 // to a parallel neighbour at 5 µm
	SelfRatio float64 // L(len)/L(len/2)
	MutRatio  float64
}

// LengthSweep runs E5 over doubling lengths.
func LengthSweep() []LengthSweepRow {
	w, t := units.Um(1.2), units.Um(1)
	d := units.Um(5)
	var rows []LengthSweepRow
	for _, lu := range []float64{250, 500, 1000, 2000, 4000, 8000} {
		l := units.Um(lu)
		row := LengthSweepRow{
			Length:  l,
			SelfL:   peec.SelfGMD(l, w, t),
			MutualL: peec.MutualFilamentsAligned(l, d),
		}
		half := l / 2
		row.SelfRatio = row.SelfL / peec.SelfGMD(half, w, t)
		row.MutRatio = row.MutualL / peec.MutualFilamentsAligned(half, d)
		rows = append(rows, row)
	}
	return rows
}

// TableAccuracy is experiment E6: table lookup vs direct solve over
// off-grid probes.
type TableAccuracy struct {
	MaxSelfErr, MaxMutualErr, MaxLoopErr float64
	Probes                               int
}

// CheckTables runs E6.
func CheckTables(e *core.Extractor) (*TableAccuracy, error) {
	set, err := e.Tables(geom.ShieldNone)
	if err != nil {
		return nil, err
	}
	acc := &TableAccuracy{}
	type probe struct{ w, l float64 }
	selfProbes := []probe{
		{units.Um(1.7), units.Um(300)},
		{units.Um(4.3), units.Um(1450)},
		{units.Um(9.1), units.Um(5200)},
		{units.Um(10), units.Um(6000)},
	}
	for _, p := range selfProbes {
		got, err := set.SelfL(p.w, p.l)
		if err != nil {
			return nil, err
		}
		rl, err := peec.EffectiveRL(
			peec.Bar{Axis: peec.AxisX, O: [3]float64{0, -p.w / 2, 0}, L: p.l, W: p.w, T: e.Tech.Thickness},
			e.Tech.Rho, e.Frequency, 4, 2)
		if err != nil {
			return nil, err
		}
		if rel := math.Abs(got-rl.L) / rl.L; rel > acc.MaxSelfErr {
			acc.MaxSelfErr = rel
		}
		acc.Probes++
	}
	type mprobe struct{ w1, w2, s, l float64 }
	for _, p := range []mprobe{
		{units.Um(2), units.Um(7), units.Um(1.3), units.Um(900)},
		{units.Um(10), units.Um(5), units.Um(1), units.Um(6000)},
		{units.Um(3), units.Um(3), units.Um(6), units.Um(2500)},
	} {
		got, err := set.MutualL(p.w1, p.w2, p.s, p.l)
		if err != nil {
			return nil, err
		}
		a := peec.Bar{Axis: peec.AxisX, O: [3]float64{0, 0, 0}, L: p.l, W: p.w1, T: e.Tech.Thickness}
		b := peec.Bar{Axis: peec.AxisX, O: [3]float64{0, p.w1 + p.s, 0}, L: p.l, W: p.w2, T: e.Tech.Thickness}
		want := peec.HoerLoveMutual(a, b)
		if rel := math.Abs(got-want) / want; rel > acc.MaxMutualErr {
			acc.MaxMutualErr = rel
		}
		acc.Probes++
	}
	// Composed loop L vs direct solve across a few segments.
	for _, seg := range []core.Segment{
		Fig1Segment(),
		{Length: units.Um(1500), SignalWidth: units.Um(4), GroundWidth: units.Um(4), Spacing: units.Um(2), Shielding: geom.ShieldNone},
	} {
		got, err := e.LoopL(seg)
		if err != nil {
			return nil, err
		}
		want, err := e.DirectLoopL(seg)
		if err != nil {
			return nil, err
		}
		if rel := math.Abs(got-want) / want; rel > acc.MaxLoopErr {
			acc.MaxLoopErr = rel
		}
		acc.Probes++
	}
	return acc, nil
}

// FreqSweepRow is one point of experiment E7: R(f), L(f) of the Fig. 1
// signal trace.
type FreqSweepRow struct {
	Freq float64
	R, L float64
}

// FreqSweep runs E7.
func FreqSweep() ([]FreqSweepRow, error) {
	seg := Fig1Segment()
	bar := peec.Bar{
		Axis: peec.AxisX,
		O:    [3]float64{0, -seg.SignalWidth / 2, 0},
		L:    seg.Length, W: seg.SignalWidth, T: units.Um(2),
	}
	var rows []FreqSweepRow
	for _, f := range []float64{0, 0.5e9, 1e9, 2e9, 3.2e9, Fsig, 10e9, 20e9} {
		rl, err := peec.EffectiveRL(bar, units.RhoCopper, f, 12, 4)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FreqSweepRow{Freq: f, R: rl.R, L: rl.L})
	}
	return rows, nil
}

// ShieldCompare is experiment E8: CPW (Fig. 8) vs microstrip (Fig. 9)
// building blocks.
type ShieldCompare struct {
	LoopCPW, LoopMS   float64
	DelayCPW, DelayMS float64
}

// CompareShields runs E8 on the Fig. 1 segment.
func CompareShields(e *core.Extractor) (*ShieldCompare, error) {
	out := &ShieldCompare{}
	seg := Fig1Segment()
	var err error
	if out.LoopCPW, err = e.LoopL(seg); err != nil {
		return nil, err
	}
	ms := seg
	ms.Shielding = geom.ShieldMicrostrip
	if out.LoopMS, err = e.LoopL(ms); err != nil {
		return nil, err
	}
	delay := func(s core.Segment) (float64, error) {
		rlc, err := e.SegmentRLC(s)
		if err != nil {
			return 0, err
		}
		nl := netlist.New()
		nl.AddV("vsrc", "drv", netlist.Ground, netlist.Ramp{V0: 0, V1: Vdd, Start: 10e-12, Rise: RiseTime})
		nl.AddR("rdrv", "drv", "in", DriverRes)
		if _, err := nl.AddLadder("net", "in", "out", rlc, 10); err != nil {
			return 0, err
		}
		nl.AddC("cl", "out", netlist.Ground, SinkCap)
		res, err := sim.Transient(nl, 0.25e-12, 1000e-12, []string{"out"})
		if err != nil {
			return 0, err
		}
		v, _ := res.Waveform("out")
		d, err := sim.DelayFromT0(res.Time, v, 0, Vdd)
		if err != nil {
			return 0, err
		}
		return d - (10e-12 + RiseTime/2), nil
	}
	if out.DelayCPW, err = delay(seg); err != nil {
		return nil, err
	}
	if out.DelayMS, err = delay(ms); err != nil {
		return nil, err
	}
	return out, nil
}

// VariationResult is experiment E9.
type VariationResult struct {
	RSpread, CSpread, LSpread statrc.Spread
}

// ProcessVariation runs E9 on the Fig. 1 segment with typical sigmas.
func ProcessVariation(e *core.Extractor, samples int) (*VariationResult, error) {
	v := statrc.Variation{EdgeBiasSigma: 0.03e-6, ThicknessSigma: 0.06, HeightSigma: 0.05}
	r, c, l, err := statrc.MonteCarlo(e, Fig1Segment(), v, samples, 2000)
	if err != nil {
		return nil, err
	}
	return &VariationResult{RSpread: r, CSpread: c, LSpread: l}, nil
}
